package remp_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/crowd"
	"repro/remp"
)

// tinyWorld builds a pair of small KBs with an obvious alignment.
func tinyWorld() (remp.Dataset, *remp.Gold) {
	k1 := remp.NewKB("left")
	k2 := remp.NewKB("right")
	name1 := k1.AddAttr("name")
	name2 := k2.AddAttr("title")
	r1 := k1.AddRel("wrote")
	r2 := k2.AddRel("author")

	var gold []remp.Pair
	for i := 0; i < 8; i++ {
		a1 := k1.AddEntity(fmt.Sprintf("l:author%d", i))
		a2 := k2.AddEntity(fmt.Sprintf("r:author%d", i))
		label := fmt.Sprintf("author number %d", i)
		k1.SetLabel(a1, label)
		k2.SetLabel(a2, label)
		k1.AddAttrTriple(a1, name1, label)
		k2.AddAttrTriple(a2, name2, label)
		gold = append(gold, remp.Pair{U1: a1, U2: a2})

		b1 := k1.AddEntity(fmt.Sprintf("l:book%d", i))
		b2 := k2.AddEntity(fmt.Sprintf("r:book%d", i))
		bl := fmt.Sprintf("famous book %d", i)
		k1.SetLabel(b1, bl)
		k2.SetLabel(b2, bl)
		k1.AddAttrTriple(b1, name1, bl)
		k2.AddAttrTriple(b2, name2, bl)
		k1.AddRelTriple(a1, r1, b1)
		k2.AddRelTriple(a2, r2, b2)
		gold = append(gold, remp.Pair{U1: b1, U2: b2})
	}
	return remp.Dataset{K1: k1, K2: k2}, remp.NewGold(gold)
}

func TestResolveEndToEnd(t *testing.T) {
	ds, gold := tinyWorld()
	asker := remp.NewOracleCrowd(gold.IsMatch)
	res, err := remp.Resolve(ds, asker, remp.Options{Mu: 2})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	m := remp.Evaluate(res.Matches, gold)
	if m.F1 < 0.9 {
		t.Errorf("F1 = %v (P=%v R=%v, Q=%d)", m.F1, m.Precision, m.Recall, res.Questions)
	}
	if len(res.Propagated) == 0 {
		t.Error("no matches were inferred through the ER graph")
	}
	if len(res.Confirmed) >= gold.Size() {
		t.Errorf("every match was worker-confirmed (%d for %d gold) — propagation did nothing",
			len(res.Confirmed), gold.Size())
	}
}

// countingAsker counts how many questions actually reach the platform.
type countingAsker struct {
	inner remp.Asker
	asks  int
}

func (c *countingAsker) Ask(q remp.Pair) []crowd.Label {
	c.asks++
	return c.inner.Ask(q)
}

func (c *countingAsker) NumQuestions() int { return c.asks }

// denseWorld builds a fixture with ambiguous candidates (perturbed book
// labels under shared authors), so propagation cascades can imply
// verdicts for open batch-mates — the raw material of deduction.
func denseWorld(n int, seed int64) (remp.Dataset, *remp.Gold) {
	rng := rand.New(rand.NewSource(seed))
	k1 := remp.NewKB("left")
	k2 := remp.NewKB("right")
	name1, name2 := k1.AddAttr("name"), k2.AddAttr("label")
	wrote1, wrote2 := k1.AddRel("wrote"), k2.AddRel("authorOf")

	var gold []remp.Pair
	add := func(base string, perturb bool) (remp.EntityID, remp.EntityID) {
		u1 := k1.AddEntity("l:" + base)
		u2 := k2.AddEntity("r:" + base)
		l2 := base
		if perturb && rng.Intn(3) == 0 {
			l2 = base + " II"
		}
		k1.SetLabel(u1, base)
		k2.SetLabel(u2, l2)
		k1.AddAttrTriple(u1, name1, base)
		k2.AddAttrTriple(u2, name2, l2)
		gold = append(gold, remp.Pair{U1: u1, U2: u2})
		return u1, u2
	}
	for i := 0; i < n; i++ {
		a1, a2 := add(fmt.Sprintf("author %d", i), false)
		for b := 0; b < 2; b++ {
			b1, b2 := add(fmt.Sprintf("book %d %d", i, b), true)
			k1.AddRelTriple(a1, wrote1, b1)
			k2.AddRelTriple(a2, wrote2, b2)
		}
		add(fmt.Sprintf("editor %d", i), false)
	}
	return remp.Dataset{K1: k1, K2: k2}, remp.NewGold(gold)
}

// TestResolveWithDeduction checks the public Deduce option end to end:
// the resolved sets are identical to a Deduce-off run, the crowd is
// asked strictly fewer questions, every saved question is accounted in
// Result.Deduced, and no deduced question ever reaches the Asker.
func TestResolveWithDeduction(t *testing.T) {
	ds, gold := denseWorld(6, 23)
	base, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), remp.Options{Mu: 4})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	asker := &countingAsker{inner: remp.NewOracleCrowd(gold.IsMatch)}
	res, err := remp.Resolve(ds, asker, remp.Options{Mu: 4, Deduce: true})
	if err != nil {
		t.Fatalf("Resolve(Deduce): %v", err)
	}
	if res.Deduced == 0 {
		t.Fatal("deduction saved nothing on a fixture with propagation cascades")
	}
	if res.Questions >= base.Questions {
		t.Errorf("questions %d with deduction, %d without — no crowd saving", res.Questions, base.Questions)
	}
	if asker.asks != res.Questions {
		t.Errorf("the Asker was called %d times for %d counted questions — a deduced question reached the crowd", asker.asks, res.Questions)
	}
	if len(res.Matches) != len(base.Matches) || len(res.NonMatches) != len(base.NonMatches) {
		t.Errorf("deduction changed the result: %d/%d matches, %d/%d non-matches",
			len(res.Matches), len(base.Matches), len(res.NonMatches), len(base.NonMatches))
	}
	for p := range base.Matches {
		if _, ok := res.Matches[p]; !ok {
			t.Fatalf("match %v lost under deduction", p)
		}
	}
}

func TestResolveWithSimulatedCrowd(t *testing.T) {
	ds, gold := tinyWorld()
	asker := remp.NewSimulatedCrowd(gold.IsMatch, remp.CrowdConfig{ErrorRate: 0.1, Seed: 5})
	res, err := remp.Resolve(ds, asker, remp.Options{})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if remp.Evaluate(res.Matches, gold).F1 < 0.8 {
		t.Errorf("noisy crowd F1 too low")
	}
}

func TestResolveValidation(t *testing.T) {
	ds, gold := tinyWorld()
	if _, err := remp.Resolve(remp.Dataset{}, remp.NewOracleCrowd(gold.IsMatch), remp.Options{}); err == nil {
		t.Error("nil KBs accepted")
	}
	if _, err := remp.Resolve(ds, nil, remp.Options{}); err == nil {
		t.Error("nil asker accepted")
	}
	if _, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), remp.Options{Strategy: "bogus"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestResolveRejectsInvalidTau(t *testing.T) {
	ds, gold := tinyWorld()
	for _, tau := range []float64{-0.2, 1.5, 7} {
		_, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), remp.Options{Tau: tau})
		if err == nil {
			t.Errorf("Tau = %v accepted; want a descriptive error", tau)
			continue
		}
		if !strings.Contains(err.Error(), "Tau") {
			t.Errorf("Tau = %v: error %q does not name the offending field", tau, err)
		}
	}
	// Zero keeps the paper's default; a valid value is accepted.
	for _, tau := range []float64{0, 0.8, 1} {
		if _, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), remp.Options{Tau: tau}); err != nil {
			t.Errorf("Tau = %v rejected: %v", tau, err)
		}
	}
}

func TestPipelineIntrospection(t *testing.T) {
	ds, _ := tinyWorld()
	p, err := remp.NewPipeline(ds, remp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CandidatePairs()) == 0 {
		t.Error("no candidate pairs")
	}
	v, e := p.GraphStats()
	if v == 0 || e == 0 {
		t.Errorf("graph stats %d/%d", v, e)
	}
}

func TestPropagateFromSeedsAPI(t *testing.T) {
	ds, gold := tinyWorld()
	p, err := remp.NewPipeline(ds, remp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeds := gold.Matches()[:4]
	matches := p.PropagateFromSeeds(seeds)
	if len(matches) < len(seeds) {
		t.Errorf("propagation lost seeds: %d < %d", len(matches), len(seeds))
	}
}
