package remp_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/remp"
)

// tinyWorld builds a pair of small KBs with an obvious alignment.
func tinyWorld() (remp.Dataset, *remp.Gold) {
	k1 := remp.NewKB("left")
	k2 := remp.NewKB("right")
	name1 := k1.AddAttr("name")
	name2 := k2.AddAttr("title")
	r1 := k1.AddRel("wrote")
	r2 := k2.AddRel("author")

	var gold []remp.Pair
	for i := 0; i < 8; i++ {
		a1 := k1.AddEntity(fmt.Sprintf("l:author%d", i))
		a2 := k2.AddEntity(fmt.Sprintf("r:author%d", i))
		label := fmt.Sprintf("author number %d", i)
		k1.SetLabel(a1, label)
		k2.SetLabel(a2, label)
		k1.AddAttrTriple(a1, name1, label)
		k2.AddAttrTriple(a2, name2, label)
		gold = append(gold, remp.Pair{U1: a1, U2: a2})

		b1 := k1.AddEntity(fmt.Sprintf("l:book%d", i))
		b2 := k2.AddEntity(fmt.Sprintf("r:book%d", i))
		bl := fmt.Sprintf("famous book %d", i)
		k1.SetLabel(b1, bl)
		k2.SetLabel(b2, bl)
		k1.AddAttrTriple(b1, name1, bl)
		k2.AddAttrTriple(b2, name2, bl)
		k1.AddRelTriple(a1, r1, b1)
		k2.AddRelTriple(a2, r2, b2)
		gold = append(gold, remp.Pair{U1: b1, U2: b2})
	}
	return remp.Dataset{K1: k1, K2: k2}, remp.NewGold(gold)
}

func TestResolveEndToEnd(t *testing.T) {
	ds, gold := tinyWorld()
	asker := remp.NewOracleCrowd(gold.IsMatch)
	res, err := remp.Resolve(ds, asker, remp.Options{Mu: 2})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	m := remp.Evaluate(res.Matches, gold)
	if m.F1 < 0.9 {
		t.Errorf("F1 = %v (P=%v R=%v, Q=%d)", m.F1, m.Precision, m.Recall, res.Questions)
	}
	if len(res.Propagated) == 0 {
		t.Error("no matches were inferred through the ER graph")
	}
	if len(res.Confirmed) >= gold.Size() {
		t.Errorf("every match was worker-confirmed (%d for %d gold) — propagation did nothing",
			len(res.Confirmed), gold.Size())
	}
}

func TestResolveWithSimulatedCrowd(t *testing.T) {
	ds, gold := tinyWorld()
	asker := remp.NewSimulatedCrowd(gold.IsMatch, remp.CrowdConfig{ErrorRate: 0.1, Seed: 5})
	res, err := remp.Resolve(ds, asker, remp.Options{})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if remp.Evaluate(res.Matches, gold).F1 < 0.8 {
		t.Errorf("noisy crowd F1 too low")
	}
}

func TestResolveValidation(t *testing.T) {
	ds, gold := tinyWorld()
	if _, err := remp.Resolve(remp.Dataset{}, remp.NewOracleCrowd(gold.IsMatch), remp.Options{}); err == nil {
		t.Error("nil KBs accepted")
	}
	if _, err := remp.Resolve(ds, nil, remp.Options{}); err == nil {
		t.Error("nil asker accepted")
	}
	if _, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), remp.Options{Strategy: "bogus"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestResolveRejectsInvalidTau(t *testing.T) {
	ds, gold := tinyWorld()
	for _, tau := range []float64{-0.2, 1.5, 7} {
		_, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), remp.Options{Tau: tau})
		if err == nil {
			t.Errorf("Tau = %v accepted; want a descriptive error", tau)
			continue
		}
		if !strings.Contains(err.Error(), "Tau") {
			t.Errorf("Tau = %v: error %q does not name the offending field", tau, err)
		}
	}
	// Zero keeps the paper's default; a valid value is accepted.
	for _, tau := range []float64{0, 0.8, 1} {
		if _, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), remp.Options{Tau: tau}); err != nil {
			t.Errorf("Tau = %v rejected: %v", tau, err)
		}
	}
}

func TestPipelineIntrospection(t *testing.T) {
	ds, _ := tinyWorld()
	p, err := remp.NewPipeline(ds, remp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CandidatePairs()) == 0 {
		t.Error("no candidate pairs")
	}
	v, e := p.GraphStats()
	if v == 0 || e == 0 {
		t.Errorf("graph stats %d/%d", v, e)
	}
}

func TestPropagateFromSeedsAPI(t *testing.T) {
	ds, gold := tinyWorld()
	p, err := remp.NewPipeline(ds, remp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeds := gold.Matches()[:4]
	matches := p.PropagateFromSeeds(seeds)
	if len(matches) < len(seeds) {
		t.Errorf("propagation lost seeds: %d < %d", len(matches), len(seeds))
	}
}
