package remp

import (
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/obs"
	"repro/internal/session"
)

// SessionState names a session's lifecycle state.
type SessionState = session.State

// Session lifecycle states: a session awaits answers until the stop
// criterion holds, then it is done and the result is final.
const (
	// SessionAwaiting means a question batch is published and at least one
	// answer is outstanding.
	SessionAwaiting = session.StateAwaiting
	// SessionDone means the result is final.
	SessionDone = session.StateDone
)

// Question is one published crowd question: a stable wire ID ("u1-u2")
// plus the entity pair it asks about.
type Question = session.Question

// Label is one worker's answer in wire form: worker ID, answer quality
// λ ∈ (0,1] and the verdict.
type Label = session.Label

// Session is an asynchronous resolution job: the paper's human–machine
// loop inverted into a pull/push state machine. NextBatch publishes the
// current µ-question batch; Deliver accepts the crowd's answers in any
// order; once a batch drains the loop advances (propagation sync,
// confirm/detach, re-estimation, padding, stop criterion) exactly as the
// synchronous Resolve would. Sessions are safe for concurrent use and
// survive process restarts through Snapshot / RestoreSession.
type Session struct {
	s *session.Session
}

// NewSession prepares the pipeline and starts a standalone session over
// it. Use Manager.NewSession instead when several sessions should share
// crowd answers.
func NewSession(ds Dataset, opts Options) (*Session, error) {
	p, err := prepare(ds, opts)
	if err != nil {
		return nil, err
	}
	return &Session{s: session.New("session", p, nil)}, nil
}

// ID returns the session identifier ("session" for standalone sessions;
// manager-created ones get unique IDs).
func (s *Session) ID() string { return s.s.ID() }

// State returns the session's lifecycle state.
func (s *Session) State() SessionState { return s.s.State() }

// Done reports whether the result is final.
func (s *Session) Done() bool { return s.s.Done() }

// Progress returns the questions answered and loops executed so far.
func (s *Session) Progress() (questions, loops int) { return s.s.Progress() }

// Shards returns how many graph shards the session resolves concurrently
// (1 = monolithic pipeline).
func (s *Session) Shards() int { return s.s.Shards() }

// Deduced returns how many selected questions deduction answered instead
// of the crowd so far (always 0 unless Options.Deduce).
func (s *Session) Deduced() int { return s.s.Deduced() }

// NextBatch returns the published questions still awaiting answers. An
// empty batch means the session is done — except under a Manager, where
// it can also mean every open question is already in flight in a sibling
// session; poll again after siblings deliver.
func (s *Session) NextBatch() []Question { return s.s.NextBatch() }

// Deliver accepts the worker labels for one published question, in any
// order. Answers are applied in the batch's selection order internally,
// so delivery order cannot change the result.
func (s *Session) Deliver(questionID string, labels []Label) error {
	return s.s.Deliver(questionID, labels)
}

// deliverCrowd feeds pipeline-typed labels straight into the session — the
// Asker adapter used by Resolve.
func (s *Session) deliverCrowd(q Pair, labels []crowd.Label) error {
	return s.s.DeliverPair(q, labels)
}

// Result returns a detached copy of the session's result; final once Done.
func (s *Session) Result() *Result {
	return fromCoreResult(s.s.Result())
}

// PersistErr returns the sticky journal error of a store-backed
// session: non-nil means persistence failed and the durable state is
// frozen at the last consistent prefix while the in-memory session
// keeps running.
func (s *Session) PersistErr() error { return s.s.PersistErr() }

// Snapshot serializes the session's state to JSON: an event log of the
// answers applied so far (plus any buffered out of order), replayable
// against a freshly prepared pipeline. Persist it with the dataset and
// Options used at creation; RestoreSession needs all three.
func (s *Session) Snapshot() ([]byte, error) {
	return session.EncodeSnapshot(s.s.Snapshot())
}

// RestoreSession rebuilds a session from a Snapshot by re-preparing the
// pipeline from the same dataset and options and replaying the answer
// log. A snapshot replayed against a different dataset or configuration
// fails with a divergence error.
func RestoreSession(ds Dataset, opts Options, snapshot []byte) (*Session, error) {
	snap, err := session.DecodeSnapshot(snapshot)
	if err != nil {
		return nil, err
	}
	p, err := prepare(ds, opts)
	if err != nil {
		return nil, err
	}
	inner, err := session.Restore(p, nil, snap)
	if err != nil {
		return nil, err
	}
	return &Session{s: inner}, nil
}

// Store is durable session storage: event-sourced snapshots plus an
// append-only answer WAL, journaled by a Manager so its sessions
// survive a process restart. Two backends ship with the package:
// NewMemStore (the in-memory map, no durability) and NewDiskStore
// (fsync'd WAL segments with atomic snapshot rotation — crash-safe).
type Store = session.Store

// NewMemStore returns an in-memory session store.
func NewMemStore() Store { return session.NewMemStore() }

// NewDiskStore opens (creating if needed) a crash-safe session store
// rooted at dir. See internal/session.DiskStore for the on-disk layout.
func NewDiskStore(dir string) (Store, error) { return session.NewDiskStore(dir) }

// ReopenFunc maps a stored session's meta blob — the opaque bytes the
// owner attached at creation — back to the dataset, options and cache
// namespace needed to re-prepare its pipeline during recovery.
type ReopenFunc func(id string, meta []byte) (Dataset, Options, string, error)

// Manager runs many concurrent sessions and shares crowd answers between
// the sessions of one namespace (use one namespace per dataset): a pair
// answered — or merely published — by one session is never re-posted by
// another, so the crowd is asked each question at most once. Every
// session is journaled into the manager's Store (in-memory by default;
// see OpenManager for durable sessions).
type Manager struct {
	m *session.Manager
	// obs, when non-nil, instruments every pipeline the manager prepares
	// (including recovered ones) with loop-stage timings and engine
	// counters. Set only by OpenManagerObs.
	obs *obs.Pipeline
}

// NewManager returns an empty session manager over an in-memory store.
func NewManager() *Manager { return &Manager{m: session.NewManager()} }

// OpenManager opens a session manager over a Store and recovers every
// session a previous process left in it: each stored session's pipeline
// is re-prepared via reopen, its snapshot and WAL are replayed through
// the divergence-checking restore machinery, and the session resumes
// under its original ID. The recovered IDs are returned in sorted
// order. Sessions that fail to recover are skipped and reported in the
// returned error; the manager is usable regardless. A nil reopen skips
// recovery (any stored sessions stay dormant in the store).
func OpenManager(store Store, reopen ReopenFunc) (*Manager, []string, error) {
	return OpenManagerObs(store, reopen, nil)
}

// OpenManagerObs is OpenManager with instrumentation hooks attached
// before recovery runs, so recovered sessions' pipelines are wired into
// the same loop-stage timings and engine counters as freshly created
// ones. A nil Pipeline is equivalent to OpenManager.
func OpenManagerObs(store Store, reopen ReopenFunc, o *obs.Pipeline) (*Manager, []string, error) {
	m := &Manager{m: session.NewManagerStore(store, 0), obs: o}
	if reopen == nil {
		return m, nil, nil
	}
	ids, err := m.m.Recover(func(id string, meta []byte) (*core.Prepared, string, error) {
		ds, opts, namespace, rerr := reopen(id, meta)
		if rerr != nil {
			return nil, "", rerr
		}
		p, perr := prepareSched(ds, opts, m.m.Scheduler(), m.obs)
		if perr != nil {
			return nil, "", perr
		}
		return p, namespace, nil
	})
	return m, ids, err
}

// NewSession prepares a pipeline and starts a managed session in the
// namespace. Sharded pipelines of all managed sessions draw their shard
// workers from the manager's shared scheduler, so concurrent sessions
// cannot oversubscribe the machine. meta is stored with the session and
// handed back to the ReopenFunc on recovery; pass nil when the manager's
// store does not outlive the process.
func (m *Manager) NewSession(ds Dataset, opts Options, namespace string, meta []byte) (*Session, error) {
	p, err := prepareSched(ds, opts, m.m.Scheduler(), m.obs)
	if err != nil {
		return nil, err
	}
	inner, err := m.m.Create(p, namespace, meta)
	if err != nil {
		return nil, err
	}
	return &Session{s: inner}, nil
}

// RestoreSession rebuilds a snapshotted session inside the manager,
// keeping its snapshot ID and re-joining the namespace's answer cache.
// meta is stored with the session as in NewSession.
func (m *Manager) RestoreSession(ds Dataset, opts Options, namespace string, snapshot, meta []byte) (*Session, error) {
	snap, err := session.DecodeSnapshot(snapshot)
	if err != nil {
		return nil, err
	}
	p, err := prepareSched(ds, opts, m.m.Scheduler(), m.obs)
	if err != nil {
		return nil, err
	}
	inner, err := m.m.Restore(p, namespace, meta, snap)
	if err != nil {
		return nil, err
	}
	return &Session{s: inner}, nil
}

// Get returns the managed session with the given ID.
func (m *Manager) Get(id string) (*Session, bool) {
	inner, ok := m.m.Get(id)
	if !ok {
		return nil, false
	}
	return &Session{s: inner}, true
}

// Remove forgets a session, deletes its durable record and releases the
// questions it still had in flight, so sibling sessions can post them
// instead. It reports whether anything was removed: an ID that is not
// live but still holds a store record (a session whose recovery failed)
// is purged from the store.
func (m *Manager) Remove(id string) (bool, error) { return m.m.Remove(id) }

// SessionIDs returns the live session IDs in deterministic order.
func (m *Manager) SessionIDs() []string { return m.m.IDs() }

// PersistFailures returns how many store operations have failed across
// the manager's sessions; non-zero means at least one session's durable
// state is frozen behind its in-memory state (see Session.PersistErr).
func (m *Manager) PersistFailures() int64 { return m.m.PersistFailures() }

// WALReplayed returns how many WAL records recovery has replayed on top
// of session snapshots since the manager was opened.
func (m *Manager) WALReplayed() int64 { return m.m.WALReplayed() }

// CacheStats sums answer-cache hits, misses and granted question
// reservations across every namespace the manager serves.
func (m *Manager) CacheStats() (hits, misses, reservations int64) { return m.m.CacheStats() }

// DeduceStats are one namespace's answer-deduction counters, cumulative
// over the manager's lifetime.
type DeduceStats struct {
	// Hits counts verdicts served by transitive closure instead of the
	// crowd.
	Hits uint64
	// Clusters counts cluster merges (union operations) among the
	// namespace's recorded facts.
	Clusters uint64
	// Conflicts counts contradictory facts rejected by the store (an
	// inconsistent crowd answering a pair both ways).
	Conflicts uint64
}

// DeduceStatsByNamespace returns each namespace's deduction counters.
// Namespaces appear as soon as a session attaches, whether or not any
// of their sessions enabled deduction (answers are recorded as facts
// regardless; hits stay 0 until a Deduce-on session consults them).
func (m *Manager) DeduceStatsByNamespace() map[string]DeduceStats {
	out := make(map[string]DeduceStats)
	for ns, s := range m.m.DeduceStats() {
		out[ns] = DeduceStats{Hits: s.Hits, Clusters: s.Unions, Conflicts: s.Conflicts}
	}
	return out
}

// Flush rotates every live session's durable snapshot to its current
// state, so a subsequent recovery replays no WAL.
func (m *Manager) Flush() error { return m.m.FlushAll() }

// Close flushes every session and closes the store.
func (m *Manager) Close() error { return m.m.Close() }

// fromCoreResult converts the pipeline result to the public shape.
func fromCoreResult(res *core.Result) *Result {
	return &Result{
		Matches:           res.Matches,
		Confirmed:         res.Confirmed,
		Propagated:        res.Propagated,
		IsolatedPredicted: res.IsolatedPredicted,
		NonMatches:        res.NonMatches,
		Questions:         res.Questions,
		Deduced:           res.Deduced,
		Loops:             res.Loops,
	}
}
