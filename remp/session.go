package remp

import (
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/session"
)

// SessionState names a session's lifecycle state.
type SessionState = session.State

// Session lifecycle states: a session awaits answers until the stop
// criterion holds, then it is done and the result is final.
const (
	// SessionAwaiting means a question batch is published and at least one
	// answer is outstanding.
	SessionAwaiting = session.StateAwaiting
	// SessionDone means the result is final.
	SessionDone = session.StateDone
)

// Question is one published crowd question: a stable wire ID ("u1-u2")
// plus the entity pair it asks about.
type Question = session.Question

// Label is one worker's answer in wire form: worker ID, answer quality
// λ ∈ (0,1] and the verdict.
type Label = session.Label

// Session is an asynchronous resolution job: the paper's human–machine
// loop inverted into a pull/push state machine. NextBatch publishes the
// current µ-question batch; Deliver accepts the crowd's answers in any
// order; once a batch drains the loop advances (propagation sync,
// confirm/detach, re-estimation, padding, stop criterion) exactly as the
// synchronous Resolve would. Sessions are safe for concurrent use and
// survive process restarts through Snapshot / RestoreSession.
type Session struct {
	s *session.Session
}

// NewSession prepares the pipeline and starts a standalone session over
// it. Use Manager.NewSession instead when several sessions should share
// crowd answers.
func NewSession(ds Dataset, opts Options) (*Session, error) {
	p, err := prepare(ds, opts)
	if err != nil {
		return nil, err
	}
	return &Session{s: session.New("session", p, nil)}, nil
}

// ID returns the session identifier ("session" for standalone sessions;
// manager-created ones get unique IDs).
func (s *Session) ID() string { return s.s.ID() }

// State returns the session's lifecycle state.
func (s *Session) State() SessionState { return s.s.State() }

// Done reports whether the result is final.
func (s *Session) Done() bool { return s.s.Done() }

// Progress returns the questions answered and loops executed so far.
func (s *Session) Progress() (questions, loops int) { return s.s.Progress() }

// Shards returns how many graph shards the session resolves concurrently
// (1 = monolithic pipeline).
func (s *Session) Shards() int { return s.s.Shards() }

// NextBatch returns the published questions still awaiting answers. An
// empty batch means the session is done — except under a Manager, where
// it can also mean every open question is already in flight in a sibling
// session; poll again after siblings deliver.
func (s *Session) NextBatch() []Question { return s.s.NextBatch() }

// Deliver accepts the worker labels for one published question, in any
// order. Answers are applied in the batch's selection order internally,
// so delivery order cannot change the result.
func (s *Session) Deliver(questionID string, labels []Label) error {
	return s.s.Deliver(questionID, labels)
}

// deliverCrowd feeds pipeline-typed labels straight into the session — the
// Asker adapter used by Resolve.
func (s *Session) deliverCrowd(q Pair, labels []crowd.Label) error {
	return s.s.DeliverPair(q, labels)
}

// Result returns a detached copy of the session's result; final once Done.
func (s *Session) Result() *Result {
	return fromCoreResult(s.s.Result())
}

// Snapshot serializes the session's state to JSON: an event log of the
// answers applied so far (plus any buffered out of order), replayable
// against a freshly prepared pipeline. Persist it with the dataset and
// Options used at creation; RestoreSession needs all three.
func (s *Session) Snapshot() ([]byte, error) {
	return session.EncodeSnapshot(s.s.Snapshot())
}

// RestoreSession rebuilds a session from a Snapshot by re-preparing the
// pipeline from the same dataset and options and replaying the answer
// log. A snapshot replayed against a different dataset or configuration
// fails with a divergence error.
func RestoreSession(ds Dataset, opts Options, snapshot []byte) (*Session, error) {
	snap, err := session.DecodeSnapshot(snapshot)
	if err != nil {
		return nil, err
	}
	p, err := prepare(ds, opts)
	if err != nil {
		return nil, err
	}
	inner, err := session.Restore(p, nil, snap)
	if err != nil {
		return nil, err
	}
	return &Session{s: inner}, nil
}

// Manager runs many concurrent sessions and shares crowd answers between
// the sessions of one namespace (use one namespace per dataset): a pair
// answered — or merely published — by one session is never re-posted by
// another, so the crowd is asked each question at most once.
type Manager struct {
	m *session.Manager
}

// NewManager returns an empty session manager.
func NewManager() *Manager { return &Manager{m: session.NewManager()} }

// NewSession prepares a pipeline and starts a managed session in the
// namespace. Sharded pipelines of all managed sessions draw their shard
// workers from the manager's shared scheduler, so concurrent sessions
// cannot oversubscribe the machine.
func (m *Manager) NewSession(ds Dataset, opts Options, namespace string) (*Session, error) {
	p, err := prepareSched(ds, opts, m.m.Scheduler())
	if err != nil {
		return nil, err
	}
	return &Session{s: m.m.Create(p, namespace)}, nil
}

// RestoreSession rebuilds a snapshotted session inside the manager,
// keeping its snapshot ID and re-joining the namespace's answer cache.
func (m *Manager) RestoreSession(ds Dataset, opts Options, namespace string, snapshot []byte) (*Session, error) {
	snap, err := session.DecodeSnapshot(snapshot)
	if err != nil {
		return nil, err
	}
	p, err := prepareSched(ds, opts, m.m.Scheduler())
	if err != nil {
		return nil, err
	}
	inner, err := m.m.Restore(p, namespace, snap)
	if err != nil {
		return nil, err
	}
	return &Session{s: inner}, nil
}

// Get returns the managed session with the given ID.
func (m *Manager) Get(id string) (*Session, bool) {
	inner, ok := m.m.Get(id)
	if !ok {
		return nil, false
	}
	return &Session{s: inner}, true
}

// Remove forgets a session and releases the questions it still had in
// flight, so sibling sessions can post them instead.
func (m *Manager) Remove(id string) { m.m.Remove(id) }

// SessionIDs returns the live session IDs in deterministic order.
func (m *Manager) SessionIDs() []string { return m.m.IDs() }

// fromCoreResult converts the pipeline result to the public shape.
func fromCoreResult(res *core.Result) *Result {
	return &Result{
		Matches:           res.Matches,
		Confirmed:         res.Confirmed,
		Propagated:        res.Propagated,
		IsolatedPredicted: res.IsolatedPredicted,
		NonMatches:        res.NonMatches,
		Questions:         res.Questions,
		Loops:             res.Loops,
	}
}
