package remp_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/remp"
)

// oracleWire answers a question the way NewOracleCrowd would, in wire form.
func oracleWire(gold *remp.Gold, q remp.Pair) []remp.Label {
	return []remp.Label{{WorkerID: 0, Quality: 0.999, IsMatch: gold.IsMatch(q)}}
}

func sameSet(a, b map[remp.Pair]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if _, ok := b[p]; !ok {
			return false
		}
	}
	return true
}

func assertSameResult(t *testing.T, want, got *remp.Result) {
	t.Helper()
	for _, s := range []struct {
		name string
		x, y map[remp.Pair]struct{}
	}{
		{"Matches", want.Matches, got.Matches},
		{"Confirmed", want.Confirmed, got.Confirmed},
		{"Propagated", want.Propagated, got.Propagated},
		{"IsolatedPredicted", want.IsolatedPredicted, got.IsolatedPredicted},
		{"NonMatches", want.NonMatches, got.NonMatches},
	} {
		if !sameSet(s.x, s.y) {
			t.Fatalf("%s differ: want %d pairs, got %d", s.name, len(s.x), len(s.y))
		}
	}
	if want.Questions != got.Questions || want.Loops != got.Loops {
		t.Fatalf("Questions/Loops differ: want %d/%d, got %d/%d",
			want.Questions, want.Loops, got.Questions, got.Loops)
	}
}

// TestSessionEquivalentToResolve drives a public Session with shuffled
// answer delivery and requires the exact Result the synchronous Resolve
// produces on the same dataset and options.
func TestSessionEquivalentToResolve(t *testing.T) {
	ds, gold := tinyWorld()
	opts := remp.Options{Mu: 3}
	want, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), opts)
	if err != nil {
		t.Fatal(err)
	}

	s, err := remp.NewSession(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for !s.Done() {
		if s.State() != remp.SessionAwaiting {
			t.Fatalf("open session in state %q", s.State())
		}
		batch := s.NextBatch()
		if len(batch) == 0 {
			t.Fatal("open session published an empty batch")
		}
		rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
		for _, q := range batch {
			if err := s.Deliver(q.ID, oracleWire(gold, q.Pair)); err != nil {
				t.Fatalf("Deliver(%s): %v", q.ID, err)
			}
		}
	}
	if s.State() != remp.SessionDone {
		t.Fatalf("finished session in state %q", s.State())
	}
	assertSameResult(t, want, s.Result())
}

// TestSessionSnapshotRoundTrip snapshots after the first batch, restores
// on a fresh pipeline, and requires the restored session to converge to
// the synchronous result.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	ds, gold := tinyWorld()
	opts := remp.Options{Mu: 2}
	want, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), opts)
	if err != nil {
		t.Fatal(err)
	}

	s, err := remp.NewSession(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range s.NextBatch() {
		if err := s.Deliver(q.ID, oracleWire(gold, q.Pair)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := remp.RestoreSession(ds, opts, snap)
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	q0, l0 := s.Progress()
	q1, l1 := restored.Progress()
	if q0 != q1 || l0 != l1 {
		t.Fatalf("restored progress %d/%d, want %d/%d", q1, l1, q0, l0)
	}
	for !restored.Done() {
		for _, q := range restored.NextBatch() {
			if err := restored.Deliver(q.ID, oracleWire(gold, q.Pair)); err != nil {
				t.Fatal(err)
			}
		}
	}
	assertSameResult(t, want, restored.Result())
}

// TestOptionsValidation pins the boundary checks: negative tunables must
// be rejected with errors naming the offending field, not silently
// replaced by defaults.
func TestOptionsValidation(t *testing.T) {
	ds, gold := tinyWorld()
	cases := []struct {
		field string
		opts  remp.Options
	}{
		{"K", remp.Options{K: -1}},
		{"Mu", remp.Options{Mu: -4}},
		{"Budget", remp.Options{Budget: -10}},
		{"MaxLoops", remp.Options{MaxLoops: -2}},
		{"LabelSimThreshold", remp.Options{LabelSimThreshold: -0.5}},
		{"LabelSimThreshold", remp.Options{LabelSimThreshold: 1.5}},
	}
	for _, tc := range cases {
		_, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), tc.opts)
		if err == nil {
			t.Errorf("Options%+v accepted; want an error naming %s", tc.opts, tc.field)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("Options%+v: error %q does not name %s", tc.opts, err, tc.field)
		}
		if _, err := remp.NewSession(ds, tc.opts); err == nil {
			t.Errorf("NewSession accepted Options%+v", tc.opts)
		}
	}
	// Zero values still select the defaults.
	if _, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), remp.Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}
