// Package remp is the public API of the Remp reproduction: crowdsourced
// collective entity resolution with relational match propagation (Huang et
// al., ICDE 2020).
//
// The entry point is Resolve, which runs the full four-stage pipeline —
// ER graph construction, relational match propagation, multiple questions
// selection and error-tolerant truth inference — against a crowdsourcing
// platform (simulated or custom):
//
//	ds := remp.Dataset{K1: kb1, K2: kb2}
//	platform := remp.NewSimulatedCrowd(gold.IsMatch, remp.CrowdConfig{})
//	result, err := remp.Resolve(ds, platform, remp.Options{})
//
// Lower-level building blocks (blocking, attribute matching, pruning,
// propagation, question selection) live in the internal packages and are
// surfaced through the Pipeline type for step-by-step inspection.
package remp

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pair"
	"repro/internal/selection"
)

// KB re-exports the knowledge-base type; construct with NewKB.
type KB = kb.KB

// EntityID identifies an entity within one KB.
type EntityID = kb.EntityID

// Pair is an entity pair (u1 ∈ K1, u2 ∈ K2).
type Pair = pair.Pair

// Gold is a reference alignment used for evaluation and simulated crowds.
type Gold = pair.Gold

// PRF bundles precision / recall / F1.
type PRF = pair.PRF

// NewKB returns an empty knowledge base with the given name.
func NewKB(name string) *KB { return kb.New(name) }

// NewGold builds a gold standard from true matches.
func NewGold(matches []Pair) *Gold { return pair.NewGold(matches) }

// Evaluate scores a predicted match set against a gold standard.
func Evaluate(predicted map[Pair]struct{}, gold *Gold) PRF {
	return pair.Evaluate(pair.Set(predicted), gold)
}

// Dataset is a pair of knowledge bases to resolve.
type Dataset struct {
	K1 *KB
	K2 *KB
}

// Options mirrors the paper's tunables; zero values become the paper's
// uniform settings (k=4, τ=0.9, µ=10, label-similarity threshold 0.3).
type Options struct {
	// K bounds partial-order pruning to ~k counterpart candidates/entity.
	K int
	// Tau is the precision threshold for propagated matches; it must lie
	// in (0, 1] (0 selects the default 0.9), anything else is rejected by
	// Resolve / NewPipeline with a descriptive error.
	Tau float64
	// Mu is the number of questions per human-machine loop.
	Mu int
	// LabelSimThreshold prunes candidate pairs below this label Jaccard.
	LabelSimThreshold float64
	// Budget caps the number of crowd questions (0 = unlimited).
	Budget int
	// MaxLoops caps human-machine loops (0 = unlimited).
	MaxLoops int
	// Strategy selects questions: "greedy" (default, Algorithm 3),
	// "maxinf" or "maxpr".
	Strategy string
	// DisableIsolatedClassifier turns off the §VII-B random forest.
	DisableIsolatedClassifier bool
	// Seed drives the pipeline's randomized components.
	Seed int64
	// Shards splits the candidate-pair graph into independent shards of
	// relationally connected components whose propagation, selection and
	// answer application run concurrently under one global budget/µ-batch
	// scheduler. The resolved matches and non-matches are identical to an
	// unsharded run. 0 (the default) shards automatically from the graph
	// size — single-shard below a few thousand candidate pairs; 1 forces
	// a monolithic pipeline; negative values are rejected.
	Shards int
	// Runner places the session's shard engines: nil (the default) keeps
	// them in process; internal/cluster's coordinator vends factories that
	// place them on worker processes with crash failover. Runtime-only —
	// it never serializes (the server re-injects it per session) — and a
	// conforming runner is observably identical to the in-process one, so
	// results are unaffected.
	Runner RunnerFactory
	// Deduce enables transitive-closure answer deduction: every resolved
	// pair is recorded as a fact (match ∧ match ⇒ match; a matched entity
	// excludes its competitors under the 1:1 constraint), batches are
	// reordered so answers close as many open batch-mates as possible,
	// and a question whose verdict the recorded answers already imply is
	// deduced for free instead of being posted to the crowd. Results are
	// byte-identical to a Deduce-on synchronous oracle run regardless of
	// sharding, delivery order or clustering; Result.Deduced counts the
	// crowd questions saved.
	Deduce bool
}

// RunnerFactory builds the shard-engine runner a session's loop drives;
// see core.ShardRunner. Constructed by internal/cluster — not by API
// consumers.
type RunnerFactory = core.RunnerFactory

// Asker abstracts a crowdsourcing platform.
type Asker = core.Asker

// CrowdConfig configures the simulated crowd (see crowd.Config).
type CrowdConfig struct {
	NumWorkers         int
	WorkersPerQuestion int
	// ErrorRate > 0 gives every worker quality 1−ErrorRate; otherwise
	// worker quality is drawn from [QualityLow, QualityHigh].
	ErrorRate               float64
	QualityLow, QualityHigh float64
	Seed                    int64
}

// NewSimulatedCrowd builds a simulated crowdsourcing platform answering
// from the given truth oracle.
func NewSimulatedCrowd(oracle func(Pair) bool, cfg CrowdConfig) Asker {
	return crowd.NewPlatform(oracle, crowd.Config{
		NumWorkers:         cfg.NumWorkers,
		WorkersPerQuestion: cfg.WorkersPerQuestion,
		ErrorRate:          cfg.ErrorRate,
		QualityLow:         cfg.QualityLow,
		QualityHigh:        cfg.QualityHigh,
		Seed:               cfg.Seed,
	})
}

// NewOracleCrowd builds a perfect single-worker platform (ground-truth
// labels), matching the paper's internal-evaluation setup.
func NewOracleCrowd(oracle func(Pair) bool) Asker {
	return core.NewOracleAsker(oracle)
}

// Result is the outcome of a Resolve run.
type Result struct {
	// Matches is the final match set.
	Matches map[Pair]struct{}
	// Confirmed, Propagated and IsolatedPredicted split Matches by origin:
	// worker-labeled, graph-inferred, and classifier-predicted.
	Confirmed         map[Pair]struct{}
	Propagated        map[Pair]struct{}
	IsolatedPredicted map[Pair]struct{}
	// NonMatches are pairs resolved negative by workers (or by the 1:1
	// entity constraint when a competitor was confirmed).
	NonMatches map[Pair]struct{}
	// Questions is the number of distinct questions asked.
	Questions int
	// Deduced is the number of selected questions answered by deduction
	// instead of the crowd (always 0 unless Options.Deduce).
	Deduced int
	// Loops is the number of human-machine loops executed.
	Loops int
}

// ErrNilInput is returned when a KB or the asker is missing.
var ErrNilInput = errors.New("remp: nil knowledge base or asker")

// configFromOptions maps the public Options onto the pipeline Config and
// validates them. Zero values keep the paper's defaults; explicitly
// invalid values — negative K, Mu, Budget or MaxLoops, an out-of-range Tau
// or LabelSimThreshold — are rejected with a descriptive error instead of
// being silently ignored.
func configFromOptions(opts Options) (core.Config, error) {
	cfg := core.DefaultConfig()
	if opts.K != 0 {
		cfg.K = opts.K
	}
	if opts.Tau != 0 {
		cfg.Tau = opts.Tau
	}
	if opts.Mu != 0 {
		cfg.Mu = opts.Mu
	}
	if opts.LabelSimThreshold != 0 {
		cfg.LabelSimThreshold = opts.LabelSimThreshold
	}
	cfg.Budget = opts.Budget
	cfg.MaxLoops = opts.MaxLoops
	cfg.ClassifyIsolated = !opts.DisableIsolatedClassifier
	cfg.Seed = opts.Seed
	cfg.Shards = opts.Shards
	cfg.Runner = opts.Runner
	cfg.Deduce = opts.Deduce
	if err := cfg.Validate(); err != nil {
		return core.Config{}, fmt.Errorf("remp: invalid options: %w", err)
	}
	switch opts.Strategy {
	case "", "greedy":
		cfg.Strategy = selection.Greedy{}
	case "maxinf":
		cfg.Strategy = selection.MaxInf{}
	case "maxpr":
		cfg.Strategy = selection.MaxPr{}
	default:
		return core.Config{}, errors.New("remp: unknown strategy " + opts.Strategy)
	}
	return cfg, nil
}

// prepare validates the inputs and runs stages 1–2 of the pipeline.
func prepare(ds Dataset, opts Options) (*core.Prepared, error) {
	return prepareSched(ds, opts, nil, nil)
}

// PreparePipeline validates the inputs and returns the prepared core
// pipeline without starting a loop. It exists for cluster workers, whose
// Prepare hook rebuilds the coordinator's pipeline from a session spec
// and serves shard states off it; ordinary API consumers want NewPipeline
// or Resolve instead.
func PreparePipeline(ds Dataset, opts Options) (*core.Prepared, error) {
	return prepare(ds, opts)
}

// prepareSched is prepare with an explicit shard-work scheduler (the
// Manager's shared pool) and instrumentation hooks; nil keeps the
// process-wide default scheduler / an uninstrumented pipeline.
func prepareSched(ds Dataset, opts Options, sched *core.Scheduler, o *obs.Pipeline) (*core.Prepared, error) {
	if ds.K1 == nil || ds.K2 == nil {
		return nil, ErrNilInput
	}
	cfg, err := configFromOptions(opts)
	if err != nil {
		return nil, err
	}
	cfg.Sched = sched
	cfg.Obs = o
	return core.Prepare(ds.K1, ds.K2, cfg), nil
}

// Resolve runs the full Remp pipeline on the dataset against the asker.
// It is implemented as a Session driven synchronously by the Asker: every
// published batch is answered in selection order, which is exactly the
// paper's blocking human–machine loop.
func Resolve(ds Dataset, asker Asker, opts Options) (*Result, error) {
	if asker == nil {
		return nil, ErrNilInput
	}
	s, err := NewSession(ds, opts)
	if err != nil {
		return nil, err
	}
	for !s.Done() {
		batch := s.NextBatch()
		if len(batch) == 0 {
			// Unreachable: a standalone session always publishes its whole
			// open batch while awaiting answers.
			return nil, errors.New("remp: session stalled with no open questions")
		}
		// Answer only the head question, then re-publish: with Deduce on,
		// an applied answer can imply verdicts for later batch members,
		// and NextBatch withholds those — so a deduced question never
		// reaches the Asker. The head itself is never deducible.
		q := batch[0]
		if err := s.deliverCrowd(q.Pair, asker.Ask(q.Pair)); err != nil {
			return nil, err
		}
	}
	return s.Result(), nil
}

// Pipeline exposes the prepared pipeline for step-by-step use: stage-1
// artifacts are computed by NewPipeline; Run executes the human–machine
// loop.
type Pipeline struct {
	prepared *core.Prepared
}

// NewPipeline runs ER graph construction (stage 1) and propagation
// modeling (stage 2), returning a pipeline ready to ask questions.
func NewPipeline(ds Dataset, opts Options) (*Pipeline, error) {
	p, err := prepare(ds, opts)
	if err != nil {
		return nil, err
	}
	return &Pipeline{prepared: p}, nil
}

// Run executes the human–machine loop.
func (p *Pipeline) Run(asker Asker) (*Result, error) {
	if asker == nil {
		return nil, ErrNilInput
	}
	return fromCoreResult(p.prepared.Run(asker)), nil
}

// CandidatePairs returns the retained entity pairs (the ER graph's
// vertices) after blocking and partial-order pruning.
func (p *Pipeline) CandidatePairs() []Pair {
	return append([]Pair(nil), p.prepared.Retained...)
}

// GraphStats reports the ER graph's size.
func (p *Pipeline) GraphStats() (vertices, edges int) {
	return p.prepared.Graph.NumVertices(), p.prepared.Graph.NumEdges()
}

// PropagateFromSeeds runs propagation-only resolution from known seed
// matches (no crowdsourcing), as in the paper's Table VI.
func (p *Pipeline) PropagateFromSeeds(seeds []Pair) map[Pair]struct{} {
	return p.prepared.PropagateFromSeeds(seeds)
}
