package remp_test

import (
	"fmt"

	"repro/remp"
)

// ExampleResolve resolves two three-entity KBs: a labeled author match
// propagates to the book through the wrote/authorOf relationship.
func ExampleResolve() {
	k1 := remp.NewKB("left")
	k2 := remp.NewKB("right")
	name1, name2 := k1.AddAttr("name"), k2.AddAttr("label")
	wrote1, wrote2 := k1.AddRel("wrote"), k2.AddRel("authorOf")

	addPair := func(n1, n2, label string) (remp.EntityID, remp.EntityID) {
		u1, u2 := k1.AddEntity(n1), k2.AddEntity(n2)
		k1.SetLabel(u1, label)
		k2.SetLabel(u2, label)
		k1.AddAttrTriple(u1, name1, label)
		k2.AddAttrTriple(u2, name2, label)
		return u1, u2
	}
	a1, a2 := addPair("l:morrison", "r:morrison", "toni morrison")
	b1, b2 := addPair("l:beloved", "r:beloved", "beloved")
	c1, c2 := addPair("l:sula", "r:sula", "sula")
	k1.AddRelTriple(a1, wrote1, b1)
	k2.AddRelTriple(a2, wrote2, b2)
	k1.AddRelTriple(a1, wrote1, c1)
	k2.AddRelTriple(a2, wrote2, c2)

	gold := remp.NewGold([]remp.Pair{{U1: a1, U2: a2}, {U1: b1, U2: b2}, {U1: c1, U2: c2}})
	crowd := remp.NewOracleCrowd(gold.IsMatch)

	res, err := remp.Resolve(remp.Dataset{K1: k1, K2: k2}, crowd, remp.Options{Mu: 1})
	if err != nil {
		panic(err)
	}
	prf := remp.Evaluate(res.Matches, gold)
	fmt.Printf("matches=%d questions=%d F1=%.0f%%\n", len(res.Matches), res.Questions, 100*prf.F1)
	// Output: matches=3 questions=1 F1=100%
}
