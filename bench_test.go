// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (§VIII) under testing.B, one benchmark per
// artifact. Each iteration runs the corresponding experiments driver on
// the full synthetic dataset suite, so b.N=1 already produces the paper's
// rows (written to io.Discard here; use cmd/remp-bench to see them).
package repro

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, run func(w io.Writer, seed int64)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run(io.Discard, experiments.DefaultSeed)
	}
}

// BenchmarkTable3_RealWorkers regenerates Table III: F1 and #questions for
// Remp vs HIKE/POWER/Corleone under the simulated MTurk-quality pool.
func BenchmarkTable3_RealWorkers(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Table3(w, s) })
}

// BenchmarkFigure3_ErrorRates regenerates Figure 3: the same comparison
// under worker error rates 0.05 / 0.15 / 0.25.
func BenchmarkFigure3_ErrorRates(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Figure3(w, s) })
}

// BenchmarkTable4_AttrMatching regenerates Table IV: attribute matching
// effectiveness with and without the 1:1 constraint.
func BenchmarkTable4_AttrMatching(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Table4(w, s) })
}

// BenchmarkTable5_Pruning regenerates Table V: partial-order pruning
// effectiveness at k=4.
func BenchmarkTable5_Pruning(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Table5(w, s) })
}

// BenchmarkFigure4_PairCompleteness regenerates Figure 4: pair
// completeness of the retained matches as k sweeps 1..13.
func BenchmarkFigure4_PairCompleteness(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Figure4(w, s) })
}

// BenchmarkTable6_SeedPropagation regenerates Table VI: propagation-only
// Remp vs PARIS and SiGMa across seed portions.
func BenchmarkTable6_SeedPropagation(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Table6(w, s) })
}

// BenchmarkFigure5_QuestionBenefit regenerates Figure 5: F1 versus
// #questions for the benefit function against MaxInf and MaxPr.
func BenchmarkFigure5_QuestionBenefit(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Figure5(w, s) })
}

// BenchmarkTable7_BatchSize regenerates Table VII: the µ sweep.
func BenchmarkTable7_BatchSize(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Table7(w, s) })
}

// BenchmarkTable8_IsolatedPairs regenerates Table VIII: the isolated-pair
// random forest.
func BenchmarkTable8_IsolatedPairs(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Table8(w, s) })
}

// BenchmarkFigure6_Scalability regenerates Figure 6: runtime of
// Algorithms 1–3 on growing portions of the D-Y pairs.
func BenchmarkFigure6_Scalability(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.Figure6(w, s) })
}

// BenchmarkShards_Scalability runs the shard-count speedup sweep on the
// clustered synthetic graph: the sharded human–machine loop against the
// monolithic one, with exact-equivalence checks.
func BenchmarkShards_Scalability(b *testing.B) {
	benchExperiment(b, func(w io.Writer, s int64) { experiments.ShardScalability(w, s) })
}
