// Command benchreport turns raw benchmark output into the repository's
// machine-readable benchmark trajectory and gates CI on regressions.
//
// It parses `go test -bench` text output, merges the shard-scalability
// report written by `remp-bench -experiment shards -json`, annotates the
// built-in dataset sizes, and writes one BENCH_remp.json. When a baseline
// file is given it compares ns/op benchmark by benchmark and exits
// non-zero if any benchmark regressed by more than the allowed fraction
// — after normalizing by the median ratio across all shared benchmarks,
// so a uniformly slower or faster host (CI runners vs the machine that
// recorded the baseline) does not trip the gate; only benchmarks that
// moved relative to the rest of the suite do.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | tee bench.txt
//	remp-bench -experiment shards -json shards.json
//	benchreport -bench bench.txt -shards shards.json \
//	    -baseline BENCH_baseline.json -out BENCH_remp.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/datasets"
	"repro/internal/experiments"
)

// Report is the BENCH_remp.json schema.
type Report struct {
	Version     int                      `json:"version"`
	Go          string                   `json:"go"`
	Benchmarks  []Benchmark              `json:"benchmarks"`
	Scalability *experiments.ShardReport `json:"scalability,omitempty"`
	Datasets    []DatasetSize            `json:"datasets"`
}

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// DatasetSize records the synthetic benchmark suite's scale alongside the
// timings that were measured on it.
type DatasetSize struct {
	Name        string `json:"name"`
	Entities1   int    `json:"entities1"`
	Entities2   int    `json:"entities2"`
	GoldMatches int    `json:"gold_matches"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

func main() {
	benchPath := flag.String("bench", "", "go test -bench output to parse (required)")
	shardsPath := flag.String("shards", "", "shard-scalability JSON from remp-bench -experiment shards -json")
	baselinePath := flag.String("baseline", "", "baseline BENCH json to gate against")
	outPath := flag.String("out", "BENCH_remp.json", "output path")
	maxRegression := flag.Float64("max-regression", 0.25, "maximum allowed relative slowdown vs baseline")
	flag.Parse()

	if *benchPath == "" {
		fatalf("benchreport: -bench is required")
	}
	report := &Report{Version: 1, Go: runtime.Version()}

	raw, err := os.ReadFile(*benchPath)
	if err != nil {
		fatalf("benchreport: %v", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		report.Benchmarks = append(report.Benchmarks, Benchmark{Name: m[1], NsPerOp: ns})
	}
	if len(report.Benchmarks) == 0 {
		fatalf("benchreport: no benchmark lines found in %s", *benchPath)
	}
	sort.Slice(report.Benchmarks, func(i, j int) bool { return report.Benchmarks[i].Name < report.Benchmarks[j].Name })

	if *shardsPath != "" {
		data, err := os.ReadFile(*shardsPath)
		if err != nil {
			fatalf("benchreport: %v", err)
		}
		var shard experiments.ShardReport
		if err := json.Unmarshal(data, &shard); err != nil {
			fatalf("benchreport: parsing %s: %v", *shardsPath, err)
		}
		report.Scalability = &shard
	}

	for _, ds := range datasets.All(experiments.DefaultSeed) {
		report.Datasets = append(report.Datasets, DatasetSize{
			Name:        ds.Name,
			Entities1:   ds.K1.NumEntities(),
			Entities2:   ds.K2.NumEntities(),
			GoldMatches: ds.Gold.Size(),
		})
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("benchreport: %v", err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fatalf("benchreport: %v", err)
	}
	fmt.Printf("benchreport: wrote %s (%d benchmarks)\n", *outPath, len(report.Benchmarks))

	failed := false
	if report.Scalability != nil {
		for _, pt := range report.Scalability.Points {
			if !pt.Equivalent {
				fmt.Printf("benchreport: FAIL sharded run at %d shards diverged from the monolithic result\n", pt.Shards)
				failed = true
			}
		}
	}
	if *baselinePath != "" {
		if gate(report, *baselinePath, *maxRegression) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// gate compares the current report to the baseline and reports
// regressions; it returns true when the gate should fail the build.
func gate(report *Report, baselinePath string, maxRegression float64) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fatalf("benchreport: %v", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("benchreport: parsing %s: %v", baselinePath, err)
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp
	}
	type cmp struct {
		name  string
		ratio float64
	}
	var shared []cmp
	for _, b := range report.Benchmarks {
		if bn, ok := baseNs[b.Name]; ok && bn > 0 && b.NsPerOp > 0 {
			shared = append(shared, cmp{name: b.Name, ratio: b.NsPerOp / bn})
		}
	}
	if len(shared) == 0 {
		fmt.Println("benchreport: no benchmarks shared with the baseline; gate skipped")
		return false
	}
	// Median ratio calibrates away the host-speed difference between this
	// run and the machine that recorded the baseline.
	ratios := make([]float64, len(shared))
	for i, c := range shared {
		ratios[i] = c.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if median <= 0 {
		median = 1
	}
	failed := false
	for _, c := range shared {
		normalized := c.ratio / median
		status := "ok"
		if normalized > 1+maxRegression {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchreport: %-55s ratio %.3f (normalized %.3f) %s\n", c.name, c.ratio, normalized, status)
	}
	if failed {
		fmt.Printf("benchreport: FAIL benchmarks regressed more than %.0f%% vs %s (median-normalized)\n", 100*maxRegression, baselinePath)
	} else {
		fmt.Printf("benchreport: gate green vs %s (%d benchmarks, median ratio %.3f)\n", baselinePath, len(shared), median)
	}
	return failed
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
