// Command benchreport turns raw benchmark output into the repository's
// machine-readable benchmark trajectory and gates CI on regressions.
//
// It parses `go test -bench` text output — ns/op plus the B/op and
// allocs/op columns b.ReportAllocs emits — merges the shard-scalability
// report written by `remp-bench -experiment shards -json`, annotates the
// built-in dataset sizes, and writes one BENCH_remp.json. When a baseline
// file is given it compares every metric benchmark by benchmark and exits
// non-zero if any benchmark regressed by more than the allowed fraction
// — after normalizing by the per-metric median ratio across all shared
// benchmarks, so a uniformly slower or faster host (CI runners vs the
// machine that recorded the baseline) does not trip the time gate, and a
// Go-version-wide allocator shift does not trip the allocation gate; only
// benchmarks that moved relative to the rest of the suite do.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | tee bench.txt
//	remp-bench -experiment shards -json shards.json
//	remp-bench -experiment prepare -n 20000 -json prepare.json
//	benchreport -bench bench.txt -shards shards.json -prepare prepare.json \
//	    -baseline BENCH_baseline.json -out BENCH_remp.json
//
// The prepare report carries its own gate: the indexed pre-pipeline must
// be byte-identical to the naive path, and — when the report ran the
// naive cross-check — at least -min-prepare-speedup times faster.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/datasets"
	"repro/internal/experiments"
	"repro/internal/loadgen"
)

// Report is the BENCH_remp.json schema.
type Report struct {
	Version     int                      `json:"version"`
	Go          string                   `json:"go"`
	Benchmarks  []Benchmark              `json:"benchmarks"`
	Scalability *experiments.ShardReport `json:"scalability,omitempty"`
	// Prepare is the pre-pipeline report (indexed blocking + batched
	// similarity vs the naive path) from remp-bench -experiment prepare.
	Prepare *experiments.PrepareReport `json:"prepare,omitempty"`
	// LoadTest is the remp-loadgen report (throughput against a live
	// server plus the oracle-equivalence verdict), when one was run.
	LoadTest *loadgen.Report `json:"load_test,omitempty"`
	// Deduction is the answer-deduction report (crowd questions saved per
	// dataset) from remp-bench -experiment deduction.
	Deduction *experiments.DeductionReport `json:"deduction,omitempty"`
	Datasets  []DatasetSize                `json:"datasets"`
}

// Benchmark is one `go test -bench` result line. BytesPerOp/AllocsPerOp
// are -1 when the line carried no allocation columns (a benchmark without
// b.ReportAllocs), so a true 0 allocs/op stays distinguishable.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// DatasetSize records the synthetic benchmark suite's scale alongside the
// timings that were measured on it.
type DatasetSize struct {
	Name        string `json:"name"`
	Entities1   int    `json:"entities1"`
	Entities2   int    `json:"entities2"`
	GoldMatches int    `json:"gold_matches"`
}

var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	bytesCol   = regexp.MustCompile(`\s([\d.]+) B/op`)
	allocsCol  = regexp.MustCompile(`\s([\d.]+) allocs/op`)
	metricCols = []struct {
		key string
		get func(Benchmark) float64
	}{
		{"ns/op", func(b Benchmark) float64 { return b.NsPerOp }},
		{"B/op", func(b Benchmark) float64 { return b.BytesPerOp }},
		{"allocs/op", func(b Benchmark) float64 { return b.AllocsPerOp }},
	}
)

func main() {
	benchPath := flag.String("bench", "", "go test -bench output to parse (required)")
	shardsPath := flag.String("shards", "", "shard-scalability JSON from remp-bench -experiment shards -json")
	preparePath := flag.String("prepare", "", "pre-pipeline JSON from remp-bench -experiment prepare -json")
	minSpeedup := flag.Float64("min-prepare-speedup", 5.0, "minimum indexed-vs-naive pre-pipeline speedup (applies only when the prepare report ran the naive cross-check)")
	loadgenPath := flag.String("loadgen", "", "load-test JSON from remp-loadgen -json")
	deducePath := flag.String("deduce", "", "deduction JSON from remp-bench -experiment deduction -json")
	minDeduceSavings := flag.Float64("min-deduce-savings", 0.10, "minimum crowd-questions-saved ratio deduction must reach on at least two datasets (applies only when a -deduce report is given)")
	baselinePath := flag.String("baseline", "", "baseline BENCH json to gate against")
	outPath := flag.String("out", "BENCH_remp.json", "output path")
	maxRegression := flag.Float64("max-regression", 0.25, "maximum allowed relative slowdown vs baseline")
	maxP99Ratio := flag.Float64("max-p99-ratio", 5.0, "maximum allowed loadgen p99 latency ratio vs baseline (per operation; applies only when both reports carry latency data)")
	flag.Parse()

	if *benchPath == "" {
		fatalf("benchreport: -bench is required")
	}
	// Version 2 added the bytes_per_op / allocs_per_op columns.
	report := &Report{Version: 2, Go: runtime.Version()}

	raw, err := os.ReadFile(*benchPath)
	if err != nil {
		fatalf("benchreport: %v", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		if bm := bytesCol.FindStringSubmatch(line); bm != nil {
			if v, err := strconv.ParseFloat(bm[1], 64); err == nil {
				b.BytesPerOp = v
			}
		}
		if am := allocsCol.FindStringSubmatch(line); am != nil {
			if v, err := strconv.ParseFloat(am[1], 64); err == nil {
				b.AllocsPerOp = v
			}
		}
		report.Benchmarks = append(report.Benchmarks, b)
	}
	if len(report.Benchmarks) == 0 {
		fatalf("benchreport: no benchmark lines found in %s", *benchPath)
	}
	sort.Slice(report.Benchmarks, func(i, j int) bool { return report.Benchmarks[i].Name < report.Benchmarks[j].Name })

	if *shardsPath != "" {
		data, err := os.ReadFile(*shardsPath)
		if err != nil {
			fatalf("benchreport: %v", err)
		}
		var shard experiments.ShardReport
		if err := json.Unmarshal(data, &shard); err != nil {
			fatalf("benchreport: parsing %s: %v", *shardsPath, err)
		}
		report.Scalability = &shard
	}

	if *preparePath != "" {
		data, err := os.ReadFile(*preparePath)
		if err != nil {
			fatalf("benchreport: %v", err)
		}
		var prep experiments.PrepareReport
		if err := json.Unmarshal(data, &prep); err != nil {
			fatalf("benchreport: parsing %s: %v", *preparePath, err)
		}
		report.Prepare = &prep
	}

	if *loadgenPath != "" {
		data, err := os.ReadFile(*loadgenPath)
		if err != nil {
			fatalf("benchreport: %v", err)
		}
		var load loadgen.Report
		if err := json.Unmarshal(data, &load); err != nil {
			fatalf("benchreport: parsing %s: %v", *loadgenPath, err)
		}
		report.LoadTest = &load
	}

	if *deducePath != "" {
		data, err := os.ReadFile(*deducePath)
		if err != nil {
			fatalf("benchreport: %v", err)
		}
		var ded experiments.DeductionReport
		if err := json.Unmarshal(data, &ded); err != nil {
			fatalf("benchreport: parsing %s: %v", *deducePath, err)
		}
		report.Deduction = &ded
	}

	for _, ds := range datasets.All(experiments.DefaultSeed) {
		report.Datasets = append(report.Datasets, DatasetSize{
			Name:        ds.Name,
			Entities1:   ds.K1.NumEntities(),
			Entities2:   ds.K2.NumEntities(),
			GoldMatches: ds.Gold.Size(),
		})
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("benchreport: %v", err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fatalf("benchreport: %v", err)
	}
	fmt.Printf("benchreport: wrote %s (%d benchmarks)\n", *outPath, len(report.Benchmarks))

	failed := false
	if lt := report.LoadTest; lt != nil {
		if lt.Completed != lt.Sessions || !lt.ResultsMatch {
			fmt.Printf("benchreport: FAIL load test: %d/%d sessions completed, oracle match %v\n",
				lt.Completed, lt.Sessions, lt.ResultsMatch)
			failed = true
		} else {
			fmt.Printf("benchreport: load test green: %d sessions, %.0f answers/s, %d retries\n",
				lt.Sessions, lt.AnswersPerSec, lt.Retries)
		}
		for op, ls := range lt.Latency {
			fmt.Printf("benchreport: load test %-7s p50 %.2fms p95 %.2fms p99 %.2fms (n=%d)\n",
				op, ls.P50Ms, ls.P95Ms, ls.P99Ms, ls.Count)
		}
	}
	if prep := report.Prepare; prep != nil {
		if !prep.Equivalent {
			fmt.Printf("benchreport: FAIL pre-pipeline (%s) diverged from the naive path\n", prep.Dataset)
			failed = true
		}
		if prep.NaiveNS > 0 && prep.Speedup < *minSpeedup {
			fmt.Printf("benchreport: FAIL pre-pipeline speedup %.2fx below the %.1fx floor\n", prep.Speedup, *minSpeedup)
			failed = true
		}
		if prep.NaiveNS > 0 {
			fmt.Printf("benchreport: pre-pipeline green: %s, %.2fx speedup, byte-identical %v\n",
				prep.Dataset, prep.Speedup, prep.Equivalent)
		} else {
			fmt.Printf("benchreport: pre-pipeline green: %s, indexed %.2fs (naive cross-check skipped at this scale)\n",
				prep.Dataset, float64(prep.IndexedNS)/1e9)
		}
	}
	if report.Scalability != nil {
		for _, pt := range report.Scalability.Points {
			if !pt.Equivalent {
				fmt.Printf("benchreport: FAIL sharded run at %d shards diverged from the monolithic result\n", pt.Shards)
				failed = true
			}
		}
	}
	if gateDeduction(report.Deduction, *minDeduceSavings) {
		failed = true
	}
	if *baselinePath != "" {
		base := readBaseline(*baselinePath)
		if gate(report, base, *baselinePath, *maxRegression) {
			failed = true
		}
		if gateLatency(report, base, *maxP99Ratio) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// gate compares the current report to the baseline — ns/op, B/op and
// allocs/op independently, each normalized by its own median ratio across
// the shared benchmarks — and reports regressions; it returns true when
// the gate should fail the build. Benchmarks or baselines without a
// metric (value ≤ 0, e.g. a pre-allocation-columns baseline) are skipped
// for that metric only.
func readBaseline(path string) *Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("benchreport: %v", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("benchreport: parsing %s: %v", path, err)
	}
	return &base
}

func gate(report, base *Report, baselinePath string, maxRegression float64) bool {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	failed := false
	for _, metric := range metricCols {
		type cmp struct {
			name  string
			ratio float64
		}
		var shared []cmp
		metricFailed := false
		for _, b := range report.Benchmarks {
			bb, ok := baseBy[b.Name]
			if !ok {
				continue
			}
			cur, old := metric.get(b), metric.get(bb)
			if cur < 0 || old < 0 {
				continue // metric absent on one side (pre-v2 baseline)
			}
			if old == 0 {
				// A zero baseline has no ratio. 0 → 0 is fine; 0 → anything
				// is exactly the regression class this gate exists for (a
				// zero-alloc hot path growing an allocation), so it fails
				// outright instead of slipping past the ratio math.
				if cur > 0 {
					fmt.Printf("benchreport: %-10s %-55s was 0, now %v REGRESSION\n", metric.key, b.Name, cur)
					metricFailed = true
				}
				continue
			}
			shared = append(shared, cmp{name: b.Name, ratio: cur / old})
		}
		if len(shared) == 0 && !metricFailed {
			fmt.Printf("benchreport: no shared %s values with the baseline; %s gate skipped\n", metric.key, metric.key)
			continue
		}
		// The median ratio calibrates away whole-suite shifts: host speed
		// for ns/op, runtime/compiler allocation changes for B/op and
		// allocs/op. Only benchmarks that moved against the suite fail.
		ratios := make([]float64, len(shared))
		for i, c := range shared {
			ratios[i] = c.ratio
		}
		median := 1.0
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			median = ratios[len(ratios)/2]
			if median <= 0 {
				median = 1
			}
		}
		for _, c := range shared {
			normalized := c.ratio / median
			status := "ok"
			if normalized > 1+maxRegression {
				status = "REGRESSION"
				metricFailed = true
			}
			fmt.Printf("benchreport: %-10s %-55s ratio %.3f (normalized %.3f) %s\n", metric.key, c.name, c.ratio, normalized, status)
		}
		if metricFailed {
			fmt.Printf("benchreport: FAIL %s regressed more than %.0f%% vs %s (median-normalized)\n", metric.key, 100*maxRegression, baselinePath)
			failed = true
		} else {
			fmt.Printf("benchreport: %s gate green vs %s (%d benchmarks, median ratio %.3f)\n", metric.key, baselinePath, len(shared), median)
		}
	}
	return failed
}

// gateDeduction scores the answer-deduction report: every point must be
// byte-equivalent to its Deduce-off reference (deduction may never
// change a resolved pair), and the savings floor must hold on at least
// two datasets — measured by each dataset's minimum savings across
// shard counts, with a small epsilon so float rounding cannot flip the
// verdict. It returns true when the gate should fail the build.
func gateDeduction(ded *experiments.DeductionReport, minSavings float64) bool {
	if ded == nil {
		return false
	}
	const epsilon = 1e-9
	failed := false
	seen := make(map[string]bool)
	var names []string
	for _, pt := range ded.Points {
		if !pt.Equivalent {
			fmt.Printf("benchreport: FAIL deduction on %s @ %d shard(s) diverged from the Deduce-off reference\n", pt.Dataset, pt.Shards)
			failed = true
		}
		if !seen[pt.Dataset] {
			seen[pt.Dataset] = true
			names = append(names, pt.Dataset)
		}
	}
	atFloor := 0
	for _, name := range names {
		min, ok := ded.MinSavings(name)
		if !ok {
			continue
		}
		status := "below floor"
		if min >= minSavings-epsilon {
			atFloor++
			status = "ok"
		}
		fmt.Printf("benchreport: deduction  %-55s min savings %5.1f%% %s\n", name, 100*min, status)
	}
	if atFloor < 2 {
		fmt.Printf("benchreport: FAIL deduction reached the %.0f%% savings floor on %d dataset(s); at least 2 required\n", 100*minSavings, atFloor)
		failed = true
	} else if !failed {
		fmt.Printf("benchreport: deduction gate green: %d/%d datasets at or above the %.0f%% floor, all points equivalent\n", atFloor, len(names), 100*minSavings)
	}
	return failed
}

// gateLatency compares loadgen client-side p99 latency per operation
// against the baseline. It engages only when both the current report and
// the baseline carry latency data (so pre-latency baselines never trip
// it) and uses a generous ratio rather than a percentage: client p99 on
// a shared CI runner is noisy, and this gate exists to catch order-of-
// magnitude collapses (a lock convoy, an accidental fsync per request),
// not small drifts — those are the benchmark gate's job.
func gateLatency(report, base *Report, maxP99Ratio float64) bool {
	if report.LoadTest == nil || base.LoadTest == nil ||
		len(report.LoadTest.Latency) == 0 || len(base.LoadTest.Latency) == 0 {
		return false
	}
	failed := false
	for op, cur := range report.LoadTest.Latency {
		old, ok := base.LoadTest.Latency[op]
		if !ok || old.P99Ms <= 0 || cur.Count == 0 {
			continue
		}
		ratio := cur.P99Ms / old.P99Ms
		status := "ok"
		if ratio > maxP99Ratio {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchreport: p99        %-55s %.2fms vs %.2fms (ratio %.2f) %s\n", op, cur.P99Ms, old.P99Ms, ratio, status)
	}
	if failed {
		fmt.Printf("benchreport: FAIL loadgen p99 latency regressed more than %.1fx vs baseline\n", maxP99Ratio)
	}
	return failed
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
