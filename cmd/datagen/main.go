// Command datagen generates the synthetic benchmark datasets and writes
// them to disk in the TSV format that cmd/remp consumes: <name>.kb1.tsv,
// <name>.kb2.tsv and <name>.gold.tsv.
//
// Usage:
//
//	datagen -dataset iimb -out ./data
//	datagen -dataset all -seed 7 -out ./data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datasets"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	name := flag.String("dataset", "all", "dataset to generate: all, "+strings.Join(datasets.Names(), ", "))
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	var list []*datasets.Dataset
	if *name == "all" {
		list = datasets.All(*seed)
	} else {
		ds, err := datasets.ByName(*name, *seed)
		if err != nil {
			log.Fatal(err)
		}
		list = []*datasets.Dataset{ds}
	}

	for _, ds := range list {
		base := strings.ToLower(ds.Name)
		if err := writeDataset(ds, *out, base); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s | %s | %d gold matches → %s/%s.*.tsv\n",
			ds.Name, ds.K1.Stats(), ds.K2.Stats(), ds.Gold.Size(), *out, base)
	}
}

func writeDataset(ds *datasets.Dataset, dir, base string) error {
	write := func(suffix string, fn func(*bufio.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, base+suffix))
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		if err := fn(w); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := write(".kb1.tsv", func(w *bufio.Writer) error { return ds.K1.WriteTSV(w) }); err != nil {
		return err
	}
	if err := write(".kb2.tsv", func(w *bufio.Writer) error { return ds.K2.WriteTSV(w) }); err != nil {
		return err
	}
	return write(".gold.tsv", func(w *bufio.Writer) error {
		for _, m := range ds.Gold.Matches() {
			fmt.Fprintf(w, "%s\t%s\n", ds.K1.EntityName(m.U1), ds.K2.EntityName(m.U2))
		}
		return nil
	})
}
