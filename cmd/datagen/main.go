// Command datagen generates the synthetic benchmark datasets and writes
// them to disk in the formats that cmd/remp consumes: the line-based TSV
// (<name>.kb1.tsv, <name>.kb2.tsv and <name>.gold.tsv) and, with
// -format snap or both, the binary KB snapshot (<name>.kb1.snap,
// <name>.kb2.snap — see internal/kb for the format) that loads without
// re-parsing, which matters at the million-entity scale.
//
// Usage:
//
//	datagen -dataset iimb -out ./data
//	datagen -dataset all -seed 7 -out ./data
//	datagen -dataset scale-1000000 -format snap -out ./data   # 1M entities/KB
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datasets"
	"repro/internal/kb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	name := flag.String("dataset", "all", "dataset to generate: all, scale-<n>, "+strings.Join(datasets.Names(), ", "))
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "tsv", "output format: tsv, snap or both (gold is always TSV)")
	flag.Parse()

	writeTSV, writeSnap := false, false
	switch *format {
	case "tsv":
		writeTSV = true
	case "snap":
		writeSnap = true
	case "both":
		writeTSV, writeSnap = true, true
	default:
		log.Fatalf("unknown -format %q (want tsv, snap or both)", *format)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	var list []*datasets.Dataset
	if *name == "all" {
		list = datasets.All(*seed)
	} else {
		ds, err := datasets.ByName(*name, *seed)
		if err != nil {
			log.Fatal(err)
		}
		list = []*datasets.Dataset{ds}
	}

	for _, ds := range list {
		base := strings.ToLower(ds.Name)
		if err := writeDataset(ds, *out, base, writeTSV, writeSnap); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s | %s | %d gold matches → %s/%s.* (%s)\n",
			ds.Name, ds.K1.Stats(), ds.K2.Stats(), ds.Gold.Size(), *out, base, *format)
	}
}

func writeDataset(ds *datasets.Dataset, dir, base string, writeTSV, writeSnap bool) error {
	write := func(suffix string, fn func(*bufio.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, base+suffix))
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		if err := fn(w); err != nil {
			return err
		}
		return w.Flush()
	}
	if writeTSV {
		if err := write(".kb1.tsv", func(w *bufio.Writer) error { return ds.K1.WriteTSV(w) }); err != nil {
			return err
		}
		if err := write(".kb2.tsv", func(w *bufio.Writer) error { return ds.K2.WriteTSV(w) }); err != nil {
			return err
		}
	}
	if writeSnap {
		if err := ds.K1.WriteSnapshotFile(filepath.Join(dir, base+".kb1"+kb.SnapshotExt)); err != nil {
			return err
		}
		if err := ds.K2.WriteSnapshotFile(filepath.Join(dir, base+".kb2"+kb.SnapshotExt)); err != nil {
			return err
		}
	}
	return write(".gold.tsv", func(w *bufio.Writer) error {
		for _, m := range ds.Gold.Matches() {
			fmt.Fprintf(w, "%s\t%s\n", ds.K1.EntityName(m.U1), ds.K2.EntityName(m.U2))
		}
		return nil
	})
}
