// Command remp-bench regenerates the paper's evaluation artifacts: every
// table and figure of §VIII, on the synthetic dataset suite, plus the
// reproduction's own shard-scalability experiment.
//
// Usage:
//
//	remp-bench -experiment all          # everything, paper order
//	remp-bench -experiment table3       # one artifact
//	remp-bench -list                    # available experiments
//	remp-bench -experiment table6 -seed 7
//	remp-bench -experiment shards -json shards.json
//	remp-bench -experiment shards -cpuprofile cpu.pprof -memprofile mem.pprof
//	remp-bench -experiment shards -trace trace.out
//
// The -cpuprofile / -memprofile flags write pprof profiles covering the
// experiment run, so a hot-path regression flagged by the CI bench gate
// can be diagnosed straight from an uploaded artifact (`go tool pprof`)
// without reproducing the run locally. -trace captures a runtime
// execution trace of the same window for `go tool trace` — scheduling,
// GC pauses and the shard fan-out are all visible there.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"repro/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	seed := flag.Int64("seed", experiments.DefaultSeed, "random seed for datasets, workers and samplers")
	list := flag.Bool("list", false, "list available experiments and exit")
	jsonPath := flag.String("json", "", "write the experiment's machine-readable report to this file (shards, prepare and deduction experiments only)")
	prepN := flag.Int("n", 1_000_000, "prepare experiment: entities per KB of the scale dataset")
	prepNaive := flag.Bool("naive", false, "prepare experiment: force the naive cross-check even above its feasibility limit (default: auto by -n)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken after the experiment run to this file")
	tracePath := flag.String("trace", "", "write a runtime execution trace of the experiment run to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.Order() {
			fmt.Printf("%-8s  %s\n", id, experiments.Describe(id))
		}
		return
	}

	// Validate everything before the timer starts: an unknown experiment
	// (or a -json flag the experiment cannot honor) must fail fast with a
	// non-zero exit and the valid IDs, not after minutes of benchmarking.
	var run func()
	switch {
	case *experiment == "all":
		if *jsonPath != "" {
			fatalf("remp-bench: -json is only supported with -experiment shards")
		}
		run = func() { experiments.All(os.Stdout, *seed) }
	case *experiment == "shards" && *jsonPath != "":
		run = func() {
			report := experiments.ShardScalability(os.Stdout, *seed)
			writeJSON(*jsonPath, report)
		}
	case *experiment == "deduction" && *jsonPath != "":
		run = func() {
			report := experiments.Deduction(os.Stdout, *seed)
			writeJSON(*jsonPath, report)
		}
	case *experiment == "prepare":
		if *prepN <= 0 {
			fatalf("remp-bench: -n must be positive")
		}
		n, withNaive := *prepN, *prepNaive
		run = func() {
			report := experiments.PreparePipeline(os.Stdout, *seed, n,
				withNaive || n <= experiments.NaiveFeasibleLimit)
			if *jsonPath != "" {
				writeJSON(*jsonPath, report)
			}
		}
	default:
		runner, ok := experiments.Registry()[*experiment]
		if !ok {
			fatalf("remp-bench: unknown experiment %q; available: %v", *experiment, experiments.Names())
		}
		if *jsonPath != "" {
			fatalf("remp-bench: -json is only supported with -experiment shards, prepare or deduction")
		}
		run = func() { runner(os.Stdout, *seed) }
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("remp-bench: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("remp-bench: starting CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("remp-bench: %v", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fatalf("remp-bench: starting execution trace: %v", err)
		}
		defer trace.Stop()
	}

	start := time.Now()
	run()
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("remp-bench: %v", err)
		}
		defer f.Close()
		runtime.GC() // settle live objects so the heap profile reflects retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("remp-bench: writing heap profile: %v", err)
		}
		fmt.Printf("wrote %s\n", *memProfile)
	}
}

func writeJSON(path string, report any) {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("remp-bench: encoding report: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("remp-bench: writing %s: %v", path, err)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
