// Command remp-bench regenerates the paper's evaluation artifacts: every
// table and figure of §VIII, on the synthetic dataset suite.
//
// Usage:
//
//	remp-bench -experiment all          # everything, paper order
//	remp-bench -experiment table3       # one artifact
//	remp-bench -list                    # available experiments
//	remp-bench -experiment table6 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	seed := flag.Int64("seed", experiments.DefaultSeed, "random seed for datasets, workers and samplers")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.Order() {
			fmt.Printf("%-8s  %s\n", id, experiments.Describe(id))
		}
		return
	}

	start := time.Now()
	if *experiment == "all" {
		experiments.All(os.Stdout, *seed)
	} else {
		runner, ok := experiments.Registry()[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "remp-bench: unknown experiment %q; available: %v\n",
				*experiment, experiments.Names())
			os.Exit(2)
		}
		runner(os.Stdout, *seed)
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
