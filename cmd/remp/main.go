// Command remp runs the full Remp pipeline on a dataset pair: either one
// of the built-in synthetic benchmarks or two KB files in the TSV format
// written by cmd/datagen, with a gold standard for the simulated crowd.
//
// Usage:
//
//	remp -dataset iimb                         # built-in benchmark
//	remp -dataset d-y -error-rate 0.15 -mu 20  # tuned run
//	remp -dataset iimb -max-loops 3            # capped human-machine loops
//	remp -kb1 a.tsv -kb2 b.tsv -gold gold.tsv  # external files
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/datasets"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/remp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remp: ")

	dataset := flag.String("dataset", "", "built-in dataset: "+strings.Join(datasets.Names(), ", "))
	kb1Path := flag.String("kb1", "", "first KB (TSV), used when -dataset is empty")
	kb2Path := flag.String("kb2", "", "second KB (TSV)")
	goldPath := flag.String("gold", "", "gold standard (TSV: entity1<TAB>entity2 per line)")
	seed := flag.Int64("seed", 1, "random seed")
	k := flag.Int("k", 4, "k-nearest-neighbor pruning bound")
	tau := flag.Float64("tau", 0.9, "precision threshold τ for propagated matches")
	mu := flag.Int("mu", 10, "questions per human-machine loop µ")
	budget := flag.Int("budget", 0, "question budget (0 = unlimited)")
	maxLoops := flag.Int("max-loops", 0, "cap on human-machine loops (0 = unlimited)")
	shards := flag.Int("shards", 0, "graph shards resolved concurrently (0 = auto, 1 = monolithic)")
	errorRate := flag.Float64("error-rate", 0, "simulated worker error rate (0 = MTurk-quality pool)")
	strategy := flag.String("strategy", "greedy", "question selection: greedy | maxinf | maxpr")
	showMatches := flag.Bool("show-matches", false, "print the resolved matches")
	flag.Parse()

	ds, err := loadDataset(*dataset, *kb1Path, *kb2Path, *goldPath, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ds.K1.Stats())
	fmt.Println(ds.K2.Stats())
	fmt.Printf("gold standard: %d matches\n", ds.Gold.Size())

	opts := remp.Options{
		K: *k, Tau: *tau, Mu: *mu, Budget: *budget, MaxLoops: *maxLoops,
		Strategy: *strategy, Seed: *seed, Shards: *shards,
	}
	crowd := remp.NewSimulatedCrowd(ds.Gold.IsMatch, remp.CrowdConfig{
		ErrorRate: *errorRate, Seed: *seed,
	})

	start := time.Now()
	res, err := remp.Resolve(remp.Dataset{K1: ds.K1, K2: ds.K2}, crowd, opts)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	prf := remp.Evaluate(res.Matches, ds.Gold)
	fmt.Printf("\nresolved %d matches in %v\n", len(res.Matches), elapsed.Round(time.Millisecond))
	fmt.Printf("  confirmed by workers: %d\n", len(res.Confirmed))
	fmt.Printf("  inferred by propagation: %d\n", len(res.Propagated))
	fmt.Printf("  predicted by classifier: %d\n", len(res.IsolatedPredicted))
	fmt.Printf("  questions asked: %d in %d loops\n", res.Questions, res.Loops)
	fmt.Printf("  precision %.1f%%  recall %.1f%%  F1 %.1f%%\n",
		100*prf.Precision, 100*prf.Recall, 100*prf.F1)

	if *showMatches {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for p := range res.Matches {
			fmt.Fprintf(w, "%s\t%s\n", ds.K1.EntityName(p.U1), ds.K2.EntityName(p.U2))
		}
	}
}

func loadDataset(name, kb1Path, kb2Path, goldPath string, seed int64) (*datasets.Dataset, error) {
	if name != "" {
		return datasets.ByName(name, seed)
	}
	if kb1Path == "" || kb2Path == "" || goldPath == "" {
		return nil, fmt.Errorf("either -dataset or all of -kb1/-kb2/-gold are required")
	}
	k1, err := readKB(kb1Path)
	if err != nil {
		return nil, err
	}
	k2, err := readKB(kb2Path)
	if err != nil {
		return nil, err
	}
	gold, err := readGold(goldPath, k1, k2)
	if err != nil {
		return nil, err
	}
	return &datasets.Dataset{Name: "custom", K1: k1, K2: k2, Gold: gold}, nil
}

func readKB(path string) (*kb.KB, error) {
	// Binary snapshots (datagen -format snap) load without re-parsing;
	// anything else is the line-based TSV format.
	if strings.HasSuffix(path, kb.SnapshotExt) {
		return kb.OpenSnapshot(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kb.ReadTSV(f)
}

func readGold(path string, k1, k2 *kb.KB) (*pair.Gold, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var matches []pair.Pair
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want entity1<TAB>entity2", path, line)
		}
		u1 := k1.Entity(parts[0])
		u2 := k2.Entity(parts[1])
		if u1 == kb.NoEntity || u2 == kb.NoEntity {
			return nil, fmt.Errorf("%s:%d: unknown entity in %q", path, line, text)
		}
		matches = append(matches, pair.Pair{U1: u1, U2: u2})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pair.NewGold(matches), nil
}
