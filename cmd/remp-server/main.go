// Command remp-server serves resolution sessions over HTTP/JSON: create a
// session on a dataset, poll its question batches, post crowd answers as
// they arrive (in any order), snapshot and restore across restarts, and
// fetch the final result with precision/recall/F1.
//
// Usage:
//
//	remp-server -addr :8080 -store disk -data-dir ./remp-data
//
// With -workers the server runs in cluster mode: every session's shard
// engines are placed on the remp-worker processes at the given
// comma-separated addresses, with heartbeat liveness and crash failover
// (a killed worker's shards are re-prepared on survivors and their
// command logs replayed — results stay byte-identical):
//
//	remp-worker -addr :9101 & remp-worker -addr :9102 &
//	remp-server -addr :8080 -workers localhost:9101,localhost:9102
//
// -chaos injects faults into coordinator→worker frames for drills, e.g.
// -chaos drop=20,dup=10 (see internal/cluster.ParseFaults).
//
// With -store disk every session is journaled to the data directory:
// each accepted answer is fsync'd to a write-ahead log before the HTTP
// response, and a restarted server (even after a hard kill) recovers
// all sessions under their original IDs. -store mem keeps sessions in
// memory only. SIGINT/SIGTERM shut the server down gracefully:
// in-flight requests drain (new ones are refused with 503), every
// session's snapshot is flushed and the store is closed.
//
// -debug-addr serves net/http/pprof (and expvar) on a second listener,
// kept off the public address so profiling endpoints are never exposed
// with the API:
//
//	remp-server -addr :8080 -debug-addr localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// Create a session on a built-in dataset and answer its first question:
//
//	curl -s localhost:8080/v1/sessions -d '{"dataset":"iimb","seed":1,"options":{"mu":10}}'
//	curl -s localhost:8080/v1/sessions/s1/batch
//	curl -s localhost:8080/v1/sessions/s1/answers \
//	     -d '{"answers":[{"id":"3-7","labels":[{"worker":0,"quality":0.97,"match":true}]}]}'
//	curl -s localhost:8080/v1/sessions/s1/result
//
// Telemetry is on GET /metrics (Prometheus text; ?format=json for a
// JSON snapshot), liveness on /healthz, readiness on /readyz. See the
// package comment of internal/server for the full endpoint list.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the debug listener's DefaultServeMux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/session"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remp-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional second listen address for net/http/pprof and expvar (e.g. localhost:6060)")
	quiet := flag.Bool("quiet", false, "log warnings and errors only")
	shards := flag.Int("shards", 0, "default shard count for sessions that do not specify one (0 = auto, 1 = monolithic)")
	storeKind := flag.String("store", "mem", "session store backend: mem (in-memory) or disk (crash-safe WAL + snapshots)")
	dataDir := flag.String("data-dir", "remp-data", "session store directory (with -store disk)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	workers := flag.String("workers", "", "comma-separated remp-worker addresses; enables cluster mode")
	chaos := flag.String("chaos", "", "fault injection for cluster RPCs, e.g. drop=20,dup=10,delay=5:50ms,kill=500")
	flag.Parse()

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var store session.Store
	switch *storeKind {
	case "mem":
	case "disk":
		ds, err := session.NewDiskStore(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		store = ds
	default:
		log.Fatalf("unknown -store %q (want mem or disk)", *storeKind)
	}

	cfg := server.Config{Logger: logger, Store: store, DefaultShards: *shards}
	if *workers != "" {
		cfg.Workers = strings.Split(*workers, ",")
	}
	if *chaos != "" {
		faults, ferr := cluster.ParseFaults(*chaos)
		if ferr != nil {
			log.Fatal(ferr)
		}
		cfg.ClusterFaults = faults
	}
	srv, recovered, err := server.NewServer(cfg)
	if srv == nil {
		// Only configuration failures (e.g. an unusable cluster config)
		// leave no server behind.
		log.Fatal(err)
	}
	if err != nil {
		// Recovery errors are non-fatal: the sessions that recovered are
		// serving; the broken ones are reported and skipped.
		logger.Warn("recovery", "err", err)
	}
	logger.Info("starting",
		"addr", *addr, "store", *storeKind, "data_dir", *dataDir, "default_shards", *shards,
		"sessions_recovered", len(recovered), "wal_replayed", srv.WALReplayed())

	if *debugAddr != "" {
		// pprof registers itself on http.DefaultServeMux; serving that mux
		// on a separate listener keeps profiling off the public API port.
		go func() {
			logger.Info("debug listener (pprof, expvar)", "addr", *debugAddr)
			if derr := http.ListenAndServe(*debugAddr, nil); derr != nil {
				logger.Warn("debug listener", "err", derr)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		logger.Info("draining on signal", "signal", sig.String())
	}

	// Drain the application first, over the live listener: the gate
	// refuses new /v1 requests with 503 + Retry-After while the ones in
	// flight finish, then every session's snapshot is flushed and the
	// store closes. Only then is the HTTP server itself torn down —
	// closing the listener first would turn the documented
	// drain-then-refuse behavior into connection-refused.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	storeErr := srv.Shutdown(drainCtx)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	if storeErr != nil {
		log.Fatalf("store shutdown: %v", storeErr)
	}
	logger.Info("bye")
}
