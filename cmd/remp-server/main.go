// Command remp-server serves resolution sessions over HTTP/JSON: create a
// session on a dataset, poll its question batches, post crowd answers as
// they arrive (in any order), snapshot and restore across restarts, and
// fetch the final result with precision/recall/F1.
//
// Usage:
//
//	remp-server -addr :8080
//
// Create a session on a built-in dataset and answer its first question:
//
//	curl -s localhost:8080/v1/sessions -d '{"dataset":"iimb","seed":1,"options":{"mu":10}}'
//	curl -s localhost:8080/v1/sessions/s1/batch
//	curl -s localhost:8080/v1/sessions/s1/answers \
//	     -d '{"answers":[{"id":"3-7","labels":[{"worker":0,"quality":0.97,"match":true}]}]}'
//	curl -s localhost:8080/v1/sessions/s1/result
//
// See the package comment of internal/server for the full endpoint list.
package main

import (
	"flag"
	"log"

	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remp-server: ")
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	shards := flag.Int("shards", 0, "default shard count for sessions that do not specify one (0 = auto, 1 = monolithic)")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	srv := server.New(logf)
	srv.SetDefaultShards(*shards)
	log.Fatal(srv.ListenAndServe(*addr))
}
