// Command remp-worker hosts shard engines for a clustered remp-server.
// It speaks the internal/cluster RPC protocol (length-prefixed JSON
// frames over TCP): the server's coordinator assigns it shards of live
// sessions, streams their command logs, and reads candidates, picks and
// balls back. Workers are stateless across restarts by design — a
// worker that dies loses only replayable state, which the coordinator
// re-prepares on the survivors, so results stay byte-identical.
//
// Usage:
//
//	remp-worker -addr :9101
//	remp-server -addr :8080 -workers localhost:9101,localhost:9102
//
// -addr :0 picks a free port; the readiness line printed to stdout
// ("remp-worker: listening on <addr>") carries the bound address for
// spawners. -kill-after-rpcs N makes the worker tear itself down after
// handling N requests — the crash half of a chaos drill.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remp-worker: ")
	addr := flag.String("addr", ":9101", "listen address (use :0 for a free port)")
	killAfter := flag.Int64("kill-after-rpcs", 0, "simulate a crash after handling this many requests (0 = never)")
	quiet := flag.Bool("quiet", false, "suppress diagnostic logging")
	flag.Parse()

	var faults *cluster.Faults
	if *killAfter > 0 {
		faults = &cluster.Faults{CrashAfterRPCs: *killAfter}
	}
	cfg := cluster.WorkerConfig{Prepare: server.PrepareSpec, Faults: faults}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	w := cluster.NewWorker(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The readiness line goes to stdout (logs go to stderr): spawners
	// scrape it to learn the bound address, exactly once, before any
	// diagnostic output can interleave.
	fmt.Printf("remp-worker: listening on %s\n", ln.Addr())
	os.Stdout.Sync()
	if err := w.Serve(ln); err != nil {
		log.Fatal(err)
	}
}
