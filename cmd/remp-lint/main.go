// Command remp-lint runs the repo's static-analysis suite (package
// repro/internal/lint) over the module and reports invariant
// violations as file:line:col diagnostics. It exits 1 when there are
// findings, so CI can gate on it:
//
//	go run ./cmd/remp-lint ./...
//
// With no arguments it analyzes ./... relative to the current
// directory. Pass -list to print the analyzers and their docs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers in the suite and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "remp-lint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "remp-lint:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "remp-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s (%s)\n", pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "remp-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
