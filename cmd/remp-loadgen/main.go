// Command remp-loadgen drives a live remp-server with N concurrent
// resolution sessions and verifies every session's final result
// byte-matches the synchronous remp.Resolve oracle computed in process.
// Worker labels are a deterministic function of each entity pair, so
// the oracle comparison is exact no matter how the crowd's latency,
// reordering, worker errors — or a server kill + restart mid-run —
// interleave with delivery.
//
// Usage:
//
//	remp-server -addr :8080 -store disk -data-dir ./remp-data &
//	remp-loadgen -addr http://127.0.0.1:8080 -sessions 50 -dataset books \
//	    -worker-error 0.05 -reorder 0.5 -max-latency 5ms -json load.json
//
// The process exits 0 only when every session completed and matched
// the oracle. The JSON report feeds cmd/benchreport -loadgen, which
// records throughput in BENCH_remp.json and gates CI on divergence.
//
// With -cluster N the harness spawns its own cluster instead of driving
// an external server: N remp-worker processes (-worker-bin), an
// in-process clustered server over them, and optionally a SIGKILL of
// worker 0 mid-run (-kill-worker-after) or frame-level fault injection
// (-chaos). The oracle bar is unchanged — byte identity across process
// boundaries, crashes and chaos:
//
//	remp-loadgen -cluster 3 -worker-bin ./remp-worker -sessions 4 \
//	    -shards 6 -kill-worker-after 5 -chaos dup=10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadgen"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remp-loadgen: ")
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the remp-server to drive")
	sessions := flag.Int("sessions", 10, "number of concurrent sessions")
	dataset := flag.String("dataset", "books", "built-in dataset resolved by every session")
	seed := flag.Int64("seed", 1, "dataset generator seed and label-determinism seed")
	mu := flag.Int("mu", 0, "questions per human-machine loop (0 = pipeline default)")
	shards := flag.Int("shards", 0, "shard count per session (0 = auto)")
	deduce := flag.Bool("deduce", false, "enable transitive-closure answer deduction in every session (the oracle runs Deduce-on too)")
	workers := flag.Int("workers", 3, "simulated workers per question")
	workerError := flag.Float64("worker-error", 0, "probability a worker's label is flipped (deterministic per pair and worker)")
	reorder := flag.Float64("reorder", 0.5, "probability a batch is answered in random order")
	minLatency := flag.Duration("min-latency", 0, "minimum simulated think time per answer")
	maxLatency := flag.Duration("max-latency", 0, "maximum simulated think time per answer (0 = none)")
	retryTimeout := flag.Duration("retry-timeout", 30*time.Second, "how long to retry an unreachable server (spans a kill + restart)")
	deadline := flag.Duration("deadline", 10*time.Minute, "overall run deadline")
	jsonOut := flag.String("json", "", "write the JSON report to this file")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	clusterN := flag.Int("cluster", 0, "spawn this many remp-worker processes and an in-process clustered server instead of driving -addr")
	workerBin := flag.String("worker-bin", "remp-worker", "remp-worker binary to spawn (with -cluster)")
	killAfter := flag.Int64("kill-worker-after", 0, "SIGKILL worker 0 after this many accepted answers (with -cluster; 0 = never)")
	chaos := flag.String("chaos", "", "fault injection for cluster RPCs, e.g. drop=20,dup=10,delay=5:50ms (with -cluster)")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	cfg := loadgen.Config{
		BaseURL:      *addr,
		Sessions:     *sessions,
		Dataset:      *dataset,
		DatasetSeed:  *seed,
		Options:      server.OptionsDTO{Mu: *mu, Seed: *seed, Shards: *shards, Deduce: *deduce},
		Workers:      *workers,
		WorkerError:  *workerError,
		Seed:         *seed,
		MinLatency:   *minLatency,
		MaxLatency:   *maxLatency,
		Reorder:      *reorder,
		RetryTimeout: *retryTimeout,
		Deadline:     *deadline,
		Logf:         logf,
	}

	var report *loadgen.Report
	var clusterRep *loadgen.ClusterReport
	var err error
	if *clusterN > 0 {
		cc := loadgen.ClusterConfig{
			Workers: *clusterN,
			WorkerCmd: func(i int) *exec.Cmd {
				return exec.Command(*workerBin, "-addr", "127.0.0.1:0")
			},
			KillAfterAnswers: *killAfter,
		}
		if *chaos != "" {
			if cc.Faults, err = cluster.ParseFaults(*chaos); err != nil {
				log.Fatal(err)
			}
		}
		clusterRep, err = loadgen.RunCluster(cfg, cc)
		if clusterRep != nil {
			report = &clusterRep.Report
		}
	} else {
		report, err = loadgen.Run(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if clusterRep != nil {
		fmt.Printf("loadgen: cluster of %d workers, killed=%v, %v reassignments, %v worker downs, %v rpc retries\n",
			len(clusterRep.WorkerAddrs), clusterRep.KilledWorker,
			clusterRep.Reassignments, clusterRep.WorkerDowns, clusterRep.RPCRetries)
	}

	if *jsonOut != "" {
		var doc any = report
		if clusterRep != nil {
			doc = clusterRep
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loadgen: %d/%d sessions completed, %d answers (%.0f/s), %d rejected, %d retries, oracle match: %v\n",
		report.Completed, report.Sessions, report.Answers, report.AnswersPerSec,
		report.Rejected, report.Retries, report.ResultsMatch)
	for _, op := range []string{"create", "batch", "answers", "result"} {
		if ls, ok := report.Latency[op]; ok {
			fmt.Printf("loadgen: %-7s p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms  (n=%d)\n",
				op, ls.P50Ms, ls.P95Ms, ls.P99Ms, ls.MaxMs, ls.Count)
		}
	}
	for _, o := range report.Outcomes {
		if o.Error != "" {
			log.Printf("session %s failed: %s", o.ID, o.Error)
		} else if !o.Match {
			log.Printf("session %s diverged from the oracle", o.ID)
		}
	}
	if report.Completed != report.Sessions || !report.ResultsMatch {
		os.Exit(1)
	}
}
