package repro

// Ablation benchmarks for the design choices documented in DESIGN.md §5:
// the Dijkstra-based InferAll versus the paper-faithful Floyd–Warshall
// variant of Algorithm 2, the exact bitmask-DP posterior versus the
// local-exclusion approximation, per-loop edge re-estimation, and the
// hybrid (partial-order + propagation) future-work extension.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/propagation"
)

func preparedIIMB(b *testing.B) *core.Prepared {
	b.Helper()
	ds := datasets.IIMB(1)
	return core.Prepare(ds.K1, ds.K2, core.DefaultConfig())
}

// BenchmarkAblation_InferAllDijkstra measures the default bounded-Dijkstra
// all-pairs discovery of inferred sets.
func BenchmarkAblation_InferAllDijkstra(b *testing.B) {
	p := preparedIIMB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Prob.InferAll(0.9)
	}
}

// BenchmarkAblation_InferAllFloydWarshall measures the paper's modified
// Floyd–Warshall (Algorithm 2 as printed); it computes identical maps but
// scales quadratically in the per-vertex reachable-set size.
func BenchmarkAblation_InferAllFloydWarshall(b *testing.B) {
	p := preparedIIMB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Prob.InferAllFW(0.9)
	}
}

// BenchmarkAblation_PosteriorExact measures the exact bitmask-DP
// marginalization on a dense 8×8 neighborhood.
func BenchmarkAblation_PosteriorExact(b *testing.B) {
	nb := denseNeighborhood(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nb.Posteriors()
	}
}

// BenchmarkAblation_PosteriorApprox measures the same neighborhood under
// the local-exclusion approximation used beyond the exact cutoff.
func BenchmarkAblation_PosteriorApprox(b *testing.B) {
	nb := denseNeighborhood(20) // beyond MaxExactSide on both sides
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nb.Posteriors()
	}
}

func denseNeighborhood(n int) *propagation.Neighborhood {
	nb := &propagation.Neighborhood{N1Size: n, N2Size: n, Eps1: 0.9, Eps2: 0.9}
	id := 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if (r+c)%3 == 0 {
				continue
			}
			prior := 0.3
			if r == c {
				prior = 0.9
			}
			nb.Cands = append(nb.Cands, propagation.CandidatePair{
				Row: r, Col: c,
				Pair:  pair.Pair{U1: kb.EntityID(id), U2: kb.EntityID(id)},
				Prior: prior,
			})
			id++
		}
	}
	return nb
}

// BenchmarkAblation_RempPlain runs the full pipeline with the paper's
// default configuration.
func BenchmarkAblation_RempPlain(b *testing.B) {
	benchPipeline(b, func(cfg *core.Config) {})
}

// BenchmarkAblation_RempNoReestimate disables per-loop consistency and
// edge re-estimation (§VII-A).
func BenchmarkAblation_RempNoReestimate(b *testing.B) {
	benchPipeline(b, func(cfg *core.Config) { cfg.Reestimate = false })
}

// BenchmarkAblation_RempHybrid enables the partial-order + propagation
// hybrid (the paper's §IX future work).
func BenchmarkAblation_RempHybrid(b *testing.B) {
	benchPipeline(b, func(cfg *core.Config) { cfg.Hybrid = true })
}

// BenchmarkAblation_RempNoClassifier disables the isolated-pair forest.
func BenchmarkAblation_RempNoClassifier(b *testing.B) {
	benchPipeline(b, func(cfg *core.Config) { cfg.ClassifyIsolated = false })
}

func benchPipeline(b *testing.B, mutate func(*core.Config)) {
	ds := datasets.IMDBYAGO(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		mutate(&cfg)
		p := core.Prepare(ds.K1, ds.K2, cfg)
		res := p.Run(core.NewOracleAsker(ds.Gold.IsMatch))
		prf := pair.Evaluate(res.Matches, ds.Gold)
		b.ReportMetric(prf.F1*100, "F1%")
		b.ReportMetric(float64(res.Questions), "questions")
	}
}
