// Quickstart: resolve two tiny knowledge bases with the public remp API.
//
// Two KBs describe the same eight books and their authors with slightly
// different vocabularies. A simulated crowd answers questions from the
// gold standard; Remp asks about a few author pairs and infers the books
// through the written-by relationship.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/remp"
)

func main() {
	k1 := remp.NewKB("library")
	k2 := remp.NewKB("catalog")

	name1 := k1.AddAttr("name")
	name2 := k2.AddAttr("label")
	wrote1 := k1.AddRel("wrote")
	wrote2 := k2.AddRel("authorOf")

	authors := []string{
		"toni morrison", "gabriel garcia marquez", "virginia woolf",
		"james baldwin", "ursula le guin", "jorge luis borges",
		"chinua achebe", "clarice lispector",
	}
	books := []string{
		"beloved", "one hundred years of solitude", "to the lighthouse",
		"go tell it on the mountain", "the left hand of darkness",
		"ficciones", "things fall apart", "the hour of the star",
	}

	var gold []remp.Pair
	for i := range authors {
		a1 := k1.AddEntity("lib:author/" + authors[i])
		a2 := k2.AddEntity("cat:person/" + authors[i])
		k1.SetLabel(a1, authors[i])
		k2.SetLabel(a2, authors[i])
		k1.AddAttrTriple(a1, name1, authors[i])
		k2.AddAttrTriple(a2, name2, authors[i])
		gold = append(gold, remp.Pair{U1: a1, U2: a2})

		b1 := k1.AddEntity("lib:book/" + books[i])
		b2 := k2.AddEntity("cat:work/" + books[i])
		k1.SetLabel(b1, books[i])
		k2.SetLabel(b2, books[i])
		k1.AddAttrTriple(b1, name1, books[i])
		k2.AddAttrTriple(b2, name2, books[i])
		k1.AddRelTriple(a1, wrote1, b1)
		k2.AddRelTriple(a2, wrote2, b2)
		gold = append(gold, remp.Pair{U1: b1, U2: b2})
	}
	goldStd := remp.NewGold(gold)

	crowd := remp.NewSimulatedCrowd(goldStd.IsMatch, remp.CrowdConfig{Seed: 42})
	res, err := remp.Resolve(remp.Dataset{K1: k1, K2: k2}, crowd, remp.Options{Mu: 2})
	if err != nil {
		log.Fatal(err)
	}

	prf := remp.Evaluate(res.Matches, goldStd)
	fmt.Printf("resolved %d of %d matches with %d crowd questions\n",
		len(res.Matches), goldStd.Size(), res.Questions)
	fmt.Printf("precision %.0f%%  recall %.0f%%  F1 %.0f%%\n",
		100*prf.Precision, 100*prf.Recall, 100*prf.F1)
	fmt.Printf("%d confirmed by the crowd, %d inferred through relationships\n",
		len(res.Confirmed), len(res.Propagated))
}
