// Durable: survive a server crash without losing a single answered
// question.
//
// The example runs a remp-server over a disk store, creates a session
// on the built-in books dataset and answers its first batch — each
// answer is fsync'd to the session's write-ahead log before the HTTP
// response. Then the server is abandoned without any shutdown (the
// process-crash stand-in), a brand-new server is opened over the same
// data directory, and the session comes back under its original ID at
// the exact question count it had reached. The crowd finishes the job
// against the recovered session.
//
//	go run ./examples/durable
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"repro/internal/datasets"
	"repro/internal/server"
	"repro/internal/session"
	"repro/remp"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "remp-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// First incarnation: a server journaling into the disk store.
	client, stop := serve(dir)
	info, err := client.CreateSession(server.CreateRequest{
		Dataset: "books", Seed: 1, Options: server.OptionsDTO{Mu: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s created on the books dataset, %d questions published\n", info.ID, len(info.Batch))

	// The example plays an accurate crowd from the dataset's own gold
	// standard (same name and seed the server used).
	gold := datasets.Books(1).Gold
	for _, q := range info.Batch {
		posted, err := client.PostAnswers(info.ID, []server.AnswerDTO{answer(gold, q)})
		if err != nil {
			log.Fatal(err)
		}
		info = &posted.SessionInfo
	}
	fmt.Printf("answered the first batch: %d questions into the WAL\n", info.Questions)

	// Crash: no flush, no goodbye. Acknowledged answers are already
	// durable, so nothing answered is lost.
	stop()
	fmt.Println("server gone (no shutdown, like a kill -9)")

	// Second incarnation over the same data directory: the session is
	// recovered by replaying its snapshot + WAL through the pipeline.
	client, stop = serve(dir)
	defer stop()
	recovered, err := client.Batch(info.ID)
	if err != nil {
		log.Fatalf("session %s did not survive the restart: %v", info.ID, err)
	}
	fmt.Printf("session %s recovered at %d questions, %d still open\n",
		recovered.ID, recovered.Questions, len(recovered.Batch))

	for recovered.State != string(remp.SessionDone) {
		if len(recovered.Batch) == 0 {
			log.Fatal("recovered session stalled")
		}
		for _, q := range recovered.Batch {
			posted, err := client.PostAnswers(recovered.ID, []server.AnswerDTO{answer(gold, q)})
			if err != nil {
				log.Fatal(err)
			}
			recovered = &posted.SessionInfo
		}
	}
	res, err := client.Result(recovered.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresolved %d matches with %d crowd questions in %d loops — across a crash\n",
		len(res.Matches), res.Questions, res.Loops)
	if res.PRF != nil {
		fmt.Printf("precision %.0f%%  recall %.0f%%  F1 %.0f%%\n",
			100*res.PRF.Precision, 100*res.PRF.Recall, 100*res.PRF.F1)
	}
}

// serve starts a disk-store server on a loopback port and returns a
// client plus a stop function that just drops the listener — no drain,
// no flush — so recovery has real work to do.
func serve(dir string) (*server.Client, func()) {
	store, err := session.NewDiskStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv, recovered, err := server.NewServer(server.Config{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	if len(recovered) > 0 {
		fmt.Printf("recovered sessions: %v\n", recovered)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	return server.NewClient("http://" + ln.Addr().String()), func() { ln.Close() }
}

func answer(gold *remp.Gold, q server.QuestionDTO) server.AnswerDTO {
	p, err := session.ParseQuestionID(q.ID)
	if err != nil {
		log.Fatal(err)
	}
	return server.AnswerDTO{ID: q.ID, Labels: []remp.Label{
		{WorkerID: 0, Quality: 0.97, IsMatch: gold.IsMatch(p)},
	}}
}
