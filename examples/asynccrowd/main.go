// Asynccrowd: resolve two KBs through the HTTP session API, the way a
// real crowdsourcing frontend would — no blocking Asker anywhere.
//
// The example starts an in-process remp-server, creates a session over
// the quickstart books dataset (shipped as TSV, like an external client
// would), and then plays an asynchronous crowd: each published batch is
// answered by simulated workers in reverse order, so answers always
// arrive out of order. Halfway through, the session is snapshotted,
// deleted from the server and restored from the snapshot — the process-
// restart drill — before the crowd finishes the job.
//
//	go run ./examples/asynccrowd
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"

	"repro/internal/kb"
	"repro/internal/server"
	"repro/internal/session"
	"repro/remp"
)

func main() {
	log.SetFlags(0)
	k1, k2, gold := buildBooks()

	// Serve the session API from this process; an external client only
	// needs the TSV wire form of the KBs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Fatal(http.Serve(ln, server.New(nil).Handler()))
	}()
	client := server.NewClient("http://" + ln.Addr().String())

	var tsv1, tsv2 strings.Builder
	if err := k1.WriteTSV(&tsv1); err != nil {
		log.Fatal(err)
	}
	if err := k2.WriteTSV(&tsv2); err != nil {
		log.Fatal(err)
	}
	var goldNames [][2]string
	for _, m := range gold.Matches() {
		goldNames = append(goldNames, [2]string{k1.EntityName(m.U1), k2.EntityName(m.U2)})
	}

	info, err := client.CreateSession(server.CreateRequest{
		KB1TSV: tsv1.String(), KB2TSV: tsv2.String(), Gold: goldNames,
		Options: server.OptionsDTO{Mu: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s created, %d questions published\n", info.ID, len(info.Batch))

	// A small simulated worker pool answers questions with 5% error.
	rng := rand.New(rand.NewSource(7))
	answer := func(q server.QuestionDTO) server.AnswerDTO {
		p, err := session.ParseQuestionID(q.ID)
		if err != nil {
			log.Fatal(err)
		}
		labels := make([]remp.Label, 3)
		for w := range labels {
			truth := gold.IsMatch(p)
			if rng.Float64() < 0.05 {
				truth = !truth
			}
			labels[w] = remp.Label{WorkerID: w, Quality: 0.95, IsMatch: truth}
		}
		return server.AnswerDTO{ID: q.ID, Labels: labels}
	}

	snapshotted := false
	for info.State != string(remp.SessionDone) {
		batch := info.Batch
		fmt.Printf("loop %d: answering %d questions (reverse order)\n", info.Loops, len(batch))
		for i := len(batch) - 1; i >= 0; i-- {
			posted, err := client.PostAnswers(info.ID, []server.AnswerDTO{answer(batch[i])})
			if err != nil {
				log.Fatal(err)
			}
			info = &posted.SessionInfo
		}
		if !snapshotted && info.State != string(remp.SessionDone) {
			// Restart drill: persist the session, drop it, restore it.
			snapshotted = true
			snap, err := client.Snapshot(info.ID)
			if err != nil {
				log.Fatal(err)
			}
			if err := client.Delete(info.ID); err != nil {
				log.Fatal(err)
			}
			if info, err = client.Restore(snap); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("snapshotted, deleted and restored session %s at %d questions\n",
				info.ID, info.Questions)
		}
	}

	res, err := client.Result(info.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresolved %d matches with %d crowd questions in %d loops\n",
		len(res.Matches), res.Questions, res.Loops)
	if res.PRF != nil {
		fmt.Printf("precision %.0f%%  recall %.0f%%  F1 %.0f%%\n",
			100*res.PRF.Precision, 100*res.PRF.Recall, 100*res.PRF.F1)
	}
}

// buildBooks is the quickstart fixture: eight authors and their books in
// two vocabularies.
func buildBooks() (*kb.KB, *kb.KB, *remp.Gold) {
	k1 := remp.NewKB("library")
	k2 := remp.NewKB("catalog")
	name1 := k1.AddAttr("name")
	name2 := k2.AddAttr("label")
	wrote1 := k1.AddRel("wrote")
	wrote2 := k2.AddRel("authorOf")

	authors := []string{
		"toni morrison", "gabriel garcia marquez", "virginia woolf",
		"james baldwin", "ursula le guin", "jorge luis borges",
		"chinua achebe", "clarice lispector",
	}
	books := []string{
		"beloved", "one hundred years of solitude", "to the lighthouse",
		"go tell it on the mountain", "the left hand of darkness",
		"ficciones", "things fall apart", "the hour of the star",
	}

	var gold []remp.Pair
	for i := range authors {
		a1 := k1.AddEntity("lib:author/" + authors[i])
		a2 := k2.AddEntity("cat:person/" + authors[i])
		k1.SetLabel(a1, authors[i])
		k2.SetLabel(a2, authors[i])
		k1.AddAttrTriple(a1, name1, authors[i])
		k2.AddAttrTriple(a2, name2, authors[i])
		gold = append(gold, remp.Pair{U1: a1, U2: a2})

		b1 := k1.AddEntity("lib:book/" + books[i])
		b2 := k2.AddEntity("cat:work/" + books[i])
		k1.SetLabel(b1, books[i])
		k2.SetLabel(b2, books[i])
		k1.AddAttrTriple(b1, name1, books[i])
		k2.AddAttrTriple(b2, name2, books[i])
		k1.AddRelTriple(a1, wrote1, b1)
		k2.AddRelTriple(a2, wrote2, b2)
		gold = append(gold, remp.Pair{U1: b1, U2: b2})
	}
	return k1, k2, remp.NewGold(gold)
}
