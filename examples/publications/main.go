// Publications: a DBLP–ACM style bibliography integration.
//
// A clean bibliography (K1) is matched against a much larger, noisier one
// (K2) whose titles carry formatting noise and whose author names are
// often abbreviated. The single written-by relationship decomposes the ER
// graph into one star per publication, so Remp must seed each component
// with a question but then resolves the entire star at once — the
// behavior the paper analyzes on D-A.
//
//	go run ./examples/publications
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/datasets"
	"repro/remp"
)

func main() {
	ds := datasets.DBLPACM(3)
	fmt.Println("K1:", ds.K1.Stats())
	fmt.Println("K2:", ds.K2.Stats())
	fmt.Printf("gold standard: %d matches\n\n", ds.Gold.Size())

	pipeline, err := remp.NewPipeline(remp.Dataset{K1: ds.K1, K2: ds.K2}, remp.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	v, e := pipeline.GraphStats()
	fmt.Printf("ER graph: %d candidate pairs, %d edges\n", v, e)

	crowd := remp.NewSimulatedCrowd(ds.Gold.IsMatch, remp.CrowdConfig{Seed: 3})
	res, err := pipeline.Run(crowd)
	if err != nil {
		log.Fatal(err)
	}
	prf := remp.Evaluate(res.Matches, ds.Gold)
	fmt.Printf("questions: %d | precision %.1f%% recall %.1f%% F1 %.1f%%\n\n",
		res.Questions, 100*prf.Precision, 100*prf.Recall, 100*prf.F1)

	// Show a few resolved publication pairs with their ACM-side noise.
	var lines []string
	for p := range res.Matches {
		if ds.K1.Type(p.U1) != "publication" {
			continue
		}
		l1, l2 := ds.K1.Label(p.U1), ds.K2.Label(p.U2)
		if l1 != l2 {
			lines = append(lines, fmt.Sprintf("  %q ≃ %q", l1, l2))
		}
	}
	sort.Strings(lines)
	if len(lines) > 5 {
		lines = lines[:5]
	}
	fmt.Println("sample matches resolved despite title noise:")
	for _, l := range lines {
		fmt.Println(l)
	}
}
