// Movies: the paper's motivating scenario (Figure 1) at dataset scale.
//
// An IMDB-like KB is aligned against a YAGO-like KB: different attribute
// and relationship vocabularies, title homonyms (remakes sharing a name),
// and a quarter of the true matches isolated from the relationship graph.
// The run shows how much of the work each pipeline stage carries:
// crowd-confirmed matches, relational propagation, and the random-forest
// fallback for isolated pairs.
//
//	go run ./examples/movies
package main

import (
	"fmt"
	"log"

	"repro/internal/datasets"
	"repro/remp"
)

func main() {
	ds := datasets.IMDBYAGO(7)
	fmt.Println("K1:", ds.K1.Stats())
	fmt.Println("K2:", ds.K2.Stats())
	fmt.Printf("gold standard: %d matches\n\n", ds.Gold.Size())

	crowd := remp.NewSimulatedCrowd(ds.Gold.IsMatch, remp.CrowdConfig{
		ErrorRate: 0.05, // five workers per question, each wrong 5% of the time
		Seed:      7,
	})
	res, err := remp.Resolve(remp.Dataset{K1: ds.K1, K2: ds.K2}, crowd, remp.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	prf := remp.Evaluate(res.Matches, ds.Gold)
	fmt.Printf("questions asked: %d (%d loops)\n", res.Questions, res.Loops)
	fmt.Printf("precision %.1f%%  recall %.1f%%  F1 %.1f%%\n\n",
		100*prf.Precision, 100*prf.Recall, 100*prf.F1)
	fmt.Printf("match provenance:\n")
	fmt.Printf("  %4d confirmed directly by workers\n", len(res.Confirmed))
	fmt.Printf("  %4d inferred via relational match propagation\n", len(res.Propagated))
	fmt.Printf("  %4d predicted by the isolated-pair random forest\n", len(res.IsolatedPredicted))

	// The headline: matches per question, versus asking about every pair.
	perQ := float64(len(res.Matches)) / float64(res.Questions)
	fmt.Printf("\n%.1f matches per crowd question (pairwise polling would need %d questions)\n",
		perQ, ds.Gold.Size())
}
