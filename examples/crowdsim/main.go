// Crowdsim: error-tolerant truth inference under increasingly unreliable
// workers (Figure 3 in miniature).
//
// The same dataset is resolved with simulated crowds whose workers err 5%,
// 15% and 25% of the time. Five redundant labels per question plus the
// worker-probability posterior of Eq. (17) keep F1 nearly flat while the
// question count grows slowly — the paper's robustness claim.
//
//	go run ./examples/crowdsim
package main

import (
	"fmt"
	"log"

	"repro/internal/datasets"
	"repro/remp"
)

func main() {
	fmt.Printf("%-10s %8s %8s %8s %6s\n", "error rate", "P", "R", "F1", "#Q")
	for _, rate := range []float64{0.05, 0.15, 0.25} {
		ds := datasets.IIMB(11)
		crowd := remp.NewSimulatedCrowd(ds.Gold.IsMatch, remp.CrowdConfig{
			ErrorRate:          rate,
			WorkersPerQuestion: 5,
			Seed:               11,
		})
		res, err := remp.Resolve(remp.Dataset{K1: ds.K1, K2: ds.K2}, crowd, remp.Options{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		prf := remp.Evaluate(res.Matches, ds.Gold)
		fmt.Printf("%-10.2f %7.1f%% %7.1f%% %7.1f%% %6d\n",
			rate, 100*prf.Precision, 100*prf.Recall, 100*prf.F1, res.Questions)
	}
}
