package simvec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/attrmatch"
	"repro/internal/kb"
	"repro/internal/pair"
)

type wideRunner struct{}

func (wideRunner) ForEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

var literalPool = []string{
	"", "hello world", "42", " 42 ", "3.14", "1999", "2001-05-03",
	"café naïve", "北京", "a b c", "the running cities", "O'Neill",
}

// randAttrKB builds a KB with nAttrs attributes and random value sets.
func randAttrKB(r *rand.Rand, name string, n, nAttrs int) *kb.KB {
	k := kb.New(name)
	attrs := make([]kb.AttrID, nAttrs)
	for a := 0; a < nAttrs; a++ {
		attrs[a] = k.AddAttr(fmt.Sprintf("attr%d", a))
	}
	for i := 0; i < n; i++ {
		u := k.AddEntity(fmt.Sprintf("%s:e%d", name, i))
		k.SetLabel(u, literalPool[r.Intn(len(literalPool))])
		for _, a := range attrs {
			for v := r.Intn(3); v > 0; v-- {
				k.AddAttrTriple(u, a, literalPool[r.Intn(len(literalPool))])
			}
		}
	}
	return k
}

// TestAllMatchesVector: the batched All must be byte-identical to the
// retained per-pair Vector on randomized KBs, serial and parallel.
func TestAllMatchesVector(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		k1 := randAttrKB(r, "k1", 12, 3)
		k2 := randAttrKB(r, "k2", 10, 4)
		matches := []attrmatch.Match{
			{A1: 0, A2: 0}, {A1: 1, A2: 2}, {A1: 2, A2: 3}, {A1: 0, A2: 1},
		}
		var pairs []pair.Pair
		for u1 := 0; u1 < k1.NumEntities(); u1++ {
			for u2 := 0; u2 < k2.NumEntities(); u2++ {
				if r.Intn(2) == 0 {
					pairs = append(pairs, pair.Pair{U1: kb.EntityID(u1), U2: kb.EntityID(u2)})
				}
			}
		}
		for _, parallel := range []bool{false, true} {
			b := NewBuilder(k1, k2, matches, 0.9)
			if parallel {
				b.SetRunner(wideRunner{})
			}
			got := b.All(pairs)
			for i, p := range pairs {
				want := b.Vector(p)
				if !reflect.DeepEqual(got[i], want) {
					t.Fatalf("seed=%d parallel=%v: All[%d] = %v, Vector(%v) = %v", seed, parallel, i, got[i], p, want)
				}
			}
		}
	}
}
