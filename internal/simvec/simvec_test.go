package simvec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/attrmatch"
	"repro/internal/kb"
	"repro/internal/pair"
)

func TestVectorDominance(t *testing.T) {
	a := Vector{0.9, 0.8}
	b := Vector{0.5, 0.8}
	c := Vector{0.6, 0.2}
	if !a.Dominates(b) || !a.StrictlyDominates(b) {
		t.Error("a should strictly dominate b")
	}
	if a.StrictlyDominates(a) {
		t.Error("no strict self-domination")
	}
	if !a.Dominates(a) {
		t.Error("weak self-domination should hold")
	}
	if b.Dominates(c) || c.Dominates(b) {
		t.Error("b and c are incomparable")
	}
	if a.Dominates(Vector{0.1}) {
		t.Error("different lengths never dominate")
	}
	if !a.Equal(Vector{0.9, 0.8}) || a.Equal(b) {
		t.Error("Equal wrong")
	}
}

func TestBuilderVector(t *testing.T) {
	k1 := kb.New("k1")
	k2 := kb.New("k2")
	name1 := k1.AddAttr("name")
	year1 := k1.AddAttr("year")
	name2 := k2.AddAttr("title")
	year2 := k2.AddAttr("pubYear")
	u1 := k1.AddEntity("a")
	u2 := k2.AddEntity("b")
	k1.AddAttrTriple(u1, name1, "deep learning")
	k2.AddAttrTriple(u2, name2, "deep learning")
	k1.AddAttrTriple(u1, year1, "2015")
	// no year in k2 → second component 0

	matches := []attrmatch.Match{
		{A1: name1, A2: name2, Sim: 1},
		{A1: year1, A2: year2, Sim: 1},
	}
	b := NewBuilder(k1, k2, matches, 0.9)
	if b.Dim() != 2 {
		t.Fatalf("Dim = %d", b.Dim())
	}
	v := b.Vector(pair.Pair{U1: u1, U2: u2})
	if v[0] != 1 {
		t.Errorf("name component = %v, want 1", v[0])
	}
	if v[1] != 0 {
		t.Errorf("missing-value component = %v, want 0", v[1])
	}
	shared := b.SharedAttrMatches(pair.Pair{U1: u1, U2: u2})
	if len(shared) != 1 || shared[0] != 0 {
		t.Errorf("SharedAttrMatches = %v, want [0]", shared)
	}
}

// makePairs builds a block of J candidate pairs for one K1 entity with
// given vectors.
func makePairs(vecs []Vector) ([]pair.Pair, *Pruner) {
	pairs := make([]pair.Pair, len(vecs))
	for i := range vecs {
		pairs[i] = pair.Pair{U1: 0, U2: kb.EntityID(i)}
	}
	return pairs, NewPruner(pairs, vecs)
}

func TestPruneKeepsSmallBlocks(t *testing.T) {
	vecs := []Vector{{0.9}, {0.5}, {0.1}}
	pairs, pr := makePairs(vecs)
	got := pr.Prune(pairs, 4)
	if len(got) != 3 {
		t.Errorf("block smaller than k should be untouched, got %v", got)
	}
}

func TestPruneRemovesDominated(t *testing.T) {
	// 6 pairs in one block, totally ordered; k=2 keeps only top 2.
	var vecs []Vector
	for i := 0; i < 6; i++ {
		vecs = append(vecs, Vector{float64(i) / 10})
	}
	pairs, pr := makePairs(vecs)
	got := pr.Prune(pairs, 2)
	if len(got) != 2 {
		t.Fatalf("kept %d pairs, want 2: %v", len(got), got)
	}
	// The survivors must be the two highest vectors (U2 = 4, 5).
	want := map[kb.EntityID]bool{4: true, 5: true}
	for _, p := range got {
		if !want[p.U2] {
			t.Errorf("unexpected survivor %v", p)
		}
	}
}

func TestPruneIncomparableSurvive(t *testing.T) {
	// Pairwise incomparable vectors: min_rank is 0 for all, so all stay
	// regardless of k.
	vecs := []Vector{{0.9, 0.1}, {0.8, 0.2}, {0.7, 0.3}, {0.6, 0.4}, {0.5, 0.5}, {0.4, 0.6}}
	pairs, pr := makePairs(vecs)
	got := pr.Prune(pairs, 2)
	if len(got) != len(pairs) {
		t.Errorf("incomparable pairs pruned: kept %d of %d", len(got), len(pairs))
	}
}

func TestPruneBothSides(t *testing.T) {
	// K2 entity 0 appears in many pairs; second pass must prune its block.
	var pairs []pair.Pair
	var vecs []Vector
	for i := 0; i < 6; i++ {
		pairs = append(pairs, pair.Pair{U1: kb.EntityID(i), U2: 0})
		vecs = append(vecs, Vector{float64(i) / 10})
	}
	pr := NewPruner(pairs, vecs)
	got := pr.Prune(pairs, 3)
	if len(got) != 3 {
		t.Errorf("kept %d pairs, want 3", len(got))
	}
}

func TestMinRank(t *testing.T) {
	pairs := []pair.Pair{
		{U1: 0, U2: 0},
		{U1: 0, U2: 1},
		{U1: 0, U2: 2},
		{U1: 1, U2: 2},
	}
	vecs := []Vector{{0.9}, {0.5}, {0.1}, {0.3}}
	pr := NewPruner(pairs, vecs)
	if r := pr.MinRank(pairs, pairs[0]); r != 0 {
		t.Errorf("top pair rank = %d, want 0", r)
	}
	if r := pr.MinRank(pairs, pairs[1]); r != 1 {
		t.Errorf("middle pair rank = %d, want 1", r)
	}
	// (0,2): dominated by (0,0),(0,1) on side1; by (1,2) on side2 ⇒ max(2,1)=2.
	if r := pr.MinRank(pairs, pairs[2]); r != 2 {
		t.Errorf("bottom pair rank = %d, want 2", r)
	}
}

// Property: pruning never removes a pair that has min_rank < k on both
// sides and is not dominated by any removed pair — in particular the block
// maximum always survives.
func TestPrunePreservesBlockMaxima(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		nLeft, nRight, dim := 1+rng.Intn(4), 1+rng.Intn(8), 1+rng.Intn(3)
		var pairs []pair.Pair
		var vecs []Vector
		for i := 0; i < nLeft; i++ {
			for j := 0; j < nRight; j++ {
				if rng.Intn(3) == 0 {
					continue
				}
				v := make(Vector, dim)
				for d := range v {
					v[d] = float64(rng.Intn(10)) / 10
				}
				pairs = append(pairs, pair.Pair{U1: kb.EntityID(i), U2: kb.EntityID(j)})
				vecs = append(vecs, v)
			}
		}
		if len(pairs) == 0 {
			continue
		}
		pr := NewPruner(pairs, vecs)
		k := 1 + rng.Intn(3)
		kept := pr.Prune(pairs, k)
		keptSet := pair.NewSet(kept...)
		// Any pair with global min_rank 0 (undominated on both sides) must
		// survive: it can never be pruned directly, and nothing dominating
		// it exists to trigger cascade removal.
		for _, p := range pairs {
			if pr.MinRank(pairs, p) == 0 && !keptSet.Has(p) {
				t.Fatalf("iter %d: undominated pair %v pruned (k=%d)", iter, p, k)
			}
		}
	}
}

// Property: output of Prune is a subset of the input and deterministic.
func TestPruneSubsetAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var pairs []pair.Pair
	var vecs []Vector
	for i := 0; i < 40; i++ {
		pairs = append(pairs, pair.Pair{U1: kb.EntityID(rng.Intn(5)), U2: kb.EntityID(i)})
		vecs = append(vecs, Vector{rng.Float64(), rng.Float64()})
	}
	pr := NewPruner(pairs, vecs)
	a := pr.Prune(pairs, 3)
	b := pr.Prune(pairs, 3)
	if len(a) != len(b) {
		t.Fatal("nondeterministic prune size")
	}
	in := pair.NewSet(pairs...)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic prune order")
		}
		if !in.Has(a[i]) {
			t.Fatalf("prune invented pair %v", a[i])
		}
	}
}

func TestPruneLargerKKeepsMore(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var pairs []pair.Pair
	var vecs []Vector
	for j := 0; j < 30; j++ {
		pairs = append(pairs, pair.Pair{U1: 0, U2: kb.EntityID(j)})
		vecs = append(vecs, Vector{rng.Float64()})
	}
	pr := NewPruner(pairs, vecs)
	sizes := []int{}
	for _, k := range []int{1, 2, 4, 8, 16} {
		sizes = append(sizes, len(pr.Prune(pairs, k)))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("larger k kept fewer pairs: %v", sizes)
		}
	}
	_ = fmt.Sprint(sizes)
}
