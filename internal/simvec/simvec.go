// Package simvec assembles similarity vectors over attribute matches and
// implements the partial-order-based pruning of §IV-D (Algorithm 1): each
// candidate entity pair (u1,u2) gets a vector s(u1,u2) whose i-th component
// is the simL similarity of the pair's value sets on the i-th attribute
// match; the natural partial order s ≻ s′ (componentwise ≥ with at least
// one >) induces min_rank, and pairs whose worst rank reaches k are pruned
// together with everything they dominate.
package simvec

import (
	"runtime"

	"repro/internal/attrmatch"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/strsim"
)

// Vector is a similarity vector; one component per attribute match.
type Vector []float64

// Dominates reports s ⪰ t: every component of s is ≥ the matching
// component of t. (The paper's pruning uses the weak form; strictness is
// handled by StrictlyDominates.)
func (s Vector) Dominates(t Vector) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] < t[i] {
			return false
		}
	}
	return true
}

// StrictlyDominates reports s ≻ t: s ⪰ t and s ≠ t.
func (s Vector) StrictlyDominates(t Vector) bool {
	if !s.Dominates(t) {
		return false
	}
	for i := range s {
		if s[i] > t[i] {
			return true
		}
	}
	return false
}

// Equal reports componentwise equality.
func (s Vector) Equal(t Vector) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Runner runs n independent tasks, possibly in parallel. *core.Scheduler
// satisfies it; simvec declares its own interface because core imports
// this package.
type Runner interface {
	ForEach(n int, fn func(i int))
}

// Builder computes similarity vectors for candidate pairs.
type Builder struct {
	k1, k2    *kb.KB
	matches   []attrmatch.Match
	threshold float64
	runner    Runner

	// Batch state, built lazily by All: each distinct (entity, attribute)
	// value set is interned into the corpus exactly once, so the SimL of
	// millions of pairs runs on cached kinds, parsed values and dense
	// token IDs instead of re-tokenizing strings per comparison.
	corpus *strsim.Corpus
	lits1  map[valKey][]strsim.LitID
	lits2  map[valKey][]strsim.LitID
}

// valKey addresses one entity's value set on one attribute.
type valKey struct {
	u kb.EntityID
	a kb.AttrID
}

// NewBuilder returns a Builder over the given attribute matches;
// literalThreshold is the internal simL threshold (0.9 in the paper).
func NewBuilder(k1, k2 *kb.KB, matches []attrmatch.Match, literalThreshold float64) *Builder {
	if literalThreshold == 0 {
		literalThreshold = 0.9
	}
	return &Builder{k1: k1, k2: k2, matches: matches, threshold: literalThreshold}
}

// Dim returns the vector dimensionality |Mat|.
func (b *Builder) Dim() int { return len(b.matches) }

// SetRunner makes All compute vectors in parallel. The output is
// byte-identical either way; nil (the default) means serial.
func (b *Builder) SetRunner(r Runner) { b.runner = r }

// Vector computes s(u1,u2). It is the retained per-pair string
// implementation — the semantic anchor the property tests hold All to.
func (b *Builder) Vector(p pair.Pair) Vector {
	v := make(Vector, len(b.matches))
	for i, m := range b.matches {
		v1 := b.k1.AttrValues(p.U1, m.A1)
		v2 := b.k2.AttrValues(p.U2, m.A2)
		if len(v1) == 0 || len(v2) == 0 {
			continue
		}
		v[i] = strsim.SimL(v1, v2, b.threshold)
	}
	return v
}

// All computes vectors for every pair, preserving order. It runs the
// batched path: one serial pass interns every needed value set into the
// builder's corpus, then pair vectors are computed — in parallel when a
// Runner is set — from cached dense literal IDs. Each out[i] is
// byte-identical to Vector(pairs[i]).
func (b *Builder) All(pairs []pair.Pair) []Vector {
	out := make([]Vector, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	if b.corpus == nil {
		b.corpus = strsim.NewCorpus()
		b.lits1 = make(map[valKey][]strsim.LitID)
		b.lits2 = make(map[valKey][]strsim.LitID)
	}
	// Interning mutates the corpus, so it stays serial; the scoring pass
	// below only reads it.
	for _, p := range pairs {
		for _, m := range b.matches {
			b.intern(b.lits1, b.k1, p.U1, m.A1)
			b.intern(b.lits2, b.k2, p.U2, m.A2)
		}
	}
	chunks := chunkRanges(len(pairs), b.runner)
	runAll(b.runner, len(chunks), func(ci int) {
		var sc strsim.MatchScratch
		for i := chunks[ci].lo; i < chunks[ci].hi; i++ {
			p := pairs[i]
			v := make(Vector, len(b.matches))
			for mi, m := range b.matches {
				va := b.lits1[valKey{u: p.U1, a: m.A1}]
				vb := b.lits2[valKey{u: p.U2, a: m.A2}]
				if len(va) == 0 || len(vb) == 0 {
					continue
				}
				v[mi] = b.corpus.SimL(va, vb, b.threshold, &sc)
			}
			out[i] = v
		}
	})
	return out
}

// intern caches the dense literal IDs of one (entity, attribute) value
// set, interning the literals on first sight.
func (b *Builder) intern(cache map[valKey][]strsim.LitID, k *kb.KB, u kb.EntityID, a kb.AttrID) {
	key := valKey{u: u, a: a}
	if _, ok := cache[key]; ok {
		return
	}
	cache[key] = b.corpus.InternAll(k.AttrValues(u, a))
}

// chunkRange is a half-open [lo, hi) range of pair indexes.
type chunkRange struct{ lo, hi int }

// chunkRanges splits n pairs into contiguous chunks: one per CPU when a
// runner is present, a single chunk otherwise.
func chunkRanges(n int, r Runner) []chunkRange {
	if n == 0 {
		return nil
	}
	nc := 1
	if r != nil {
		nc = runtime.NumCPU()
		if nc > n {
			nc = n
		}
	}
	out := make([]chunkRange, nc)
	for i := 0; i < nc; i++ {
		out[i] = chunkRange{lo: i * n / nc, hi: (i + 1) * n / nc}
	}
	return out
}

// runAll executes fn(0..n-1) through r, or serially when r is nil.
func runAll(r Runner, n int, fn func(int)) {
	if r == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	r.ForEach(n, fn)
}

// SharedAttrMatches returns the indexes of attribute matches on which both
// entities of p have at least one value. Used by the isolated-pair
// classifier's neighborhood (§VII-B).
func (b *Builder) SharedAttrMatches(p pair.Pair) []int {
	var out []int
	for i, m := range b.matches {
		if len(b.k1.AttrValues(p.U1, m.A1)) > 0 && len(b.k2.AttrValues(p.U2, m.A2)) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Pruner runs partial-order-based pruning (Algorithm 1).
type Pruner struct {
	vectors map[pair.Pair]Vector
}

// NewPruner precomputes (or receives) the similarity vectors of all
// candidate pairs (Algorithm 1, line 1).
func NewPruner(pairs []pair.Pair, vectors []Vector) *Pruner {
	m := make(map[pair.Pair]Vector, len(pairs))
	for i, p := range pairs {
		m[p] = vectors[i]
	}
	return &Pruner{vectors: m}
}

// VectorOf returns the stored vector for p.
func (pr *Pruner) VectorOf(p pair.Pair) Vector { return pr.vectors[p] }

// Prune implements Algorithm 1: two one-way passes (by K1 entity, then by
// K2 entity), each pruning pairs whose min_rank within their block reaches
// k, plus every pair they dominate. It returns the retained match set Mrd
// in the original order of pairs.
func (pr *Pruner) Prune(pairs []pair.Pair, k int) []pair.Pair {
	if k <= 0 {
		k = 4
	}
	afterFirst := pr.pruneOneWay(pairs, k, true)
	return pr.pruneOneWay(afterFirst, k, false)
}

// pruneOneWay is PruningInOneWay from Algorithm 1. bySide1 selects whether
// blocks group pairs sharing the K1 entity (min_rank_1) or the K2 entity
// (min_rank_2).
func (pr *Pruner) pruneOneWay(pairs []pair.Pair, k int, bySide1 bool) []pair.Pair {
	blocks := make(map[kb.EntityID][]pair.Pair)
	for _, p := range pairs {
		key := p.U1
		if !bySide1 {
			key = p.U2
		}
		blocks[key] = append(blocks[key], p)
	}
	kept := make(map[pair.Pair]bool, len(pairs))
	for _, block := range blocks {
		if len(block) <= k {
			for _, p := range block {
				kept[p] = true
			}
			continue
		}
		retained := pr.pruneBlock(block, k)
		for _, p := range retained {
			kept[p] = true
		}
	}
	out := make([]pair.Pair, 0, len(pairs))
	for _, p := range pairs {
		if kept[p] {
			out = append(out, p)
		}
	}
	return out
}

// pruneBlock prunes a single block B: any pair with min_rank ≥ k is
// removed, and (per the paper) every pair dominated by a removed pair is
// removed too, since its min_rank must also be ≥ k.
func (pr *Pruner) pruneBlock(block []pair.Pair, k int) []pair.Pair {
	n := len(block)
	vecs := make([]Vector, n)
	for i, p := range block {
		vecs[i] = pr.vectors[p]
	}
	removed := make([]bool, n)
	for i := 0; i < n; i++ {
		if removed[i] {
			continue
		}
		// min_rank within this block: number of vectors strictly larger.
		rank := 0
		for j := 0; j < n; j++ {
			if j != i && vecs[j].StrictlyDominates(vecs[i]) {
				rank++
				if rank >= k {
					break
				}
			}
		}
		if rank >= k {
			removed[i] = true
			// Everything dominated by vecs[i] has rank ≥ rank(i) ≥ k.
			for j := 0; j < n; j++ {
				if !removed[j] && vecs[i].StrictlyDominates(vecs[j]) {
					removed[j] = true
				}
			}
		}
	}
	var out []pair.Pair
	for i, p := range block {
		if !removed[i] {
			out = append(out, p)
		}
	}
	return out
}

// MinRank computes min_rank(u1,u2) over the full candidate set (Eq. 2):
// the max over both sides of the number of same-entity competitors whose
// vectors strictly dominate the pair's vector.
func (pr *Pruner) MinRank(pairs []pair.Pair, p pair.Pair) int {
	v := pr.vectors[p]
	r1, r2 := 0, 0
	for _, q := range pairs {
		if q == p {
			continue
		}
		if q.U1 == p.U1 && pr.vectors[q].StrictlyDominates(v) {
			r1++
		}
		if q.U2 == p.U2 && pr.vectors[q].StrictlyDominates(v) {
			r2++
		}
	}
	if r1 > r2 {
		return r1
	}
	return r2
}
