package core

import (
	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/selection"
)

// Auto-sharding thresholds: below autoShardMinVertices the per-shard
// bookkeeping costs more than it saves, so Shards = 0 (auto) stays
// single-shard; above it, one shard per ~autoShardVerticesPerShard
// vertices, capped at maxAutoShards. Sharding bounds the peak size of any
// one engine's dist/rev ball maps and lets settled shards release them
// entirely, so the cap is deliberately above typical core counts.
const (
	autoShardMinVertices      = 4096
	autoShardVerticesPerShard = 1024
	maxAutoShards             = 16
)

// resolveShardCount maps the configured Shards value onto a concrete
// count for a graph of the given size: 1 (or an empty graph) disables
// sharding, an explicit count is honored up to the vertex count, and 0
// picks automatically from the graph size.
func resolveShardCount(requested, vertices int) int {
	switch {
	case vertices == 0 || requested == 1:
		return 1
	case requested > 1:
		if requested > vertices {
			return vertices
		}
		return requested
	default: // auto
		if vertices < autoShardMinVertices {
			return 1
		}
		s := vertices / autoShardVerticesPerShard
		if s > maxAutoShards {
			s = maxAutoShards
		}
		return s
	}
}

// shardPipe is one shard's slice of the prepared pipeline: the induced
// component subgraph and its probabilistic counterpart. Because the
// partition respects relational edges, every edge of a shard vertex lives
// in the same shard, so the subgraph pipeline computes bit-identical
// probabilities and propagation to the monolithic one restricted to the
// shard.
type shardPipe struct {
	id    int
	graph *ergraph.Graph
	prob  *propagation.ProbGraph
	// globalIdx maps shard-local vertex indexes to p.Graph indexes; nil
	// means identity (the single-shard pipe reuses p.Graph directly).
	globalIdx []int
	// labels is the set of edge labels present in the shard, used to skip
	// re-estimation rebuilds when no label the shard depends on changed.
	labels []ergraph.RelPair
}

// global maps a shard-local vertex index to the global p.Graph index.
func (sp *shardPipe) global(local int) int {
	if sp.globalIdx == nil {
		return local
	}
	return sp.globalIdx[local]
}

// labelsChanged reports whether any edge label of this shard has a
// different fitted consistency than before. BuildProb consumes only the
// (ε1, ε2) point estimates, so identical estimates for every shard label
// guarantee a rebuild would reproduce the current probabilistic graph
// bit for bit — the rebuild is skipped and the incremental engine state
// (which already carries all detachments) stays authoritative.
func (sp *shardPipe) labelsChanged(old, new map[ergraph.RelPair]consistency.Estimate) bool {
	for _, lbl := range sp.labels {
		o, n := old[lbl], new[lbl]
		if o.Eps1 != n.Eps1 || o.Eps2 != n.Eps2 {
			return true
		}
	}
	return false
}

// initShards resolves the shard count and builds the per-shard pipelines.
// Single-shard pipelines reuse the global graph and populate p.Prob
// exactly as the unsharded pipeline always has; sharded ones build one
// probabilistic subgraph per shard concurrently and leave p.Prob nil.
func (p *Prepared) initShards() {
	count := resolveShardCount(p.Cfg.Shards, p.Graph.NumVertices())
	params := propagation.Params{Priors: p.Priors, Consistency: p.Consistency}
	if count <= 1 {
		p.Prob = propagation.BuildProb(p.Graph, p.K1, p.K2, params)
		p.pipes = []*shardPipe{{id: 0, graph: p.Graph, prob: p.Prob, labels: p.Graph.Labels()}}
		return
	}
	verts := p.Graph.Vertices()
	neighbors := func(i int) []int {
		idx := p.Graph.OutIndexesAt(i)
		out := make([]int, len(idx))
		for k, j := range idx {
			out[k] = int(j)
		}
		return out
	}
	p.Part = partition.Split(verts, neighbors, count)
	pipes := make([]*shardPipe, p.Part.NumShards())
	p.Cfg.scheduler().ForEach(len(pipes), func(s int) {
		vs := p.Part.Shard(s)
		g := p.Graph.Subgraph(vs)
		globalIdx := make([]int, len(vs))
		for i, v := range vs {
			globalIdx[i] = p.Graph.IndexOf(v)
		}
		pipes[s] = &shardPipe{
			id:        s,
			graph:     g,
			prob:      propagation.BuildProb(g, p.K1, p.K2, params),
			globalIdx: globalIdx,
			labels:    g.Labels(),
		}
	})
	p.pipes = pipes
}

// NumShards returns the number of shards the pipeline was split into
// (1 when sharding is off).
func (p *Prepared) NumShards() int { return len(p.pipes) }

// ShardSizes returns the vertex count per shard, the shard assignment
// fingerprint recorded by session snapshots.
func (p *Prepared) ShardSizes() []int {
	out := make([]int, len(p.pipes))
	for i, sp := range p.pipes {
		out[i] = sp.graph.NumVertices()
	}
	return out
}

// mergeCandidates interleaves per-shard candidate lists back into global
// vertex order (each candidate's Inferred[0] is its own global index, and
// each shard's list is ascending in it), so the merged list is exactly
// what a monolithic gather would produce. pos[s][i] gives the merged
// position of shard s's i-th candidate, which the benefit-ordered merge
// uses as the global tie-break.
func mergeCandidates(per [][]selection.Candidate) (merged []selection.Candidate, pos [][]int) {
	pos = make([][]int, len(per))
	total := 0
	for s, list := range per {
		pos[s] = make([]int, len(list))
		total += len(list)
	}
	if len(per) == 1 {
		for i := range pos[0] {
			pos[0][i] = i
		}
		return per[0], pos
	}
	merged = make([]selection.Candidate, 0, total)
	heads := make([]int, len(per))
	for len(merged) < total {
		best := -1
		bestIdx := 0
		for s, list := range per {
			if heads[s] >= len(list) {
				continue
			}
			gi := list[heads[s]].Inferred[0]
			if best < 0 || gi < bestIdx {
				best, bestIdx = s, gi
			}
		}
		pos[best][heads[best]] = len(merged)
		merged = append(merged, per[best][heads[best]])
		heads[best]++
	}
	return merged, pos
}
