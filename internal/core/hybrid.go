package core

import (
	"repro/internal/pair"
	"repro/internal/propagation"
)

// monotoneInference implements the hybrid extension the paper sketches as
// future work (§IX): partial-order inference is layered on top of
// relational propagation. Worker-confirmed labels generalize along the
// similarity-vector dominance order — an unresolved pair whose vector
// dominates some confirmed match is itself a match; one dominated by a
// confirmed non-match is a non-match. Inference stays within an entity's
// competitor blocks (the same locality restriction that keeps the partial
// order's error rate near-perfect in Table V), and newly inferred matches
// respect the 1:1 constraint.
func (p *Prepared) monotoneInference(res *Result, eng *propagation.Engine) {
	if res.Confirmed.Len() == 0 && res.NonMatches.Len() == 0 {
		return
	}
	verts := p.Graph.Vertices()
	for _, v := range verts {
		if res.Matches.Has(v) || res.NonMatches.Has(v) {
			continue
		}
		vec := p.Pruner.VectorOf(v)
		// Blocks: pairs sharing either entity with v.
		for _, side := range [][]int{p.byEntity1[v.U1], p.byEntity2[v.U2]} {
			for _, i := range side {
				w := verts[i]
				if w == v {
					continue
				}
				wv := p.Pruner.VectorOf(w)
				switch {
				case res.Confirmed.Has(w) && vec.StrictlyDominates(wv):
					p.acceptMonotone(v, res, eng)
				case res.NonMatches.Has(w) && wv.StrictlyDominates(vec):
					res.NonMatches.Add(v)
					eng.DetachVertex(v)
				}
				if res.Matches.Has(v) || res.NonMatches.Has(v) {
					break
				}
			}
			if res.Matches.Has(v) || res.NonMatches.Has(v) {
				break
			}
		}
	}
}

// acceptMonotone records a monotone-inferred match under the 1:1
// constraint; its provenance counts as propagation for reporting.
func (p *Prepared) acceptMonotone(v pair.Pair, res *Result, eng *propagation.Engine) {
	res.Propagated.Add(v)
	res.Matches.Add(v)
	p.resolveCompetitors(v, res, eng)
}
