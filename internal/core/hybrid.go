package core

import (
	"repro/internal/deduce"
	"repro/internal/pair"
)

// monotoneInference implements the hybrid extension the paper sketches as
// future work (§IX): partial-order inference is layered on top of
// relational propagation. Worker-confirmed labels generalize along the
// similarity-vector dominance order — an unresolved pair whose vector
// dominates some confirmed match is itself a match; one dominated by a
// confirmed non-match is a non-match. Inference stays within an entity's
// competitor blocks (the same locality restriction that keeps the partial
// order's error rate near-perfect in Table V), and newly inferred matches
// respect the 1:1 constraint. Entity blocks may span shards, and the
// pass's fixpoint is sensitive to iteration order, so it deliberately
// walks the global vertex order — exactly the monolithic pass — routing
// each detach to the owning shard's engine.
func (l *Loop) monotoneInference() {
	if l.res.Confirmed.Len() == 0 && l.res.NonMatches.Len() == 0 {
		return
	}
	res := l.res
	for _, v := range l.p.Graph.Vertices() {
		if l.resolved(v) {
			continue
		}
		vec := l.p.Pruner.VectorOf(v)
		// Blocks: pairs sharing either entity with v.
		for _, side := range [][]pair.Pair{l.p.byEntity1[v.U1], l.p.byEntity2[v.U2]} {
			for _, w := range side {
				if w == v {
					continue
				}
				wv := l.p.Pruner.VectorOf(w)
				switch {
				case res.Confirmed.Has(w) && vec.StrictlyDominates(wv):
					l.acceptMonotone(v)
				case res.NonMatches.Has(w) && wv.StrictlyDominates(vec):
					l.markNonMatch(v)
				}
				if l.resolved(v) {
					break
				}
			}
			if l.resolved(v) {
				break
			}
		}
	}
}

// acceptMonotone records a monotone-inferred match under the 1:1
// constraint; its provenance counts as propagation for reporting.
func (l *Loop) acceptMonotone(v pair.Pair) {
	l.record(v, deduce.Match)
	l.res.Propagated.Add(v)
	l.res.Matches.Add(v)
	l.pendingSeeds = append(l.pendingSeeds, v)
	l.touch(v)
	l.runnerResolve(v, false)
	l.resolveCompetitors(v)
}
