package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/crowd"
	"repro/internal/deduce"
	"repro/internal/obs"
	"repro/internal/pair"
	"repro/internal/selection"
)

// LoopState names the externally visible states of a Loop.
type LoopState string

// Loop states. A loop is born Awaiting (or Done, when the stop criterion
// already holds on the prepared graph) and every transition is driven by
// Deliver: once the open batch drains, the machine advances through the
// batch tail (hybrid inference, re-estimation, budget check) and either
// publishes the next batch or finishes.
const (
	// LoopAwaiting means a batch of questions is published and at least
	// one answer is still outstanding.
	LoopAwaiting LoopState = "awaiting_answers"
	// LoopDone means the stop criterion held: the result is final.
	LoopDone LoopState = "done"
	// LoopFailed means the shard runner failed permanently (a remote
	// runner lost its whole cluster); Err reports why. The local runner
	// never fails, so in-process loops never reach this state.
	LoopFailed LoopState = "failed"
)

// Errors returned by Loop.Deliver.
var (
	// ErrLoopDone is returned when answers arrive after the loop finished.
	ErrLoopDone = errors.New("core: loop is done")
	// ErrUnknownQuestion is returned for a pair outside the open batch.
	ErrUnknownQuestion = errors.New("core: not an open question")
	// ErrDuplicateAnswer is returned when an open question is answered twice.
	ErrDuplicateAnswer = errors.New("core: question already answered")
)

// Answer is one answered question: the pair and the worker labels it
// received. Loop.History records them in application order, which replays
// a loop deterministically (the snapshot format of internal/session).
type Answer struct {
	Pair   pair.Pair
	Labels []crowd.Label
}

// loopShard is the loop's per-shard bookkeeping: the pipe (subgraph and
// its global index map) plus the caches that make clean shards free. The
// engines themselves live behind the ShardRunner. A shard whose vertices
// are all resolved is settled: its engine is released (the dist/rev ball
// maps are the loop's dominant memory) and every later phase skips it.
//
// dirty tracks whether anything that feeds candidate gathering changed
// since the shard's last gather: an answer applied to a shard vertex, a
// competitor resolved into the shard, a damped prior, or an engine
// rebuild. A clean shard's candidates — and its ranked selection — are
// bit-identical to the previous loop's, so both are cached and reused; a
// monolithic pipeline is dirtied by every answer, which is exactly the
// per-loop cost sharding scopes down.
type loopShard struct {
	pipe    *shardPipe
	settled bool

	dirty   bool
	cands   []selection.Candidate
	anyProp bool
	picks   []selection.Pick
	picksMu int
}

// Loop is the human–machine loop of Run inverted into an explicit state
// machine, so callers that cannot block on an Asker — crowd platforms
// posting HITs, HTTP clients, concurrent jobs — can pull question batches
// and push answers as they arrive, in any order.
//
// The machine preserves Run's semantics exactly: a batch of µ questions is
// selected against the engine snapshot taken at the loop top; answers are
// buffered and applied in the batch's selection order (the order Run asked
// them), so out-of-order delivery cannot change a single resolved pair;
// when the batch drains the loop tail runs (hybrid inference,
// re-estimation, budget check) and the next batch is selected, until the
// paper's stop criterion halts the loop and the isolated-pair classifier
// finalizes the result.
//
// When the pipeline is sharded, each shard runs its propagation engine,
// candidate gathering, question selection and re-estimation rebuild
// independently — fanned across the Config's Scheduler — while one global
// budget/µ-batch scheduler draws each batch across the shards by expected
// benefit. Propagation evidence never crosses shards (the partition
// follows the relational edges it flows along), and the only cross-shard
// effect — the 1:1 constraint resolving a confirmed match's competitors —
// runs on the serial answer-application path, so the sharded machine
// resolves exactly the pairs the monolithic one would.
//
// The engines live behind the Config's ShardRunner: in this process by
// default, or on cluster worker processes behind internal/cluster's
// remote runner. A runner that fails permanently moves the loop to
// LoopFailed and Err reports the cause; the in-process runner never does.
//
// A Loop is not safe for concurrent use; internal/session.Session adds the
// locking, stable question IDs and snapshot/restore on top.
type Loop struct {
	p      *Prepared
	r      ShardRunner
	res    *Result
	priors map[pair.Pair]float64
	hard   pair.Set
	shards []*loopShard

	open    []pair.Pair                 // published batch, in selection order
	next    int                         // index into open of the next answer to apply
	buf     map[pair.Pair][]crowd.Label // out-of-order answers awaiting their turn
	history []Answer                    // applied answers, in application order
	done    bool
	err     error // sticky runner failure; the loop is dead once set

	// pendingSeeds are the matches confirmed or propagated since the last
	// consistency refit; re-estimation uses them to skip labels whose
	// observation sets provably did not change.
	pendingSeeds []pair.Pair

	// ded is the transitive-closure deduction store (Config.Deduce); it
	// records every resolution and lets drain skip open questions whose
	// verdict is already implied. deduced are the skipped questions, so
	// the session layer can swallow their late crowd answers.
	ded     *deduce.Store
	deduced pair.Set

	recomputes int64 // Dijkstra runs of engines already released
}

// NewLoop starts the human–machine loop and advances it to its first
// question batch (or directly to LoopDone when nothing can be asked).
// Like Run, it mutates the Prepared's probabilistic graph(s); prepare one
// Prepared per loop.
func (p *Prepared) NewLoop() *Loop {
	l := &Loop{
		p: p,
		res: &Result{
			Matches:           pair.Set{},
			Confirmed:         pair.Set{},
			Propagated:        pair.Set{},
			IsolatedPredicted: pair.Set{},
			NonMatches:        pair.Set{},
		},
		priors: make(map[pair.Pair]float64, len(p.Priors)),
		hard:   pair.Set{},
	}
	for k, v := range p.Priors {
		l.priors[k] = v
	}
	if p.Cfg.Deduce {
		l.ded = deduce.New(deduce.OneToOne)
		l.deduced = pair.Set{}
	}
	l.shards = make([]*loopShard, len(p.pipes))
	for s := range l.shards {
		l.shards[s] = &loopShard{pipe: p.pipes[s], dirty: true}
	}
	// The initial engine builds are the first propagation work of the
	// session; their Dijkstra fan-out lands in the infer stage and the
	// shared engine counters.
	t0 := p.Cfg.Obs.StageStart()
	r, err := p.Cfg.runnerFactory()(p)
	p.Cfg.Obs.StageEnd(obs.StageInfer, t0)
	if err != nil {
		l.fail(fmt.Errorf("core: starting shard runner: %w", err))
		return l
	}
	l.r = r
	l.openBatch()
	return l
}

// NumShards returns the number of shards the loop runs over.
func (l *Loop) NumShards() int { return len(l.shards) }

// ShardSizes returns the vertex count per shard (the shard assignment
// fingerprint session snapshots record).
func (l *Loop) ShardSizes() []int { return l.p.ShardSizes() }

// shardIndex routes a pair to its shard index. All pairs reachable from
// the loop's control flow are graph vertices, so the lookup cannot miss;
// -1 is returned for foreign pairs as a guard.
func (l *Loop) shardIndex(q pair.Pair) int {
	if len(l.shards) == 1 {
		return 0
	}
	return l.p.Part.ShardOf(q)
}

// resolved reports whether q has been decided either way.
func (l *Loop) resolved(q pair.Pair) bool {
	return l.res.Matches.Has(q) || l.res.NonMatches.Has(q)
}

// WasDeduced reports whether q was skipped by answer deduction instead
// of being answered by the crowd (always false unless Config.Deduce).
// Drivers use it to drop a question from an already-fetched batch, and
// the session layer to swallow a late crowd answer for it.
func (l *Loop) WasDeduced(q pair.Pair) bool { return l.deduced.Has(q) }

// DeduceEnabled reports whether the loop maintains a deduction store
// (Config.Deduce). The session layer consults it before engaging the
// namespace deduction tier, so a Deduce-off session never receives
// synthesized answers.
func (l *Loop) DeduceEnabled() bool { return l.ded != nil }

// Deduces reports whether the loop's own recorded facts already imply
// q's verdict. Unlike WasDeduced it answers before the apply cursor
// reaches q: the session layer uses it to withhold a question from
// publication (the crowd would answer it for nothing — the drain will
// skip it) and to keep the namespace deduction tier from answering a
// question this loop is about to skip by itself.
func (l *Loop) Deduces(q pair.Pair) bool {
	if l.ded == nil {
		return false
	}
	if l.deduced.Has(q) {
		return true
	}
	v, _ := l.ded.Lookup(q)
	return v != deduce.Unknown
}

// record mirrors a resolution into the deduction store. Conflicting
// facts (an inconsistent crowd can resolve a pair both ways) are
// deliberately dropped: the store keeps the first fact, which is a pure
// function of the applied-answer prefix either way.
func (l *Loop) record(q pair.Pair, v deduce.Verdict) {
	if l.ded != nil {
		_ = l.ded.Record(q, v)
	}
}

// DeduceStats returns the loop's deduction-store counters (zero when
// Config.Deduce is off).
func (l *Loop) DeduceStats() deduce.Stats {
	if l.ded == nil {
		return deduce.Stats{}
	}
	return l.ded.Stats()
}

// touch marks q's shard dirty: its cached candidates and selection no
// longer describe the next loop.
func (l *Loop) touch(q pair.Pair) {
	if s := l.shardIndex(q); s >= 0 {
		l.shards[s].dirty = true
	}
}

// fail records a permanent runner failure: the loop is dead, Deliver
// returns the error, and the engines are released best-effort.
func (l *Loop) fail(err error) {
	if l.err != nil || l.done {
		return
	}
	l.err = err
	l.open, l.buf = nil, nil
	l.next = 0
	if l.r != nil {
		l.r.Close() //nolint:errcheck // best-effort release on the failure path
	}
}

// runnerResolve mirrors a resolution into the owning shard's engine state.
// Settled shards are skipped: every vertex there is already resolved, so
// the runner state cannot be consulted again.
func (l *Loop) runnerResolve(q pair.Pair, detach bool) {
	if l.err != nil {
		return
	}
	s := l.shardIndex(q)
	if s < 0 || l.shards[s].settled {
		return
	}
	if err := l.r.Resolve(s, q, detach); err != nil {
		l.fail(err)
	}
}

// markNonMatch resolves v negative: the result set, the shard dirty flag
// and the runner's propagation state (detachment) advance together.
func (l *Loop) markNonMatch(v pair.Pair) {
	l.record(v, deduce.NonMatch)
	l.res.NonMatches.Add(v)
	l.touch(v)
	l.runnerResolve(v, true)
}

// State returns the loop's current state.
func (l *Loop) State() LoopState {
	if l.err != nil {
		return LoopFailed
	}
	if l.done {
		return LoopDone
	}
	return LoopAwaiting
}

// Done reports whether the loop has finished and the result is final.
func (l *Loop) Done() bool { return l.done }

// Err returns the permanent runner failure that moved the loop to
// LoopFailed, or nil.
func (l *Loop) Err() error { return l.err }

// Result returns the loop's result. While the loop is awaiting answers the
// sets are live views of the work in progress; once Done they are final.
func (l *Loop) Result() *Result { return l.res }

// Batch returns the open questions still awaiting an answer, in selection
// order. It is empty exactly when the loop is done: the machine never
// stalls with an open batch fully buffered, because a buffered answer
// out of order implies an earlier question is still unanswered.
func (l *Loop) Batch() []pair.Pair {
	out := make([]pair.Pair, 0, len(l.open)-l.next)
	for _, q := range l.open[l.next:] {
		if _, buffered := l.buf[q]; !buffered {
			out = append(out, q)
		}
	}
	return out
}

// History returns the applied answers in application order. Replaying them
// through a fresh Loop via Deliver reproduces this loop's state exactly;
// the slice is the loop's own and must not be mutated.
func (l *Loop) History() []Answer { return l.history }

// Buffered returns the answers delivered out of order and not yet applied,
// sorted by pair for determinism.
func (l *Loop) Buffered() []Answer {
	out := make([]Answer, 0, len(l.buf))
	for q, labels := range l.buf {
		out = append(out, Answer{Pair: q, Labels: labels})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pair.Less(out[j].Pair) })
	return out
}

// Deliver accepts the worker labels for one open question, in any order.
// Answers are applied strictly in the batch's selection order; an answer
// arriving early is buffered until its predecessors arrive. When the
// delivery drains the batch, the machine advances: loop tail, next batch
// selection, and — when the stop criterion holds — finalization.
func (l *Loop) Deliver(q pair.Pair, labels []crowd.Label) error {
	if l.err != nil {
		return l.err
	}
	if l.done {
		return fmt.Errorf("%w (extra answer for %v)", ErrLoopDone, q)
	}
	openQ := false
	for _, o := range l.open[l.next:] {
		if o == q {
			openQ = true
			break
		}
	}
	if !openQ {
		return fmt.Errorf("%w: %v", ErrUnknownQuestion, q)
	}
	if _, dup := l.buf[q]; dup {
		return fmt.Errorf("%w: %v", ErrDuplicateAnswer, q)
	}
	l.buf[q] = labels
	l.drain()
	if l.err != nil {
		return l.err
	}
	return nil
}

// drain applies the longest in-order prefix of buffered answers and, when
// the batch is exhausted, runs the loop tail and advances.
func (l *Loop) drain() {
	cfg := l.p.Cfg
	for l.next < len(l.open) {
		q := l.open[l.next]
		if l.ded != nil {
			if v, _ := l.ded.Lookup(q); v != deduce.Unknown {
				// The recorded answers already imply q's verdict (an
				// earlier batch-mate's cascade resolved it): skip the
				// question instead of spending a crowd answer. Any
				// buffered late answer is dropped; the session layer
				// swallows re-deliveries via WasDeduced. The skip is a
				// pure function of the applied prefix, so replays and
				// out-of-order runs skip identically.
				delete(l.buf, q)
				l.next++
				l.res.Deduced++
				l.deduced.Add(q)
				continue
			}
		}
		labels, ok := l.buf[q]
		if !ok {
			return // an earlier question is still outstanding
		}
		delete(l.buf, q)
		l.next++
		l.apply(q, labels)
		if l.err != nil {
			return
		}
		if cfg.Budget > 0 && l.res.Questions >= cfg.Budget {
			// Run abandons the rest of the batch when the budget fills.
			// Since µ is clamped to the remaining budget at selection time
			// this is only ever the batch's last question, but replicate
			// the abandonment so the machines cannot diverge.
			l.open = l.open[:l.next]
			clear(l.buf)
			break
		}
	}
	l.batchTail()
}

// apply resolves one answered question against the current snapshot — the
// batch body of Run.
func (l *Loop) apply(q pair.Pair, labels []crowd.Label) {
	cfg := l.p.Cfg
	t0 := cfg.Obs.StageStart()
	defer cfg.Obs.StageEnd(obs.StageApply, t0)
	cfg.Obs.AddQuestion()
	l.history = append(l.history, Answer{Pair: q, Labels: labels})
	l.res.Questions++
	l.touch(q)
	inf := crowd.Infer(l.priors[q], labels, cfg.Thresholds)
	switch inf.Verdict {
	case crowd.IsMatch:
		l.confirmMatch(q)
	case crowd.IsNonMatch:
		l.markNonMatch(q)
	default:
		// Hard question: damp its prior so its benefit shrinks.
		l.priors[q] = inf.Posterior
		l.hard.Add(q)
		if s := l.shardIndex(q); s >= 0 && !l.shards[s].settled && l.err == nil {
			if err := l.r.Damp(s, q, inf.Posterior); err != nil {
				l.fail(err)
			}
		}
	}
	if cfg.Progress != nil {
		cfg.Progress(l.res.Questions, l.res.Matches)
	}
}

// batchTail runs the work Run performs after a batch of µ answers: hybrid
// monotone inference, re-estimation and the budget stop, then advances to
// the next batch.
func (l *Loop) batchTail() {
	cfg := l.p.Cfg
	if l.err != nil {
		return
	}
	if cfg.Hybrid || (cfg.Reestimate && l.res.Confirmed.Len() > 0) {
		t0 := cfg.Obs.StageStart()
		if cfg.Hybrid {
			l.monotoneInference()
		}
		if cfg.Reestimate && l.res.Confirmed.Len() > 0 && l.err == nil {
			l.reestimate()
		}
		cfg.Obs.StageEnd(obs.StageReestimate, t0)
		if l.err != nil {
			return
		}
	}
	if cfg.Budget > 0 && l.res.Questions >= cfg.Budget {
		l.finish()
		return
	}
	l.openBatch()
}

// settle marks fully resolved shards settled and releases their engines:
// no later phase reads them (candidates skip resolved vertices, answers
// only target candidates, and a competitor of a future match that falls
// in a settled shard is already resolved, so it is never detached), so
// their ball maps — the loop's dominant memory — can be collected and
// every per-shard phase skips them outright.
func (l *Loop) settle() {
	if len(l.shards) == 1 {
		return // a fully resolved single shard finishes the loop instead
	}
	for s, sh := range l.shards {
		if sh.settled || !sh.dirty {
			// A clean shard saw no resolution since its last gather, so it
			// cannot have newly settled.
			continue
		}
		allResolved := true
		for _, v := range sh.pipe.graph.Vertices() {
			if !l.resolved(v) {
				allResolved = false
				break
			}
		}
		if !allResolved {
			continue
		}
		sh.settled = true
		n, err := l.r.Release(s)
		if err != nil {
			l.fail(err)
			return
		}
		l.recomputes += n
		sh.cands, sh.picks = nil, nil
	}
}

// active returns the indexes of unsettled shards.
func (l *Loop) active() []int {
	out := make([]int, 0, len(l.shards))
	for s, sh := range l.shards {
		if !sh.settled {
			out = append(out, s)
		}
	}
	return out
}

// openBatch is the loop top of Run: settle finished shards, sync the
// propagation engines, gather candidates and select per shard
// concurrently, check the stop criterion, and draw the next µ questions
// across shards by expected benefit. It either publishes a batch or
// finishes the loop.
func (l *Loop) openBatch() {
	cfg := l.p.Cfg
	if cfg.MaxLoops > 0 && l.res.Loops >= cfg.MaxLoops {
		l.finish()
		return
	}
	l.settle()
	if l.err != nil {
		return
	}
	active := l.active()
	if cfg.debugFullResync {
		// Test hook: degrade to the historical recompute-everything policy
		// so equivalence tests can diff the results.
		for _, s := range active {
			if err := l.r.Invalidate(s); err != nil {
				l.fail(err)
				return
			}
			l.shards[s].dirty = true
		}
	}
	sched := cfg.scheduler()
	dirty := make([]int, 0, len(active))
	for _, s := range active {
		if l.shards[s].dirty {
			dirty = append(dirty, s)
		}
	}
	// The engine Syncs plus candidate gathers are the loop's propagation
	// phase; everything from the merge to the padded batch is selection.
	tInfer := cfg.Obs.StageStart()
	gatherErrs := make([]error, len(dirty))
	sched.ForEach(len(dirty), func(k int) {
		sh := l.shards[dirty[k]]
		cands, anyProp, err := l.r.Gather(dirty[k])
		if err != nil {
			gatherErrs[k] = err
			return
		}
		sh.cands, sh.anyProp = cands, anyProp
		sh.picks = nil
		sh.dirty = false
	})
	cfg.Obs.StageEnd(obs.StageInfer, tInfer)
	for _, err := range gatherErrs {
		if err != nil {
			l.fail(err)
			return
		}
	}
	tSelect := cfg.Obs.StageStart()
	perShard := make([][]selection.Candidate, len(active))
	anyPropagation := false
	for k, s := range active {
		perShard[k] = l.shards[s].cands
		anyPropagation = anyPropagation || l.shards[s].anyProp
	}
	cands, pos := mergeCandidates(perShard)
	if len(cands) == 0 || (!anyPropagation && !cfg.ExhaustBudget) {
		cfg.Obs.StageEnd(obs.StageSelect, tSelect)
		l.finish()
		return
	}
	mu := cfg.Mu
	if cfg.Budget > 0 && l.res.Questions+mu > cfg.Budget {
		mu = cfg.Budget - l.res.Questions
		if mu <= 0 {
			cfg.Obs.StageEnd(obs.StageSelect, tSelect)
			l.finish()
			return
		}
	}
	chosen := l.selectBatch(cands, active, perShard, pos, mu)
	if l.err != nil {
		cfg.Obs.StageEnd(obs.StageSelect, tSelect)
		return
	}
	if len(chosen) < mu {
		// Remp always issues µ questions per human-machine loop (§VIII,
		// Table VII): pad the batch with the highest-prior unchosen
		// candidates once marginal benefits hit zero.
		chosen = padBatch(cands, chosen, mu)
	}
	if cfg.Deduce && len(chosen) > 1 {
		// Deduction-aware ordering: front-load the questions whose
		// confirmation cascade closes the most open batch-mates, so the
		// deduction skip in drain fires as often as possible. Stable on
		// the existing global candidate order, so determinism holds.
		chosen = selection.OrderByClosureGain(cands, chosen)
	}
	cfg.Obs.StageEnd(obs.StageSelect, tSelect)
	if len(chosen) == 0 {
		l.finish()
		return
	}
	cfg.Obs.AddBatch()
	l.res.Loops++
	l.open = make([]pair.Pair, len(chosen))
	for i, ci := range chosen {
		l.open[i] = cands[ci].Pair
	}
	l.next = 0
	l.buf = make(map[pair.Pair][]crowd.Label, len(l.open))
}

// selectBatch chooses up to mu questions. Single-shard loops (and custom
// strategies without ranked selection) run the strategy over the merged
// candidate list, exactly as the monolithic loop always has. Sharded loops
// with a Ranked strategy select per shard concurrently and merge the
// per-shard sequences by committed score — the global µ-batch drawn
// across shards by expected benefit. Because inferred sets never cross
// shards, the merged sequence equals what the strategy would have chosen
// on the merged list: scores depend only on same-shard predecessors, and
// ties break on the global candidate order either way. A clean shard's
// ranked sequence is reused from the previous loop (its candidates are
// unchanged, so its scores are too).
func (l *Loop) selectBatch(cands []selection.Candidate, active []int, perShard [][]selection.Candidate, pos [][]int, mu int) []int {
	cfg := l.p.Cfg
	_, ok := cfg.Strategy.(selection.Ranked)
	if len(perShard) == 1 || !ok {
		return cfg.Strategy.Select(cands, mu)
	}
	picks := make([][]selection.Pick, len(perShard))
	stale := make([]int, 0, len(active))
	for k, s := range active {
		sh := l.shards[s]
		if sh.picks == nil || sh.picksMu != mu {
			stale = append(stale, k)
		} else {
			picks[k] = sh.picks
		}
	}
	rankErrs := make([]error, len(stale))
	cfg.scheduler().ForEach(len(stale), func(i int) {
		k := stale[i]
		sh := l.shards[active[k]]
		if len(perShard[k]) > 0 {
			pk, err := l.r.Rank(active[k], mu)
			if err != nil {
				rankErrs[i] = err
				return
			}
			sh.picks = pk
		} else {
			sh.picks = []selection.Pick{}
		}
		sh.picksMu = mu
		picks[k] = sh.picks
	})
	for _, err := range rankErrs {
		if err != nil {
			l.fail(err)
			return nil
		}
	}
	heads := make([]int, len(picks))
	var chosen []int
	for len(chosen) < mu {
		best := -1
		bestScore := 0.0
		bestPos := 0
		for k := range picks {
			if heads[k] >= len(picks[k]) {
				continue
			}
			pk := picks[k][heads[k]]
			gp := pos[k][pk.Index]
			if best < 0 || pk.Score > bestScore || (pk.Score == bestScore && gp < bestPos) {
				best, bestScore, bestPos = k, pk.Score, gp
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, bestPos)
		heads[best]++
	}
	return chosen
}

// finish runs the finalization Run performs after the loop breaks, records
// the engines' Dijkstra counts and releases their ball maps.
func (l *Loop) finish() {
	l.open = nil
	l.buf = nil
	l.next = 0
	if l.r != nil {
		// Close errors are not failures here: the result is already final,
		// and a remote runner's lost recompute counts are diagnostics only.
		n, _ := l.r.Close()
		l.recomputes += n
	}
	l.p.runRecomputes = l.recomputes
	if l.p.Cfg.ClassifyIsolated {
		l.p.classifyIsolated(l.res)
	}
	l.done = true
}
