package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/crowd"
	"repro/internal/pair"
	"repro/internal/propagation"
)

// LoopState names the externally visible states of a Loop.
type LoopState string

// Loop states. A loop is born Awaiting (or Done, when the stop criterion
// already holds on the prepared graph) and every transition is driven by
// Deliver: once the open batch drains, the machine advances through the
// batch tail (hybrid inference, re-estimation, budget check) and either
// publishes the next batch or finishes.
const (
	// LoopAwaiting means a batch of questions is published and at least
	// one answer is still outstanding.
	LoopAwaiting LoopState = "awaiting_answers"
	// LoopDone means the stop criterion held: the result is final.
	LoopDone LoopState = "done"
)

// Errors returned by Loop.Deliver.
var (
	// ErrLoopDone is returned when answers arrive after the loop finished.
	ErrLoopDone = errors.New("core: loop is done")
	// ErrUnknownQuestion is returned for a pair outside the open batch.
	ErrUnknownQuestion = errors.New("core: not an open question")
	// ErrDuplicateAnswer is returned when an open question is answered twice.
	ErrDuplicateAnswer = errors.New("core: question already answered")
)

// Answer is one answered question: the pair and the worker labels it
// received. Loop.History records them in application order, which replays
// a loop deterministically (the snapshot format of internal/session).
type Answer struct {
	Pair   pair.Pair
	Labels []crowd.Label
}

// Loop is the human–machine loop of Run inverted into an explicit state
// machine, so callers that cannot block on an Asker — crowd platforms
// posting HITs, HTTP clients, concurrent jobs — can pull question batches
// and push answers as they arrive, in any order.
//
// The machine preserves Run's semantics exactly: a batch of µ questions is
// selected against the engine snapshot taken at the loop top; answers are
// buffered and applied in the batch's selection order (the order Run asked
// them), so out-of-order delivery cannot change a single resolved pair;
// when the batch drains the loop tail runs (hybrid inference,
// re-estimation, budget check) and the next batch is selected, until the
// paper's stop criterion halts the loop and the isolated-pair classifier
// finalizes the result.
//
// A Loop is not safe for concurrent use; internal/session.Session adds the
// locking, stable question IDs and snapshot/restore on top.
type Loop struct {
	p      *Prepared
	res    *Result
	priors map[pair.Pair]float64
	hard   pair.Set
	eng    *propagation.Engine

	open    []pair.Pair                 // published batch, in selection order
	next    int                         // index into open of the next answer to apply
	buf     map[pair.Pair][]crowd.Label // out-of-order answers awaiting their turn
	history []Answer                    // applied answers, in application order
	done    bool
}

// NewLoop starts the human–machine loop and advances it to its first
// question batch (or directly to LoopDone when nothing can be asked).
// Like Run, it mutates the Prepared's probabilistic graph; prepare one
// Prepared per loop.
func (p *Prepared) NewLoop() *Loop {
	l := &Loop{
		p: p,
		res: &Result{
			Matches:           pair.Set{},
			Confirmed:         pair.Set{},
			Propagated:        pair.Set{},
			IsolatedPredicted: pair.Set{},
			NonMatches:        pair.Set{},
		},
		priors: make(map[pair.Pair]float64, len(p.Priors)),
		hard:   pair.Set{},
	}
	for k, v := range p.Priors {
		l.priors[k] = v
	}
	l.eng = propagation.NewEngine(p.Prob, p.Cfg.Tau)
	l.openBatch()
	return l
}

// State returns the loop's current state.
func (l *Loop) State() LoopState {
	if l.done {
		return LoopDone
	}
	return LoopAwaiting
}

// Done reports whether the loop has finished and the result is final.
func (l *Loop) Done() bool { return l.done }

// Result returns the loop's result. While the loop is awaiting answers the
// sets are live views of the work in progress; once Done they are final.
func (l *Loop) Result() *Result { return l.res }

// Batch returns the open questions still awaiting an answer, in selection
// order. It is empty exactly when the loop is done: the machine never
// stalls with an open batch fully buffered, because a buffered answer
// out of order implies an earlier question is still unanswered.
func (l *Loop) Batch() []pair.Pair {
	out := make([]pair.Pair, 0, len(l.open)-l.next)
	for _, q := range l.open[l.next:] {
		if _, buffered := l.buf[q]; !buffered {
			out = append(out, q)
		}
	}
	return out
}

// History returns the applied answers in application order. Replaying them
// through a fresh Loop via Deliver reproduces this loop's state exactly;
// the slice is the loop's own and must not be mutated.
func (l *Loop) History() []Answer { return l.history }

// Buffered returns the answers delivered out of order and not yet applied,
// sorted by pair for determinism.
func (l *Loop) Buffered() []Answer {
	out := make([]Answer, 0, len(l.buf))
	for q, labels := range l.buf {
		out = append(out, Answer{Pair: q, Labels: labels})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pair.Less(out[j].Pair) })
	return out
}

// Deliver accepts the worker labels for one open question, in any order.
// Answers are applied strictly in the batch's selection order; an answer
// arriving early is buffered until its predecessors arrive. When the
// delivery drains the batch, the machine advances: loop tail, next batch
// selection, and — when the stop criterion holds — finalization.
func (l *Loop) Deliver(q pair.Pair, labels []crowd.Label) error {
	if l.done {
		return fmt.Errorf("%w (extra answer for %v)", ErrLoopDone, q)
	}
	openQ := false
	for _, o := range l.open[l.next:] {
		if o == q {
			openQ = true
			break
		}
	}
	if !openQ {
		return fmt.Errorf("%w: %v", ErrUnknownQuestion, q)
	}
	if _, dup := l.buf[q]; dup {
		return fmt.Errorf("%w: %v", ErrDuplicateAnswer, q)
	}
	l.buf[q] = labels
	l.drain()
	return nil
}

// drain applies the longest in-order prefix of buffered answers and, when
// the batch is exhausted, runs the loop tail and advances.
func (l *Loop) drain() {
	cfg := l.p.Cfg
	for l.next < len(l.open) {
		q := l.open[l.next]
		labels, ok := l.buf[q]
		if !ok {
			return // an earlier question is still outstanding
		}
		delete(l.buf, q)
		l.next++
		l.apply(q, labels)
		if cfg.Budget > 0 && l.res.Questions >= cfg.Budget {
			// Run abandons the rest of the batch when the budget fills.
			// Since µ is clamped to the remaining budget at selection time
			// this is only ever the batch's last question, but replicate
			// the abandonment so the machines cannot diverge.
			l.open = l.open[:l.next]
			clear(l.buf)
			break
		}
	}
	l.batchTail()
}

// apply resolves one answered question against the current snapshot — the
// batch body of Run.
func (l *Loop) apply(q pair.Pair, labels []crowd.Label) {
	cfg := l.p.Cfg
	l.history = append(l.history, Answer{Pair: q, Labels: labels})
	l.res.Questions++
	inf := crowd.Infer(l.priors[q], labels, cfg.Thresholds)
	switch inf.Verdict {
	case crowd.IsMatch:
		l.p.confirmMatch(q, l.res, l.eng)
	case crowd.IsNonMatch:
		l.res.NonMatches.Add(q)
		l.eng.DetachVertex(q)
	default:
		// Hard question: damp its prior so its benefit shrinks.
		l.priors[q] = inf.Posterior
		l.hard.Add(q)
	}
	if cfg.Progress != nil {
		cfg.Progress(l.res.Questions, l.res.Matches)
	}
}

// batchTail runs the work Run performs after a batch of µ answers: hybrid
// monotone inference, re-estimation and the budget stop, then advances to
// the next batch.
func (l *Loop) batchTail() {
	cfg := l.p.Cfg
	if cfg.Hybrid {
		l.p.monotoneInference(l.res, l.eng)
	}
	if cfg.Reestimate && l.res.Confirmed.Len() > 0 {
		l.p.reestimate(l.res)
		l.eng.Reset(l.p.Prob)
	}
	if cfg.Budget > 0 && l.res.Questions >= cfg.Budget {
		l.finish()
		return
	}
	l.openBatch()
}

// openBatch is the loop top of Run: sync the propagation engine, assemble
// candidates, check the stop criterion, and select + pad the next µ
// questions. It either publishes a batch or finishes the loop.
func (l *Loop) openBatch() {
	cfg := l.p.Cfg
	if cfg.MaxLoops > 0 && l.res.Loops >= cfg.MaxLoops {
		l.finish()
		return
	}
	if cfg.debugFullResync {
		// Test hook: degrade to the historical recompute-everything policy
		// so equivalence tests can diff the results.
		l.eng.InvalidateAll()
	}
	l.eng.Sync()
	cands, anyPropagation := l.p.questionCandidates(l.res, l.priors, l.eng, l.hard)
	if len(cands) == 0 || (!anyPropagation && !cfg.ExhaustBudget) {
		l.finish()
		return
	}
	mu := cfg.Mu
	if cfg.Budget > 0 && l.res.Questions+mu > cfg.Budget {
		mu = cfg.Budget - l.res.Questions
		if mu <= 0 {
			l.finish()
			return
		}
	}
	chosen := cfg.Strategy.Select(cands, mu)
	if len(chosen) < mu {
		// Remp always issues µ questions per human-machine loop (§VIII,
		// Table VII): pad the batch with the highest-prior unchosen
		// candidates once marginal benefits hit zero.
		chosen = padBatch(cands, chosen, mu)
	}
	if len(chosen) == 0 {
		l.finish()
		return
	}
	l.res.Loops++
	l.open = make([]pair.Pair, len(chosen))
	for i, ci := range chosen {
		l.open[i] = cands[ci].Pair
	}
	l.next = 0
	l.buf = make(map[pair.Pair][]crowd.Label, len(l.open))
}

// finish runs the finalization Run performs after the loop breaks, records
// the engine's Dijkstra count and releases the engine's ball maps.
func (l *Loop) finish() {
	l.open = nil
	l.buf = nil
	l.next = 0
	l.p.runRecomputes = l.eng.Recomputes()
	l.eng = nil
	if l.p.Cfg.ClassifyIsolated {
		l.p.classifyIsolated(l.res)
	}
	l.done = true
}
