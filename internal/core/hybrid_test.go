package core

import (
	"testing"

	"repro/internal/pair"
)

func TestHybridReducesQuestionsOrKeepsF1(t *testing.T) {
	k1, k2, gold := movieWorld(6, 41)

	run := func(hybrid bool) (*Result, pair.PRF) {
		cfg := DefaultConfig()
		cfg.Hybrid = hybrid
		cfg.Mu = 5
		p := Prepare(k1, k2, cfg)
		res := p.Run(NewOracleAsker(gold.IsMatch))
		return res, pair.Evaluate(res.Matches, gold)
	}
	base, basePRF := run(false)
	hyb, hybPRF := run(true)
	t.Logf("plain: F1=%.3f Q=%d | hybrid: F1=%.3f Q=%d",
		basePRF.F1, base.Questions, hybPRF.F1, hyb.Questions)

	// The hybrid must not be strictly worse on both axes.
	if hybPRF.F1 < basePRF.F1-0.05 && hyb.Questions >= base.Questions {
		t.Errorf("hybrid is dominated: F1 %v vs %v, Q %d vs %d",
			hybPRF.F1, basePRF.F1, hyb.Questions, base.Questions)
	}
	if hybPRF.F1 < 0.75 {
		t.Errorf("hybrid F1 = %v, unreasonably low", hybPRF.F1)
	}
}

func TestMonotoneInferenceDirections(t *testing.T) {
	k1, k2, gold := movieWorld(4, 43)
	cfg := DefaultConfig()
	cfg.Hybrid = true
	p := Prepare(k1, k2, cfg)
	res := p.Run(NewOracleAsker(gold.IsMatch))

	// Every monotone-inferred (propagated) match must respect 1:1.
	seen1 := map[int32]bool{}
	for m := range res.Matches {
		if seen1[int32(m.U1)] {
			t.Fatalf("1:1 violated on %v", m)
		}
		seen1[int32(m.U1)] = true
	}
	// Inference must never mark a pair both match and non-match.
	for m := range res.Matches {
		if res.NonMatches.Has(m) {
			t.Fatalf("%v is both match and non-match", m)
		}
	}
	if prf := pair.Evaluate(res.Matches, gold); prf.Precision < 0.9 {
		t.Errorf("hybrid precision = %v", prf.Precision)
	}
}
