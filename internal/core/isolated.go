package core

import (
	"fmt"
	"sort"

	"repro/internal/forest"
	"repro/internal/kb"
	"repro/internal/pair"
)

// classifyIsolated implements §VII-B: isolated entity pairs (no incident
// ER-graph edges) cannot be reached by propagation, so instead of polling
// workers one pair at a time, a random forest is trained per
// attribute-signature neighborhood on the labels gathered so far. For an
// isolated pair p, the neighborhood N_p contains the retained pairs whose
// shared-attribute sets have Jaccard ≥ ψ with p's; resolved matches in N_p
// are positives and — because propagation only ever confirms matches —
// unresolved pairs in N_p are treated as negatives to balance the classes.
func (p *Prepared) classifyIsolated(res *Result) {
	isolated := p.Graph.Isolated()
	if len(isolated) == 0 {
		return
	}

	// Precompute shared-attribute signatures for all retained pairs.
	sig := make(map[pair.Pair][]int, len(p.Retained))
	for _, q := range p.Retained {
		sig[q] = p.Builder.SharedAttrMatches(q)
	}

	type modelKey string
	models := map[modelKey]*forest.Forest{}
	var global *forest.Forest
	globalBuilt := false

	// Respect the 1:1 constraint among classifier predictions: process
	// isolated pairs in descending forest confidence per entity.
	type prediction struct {
		p    pair.Pair
		prob float64
	}
	var preds []prediction

	for _, iso := range isolated {
		if res.Matches.Has(iso) || res.NonMatches.Has(iso) {
			continue
		}
		key := modelKey(fmt.Sprint(sig[iso]))
		model, ok := models[key]
		if !ok {
			model = p.trainNeighborhoodForest(res, sig, sig[iso])
			models[key] = model
		}
		if model == nil {
			// Too little same-signature training data (e.g. a type whose
			// matches are all isolated): fall back to a single forest
			// trained on every resolved pair. This keeps recall on
			// datasets like D-Y where whole types are disconnected; see
			// DESIGN.md §4.
			if !globalBuilt {
				global = p.trainNeighborhoodForest(res, sig, nil)
				globalBuilt = true
			}
			model = global
		}
		if model == nil {
			continue
		}
		if prob := model.Prob(p.isolatedFeatures(iso)); prob >= 0.5 {
			preds = append(preds, prediction{p: iso, prob: prob})
		}
	}

	sort.Slice(preds, func(i, j int) bool {
		if preds[i].prob != preds[j].prob {
			return preds[i].prob > preds[j].prob
		}
		return preds[i].p.Less(preds[j].p)
	})
	used1 := map[kb.EntityID]bool{}
	used2 := map[kb.EntityID]bool{}
	for _, pr := range preds {
		if used1[pr.p.U1] || used2[pr.p.U2] {
			continue
		}
		used1[pr.p.U1] = true
		used2[pr.p.U2] = true
		res.IsolatedPredicted.Add(pr.p)
		res.Matches.Add(pr.p)
	}
}

// trainNeighborhoodForest builds the training set N_p for one attribute
// signature and fits a forest; it returns nil when either class is too
// thin. A nil target disables the ψ filter (the global fallback model).
// Negatives are subsampled to class parity: the paper uses unresolved
// pairs as non-matches explicitly "to balance the proportions of
// different labels" (§VII-B).
func (p *Prepared) trainNeighborhoodForest(res *Result, sig map[pair.Pair][]int, target []int) *forest.Forest {
	var posX, negX [][]float64
	for _, q := range p.Retained {
		if target != nil && jaccardInts(sig[q], target) < p.Cfg.Psi {
			continue
		}
		switch {
		case res.Matches.Has(q):
			posX = append(posX, p.isolatedFeatures(q))
		case res.NonMatches.Has(q):
			negX = append(negX, p.isolatedFeatures(q))
		default:
			// Unresolved pairs act as negatives — but only the
			// non-isolated ones, which propagation had a chance to
			// confirm.
			if len(p.Graph.Out(q)) > 0 || len(p.Graph.In(q)) > 0 {
				negX = append(negX, p.isolatedFeatures(q))
			}
		}
	}
	// A usable neighborhood model needs a handful of examples on each
	// side; thinner ones defer to the global fallback.
	if len(posX) < 5 || len(negX) < 5 {
		return nil
	}
	// Deterministic subsampling of the majority class to parity.
	if len(negX) > len(posX) {
		step := float64(len(negX)) / float64(len(posX))
		sampled := make([][]float64, 0, len(posX))
		for i := 0; i < len(posX); i++ {
			sampled = append(sampled, negX[int(float64(i)*step)])
		}
		negX = sampled
	} else if len(posX) > len(negX) {
		step := float64(len(posX)) / float64(len(negX))
		sampled := make([][]float64, 0, len(negX))
		for i := 0; i < len(negX); i++ {
			sampled = append(sampled, posX[int(float64(i)*step)])
		}
		posX = sampled
	}
	X := append(append([][]float64{}, posX...), negX...)
	y := make([]bool, len(X))
	for i := range posX {
		y[i] = true
	}
	return forest.Train(X, y, forest.Options{NumTrees: 100, Seed: p.Cfg.Seed})
}

// isolatedFeatures is the classifier's feature vector for a pair: the
// similarity vector over attribute matches plus the label-similarity
// prior (the same Pr[m_p] the rest of the pipeline consumes), which adds a
// continuous signal where the simL components saturate to 0/1.
func (p *Prepared) isolatedFeatures(q pair.Pair) []float64 {
	vec := p.Pruner.VectorOf(q)
	out := make([]float64, len(vec)+1)
	copy(out, vec)
	out[len(vec)] = p.Priors[q]
	return out
}

// jaccardInts is the Jaccard coefficient over two integer sets (attribute
// match indexes); both empty counts as similarity 1 per the ψ-neighborhood
// definition (identical signatures).
func jaccardInts(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	seen := make(map[int]uint8, len(a)+len(b))
	for _, x := range a {
		seen[x] |= 1
	}
	for _, x := range b {
		seen[x] |= 2
	}
	inter := 0
	for _, m := range seen {
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(len(seen))
}
