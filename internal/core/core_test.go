package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/crowd"
	"repro/internal/pair"
	"repro/internal/selection"

	"repro/internal/kb"
)

// movieWorld builds a two-KB movie domain with n directors, each directing
// two movies, each movie having two actors, actors born in cities. Labels
// mostly agree across KBs with slight perturbations; a fraction of person
// entities is isolated (no relationships).
func movieWorld(n int, seed int64) (*kb.KB, *kb.KB, *pair.Gold) {
	rng := rand.New(rand.NewSource(seed))
	k1 := kb.New("kb1")
	k2 := kb.New("kb2")
	dir1, dir2 := k1.AddRel("directedBy"), k2.AddRel("director")
	act1, act2 := k1.AddRel("actedIn"), k2.AddRel("starring")
	name1, name2 := k1.AddAttr("name"), k2.AddAttr("label")
	year1, year2 := k1.AddAttr("year"), k2.AddAttr("released")

	var gold []pair.Pair
	addPair := func(base, typ string, perturb bool) (kb.EntityID, kb.EntityID) {
		u1 := k1.AddEntity("a:" + base)
		u2 := k2.AddEntity("b:" + base)
		l1 := base
		l2 := base
		if perturb && rng.Intn(3) == 0 {
			l2 = base + " jr"
		}
		k1.SetLabel(u1, l1)
		k2.SetLabel(u2, l2)
		k1.SetType(u1, typ)
		k2.SetType(u2, typ)
		k1.AddAttrTriple(u1, name1, l1)
		k2.AddAttrTriple(u2, name2, l2)
		gold = append(gold, pair.Pair{U1: u1, U2: u2})
		return u1, u2
	}

	for i := 0; i < n; i++ {
		d1, d2 := addPair(fmt.Sprintf("director %d", i), "person", false)
		for m := 0; m < 2; m++ {
			mv1, mv2 := addPair(fmt.Sprintf("movie %d %d", i, m), "movie", true)
			yr := fmt.Sprintf("%d", 1950+rng.Intn(60))
			k1.AddAttrTriple(mv1, year1, yr)
			k2.AddAttrTriple(mv2, year2, yr)
			k1.AddRelTriple(mv1, dir1, d1)
			k2.AddRelTriple(mv2, dir2, d2)
			for a := 0; a < 2; a++ {
				ac1, ac2 := addPair(fmt.Sprintf("actor %d %d %d", i, m, a), "person", true)
				k1.AddRelTriple(ac1, act1, mv1)
				k2.AddRelTriple(ac2, act2, mv2)
			}
		}
		// One isolated pair per director cluster.
		addPair(fmt.Sprintf("writer %d", i), "person", false)
	}
	return k1, k2, pair.NewGold(gold)
}

func TestPrepareStages(t *testing.T) {
	k1, k2, gold := movieWorld(5, 1)
	p := Prepare(k1, k2, DefaultConfig())

	if len(p.Blocking.Candidates) == 0 {
		t.Fatal("no candidates generated")
	}
	if len(p.Blocking.Initial) == 0 {
		t.Fatal("no initial matches")
	}
	if len(p.AttrMatches) == 0 {
		t.Fatal("no attribute matches")
	}
	// name↔label must be among the attribute matches.
	found := false
	for _, m := range p.AttrMatches {
		if k1.AttrName(m.A1) == "name" && k2.AttrName(m.A2) == "label" {
			found = true
		}
	}
	if !found {
		t.Errorf("name↔label not matched: %v", p.AttrMatches)
	}
	if len(p.Retained) == 0 || len(p.Retained) > len(p.Blocking.Candidates) {
		t.Fatalf("retained %d of %d", len(p.Retained), len(p.Blocking.Candidates))
	}
	// Pruning must keep pair completeness high.
	pc := pair.PairCompleteness(pair.NewSet(p.Retained...), gold)
	if pc < 0.9 {
		t.Errorf("pair completeness after pruning = %v", pc)
	}
	if p.Graph.NumVertices() != len(p.Retained) {
		t.Error("graph vertex count mismatch")
	}
	if p.Graph.NumEdges() == 0 {
		t.Error("graph has no edges")
	}
	if len(p.Consistency) == 0 {
		t.Error("no consistency estimates")
	}
}

func TestRunWithOracle(t *testing.T) {
	k1, k2, gold := movieWorld(6, 2)
	cfg := DefaultConfig()
	cfg.Mu = 5
	p := Prepare(k1, k2, cfg)
	asker := NewOracleAsker(gold.IsMatch)
	res := p.Run(asker)

	m := pair.Evaluate(res.Matches, gold)
	if m.F1 < 0.8 {
		t.Errorf("oracle-labeled run F1 = %v, want ≥ 0.8 (P=%v R=%v, Q=%d)",
			m.F1, m.Precision, m.Recall, res.Questions)
	}
	if res.Questions == 0 {
		t.Error("no questions asked")
	}
	// Propagation must do real work: far fewer questions than matches.
	if res.Questions >= gold.Size() {
		t.Errorf("asked %d questions for %d matches — no inference happening",
			res.Questions, gold.Size())
	}
	if res.Loops == 0 {
		t.Error("no loops recorded")
	}
}

func TestRunWithNoisyWorkers(t *testing.T) {
	k1, k2, gold := movieWorld(6, 3)
	cfg := DefaultConfig()
	p := Prepare(k1, k2, cfg)
	platform := crowd.NewPlatform(gold.IsMatch, crowd.Config{
		NumWorkers: 30, WorkersPerQuestion: 5, ErrorRate: 0.15, Seed: 4,
	})
	res := p.Run(platform)
	m := pair.Evaluate(res.Matches, gold)
	if m.F1 < 0.7 {
		t.Errorf("noisy run F1 = %v (P=%v R=%v)", m.F1, m.Precision, m.Recall)
	}
}

func TestRunBudget(t *testing.T) {
	k1, k2, gold := movieWorld(8, 5)
	cfg := DefaultConfig()
	cfg.Budget = 3
	cfg.Mu = 2
	p := Prepare(k1, k2, cfg)
	res := p.Run(NewOracleAsker(gold.IsMatch))
	if res.Questions > 3 {
		t.Errorf("budget exceeded: %d questions", res.Questions)
	}
}

func TestRunMaxLoops(t *testing.T) {
	k1, k2, gold := movieWorld(8, 6)
	cfg := DefaultConfig()
	cfg.MaxLoops = 2
	cfg.Mu = 1
	p := Prepare(k1, k2, cfg)
	res := p.Run(NewOracleAsker(gold.IsMatch))
	if res.Loops > 2 {
		t.Errorf("loops exceeded: %d", res.Loops)
	}
}

func TestIsolatedClassifierAddsMatches(t *testing.T) {
	k1, k2, gold := movieWorld(10, 7)
	cfg := DefaultConfig()
	p := Prepare(k1, k2, cfg)
	res := p.Run(NewOracleAsker(gold.IsMatch))

	cfg2 := DefaultConfig()
	cfg2.ClassifyIsolated = false
	p2 := Prepare(k1, k2, cfg2)
	res2 := p2.Run(NewOracleAsker(gold.IsMatch))

	if res.IsolatedPredicted.Len() == 0 {
		t.Log("warning: classifier predicted nothing (may be legitimate on this fixture)")
	}
	mWith := pair.Evaluate(res.Matches, gold)
	mWithout := pair.Evaluate(res2.Matches, gold)
	if mWith.Recall < mWithout.Recall {
		t.Errorf("classifier reduced recall: %v < %v", mWith.Recall, mWithout.Recall)
	}
}

func TestPropagateFromSeeds(t *testing.T) {
	k1, k2, gold := movieWorld(8, 8)
	p := Prepare(k1, k2, DefaultConfig())
	all := gold.Matches()
	rng := rand.New(rand.NewSource(9))
	perm := rng.Perm(len(all))

	var prevF1 float64
	for _, portion := range []float64{0.2, 0.5, 0.8} {
		nSeeds := int(portion * float64(len(all)))
		seeds := make([]pair.Pair, 0, nSeeds)
		for _, i := range perm[:nSeeds] {
			seeds = append(seeds, all[i])
		}
		matches := p.PropagateFromSeeds(seeds)
		m := pair.Evaluate(matches, gold)
		if m.F1+0.05 < prevF1 {
			t.Errorf("portion %v: F1 %v dropped well below previous %v", portion, m.F1, prevF1)
		}
		prevF1 = m.F1
		// Seeds must always be included.
		for _, s := range seeds {
			if !matches.Has(s) {
				t.Fatalf("seed %v missing from propagated matches", s)
			}
		}
	}
	if prevF1 < 0.8 {
		t.Errorf("80%% seeds should push F1 ≥ 0.8, got %v", prevF1)
	}
}

func TestStrategiesDiffer(t *testing.T) {
	// MaxPr should need more questions than greedy benefit for the same
	// dataset, or produce no better F1 with equal questions.
	k1, k2, gold := movieWorld(6, 10)

	run := func(s selection.Strategy) (int, float64) {
		cfg := DefaultConfig()
		cfg.Strategy = s
		cfg.Mu = 1
		cfg.ClassifyIsolated = false
		p := Prepare(k1, k2, cfg)
		res := p.Run(NewOracleAsker(gold.IsMatch))
		return res.Questions, pair.Evaluate(res.Matches, gold).F1
	}
	qG, f1G := run(selection.Greedy{})
	qP, f1P := run(selection.MaxPr{})
	t.Logf("greedy: %d questions, F1 %.3f; maxpr: %d questions, F1 %.3f", qG, f1G, qP, f1P)
	if f1G == 0 {
		t.Error("greedy found nothing")
	}
	_ = qP
	_ = f1P
}

func TestOracleAskerCountsDistinct(t *testing.T) {
	o := NewOracleAsker(func(pair.Pair) bool { return true })
	q := pair.Pair{U1: 1, U2: 1}
	o.Ask(q)
	o.Ask(q)
	o.Ask(pair.Pair{U1: 2, U2: 2})
	if o.NumQuestions() != 2 {
		t.Errorf("NumQuestions = %d, want 2", o.NumQuestions())
	}
}
