package core

import (
	"repro/internal/attrmatch"
	"repro/internal/blocking"
	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pair"
	"repro/internal/partition"
	"repro/internal/propagation"
	"repro/internal/simvec"
)

// Prepared holds every artifact of stage 1 (ER graph construction) plus
// the fitted consistency model and probabilistic ER graph, ready for the
// human–machine loop. All fields are read-only after Prepare.
type Prepared struct {
	K1, K2 *kb.KB
	Cfg    Config

	Blocking    *blocking.Result
	AttrMatches []attrmatch.Match
	Builder     *simvec.Builder
	Pruner      *simvec.Pruner
	Retained    []pair.Pair
	Graph       *ergraph.Graph
	Consistency map[ergraph.RelPair]consistency.Estimate
	// Prob is the monolithic probabilistic ER graph. It is populated only
	// by single-shard pipelines (the default for laptop-scale graphs);
	// sharded pipelines keep one probabilistic subgraph per shard instead,
	// which bounds the peak size of any one engine's ball maps.
	Prob   *propagation.ProbGraph
	Priors map[pair.Pair]float64

	// Part is the shard assignment of the candidate-pair graph (connected
	// components over relational edges plus entity sharing, binned into
	// weight-balanced shards); nil when the pipeline is single-shard.
	Part *partition.Partition
	// pipes holds the per-shard pipelines the loop runs concurrently; a
	// single-shard pipeline has exactly one pipe wrapping p.Graph/p.Prob.
	pipes []*shardPipe

	// byEntity1/byEntity2 index graph vertices by their K1/K2 entity, used
	// to resolve same-entity competitors when a match is confirmed (the
	// 1:1 entity constraint that keeps non-match chains from being polled).
	// Competitors may live in other shards; the loop routes their
	// detachment on the serial answer-application path.
	byEntity1 map[kb.EntityID][]pair.Pair
	byEntity2 map[kb.EntityID][]pair.Pair

	// runRecomputes is the number of single-source Dijkstra runs the most
	// recent Run performed, kept for diagnostics and the tests that assert
	// only dirty sources are recomputed. The engines themselves are not
	// retained past the run, so their ball maps can be collected.
	runRecomputes int64
}

// Prepare runs ER graph construction end to end: candidate generation,
// attribute matching over initial matches, similarity-vector assembly,
// partial-order pruning (Algorithm 1), ER graph construction, relationship
// consistency fitting and neighbor propagation (the probabilistic graph).
func Prepare(k1, k2 *kb.KB, cfg Config) *Prepared {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		// Internal misuse: the public remp boundary returns this error to
		// the caller before ever reaching Prepare.
		panic(err)
	}
	t0 := cfg.Obs.StageStart()
	defer cfg.Obs.StageEnd(obs.StagePrepare, t0)
	p := &Prepared{K1: k1, K2: k2, Cfg: cfg}

	tb := cfg.Obs.StageStart()
	p.Blocking = blocking.Generate(k1, k2, blocking.Options{
		Threshold: cfg.LabelSimThreshold,
		Runner:    cfg.scheduler(),
	})
	cfg.Obs.StageEnd(obs.StageBlock, tb)

	ts := cfg.Obs.StageStart()
	amOpts := attrmatch.DefaultOptions()
	amOpts.LiteralThreshold = cfg.LiteralThreshold
	amOpts.Runner = cfg.scheduler()
	p.AttrMatches = attrmatch.FindMatches(k1, k2, p.Blocking.Initial, amOpts)

	p.Builder = simvec.NewBuilder(k1, k2, p.AttrMatches, cfg.LiteralThreshold)
	p.Builder.SetRunner(cfg.scheduler())
	cands := make([]pair.Pair, len(p.Blocking.Candidates))
	for i, c := range p.Blocking.Candidates {
		cands[i] = c.Pair
	}
	p.Pruner = simvec.NewPruner(cands, p.Builder.All(cands))
	p.Retained = p.Pruner.Prune(cands, cfg.K)
	cfg.Obs.StageEnd(obs.StageSimilarity, ts)

	p.Graph = ergraph.Build(k1, k2, p.Retained)
	p.Priors = make(map[pair.Pair]float64, len(p.Retained))
	for _, q := range p.Retained {
		p.Priors[q] = p.Blocking.Priors[q]
	}

	p.byEntity1 = make(map[kb.EntityID][]pair.Pair)
	p.byEntity2 = make(map[kb.EntityID][]pair.Pair)
	for _, v := range p.Graph.Vertices() {
		p.byEntity1[v.U1] = append(p.byEntity1[v.U1], v)
		p.byEntity2[v.U2] = append(p.byEntity2[v.U2], v)
	}

	p.Consistency = p.fitConsistency(p.Blocking.Initial)
	p.initShards()
	return p
}

// PrepareOnRetained builds a pipeline over an explicit retained pair set,
// reusing a previously computed blocking result. It is used by the
// Figure 6 scalability sweep, which measures Algorithms 2–3 on fractions
// of Mrd.
func PrepareOnRetained(k1, k2 *kb.KB, cfg Config, retained []pair.Pair, blk *blocking.Result) *Prepared {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t0 := cfg.Obs.StageStart()
	defer cfg.Obs.StageEnd(obs.StagePrepare, t0)
	p := &Prepared{K1: k1, K2: k2, Cfg: cfg}
	p.Blocking = blk

	ts := cfg.Obs.StageStart()
	amOpts := attrmatch.DefaultOptions()
	amOpts.LiteralThreshold = cfg.LiteralThreshold
	amOpts.Runner = cfg.scheduler()
	p.AttrMatches = attrmatch.FindMatches(k1, k2, blk.Initial, amOpts)
	p.Builder = simvec.NewBuilder(k1, k2, p.AttrMatches, cfg.LiteralThreshold)
	p.Builder.SetRunner(cfg.scheduler())
	p.Retained = append([]pair.Pair(nil), retained...)
	p.Pruner = simvec.NewPruner(p.Retained, p.Builder.All(p.Retained))
	cfg.Obs.StageEnd(obs.StageSimilarity, ts)

	p.Graph = ergraph.Build(k1, k2, p.Retained)
	p.Priors = make(map[pair.Pair]float64, len(p.Retained))
	for _, q := range p.Retained {
		p.Priors[q] = blk.Priors[q]
	}
	p.byEntity1 = make(map[kb.EntityID][]pair.Pair)
	p.byEntity2 = make(map[kb.EntityID][]pair.Pair)
	for _, v := range p.Graph.Vertices() {
		p.byEntity1[v.U1] = append(p.byEntity1[v.U1], v)
		p.byEntity2[v.U2] = append(p.byEntity2[v.U2], v)
	}
	p.Consistency = p.fitConsistency(blk.Initial)
	p.initShards()
	return p
}

// fitConsistency estimates (ε1, ε2) for every edge label from the value
// distribution over the given matches (§V-A). KnownL counts, per match,
// the values whose counterpart is itself in the match set — the observed
// lower bound for the latent variable. Labels are fitted independently,
// so the fits fan out across the pipeline scheduler.
func (p *Prepared) fitConsistency(seeds []pair.Pair) map[ergraph.RelPair]consistency.Estimate {
	seedSet := pair.NewSet(seeds...)
	labels := p.Graph.Labels()
	ests := make([]consistency.Estimate, len(labels))
	p.Cfg.scheduler().ForEach(len(labels), func(i int) {
		obs := p.consistencyObservations(labels[i], seeds, seedSet)
		ests[i] = consistency.Fit(obs, consistency.DefaultOptions())
	})
	out := make(map[ergraph.RelPair]consistency.Estimate, len(labels))
	for i, label := range labels {
		out[label] = ests[i]
	}
	return out
}

// refitConsistency recomputes estimates for the touched labels over the
// full current seed list — producing exactly what a full refit would for
// them — and carries the rest over from old, whose observations are
// unchanged by construction of the touched set. touched == nil recomputes
// every label.
func (p *Prepared) refitConsistency(seeds []pair.Pair, old map[ergraph.RelPair]consistency.Estimate, touched map[ergraph.RelPair]bool) map[ergraph.RelPair]consistency.Estimate {
	if touched == nil {
		return p.fitConsistency(seeds)
	}
	labels := p.Graph.Labels()
	out := make(map[ergraph.RelPair]consistency.Estimate, len(labels))
	work := make([]ergraph.RelPair, 0, len(touched))
	for _, label := range labels {
		if touched[label] {
			work = append(work, label)
		} else {
			out[label] = old[label]
		}
	}
	seedSet := pair.NewSet(seeds...)
	ests := make([]consistency.Estimate, len(work))
	p.Cfg.scheduler().ForEach(len(work), func(i int) {
		obs := p.consistencyObservations(work[i], seeds, seedSet)
		ests[i] = consistency.Fit(obs, consistency.DefaultOptions())
	})
	for i, label := range work {
		out[label] = ests[i]
	}
	return out
}

// consistencyObservations gathers (|N1|, |N2|, knownL) triples for one
// edge label over the seed matches, following the label's direction.
func (p *Prepared) consistencyObservations(label ergraph.RelPair, seeds []pair.Pair, seedSet pair.Set) []consistency.Observation {
	var obs []consistency.Observation
	for _, m := range seeds {
		var n1, n2 []kb.EntityID
		if label.Inverse {
			n1 = p.K1.In(m.U1, label.R1)
			n2 = p.K2.In(m.U2, label.R2)
		} else {
			n1 = p.K1.Out(m.U1, label.R1)
			n2 = p.K2.Out(m.U2, label.R2)
		}
		if len(n1) == 0 && len(n2) == 0 {
			continue
		}
		known := 0
		for _, v1 := range n1 {
			for _, v2 := range n2 {
				if seedSet.Has(pair.Pair{U1: v1, U2: v2}) {
					known++
					break
				}
			}
		}
		obs = append(obs, consistency.Observation{N1: len(n1), N2: len(n2), KnownL: known})
	}
	return obs
}

// Unresolved returns the graph vertices not yet resolved by the given
// match / non-match sets, in deterministic order.
func (p *Prepared) Unresolved(matches, nonMatches pair.Set) []pair.Pair {
	var out []pair.Pair
	for _, v := range p.Graph.Vertices() {
		if !matches.Has(v) && !nonMatches.Has(v) {
			out = append(out, v)
		}
	}
	return out
}
