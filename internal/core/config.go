// Package core orchestrates the full Remp pipeline (§III-B): ER graph
// construction (blocking, attribute matching, partial-order pruning),
// relational match propagation, multiple questions selection and
// error-tolerant truth inference, iterated in human–machine loops until no
// unresolved pair can be inferred, with a random-forest fallback for
// isolated pairs.
package core

import (
	"fmt"
	"math"

	"repro/internal/crowd"
	"repro/internal/obs"
	"repro/internal/pair"
	"repro/internal/selection"
)

// Config carries every tunable of the pipeline. The zero value is replaced
// by the paper's uniform settings: k = 4, τ = 0.9, µ = 10, label-similarity
// threshold 0.3, simL literal threshold 0.9, ψ = 0.9.
type Config struct {
	// K is the k-nearest-neighbor bound of partial-order pruning.
	K int
	// Tau is the precision threshold τ for inferred matches.
	Tau float64
	// Mu is the number of questions per human-machine loop.
	Mu int
	// LabelSimThreshold prunes candidate pairs below this label Jaccard.
	LabelSimThreshold float64
	// LiteralThreshold is simL's internal literal threshold.
	LiteralThreshold float64
	// Psi is the attribute-set Jaccard threshold ψ of the isolated-pair
	// classifier neighborhood.
	Psi float64
	// Budget caps the number of questions; 0 means unlimited.
	Budget int
	// MaxLoops caps human-machine loops; 0 means unlimited.
	MaxLoops int
	// Thresholds are the truth-inference accept/reject posteriors.
	Thresholds crowd.Thresholds
	// Strategy selects questions; nil means the paper's greedy benefit
	// maximization (Algorithm 3).
	Strategy selection.Strategy
	// ClassifyIsolated enables the random-forest fallback of §VII-B.
	ClassifyIsolated bool
	// Reestimate re-fits relationship consistency and edge probabilities
	// after each loop using the newly confirmed matches (§VII-A).
	Reestimate bool
	// Seed drives the forest's randomness.
	Seed int64
	// Progress, when non-nil, is invoked after every answered question
	// with the running question count and the current match set (used to
	// trace F1-versus-#questions curves, Figure 5).
	Progress func(questions int, matches pair.Set)
	// ExhaustBudget keeps the loop polling unresolved pairs by strategy
	// order even after relational propagation is exhausted, until Budget
	// is spent. The paper's Figure 5 runs every selection strategy to the
	// same question budget; Remp's normal stop criterion is restored when
	// this is false (the default).
	ExhaustBudget bool
	// Deduce enables transitive-closure answer deduction (internal/
	// deduce, after Wang et al.'s crowdsourced-join transitivity): every
	// resolution is recorded in an incremental union-find + conflict-set
	// store, each batch is reordered so questions whose answer closes
	// the most open batch-mates come first (ties keep the selection
	// order), and a question whose verdict the recorded answers already
	// imply is skipped — deduced — instead of spending a crowd question.
	// Deduction is a pure function of the applied-answer prefix, so
	// sharded, asynchronous and clustered runs with Deduce on stay
	// byte-identical to a synchronous Deduce-on oracle run.
	Deduce bool
	// Hybrid enables the paper's future-work extension (§IX): partial-
	// order inference is combined with relational propagation, so each
	// loop's labels additionally resolve unresolved pairs by vector
	// dominance — a pair dominating a confirmed match becomes a match, a
	// pair dominated by a confirmed non-match becomes a non-match.
	Hybrid bool
	// Shards splits the candidate-pair graph into independent shards of
	// connected components (relational edges plus entity sharing) whose
	// propagation, selection and answer application run concurrently
	// under one global budget/µ-batch scheduler; the results are
	// identical to the unsharded run. 0 selects automatically from the
	// graph size (single-shard below a few thousand vertices), 1 disables
	// sharding, negative is rejected by Validate.
	Shards int
	// Sched bounds the goroutines sharded loops fan out; sessions under
	// one Manager share a scheduler so concurrent loops cannot
	// oversubscribe the machine. Nil selects a process-wide default sized
	// at GOMAXPROCS.
	Sched *Scheduler
	// Runner supplies the ShardRunner a new Loop drives — where the
	// per-shard propagation engines live. Nil selects the in-process
	// runner (NewLocalRunner); internal/cluster supplies a remote runner
	// that places the engines on worker processes. A conforming runner
	// replicates the local runner's observable behavior exactly, so the
	// loop's byte-identity guarantees extend across it.
	Runner RunnerFactory
	// Obs carries the instrumentation hooks threaded through the
	// pipeline: per-stage loop timings (through its injected monotonic
	// clock — core itself never reads the wall clock, preserving
	// determinism) and engine/loop counters. Nil disables
	// instrumentation; every hook is nil-safe and allocation-free.
	Obs *obs.Pipeline
	// debugFullResync degrades the incremental propagation engine to a
	// full rebuild at the top of every loop — the historical recompute
	// policy — so tests can assert the incremental results are identical.
	debugFullResync bool
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		K:                 4,
		Tau:               0.9,
		Mu:                10,
		LabelSimThreshold: 0.3,
		LiteralThreshold:  0.9,
		Psi:               0.9,
		Thresholds:        crowd.DefaultThresholds(),
		Strategy:          selection.Greedy{},
		ClassifyIsolated:  true,
		Reestimate:        true,
		Seed:              1,
	}
}

// Validate reports whether the configuration is usable, with a
// descriptive error for the first offending field. It is the boundary
// check that replaces the silent coercions that used to hide bad values:
// zetaOf no longer clamps τ, and the remp boundary no longer drops
// negative K / Mu / Budget / MaxLoops / LabelSimThreshold on the floor. A
// zero in any of these fields still selects the paper's default via fill;
// an explicitly invalid value is rejected here.
func (c Config) Validate() error {
	if math.IsNaN(c.Tau) || c.Tau < 0 || c.Tau > 1 {
		return fmt.Errorf("core: Tau = %v out of range: the precision threshold τ must lie in (0, 1] (0 selects the default 0.9)", c.Tau)
	}
	if c.K < 0 {
		return fmt.Errorf("core: K = %d is negative: the pruning bound k must be positive (0 selects the default 4)", c.K)
	}
	if c.Mu < 0 {
		return fmt.Errorf("core: Mu = %d is negative: the questions-per-loop µ must be positive (0 selects the default 10)", c.Mu)
	}
	if c.Budget < 0 {
		return fmt.Errorf("core: Budget = %d is negative: the question budget must be positive (0 means unlimited)", c.Budget)
	}
	if c.MaxLoops < 0 {
		return fmt.Errorf("core: MaxLoops = %d is negative: the loop cap must be positive (0 means unlimited)", c.MaxLoops)
	}
	if math.IsNaN(c.LabelSimThreshold) || c.LabelSimThreshold < 0 || c.LabelSimThreshold > 1 {
		return fmt.Errorf("core: LabelSimThreshold = %v out of range: the label-similarity threshold must lie in [0, 1] (0 selects the default 0.3)", c.LabelSimThreshold)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: Shards = %d is negative: the shard count must be positive (0 selects automatic sharding, 1 disables it)", c.Shards)
	}
	return nil
}

func (c *Config) fill() {
	if c.K <= 0 {
		c.K = 4
	}
	if c.Tau == 0 {
		c.Tau = 0.9
	}
	if c.Mu <= 0 {
		c.Mu = 10
	}
	if c.LabelSimThreshold <= 0 {
		c.LabelSimThreshold = 0.3
	}
	if c.LiteralThreshold <= 0 {
		c.LiteralThreshold = 0.9
	}
	if c.Psi <= 0 {
		c.Psi = 0.9
	}
	if c.Thresholds.Accept == 0 && c.Thresholds.Reject == 0 {
		c.Thresholds = crowd.DefaultThresholds()
	}
	if c.Strategy == nil {
		c.Strategy = selection.Greedy{}
	}
}

// Asker abstracts the crowdsourcing platform; *crowd.Platform implements
// it, as does the ground-truth oracle used in Figure 5 / Table VII.
type Asker interface {
	Ask(q pair.Pair) []crowd.Label
	NumQuestions() int
}

// OracleAsker answers every question correctly with a single perfect
// worker — the "ground truth as labels" configuration of the internal
// experiments.
type OracleAsker struct {
	Oracle crowd.Oracle
	asked  map[pair.Pair]bool
}

// NewOracleAsker wraps a gold-standard oracle.
func NewOracleAsker(oracle crowd.Oracle) *OracleAsker {
	return &OracleAsker{Oracle: oracle, asked: map[pair.Pair]bool{}}
}

// Ask implements Asker.
func (o *OracleAsker) Ask(q pair.Pair) []crowd.Label {
	o.asked[q] = true
	return []crowd.Label{{Worker: crowd.Worker{ID: 0, Quality: 0.999}, IsMatch: o.Oracle(q)}}
}

// NumQuestions implements Asker.
func (o *OracleAsker) NumQuestions() int { return len(o.asked) }
