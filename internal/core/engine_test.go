package core

import (
	"testing"

	"repro/internal/crowd"
	"repro/internal/pair"
)

// assertResultsIdentical compares every field of two Run results; the
// engine swap must not change a single resolved pair.
func assertResultsIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	for _, s := range []struct {
		name string
		x, y pair.Set
	}{
		{"Matches", a.Matches, b.Matches},
		{"Confirmed", a.Confirmed, b.Confirmed},
		{"Propagated", a.Propagated, b.Propagated},
		{"IsolatedPredicted", a.IsolatedPredicted, b.IsolatedPredicted},
		{"NonMatches", a.NonMatches, b.NonMatches},
	} {
		if s.x.Len() != s.y.Len() {
			t.Fatalf("%s size differs: %d vs %d", s.name, s.x.Len(), s.y.Len())
		}
		for _, p := range s.x.Sorted() {
			if !s.y.Has(p) {
				t.Fatalf("%s: %v present in one run only", s.name, p)
			}
		}
	}
	if a.Questions != b.Questions {
		t.Fatalf("Questions differ: %d vs %d", a.Questions, b.Questions)
	}
	if a.Loops != b.Loops {
		t.Fatalf("Loops differ: %d vs %d", a.Loops, b.Loops)
	}
}

// TestRunIncrementalMatchesFullResync is the engine-swap regression test:
// the incremental dirty-source policy must produce results identical to
// the historical full-recompute-per-loop policy across configuration
// variants and asker types, on the synthetic movie suite.
func TestRunIncrementalMatchesFullResync(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"default", func(c *Config) {}},
		{"no-reestimate", func(c *Config) { c.Reestimate = false }},
		{"hybrid", func(c *Config) { c.Hybrid = true }},
		{"budgeted", func(c *Config) { c.Budget = 12; c.Mu = 3 }},
		{"exhaust", func(c *Config) { c.ExhaustBudget = true; c.Budget = 20 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k1, k2, gold := movieWorld(8, 11)
			run := func(fullResync bool) *Result {
				cfg := DefaultConfig()
				cfg.Mu = 4
				tc.mod(&cfg)
				cfg.debugFullResync = fullResync
				p := Prepare(k1, k2, cfg)
				return p.Run(NewOracleAsker(gold.IsMatch))
			}
			assertResultsIdentical(t, run(false), run(true))
		})
	}

	t.Run("noisy-crowd", func(t *testing.T) {
		k1, k2, gold := movieWorld(7, 12)
		run := func(fullResync bool) *Result {
			cfg := DefaultConfig()
			cfg.debugFullResync = fullResync
			p := Prepare(k1, k2, cfg)
			platform := crowd.NewPlatform(gold.IsMatch, crowd.Config{
				NumWorkers: 20, WorkersPerQuestion: 5, ErrorRate: 0.1, Seed: 6,
			})
			return p.Run(platform)
		}
		assertResultsIdentical(t, run(false), run(true))
	})
}

// TestRunIsDeterministic guards the sorted inferred-index lists: two runs
// of the same configuration must agree exactly (map iteration order used
// to leak into the benefit sums).
func TestRunIsDeterministic(t *testing.T) {
	k1, k2, gold := movieWorld(6, 14)
	run := func() *Result {
		cfg := DefaultConfig()
		p := Prepare(k1, k2, cfg)
		return p.Run(NewOracleAsker(gold.IsMatch))
	}
	assertResultsIdentical(t, run(), run())
}

// TestRunRecomputesOnlyDirtySources counts single-source Dijkstra
// invocations across a whole Run: with re-estimation off (no full
// rebuilds), the incremental engine must pay the initial n plus only the
// dirtied balls, strictly less than the n-per-dirty-loop the historical
// policy re-ran.
func TestRunRecomputesOnlyDirtySources(t *testing.T) {
	k1, k2, gold := movieWorld(10, 13)
	cfg := DefaultConfig()
	cfg.Mu = 3 // small batches force several loops
	cfg.Reestimate = false
	cfg.ClassifyIsolated = false
	p := Prepare(k1, k2, cfg)
	res := p.Run(NewOracleAsker(gold.IsMatch))

	n := int64(p.Graph.NumVertices())
	got := p.runRecomputes
	if res.Loops < 3 {
		t.Fatalf("fixture too easy: only %d loops", res.Loops)
	}
	if got < n {
		t.Fatalf("engine ran %d Dijkstras, fewer than the initial build %d", got, n)
	}
	// The historical policy recomputed all n sources at the top of every
	// loop after the first mutation: n*(1+loops-1) = n*loops at minimum
	// on this fixture (every loop resolves something).
	historical := n * int64(res.Loops)
	if got >= historical {
		t.Fatalf("engine ran %d Dijkstras, not fewer than the historical full-recompute %d (n=%d, loops=%d)",
			got, historical, n, res.Loops)
	}
	t.Logf("recomputes: %d incremental vs %d historical (n=%d, loops=%d)", got, historical, n, res.Loops)
}

// TestPrepareRejectsInvalidTau pins the boundary validation: an explicit
// out-of-range τ must not be silently coerced to 0.9 anymore.
func TestPrepareRejectsInvalidTau(t *testing.T) {
	k1, k2, _ := movieWorld(2, 15)
	for _, tau := range []float64{-0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Prepare accepted Tau = %v", tau)
				}
			}()
			cfg := DefaultConfig()
			cfg.Tau = tau
			Prepare(k1, k2, cfg)
		}()
	}
	// Zero still selects the default.
	cfg := DefaultConfig()
	cfg.Tau = 0
	if p := Prepare(k1, k2, cfg); p.Cfg.Tau != 0.9 {
		t.Errorf("zero Tau filled to %v, want 0.9", p.Cfg.Tau)
	}
}

// BenchmarkRunLoop measures a full human–machine loop run on the synthetic
// movie world (graph preparation excluded), the path the incremental
// engine accelerates.
func BenchmarkRunLoop(b *testing.B) {
	k1, k2, gold := movieWorld(12, 1)
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := Prepare(k1, k2, cfg) // Run mutates the prepared graph
		asker := NewOracleAsker(gold.IsMatch)
		b.StartTimer()
		_ = p.Run(asker)
	}
}
