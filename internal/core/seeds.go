package core

import (
	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/pair"
	"repro/internal/propagation"
)

// PropagateFromSeeds runs the Table VI configuration: no crowdsourcing, a
// sampled portion of ground-truth matches acts as seeds, consistency is
// re-fitted from those seeds, and propagation iterates to a fixpoint (each
// round's inferred matches join the seed set), exactly how the collective
// baselines PARIS and SiGMa consume their seeds. The isolated-pair
// classifier is intentionally skipped (the paper ignores it here "to
// assess the real propagation capability").
func (p *Prepared) PropagateFromSeeds(seeds []pair.Pair) pair.Set {
	cfg := p.Cfg
	seedSet := pair.NewSet(seeds...)

	// Consistency from the seeds themselves: with ground-truth matches the
	// matched-value counts are observed, so the direct estimator applies.
	cons := p.fitConsistencyFromCounts(seeds)
	prob := propagation.BuildProb(p.Graph, p.K1, p.K2, propagation.Params{
		Priors:      p.Priors,
		Consistency: cons,
	})

	matches := seedSet.Clone()
	inferred := prob.InferAll(cfg.Tau)
	frontier := seeds
	for len(frontier) > 0 {
		var next []pair.Pair
		for _, q := range frontier {
			qi := p.Graph.IndexOf(q)
			if qi < 0 {
				continue
			}
			verts := p.Graph.Vertices()
			for _, en := range inferred.Ball(qi) {
				pj := verts[en.Idx]
				if matches.Has(pj) {
					continue
				}
				matches.Add(pj)
				next = append(next, pj)
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return matches
}

// fitConsistencyFromCounts uses the direct estimator (observed matched
// counts) over the seed matches.
func (p *Prepared) fitConsistencyFromCounts(seeds []pair.Pair) map[ergraph.RelPair]consistency.Estimate {
	seedSet := pair.NewSet(seeds...)
	out := make(map[ergraph.RelPair]consistency.Estimate)
	for _, label := range p.Graph.Labels() {
		obs := p.consistencyObservations(label, seeds, seedSet)
		out[label] = consistency.FromCounts(obs, consistency.DefaultOptions())
	}
	return out
}
