package core

import (
	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/pair"
	"repro/internal/propagation"
	"repro/internal/selection"
)

// ShardRunner abstracts where a Loop's per-shard propagation engines live.
// The loop owns every global decision — answer application order, the
// result sets, budget and µ-batch selection across shards, settling — and
// drives the runner with per-shard operations; the runner owns the engines
// and the per-shard state those operations read (resolved/hard vertex
// mirrors, the damped priors, the detached set). The in-process runner
// (NewLocalRunner, the default) holds the engines in the loop's own
// process; internal/cluster's remote runner places them on worker
// processes behind an RPC protocol and replays the operation log to
// survive worker crashes.
//
// Operations on distinct shards may be invoked concurrently (the loop fans
// gathers, ranks and rebuilds across its scheduler); operations on one
// shard are always serialized by the loop. A conforming runner must
// replicate the local runner's observable behavior exactly — every
// byte-identity guarantee the loop makes extends to any runner that does.
type ShardRunner interface {
	// Resolve marks shard s's vertex q resolved; detach additionally
	// removes q's edges from the propagation fabric (the non-match path).
	// Resolving an already resolved vertex is idempotent.
	Resolve(s int, q pair.Pair, detach bool) error
	// Damp marks q a hard question with the given damped prior: candidate
	// gathering skips it from now on.
	Damp(s int, q pair.Pair, prior float64) error
	// Gather syncs shard s's engine and assembles its candidate questions,
	// with inferred sets as global vertex indexes. The boolean reports
	// whether some candidate can still infer a pair other than itself.
	Gather(s int) ([]selection.Candidate, bool, error)
	// Rank runs the configured Ranked strategy over shard s's candidates
	// from its latest gather, for a batch of size mu.
	Rank(s, mu int) ([]selection.Pick, error)
	// Ball returns the vertices a confirmed match at q would infer — q's
	// bounded-distance ball as of the last engine sync — in propagation
	// order (ascending distance, ties by pair order), unfiltered by
	// resolution state; the loop applies its own 1:1-constraint cascade.
	Ball(s int, q pair.Pair) ([]pair.Pair, error)
	// Rebuild rebuilds shard s's probabilistic graph from the given
	// consistency estimates, re-detaching every detached vertex, and
	// resets the engine over it (the re-estimation path).
	Rebuild(s int, est map[ergraph.RelPair]consistency.Estimate) error
	// Invalidate degrades shard s's engine to a full recompute at its next
	// sync (the debugFullResync test hook).
	Invalidate(s int) error
	// Release drops shard s's engine — the shard settled — and returns the
	// engine's Dijkstra recompute count. Releasing twice returns 0.
	Release(s int) (int64, error)
	// Close releases every remaining engine and returns the sum of their
	// recompute counts. The runner is unusable afterwards.
	Close() (int64, error)
}

// RunnerFactory builds the ShardRunner a new Loop will drive over the
// given prepared pipeline.
type RunnerFactory func(p *Prepared) (ShardRunner, error)

// runnerFactory resolves the configured factory, defaulting to the
// in-process runner.
func (c *Config) runnerFactory() RunnerFactory {
	if c.Runner != nil {
		return c.Runner
	}
	return NewLocalRunner
}

// ShardState is one shard's live engine state: the incremental propagation
// engine plus the mirrors of the loop's resolution state that candidate
// gathering and rebuilds read (resolved and hard vertices, damped priors,
// detached vertices). It is the execution substrate both ShardRunner
// implementations share — the local runner holds one per shard in
// process, and a cluster worker holds one per assigned shard, fed the
// same operations over RPC — so both compute bit-identical candidates,
// ranks, balls and rebuilds by construction.
//
// A ShardState is not safe for concurrent use; the loop serializes
// operations per shard, and workers add their own locking.
type ShardState struct {
	p    *Prepared
	pipe *shardPipe
	prob *propagation.ProbGraph
	eng  *propagation.Engine
	// attached marks the local-runner mode: the state wraps the pipe's own
	// probabilistic graph (the Prepared is exclusive to one loop) and
	// rebuilds write back to it. Worker states are detached: they build a
	// fresh graph so one cached Prepared can back many sessions.
	attached bool

	resolved pair.Set
	detached pair.Set
	hard     pair.Set
	damped   map[pair.Pair]float64

	gathered  bool
	lastCands []selection.Candidate
	anyProp   bool
}

// newAttachedShardState wraps shard s's own probabilistic graph — the
// in-process runner's mode, where the Prepared is exclusive to the loop.
func (p *Prepared) newAttachedShardState(s int) *ShardState {
	st := &ShardState{
		p:        p,
		pipe:     p.pipes[s],
		prob:     p.pipes[s].prob,
		attached: true,
		resolved: pair.Set{},
		detached: pair.Set{},
		hard:     pair.Set{},
		damped:   map[pair.Pair]float64{},
	}
	st.eng = propagation.NewEngineObs(st.prob, p.Cfg.Tau, p.Cfg.Obs.EngineCounters())
	return st
}

// NewShardState builds an independent engine state for shard s over a
// fresh probabilistic graph, leaving the Prepared untouched. This is the
// form a cluster worker holds: one Prepared (cached per pipeline spec)
// backs every session's shard states, each with its own graph copy.
func (p *Prepared) NewShardState(s int) *ShardState {
	pipe := p.pipes[s]
	prob := propagation.BuildProb(pipe.graph, p.K1, p.K2, propagation.Params{
		Priors:      p.Priors,
		Consistency: p.Consistency,
	})
	st := &ShardState{
		p:        p,
		pipe:     pipe,
		prob:     prob,
		resolved: pair.Set{},
		detached: pair.Set{},
		hard:     pair.Set{},
		damped:   map[pair.Pair]float64{},
	}
	st.eng = propagation.NewEngineObs(prob, p.Cfg.Tau, p.Cfg.Obs.EngineCounters())
	return st
}

// ShardLabels returns the edge labels present in shard s — the estimates a
// rebuild of the shard consumes (the remote runner ships only these).
func (p *Prepared) ShardLabels(s int) []ergraph.RelPair { return p.pipes[s].labels }

// Resolve marks q resolved; detach removes its edges from the propagation
// fabric. No-op after Release.
func (st *ShardState) Resolve(q pair.Pair, detach bool) {
	if st.eng == nil {
		return
	}
	st.resolved.Add(q)
	if detach {
		st.detached.Add(q)
		st.eng.DetachVertex(q)
	}
}

// Damp marks q a hard question with its damped prior; gathers skip it.
func (st *ShardState) Damp(q pair.Pair, prior float64) {
	if st.eng == nil {
		return
	}
	st.hard.Add(q)
	st.damped[q] = prior
}

// Sync recomputes the engine's dirty balls without assembling candidates.
// It is the replayable form of the sync a Gather performs: a cluster
// worker replaying a reassigned shard's operation log executes Sync at
// every logged gather position, so the engine's last-sync snapshot — the
// one Ball serves — reproduces bit-identically.
func (st *ShardState) Sync() {
	if st.eng != nil {
		st.eng.Sync()
	}
}

// priorOf returns q's working prior: the damped value if the question went
// hard, the prepared prior otherwise.
func (st *ShardState) priorOf(q pair.Pair) float64 {
	if p, ok := st.damped[q]; ok {
		return p
	}
	return st.p.Priors[q]
}

// Gather syncs the engine and assembles the candidate question list over
// the shard's unresolved, non-hard vertices, with inferred sets as global
// vertex indexes. The boolean reports whether some question can still
// infer a pair other than itself — the loop's stop signal. The engine's
// balls are already ascending in vertex index, so the inferred lists come
// out in the deterministic order the benefit sums need (they are
// order-sensitive in floating point) without any per-loop sorting.
func (st *ShardState) Gather() ([]selection.Candidate, bool) {
	if st.eng == nil {
		return nil, false
	}
	st.eng.Sync()
	verts := st.pipe.graph.Vertices()
	// One flat backing array holds every candidate's inferred list: a first
	// pass bounds the total, so the fills below never reallocate and the
	// whole gather costs two allocations instead of one per candidate.
	live, total := 0, 0
	for li, v := range verts {
		if st.resolved.Has(v) || st.hard.Has(v) {
			continue
		}
		live++
		total += len(st.eng.Ball(li)) + 1
	}
	st.gathered = true
	if live == 0 {
		st.lastCands, st.anyProp = nil, false
		return nil, false
	}
	backing := make([]int, 0, total)
	cands := make([]selection.Candidate, 0, live)
	anyPropagation := false
	for li, v := range verts {
		if st.resolved.Has(v) || st.hard.Has(v) {
			continue
		}
		start := len(backing)
		backing = append(backing, st.pipe.global(li)) // a match label always resolves the question itself
		for _, en := range st.eng.Ball(li) {
			if !st.resolved.Has(verts[en.Idx]) {
				backing = append(backing, st.pipe.global(int(en.Idx)))
			}
		}
		inf := backing[start:len(backing):len(backing)]
		if len(inf) > 1 {
			anyPropagation = true
		}
		cands = append(cands, selection.Candidate{Pair: v, Prob: st.priorOf(v), Inferred: inf})
	}
	st.lastCands, st.anyProp = cands, anyPropagation
	return cands, anyPropagation
}

// Rank runs the configured Ranked strategy over the latest gather's
// candidates. A state that has never gathered (a worker that just replayed
// a reassigned shard's log) gathers first; the engine is already at the
// logged sync position, so the candidates — and hence the ranks — equal
// the ones the lost worker computed.
func (st *ShardState) Rank(mu int) []selection.Pick {
	if !st.gathered {
		st.Gather()
	}
	if len(st.lastCands) == 0 {
		return []selection.Pick{}
	}
	ranked, ok := st.p.Cfg.Strategy.(selection.Ranked)
	if !ok {
		return []selection.Pick{}
	}
	return ranked.SelectRanked(st.lastCands, mu)
}

// Ball returns q's bounded-distance ball as of the last engine sync, in
// propagation order (ascending distance, ties by pair order), resolved
// vertices included — the loop filters against its own result state.
func (st *ShardState) Ball(q pair.Pair) []pair.Pair {
	if st.eng == nil {
		return nil
	}
	g := st.pipe.graph
	qi := g.IndexOf(q)
	if qi < 0 {
		return nil
	}
	verts := g.Vertices()
	ball := st.eng.Ball(qi)
	out := make([]pair.Pair, len(ball))
	for i, k := range ball.DistOrder(verts) { // smaller distance first
		out[i] = verts[ball[k].Idx]
	}
	return out
}

// Rebuild rebuilds the probabilistic graph from the given estimates,
// re-detaches the shard's resolved non-matches and resets the engine over
// the result — the per-shard half of re-estimation (§VII-A). Walking the
// shard's own vertices keeps the re-detach O(shard size).
func (st *ShardState) Rebuild(est map[ergraph.RelPair]consistency.Estimate) {
	if st.eng == nil {
		return
	}
	p := st.p
	prob := propagation.BuildProb(st.pipe.graph, p.K1, p.K2, propagation.Params{
		Priors:      p.Priors,
		Consistency: est,
	})
	for _, q := range st.pipe.graph.Vertices() {
		if !st.detached.Has(q) {
			continue
		}
		for _, e := range st.pipe.graph.Out(q) {
			prob.SetProb(q, e.To, 0)
		}
		for _, e := range st.pipe.graph.In(q) {
			prob.SetProb(e.From, q, 0)
		}
	}
	st.prob = prob
	if st.attached {
		st.pipe.prob = prob
	}
	st.eng.Reset(prob)
}

// Invalidate degrades the engine to a full recompute at its next sync.
func (st *ShardState) Invalidate() {
	if st.eng != nil {
		st.eng.InvalidateAll()
	}
}

// Release drops the engine — its dist/rev ball maps are the dominant
// memory — and returns its Dijkstra recompute count; 0 on a second call.
func (st *ShardState) Release() int64 {
	if st.eng == nil {
		return 0
	}
	n := st.eng.Recomputes()
	st.eng = nil
	st.lastCands = nil
	return n
}

// localRunner is the in-process ShardRunner: one attached ShardState per
// shard, built concurrently under the pipeline scheduler. Its operations
// never fail.
type localRunner struct {
	states []*ShardState
}

// NewLocalRunner builds the default in-process ShardRunner over the
// prepared pipeline. The initial engine builds are the first propagation
// work of the session; their Dijkstra fan-out lands in the shared engine
// counters.
func NewLocalRunner(p *Prepared) (ShardRunner, error) {
	lr := &localRunner{states: make([]*ShardState, len(p.pipes))}
	p.Cfg.scheduler().ForEach(len(p.pipes), func(s int) {
		lr.states[s] = p.newAttachedShardState(s)
	})
	return lr, nil
}

func (r *localRunner) Resolve(s int, q pair.Pair, detach bool) error {
	r.states[s].Resolve(q, detach)
	return nil
}

func (r *localRunner) Damp(s int, q pair.Pair, prior float64) error {
	r.states[s].Damp(q, prior)
	return nil
}

func (r *localRunner) Gather(s int) ([]selection.Candidate, bool, error) {
	cands, anyProp := r.states[s].Gather()
	return cands, anyProp, nil
}

func (r *localRunner) Rank(s, mu int) ([]selection.Pick, error) {
	return r.states[s].Rank(mu), nil
}

func (r *localRunner) Ball(s int, q pair.Pair) ([]pair.Pair, error) {
	return r.states[s].Ball(q), nil
}

func (r *localRunner) Rebuild(s int, est map[ergraph.RelPair]consistency.Estimate) error {
	r.states[s].Rebuild(est)
	return nil
}

func (r *localRunner) Invalidate(s int) error {
	r.states[s].Invalidate()
	return nil
}

func (r *localRunner) Release(s int) (int64, error) {
	return r.states[s].Release(), nil
}

func (r *localRunner) Close() (int64, error) {
	var n int64
	for _, st := range r.states {
		n += st.Release()
	}
	return n, nil
}
