package core

import (
	"testing"

	"repro/internal/crowd"
	"repro/internal/selection"
)

// TestShardedRunMatchesUnsharded is the sharding equivalence guarantee at
// the core level: for every shard count, configuration variant and asker
// type, the sharded machine must resolve exactly the pairs the monolithic
// one does, with the same question count and loop count.
func TestShardedRunMatchesUnsharded(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"default", func(c *Config) {}},
		{"no-reestimate", func(c *Config) { c.Reestimate = false }},
		{"hybrid", func(c *Config) { c.Hybrid = true }},
		{"budgeted", func(c *Config) { c.Budget = 12; c.Mu = 3 }},
		{"exhaust", func(c *Config) { c.ExhaustBudget = true; c.Budget = 20 }},
		{"maxinf", func(c *Config) { c.Strategy = selection.MaxInf{} }},
		{"maxpr", func(c *Config) { c.Strategy = selection.MaxPr{} }},
		{"no-classifier", func(c *Config) { c.ClassifyIsolated = false }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k1, k2, gold := movieWorld(8, 21)
			run := func(shards int) *Result {
				cfg := DefaultConfig()
				cfg.Mu = 4
				tc.mod(&cfg)
				cfg.Shards = shards
				p := Prepare(k1, k2, cfg)
				if shards > 1 && p.NumShards() < 2 {
					t.Fatalf("fixture produced %d shards, want ≥ 2", p.NumShards())
				}
				return p.Run(NewOracleAsker(gold.IsMatch))
			}
			ref := run(1)
			for _, shards := range []int{2, 3, 8} {
				assertResultsIdentical(t, ref, run(shards))
			}
		})
	}
}

// TestShardedRunMatchesUnshardedNoisyCrowd repeats the equivalence check
// with a fallible simulated crowd: inference verdicts, hard-question
// damping and non-match detaches must all shard identically. The platform
// caches labels per pair, so both runs see the same answers.
func TestShardedRunMatchesUnshardedNoisyCrowd(t *testing.T) {
	k1, k2, gold := movieWorld(7, 22)
	run := func(shards int) *Result {
		cfg := DefaultConfig()
		cfg.Shards = shards
		p := Prepare(k1, k2, cfg)
		platform := crowd.NewPlatform(gold.IsMatch, crowd.Config{
			NumWorkers: 20, WorkersPerQuestion: 5, ErrorRate: 0.1, Seed: 6,
		})
		return p.Run(platform)
	}
	ref := run(1)
	for _, shards := range []int{2, 4} {
		assertResultsIdentical(t, ref, run(shards))
	}
}

// TestShardedRunDeterministic pins run-to-run determinism of the sharded
// machine: concurrent per-shard sync, gathering and selection must not
// leak scheduling order into the result.
func TestShardedRunDeterministic(t *testing.T) {
	k1, k2, gold := movieWorld(6, 23)
	run := func() *Result {
		cfg := DefaultConfig()
		cfg.Shards = 4
		p := Prepare(k1, k2, cfg)
		return p.Run(NewOracleAsker(gold.IsMatch))
	}
	assertResultsIdentical(t, run(), run())
}

// TestShardedLoopSettlesShards exercises the freeze path: once every
// vertex of a shard is resolved its engine is released, and the loop
// still finishes with the right result.
func TestShardedLoopSettlesShards(t *testing.T) {
	k1, k2, gold := movieWorld(8, 24)
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.Mu = 2 // small batches force many loops, so shards settle mid-run
	p := Prepare(k1, k2, cfg)
	if p.NumShards() < 2 {
		t.Fatalf("fixture produced %d shards", p.NumShards())
	}
	l := p.NewLoop()
	states := l.r.(*localRunner).states
	settledSeen := false
	for !l.Done() {
		for s, sh := range l.shards {
			if sh.settled {
				settledSeen = true
				if states[s].eng != nil {
					t.Fatal("settled shard kept its engine alive")
				}
			}
		}
		for _, q := range l.Batch() {
			if err := l.Deliver(q, NewOracleAsker(gold.IsMatch).Ask(q)); err != nil {
				t.Fatal(err)
			}
			if l.Done() {
				break
			}
		}
	}
	if !settledSeen {
		t.Log("no shard settled mid-run on this fixture (all resolved in the final loop)")
	}
	cfg1 := DefaultConfig()
	cfg1.Mu = 2
	cfg1.Shards = 1
	ref := Prepare(k1, k2, cfg1).Run(NewOracleAsker(gold.IsMatch))
	assertResultsIdentical(t, ref, l.Result())
}

// TestResolveShardCount pins the auto-sharding policy boundaries.
func TestResolveShardCount(t *testing.T) {
	cases := []struct {
		requested, vertices, want int
	}{
		{1, 10_000, 1},                   // explicit off
		{0, autoShardMinVertices - 1, 1}, // auto below threshold
		{0, 8 * autoShardVerticesPerShard, 8},
		{0, 1_000_000, maxAutoShards},
		{4, 100, 4},   // explicit honored
		{200, 50, 50}, // capped at vertex count
		{3, 0, 1},     // empty graph
	}
	for _, tc := range cases {
		if got := resolveShardCount(tc.requested, tc.vertices); got != tc.want {
			t.Errorf("resolveShardCount(%d, %d) = %d, want %d", tc.requested, tc.vertices, got, tc.want)
		}
	}
}

// TestShardsValidation pins the boundary error for a negative shard count.
func TestShardsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Shards accepted")
	}
}
