package core

import (
	"fmt"
	"testing"

	"repro/internal/datasets"
)

// BenchmarkShardedLoop measures the end-to-end human–machine loop
// (initial engine build through final classification, preparation
// excluded) on the clustered synthetic graph, monolithic versus sharded.
// The sharded loop wins even single-threaded: re-estimation rebuilds,
// candidate gathering and ranked selection are scoped to the shards a
// batch actually touched, and settled shards freeze outright.
func BenchmarkShardedLoop(b *testing.B) {
	ds := datasets.Clustered(48, 24, 1)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Shards = shards
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := Prepare(ds.K1, ds.K2, cfg) // Run mutates the prepared graphs
				asker := NewOracleAsker(ds.Gold.IsMatch)
				b.StartTimer()
				_ = p.Run(asker)
			}
		})
	}
}
