package core

import (
	"runtime"
	"sync"
)

// Scheduler bounds the goroutines the sharded pipeline fans out: per-shard
// propagation syncs, candidate gathering, question selection and
// re-estimation rebuilds all draw workers from one token pool. Sessions
// running under one session.Manager share a single Scheduler, so many
// concurrent loops cannot oversubscribe the machine — the pool is the
// "single global scheduler" the shards are driven by. A Scheduler is safe
// for concurrent use.
type Scheduler struct {
	sem chan struct{}
}

// NewScheduler returns a scheduler with the given worker bound; workers
// <= 0 selects GOMAXPROCS.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{sem: make(chan struct{}, workers)}
}

// defaultScheduler serves loops whose Config carries no scheduler:
// standalone sessions and direct Prepared.Run callers.
var defaultScheduler = NewScheduler(0)

// ForEach runs fn(0) … fn(n-1), fanning across up to the scheduler's
// worker bound. It returns when every call has finished. fn must not call
// ForEach on the same scheduler (a worker token is held for the duration
// of one fn). n == 1 runs inline with no goroutine.
func (s *Scheduler) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-s.sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// scheduler resolves the Config's scheduler, falling back to the
// process-wide default.
func (c *Config) scheduler() *Scheduler {
	if c.Sched != nil {
		return c.Sched
	}
	return defaultScheduler
}
