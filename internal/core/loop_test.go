package core

import (
	"math/rand"
	"testing"

	"repro/internal/crowd"
	"repro/internal/pair"
	"repro/internal/selection"
)

// TestPadBatchDeterministicTies pins the padding order: unchosen
// candidates are appended by descending prior, and equal-probability ties
// break by Pair.Less — never by input position, so a shuffled candidate
// slice pads to the same question sequence.
func TestPadBatchDeterministicTies(t *testing.T) {
	cands := []selection.Candidate{
		{Pair: pair.Pair{U1: 5, U2: 1}, Prob: 0.5},
		{Pair: pair.Pair{U1: 1, U2: 2}, Prob: 0.5},
		{Pair: pair.Pair{U1: 3, U2: 3}, Prob: 0.7},
		{Pair: pair.Pair{U1: 1, U2: 1}, Prob: 0.5},
		{Pair: pair.Pair{U1: 2, U2: 2}, Prob: 0.5},
	}
	got := padBatch(cands, []int{2}, 4)
	want := []pair.Pair{
		{U1: 3, U2: 3}, // the strategy's pick stays first
		{U1: 1, U2: 1}, // then the 0.5-tie block in Pair.Less order
		{U1: 1, U2: 2},
		{U1: 2, U2: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("padded to %d questions, want %d", len(got), len(want))
	}
	for i, ci := range got {
		if cands[ci].Pair != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, cands[ci].Pair, want[i])
		}
	}

	// Permutation invariance: the padded question sequence must not depend
	// on candidate slice order.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]selection.Candidate(nil), cands...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var first int
		for i, c := range shuffled {
			if c.Pair == (pair.Pair{U1: 3, U2: 3}) {
				first = i
			}
		}
		res := padBatch(shuffled, []int{first}, 4)
		for i, ci := range res {
			if shuffled[ci].Pair != want[i] {
				t.Fatalf("trial %d position %d: got %v, want %v", trial, i, shuffled[ci].Pair, want[i])
			}
		}
	}
}

// contradictingAsker answers every question with two equally qualified
// workers that disagree, so truth inference always lands exactly on the
// prior — a crowd whose labels stay inconsistent. It counts how often
// each pair is asked.
type contradictingAsker struct {
	asked map[pair.Pair]int
}

func (a *contradictingAsker) Ask(q pair.Pair) []crowd.Label {
	a.asked[q]++
	return []crowd.Label{
		{Worker: crowd.Worker{ID: 0, Quality: 0.75}, IsMatch: true},
		{Worker: crowd.Worker{ID: 1, Quality: 0.75}, IsMatch: false},
	}
}

func (a *contradictingAsker) NumQuestions() int { return len(a.asked) }

// TestHardQuestionsNotReasked exercises the damping path: a question
// whose labels stay inconsistent — truth inference never crosses either
// threshold — is marked hard and withheld from every later selection,
// because re-asking cannot make progress when the platform reuses labels.
// The loop must still terminate, with every pair asked exactly once.
func TestHardQuestionsNotReasked(t *testing.T) {
	k1, k2, _ := movieWorld(6, 31)
	cfg := DefaultConfig()
	cfg.Mu = 3
	cfg.ClassifyIsolated = false
	// Unreachable accept/reject posteriors keep every verdict Unresolved,
	// whatever the pair's prior: the all-questions-are-hard worst case.
	cfg.Thresholds = crowd.Thresholds{Accept: 1.1, Reject: -0.1}
	p := Prepare(k1, k2, cfg)

	asker := &contradictingAsker{asked: map[pair.Pair]int{}}
	res := p.Run(asker)

	if len(asker.asked) == 0 {
		t.Fatal("nothing was asked")
	}
	for q, n := range asker.asked {
		if n != 1 {
			t.Errorf("pair %v asked %d times; hard questions must not be re-asked", q, n)
		}
	}
	if res.Questions != len(asker.asked) {
		t.Errorf("res.Questions = %d, want %d distinct questions", res.Questions, len(asker.asked))
	}
	// Every asked pair stayed unresolved, so every one of them took the
	// damping path — and none was polled again.
	for q := range asker.asked {
		if res.Matches.Has(q) || res.NonMatches.Has(q) {
			t.Errorf("pair %v resolved despite inconsistent labels", q)
		}
	}
	if res.Matches.Len() != 0 {
		t.Errorf("%d matches from a crowd that never agreed", res.Matches.Len())
	}
}
