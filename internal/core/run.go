package core

import (
	"sort"

	"repro/internal/ergraph"
	"repro/internal/pair"
	"repro/internal/propagation"
	"repro/internal/selection"
)

// Result is the outcome of a full Remp run.
type Result struct {
	// Matches is the final match set: worker-confirmed, propagated, and
	// (when enabled) classifier-predicted isolated matches.
	Matches pair.Set
	// Confirmed are matches labeled directly by workers.
	Confirmed pair.Set
	// Propagated are matches inferred through the ER graph.
	Propagated pair.Set
	// IsolatedPredicted are matches predicted by the random forest.
	IsolatedPredicted pair.Set
	// NonMatches are pairs resolved negative by workers.
	NonMatches pair.Set
	// Questions is the number of distinct questions asked.
	Questions int
	// Loops is the number of human-machine loops executed.
	Loops int
}

// Run executes the human–machine loop against the Asker and returns the
// final result. It terminates when no unresolved pair can be inferred by
// relational match propagation (the paper's stop criterion), when the
// question budget is exhausted, or when MaxLoops is reached.
//
// Run is the synchronous driver over the Loop state machine (loop.go): it
// pulls each published batch and pushes the Asker's answers back in
// selection order. Bounded-distance inference is owned by an incremental
// propagation.Engine: resolving a pair invalidates only the sources whose
// ζ-balls the pair participates in, and the Sync at the top of each loop
// recomputes just those, instead of the full InferAll re-run the loop used
// to pay whenever an edge changed. Re-estimation rebuilds the whole
// probabilistic graph, so it resets the engine for a parallel full
// rebuild. Each batch of µ questions is resolved against the snapshot
// taken at the loop top, exactly as before.
func (p *Prepared) Run(asker Asker) *Result {
	l := p.NewLoop()
	for !l.Done() {
		batch := l.Batch()
		if len(batch) == 0 {
			// Unreachable by the Loop invariant (an open loop always has an
			// unanswered question); guard against a stalled machine rather
			// than spinning.
			panic("core: loop awaiting answers with no open question")
		}
		for _, q := range batch {
			if err := l.Deliver(q, asker.Ask(q)); err != nil {
				panic(err) // q came from Batch; delivery cannot fail
			}
			if l.Done() {
				break
			}
		}
	}
	return l.Result()
}

// padBatch extends a selection to mu questions with the highest-prior
// candidates not yet chosen.
func padBatch(cands []selection.Candidate, chosen []int, mu int) []int {
	taken := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		taken[i] = true
	}
	rest := make([]int, 0, len(cands))
	for i := range cands {
		if !taken[i] {
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		if cands[rest[a]].Prob != cands[rest[b]].Prob {
			return cands[rest[a]].Prob > cands[rest[b]].Prob
		}
		return cands[rest[a]].Pair.Less(cands[rest[b]].Pair)
	})
	for _, i := range rest {
		if len(chosen) >= mu {
			break
		}
		chosen = append(chosen, i)
	}
	return chosen
}

// questionCandidates assembles the candidate question list over the
// unresolved vertices. anyPropagation reports whether some question can
// still infer a pair other than itself — the loop's stop signal. Inferred
// index lists are sorted so the whole run is deterministic (benefit sums
// are order-sensitive in floating point).
func (p *Prepared) questionCandidates(res *Result, priors map[pair.Pair]float64, eng *propagation.Engine, hard pair.Set) ([]selection.Candidate, bool) {
	resolved := func(q pair.Pair) bool {
		return res.Matches.Has(q) || res.NonMatches.Has(q)
	}
	var cands []selection.Candidate
	anyPropagation := false
	verts := p.Graph.Vertices()
	for i, v := range verts {
		if resolved(v) || hard.Has(v) {
			continue
		}
		keys := eng.SortedSetIndexes(i)
		inf := make([]int, 1, len(keys)+1)
		inf[0] = i // a match label always resolves the question itself
		for _, j := range keys {
			if !resolved(verts[j]) {
				inf = append(inf, j)
			}
		}
		if len(inf) > 1 {
			anyPropagation = true
		}
		cands = append(cands, selection.Candidate{Pair: v, Prob: priors[v], Inferred: inf})
	}
	return cands, anyPropagation
}

// confirmMatch records a worker-confirmed match and propagates it: every
// unresolved pair with Pr[m_p | m_q] ≥ τ becomes an inferred match,
// processed in decreasing probability so that the 1:1 entity constraint
// lets the most probable pair of an entity win. Competitor vertices
// sharing an entity with a new match are resolved as non-matches and
// detached (the "re-estimate edges with new matches and non-matches" step
// of §VII-A). Propagation reads the engine's last-Sync snapshot.
func (p *Prepared) confirmMatch(q pair.Pair, res *Result, eng *propagation.Engine) {
	res.Confirmed.Add(q)
	res.Matches.Add(q)
	p.resolveCompetitors(q, res, eng)
	qi := p.Graph.IndexOf(q)
	if qi < 0 {
		return
	}
	verts := p.Graph.Vertices()
	set := eng.SetIndexes(qi)
	order := make([]int, 0, len(set))
	for j := range set {
		order = append(order, j)
	}
	sort.Slice(order, func(a, b int) bool {
		if set[order[a]] != set[order[b]] {
			return set[order[a]] < set[order[b]] // smaller distance first
		}
		return verts[order[a]].Less(verts[order[b]])
	})
	for _, j := range order {
		pj := verts[j]
		if res.Matches.Has(pj) || res.NonMatches.Has(pj) {
			continue
		}
		res.Propagated.Add(pj)
		res.Matches.Add(pj)
		p.resolveCompetitors(pj, res, eng)
	}
}

// resolveCompetitors marks every unresolved vertex sharing an entity with
// the match m as a non-match and detaches it from the propagation fabric.
func (p *Prepared) resolveCompetitors(m pair.Pair, res *Result, eng *propagation.Engine) {
	verts := p.Graph.Vertices()
	for _, side := range [][]int{p.byEntity1[m.U1], p.byEntity2[m.U2]} {
		for _, i := range side {
			v := verts[i]
			if v == m || res.Matches.Has(v) || res.NonMatches.Has(v) {
				continue
			}
			res.NonMatches.Add(v)
			eng.DetachVertex(v)
		}
	}
}

// detachVertex removes a resolved non-match from the propagation fabric
// directly, without engine bookkeeping. It is only for contexts where the
// engine is about to be fully rebuilt (re-estimation) or absent; inside
// the loop, use Engine.DetachVertex so invalidation is tracked.
func (p *Prepared) detachVertex(q pair.Pair) {
	for _, e := range p.Graph.Out(q) {
		p.Prob.SetProb(q, e.To, 0)
	}
	for _, e := range p.Graph.In(q) {
		p.Prob.SetProb(e.From, q, 0)
	}
}

// reestimate re-fits consistency from the enlarged seed set (initial
// matches plus confirmed and propagated matches) and rebuilds the edge
// probabilities, keeping detached vertices detached (§VII-A). The caller
// must Reset the engine onto the rebuilt graph afterwards.
func (p *Prepared) reestimate(res *Result) {
	seeds := make([]pair.Pair, 0, len(p.Blocking.Initial)+res.Matches.Len())
	seen := pair.Set{}
	for _, m := range p.Blocking.Initial {
		if !seen.Has(m) {
			seen.Add(m)
			seeds = append(seeds, m)
		}
	}
	for _, m := range res.Matches.Sorted() {
		if !seen.Has(m) {
			seen.Add(m)
			seeds = append(seeds, m)
		}
	}
	p.Consistency = p.fitConsistency(seeds)
	p.Prob = propagation.BuildProb(p.Graph, p.K1, p.K2, propagation.Params{
		Priors:      p.Priors,
		Consistency: p.Consistency,
	})
	for q := range res.NonMatches {
		p.detachVertex(q)
	}
}

// Labels of the probabilistic graph are re-exported for diagnostics.
func (p *Prepared) GraphLabels() []ergraph.RelPair { return p.Graph.Labels() }
