package core

import (
	"slices"

	"repro/internal/deduce"
	"repro/internal/ergraph"
	"repro/internal/pair"
	"repro/internal/selection"
)

// Result is the outcome of a full Remp run.
type Result struct {
	// Matches is the final match set: worker-confirmed, propagated, and
	// (when enabled) classifier-predicted isolated matches.
	Matches pair.Set
	// Confirmed are matches labeled directly by workers.
	Confirmed pair.Set
	// Propagated are matches inferred through the ER graph.
	Propagated pair.Set
	// IsolatedPredicted are matches predicted by the random forest.
	IsolatedPredicted pair.Set
	// NonMatches are pairs resolved negative by workers.
	NonMatches pair.Set
	// Questions is the number of distinct questions asked.
	Questions int
	// Deduced is the number of selected questions skipped because their
	// verdict was already implied by recorded answers (Config.Deduce):
	// crowd questions saved by transitive-closure deduction.
	Deduced int
	// Loops is the number of human-machine loops executed.
	Loops int
}

// Run executes the human–machine loop against the Asker and returns the
// final result. It terminates when no unresolved pair can be inferred by
// relational match propagation (the paper's stop criterion), when the
// question budget is exhausted, or when MaxLoops is reached.
//
// Run is the synchronous driver over the Loop state machine (loop.go): it
// pulls each published batch and pushes the Asker's answers back in
// selection order. Bounded-distance inference is owned by incremental
// propagation.Engines — one per shard — and the Sync at the top of each
// loop recomputes just the dirty sources, instead of the full InferAll
// re-run the loop used to pay whenever an edge changed. Re-estimation
// refits consistency globally and rebuilds only the shards whose labels
// actually changed. Each batch of µ questions is resolved against the
// snapshot taken at the loop top, exactly as before.
func (p *Prepared) Run(asker Asker) *Result {
	l := p.NewLoop()
	for !l.Done() {
		if err := l.Err(); err != nil {
			// Unreachable with the in-process runner; a remote runner that
			// lost its whole cluster surfaces here.
			panic(err)
		}
		batch := l.Batch()
		if len(batch) == 0 {
			// Unreachable by the Loop invariant (an open loop always has an
			// unanswered question); guard against a stalled machine rather
			// than spinning.
			panic("core: loop awaiting answers with no open question")
		}
		for _, q := range batch {
			if l.WasDeduced(q) {
				// An earlier answer's cascade already implied q's
				// verdict; deduction skipped it, so no crowd question.
				continue
			}
			if err := l.Deliver(q, asker.Ask(q)); err != nil {
				panic(err) // q came from Batch; delivery cannot fail
			}
			if l.Done() {
				break
			}
		}
	}
	return l.Result()
}

// padBatch extends a selection to mu questions with the highest-prior
// candidates not yet chosen.
func padBatch(cands []selection.Candidate, chosen []int, mu int) []int {
	taken := make(map[int]bool, len(chosen))
	for _, i := range chosen {
		taken[i] = true
	}
	rest := make([]int, 0, len(cands))
	for i := range cands {
		if !taken[i] {
			rest = append(rest, i)
		}
	}
	slices.SortFunc(rest, func(a, b int) int {
		if cands[a].Prob != cands[b].Prob {
			if cands[a].Prob > cands[b].Prob {
				return -1
			}
			return 1
		}
		if cands[a].Pair.Less(cands[b].Pair) {
			return -1
		}
		return 1
	})
	for _, i := range rest {
		if len(chosen) >= mu {
			break
		}
		chosen = append(chosen, i)
	}
	return chosen
}

// confirmMatch records a worker-confirmed match and propagates it: every
// unresolved pair with Pr[m_p | m_q] ≥ τ becomes an inferred match,
// processed in decreasing probability so that the 1:1 entity constraint
// lets the most probable pair of an entity win. Competitor vertices
// sharing an entity with a new match are resolved as non-matches and
// detached (the "re-estimate edges with new matches and non-matches" step
// of §VII-A). Propagation reads the shard engine's last-Sync snapshot —
// the runner returns the ball in distance order, unfiltered — and the
// whole cascade stays within q's shard by construction.
func (l *Loop) confirmMatch(q pair.Pair) {
	l.record(q, deduce.Match)
	l.res.Confirmed.Add(q)
	l.res.Matches.Add(q)
	l.pendingSeeds = append(l.pendingSeeds, q)
	l.resolveCompetitors(q)
	s := l.shardIndex(q)
	if s < 0 || l.shards[s].settled || l.err != nil {
		return
	}
	if err := l.r.Resolve(s, q, false); err != nil {
		l.fail(err)
		return
	}
	ball, err := l.r.Ball(s, q)
	if err != nil {
		l.fail(err)
		return
	}
	for _, pj := range ball { // smaller distance first
		if l.resolved(pj) {
			continue
		}
		l.record(pj, deduce.Match)
		l.res.Propagated.Add(pj)
		l.res.Matches.Add(pj)
		l.pendingSeeds = append(l.pendingSeeds, pj)
		l.runnerResolve(pj, false)
		l.resolveCompetitors(pj)
	}
}

// resolveCompetitors marks every unresolved vertex sharing an entity with
// the match m as a non-match and detaches it from the propagation fabric.
// Competitor chains may cross shards (the partition follows relational
// edges only); detaches run on the serial answer-application path and
// route to the owning shard through the runner, so cross-shard
// competitors resolve exactly as in the monolithic loop.
func (l *Loop) resolveCompetitors(m pair.Pair) {
	for _, side := range [][]pair.Pair{l.p.byEntity1[m.U1], l.p.byEntity2[m.U2]} {
		for _, v := range side {
			if v == m || l.resolved(v) {
				continue
			}
			l.markNonMatch(v)
		}
	}
}

// reestimate re-fits consistency from the enlarged seed set (initial
// matches plus confirmed and propagated matches) and rebuilds the edge
// probabilities, keeping detached vertices detached (§VII-A). Both steps
// are scoped exactly:
//
//   - The refit skips labels none of the newly confirmed or propagated
//     matches touch. A label's observations are its seeds' neighborhoods
//     plus the seed-set membership of their neighbor pairs; a new seed
//     can only perturb either by participating in the label's relations,
//     so an untouched label's observations — and its deterministic fit —
//     are unchanged.
//   - A shard rebuilds (concurrently with its siblings) only when some
//     label it contains was re-fitted to different (ε1, ε2); otherwise
//     its incremental engine state, which already carries every
//     detachment, is bit-identical to what the rebuild would produce.
//
// The debugFullResync hook disables both scopes, so the equivalence tests
// diff the scoped machine against the recompute-everything policy.
func (l *Loop) reestimate() {
	p := l.p
	seeds := make([]pair.Pair, 0, len(p.Blocking.Initial)+l.res.Matches.Len())
	seen := pair.Set{}
	for _, m := range p.Blocking.Initial {
		if !seen.Has(m) {
			seen.Add(m)
			seeds = append(seeds, m)
		}
	}
	for _, m := range l.res.Matches.Sorted() {
		if !seen.Has(m) {
			seen.Add(m)
			seeds = append(seeds, m)
		}
	}
	old := p.Consistency
	p.Consistency = p.refitConsistency(seeds, old, l.touchedLabels())
	l.pendingSeeds = l.pendingSeeds[:0]
	rebuild := make([]int, 0, len(l.shards))
	for s, sh := range l.shards {
		if sh.settled {
			continue
		}
		if !p.Cfg.debugFullResync && !sh.pipe.labelsChanged(old, p.Consistency) {
			continue
		}
		rebuild = append(rebuild, s)
	}
	errs := make([]error, len(rebuild))
	p.Cfg.scheduler().ForEach(len(rebuild), func(i int) {
		// The runner rebuilds the shard's probabilistic graph and
		// re-detaches its resolved non-matches (ShardState.Rebuild).
		errs[i] = l.r.Rebuild(rebuild[i], p.Consistency)
		l.shards[rebuild[i]].dirty = true
	})
	for _, err := range errs {
		if err != nil {
			l.fail(err)
			return
		}
	}
	if len(l.shards) == 1 {
		p.Prob = p.pipes[0].prob
	}
}

// touchedLabels returns the edge labels whose consistency observations
// could have changed since the last refit: those some pending seed's
// entities participate in (in either direction — a new seed adds an
// observation row through its own neighborhoods and flips KnownL counts
// by being a neighbor pair of an existing seed). nil means all labels
// (the debugFullResync policy).
func (l *Loop) touchedLabels() map[ergraph.RelPair]bool {
	if l.p.Cfg.debugFullResync {
		return nil
	}
	touched := make(map[ergraph.RelPair]bool)
	for _, label := range l.p.Graph.Labels() {
		for _, m := range l.pendingSeeds {
			if len(l.p.K1.Out(m.U1, label.R1)) > 0 || len(l.p.K1.In(m.U1, label.R1)) > 0 ||
				len(l.p.K2.Out(m.U2, label.R2)) > 0 || len(l.p.K2.In(m.U2, label.R2)) > 0 {
				touched[label] = true
				break
			}
		}
	}
	return touched
}

// Labels of the probabilistic graph are re-exported for diagnostics.
func (p *Prepared) GraphLabels() []ergraph.RelPair { return p.Graph.Labels() }
