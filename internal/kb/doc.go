// Package kb implements the knowledge-base substrate of the Remp
// reproduction: a KB is a 5-tuple (U, L, A, R, T) of entities, literals,
// attributes, relationships and triples (§III-A of the paper). Entities,
// attributes and relationships are interned to dense integer IDs; the KB
// maintains the value-set indexes N_a(u) (attribute values of u) and
// N_r(u) (relationship neighbors of u) that every later stage queries.
//
// Two serializations are provided. WriteTSV/ReadTSV is the line-based
// text format cmd/datagen emits and cmd/remp consumes — diffable,
// greppable, and the canonical form for fixtures. WriteSnapshot/
// OpenSnapshot is the binary snapshot below, which loads a
// million-entity KB without re-tokenizing or re-interning anything and
// is what repeated bench runs and server restarts use.
//
// The package also hosts the token dictionary (TokenDict) that the
// pre-pipeline builds on: label tokens interned once to dense uint32
// TokenIDs so blocking and similarity run over integer posting lists
// instead of strings.
//
// # The binary KB snapshot format
//
// A snapshot is a single file (conventionally *.snap, see SnapshotExt)
// with a fixed 32-byte header, a payload, and a 4-byte trailer. All
// integers are little-endian; there is no alignment padding.
//
//	offset  size  field
//	0       8     magic "REMPKB1\n"
//	8       4     format version (currently 1)
//	12      4     flags (must be 0 in version 1)
//	16      8     payload length in bytes
//	24      8     reserved (must be 0)
//	32      ...   payload
//	32+len  4     CRC-32 (IEEE) of the payload bytes
//
// The payload is, in order: the KB name (u32 length + bytes); u32 counts
// of entities, attributes, relationships and distinct attribute values;
// u64 counts of attribute and relationship triples; six string tables
// (entity names, entity labels, entity types, attribute names,
// relationship names, attribute values); then the attribute triples as
// (u32 entity, u32 attr, u32 value-index) and the relationship triples
// as (u32 entity, u32 rel, u32 target entity), both in the KB's
// canonical iteration order. A string table is a u64 blob length, the
// concatenated string bytes, and n+1 u32 offsets delimiting the entries.
//
// Compatibility rules: the magic never changes; any change to the
// payload layout bumps the version, and ReadSnapshot either translates
// the old version explicitly or rejects it with a clear error — silent
// best-effort parsing is not an option. Readers validate everything:
// magic, version, flags, declared payload length against the file size,
// the CRC, and every internal offset and ID bound, so a truncated or
// bit-flipped file fails loudly instead of producing a subtly wrong KB.
// WriteSnapshotFile follows the repository's durability protocol (write
// to a temp file, fsync, rename, fsync the directory) so a crash never
// leaves a half-written snapshot under the final name.
package kb
