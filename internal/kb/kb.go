package kb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// EntityID identifies an entity within one KB. IDs are dense: the first
// added entity gets ID 0.
type EntityID int32

// AttrID identifies an attribute within one KB.
type AttrID int32

// RelID identifies a relationship within one KB.
type RelID int32

// NoEntity is returned by lookups that fail.
const NoEntity EntityID = -1

// AttrTriple is an attribute triple (entity, attribute, literal).
type AttrTriple struct {
	Subject EntityID
	Attr    AttrID
	Value   string
}

// RelTriple is a relationship triple (entity, relationship, entity).
type RelTriple struct {
	Subject EntityID
	Rel     RelID
	Object  EntityID
}

// KB is a single knowledge base. The zero value is not usable; construct
// with New. KB is not safe for concurrent mutation; concurrent reads are
// safe once construction finishes.
type KB struct {
	name string

	entityNames []string
	entityIdx   map[string]EntityID
	entityLabel []string // rdfs:label-like display label per entity
	entityType  []string // optional type tag (person, movie, ...) per entity

	attrNames []string
	attrIdx   map[string]AttrID

	relNames []string
	relIdx   map[string]RelID

	// attrValues[u][a] = sorted list of literal values.
	attrValues []map[AttrID][]string
	// relOut[u][r] = sorted list of object entities; relIn is the inverse.
	relOut []map[RelID][]EntityID
	relIn  []map[RelID][]EntityID

	nAttrTriples int
	nRelTriples  int
}

// New returns an empty KB with the given name (used in diagnostics and
// serialization headers).
func New(name string) *KB {
	return &KB{
		name:      name,
		entityIdx: make(map[string]EntityID),
		attrIdx:   make(map[string]AttrID),
		relIdx:    make(map[string]RelID),
	}
}

// Name returns the KB's name.
func (k *KB) Name() string { return k.name }

// AddEntity interns the entity named name and returns its ID; repeated
// calls with the same name return the same ID. The label defaults to the
// name until SetLabel is called.
func (k *KB) AddEntity(name string) EntityID {
	if id, ok := k.entityIdx[name]; ok {
		return id
	}
	id := EntityID(len(k.entityNames))
	k.entityIdx[name] = id
	k.entityNames = append(k.entityNames, name)
	k.entityLabel = append(k.entityLabel, name)
	k.entityType = append(k.entityType, "")
	k.attrValues = append(k.attrValues, nil)
	k.relOut = append(k.relOut, nil)
	k.relIn = append(k.relIn, nil)
	return id
}

// Entity returns the ID of the named entity, or NoEntity if absent.
func (k *KB) Entity(name string) EntityID {
	if id, ok := k.entityIdx[name]; ok {
		return id
	}
	return NoEntity
}

// EntityName returns the interned name of u.
func (k *KB) EntityName(u EntityID) string { return k.entityNames[u] }

// SetLabel sets the display label of u (the value compared during
// blocking). An empty label models the unlabeled entities observed on the
// D-Y dataset.
func (k *KB) SetLabel(u EntityID, label string) { k.entityLabel[u] = label }

// Label returns the display label of u.
func (k *KB) Label(u EntityID) string { return k.entityLabel[u] }

// SetType tags u with a type name (person, movie, city, ...). Types are
// used by partition-based baselines (HIKE/POWER/Corleone deployment) and by
// dataset generators; Remp itself never reads them.
func (k *KB) SetType(u EntityID, typ string) { k.entityType[u] = typ }

// Type returns the type tag of u ("" if untyped).
func (k *KB) Type(u EntityID) string { return k.entityType[u] }

// AddAttr interns an attribute name.
func (k *KB) AddAttr(name string) AttrID {
	if id, ok := k.attrIdx[name]; ok {
		return id
	}
	id := AttrID(len(k.attrNames))
	k.attrIdx[name] = id
	k.attrNames = append(k.attrNames, name)
	return id
}

// AttrName returns the interned name of a.
func (k *KB) AttrName(a AttrID) string { return k.attrNames[a] }

// Attr returns the ID of the named attribute, or -1.
func (k *KB) Attr(name string) AttrID {
	if id, ok := k.attrIdx[name]; ok {
		return id
	}
	return -1
}

// AddRel interns a relationship name.
func (k *KB) AddRel(name string) RelID {
	if id, ok := k.relIdx[name]; ok {
		return id
	}
	id := RelID(len(k.relNames))
	k.relIdx[name] = id
	k.relNames = append(k.relNames, name)
	return id
}

// RelName returns the interned name of r.
func (k *KB) RelName(r RelID) string { return k.relNames[r] }

// Rel returns the ID of the named relationship, or -1.
func (k *KB) Rel(name string) RelID {
	if id, ok := k.relIdx[name]; ok {
		return id
	}
	return -1
}

// AddAttrTriple records (u, a, value). Duplicate triples are ignored.
func (k *KB) AddAttrTriple(u EntityID, a AttrID, value string) {
	m := k.attrValues[u]
	if m == nil {
		m = make(map[AttrID][]string, 2)
		k.attrValues[u] = m
	}
	vals := m[a]
	i := sort.SearchStrings(vals, value)
	if i < len(vals) && vals[i] == value {
		return
	}
	vals = append(vals, "")
	copy(vals[i+1:], vals[i:])
	vals[i] = value
	m[a] = vals
	k.nAttrTriples++
}

// AddRelTriple records (u, r, v). Duplicate triples are ignored.
func (k *KB) AddRelTriple(u EntityID, r RelID, v EntityID) {
	if insertEntity(&k.relOut[u], r, v) {
		insertEntity(&k.relIn[v], r, u)
		k.nRelTriples++
	}
}

func insertEntity(mp *map[RelID][]EntityID, r RelID, v EntityID) bool {
	m := *mp
	if m == nil {
		m = make(map[RelID][]EntityID, 2)
		*mp = m
	}
	vals := m[r]
	i := sort.Search(len(vals), func(i int) bool { return vals[i] >= v })
	if i < len(vals) && vals[i] == v {
		return false
	}
	vals = append(vals, 0)
	copy(vals[i+1:], vals[i:])
	vals[i] = v
	m[r] = vals
	return true
}

// AttrValues returns the sorted literal value set N_a(u). The returned
// slice must not be modified.
func (k *KB) AttrValues(u EntityID, a AttrID) []string {
	if m := k.attrValues[u]; m != nil {
		return m[a]
	}
	return nil
}

// Attrs returns the sorted list of attributes for which u has at least one
// value.
func (k *KB) Attrs(u EntityID) []AttrID {
	m := k.attrValues[u]
	if len(m) == 0 {
		return nil
	}
	out := make([]AttrID, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Out returns the sorted relationship value set N_r(u) (objects of triples
// (u, r, ·)). The returned slice must not be modified.
func (k *KB) Out(u EntityID, r RelID) []EntityID {
	if m := k.relOut[u]; m != nil {
		return m[r]
	}
	return nil
}

// In returns the sorted set of subjects of triples (·, r, u).
func (k *KB) In(u EntityID, r RelID) []EntityID {
	if m := k.relIn[u]; m != nil {
		return m[r]
	}
	return nil
}

// OutRels returns the sorted relationships for which u has at least one
// outgoing triple.
func (k *KB) OutRels(u EntityID) []RelID {
	return relKeys(k.relOut[u])
}

// InRels returns the sorted relationships for which u has at least one
// incoming triple.
func (k *KB) InRels(u EntityID) []RelID {
	return relKeys(k.relIn[u])
}

func relKeys(m map[RelID][]EntityID) []RelID {
	if len(m) == 0 {
		return nil
	}
	out := make([]RelID, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasRelTriples reports whether u participates in any relationship triple
// in either direction. Entities for which this is false across both KBs
// form the isolated entity pairs handled by the random-forest fallback.
func (k *KB) HasRelTriples(u EntityID) bool {
	return len(k.relOut[u]) > 0 || len(k.relIn[u]) > 0
}

// NumEntities returns |U|.
func (k *KB) NumEntities() int { return len(k.entityNames) }

// NumAttrs returns |A|.
func (k *KB) NumAttrs() int { return len(k.attrNames) }

// NumRels returns |R|.
func (k *KB) NumRels() int { return len(k.relNames) }

// NumAttrTriples returns |T_attr|.
func (k *KB) NumAttrTriples() int { return k.nAttrTriples }

// NumRelTriples returns |T_rel|.
func (k *KB) NumRelTriples() int { return k.nRelTriples }

// Stats summarizes a KB for Table II-style reporting.
type Stats struct {
	Name        string
	Entities    int
	Attrs       int
	Rels        int
	AttrTriples int
	RelTriples  int
}

// Stats returns summary counts.
func (k *KB) Stats() Stats {
	return Stats{
		Name:        k.name,
		Entities:    k.NumEntities(),
		Attrs:       k.NumAttrs(),
		Rels:        k.NumRels(),
		AttrTriples: k.nAttrTriples,
		RelTriples:  k.nRelTriples,
	}
}

// String implements fmt.Stringer for Stats.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d entities, %d attrs, %d rels, %d attr triples, %d rel triples",
		s.Name, s.Entities, s.Attrs, s.Rels, s.AttrTriples, s.RelTriples)
}

// WriteTSV serializes the KB in a line-based format:
//
//	E <entity> <label> <type>
//	A <entity> <attribute> <value>
//	R <entity> <relationship> <entity>
//
// Fields are tab-separated; values may contain spaces but not tabs or
// newlines.
func (k *KB) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# kb\t%s\n", k.name)
	for u, name := range k.entityNames {
		fmt.Fprintf(bw, "E\t%s\t%s\t%s\n", name, k.entityLabel[u], k.entityType[u])
	}
	for u := range k.entityNames {
		for _, a := range k.Attrs(EntityID(u)) {
			for _, v := range k.AttrValues(EntityID(u), a) {
				fmt.Fprintf(bw, "A\t%s\t%s\t%s\n", k.entityNames[u], k.attrNames[a], v)
			}
		}
	}
	for u := range k.entityNames {
		for _, r := range k.OutRels(EntityID(u)) {
			for _, v := range k.Out(EntityID(u), r) {
				fmt.Fprintf(bw, "R\t%s\t%s\t%s\n", k.entityNames[u], k.relNames[r], k.entityNames[v])
			}
		}
	}
	return bw.Flush()
}

// ReadTSV parses the format written by WriteTSV.
func ReadTSV(r io.Reader) (*KB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	k := New("kb")
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			parts := strings.Split(text, "\t")
			if len(parts) == 2 && parts[0] == "# kb" {
				k.name = parts[1]
			}
			continue
		}
		parts := strings.Split(text, "\t")
		switch parts[0] {
		case "E":
			if len(parts) != 4 {
				return nil, fmt.Errorf("kb: line %d: E record needs 4 fields, got %d", line, len(parts))
			}
			id := k.AddEntity(parts[1])
			k.SetLabel(id, parts[2])
			k.SetType(id, parts[3])
		case "A":
			if len(parts) != 4 {
				return nil, fmt.Errorf("kb: line %d: A record needs 4 fields, got %d", line, len(parts))
			}
			k.AddAttrTriple(k.AddEntity(parts[1]), k.AddAttr(parts[2]), parts[3])
		case "R":
			if len(parts) != 4 {
				return nil, fmt.Errorf("kb: line %d: R record needs 4 fields, got %d", line, len(parts))
			}
			k.AddRelTriple(k.AddEntity(parts[1]), k.AddRel(parts[2]), k.AddEntity(parts[3]))
		default:
			return nil, fmt.Errorf("kb: line %d: unknown record type %q", line, parts[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kb: scan: %w", err)
	}
	return k, nil
}
