package kb

// TokenID is a dense interned token identifier. The pre-pipeline interns
// every label token once at load through a TokenDict and works on []TokenID
// everywhere downstream: posting lists, Jaccard intersections and block
// keys all compare 4-byte integers instead of re-hashing strings per pair.
type TokenID uint32

// TokenDict interns strings to dense TokenIDs. IDs are assigned in first-
// intern order starting at 0, so a dictionary built by one deterministic
// pass over a KB is itself deterministic. The zero value is not usable;
// construct with NewTokenDict. A TokenDict is safe for concurrent reads
// once interning finishes; Intern calls must not race with anything.
type TokenDict struct {
	idx   map[string]TokenID
	names []string
}

// NewTokenDict returns an empty dictionary.
func NewTokenDict() *TokenDict {
	return &TokenDict{idx: make(map[string]TokenID)}
}

// Intern returns the ID of tok, assigning the next dense ID on first
// sight.
func (d *TokenDict) Intern(tok string) TokenID {
	if id, ok := d.idx[tok]; ok {
		return id
	}
	id := TokenID(len(d.names))
	d.idx[tok] = id
	d.names = append(d.names, tok)
	return id
}

// ID returns the ID of tok and whether it has been interned.
func (d *TokenDict) ID(tok string) (TokenID, bool) {
	id, ok := d.idx[tok]
	return id, ok
}

// Name returns the string interned as id.
func (d *TokenDict) Name(id TokenID) string { return d.names[id] }

// Len returns the number of interned tokens.
func (d *TokenDict) Len() int { return len(d.names) }
