package kb

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample() *KB {
	k := New("yago")
	joan := k.AddEntity("y:Joan")
	k.SetLabel(joan, "Joan Crawford")
	k.SetType(joan, "person")
	nyc := k.AddEntity("y:NYC")
	k.SetLabel(nyc, "New York City")
	k.SetType(nyc, "city")
	cradle := k.AddEntity("y:Cradle")
	k.SetLabel(cradle, "Cradle of Champions")
	k.SetType(cradle, "movie")

	born := k.AddAttr("birthDate")
	k.AddAttrTriple(joan, born, "1904-03-23")

	wasBornIn := k.AddRel("wasBornIn")
	actedIn := k.AddRel("actedIn")
	k.AddRelTriple(joan, wasBornIn, nyc)
	k.AddRelTriple(joan, actedIn, cradle)
	return k
}

func TestAddAndLookupEntity(t *testing.T) {
	k := New("test")
	a := k.AddEntity("e1")
	b := k.AddEntity("e2")
	if a == b {
		t.Fatal("distinct entities share an ID")
	}
	if again := k.AddEntity("e1"); again != a {
		t.Errorf("re-adding e1: got %d, want %d", again, a)
	}
	if k.Entity("e1") != a || k.Entity("missing") != NoEntity {
		t.Error("Entity lookup wrong")
	}
	if k.EntityName(a) != "e1" {
		t.Errorf("EntityName = %q", k.EntityName(a))
	}
	if k.NumEntities() != 2 {
		t.Errorf("NumEntities = %d, want 2", k.NumEntities())
	}
}

func TestLabelsAndTypes(t *testing.T) {
	k := New("test")
	u := k.AddEntity("e")
	if k.Label(u) != "e" {
		t.Errorf("default label = %q, want entity name", k.Label(u))
	}
	k.SetLabel(u, "Display")
	k.SetType(u, "person")
	if k.Label(u) != "Display" || k.Type(u) != "person" {
		t.Error("SetLabel/SetType not reflected")
	}
}

func TestAttrTriples(t *testing.T) {
	k := New("test")
	u := k.AddEntity("e")
	a := k.AddAttr("name")
	k.AddAttrTriple(u, a, "bob")
	k.AddAttrTriple(u, a, "alice")
	k.AddAttrTriple(u, a, "bob") // duplicate
	vals := k.AttrValues(u, a)
	if len(vals) != 2 || vals[0] != "alice" || vals[1] != "bob" {
		t.Errorf("AttrValues = %v, want sorted unique [alice bob]", vals)
	}
	if k.NumAttrTriples() != 2 {
		t.Errorf("NumAttrTriples = %d, want 2", k.NumAttrTriples())
	}
	attrs := k.Attrs(u)
	if len(attrs) != 1 || attrs[0] != a {
		t.Errorf("Attrs = %v", attrs)
	}
	if got := k.AttrValues(u, k.AddAttr("other")); got != nil {
		t.Errorf("missing attribute should return nil, got %v", got)
	}
}

func TestRelTriples(t *testing.T) {
	k := buildSample()
	joan := k.Entity("y:Joan")
	nyc := k.Entity("y:NYC")
	born := k.Rel("wasBornIn")
	out := k.Out(joan, born)
	if len(out) != 1 || out[0] != nyc {
		t.Errorf("Out = %v", out)
	}
	in := k.In(nyc, born)
	if len(in) != 1 || in[0] != joan {
		t.Errorf("In = %v", in)
	}
	if !k.HasRelTriples(joan) || !k.HasRelTriples(nyc) {
		t.Error("HasRelTriples false for connected entities")
	}
	iso := k.AddEntity("y:Isolated")
	if k.HasRelTriples(iso) {
		t.Error("HasRelTriples true for isolated entity")
	}
	if k.NumRelTriples() != 2 {
		t.Errorf("NumRelTriples = %d, want 2", k.NumRelTriples())
	}
	rels := k.OutRels(joan)
	if len(rels) != 2 {
		t.Errorf("OutRels = %v, want two rels", rels)
	}
	if got := k.InRels(nyc); len(got) != 1 || got[0] != born {
		t.Errorf("InRels = %v", got)
	}
}

func TestDuplicateRelTripleIgnored(t *testing.T) {
	k := New("test")
	u, v := k.AddEntity("a"), k.AddEntity("b")
	r := k.AddRel("r")
	k.AddRelTriple(u, r, v)
	k.AddRelTriple(u, r, v)
	if k.NumRelTriples() != 1 {
		t.Errorf("duplicate triple counted: %d", k.NumRelTriples())
	}
	if got := k.Out(u, r); len(got) != 1 {
		t.Errorf("Out = %v", got)
	}
}

func TestStats(t *testing.T) {
	k := buildSample()
	s := k.Stats()
	if s.Entities != 3 || s.Attrs != 1 || s.Rels != 2 || s.AttrTriples != 1 || s.RelTriples != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if !strings.Contains(s.String(), "yago") {
		t.Errorf("Stats.String missing name: %q", s.String())
	}
}

func TestTSVRoundTrip(t *testing.T) {
	k := buildSample()
	var buf bytes.Buffer
	if err := k.WriteTSV(&buf); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	k2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if k2.Name() != "yago" {
		t.Errorf("round-trip name = %q", k2.Name())
	}
	if k2.NumEntities() != k.NumEntities() ||
		k2.NumAttrTriples() != k.NumAttrTriples() ||
		k2.NumRelTriples() != k.NumRelTriples() {
		t.Errorf("round-trip stats differ: %v vs %v", k2.Stats(), k.Stats())
	}
	joan := k2.Entity("y:Joan")
	if joan == NoEntity {
		t.Fatal("y:Joan missing after round trip")
	}
	if k2.Label(joan) != "Joan Crawford" || k2.Type(joan) != "person" {
		t.Errorf("label/type lost: %q %q", k2.Label(joan), k2.Type(joan))
	}
	born := k2.Rel("wasBornIn")
	if born < 0 {
		t.Fatal("wasBornIn missing")
	}
	if out := k2.Out(joan, born); len(out) != 1 || k2.EntityName(out[0]) != "y:NYC" {
		t.Errorf("rel triple lost: %v", out)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"E\tonly\ttwo",
		"A\ta\tb",
		"R\ta\tb",
		"X\ta\tb\tc",
	}
	for _, c := range cases {
		if _, err := ReadTSV(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("ReadTSV(%q) succeeded, want error", c)
		}
	}
	// Blank lines and comments are fine.
	if _, err := ReadTSV(strings.NewReader("\n# comment\n")); err != nil {
		t.Errorf("benign input rejected: %v", err)
	}
}

// Property: Out/In stay mutually consistent and sorted under random
// insertion orders.
func TestRelIndexConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := New("rand")
		const n = 20
		for i := 0; i < n; i++ {
			k.AddEntity(string(rune('a' + i)))
		}
		r := k.AddRel("r")
		type edge struct{ u, v EntityID }
		edges := map[edge]bool{}
		for i := 0; i < 60; i++ {
			u := EntityID(rng.Intn(n))
			v := EntityID(rng.Intn(n))
			k.AddRelTriple(u, r, v)
			edges[edge{u, v}] = true
		}
		if k.NumRelTriples() != len(edges) {
			return false
		}
		for e := range edges {
			if !containsEntity(k.Out(e.u, r), e.v) || !containsEntity(k.In(e.v, r), e.u) {
				return false
			}
		}
		for u := 0; u < n; u++ {
			if !sortedEntities(k.Out(EntityID(u), r)) || !sortedEntities(k.In(EntityID(u), r)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func containsEntity(s []EntityID, v EntityID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func sortedEntities(s []EntityID) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}
