package kb

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

var snapLiterals = []string{
	"", "hello world", "42", "3.14", "1999", "2001-05-03",
	"café naïve", "北京", "a\tb", "multi word value", "O'Neill", "🦀",
}

// randSnapKB builds a KB exercising every snapshot section: labels,
// types, multi-valued attributes, relations in both directions, unicode
// and empty strings.
func randSnapKB(r *rand.Rand, name string, n int) *KB {
	k := New(name)
	var attrs []AttrID
	for a := 0; a < 3; a++ {
		attrs = append(attrs, k.AddAttr(fmt.Sprintf("attr%d", a)))
	}
	var rels []RelID
	for i := 0; i < 2; i++ {
		rels = append(rels, k.AddRel(fmt.Sprintf("rel%d", i)))
	}
	for i := 0; i < n; i++ {
		u := k.AddEntity(fmt.Sprintf("%s:e%d", name, i))
		if r.Intn(4) > 0 {
			k.SetLabel(u, snapLiterals[r.Intn(len(snapLiterals))])
		}
		if r.Intn(3) == 0 {
			k.SetType(u, "type"+fmt.Sprint(r.Intn(3)))
		}
		for _, a := range attrs {
			for v := r.Intn(3); v > 0; v-- {
				k.AddAttrTriple(u, a, snapLiterals[r.Intn(len(snapLiterals))])
			}
		}
	}
	for i := 0; i < n*2; i++ {
		u := EntityID(r.Intn(n))
		v := EntityID(r.Intn(n))
		k.AddRelTriple(u, rels[r.Intn(len(rels))], v)
	}
	return k
}

// tsvOf canonicalizes a KB through its TSV serialization, which covers
// every field the snapshot must preserve.
func tsvOf(t *testing.T, k *KB) string {
	t.Helper()
	var b strings.Builder
	if err := k.WriteTSV(&b); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	return b.String()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 60} {
		r := rand.New(rand.NewSource(int64(n)))
		k := randSnapKB(r, "snapkb", n)
		var buf bytes.Buffer
		if err := k.WriteSnapshot(&buf); err != nil {
			t.Fatalf("n=%d WriteSnapshot: %v", n, err)
		}
		got, err := ReadSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("n=%d ReadSnapshot: %v", n, err)
		}
		if got.Name() != k.Name() {
			t.Fatalf("n=%d name %q != %q", n, got.Name(), k.Name())
		}
		if got.NumAttrTriples() != k.NumAttrTriples() || got.NumRelTriples() != k.NumRelTriples() {
			t.Fatalf("n=%d triple counts diverge", n)
		}
		if want, have := tsvOf(t, k), tsvOf(t, got); want != have {
			t.Fatalf("n=%d round-trip TSV diverges:\nwant:\n%s\ngot:\n%s", n, want, have)
		}
		// Index maps must be rebuilt: lookups by name resolve.
		for u := 0; u < k.NumEntities(); u++ {
			if got.Entity(k.EntityName(EntityID(u))) != EntityID(u) {
				t.Fatalf("n=%d entity index not rebuilt for %d", n, u)
			}
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	k := randSnapKB(r, "filekb", 20)
	path := filepath.Join(t.TempDir(), "kb"+SnapshotExt)
	if err := k.WriteSnapshotFile(path); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	got, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	if want, have := tsvOf(t, k), tsvOf(t, got); want != have {
		t.Fatal("file round-trip TSV diverges")
	}
}

// TestSnapshotRejectsCorruption: every single-byte flip and every
// truncation must fail loudly, never return a silently wrong KB.
func TestSnapshotRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	k := randSnapKB(r, "corrupt", 12)
	var buf bytes.Buffer
	if err := k.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	good := buf.Bytes()
	want := tsvOf(t, k)

	if _, err := ReadSnapshot(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := ReadSnapshot(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := ReadSnapshot(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	flipped := 0
	for i := 0; i < len(good); i++ {
		bad := append([]byte{}, good...)
		bad[i] ^= 0x40
		got, err := ReadSnapshot(bad)
		if err != nil {
			flipped++
			continue
		}
		// A flip the CRC cannot see does not exist; a flip that still
		// yields the same KB bytes would be a CRC collision miracle.
		if tsvOf(t, got) != want {
			t.Fatalf("flip at %d silently changed the KB", i)
		}
	}
	if flipped == 0 {
		t.Fatal("no byte flip was ever rejected")
	}
}
