package kb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The binary snapshot format is documented in doc.go ("The binary KB
// snapshot format"). Constants here pin the on-disk contract; bump
// snapshotVersion when the payload layout changes and teach ReadSnapshot
// to either translate or reject old versions explicitly.
const (
	snapshotMagic   = "REMPKB1\n"
	snapshotVersion = 1
	headerLen       = 32 // magic(8) + version(4) + flags(4) + payloadLen(8) + reserved(8)
	trailerLen      = 4  // crc32 (IEEE) of the payload
)

// SnapshotExt is the conventional file extension for binary KB snapshots.
const SnapshotExt = ".snap"

// snapshotSizes precomputes every section length so WriteSnapshot can
// stream the payload (header first, one pass, no whole-file buffering)
// while still declaring the payload length up front.
type snapshotSizes struct {
	payload uint64
	values  []string          // literal dictionary in first-use order
	valueID map[string]uint32 // value → dictionary index
}

func strTableSize(strs []string) uint64 {
	var blob uint64
	for _, s := range strs {
		blob += uint64(len(s))
	}
	// u64 blob length + blob + (n+1) u32 offsets.
	return 8 + blob + 4*uint64(len(strs)+1)
}

func (k *KB) snapshotSizes() *snapshotSizes {
	s := &snapshotSizes{valueID: make(map[string]uint32)}
	for u := range k.entityNames {
		for _, a := range k.Attrs(EntityID(u)) {
			for _, v := range k.AttrValues(EntityID(u), a) {
				if _, ok := s.valueID[v]; !ok {
					s.valueID[v] = uint32(len(s.values))
					s.values = append(s.values, v)
				}
			}
		}
	}
	s.payload = 4 + uint64(len(k.name)) // name
	s.payload += 4 * 4                  // entity/attr/rel/value counts
	s.payload += 8 * 2                  // attr/rel triple counts
	s.payload += strTableSize(k.entityNames)
	s.payload += strTableSize(k.entityLabel)
	s.payload += strTableSize(k.entityType)
	s.payload += strTableSize(k.attrNames)
	s.payload += strTableSize(k.relNames)
	s.payload += strTableSize(s.values)
	s.payload += 12 * uint64(k.nAttrTriples)
	s.payload += 12 * uint64(k.nRelTriples)
	return s
}

// snapWriter streams little-endian payload sections through a CRC.
type snapWriter struct {
	w       *bufio.Writer
	crc     uint32
	scratch [8]byte
	err     error
}

func (sw *snapWriter) bytes(b []byte) {
	if sw.err != nil {
		return
	}
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, b)
	_, sw.err = sw.w.Write(b)
}

func (sw *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(sw.scratch[:4], v)
	sw.bytes(sw.scratch[:4])
}

func (sw *snapWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(sw.scratch[:8], v)
	sw.bytes(sw.scratch[:8])
}

// strTable writes a string table: u64 blob length, the concatenated
// bytes, then n+1 u32 offsets delimiting each entry within the blob.
func (sw *snapWriter) strTable(strs []string) {
	var blob uint64
	for _, s := range strs {
		blob += uint64(len(s))
	}
	sw.u64(blob)
	for _, s := range strs {
		sw.bytes([]byte(s))
	}
	off := uint32(0)
	sw.u32(0)
	for _, s := range strs {
		off += uint32(len(s))
		sw.u32(off)
	}
}

// WriteSnapshot serializes the KB in the versioned binary snapshot format
// (see doc.go): a fixed header, a little-endian payload of string tables
// and dense triple arrays, and a CRC-32 trailer. The payload streams
// through w in one pass; nothing is buffered beyond bufio.
func (k *KB) WriteSnapshot(w io.Writer) error {
	sizes := k.snapshotSizes()
	bw := bufio.NewWriterSize(w, 1<<16)

	var hdr [headerLen]byte
	copy(hdr[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], snapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], 0) // flags, reserved
	binary.LittleEndian.PutUint64(hdr[16:24], sizes.payload)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("kb: snapshot header: %w", err)
	}

	sw := &snapWriter{w: bw}
	sw.u32(uint32(len(k.name)))
	sw.bytes([]byte(k.name))
	sw.u32(uint32(len(k.entityNames)))
	sw.u32(uint32(len(k.attrNames)))
	sw.u32(uint32(len(k.relNames)))
	sw.u32(uint32(len(sizes.values)))
	sw.u64(uint64(k.nAttrTriples))
	sw.u64(uint64(k.nRelTriples))
	sw.strTable(k.entityNames)
	sw.strTable(k.entityLabel)
	sw.strTable(k.entityType)
	sw.strTable(k.attrNames)
	sw.strTable(k.relNames)
	sw.strTable(sizes.values)
	for u := range k.entityNames {
		for _, a := range k.Attrs(EntityID(u)) {
			for _, v := range k.AttrValues(EntityID(u), a) {
				sw.u32(uint32(u))
				sw.u32(uint32(a))
				sw.u32(sizes.valueID[v])
			}
		}
	}
	for u := range k.entityNames {
		for _, r := range k.OutRels(EntityID(u)) {
			for _, v := range k.Out(EntityID(u), r) {
				sw.u32(uint32(u))
				sw.u32(uint32(r))
				sw.u32(uint32(v))
			}
		}
	}
	if sw.err != nil {
		return fmt.Errorf("kb: snapshot payload: %w", sw.err)
	}
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], sw.crc)
	if _, err := bw.Write(tr[:]); err != nil {
		return fmt.Errorf("kb: snapshot trailer: %w", err)
	}
	return bw.Flush()
}

// snapReader decodes payload sections with bounds checking; the first
// violation latches an error and every later read returns zero values.
type snapReader struct {
	data []byte
	pos  int
	err  error
}

func (sr *snapReader) fail(format string, args ...any) {
	if sr.err == nil {
		sr.err = fmt.Errorf("kb: snapshot: "+format, args...)
	}
}

func (sr *snapReader) take(n int) []byte {
	if sr.err != nil {
		return nil
	}
	if n < 0 || sr.pos+n > len(sr.data) {
		sr.fail("truncated payload: need %d bytes at offset %d of %d", n, sr.pos, len(sr.data))
		return nil
	}
	b := sr.data[sr.pos : sr.pos+n]
	sr.pos += n
	return b
}

func (sr *snapReader) u32() uint32 {
	b := sr.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (sr *snapReader) u64() uint64 {
	b := sr.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// strTable reads a table of n strings. All entries slice one shared
// backing string, so decoding allocates O(1) per table, not per entry.
func (sr *snapReader) strTable(n int) []string {
	blobLen := sr.u64()
	if sr.err != nil {
		return nil
	}
	if blobLen > uint64(len(sr.data)-sr.pos) {
		sr.fail("string blob of %d bytes overruns payload", blobLen)
		return nil
	}
	blob := string(sr.take(int(blobLen)))
	out := make([]string, n)
	prev := sr.u32()
	if prev != 0 {
		sr.fail("string table does not start at offset 0")
		return nil
	}
	for i := 0; i < n; i++ {
		end := sr.u32()
		if sr.err != nil {
			return nil
		}
		if end < prev || uint64(end) > blobLen {
			sr.fail("string table offset %d out of order (prev %d, blob %d)", end, prev, blobLen)
			return nil
		}
		out[i] = blob[prev:end]
		prev = end
	}
	if uint64(prev) != blobLen {
		sr.fail("string table covers %d of %d blob bytes", prev, blobLen)
		return nil
	}
	return out
}

// ReadSnapshot decodes a binary KB snapshot produced by WriteSnapshot,
// validating the magic, version, declared payload length, CRC, every
// section bound and the canonical triple ordering before trusting any of
// it. The returned KB is fully functional (all indexes rebuilt).
func ReadSnapshot(data []byte) (*KB, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("kb: snapshot: %d bytes is shorter than the %d-byte envelope", len(data), headerLen+trailerLen)
	}
	if string(data[:8]) != snapshotMagic {
		return nil, fmt.Errorf("kb: snapshot: bad magic %q (not a Remp KB snapshot)", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != snapshotVersion {
		return nil, fmt.Errorf("kb: snapshot: unsupported version %d (this build reads version %d)", v, snapshotVersion)
	}
	payloadLen := binary.LittleEndian.Uint64(data[16:24])
	if payloadLen != uint64(len(data)-headerLen-trailerLen) {
		return nil, fmt.Errorf("kb: snapshot: header declares %d payload bytes, file carries %d", payloadLen, len(data)-headerLen-trailerLen)
	}
	payload := data[headerLen : headerLen+int(payloadLen)]
	wantCRC := binary.LittleEndian.Uint32(data[headerLen+int(payloadLen):])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("kb: snapshot: payload CRC mismatch (want %08x, got %08x): file is corrupt", wantCRC, got)
	}

	sr := &snapReader{data: payload}
	name := string(sr.take(int(sr.u32())))
	nEntities := int(sr.u32())
	nAttrs := int(sr.u32())
	nRels := int(sr.u32())
	nValues := int(sr.u32())
	nAttrTriples := sr.u64()
	nRelTriples := sr.u64()
	if sr.err != nil {
		return nil, sr.err
	}
	if want := 12*(nAttrTriples+nRelTriples) +
		strTableSizeBound(nEntities)*3 + strTableSizeBound(nAttrs) +
		strTableSizeBound(nRels) + strTableSizeBound(nValues); want > uint64(len(payload)) {
		return nil, fmt.Errorf("kb: snapshot: declared counts need at least %d payload bytes, have %d", want, len(payload))
	}

	k := New(name)
	k.entityNames = sr.strTable(nEntities)
	k.entityLabel = sr.strTable(nEntities)
	k.entityType = sr.strTable(nEntities)
	k.attrNames = sr.strTable(nAttrs)
	k.relNames = sr.strTable(nRels)
	values := sr.strTable(nValues)
	if sr.err != nil {
		return nil, sr.err
	}
	for i, n := range k.entityNames {
		if _, dup := k.entityIdx[n]; dup {
			return nil, fmt.Errorf("kb: snapshot: duplicate entity name %q", n)
		}
		k.entityIdx[n] = EntityID(i)
	}
	for i, n := range k.attrNames {
		k.attrIdx[n] = AttrID(i)
	}
	for i, n := range k.relNames {
		k.relIdx[n] = RelID(i)
	}
	k.attrValues = make([]map[AttrID][]string, nEntities)
	k.relOut = make([]map[RelID][]EntityID, nEntities)
	k.relIn = make([]map[RelID][]EntityID, nEntities)

	// Attribute triples arrive in canonical (entity, attribute, value)
	// order, so value lists rebuild by direct append — the order check
	// doubles as the duplicate check.
	var prevU, prevA, prevV uint32
	for i := uint64(0); i < nAttrTriples; i++ {
		u, a, vi := sr.u32(), sr.u32(), sr.u32()
		if sr.err != nil {
			return nil, sr.err
		}
		if int(u) >= nEntities || int(a) >= nAttrs || int(vi) >= nValues {
			return nil, fmt.Errorf("kb: snapshot: attr triple %d (%d,%d,%d) out of range", i, u, a, vi)
		}
		if i > 0 && !attrTripleLess(prevU, prevA, values[prevV], u, a, values[vi]) {
			return nil, fmt.Errorf("kb: snapshot: attr triple %d out of canonical order", i)
		}
		m := k.attrValues[u]
		if m == nil {
			m = make(map[AttrID][]string, 2)
			k.attrValues[u] = m
		}
		m[AttrID(a)] = append(m[AttrID(a)], values[vi])
		prevU, prevA, prevV = u, a, vi
	}
	k.nAttrTriples = int(nAttrTriples)

	var pu, pr, pv uint32
	for i := uint64(0); i < nRelTriples; i++ {
		u, r, v := sr.u32(), sr.u32(), sr.u32()
		if sr.err != nil {
			return nil, sr.err
		}
		if int(u) >= nEntities || int(r) >= nRels || int(v) >= nEntities {
			return nil, fmt.Errorf("kb: snapshot: rel triple %d (%d,%d,%d) out of range", i, u, r, v)
		}
		if i > 0 && !tripleLess(pu, pr, pv, u, r, v) {
			return nil, fmt.Errorf("kb: snapshot: rel triple %d out of canonical order", i)
		}
		mo := k.relOut[u]
		if mo == nil {
			mo = make(map[RelID][]EntityID, 2)
			k.relOut[u] = mo
		}
		mo[RelID(r)] = append(mo[RelID(r)], EntityID(v))
		mi := k.relIn[v]
		if mi == nil {
			mi = make(map[RelID][]EntityID, 2)
			k.relIn[v] = mi
		}
		mi[RelID(r)] = append(mi[RelID(r)], EntityID(u))
		pu, pr, pv = u, r, v
	}
	k.nRelTriples = int(nRelTriples)
	if sr.pos != len(payload) {
		return nil, fmt.Errorf("kb: snapshot: %d trailing payload bytes", len(payload)-sr.pos)
	}
	// Incoming lists appended in subject order are sorted per (object,
	// rel) only within one subject sweep; verify globally (cheap, and the
	// blocking/propagation layers rely on it).
	for v := range k.relIn {
		for r, subs := range k.relIn[v] {
			if !sort.SliceIsSorted(subs, func(i, j int) bool { return subs[i] < subs[j] }) {
				return nil, fmt.Errorf("kb: snapshot: incoming list of entity %d rel %d not sorted", v, r)
			}
		}
	}
	return k, nil
}

// strTableSizeBound is the minimal byte size of an n-entry string table
// (empty blob), used for a cheap up-front sanity bound on declared counts.
func strTableSizeBound(n int) uint64 { return 8 + 4*uint64(n+1) }

func attrTripleLess(u1, a1 uint32, v1 string, u2, a2 uint32, v2 string) bool {
	if u1 != u2 {
		return u1 < u2
	}
	if a1 != a2 {
		return a1 < a2
	}
	return v1 < v2
}

func tripleLess(u1, r1, v1, u2, r2, v2 uint32) bool {
	if u1 != u2 {
		return u1 < u2
	}
	if r1 != r2 {
		return r1 < r2
	}
	return v1 < v2
}

// OpenSnapshot reads and validates a snapshot file written by
// WriteSnapshotFile. The whole file is read in one syscall and decoded
// over the single buffer (string tables slice it rather than copying
// entry by entry), so reopening a large KB is I/O-bound, not parse-bound.
func OpenSnapshot(path string) (*KB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	k, err := ReadSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return k, nil
}

// WriteSnapshotFile atomically writes the KB snapshot to path using the
// repo's durable-write protocol: tmp file, fsync, rename over the target,
// directory fsync. A crash at any boundary leaves either the old file or
// the new one, never a torn snapshot.
func (k *KB) WriteSnapshotFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := k.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
