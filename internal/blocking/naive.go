package blocking

import (
	"runtime"
	"sort"

	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/strsim"
)

// parallelChunks is how many contiguous K1 ranges Generate fans out when a
// Runner is supplied. One chunk per CPU keeps the per-chunk seen arrays
// (4 bytes × |K2| each) proportional to real parallelism; the chunk count
// never affects the result.
var parallelChunks = runtime.NumCPU()

// GenerateNaive is the retained per-pair string implementation of
// candidate generation. It is the semantic anchor for Generate: the
// property tests require both paths to return byte-identical results on
// randomized KBs, the same way InferAllFW anchors the CSR propagation
// engine. It allocates per pair and should not be used at scale.
func GenerateNaive(k1, k2 *kb.KB, opts Options) *Result {
	if opts.Threshold <= 0 {
		opts.Threshold = 0.3
	}

	tokens1 := tokenizeAll(k1)
	tokens2 := tokenizeAll(k2)

	// Inverted index over K2 tokens.
	index := make(map[string][]kb.EntityID)
	for u2, toks := range tokens2 {
		for _, t := range toks {
			index[t] = append(index[t], kb.EntityID(u2))
		}
	}

	res := &Result{Priors: make(map[pair.Pair]float64)}
	seen := make(map[pair.Pair]struct{})
	for u1, toks1 := range tokens1 {
		if len(toks1) == 0 {
			continue
		}
		for _, t := range toks1 {
			postings := index[t]
			if opts.MaxTokenPostings > 0 && len(postings) > opts.MaxTokenPostings {
				continue
			}
			for _, u2 := range postings {
				p := pair.Pair{U1: kb.EntityID(u1), U2: u2}
				if _, ok := seen[p]; ok {
					continue
				}
				seen[p] = struct{}{}
				sim := strsim.Jaccard(toks1, tokens2[u2])
				if sim < opts.Threshold {
					continue
				}
				res.Candidates = append(res.Candidates, Candidate{Pair: p, Prior: sim})
				res.Priors[p] = sim
				if sim == 1 && exactLabel(k1, k2, p) {
					res.Initial = append(res.Initial, p)
				}
			}
		}
	}

	sort.Slice(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].Pair.Less(res.Candidates[j].Pair)
	})
	sort.Slice(res.Initial, func(i, j int) bool {
		return res.Initial[i].Less(res.Initial[j])
	})
	return res
}

func tokenizeAll(k *kb.KB) [][]string {
	out := make([][]string, k.NumEntities())
	for u := 0; u < k.NumEntities(); u++ {
		out[u] = strsim.TokenSet(k.Label(kb.EntityID(u)))
	}
	return out
}
