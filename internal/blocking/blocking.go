// Package blocking implements candidate entity match generation (§IV-B):
// entity labels are normalized and tokenized, a token inverted index pairs
// up entities sharing at least one token, and pairs whose label Jaccard
// similarity falls below a threshold are pruned. Label similarities double
// as prior match probabilities Pr[m_p]. The subset of candidates whose
// normalized labels are exactly equal forms the initial match set Min used
// for attribute/relationship calibration (§IV-C, §V-A).
package blocking

import (
	"sort"

	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/strsim"
)

// Candidate is a candidate entity match with its label-similarity prior.
type Candidate struct {
	Pair  pair.Pair
	Prior float64 // label Jaccard similarity, used as Pr[m_p]
}

// Result holds the outputs of candidate generation.
type Result struct {
	// Candidates is Mc, sorted by pair for determinism.
	Candidates []Candidate
	// Initial is Min ⊆ Mc: pairs whose normalized labels match exactly.
	Initial []pair.Pair
	// Priors maps every candidate pair to its prior probability.
	Priors map[pair.Pair]float64
}

// Options configures candidate generation.
type Options struct {
	// Threshold is the minimal label Jaccard similarity to keep a pair.
	// The paper uses 0.3.
	Threshold float64
	// MaxTokenPostings caps the posting-list length of a token; tokens more
	// frequent than this are treated as stop words during pairing (they
	// still count toward Jaccard). 0 means no cap.
	MaxTokenPostings int
}

// DefaultOptions mirrors the paper's setup (threshold 0.3).
func DefaultOptions() Options {
	return Options{Threshold: 0.3, MaxTokenPostings: 0}
}

// Generate produces the candidate match set Mc between k1 and k2.
func Generate(k1, k2 *kb.KB, opts Options) *Result {
	if opts.Threshold <= 0 {
		opts.Threshold = 0.3
	}

	tokens1 := tokenizeAll(k1)
	tokens2 := tokenizeAll(k2)

	// Inverted index over K2 tokens.
	index := make(map[string][]kb.EntityID)
	for u2, toks := range tokens2 {
		for _, t := range toks {
			index[t] = append(index[t], kb.EntityID(u2))
		}
	}

	res := &Result{Priors: make(map[pair.Pair]float64)}
	seen := make(map[pair.Pair]struct{})
	for u1, toks1 := range tokens1 {
		if len(toks1) == 0 {
			continue
		}
		for _, t := range toks1 {
			postings := index[t]
			if opts.MaxTokenPostings > 0 && len(postings) > opts.MaxTokenPostings {
				continue
			}
			for _, u2 := range postings {
				p := pair.Pair{U1: kb.EntityID(u1), U2: u2}
				if _, ok := seen[p]; ok {
					continue
				}
				seen[p] = struct{}{}
				sim := strsim.Jaccard(toks1, tokens2[u2])
				if sim < opts.Threshold {
					continue
				}
				res.Candidates = append(res.Candidates, Candidate{Pair: p, Prior: sim})
				res.Priors[p] = sim
				if sim == 1 && exactLabel(k1, k2, p) {
					res.Initial = append(res.Initial, p)
				}
			}
		}
	}

	sort.Slice(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].Pair.Less(res.Candidates[j].Pair)
	})
	sort.Slice(res.Initial, func(i, j int) bool {
		return res.Initial[i].Less(res.Initial[j])
	})
	return res
}

// exactLabel reports whether the two entities have identical normalized
// labels (the paper's criterion for initial entity matches).
func exactLabel(k1, k2 *kb.KB, p pair.Pair) bool {
	l1 := strsim.Normalize(k1.Label(p.U1))
	l2 := strsim.Normalize(k2.Label(p.U2))
	return l1 != "" && l1 == l2
}

func tokenizeAll(k *kb.KB) [][]string {
	out := make([][]string, k.NumEntities())
	for u := 0; u < k.NumEntities(); u++ {
		out[u] = strsim.TokenSet(k.Label(kb.EntityID(u)))
	}
	return out
}

// CandidateSet converts the candidate list into a pair.Set.
func (r *Result) CandidateSet() pair.Set {
	s := make(pair.Set, len(r.Candidates))
	for _, c := range r.Candidates {
		s.Add(c.Pair)
	}
	return s
}

// CandidatesOf returns the candidates involving entity u1 from K1, in
// deterministic order. It is a convenience for per-entity blocking
// analysis.
func (r *Result) CandidatesOf(u1 kb.EntityID) []Candidate {
	var out []Candidate
	for _, c := range r.Candidates {
		if c.Pair.U1 == u1 {
			out = append(out, c)
		}
	}
	return out
}
