// Package blocking implements candidate entity match generation (§IV-B):
// entity labels are normalized and tokenized, a token inverted index pairs
// up entities sharing at least one token, and pairs whose label Jaccard
// similarity falls below a threshold are pruned. Label similarities double
// as prior match probabilities Pr[m_p]. The subset of candidates whose
// normalized labels are exactly equal forms the initial match set Min used
// for attribute/relationship calibration (§IV-C, §V-A).
//
// Generate runs the index-driven path: tokens are interned to dense IDs
// through a kb.TokenDict, posting lists hold entity IDs instead of
// strings, a min/max length bound skips intersections that cannot reach
// the threshold, and independent K1 entities are scanned in parallel when
// Options.Runner is set. Its output is byte-identical to GenerateNaive,
// the retained per-pair string implementation that anchors the property
// tests.
package blocking

import (
	"sort"

	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/strsim"
)

// Candidate is a candidate entity match with its label-similarity prior.
type Candidate struct {
	Pair  pair.Pair
	Prior float64 // label Jaccard similarity, used as Pr[m_p]
}

// Result holds the outputs of candidate generation.
type Result struct {
	// Candidates is Mc, sorted by pair for determinism.
	Candidates []Candidate
	// Initial is Min ⊆ Mc: pairs whose normalized labels match exactly.
	Initial []pair.Pair
	// Priors maps every candidate pair to its prior probability.
	Priors map[pair.Pair]float64
}

// Runner runs n independent tasks, possibly in parallel. *core.Scheduler
// satisfies it; blocking declares its own interface because core imports
// this package.
type Runner interface {
	ForEach(n int, fn func(i int))
}

// Options configures candidate generation.
type Options struct {
	// Threshold is the minimal label Jaccard similarity to keep a pair.
	// The paper uses 0.3.
	Threshold float64
	// MaxTokenPostings caps the posting-list length of a token; tokens more
	// frequent than this are treated as stop words during pairing (they
	// still count toward Jaccard). 0 means no cap.
	MaxTokenPostings int
	// Runner, when non-nil, scans K1 entities in parallel (one contiguous
	// chunk per scheduler slot). The result is identical either way; nil
	// means serial.
	Runner Runner
}

// DefaultOptions mirrors the paper's setup (threshold 0.3).
func DefaultOptions() Options {
	return Options{Threshold: 0.3, MaxTokenPostings: 0}
}

// Generate produces the candidate match set Mc between k1 and k2 using the
// interned-token inverted index. Candidates, priors and initial matches
// are byte-identical to GenerateNaive on the same inputs.
func Generate(k1, k2 *kb.KB, opts Options) *Result {
	if opts.Threshold <= 0 {
		opts.Threshold = 0.3
	}

	dict := kb.NewTokenDict()
	toks1 := internAll(k1, dict)
	toks2 := internAll(k2, dict)

	// Inverted index over K2 tokens: posting lists of K2 entity IDs in
	// ascending order, indexed by dense token ID.
	postings := make([][]kb.EntityID, dict.Len())
	for u2, toks := range toks2 {
		for _, t := range toks {
			postings[t] = append(postings[t], kb.EntityID(u2))
		}
	}

	n1 := len(toks1)
	chunks := chunkRanges(n1, opts.Runner)
	parts := make([]scanScratch, len(chunks))
	run(opts.Runner, len(chunks), func(ci int) {
		sc := &parts[ci]
		sc.seen = make([]uint32, len(toks2))
		for u1 := chunks[ci].lo; u1 < chunks[ci].hi; u1++ {
			scanEntity(sc, u1, toks1[u1], toks2, postings, k1, k2, opts)
		}
	})

	res := &Result{Priors: make(map[pair.Pair]float64)}
	for i := range parts {
		res.Candidates = append(res.Candidates, parts[i].cands...)
		res.Initial = append(res.Initial, parts[i].initial...)
	}
	for _, c := range res.Candidates {
		res.Priors[c.Pair] = c.Prior
	}
	sort.Slice(res.Candidates, func(i, j int) bool {
		return res.Candidates[i].Pair.Less(res.Candidates[j].Pair)
	})
	sort.Slice(res.Initial, func(i, j int) bool {
		return res.Initial[i].Less(res.Initial[j])
	})
	return res
}

// scanScratch is the per-chunk state of the parallel scan: an epoch-
// stamped seen array (O(1) reset per K1 entity) and the chunk's result
// buffers, merged serially afterwards.
type scanScratch struct {
	seen    []uint32
	epoch   uint32
	cands   []Candidate
	initial []pair.Pair
}

// scanEntity emits every candidate (u1, ·) into sc. A pair is scored the
// first time any shared token reaches it; the similarity itself does not
// depend on which token that was, so the emitted set matches the naive
// scan exactly.
func scanEntity(sc *scanScratch, u1 int, t1 []kb.TokenID, toks2 [][]kb.TokenID,
	postings [][]kb.EntityID, k1, k2 *kb.KB, opts Options) {
	if len(t1) == 0 {
		return
	}
	sc.epoch++
	for _, t := range t1 {
		ps := postings[t]
		if opts.MaxTokenPostings > 0 && len(ps) > opts.MaxTokenPostings {
			continue
		}
		for _, u2 := range ps {
			if sc.seen[u2] == sc.epoch {
				continue
			}
			sc.seen[u2] = sc.epoch
			t2 := toks2[u2]
			// min/max is the best Jaccard these set sizes allow; IEEE
			// division is monotone, so skipping here can never drop a
			// pair the exact comparison below would keep.
			if jaccardUpperBoundIDs(len(t1), len(t2)) < opts.Threshold {
				continue
			}
			sim := jaccardIDs(t1, t2)
			if sim < opts.Threshold {
				continue
			}
			p := pair.Pair{U1: kb.EntityID(u1), U2: u2}
			sc.cands = append(sc.cands, Candidate{Pair: p, Prior: sim})
			if sim == 1 && exactLabel(k1, k2, p) {
				sc.initial = append(sc.initial, p)
			}
		}
	}
}

// jaccardIDs is strsim.JaccardIDs over kb.TokenID sets; set sizes and
// intersection sizes match the string token sets exactly, so the float is
// byte-identical to strsim.Jaccard on the naive path.
//
//remp:hotpath
func jaccardIDs(a, b []kb.TokenID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

//remp:hotpath
func jaccardUpperBoundIDs(la, lb int) float64 {
	return strsim.JaccardUpperBound(la, lb)
}

// internAll tokenizes every entity label and interns the tokens, returning
// per-entity ascending TokenID sets.
func internAll(k *kb.KB, dict *kb.TokenDict) [][]kb.TokenID {
	out := make([][]kb.TokenID, k.NumEntities())
	for u := 0; u < k.NumEntities(); u++ {
		set := strsim.TokenSet(k.Label(kb.EntityID(u)))
		if len(set) == 0 {
			continue
		}
		ids := make([]kb.TokenID, len(set))
		for i, t := range set {
			ids[i] = dict.Intern(t)
		}
		sortTokenIDs(ids)
		out[u] = ids
	}
	return out
}

func sortTokenIDs(a []kb.TokenID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// chunkRange is a half-open [lo, hi) range of K1 entity IDs.
type chunkRange struct{ lo, hi int }

// chunkRanges splits n entities into contiguous chunks: one per scheduler
// slot when a runner is present, a single chunk otherwise. Entity scan
// cost is homogeneous, so equal-size chunks balance well.
func chunkRanges(n int, r Runner) []chunkRange {
	if n == 0 {
		return nil
	}
	nc := 1
	if r != nil {
		nc = parallelChunks
		if nc > n {
			nc = n
		}
	}
	out := make([]chunkRange, nc)
	for i := 0; i < nc; i++ {
		out[i] = chunkRange{lo: i * n / nc, hi: (i + 1) * n / nc}
	}
	return out
}

// run executes fn(0..n-1) through r, or serially when r is nil.
func run(r Runner, n int, fn func(int)) {
	if r == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	r.ForEach(n, fn)
}

// exactLabel reports whether the two entities have identical normalized
// labels (the paper's criterion for initial entity matches).
func exactLabel(k1, k2 *kb.KB, p pair.Pair) bool {
	l1 := strsim.Normalize(k1.Label(p.U1))
	l2 := strsim.Normalize(k2.Label(p.U2))
	return l1 != "" && l1 == l2
}

// CandidateSet converts the candidate list into a pair.Set.
func (r *Result) CandidateSet() pair.Set {
	s := make(pair.Set, len(r.Candidates))
	for _, c := range r.Candidates {
		s.Add(c.Pair)
	}
	return s
}

// CandidatesOf returns the candidates involving entity u1 from K1, in
// deterministic order. It is a convenience for per-entity blocking
// analysis.
func (r *Result) CandidatesOf(u1 kb.EntityID) []Candidate {
	var out []Candidate
	for _, c := range r.Candidates {
		if c.Pair.U1 == u1 {
			out = append(out, c)
		}
	}
	return out
}
