package blocking

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/kb"
)

// wideRunner runs every task on its own goroutine, maximizing interleaving
// so the equivalence tests double as race tests under -race.
type wideRunner struct{}

func (wideRunner) ForEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// hostileTokens exercises normalization edge cases: unicode casing,
// combining marks, CJK, punctuation runs, stemming suffixes, digits and
// date-shaped tokens.
var hostileTokens = []string{
	"joan", "crawford", "new", "york", "city", "champions",
	"cities", "running", "matched", "glasses", "focus",
	"ÉTÉ", "café", "Ångström", "北京", "東京都", "naïve",
	"O'Neill", "rock-n-roll", "a", "I", "x1",
	"1999", "2001-05-03", "3.14", "-42",
	"ligature­soft", "éclair", "🦀", "½",
	"supercalifragilisticexpialidocious",
}

// randLabel builds a label of 0–5 tokens joined by hostile separators.
func randLabel(r *rand.Rand) string {
	n := r.Intn(6)
	if n == 0 {
		return ""
	}
	seps := []string{" ", "  ", ", ", " - ", "\t", "/"}
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += seps[r.Intn(len(seps))]
		}
		out += hostileTokens[r.Intn(len(hostileTokens))]
	}
	return out
}

func randLabeledKB(r *rand.Rand, name string, n int) *kb.KB {
	k := kb.New(name)
	for i := 0; i < n; i++ {
		id := k.AddEntity(fmt.Sprintf("%s:e%d", name, i))
		k.SetLabel(id, randLabel(r))
	}
	return k
}

// TestGenerateMatchesNaive is the property test anchoring the indexed
// path: on randomized KBs with hostile labels, Generate and GenerateNaive
// must return byte-identical results — same candidates, same float
// priors, same initial matches — serial and parallel.
func TestGenerateMatchesNaive(t *testing.T) {
	sizes := []struct{ n1, n2 int }{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {5, 7}, {40, 40}, {150, 90},
	}
	optVariants := []Options{
		{},
		{Threshold: 0.3},
		{Threshold: 0.5, MaxTokenPostings: 3},
		{Threshold: 0.2, MaxTokenPostings: 1},
		{Threshold: 1},
	}
	for si, sz := range sizes {
		for oi, base := range optVariants {
			for seed := int64(0); seed < 3; seed++ {
				r := rand.New(rand.NewSource(seed*1000 + int64(si*10+oi)))
				k1 := randLabeledKB(r, "k1", sz.n1)
				k2 := randLabeledKB(r, "k2", sz.n2)
				want := GenerateNaive(k1, k2, base)

				serial := base
				got := Generate(k1, k2, serial)
				assertSameResult(t, fmt.Sprintf("serial size=%v opts=%d seed=%d", sz, oi, seed), want, got)

				par := base
				par.Runner = wideRunner{}
				got = Generate(k1, k2, par)
				assertSameResult(t, fmt.Sprintf("parallel size=%v opts=%d seed=%d", sz, oi, seed), want, got)
			}
		}
	}
}

func assertSameResult(t *testing.T, ctx string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Candidates, got.Candidates) {
		t.Fatalf("%s: candidates diverge\nnaive:   %v\nindexed: %v", ctx, want.Candidates, got.Candidates)
	}
	if !reflect.DeepEqual(want.Initial, got.Initial) {
		t.Fatalf("%s: initial matches diverge\nnaive:   %v\nindexed: %v", ctx, want.Initial, got.Initial)
	}
	if !reflect.DeepEqual(want.Priors, got.Priors) {
		t.Fatalf("%s: priors diverge", ctx)
	}
}
