package blocking

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/datasets"
)

// The blocking benchmark family measures candidate generation on the
// scale stress dataset (the workload behind the 1M-entity Prepare
// benchmark) at a size where the retained naive path is still cheap
// enough to benchmark alongside, so benchreport gates the indexed path's
// advantage release over release.

const benchScale = 5_000

// chunkRunner is a minimal Runner for benchmarks: it fans the tasks out
// over NumCPU goroutines, the same shape core.Scheduler provides in the
// real pipeline (which blocking cannot import without a cycle).
type chunkRunner struct{}

func (chunkRunner) ForEach(n int, fn func(i int)) {
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

func BenchmarkGenerateIndexed(b *testing.B) {
	ds := datasets.Scale(1, benchScale)
	opts := Options{Threshold: 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Generate(ds.K1, ds.K2, opts)
		if len(r.Candidates) == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkGenerateIndexedParallel(b *testing.B) {
	ds := datasets.Scale(1, benchScale)
	opts := Options{Threshold: 0.3, Runner: chunkRunner{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Generate(ds.K1, ds.K2, opts)
		if len(r.Candidates) == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkGenerateNaive(b *testing.B) {
	ds := datasets.Scale(1, benchScale)
	opts := Options{Threshold: 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := GenerateNaive(ds.K1, ds.K2, opts)
		if len(r.Candidates) == 0 {
			b.Fatal("no candidates")
		}
	}
}
