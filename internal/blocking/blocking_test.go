package blocking

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/strsim"
)

func twoKBs() (*kb.KB, *kb.KB) {
	k1 := kb.New("yago")
	k2 := kb.New("dbpedia")

	add := func(k *kb.KB, name, label string) kb.EntityID {
		id := k.AddEntity(name)
		k.SetLabel(id, label)
		return id
	}
	add(k1, "y:Joan", "Joan Crawford")
	add(k1, "y:NYC", "New York City")
	add(k1, "y:Cradle", "Cradle of Champions")
	add(k2, "d:Joan", "Joan Crawford")
	add(k2, "d:NYC", "New York")
	add(k2, "d:Cradle", "The Cradle of Champions")
	add(k2, "d:Zurich", "Zurich")
	return k1, k2
}

func TestGenerateFindsExpectedPairs(t *testing.T) {
	k1, k2 := twoKBs()
	res := Generate(k1, k2, DefaultOptions())
	set := res.CandidateSet()

	joan := pair.Pair{U1: k1.Entity("y:Joan"), U2: k2.Entity("d:Joan")}
	nyc := pair.Pair{U1: k1.Entity("y:NYC"), U2: k2.Entity("d:NYC")}
	cradle := pair.Pair{U1: k1.Entity("y:Cradle"), U2: k2.Entity("d:Cradle")}
	for _, p := range []pair.Pair{joan, nyc, cradle} {
		if !set.Has(p) {
			t.Errorf("expected candidate %v missing", p)
		}
	}
	// Zurich shares no token with anything in K1.
	for _, c := range res.Candidates {
		if c.Pair.U2 == k2.Entity("d:Zurich") {
			t.Errorf("Zurich should not be a candidate: %v", c)
		}
	}
}

func TestPriorsAreLabelJaccard(t *testing.T) {
	k1, k2 := twoKBs()
	res := Generate(k1, k2, DefaultOptions())
	joan := pair.Pair{U1: k1.Entity("y:Joan"), U2: k2.Entity("d:Joan")}
	if got := res.Priors[joan]; got != 1 {
		t.Errorf("identical labels: prior = %v, want 1", got)
	}
	nyc := pair.Pair{U1: k1.Entity("y:NYC"), U2: k2.Entity("d:NYC")}
	want := strsim.Jaccard(strsim.TokenSet("New York City"), strsim.TokenSet("New York"))
	if got := res.Priors[nyc]; math.Abs(got-want) > 1e-12 {
		t.Errorf("NYC prior = %v, want %v", got, want)
	}
}

func TestInitialMatchesAreExactLabels(t *testing.T) {
	k1, k2 := twoKBs()
	res := Generate(k1, k2, DefaultOptions())
	if len(res.Initial) != 1 {
		t.Fatalf("Initial = %v, want exactly the Joan pair", res.Initial)
	}
	joan := pair.Pair{U1: k1.Entity("y:Joan"), U2: k2.Entity("d:Joan")}
	if res.Initial[0] != joan {
		t.Errorf("Initial[0] = %v, want %v", res.Initial[0], joan)
	}
}

func TestThresholdPrunes(t *testing.T) {
	k1, k2 := twoKBs()
	strict := Generate(k1, k2, Options{Threshold: 0.95})
	for _, c := range strict.Candidates {
		if c.Prior < 0.95 {
			t.Errorf("candidate below threshold survived: %+v", c)
		}
	}
	loose := Generate(k1, k2, Options{Threshold: 0.05})
	if len(loose.Candidates) < len(strict.Candidates) {
		t.Errorf("loose threshold produced fewer candidates (%d < %d)",
			len(loose.Candidates), len(strict.Candidates))
	}
}

func TestEmptyLabelsNeverBlock(t *testing.T) {
	k1 := kb.New("a")
	k2 := kb.New("b")
	u1 := k1.AddEntity("e1")
	k1.SetLabel(u1, "")
	u2 := k2.AddEntity("e2")
	k2.SetLabel(u2, "")
	res := Generate(k1, k2, DefaultOptions())
	if len(res.Candidates) != 0 {
		t.Errorf("unlabeled entities blocked together: %v", res.Candidates)
	}
}

func TestMaxTokenPostingsCap(t *testing.T) {
	k1 := kb.New("a")
	k2 := kb.New("b")
	// 30 K2 entities all share the token "common"; pairing through it is
	// suppressed by the cap, and they share nothing else.
	u := k1.AddEntity("x")
	k1.SetLabel(u, "common")
	for i := 0; i < 30; i++ {
		id := k2.AddEntity(fmt.Sprintf("y%d", i))
		k2.SetLabel(id, "common")
	}
	capped := Generate(k1, k2, Options{Threshold: 0.3, MaxTokenPostings: 10})
	if len(capped.Candidates) != 0 {
		t.Errorf("capped postings still produced %d candidates", len(capped.Candidates))
	}
	uncapped := Generate(k1, k2, Options{Threshold: 0.3})
	if len(uncapped.Candidates) != 30 {
		t.Errorf("uncapped candidates = %d, want 30", len(uncapped.Candidates))
	}
}

func TestCandidatesOf(t *testing.T) {
	k1, k2 := twoKBs()
	res := Generate(k1, k2, DefaultOptions())
	joanID := k1.Entity("y:Joan")
	cands := res.CandidatesOf(joanID)
	if len(cands) == 0 {
		t.Fatal("no candidates for Joan")
	}
	for _, c := range cands {
		if c.Pair.U1 != joanID {
			t.Errorf("CandidatesOf returned foreign pair %v", c.Pair)
		}
	}
}

func TestDeterministicOrder(t *testing.T) {
	k1, k2 := twoKBs()
	a := Generate(k1, k2, DefaultOptions())
	b := Generate(k1, k2, DefaultOptions())
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatal("candidate counts differ between runs")
	}
	for i := range a.Candidates {
		if a.Candidates[i] != b.Candidates[i] {
			t.Fatalf("ordering not deterministic at %d: %v vs %v", i, a.Candidates[i], b.Candidates[i])
		}
	}
}
