// Package partition splits the blocked candidate-pair graph into
// independent shards for the sharded resolution pipeline. Relational match
// propagation is bounded to ζ-balls around confirmed matches, so evidence
// never crosses a connected component of the relational edge graph: a
// partition along those components — union-find over the candidate pairs
// plus their relational edges — yields shards whose propagation engines,
// candidate gathering and question selection can run concurrently without
// exchanging any evidence, which is how collective ER scales past a single
// monolithic graph (Rastogi et al., "Large-Scale Collective Entity
// Matching"). The linking relation is caller-defined (a neighbors
// closure), so callers can also fold in extra must-link constraints; the
// 1:1 entity constraint is deliberately NOT a partition edge — competitor
// chains would glue realistic candidate graphs into one giant component —
// and is instead routed across shards by the loop's serial answer
// application.
//
// Components are binned into shards by descending size with
// weight-balanced contiguous fill: the largest components (the ones
// benefit-greedy question selection works through first) land in the
// lowest-numbered shards together, so early loops touch few shards and
// settled shards can be frozen, while shard weights stay within one
// component of the ideal n/S balance for parallel execution. Component
// identity, order and therefore shard IDs are canonical: they depend only
// on the vertex set, never on input order.
package partition

import (
	"sort"

	"repro/internal/pair"
)

// Partition is a deterministic assignment of candidate pairs to shards.
type Partition struct {
	shards     [][]pair.Pair
	shardOf    map[pair.Pair]int
	components int
}

// Split partitions the candidate-pair graph into at most maxShards shards
// of connected components. vertices is the graph's vertex list; neighbors
// returns, for a vertex index, the indexes it is linked to (out-neighbors
// suffice — the union is symmetric). Each shard's vertex slice preserves
// the relative order of the input, so a pair-sorted vertex list yields
// pair-sorted shards.
func Split(vertices []pair.Pair, neighbors func(i int) []int, maxShards int) *Partition {
	n := len(vertices)
	uf := newUnionFind(n)

	// Relational edges: propagation evidence flows along them.
	if neighbors != nil {
		for i := 0; i < n; i++ {
			for _, j := range neighbors(i) {
				uf.union(i, j)
			}
		}
	}

	// Gather components and canonicalize: a component is identified by its
	// minimal pair, and components order by (size desc, minimal pair asc).
	// Both are properties of the vertex set alone, so shard IDs are stable
	// under any permutation of the input.
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		members[r] = append(members[r], i)
	}
	type component struct {
		idxs []int
		min  pair.Pair
	}
	comps := make([]component, 0, len(members))
	for _, idxs := range members {
		min := vertices[idxs[0]]
		for _, i := range idxs[1:] {
			if vertices[i].Less(min) {
				min = vertices[i]
			}
		}
		comps = append(comps, component{idxs: idxs, min: min})
	}
	sort.Slice(comps, func(a, b int) bool {
		if len(comps[a].idxs) != len(comps[b].idxs) {
			return len(comps[a].idxs) > len(comps[b].idxs)
		}
		return comps[a].min.Less(comps[b].min)
	})

	shards := maxShards
	if shards < 1 {
		shards = 1
	}
	if shards > len(comps) {
		shards = len(comps)
	}
	if shards == 0 {
		shards = 1 // empty graph: one empty shard
	}

	p := &Partition{
		shards:     make([][]pair.Pair, shards),
		shardOf:    make(map[pair.Pair]int, n),
		components: len(comps),
	}
	// Weight-balanced contiguous fill: walk components largest-first and
	// advance to the next shard once the current one reaches the remaining
	// ideal weight. Contiguity keeps similar-sized components — the ones
	// selection resolves around the same time — in the same shard.
	remaining := n
	shard := 0
	filled := 0
	for ci, c := range comps {
		if shard < shards-1 && filled > 0 {
			target := remaining / (shards - shard)
			if filled+len(c.idxs)/2 >= target && len(comps)-ci >= shards-shard-1 {
				remaining -= filled
				shard++
				filled = 0
			}
		}
		for _, i := range c.idxs {
			p.shardOf[vertices[i]] = shard
		}
		filled += len(c.idxs)
	}
	// Materialize shard vertex lists in input order.
	for _, v := range vertices {
		s := p.shardOf[v]
		p.shards[s] = append(p.shards[s], v)
	}
	return p
}

// NumShards returns the number of shards actually produced (≤ the
// requested maximum, bounded by the component count).
func (p *Partition) NumShards() int { return len(p.shards) }

// NumComponents returns the number of connected components found.
func (p *Partition) NumComponents() int { return p.components }

// ShardOf returns the shard holding pair v, or -1 for unknown pairs.
func (p *Partition) ShardOf(v pair.Pair) int {
	s, ok := p.shardOf[v]
	if !ok {
		return -1
	}
	return s
}

// Shard returns shard s's vertices in input order (do not modify).
func (p *Partition) Shard(s int) []pair.Pair { return p.shards[s] }

// Sizes returns the vertex count per shard.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.shards))
	for s, vs := range p.shards {
		out[s] = len(vs)
	}
	return out
}

// unionFind is a standard weighted quick-union with path halving.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
