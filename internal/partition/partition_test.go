package partition

import (
	"math/rand"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

func pr(u1, u2 int) pair.Pair {
	return pair.Pair{U1: kb.EntityID(u1), U2: kb.EntityID(u2)}
}

// adjacency builds a neighbors func from an edge list over vertex indexes.
func adjacency(n int, edges [][2]int) func(i int) []int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	return func(i int) []int { return adj[i] }
}

func TestSingletonComponents(t *testing.T) {
	// Five isolated pairs, no relational edges, no shared entities: five
	// singleton components spread across the requested shards, none lost.
	verts := []pair.Pair{pr(1, 11), pr(2, 12), pr(3, 13), pr(4, 14), pr(5, 15)}
	p := Split(verts, adjacency(len(verts), nil), 3)
	if p.NumComponents() != 5 {
		t.Fatalf("NumComponents = %d, want 5", p.NumComponents())
	}
	if p.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", p.NumShards())
	}
	total := 0
	for s := 0; s < p.NumShards(); s++ {
		total += len(p.Shard(s))
		if len(p.Shard(s)) == 0 {
			t.Errorf("shard %d is empty", s)
		}
	}
	if total != len(verts) {
		t.Fatalf("shards hold %d vertices, want %d", total, len(verts))
	}
	for _, v := range verts {
		if p.ShardOf(v) < 0 {
			t.Errorf("vertex %v unassigned", v)
		}
	}
}

func TestOneSidedComponent(t *testing.T) {
	// A component whose pairs all compete for one K1 entity — (1,11),
	// (1,12), (1,13) — with relational edges among them (degenerate blocks
	// are common under heavy label ambiguity). The component must stay
	// whole and the independent pair must not be dragged along.
	verts := []pair.Pair{pr(1, 11), pr(1, 12), pr(1, 13), pr(2, 21)}
	edges := [][2]int{{0, 1}, {1, 2}}
	p := Split(verts, adjacency(len(verts), edges), 2)
	if p.NumComponents() != 2 {
		t.Fatalf("NumComponents = %d, want 2", p.NumComponents())
	}
	s := p.ShardOf(pr(1, 11))
	if p.ShardOf(pr(1, 12)) != s || p.ShardOf(pr(1, 13)) != s {
		t.Errorf("one-sided component split across shards: %d/%d/%d",
			s, p.ShardOf(pr(1, 12)), p.ShardOf(pr(1, 13)))
	}
	if p.NumShards() == 2 && p.ShardOf(pr(2, 21)) == s {
		t.Errorf("independent pair colocated despite a free shard")
	}
}

func TestSeedBridgesComponents(t *testing.T) {
	// Two chains {(1,11)-(2,12)} and {(5,15)-(6,16)} would be independent
	// components, but a seed-match vertex (1,15) carries relational edges
	// into both (its K1 entity relates into the first chain's K1 side,
	// its K2 entity into the second chain's K2 side): propagation from the
	// seed reaches both chains, so all five must land in one shard.
	verts := []pair.Pair{pr(1, 11), pr(2, 12), pr(5, 15), pr(6, 16), pr(1, 15)}
	edges := [][2]int{{0, 1}, {2, 3}, {4, 0}, {4, 2}}
	p := Split(verts, adjacency(len(verts), edges), 4)
	if p.NumComponents() != 1 {
		t.Fatalf("NumComponents = %d, want 1 (seed bridge must merge)", p.NumComponents())
	}
	s := p.ShardOf(verts[0])
	for _, v := range verts[1:] {
		if p.ShardOf(v) != s {
			t.Errorf("bridged component split: %v in shard %d, want %d", v, p.ShardOf(v), s)
		}
	}
	// Without the bridge the components stay apart.
	p2 := Split(verts[:4], adjacency(4, [][2]int{{0, 1}, {2, 3}}), 4)
	if p2.NumComponents() != 2 {
		t.Fatalf("without bridge: NumComponents = %d, want 2", p2.NumComponents())
	}
}

func TestShardIDsDeterministicUnderPermutation(t *testing.T) {
	// A mix of chains, entity blocks and singletons; shard IDs must be a
	// function of the vertex set only, not of input order.
	var verts []pair.Pair
	var edges [][2]int
	id := 1
	for c := 0; c < 7; c++ {
		size := 1 + c
		first := len(verts)
		for k := 0; k < size; k++ {
			verts = append(verts, pr(id, 1000+id))
			id++
			if k > 0 {
				edges = append(edges, [2]int{first + k - 1, first + k})
			}
		}
	}
	ref := Split(verts, adjacency(len(verts), edges), 3)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(verts))
		shuffled := make([]pair.Pair, len(verts))
		where := make(map[pair.Pair]int, len(verts))
		for i, j := range perm {
			shuffled[j] = verts[i]
		}
		for i, v := range shuffled {
			where[v] = i
		}
		// Rebuild the edge list under the permuted indexing.
		permEdges := make([][2]int, len(edges))
		for i, e := range edges {
			permEdges[i] = [2]int{where[verts[e[0]]], where[verts[e[1]]]}
		}
		got := Split(shuffled, adjacency(len(shuffled), permEdges), 3)
		if got.NumShards() != ref.NumShards() || got.NumComponents() != ref.NumComponents() {
			t.Fatalf("trial %d: shape differs: %d/%d shards, %d/%d components",
				trial, got.NumShards(), ref.NumShards(), got.NumComponents(), ref.NumComponents())
		}
		for _, v := range verts {
			if got.ShardOf(v) != ref.ShardOf(v) {
				t.Fatalf("trial %d: %v assigned to shard %d, want %d",
					trial, v, got.ShardOf(v), ref.ShardOf(v))
			}
		}
	}
}

func TestBalancedFill(t *testing.T) {
	// 8 equal components over 4 shards must land 2 per shard.
	var verts []pair.Pair
	var edges [][2]int
	for c := 0; c < 8; c++ {
		first := len(verts)
		for k := 0; k < 10; k++ {
			verts = append(verts, pr(100*c+k+1, 100*c+k+1))
			if k > 0 {
				edges = append(edges, [2]int{first + k - 1, first + k})
			}
		}
	}
	p := Split(verts, adjacency(len(verts), edges), 4)
	if p.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards())
	}
	for s, size := range p.Sizes() {
		if size != 20 {
			t.Errorf("shard %d holds %d vertices, want 20 (sizes %v)", s, size, p.Sizes())
		}
	}
}
