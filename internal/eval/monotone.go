// Package eval provides evaluation utilities beyond basic P/R/F1: the
// error rate of the optimal monotone classifier (Tao, PODS 2018) used in
// Table V to measure how well the partial order respects the gold
// standard, and the cross-shard monotonicity check that turns the sharded
// pipeline's equivalence guarantee into an assertable property.
package eval

import (
	"fmt"

	"repro/internal/assign"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// Outcome is the resolved state a resolution run ends with: the final
// match set and the pairs resolved negative.
type Outcome struct {
	Matches    pair.Set
	NonMatches pair.Set
}

// ShardDivergence is the cross-shard monotonicity check: a sharded run
// must resolve exactly the pairs the unsharded reference does — the match
// and non-match sets are identical, hence precision, recall and F1
// against any gold standard are identical too, and no pair's verdict
// "moves" when the shard count changes. It returns nil when the outcomes
// are equivalent and a descriptive error naming the first divergent pair
// otherwise.
func ShardDivergence(reference, sharded Outcome) error {
	for _, d := range []struct {
		name string
		ref  pair.Set
		got  pair.Set
	}{
		{"matches", reference.Matches, sharded.Matches},
		{"non-matches", reference.NonMatches, sharded.NonMatches},
	} {
		if d.ref.Len() != d.got.Len() {
			return fmt.Errorf("eval: sharded run resolved %d %s, unsharded resolved %d", d.got.Len(), d.name, d.ref.Len())
		}
		for _, p := range d.ref.Sorted() {
			if !d.got.Has(p) {
				return fmt.Errorf("eval: pair %v is in the unsharded %s but not the sharded ones", p, d.name)
			}
		}
	}
	return nil
}

// OneToOne verifies the 1:1 entity constraint across a match set: no two
// matches share an entity on either side. Sharding must preserve it even
// though competitor chains cross shards; the first violating pair of
// matches is reported.
func OneToOne(matches pair.Set) error {
	seen1 := make(map[kb.EntityID]pair.Pair)
	seen2 := make(map[kb.EntityID]pair.Pair)
	for _, m := range matches.Sorted() {
		if prev, ok := seen1[m.U1]; ok {
			return fmt.Errorf("eval: matches %v and %v share the K1 entity %d", prev, m, m.U1)
		}
		if prev, ok := seen2[m.U2]; ok {
			return fmt.Errorf("eval: matches %v and %v share the K2 entity %d", prev, m, m.U2)
		}
		seen1[m.U1] = m
		seen2[m.U2] = m
	}
	return nil
}

// OptimalMonotoneError computes the minimal fraction of pairs that any
// monotone classifier over the similarity vectors must misclassify.
//
// A "violation" is a true match m and a true non-match n with
// s(n) ⪰ s(m): a monotone classifier accepting m must accept n, so it
// errs on at least one of the two. The minimal number of errors equals
// the minimum vertex cover of the bipartite violation graph, which by
// König's theorem equals its maximum matching (computed with
// Hopcroft–Karp).
func OptimalMonotoneError(pairs []pair.Pair, vectors []simvec.Vector, gold *pair.Gold) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var matchIdx, nonIdx []int
	for i, p := range pairs {
		if gold.IsMatch(p) {
			matchIdx = append(matchIdx, i)
		} else {
			nonIdx = append(nonIdx, i)
		}
	}
	if len(matchIdx) == 0 || len(nonIdx) == 0 {
		return 0
	}
	adj := make([][]int, len(matchIdx))
	for mi, i := range matchIdx {
		for nj, j := range nonIdx {
			if vectors[j].Dominates(vectors[i]) {
				adj[mi] = append(adj[mi], nj)
			}
		}
	}
	cover, _ := assign.HopcroftKarp(len(matchIdx), len(nonIdx), adj)
	return float64(cover) / float64(len(pairs))
}
