// Package eval provides evaluation utilities beyond basic P/R/F1: the
// error rate of the optimal monotone classifier (Tao, PODS 2018) used in
// Table V to measure how well the partial order respects the gold
// standard.
package eval

import (
	"repro/internal/assign"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// OptimalMonotoneError computes the minimal fraction of pairs that any
// monotone classifier over the similarity vectors must misclassify.
//
// A "violation" is a true match m and a true non-match n with
// s(n) ⪰ s(m): a monotone classifier accepting m must accept n, so it
// errs on at least one of the two. The minimal number of errors equals
// the minimum vertex cover of the bipartite violation graph, which by
// König's theorem equals its maximum matching (computed with
// Hopcroft–Karp).
func OptimalMonotoneError(pairs []pair.Pair, vectors []simvec.Vector, gold *pair.Gold) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var matchIdx, nonIdx []int
	for i, p := range pairs {
		if gold.IsMatch(p) {
			matchIdx = append(matchIdx, i)
		} else {
			nonIdx = append(nonIdx, i)
		}
	}
	if len(matchIdx) == 0 || len(nonIdx) == 0 {
		return 0
	}
	adj := make([][]int, len(matchIdx))
	for mi, i := range matchIdx {
		for nj, j := range nonIdx {
			if vectors[j].Dominates(vectors[i]) {
				adj[mi] = append(adj[mi], nj)
			}
		}
	}
	cover, _ := assign.HopcroftKarp(len(matchIdx), len(nonIdx), adj)
	return float64(cover) / float64(len(pairs))
}
