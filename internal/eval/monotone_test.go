package eval

import (
	"math"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/simvec"
)

func mkPairs(n int) []pair.Pair {
	out := make([]pair.Pair, n)
	for i := range out {
		out[i] = pair.Pair{U1: kb.EntityID(i), U2: kb.EntityID(i)}
	}
	return out
}

func TestPerfectlyMonotoneData(t *testing.T) {
	// Matches all above non-matches: zero violations.
	pairs := mkPairs(4)
	vectors := []simvec.Vector{{0.9}, {0.8}, {0.2}, {0.1}}
	gold := pair.NewGold([]pair.Pair{pairs[0], pairs[1]})
	if got := OptimalMonotoneError(pairs, vectors, gold); got != 0 {
		t.Errorf("error = %v, want 0", got)
	}
}

func TestSingleViolation(t *testing.T) {
	// One non-match dominates one match: 1 of 4 pairs must be wrong.
	pairs := mkPairs(4)
	vectors := []simvec.Vector{{0.3}, {0.8}, {0.9}, {0.1}}
	gold := pair.NewGold([]pair.Pair{pairs[0], pairs[1]}) // matches: 0.3, 0.8
	got := OptimalMonotoneError(pairs, vectors, gold)
	// Non-match vec 0.9 dominates both matches; non-match 0.1 dominates
	// none. Violation graph: matches {0,1} × non-match {0.9}. Max matching
	// = 1 ⇒ error 1/4.
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("error = %v, want 0.25", got)
	}
}

func TestIncomparableVectorsNoViolation(t *testing.T) {
	pairs := mkPairs(2)
	vectors := []simvec.Vector{{0.9, 0.1}, {0.1, 0.9}}
	gold := pair.NewGold([]pair.Pair{pairs[0]})
	if got := OptimalMonotoneError(pairs, vectors, gold); got != 0 {
		t.Errorf("incomparable vectors should not violate: %v", got)
	}
}

func TestAllSameVector(t *testing.T) {
	// Every non-match (weakly) dominates every match: best classifier
	// errs on min(#match, #non-match).
	pairs := mkPairs(5)
	vectors := []simvec.Vector{{0.5}, {0.5}, {0.5}, {0.5}, {0.5}}
	gold := pair.NewGold([]pair.Pair{pairs[0], pairs[1]}) // 2 matches, 3 non
	got := OptimalMonotoneError(pairs, vectors, gold)
	if math.Abs(got-2.0/5.0) > 1e-12 {
		t.Errorf("error = %v, want 0.4", got)
	}
}

func TestEdgeCases(t *testing.T) {
	if got := OptimalMonotoneError(nil, nil, pair.NewGold(nil)); got != 0 {
		t.Errorf("empty input: %v", got)
	}
	pairs := mkPairs(2)
	vectors := []simvec.Vector{{0.1}, {0.2}}
	allMatch := pair.NewGold(pairs)
	if got := OptimalMonotoneError(pairs, vectors, allMatch); got != 0 {
		t.Errorf("all matches: %v", got)
	}
	noMatch := pair.NewGold(nil)
	if got := OptimalMonotoneError(pairs, vectors, noMatch); got != 0 {
		t.Errorf("no matches: %v", got)
	}
}
