package eval

import (
	"strings"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

func pr(u1, u2 int) pair.Pair {
	return pair.Pair{U1: kb.EntityID(u1), U2: kb.EntityID(u2)}
}

func TestShardDivergence(t *testing.T) {
	ref := Outcome{
		Matches:    pair.NewSet(pr(1, 1), pr(2, 2)),
		NonMatches: pair.NewSet(pr(1, 2)),
	}
	same := Outcome{
		Matches:    pair.NewSet(pr(2, 2), pr(1, 1)),
		NonMatches: pair.NewSet(pr(1, 2)),
	}
	if err := ShardDivergence(ref, same); err != nil {
		t.Fatalf("equivalent outcomes reported divergent: %v", err)
	}

	missing := Outcome{
		Matches:    pair.NewSet(pr(1, 1)),
		NonMatches: pair.NewSet(pr(1, 2)),
	}
	if err := ShardDivergence(ref, missing); err == nil {
		t.Fatal("missing match not reported")
	}

	swapped := Outcome{
		Matches:    pair.NewSet(pr(1, 1), pr(3, 3)),
		NonMatches: pair.NewSet(pr(1, 2)),
	}
	err := ShardDivergence(ref, swapped)
	if err == nil {
		t.Fatal("swapped match not reported")
	}
	if !strings.Contains(err.Error(), "(2,2)") {
		t.Errorf("error does not name the divergent pair: %v", err)
	}
}

func TestOneToOne(t *testing.T) {
	if err := OneToOne(pair.NewSet(pr(1, 1), pr(2, 2), pr(3, 3))); err != nil {
		t.Fatalf("valid 1:1 matching rejected: %v", err)
	}
	if err := OneToOne(pair.NewSet(pr(1, 1), pr(1, 2))); err == nil {
		t.Fatal("shared K1 entity not reported")
	}
	if err := OneToOne(pair.NewSet(pr(1, 1), pr(2, 1))); err == nil {
		t.Fatal("shared K2 entity not reported")
	}
}
