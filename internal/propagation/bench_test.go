package propagation

import (
	"fmt"
	"testing"
)

// BenchmarkInferAll measures Algorithm 2 at several graph sizes, serial
// versus the GOMAXPROCS fan-out the Engine uses for its initial build.
// The clustered shape (disjoint functional chains) mirrors real ER
// graphs, whose connected components are entity clusters far smaller than
// the whole graph.
func BenchmarkInferAll(b *testing.B) {
	for _, size := range []struct{ nc, cs int }{{8, 25}, {25, 32}, {80, 40}} {
		pg, _ := clusteredPG(size.nc, size.cs)
		n := size.nc * size.cs
		b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = pg.inferAllSerial(0.8)
			}
		})
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = pg.InferAll(0.8)
			}
		})
	}
}

// BenchmarkEngineDetachSync measures one incremental invalidate+Sync
// (detaching a vertex and recomputing only its cluster's ball) against
// the full rebuild the loop used to pay for the same mutation.
func BenchmarkEngineDetachSync(b *testing.B) {
	const nc, cs = 40, 40 // 1600 vertices in 40-vertex clusters
	for _, mode := range []string{"incremental", "full-rebuild"} {
		b.Run(mode, func(b *testing.B) {
			pg, verts := clusteredPG(nc, cs)
			e := NewEngine(pg, 0.8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%len(verts) == 0 {
					// Every vertex has been detached; rebuild the fixture
					// off the clock so iterations keep measuring real work.
					b.StopTimer()
					pg, verts = clusteredPG(nc, cs)
					e = NewEngine(pg, 0.8)
					b.StartTimer()
				}
				e.DetachVertex(verts[i%len(verts)])
				if mode == "full-rebuild" {
					e.InvalidateAll()
				}
				e.Sync()
			}
		})
	}
}
