package propagation

import "sync"

// heapEntry is one pending Dijkstra relaxation: the tentative distance and
// the vertex it reaches. Entries are plain values in a slice-backed 4-ary
// heap, so pushes and pops never box through an interface.
type heapEntry struct {
	d float64
	v int32
}

// scratch is the per-worker reusable state of a ζ-bounded single-source
// run: dense distances validated by epoch stamps (no clearing between
// runs), the 4-ary heap, and the list of vertices touched this run (the
// emitted ball, pre-sort). A run performs zero map operations and zero
// allocations beyond the returned Ball; the arrays amortize across every
// source the worker processes.
type scratch struct {
	dist    []float64
	stamp   []uint32
	epoch   uint32
	heap    []heapEntry
	touched []int32
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

// getScratch returns a pooled scratch sized for n vertices.
func getScratch(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if len(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.stamp = make([]uint32, n)
		sc.epoch = 0
	}
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// begin opens a new run: bumping the epoch invalidates every stamp in
// O(1). On the (once per 4 billion runs) wraparound the stamps are zeroed
// so stale entries from the previous cycle cannot alias as valid.
//
//remp:hotpath
func (sc *scratch) begin() {
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.stamp)
		sc.epoch = 1
	}
	sc.heap = sc.heap[:0]
	sc.touched = sc.touched[:0]
}

// visited reports whether v was reached this run.
//
//remp:hotpath
func (sc *scratch) visited(v int32) bool { return sc.stamp[v] == sc.epoch }

// reach records the first arrival at v with distance d.
//
//remp:hotpath
func (sc *scratch) reach(v int32, d float64) {
	sc.stamp[v] = sc.epoch
	sc.dist[v] = d
	sc.touched = append(sc.touched, v)
}

// push inserts a heap entry, sifting up through the 4-ary layout.
//
//remp:hotpath
func (sc *scratch) push(e heapEntry) {
	h := append(sc.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if h[p].d <= h[i].d {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	sc.heap = h
}

// pop removes and returns the minimum-distance entry.
//
//remp:hotpath
func (sc *scratch) pop() heapEntry {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		c := i*4 + 1
		if c >= len(h) {
			break
		}
		m := c
		end := c + 4
		if end > len(h) {
			end = len(h)
		}
		for k := c + 1; k < end; k++ {
			if h[k].d < h[m].d {
				m = k
			}
		}
		if h[i].d <= h[m].d {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	sc.heap = h
	return top
}
