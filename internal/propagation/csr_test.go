package propagation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/pair"
)

// TestCSRMatchesOracleTableDriven is the randomized property test for the
// flat-storage engine: across seeded sizes and τ values — including τ = 1
// (ζ ≈ 0) and a τ sitting exactly on a multi-hop path probability, the ζ
// boundary — the CSR-based InferAll, its serial variant and the
// incremental Engine after a Sync must all equal the paper-faithful
// InferAllFW oracle.
func TestCSRMatchesOracleTableDriven(t *testing.T) {
	cases := []struct {
		n       int
		density float64
		seed    int64
	}{
		{8, 0.4, 101},
		{33, 0.15, 102},
		{90, 0.06, 103}, // crosses the parallel fan-out cutoff
		{150, 0.03, 104},
	}
	taus := []float64{1, 0.95, 0.8, 0.65}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(tc.seed))
		pg, verts := randomPG(rng, tc.n, tc.density)
		// Add a ζ-boundary τ: exactly the probability of some two-hop path,
		// so its distance equals ζ up to the 1e-12 slack zetaOf grants.
		boundary := 0.0
		for i := 0; i < tc.n && boundary == 0; i++ {
			for e := pg.rowStart[i]; e < pg.rowStart[i+1]; e++ {
				j := pg.colIdx[e]
				if pg.rowStart[j] == pg.rowStart[j+1] {
					continue
				}
				k := pg.rowStart[j] // first out-edge of j
				if pg.colIdx[k] != int32(i) && pg.prob[e] > 0 && pg.prob[k] > 0 {
					boundary = math.Exp(-(pg.length[e] + pg.length[k]))
					break
				}
			}
		}
		caseTaus := taus
		if boundary > 0 && boundary <= 1 {
			caseTaus = append(caseTaus, boundary)
		}
		for _, tau := range caseTaus {
			name := fmt.Sprintf("n=%d/tau=%v", tc.n, tau)
			want := pg.InferAllFW(tau)
			for _, got := range []*Inferred{pg.InferAll(tau), pg.inferAllSerial(tau)} {
				for q := 0; q < tc.n; q++ {
					compareBalls(t, name, "dist", q, got.dist[q], want.dist[q])
					compareRevRows(t, name, q, got.rev[q], want.rev[q])
				}
			}
			// Incremental sync after random removals must equal a rebuild of
			// the same mutated graph.
			e := NewEngine(pg, tau)
			for ops := 0; ops < 6; ops++ {
				switch rng.Intn(3) {
				case 0:
					e.DetachVertex(verts[rng.Intn(tc.n)])
				case 1:
					e.SetProb(verts[rng.Intn(tc.n)], verts[rng.Intn(tc.n)], 0)
				case 2:
					i, j := rng.Intn(tc.n), rng.Intn(tc.n)
					e.SetProb(verts[i], verts[j], pg.probAt(i, j)*0.6)
				}
			}
			e.Sync()
			assertMatchesOracle(t, e, name)
			// Restore the fixture for the next τ (detaches mutate pg).
			pg, verts = randomPG(rand.New(rand.NewSource(tc.seed)), tc.n, tc.density)
		}
	}
}

// TestSetProbOverlayVisibility pins the overlay semantics: an edge added
// after the CSR build (no slot) must be visible to Prob, Length, NumEdges
// and the bounded Dijkstra both before and after Fold merges it into the
// CSR, and removable through either representation.
func TestSetProbOverlayVisibility(t *testing.T) {
	// Two disjoint 3-chains: vs[0..2] and vs[3..5]. The overlay edge bridges
	// the clusters, so the direct edge is the only 0→3 path and its length
	// is exactly the ball distance.
	pg, vs := clusteredPG(2, 3)
	a, d := vs[0], vs[3]
	if pg.Prob(a, d) != 0 {
		t.Fatalf("chain should have no direct 0→3 edge, got %v", pg.Prob(a, d))
	}
	edgesBefore := pg.NumEdges()

	check := func(stage string) {
		t.Helper()
		if got := pg.Prob(a, d); got != 0.9 {
			t.Fatalf("%s: Prob = %v, want 0.9", stage, got)
		}
		if got := pg.Length(a, d); math.Abs(got+math.Log(0.9)) > 1e-12 {
			t.Fatalf("%s: Length = %v", stage, got)
		}
		if got := pg.NumEdges(); got != edgesBefore+1 {
			t.Fatalf("%s: NumEdges = %d, want %d", stage, got, edgesBefore+1)
		}
		// The Dijkstra must route through the new shortcut: with the direct
		// edge at 0.9, vertex 3 is one hop from vertex 0.
		ball := pg.InferFrom(a, 0.9)
		if dd, ok := ball.Get(3); !ok || math.Abs(dd+math.Log(0.9)) > 1e-12 {
			t.Fatalf("%s: Dijkstra missed the overlay edge (ball=%v)", stage, ball)
		}
		// The oracle must see it identically.
		fw := pg.InferAllFW(0.9)
		if dd, ok := fw.Ball(0).Get(3); !ok || math.Abs(dd+math.Log(0.9)) > 1e-12 {
			t.Fatalf("%s: FW oracle missed the overlay edge", stage)
		}
	}

	pg.SetProb(a, d, 0.9) // no CSR slot → overlay
	if pg.ovCount != 1 {
		t.Fatalf("edge should live in the overlay, ovCount = %d", pg.ovCount)
	}
	check("before fold")

	pg.Fold()
	if pg.ovCount != 0 || pg.ovOut != nil {
		t.Fatalf("Fold left overlay state behind (count=%d)", pg.ovCount)
	}
	check("after fold")

	// Post-fold the edge occupies a real slot; removal zeroes it in place.
	pg.SetProb(a, d, 0)
	if pg.Prob(a, d) != 0 || pg.NumEdges() != edgesBefore {
		t.Fatalf("removal after fold failed: prob=%v edges=%d", pg.Prob(a, d), pg.NumEdges())
	}

	// Overlay removal path: the zeroed slot above is reused in place, so
	// re-adding 0→3 would land in the CSR, not the overlay — exercise a
	// genuinely new edge instead.
	b, e := vs[1], vs[4]
	pg.SetProb(b, e, 0.8)
	if pg.ovCount != 1 {
		t.Fatalf("new edge should be overlay, ovCount = %d", pg.ovCount)
	}
	pg.SetProb(b, e, 0)
	if pg.ovCount != 0 || pg.Prob(b, e) != 0 {
		t.Fatalf("overlay removal failed: ovCount=%d prob=%v", pg.ovCount, pg.Prob(b, e))
	}
}

// TestEngineSeesOverlayThroughRebuild drives the overlay through the
// Engine path re-estimation uses: a strengthened (new) edge schedules a
// full rebuild, the rebuild folds the overlay, and the resulting balls
// match the oracle on the mutated graph.
func TestEngineSeesOverlayThroughRebuild(t *testing.T) {
	g, k1, k2, vs := chainGraph(6, false)
	pg := BuildProb(g, k1, k2, strongParams(g))
	e := NewEngine(pg, 0.8)
	e.SetProb(vs[0], vs[4], 0.95) // brand-new edge → overlay + full rebuild
	if e.PendingSources() != g.NumVertices() {
		t.Fatalf("new edge should schedule a full rebuild, pending = %d", e.PendingSources())
	}
	e.Sync()
	if pg.ovCount != 0 {
		t.Fatalf("rebuild should fold the overlay, ovCount = %d", pg.ovCount)
	}
	assertMatchesOracle(t, e, "after overlay rebuild")
	if _, ok := e.Ball(0).Get(4); !ok {
		t.Fatal("rebuilt ball of vertex 0 misses the new edge's target")
	}
}

// TestDetachClearsOverlayEdges ensures DetachVertex removes overlay edges
// in both directions, not only CSR slots.
func TestDetachClearsOverlayEdges(t *testing.T) {
	g, k1, k2, vs := chainGraph(5, false)
	pg := BuildProb(g, k1, k2, strongParams(g))
	pg.SetProb(vs[0], vs[3], 0.9)
	pg.SetProb(vs[3], vs[0], 0.9)
	if pg.ovCount != 2 {
		t.Fatalf("ovCount = %d, want 2", pg.ovCount)
	}
	pg.detachAt(3)
	if pg.ovCount != 0 || pg.Prob(vs[0], vs[3]) != 0 || pg.Prob(vs[3], vs[0]) != 0 {
		t.Fatalf("detach left overlay edges: count=%d", pg.ovCount)
	}
	if out, in := pg.degreeAt(3); out != 0 || in != 0 {
		t.Fatalf("detached vertex still has degree %d/%d", out, in)
	}
}

// TestBallGet pins the binary-search membership helper.
func TestBallGet(t *testing.T) {
	b := Ball{{Idx: 2, Dist: 0.5}, {Idx: 7, Dist: 1.25}, {Idx: 9, Dist: 0.1}}
	if d, ok := b.Get(7); !ok || d != 1.25 {
		t.Fatalf("Get(7) = %v,%v", d, ok)
	}
	if _, ok := b.Get(3); ok {
		t.Fatal("Get(3) should miss")
	}
	if _, ok := Ball(nil).Get(0); ok {
		t.Fatal("nil ball should miss")
	}
}

// TestDistOrder pins the propagation order helper: ascending distance,
// ties broken by pair order.
func TestDistOrder(t *testing.T) {
	verts := []pair.Pair{{U1: 1, U2: 1}, {U1: 2, U2: 2}, {U1: 3, U2: 3}, {U1: 4, U2: 4}}
	b := Ball{{Idx: 0, Dist: 0.7}, {Idx: 2, Dist: 0.2}, {Idx: 3, Dist: 0.7}}
	order := b.DistOrder(verts)
	want := []int32{1, 0, 2} // idx2 first (0.2), then idx0 before idx3 (tie on 0.7)
	for k, o := range order {
		if o != want[k] {
			t.Fatalf("DistOrder = %v, want %v", order, want)
		}
	}
}
