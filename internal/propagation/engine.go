package propagation

import (
	"slices"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pair"
)

// Engine maintains the bounded-distance balls of Algorithm 2 incrementally
// across the human–machine loop. The full InferAll recompute that the loop
// used to pay on every edge mutation is replaced by dirty-source tracking:
// the reverse index rev[p] names precisely the sources whose ζ-balls
// contain a vertex p, so when edges incident to p are removed (a confirmed
// match's competitors being detached, a worker-labeled non-match), only
// those sources plus p itself can change and only they are re-run.
// Re-estimation replaces the whole probabilistic graph, so it triggers a
// parallel full rebuild instead.
//
// The incremental step is exact for removal-only batches: any ζ-bounded
// path of a source q that uses an edge incident to a touched vertex p
// reaches p within ζ on a prefix of that path, so q ∈ rev[p] as of the
// last Sync (removals only shrink balls, so the stale rev is a superset of
// the true one). Every other source keeps all of its shortest paths and
// gains none, hence its ball is bitwise unchanged. Strengthened or added
// edges can pull new vertices into arbitrary balls, so SetProb falls back
// to a full rebuild for them; the pipeline only strengthens edges via
// re-estimation, which rebuilds anyway.
//
// Mutators (DetachVertex, SetProb, Reset, InvalidateAll) only record
// invalidations; Sync applies them, fanning one bounded Dijkstra per dirty
// source across GOMAXPROCS goroutines, each worker reusing one pooled
// dense scratch. Readers (Set, Ball, Prob) deliberately serve the balls as
// of the last Sync: the loop resolves each batch of µ questions against
// one snapshot (the paper's semantics), then Syncs at the top of the next
// loop.
//
// An Engine is not safe for concurrent use; Sync's internal workers are
// the only concurrency it owns.
type Engine struct {
	pg   *ProbGraph
	tau  float64
	zeta float64
	// dist and rev mirror Inferred: dist[q] = the sorted ball bt(q);
	// rev[p] lists the sources whose balls contain p, the inverse index
	// bt⁻¹(p). rev rows are unordered sets — invalidation only iterates
	// them — kept duplicate-free by the Sync bookkeeping.
	dist []Ball
	rev  [][]int32

	dirty map[int32]struct{} // source indexes queued for recompute
	full  bool               // pending whole-graph rebuild

	recomputes atomic.Int64 // single-source Dijkstra runs, for tests/benchmarks

	// c mirrors invalidation/recompute/rebuild events into externally
	// owned counters (the server's /metrics series). The zero value is
	// fully unwired: every field is a nil-safe *obs.Counter, so the
	// increments below cost one nil check when uninstrumented and one
	// atomic add when wired — never an allocation.
	c obs.EngineCounters
}

// NewEngine builds the engine and computes the initial balls with a
// parallel InferAll. τ must be pre-validated (see zetaOf).
func NewEngine(pg *ProbGraph, tau float64) *Engine {
	return NewEngineObs(pg, tau, obs.EngineCounters{})
}

// NewEngineObs is NewEngine with instrumentation counters attached
// before the initial build, so the first rebuild is counted too.
func NewEngineObs(pg *ProbGraph, tau float64, c obs.EngineCounters) *Engine {
	e := &Engine{
		pg:    pg,
		tau:   tau,
		zeta:  zetaOf(tau),
		dirty: make(map[int32]struct{}),
		full:  true,
		c:     c,
	}
	e.Sync()
	return e
}

// Zeta returns the distance bound −log τ.
func (e *Engine) Zeta() float64 { return e.zeta }

// Tau returns the precision threshold the engine was built with.
func (e *Engine) Tau() float64 { return e.tau }

// Graph returns the probabilistic graph the engine currently maintains.
func (e *Engine) Graph() *ProbGraph { return e.pg }

// Recomputes returns the number of single-source Dijkstra runs performed
// so far (including the initial build); tests use it to assert that only
// dirty sources are recomputed.
func (e *Engine) Recomputes() int64 { return e.recomputes.Load() }

// PendingSources returns how many sources the next Sync will recompute,
// accounting for the bulk-rebuild fallback.
func (e *Engine) PendingSources() int {
	if e.full || (len(e.dirty) > 0 && e.bulkFallback()) {
		return e.pg.g.NumVertices()
	}
	return len(e.dirty)
}

// bulkFallback reports whether so many sources are dirty that Sync will
// recompute everything in bulk instead of incrementally.
func (e *Engine) bulkFallback() bool {
	return 2*len(e.dirty) >= len(e.dist)
}

// BallSize returns |bt⁻¹(q)|, the number of sources whose ζ-ball contains
// q as of the last Sync (excluding q itself).
func (e *Engine) BallSize(q pair.Pair) int {
	i := e.pg.g.IndexOf(q)
	if i < 0 {
		return 0
	}
	return len(e.rev[i])
}

// DetachVertex removes every edge incident to q from the probabilistic
// graph — q can neither be inferred nor relay inference — and invalidates
// exactly the sources whose balls contained q.
func (e *Engine) DetachVertex(q pair.Pair) {
	i := e.pg.g.IndexOf(q)
	if i < 0 {
		return
	}
	if out, in := e.pg.degreeAt(i); out == 0 && in == 0 {
		return // already detached: nothing can have changed
	}
	e.markBallDirty(i)
	e.pg.detachAt(i)
}

// SetProb overrides one edge probability. Weakened or removed edges
// invalidate the ball of the edge's tail; strengthened or added edges
// schedule a full rebuild (see the type comment for why).
func (e *Engine) SetProb(from, to pair.Pair, p float64) {
	i := e.pg.g.IndexOf(from)
	j := e.pg.g.IndexOf(to)
	if i < 0 || j < 0 || i == j {
		return
	}
	old := e.pg.probAt(i, j)
	switch {
	case p > old:
		e.full = true
	case p < old:
		e.markBallDirty(i)
	default:
		return
	}
	e.pg.setProbAt(i, j, p)
}

// Reset swaps in a freshly rebuilt probabilistic graph (re-estimation) and
// schedules a parallel full rebuild.
func (e *Engine) Reset(pg *ProbGraph) {
	e.pg = pg
	e.InvalidateAll()
}

// InvalidateAll schedules a whole-graph rebuild at the next Sync.
func (e *Engine) InvalidateAll() {
	e.full = true
	clear(e.dirty)
}

// markBallDirty queues vertex i and every source whose ball contained it
// at the last Sync.
func (e *Engine) markBallDirty(i int) {
	if e.full {
		return
	}
	e.c.Invalidations.Add(1)
	e.dirty[int32(i)] = struct{}{}
	for _, q := range e.rev[i] {
		e.dirty[q] = struct{}{}
	}
}

// Sync brings the balls up to date: a pending full rebuild recomputes
// every source, otherwise only the dirty sources are re-run, all fanned
// across GOMAXPROCS goroutines. A clean engine returns immediately.
func (e *Engine) Sync() {
	if e.full {
		e.rebuild()
		e.full = false
		clear(e.dirty)
		return
	}
	if len(e.dirty) == 0 {
		return
	}
	// When most sources are dirty — a hub vertex of a dense component was
	// touched — recomputing them one by one costs more than a bulk rebuild,
	// which also skips the stale-entry deletions below. Fall back; the
	// rebuild is exact, only the work strategy changes.
	if e.bulkFallback() {
		e.rebuild()
		clear(e.dirty)
		return
	}
	srcs := make([]int, 0, len(e.dirty))
	for i := range e.dirty {
		srcs = append(srcs, int(i))
	}
	slices.Sort(srcs)
	// Drop the dirty sources from every reverse row their stale balls
	// touch before the parallel phase; reinstalling from the fresh balls
	// happens serially afterwards because distinct sources share rev rows.
	touched := make([]int32, 0, 64)
	for _, i := range srcs {
		for _, en := range e.dist[i] {
			touched = append(touched, en.Idx)
		}
	}
	slices.Sort(touched)
	touched = slices.Compact(touched)
	for _, j := range touched {
		keep := e.rev[j][:0]
		for _, s := range e.rev[j] {
			if _, isDirty := e.dirty[s]; !isDirty {
				keep = append(keep, s)
			}
		}
		e.rev[j] = keep
	}
	results := make([]Ball, len(srcs))
	e.pg.inferSources(e.zeta, srcs, results)
	e.recomputes.Add(int64(len(srcs)))
	e.c.Recomputes.Add(int64(len(srcs)))
	for k, i := range srcs {
		e.dist[i] = results[k]
		for _, en := range results[k] {
			e.rev[en.Idx] = append(e.rev[en.Idx], int32(i))
		}
	}
	clear(e.dirty)
}

// rebuild recomputes every source from scratch in parallel, sharing
// InferAll's implementation. The rebuild is also where a pending SetProb
// overlay is folded into the CSR, so the steady-state Dijkstras that
// follow run on pure flat storage.
func (e *Engine) rebuild() {
	e.pg.Fold()
	n := e.pg.g.NumVertices()
	e.dist = e.pg.computeAll(e.zeta)
	e.rev = buildRev(e.dist, n)
	e.recomputes.Add(int64(n))
	e.c.Recomputes.Add(int64(n))
	e.c.Rebuilds.Add(1)
}

// Ball returns inferred(q) by dense index (q excluded), ascending in
// vertex index, as of the last Sync. The slice is the engine's own;
// callers must not mutate it.
func (e *Engine) Ball(q int) Ball { return e.dist[q] }

// Inferred snapshots the engine's current balls as an immutable Inferred
// value (deep copy), mainly for diagnostics and tests.
func (e *Engine) Inferred() *Inferred {
	inf := &Inferred{
		pg:   e.pg,
		zeta: e.zeta,
		dist: make([]Ball, len(e.dist)),
	}
	for i, b := range e.dist {
		inf.dist[i] = slices.Clone(b)
	}
	inf.rev = buildRev(inf.dist, len(e.dist))
	return inf
}
