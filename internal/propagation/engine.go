package propagation

import (
	"sort"
	"sync/atomic"

	"repro/internal/pair"
)

// Engine maintains the bounded-distance maps of Algorithm 2 incrementally
// across the human–machine loop. The full InferAll recompute that the loop
// used to pay on every edge mutation is replaced by dirty-source tracking:
// the reverse map rev[p] names precisely the sources whose ζ-balls contain
// a vertex p, so when edges incident to p are removed (a confirmed match's
// competitors being detached, a worker-labeled non-match), only those
// sources plus p itself can change and only they are re-run. Re-estimation
// replaces the whole probabilistic graph, so it triggers a parallel full
// rebuild instead.
//
// The incremental step is exact for removal-only batches: any ζ-bounded
// path of a source q that uses an edge incident to a touched vertex p
// reaches p within ζ on a prefix of that path, so q ∈ rev[p] as of the
// last Sync (removals only shrink balls, so the stale rev is a superset of
// the true one). Every other source keeps all of its shortest paths and
// gains none, hence its map is bitwise unchanged. Strengthened or added
// edges can pull new vertices into arbitrary balls, so SetProb falls back
// to a full rebuild for them; the pipeline only strengthens edges via
// re-estimation, which rebuilds anyway.
//
// Mutators (DetachVertex, SetProb, Reset, InvalidateAll) only record
// invalidations; Sync applies them, fanning one bounded Dijkstra per dirty
// source across GOMAXPROCS goroutines. Readers (Set, SetIndexes, Prob)
// deliberately serve the maps as of the last Sync: the loop resolves each
// batch of µ questions against one snapshot (the paper's semantics), then
// Syncs at the top of the next loop.
//
// An Engine is not safe for concurrent use; Sync's internal workers are
// the only concurrency it owns.
type Engine struct {
	pg   *ProbGraph
	tau  float64
	zeta float64
	// dist and rev mirror Inferred: dist[q][p] = bounded distance bt(q),
	// rev[p][q] its inverse index bt⁻¹(p).
	dist []map[int]float64
	rev  []map[int]float64
	// sorted memoizes the ascending key order of dist[q] (nil = stale);
	// Sync drops the entries of recomputed sources, so clean sources keep
	// their slice across loops instead of re-sorting every ball per loop.
	sorted [][]int

	dirty map[int]struct{} // source indexes queued for recompute
	full  bool             // pending whole-graph rebuild

	recomputes atomic.Int64 // single-source Dijkstra runs, for tests/benchmarks
}

// NewEngine builds the engine and computes the initial maps with a
// parallel InferAll. τ must be pre-validated (see zetaOf).
func NewEngine(pg *ProbGraph, tau float64) *Engine {
	e := &Engine{
		pg:    pg,
		tau:   tau,
		zeta:  zetaOf(tau),
		dirty: make(map[int]struct{}),
		full:  true,
	}
	e.Sync()
	return e
}

// Zeta returns the distance bound −log τ.
func (e *Engine) Zeta() float64 { return e.zeta }

// Tau returns the precision threshold the engine was built with.
func (e *Engine) Tau() float64 { return e.tau }

// Graph returns the probabilistic graph the engine currently maintains.
func (e *Engine) Graph() *ProbGraph { return e.pg }

// Recomputes returns the number of single-source Dijkstra runs performed
// so far (including the initial build); tests use it to assert that only
// dirty sources are recomputed.
func (e *Engine) Recomputes() int64 { return e.recomputes.Load() }

// PendingSources returns how many sources the next Sync will recompute,
// accounting for the bulk-rebuild fallback.
func (e *Engine) PendingSources() int {
	if e.full || (len(e.dirty) > 0 && e.bulkFallback()) {
		return e.pg.g.NumVertices()
	}
	return len(e.dirty)
}

// bulkFallback reports whether so many sources are dirty that Sync will
// recompute everything in bulk instead of incrementally.
func (e *Engine) bulkFallback() bool {
	return 2*len(e.dirty) >= len(e.dist)
}

// BallSize returns |bt⁻¹(q)|, the number of sources whose ζ-ball contains
// q as of the last Sync (excluding q itself).
func (e *Engine) BallSize(q pair.Pair) int {
	i := e.pg.g.IndexOf(q)
	if i < 0 {
		return 0
	}
	return len(e.rev[i])
}

// DetachVertex removes every edge incident to q from the probabilistic
// graph — q can neither be inferred nor relay inference — and invalidates
// exactly the sources whose balls contained q.
func (e *Engine) DetachVertex(q pair.Pair) {
	i := e.pg.g.IndexOf(q)
	if i < 0 {
		return
	}
	if len(e.pg.out[i]) == 0 && len(e.pg.in[i]) == 0 {
		return // already detached: nothing can have changed
	}
	e.markBallDirty(i)
	for j := range e.pg.out[i] {
		delete(e.pg.in[j], i)
	}
	clear(e.pg.out[i])
	for j := range e.pg.in[i] {
		delete(e.pg.out[j], i)
	}
	clear(e.pg.in[i])
}

// SetProb overrides one edge probability. Weakened or removed edges
// invalidate the ball of the edge's tail; strengthened or added edges
// schedule a full rebuild (see the type comment for why).
func (e *Engine) SetProb(from, to pair.Pair, p float64) {
	i := e.pg.g.IndexOf(from)
	j := e.pg.g.IndexOf(to)
	if i < 0 || j < 0 || i == j {
		return
	}
	old := e.pg.out[i][j]
	switch {
	case p > old:
		e.full = true
	case p < old:
		e.markBallDirty(i)
	default:
		return
	}
	e.pg.SetProb(from, to, p)
}

// Reset swaps in a freshly rebuilt probabilistic graph (re-estimation) and
// schedules a parallel full rebuild.
func (e *Engine) Reset(pg *ProbGraph) {
	e.pg = pg
	e.InvalidateAll()
}

// InvalidateAll schedules a whole-graph rebuild at the next Sync.
func (e *Engine) InvalidateAll() {
	e.full = true
	clear(e.dirty)
}

// markBallDirty queues vertex i and every source whose ball contained it
// at the last Sync.
func (e *Engine) markBallDirty(i int) {
	if e.full {
		return
	}
	e.dirty[i] = struct{}{}
	for q := range e.rev[i] {
		e.dirty[q] = struct{}{}
	}
}

// Sync brings the maps up to date: a pending full rebuild recomputes every
// source, otherwise only the dirty sources are re-run, all fanned across
// GOMAXPROCS goroutines. A clean engine returns immediately.
func (e *Engine) Sync() {
	if e.full {
		e.rebuild()
		e.full = false
		clear(e.dirty)
		return
	}
	if len(e.dirty) == 0 {
		return
	}
	// When most sources are dirty — a hub vertex of a dense component was
	// touched — recomputing them one by one costs more than a bulk rebuild,
	// which also skips the stale-entry deletions below. Fall back; the
	// rebuild is exact, only the work strategy changes.
	if e.bulkFallback() {
		e.rebuild()
		clear(e.dirty)
		return
	}
	srcs := make([]int, 0, len(e.dirty))
	for i := range e.dirty {
		srcs = append(srcs, i)
	}
	sort.Ints(srcs)
	// Drop the stale forward entries from the reverse index before the
	// parallel phase; reinstalling happens serially afterwards because
	// distinct sources share rev buckets.
	for _, i := range srcs {
		for j := range e.dist[i] {
			delete(e.rev[j], i)
		}
	}
	results := make([]map[int]float64, len(srcs))
	e.pg.inferSources(e.zeta, srcs, results)
	e.recomputes.Add(int64(len(srcs)))
	for k, i := range srcs {
		e.dist[i] = results[k]
		e.sorted[i] = nil
		for j, d := range results[k] {
			e.rev[j][i] = d
		}
	}
	clear(e.dirty)
}

// rebuild recomputes every source from scratch in parallel, sharing
// InferAll's implementation and adopting its maps.
func (e *Engine) rebuild() {
	n := e.pg.g.NumVertices()
	e.dist, e.rev = e.pg.computeAll(e.zeta)
	e.sorted = make([][]int, n)
	e.recomputes.Add(int64(n))
}

// SetIndexes returns inferred(q) as vertex indexes (q excluded), as of the
// last Sync. The returned map is the engine's own; callers must not
// mutate it.
func (e *Engine) SetIndexes(q int) map[int]float64 { return e.dist[q] }

// SortedSetIndexes returns inferred(q) as ascending vertex indexes, as of
// the last Sync. The slice is memoized per source and survives across
// Syncs for sources that were not recomputed, so per-loop consumers don't
// re-sort unchanged balls. Callers must not mutate it.
func (e *Engine) SortedSetIndexes(q int) []int {
	if e.sorted[q] == nil {
		keys := make([]int, 0, len(e.dist[q]))
		for j := range e.dist[q] {
			keys = append(keys, j)
		}
		sort.Ints(keys)
		e.sorted[q] = keys
	}
	return e.sorted[q]
}

// Inferred snapshots the engine's current maps as an immutable Inferred
// value (deep copy), mainly for diagnostics and tests.
func (e *Engine) Inferred() *Inferred {
	inf := &Inferred{
		pg:   e.pg,
		zeta: e.zeta,
		dist: make([]map[int]float64, len(e.dist)),
		rev:  make([]map[int]float64, len(e.rev)),
	}
	for i, m := range e.dist {
		inf.dist[i] = make(map[int]float64, len(m))
		for j, d := range m {
			inf.dist[i][j] = d
		}
	}
	for i, m := range e.rev {
		inf.rev[i] = make(map[int]float64, len(m))
		for j, d := range m {
			inf.rev[i][j] = d
		}
	}
	return inf
}
