// Package propagation implements relational match propagation (§V): given
// a labeled match, the posterior match probabilities of its neighbors are
// obtained by marginalizing Eq. (6)–(9) over injective partial matchings
// between the two value sets, and distant pairs are reached through the
// Markov-chain path bound of Eq. (10) evaluated with the bounded all-pairs
// shortest-path procedure of Algorithm 2.
package propagation

import (
	"math"
	"slices"

	"repro/internal/pair"
)

// CandidatePair is one potential match between the value sets of a
// relationship pair, carrying its prior match probability. Idx is the
// dense ER-graph index of Pair (−1 when the pair is not a graph vertex),
// so recording a posterior needs no pair lookup.
type CandidatePair struct {
	Row   int // index into the side-1 value list
	Col   int // index into the side-2 value list
	Pair  pair.Pair
	Prior float64
	Idx   int32
}

// Neighborhood describes the propagation instance around one matched
// vertex and one edge label (r1, r2): the value-set sizes |N_r1(u1)|,
// |N_r2(u2)| and the candidate pairs among them that are ER-graph vertices.
type Neighborhood struct {
	N1Size, N2Size int
	Cands          []CandidatePair
	Eps1, Eps2     float64
}

// MaxExactSide is the largest per-side candidate dimension for which the
// posterior is computed exactly by bitmask dynamic programming; larger
// neighborhoods use the local-exclusion approximation (see DESIGN.md §4).
const MaxExactSide = 12

// Posteriors returns Pr[m_p | m_v] for every candidate pair p in the
// neighborhood, in the order of nb.Cands.
//
// Derivation: with priors clamped to (0,1), every injective match set M
// has weight f(M)·g(M|N1)·g(M|N2) ∝ ∏_{p∈M} w_p, where
//
//	w_p = prior(p)/(1−prior(p)) · ε1/(1−ε1) · ε2/(1−ε2),
//
// because |π1(M)| = |π2(M)| = |M| and the remaining factors are common to
// all M. The posterior of p is then the ratio of matching "permanents":
// Pr[m_p | m_v] = w_p · Z(without row/col of p) / Z(all).
func (nb *Neighborhood) Posteriors() []float64 {
	n := len(nb.Cands)
	if n == 0 {
		return nil
	}
	weights := make([]float64, n)
	for i, c := range nb.Cands {
		prior := clampProb(c.Prior)
		e1 := clampProb(nb.Eps1)
		e2 := clampProb(nb.Eps2)
		weights[i] = prior / (1 - prior) * e1 / (1 - e1) * e2 / (1 - e2)
	}

	rows, cols := dimensions(nb.Cands)
	if rows <= MaxExactSide || cols <= MaxExactSide {
		return exactPosteriors(nb.Cands, weights, rows, cols)
	}
	return approxPosteriors(nb.Cands, weights)
}

func dimensions(cands []CandidatePair) (rows, cols int) {
	for _, c := range cands {
		if c.Row+1 > rows {
			rows = c.Row + 1
		}
		if c.Col+1 > cols {
			cols = c.Col + 1
		}
	}
	return rows, cols
}

// exactPosteriors computes the permanent-style partition function by DP
// over subsets of the smaller side.
func exactPosteriors(cands []CandidatePair, weights []float64, rows, cols int) []float64 {
	// Make columns the mask dimension (swap if rows is smaller).
	swapped := false
	if rows < cols {
		swapped = true
		rows, cols = cols, rows
	}
	byRow := make([][]cell, rows)
	for i, c := range cands {
		r, cl := c.Row, c.Col
		if swapped {
			r, cl = cl, r
		}
		byRow[r] = append(byRow[r], cell{col: cl, w: weights[i], cand: i})
	}

	// Z(banRow, banColMask): partition function over matchings avoiding a
	// row and set of columns. We need Z(-1, 0) and, per candidate, the
	// partition function excluding its row and column. Recompute per
	// candidate: dimensions are ≤ MaxExactSide so this stays cheap.
	zTotal := partition(byRow, -1, 0)
	out := make([]float64, len(cands))
	for i, c := range cands {
		r, cl := c.Row, c.Col
		if swapped {
			r, cl = cl, r
		}
		zWithout := partition(byRow, r, 1<<uint(cl))
		out[i] = weights[i] * zWithout / zTotal
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// cell is one candidate pair viewed from its row: the column it occupies,
// its weight, and its index in the candidate list.
type cell struct {
	col  int
	w    float64
	cand int
}

// partition sums ∏ w over injective partial matchings that avoid banRow
// and the columns in banMask. DP over rows with a map from used-column
// masks to accumulated weight. Masks are visited in sorted order, never
// map order: float accumulation order decides the rounding, and the
// partition function must round identically on every run for results to
// stay byte-identical.
func partition(byRow [][]cell, banRow int, banMask uint32) float64 {
	states := map[uint32]float64{banMask: 1}
	masks := []uint32{banMask}
	for r := range byRow {
		if r == banRow || len(byRow[r]) == 0 {
			continue
		}
		next := make(map[uint32]float64, len(states)*2)
		for _, mask := range masks {
			acc := states[mask]
			// Row unmatched.
			next[mask] += acc
			// Row matched to an unused column.
			for _, c := range byRow[r] {
				bit := uint32(1) << uint(c.col)
				if mask&bit == 0 {
					next[mask|bit] += acc * c.w
				}
			}
		}
		states = next
		masks = masks[:0]
		for mask := range next {
			masks = append(masks, mask)
		}
		slices.Sort(masks)
	}
	total := 0.0
	for _, mask := range masks {
		total += states[mask]
	}
	return total
}

// approxPosteriors is the fallback for neighborhoods larger than
// MaxExactSide on both sides: each candidate competes only with the other
// candidates in its own row and column (exact when that sub-graph is a
// star): Pr[p] ≈ w_p / (1 + Σ_{q ∈ row(p) ∪ col(p)} w_q).
func approxPosteriors(cands []CandidatePair, weights []float64) []float64 {
	rows, cols := dimensions(cands)
	rowSum := make([]float64, rows)
	colSum := make([]float64, cols)
	for i, c := range cands {
		rowSum[c.Row] += weights[i]
		colSum[c.Col] += weights[i]
	}
	out := make([]float64, len(cands))
	for i, c := range cands {
		denom := 1 + rowSum[c.Row] + colSum[c.Col] - weights[i]
		out[i] = weights[i] / denom
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

func clampProb(p float64) float64 {
	const lo, hi = 0.01, 0.99
	if math.IsNaN(p) {
		return lo
	}
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}
