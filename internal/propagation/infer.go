package propagation

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/pair"
)

// BallEntry is one inferred vertex of a ζ-bounded single-source run: the
// dense vertex index and the bounded distance dist(q, p) ≤ ζ.
type BallEntry struct {
	Idx  int32
	Dist float64
}

// Ball is the emitted result of one single-source run: the vertices p ≠ q
// with dist(q, p) ≤ ζ, ascending in Idx. The flat sorted layout replaces
// the map[int]float64 the engine used to allocate per source: consumers
// iterate it in deterministic order for free and membership is a binary
// search.
type Ball []BallEntry

// Get returns dist(q, j) and whether j is in the ball.
//
//remp:hotpath
func (b Ball) Get(j int) (float64, bool) {
	k, ok := slices.BinarySearchFunc(b, int32(j), func(e BallEntry, target int32) int {
		return int(e.Idx - target)
	})
	if !ok {
		return 0, false
	}
	return b[k].Dist, true
}

// Inferred holds, for every vertex q, the set of vertices p reachable with
// path probability at least τ, i.e. dist(q,p) ≤ ζ = −log τ where edge
// lengths are −log Pr[m_v′|m_v]. This is the output of Algorithm 2.
type Inferred struct {
	pg   *ProbGraph
	zeta float64
	// dist[q] = the ball bt(q) of the paper; rev[p] lists the sources q
	// whose balls contain p (the paper's bt⁻¹(p)), ascending.
	dist []Ball
	rev  [][]int32
}

// Zeta returns the distance bound −log τ.
func (inf *Inferred) Zeta() float64 { return inf.zeta }

// InferAll computes the bounded distance maps of Algorithm 2 by running a
// ζ-bounded Dijkstra from every vertex, fanned across GOMAXPROCS
// goroutines. It produces exactly the same distances as InferAllFW (the
// paper's modified Floyd–Warshall, kept for fidelity and cross-checked in
// tests) but scales linearly rather than quadratically in the per-vertex
// reachable-set size, which dominates on the dense connected components of
// IIMB-like datasets.
func (pg *ProbGraph) InferAll(tau float64) *Inferred {
	inf := &Inferred{pg: pg, zeta: zetaOf(tau)}
	inf.dist = pg.computeAll(inf.zeta)
	inf.rev = buildRev(inf.dist, pg.g.NumVertices())
	return inf
}

// computeAll runs the parallel per-source Dijkstra fan-out; it is shared
// by InferAll and the Engine's full rebuild.
func (pg *ProbGraph) computeAll(zeta float64) []Ball {
	n := pg.g.NumVertices()
	dist := make([]Ball, n)
	srcs := make([]int, n)
	for i := range srcs {
		srcs[i] = i
	}
	pg.inferSources(zeta, srcs, dist)
	return dist
}

// buildRev inverts the balls: rev[p] lists the sources whose ball contains
// p. Iterating sources ascending makes every rev row ascending for free;
// one flat backing array holds all rows (full slice expressions keep later
// appends from clobbering neighbors).
func buildRev(dist []Ball, n int) [][]int32 {
	cnt := make([]int32, n+1)
	total := 0
	for _, b := range dist {
		total += len(b)
		for _, en := range b {
			cnt[en.Idx+1]++
		}
	}
	start := make([]int32, n+1)
	for j := 0; j < n; j++ {
		start[j+1] = start[j] + cnt[j+1]
	}
	flat := make([]int32, total)
	fill := append([]int32(nil), start[:n]...)
	for i, b := range dist {
		for _, en := range b {
			flat[fill[en.Idx]] = int32(i)
			fill[en.Idx]++
		}
	}
	rev := make([][]int32, n)
	for j := 0; j < n; j++ {
		rev[j] = flat[start[j]:start[j+1]:start[j+1]]
	}
	return rev
}

// inferAllSerial is the single-goroutine reference implementation of
// InferAll, kept for benchmarking the parallel fan-out against.
func (pg *ProbGraph) inferAllSerial(tau float64) *Inferred {
	n := pg.g.NumVertices()
	inf := &Inferred{pg: pg, zeta: zetaOf(tau), dist: make([]Ball, n)}
	sc := getScratch(n)
	for i := 0; i < n; i++ {
		inf.dist[i] = pg.inferFromIndex(i, inf.zeta, sc)
	}
	putScratch(sc)
	inf.rev = buildRev(inf.dist, n)
	return inf
}

// minParallelSources is the fan-out cutoff: below it, goroutine startup
// costs more than the Dijkstra work it would parallelize.
const minParallelSources = 64

// inferSources computes the ζ-bounded single-source balls for every source
// index in srcs, writing results[k] for srcs[k]. Work is distributed over
// GOMAXPROCS goroutines via an atomic cursor; each worker owns one pooled
// scratch for its whole share, and each source's ball is independent, so
// the result is deterministic regardless of scheduling.
func (pg *ProbGraph) inferSources(zeta float64, srcs []int, results []Ball) {
	n := pg.g.NumVertices()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers <= 1 || len(srcs) < minParallelSources {
		sc := getScratch(n)
		for k, s := range srcs {
			results[k] = pg.inferFromIndex(s, zeta, sc)
		}
		putScratch(sc)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := getScratch(n)
			defer putScratch(sc)
			for {
				k := int(cursor.Add(1)) - 1
				if k >= len(srcs) {
					return
				}
				results[k] = pg.inferFromIndex(srcs[k], zeta, sc)
			}
		}()
	}
	wg.Wait()
}

// InferAllFW runs the modified Floyd–Warshall of Algorithm 2: per-vertex
// bounded distance maps are seeded with single edges of length ≤ ζ and
// relaxed through every intermediate vertex, touching only the reachable
// sets. Because all lengths are nonnegative, any subpath of a ζ-bounded
// path is itself ζ-bounded, so restricting the maps to entries ≤ ζ is
// lossless. It is kept as the paper-faithful oracle that the Dijkstra
// engine is cross-checked against; it reads the CSR (and any unfolded
// overlay) but works on plain maps, converted to balls at the end.
func (pg *ProbGraph) InferAllFW(tau float64) *Inferred {
	n := pg.g.NumVertices()
	zeta := zetaOf(tau)
	dist := make([]map[int32]float64, n)
	rev := make([]map[int32]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = make(map[int32]float64)
		rev[i] = make(map[int32]float64)
	}
	// Lines 3–5: seed with single edges.
	seed := func(i int, j int32, l float64) {
		if l <= zeta {
			dist[i][j] = l
			rev[j][int32(i)] = l
		}
	}
	for i := 0; i < n; i++ {
		for e := pg.rowStart[i]; e < pg.rowStart[i+1]; e++ {
			if pg.prob[e] > 0 {
				seed(i, pg.colIdx[e], pg.length[e])
			}
		}
		if pg.ovOut != nil {
			for j, p := range pg.ovOut[i] {
				seed(i, j, -math.Log(p))
			}
		}
	}
	// Lines 6–11: relax through each intermediate k.
	for k := 0; k < n; k++ {
		dk := dist[k]
		rk := rev[k]
		if len(dk) == 0 || len(rk) == 0 {
			continue
		}
		for i, dik := range rk {
			for j, dkj := range dk {
				if i == j {
					continue
				}
				d := dik + dkj
				if d > zeta {
					continue
				}
				if cur, ok := dist[i][j]; !ok || d < cur {
					dist[i][j] = d
					rev[j][i] = d
				}
			}
		}
	}
	inf := &Inferred{pg: pg, zeta: zeta, dist: make([]Ball, n)}
	for i := 0; i < n; i++ {
		inf.dist[i] = ballFromMap(dist[i])
	}
	inf.rev = buildRev(inf.dist, n)
	return inf
}

// ballFromMap converts a sparse distance map into the sorted Ball layout.
func ballFromMap(m map[int32]float64) Ball {
	b := make(Ball, 0, len(m))
	for j, d := range m {
		b = append(b, BallEntry{Idx: j, Dist: d})
	}
	slices.SortFunc(b, func(x, y BallEntry) int { return int(x.Idx - y.Idx) })
	return b
}

// InferFrom runs a single-source bounded Dijkstra from q, returning the
// ball of vertices with dist ≤ ζ (excluding q itself). It is equivalent to
// the q-th row of InferAll and is used for incremental queries and as a
// cross-check oracle in tests.
func (pg *ProbGraph) InferFrom(q pair.Pair, tau float64) Ball {
	src := pg.g.IndexOf(q)
	if src < 0 {
		return nil
	}
	sc := getScratch(pg.g.NumVertices())
	b := pg.inferFromIndex(src, zetaOf(tau), sc)
	putScratch(sc)
	return b
}

// inferFromIndex is the hot Dijkstra loop shared by InferAll, InferFrom
// and the incremental Engine: a ζ-bounded single-source run from vertex
// index src on the caller-owned scratch. Stale heap entries are skipped by
// comparing the popped distance against the current best instead of a
// visited set; relaxations walk the CSR row with precomputed −log lengths
// (removed slots carry +Inf and fall to the ζ test the loop already
// performs). The only allocation is the returned Ball.
//
//remp:hotpath
func (pg *ProbGraph) inferFromIndex(src int, zeta float64, sc *scratch) Ball {
	sc.begin()
	sc.reach(int32(src), 0)
	sc.push(heapEntry{0, int32(src)})
	for len(sc.heap) > 0 {
		it := sc.pop()
		if it.d > sc.dist[it.v] {
			continue // superseded entry
		}
		for e := pg.rowStart[it.v]; e < pg.rowStart[it.v+1]; e++ {
			d := it.d + pg.length[e]
			if d > zeta {
				continue
			}
			j := pg.colIdx[e]
			if !sc.visited(j) {
				sc.reach(j, d)
				sc.push(heapEntry{d, j})
			} else if d < sc.dist[j] {
				sc.dist[j] = d
				sc.push(heapEntry{d, j})
			}
		}
		if pg.ovOut != nil {
			for j, p := range pg.ovOut[it.v] {
				d := it.d - math.Log(p)
				if d > zeta {
					continue
				}
				if !sc.visited(j) {
					sc.reach(j, d)
					sc.push(heapEntry{d, j})
				} else if d < sc.dist[j] {
					sc.dist[j] = d
					sc.push(heapEntry{d, j})
				}
			}
		}
	}
	ball := make(Ball, 0, len(sc.touched)-1)
	for _, j := range sc.touched {
		if int(j) == src {
			continue
		}
		ball = append(ball, BallEntry{Idx: j, Dist: sc.dist[j]})
	}
	slices.SortFunc(ball, func(a, b BallEntry) int { return int(a.Idx - b.Idx) })
	return ball
}

// zetaOf converts the precision threshold τ into the distance bound
// ζ = −log τ. τ must already be validated at the API boundary
// (core.Config.Validate / remp.Options): an out-of-range value here is a
// programming error, not user input, so it panics instead of being
// silently coerced.
func zetaOf(tau float64) float64 {
	if math.IsNaN(tau) || tau <= 0 || tau > 1 {
		panic(fmt.Sprintf("propagation: tau = %v out of range (0, 1]; validate at the core.Config / remp.Options boundary", tau))
	}
	// Tiny slack absorbs floating-point noise in summed logs.
	return -math.Log(tau) + 1e-12
}

// Set returns inferred(q): the vertex pairs p ≠ q with Pr[m_p | m_q] ≥ τ.
func (inf *Inferred) Set(q pair.Pair) []pair.Pair {
	i := inf.pg.g.IndexOf(q)
	if i < 0 {
		return nil
	}
	verts := inf.pg.g.Vertices()
	out := make([]pair.Pair, 0, len(inf.dist[i]))
	for _, en := range inf.dist[i] {
		out = append(out, verts[en.Idx])
	}
	return out
}

// Ball returns inferred(q) by dense index (q excluded), ascending in
// vertex index. The slice is the Inferred's own; callers must not mutate
// it.
func (inf *Inferred) Ball(q int) Ball { return inf.dist[q] }

// Prob returns the propagated probability Pr[m_p | m_q] = e^{−dist(q,p)},
// or 0 if p is not inferred from q. Pr[m_q | m_q] = 1.
func (inf *Inferred) Prob(q, p pair.Pair) float64 {
	i := inf.pg.g.IndexOf(q)
	j := inf.pg.g.IndexOf(p)
	if i < 0 || j < 0 {
		return 0
	}
	if i == j {
		return 1
	}
	d, ok := inf.dist[i].Get(j)
	if !ok {
		return 0
	}
	return math.Exp(-d)
}

// DistOrder returns the ball's positions ordered by (distance, tie-break
// pair order): the order a confirmed match propagates in, so the 1:1
// constraint lets the most probable pair of an entity win.
func (b Ball) DistOrder(verts []pair.Pair) []int32 {
	order := make([]int32, len(b))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(x, y int32) int {
		ex, ey := b[x], b[y]
		if ex.Dist != ey.Dist {
			if ex.Dist < ey.Dist {
				return -1
			}
			return 1
		}
		if verts[ex.Idx].Less(verts[ey.Idx]) {
			return -1
		}
		return 1
	})
	return order
}
