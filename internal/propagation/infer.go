package propagation

import (
	"container/heap"
	"math"

	"repro/internal/pair"
)

// Inferred holds, for every vertex q, the set of vertices p reachable with
// path probability at least τ, i.e. dist(q,p) ≤ ζ = −log τ where edge
// lengths are −log Pr[m_v′|m_v]. This is the output of Algorithm 2.
type Inferred struct {
	pg   *ProbGraph
	zeta float64
	// dist[q][p] = shortest bounded distance (the paper's bt(q));
	// rev[p][q] mirrors it (the paper's bt⁻¹(p)).
	dist []map[int]float64
	rev  []map[int]float64
}

// Zeta returns the distance bound −log τ.
func (inf *Inferred) Zeta() float64 { return inf.zeta }

// InferAll computes the bounded distance maps of Algorithm 2 by running a
// ζ-bounded Dijkstra from every vertex. It produces exactly the same maps
// as InferAllFW (the paper's modified Floyd–Warshall, kept for fidelity
// and cross-checked in tests) but scales linearly rather than
// quadratically in the per-vertex reachable-set size, which dominates on
// the dense connected components of IIMB-like datasets.
func (pg *ProbGraph) InferAll(tau float64) *Inferred {
	n := pg.g.NumVertices()
	inf := &Inferred{
		pg:   pg,
		zeta: zetaOf(tau),
		dist: make([]map[int]float64, n),
		rev:  make([]map[int]float64, n),
	}
	verts := pg.g.Vertices()
	for i := 0; i < n; i++ {
		inf.rev[i] = make(map[int]float64)
	}
	for i := 0; i < n; i++ {
		inf.dist[i] = pg.InferFrom(verts[i], tau)
		for j, d := range inf.dist[i] {
			inf.rev[j][i] = d
		}
	}
	return inf
}

// InferAllFW runs the modified Floyd–Warshall of Algorithm 2: per-vertex
// bounded distance maps are seeded with single edges of length ≤ ζ and
// relaxed through every intermediate vertex, touching only the reachable
// sets. Because all lengths are nonnegative, any subpath of a ζ-bounded
// path is itself ζ-bounded, so restricting the maps to entries ≤ ζ is
// lossless.
func (pg *ProbGraph) InferAllFW(tau float64) *Inferred {
	n := pg.g.NumVertices()
	inf := &Inferred{
		pg:   pg,
		zeta: zetaOf(tau),
		dist: make([]map[int]float64, n),
		rev:  make([]map[int]float64, n),
	}
	for i := 0; i < n; i++ {
		inf.dist[i] = make(map[int]float64)
		inf.rev[i] = make(map[int]float64)
	}
	// Lines 3–5: seed with single edges.
	for i := 0; i < n; i++ {
		for j, p := range pg.out[i] {
			if l := -math.Log(p); l <= inf.zeta {
				inf.dist[i][j] = l
				inf.rev[j][i] = l
			}
		}
	}
	// Lines 6–11: relax through each intermediate k.
	for k := 0; k < n; k++ {
		dk := inf.dist[k]
		rk := inf.rev[k]
		if len(dk) == 0 || len(rk) == 0 {
			continue
		}
		for i, dik := range rk {
			for j, dkj := range dk {
				if i == j {
					continue
				}
				d := dik + dkj
				if d > inf.zeta {
					continue
				}
				if cur, ok := inf.dist[i][j]; !ok || d < cur {
					inf.dist[i][j] = d
					inf.rev[j][i] = d
				}
			}
		}
	}
	return inf
}

// InferFrom runs a single-source bounded Dijkstra from q, returning the
// map p → dist(q,p) for dist ≤ ζ (excluding q itself). It is equivalent to
// the q-th row of InferAll and is used for incremental queries and as a
// cross-check oracle in tests.
func (pg *ProbGraph) InferFrom(q pair.Pair, tau float64) map[int]float64 {
	src := pg.g.IndexOf(q)
	if src < 0 {
		return nil
	}
	zeta := zetaOf(tau)
	dist := map[int]float64{src: 0}
	h := &distHeap{{src, 0}}
	done := map[int]bool{}
	for h.Len() > 0 {
		item := heap.Pop(h).(distItem)
		if done[item.v] {
			continue
		}
		done[item.v] = true
		for j, p := range pg.out[item.v] {
			l := -math.Log(p)
			d := item.d + l
			if d > zeta {
				continue
			}
			if cur, ok := dist[j]; !ok || d < cur {
				dist[j] = d
				heap.Push(h, distItem{j, d})
			}
		}
	}
	delete(dist, src)
	return dist
}

func zetaOf(tau float64) float64 {
	if tau <= 0 || tau > 1 {
		tau = 0.9
	}
	// Tiny slack absorbs floating-point noise in summed logs.
	return -math.Log(tau) + 1e-12
}

// Set returns inferred(q): the vertex pairs p ≠ q with Pr[m_p | m_q] ≥ τ.
func (inf *Inferred) Set(q pair.Pair) []pair.Pair {
	i := inf.pg.g.IndexOf(q)
	if i < 0 {
		return nil
	}
	verts := inf.pg.g.Vertices()
	out := make([]pair.Pair, 0, len(inf.dist[i]))
	for j := range inf.dist[i] {
		out = append(out, verts[j])
	}
	return out
}

// SetIndexes returns inferred(q) as vertex indexes (q excluded).
func (inf *Inferred) SetIndexes(q int) map[int]float64 { return inf.dist[q] }

// Prob returns the propagated probability Pr[m_p | m_q] = e^{−dist(q,p)},
// or 0 if p is not inferred from q. Pr[m_q | m_q] = 1.
func (inf *Inferred) Prob(q, p pair.Pair) float64 {
	i := inf.pg.g.IndexOf(q)
	j := inf.pg.g.IndexOf(p)
	if i < 0 || j < 0 {
		return 0
	}
	if i == j {
		return 1
	}
	d, ok := inf.dist[i][j]
	if !ok {
		return 0
	}
	return math.Exp(-d)
}

// distItem and distHeap implement container/heap for Dijkstra.
type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
