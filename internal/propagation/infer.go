package propagation

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pair"
)

// Inferred holds, for every vertex q, the set of vertices p reachable with
// path probability at least τ, i.e. dist(q,p) ≤ ζ = −log τ where edge
// lengths are −log Pr[m_v′|m_v]. This is the output of Algorithm 2.
type Inferred struct {
	pg   *ProbGraph
	zeta float64
	// dist[q][p] = shortest bounded distance (the paper's bt(q));
	// rev[p][q] mirrors it (the paper's bt⁻¹(p)).
	dist []map[int]float64
	rev  []map[int]float64
}

// Zeta returns the distance bound −log τ.
func (inf *Inferred) Zeta() float64 { return inf.zeta }

// InferAll computes the bounded distance maps of Algorithm 2 by running a
// ζ-bounded Dijkstra from every vertex, fanned across GOMAXPROCS
// goroutines. It produces exactly the same maps as InferAllFW (the paper's
// modified Floyd–Warshall, kept for fidelity and cross-checked in tests)
// but scales linearly rather than quadratically in the per-vertex
// reachable-set size, which dominates on the dense connected components of
// IIMB-like datasets.
func (pg *ProbGraph) InferAll(tau float64) *Inferred {
	inf := &Inferred{pg: pg, zeta: zetaOf(tau)}
	inf.dist, inf.rev = pg.computeAll(inf.zeta)
	return inf
}

// computeAll runs the parallel per-source Dijkstra fan-out and builds the
// reverse index; it is shared by InferAll and the Engine's full rebuild.
func (pg *ProbGraph) computeAll(zeta float64) (dist, rev []map[int]float64) {
	n := pg.g.NumVertices()
	dist = make([]map[int]float64, n)
	rev = make([]map[int]float64, n)
	srcs := make([]int, n)
	for i := range srcs {
		srcs[i] = i
	}
	pg.inferSources(zeta, srcs, dist)
	for i := 0; i < n; i++ {
		rev[i] = make(map[int]float64)
	}
	for i, m := range dist {
		for j, d := range m {
			rev[j][i] = d
		}
	}
	return dist, rev
}

// inferAllSerial is the single-goroutine reference implementation of
// InferAll, kept for benchmarking the parallel fan-out against.
func (pg *ProbGraph) inferAllSerial(tau float64) *Inferred {
	n := pg.g.NumVertices()
	inf := &Inferred{
		pg:   pg,
		zeta: zetaOf(tau),
		dist: make([]map[int]float64, n),
		rev:  make([]map[int]float64, n),
	}
	for i := 0; i < n; i++ {
		inf.rev[i] = make(map[int]float64)
	}
	for i := 0; i < n; i++ {
		inf.dist[i] = pg.inferFromIndex(i, inf.zeta)
		for j, d := range inf.dist[i] {
			inf.rev[j][i] = d
		}
	}
	return inf
}

// minParallelSources is the fan-out cutoff: below it, goroutine startup
// costs more than the Dijkstra work it would parallelize.
const minParallelSources = 64

// inferSources computes the ζ-bounded single-source maps for every source
// index in srcs, writing results[k] for srcs[k]. Work is distributed over
// GOMAXPROCS goroutines via an atomic cursor; each source's map is
// independent, so the result is deterministic regardless of scheduling.
func (pg *ProbGraph) inferSources(zeta float64, srcs []int, results []map[int]float64) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers <= 1 || len(srcs) < minParallelSources {
		for k, s := range srcs {
			results[k] = pg.inferFromIndex(s, zeta)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := int(cursor.Add(1)) - 1
				if k >= len(srcs) {
					return
				}
				results[k] = pg.inferFromIndex(srcs[k], zeta)
			}
		}()
	}
	wg.Wait()
}

// InferAllFW runs the modified Floyd–Warshall of Algorithm 2: per-vertex
// bounded distance maps are seeded with single edges of length ≤ ζ and
// relaxed through every intermediate vertex, touching only the reachable
// sets. Because all lengths are nonnegative, any subpath of a ζ-bounded
// path is itself ζ-bounded, so restricting the maps to entries ≤ ζ is
// lossless. It is kept as the paper-faithful oracle that the Dijkstra
// engine is cross-checked against.
func (pg *ProbGraph) InferAllFW(tau float64) *Inferred {
	n := pg.g.NumVertices()
	inf := &Inferred{
		pg:   pg,
		zeta: zetaOf(tau),
		dist: make([]map[int]float64, n),
		rev:  make([]map[int]float64, n),
	}
	for i := 0; i < n; i++ {
		inf.dist[i] = make(map[int]float64)
		inf.rev[i] = make(map[int]float64)
	}
	// Lines 3–5: seed with single edges.
	for i := 0; i < n; i++ {
		for j, p := range pg.out[i] {
			if l := -math.Log(p); l <= inf.zeta {
				inf.dist[i][j] = l
				inf.rev[j][i] = l
			}
		}
	}
	// Lines 6–11: relax through each intermediate k.
	for k := 0; k < n; k++ {
		dk := inf.dist[k]
		rk := inf.rev[k]
		if len(dk) == 0 || len(rk) == 0 {
			continue
		}
		for i, dik := range rk {
			for j, dkj := range dk {
				if i == j {
					continue
				}
				d := dik + dkj
				if d > inf.zeta {
					continue
				}
				if cur, ok := inf.dist[i][j]; !ok || d < cur {
					inf.dist[i][j] = d
					inf.rev[j][i] = d
				}
			}
		}
	}
	return inf
}

// InferFrom runs a single-source bounded Dijkstra from q, returning the
// map p → dist(q,p) for dist ≤ ζ (excluding q itself). It is equivalent to
// the q-th row of InferAll and is used for incremental queries and as a
// cross-check oracle in tests.
func (pg *ProbGraph) InferFrom(q pair.Pair, tau float64) map[int]float64 {
	src := pg.g.IndexOf(q)
	if src < 0 {
		return nil
	}
	return pg.inferFromIndex(src, zetaOf(tau))
}

// inferFromIndex is the hot Dijkstra loop shared by InferAll, InferFrom
// and the incremental Engine: a ζ-bounded single-source run from vertex
// index src. Stale heap entries are skipped by comparing the popped
// distance against the current best instead of a visited set.
func (pg *ProbGraph) inferFromIndex(src int, zeta float64) map[int]float64 {
	dist := map[int]float64{src: 0}
	h := make(distHeap, 1, 64)
	h[0] = distItem{src, 0}
	for h.Len() > 0 {
		item := heap.Pop(&h).(distItem)
		if item.d > dist[item.v] {
			continue // superseded entry
		}
		for j, p := range pg.out[item.v] {
			d := item.d - math.Log(p)
			if d > zeta {
				continue
			}
			if cur, ok := dist[j]; !ok || d < cur {
				dist[j] = d
				heap.Push(&h, distItem{j, d})
			}
		}
	}
	delete(dist, src)
	return dist
}

// zetaOf converts the precision threshold τ into the distance bound
// ζ = −log τ. τ must already be validated at the API boundary
// (core.Config.Validate / remp.Options): an out-of-range value here is a
// programming error, not user input, so it panics instead of being
// silently coerced.
func zetaOf(tau float64) float64 {
	if math.IsNaN(tau) || tau <= 0 || tau > 1 {
		panic(fmt.Sprintf("propagation: tau = %v out of range (0, 1]; validate at the core.Config / remp.Options boundary", tau))
	}
	// Tiny slack absorbs floating-point noise in summed logs.
	return -math.Log(tau) + 1e-12
}

// Set returns inferred(q): the vertex pairs p ≠ q with Pr[m_p | m_q] ≥ τ.
func (inf *Inferred) Set(q pair.Pair) []pair.Pair {
	i := inf.pg.g.IndexOf(q)
	if i < 0 {
		return nil
	}
	verts := inf.pg.g.Vertices()
	out := make([]pair.Pair, 0, len(inf.dist[i]))
	for j := range inf.dist[i] {
		out = append(out, verts[j])
	}
	return out
}

// SetIndexes returns inferred(q) as vertex indexes (q excluded).
func (inf *Inferred) SetIndexes(q int) map[int]float64 { return inf.dist[q] }

// Prob returns the propagated probability Pr[m_p | m_q] = e^{−dist(q,p)},
// or 0 if p is not inferred from q. Pr[m_q | m_q] = 1.
func (inf *Inferred) Prob(q, p pair.Pair) float64 {
	i := inf.pg.g.IndexOf(q)
	j := inf.pg.g.IndexOf(p)
	if i < 0 || j < 0 {
		return 0
	}
	if i == j {
		return 1
	}
	d, ok := inf.dist[i][j]
	if !ok {
		return 0
	}
	return math.Exp(-d)
}

// distItem and distHeap implement container/heap for Dijkstra.
type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
