package propagation

import (
	"math"
	"sort"

	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/kb"
	"repro/internal/pair"
)

// ProbGraph is the probabilistic ER graph: the ER graph with each directed
// edge (v, v′) annotated with the conditional probability Pr[m_v′ | m_v]
// obtained from neighbor propagation. When several labels connect the same
// ordered vertex pair, the most informative (maximum) probability is kept.
type ProbGraph struct {
	g   *ergraph.Graph
	out []map[int]float64 // out[i][j] = Pr[m_j | m_i]
	in  []map[int]float64 // in[j][i]  = Pr[m_j | m_i]
}

// Params configures probabilistic graph construction.
type Params struct {
	// Priors maps candidate pairs to prior match probabilities Pr[m_p];
	// missing pairs default to DefaultPrior.
	Priors map[pair.Pair]float64
	// DefaultPrior is used for pairs absent from Priors (0.5 if zero).
	DefaultPrior float64
	// Consistency maps each edge label to its fitted (ε1, ε2); missing
	// labels fall back to ε = 0.5 on both sides.
	Consistency map[ergraph.RelPair]consistency.Estimate
	// MaxExactCandidates bounds the exact marginalization instance size
	// (number of candidate pairs in one neighborhood); larger instances use
	// the local-exclusion approximation. Default 48.
	MaxExactCandidates int
}

func (p *Params) fill() {
	if p.DefaultPrior == 0 {
		p.DefaultPrior = 0.5
	}
	if p.MaxExactCandidates == 0 {
		p.MaxExactCandidates = 48
	}
}

// BuildProb computes conditional probabilities for every edge of g.
func BuildProb(g *ergraph.Graph, k1, k2 *kb.KB, params Params) *ProbGraph {
	params.fill()
	pg := &ProbGraph{
		g:   g,
		out: make([]map[int]float64, g.NumVertices()),
		in:  make([]map[int]float64, g.NumVertices()),
	}
	for i := range pg.out {
		pg.out[i] = make(map[int]float64)
		pg.in[i] = make(map[int]float64)
	}
	for i, v := range g.Vertices() {
		byLabel := g.OutByLabel(v)
		// Deterministic label order.
		labels := make([]ergraph.RelPair, 0, len(byLabel))
		for l := range byLabel {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(a, b int) bool {
			if labels[a].R1 != labels[b].R1 {
				return labels[a].R1 < labels[b].R1
			}
			return labels[a].R2 < labels[b].R2
		})
		for _, label := range labels {
			edges := byLabel[label]
			nb := buildNeighborhood(k1, k2, v, label, edges, params)
			if len(nb.Cands) > params.MaxExactCandidates {
				// Force the approximation path by inflating dimensions.
				post := approxPosteriors(nb.Cands, candWeights(nb))
				pg.record(i, edges, nb, post)
				continue
			}
			post := nb.Posteriors()
			pg.record(i, edges, nb, post)
		}
	}
	return pg
}

func candWeights(nb *Neighborhood) []float64 {
	w := make([]float64, len(nb.Cands))
	for i, c := range nb.Cands {
		prior := clampProb(c.Prior)
		e1 := clampProb(nb.Eps1)
		e2 := clampProb(nb.Eps2)
		w[i] = prior / (1 - prior) * e1 / (1 - e1) * e2 / (1 - e2)
	}
	return w
}

func (pg *ProbGraph) record(from int, edges []ergraph.Edge, nb *Neighborhood, post []float64) {
	for ci, c := range nb.Cands {
		j := pg.g.IndexOf(c.Pair)
		if j < 0 || j == from {
			continue
		}
		if post[ci] > pg.out[from][j] {
			pg.out[from][j] = post[ci]
			pg.in[j][from] = post[ci]
		}
	}
	_ = edges
}

// buildNeighborhood assembles the propagation instance for vertex v and
// one edge label: distinct successor entities on each side index the
// rows/columns, and each successor pair that is a graph vertex becomes a
// candidate with its prior.
func buildNeighborhood(k1, k2 *kb.KB, v pair.Pair, label ergraph.RelPair, edges []ergraph.Edge, params Params) *Neighborhood {
	rowIdx := map[kb.EntityID]int{}
	colIdx := map[kb.EntityID]int{}
	nb := &Neighborhood{}
	if label.Inverse {
		nb.N1Size = len(k1.In(v.U1, label.R1))
		nb.N2Size = len(k2.In(v.U2, label.R2))
	} else {
		nb.N1Size = len(k1.Out(v.U1, label.R1))
		nb.N2Size = len(k2.Out(v.U2, label.R2))
	}
	est, ok := params.Consistency[label]
	if !ok {
		est = consistency.Estimate{Eps1: 0.5, Eps2: 0.5}
	}
	nb.Eps1, nb.Eps2 = est.Eps1, est.Eps2
	seen := map[pair.Pair]bool{}
	for _, e := range edges {
		if seen[e.To] {
			continue
		}
		seen[e.To] = true
		r, ok := rowIdx[e.To.U1]
		if !ok {
			r = len(rowIdx)
			rowIdx[e.To.U1] = r
		}
		c, ok := colIdx[e.To.U2]
		if !ok {
			c = len(colIdx)
			colIdx[e.To.U2] = c
		}
		prior, ok := params.Priors[e.To]
		if !ok {
			prior = params.DefaultPrior
		}
		nb.Cands = append(nb.Cands, CandidatePair{Row: r, Col: c, Pair: e.To, Prior: prior})
	}
	return nb
}

// Graph returns the underlying ER graph.
func (pg *ProbGraph) Graph() *ergraph.Graph { return pg.g }

// Prob returns Pr[m_to | m_from], or 0 when no edge exists.
func (pg *ProbGraph) Prob(from, to pair.Pair) float64 {
	i := pg.g.IndexOf(from)
	j := pg.g.IndexOf(to)
	if i < 0 || j < 0 {
		return 0
	}
	return pg.out[i][j]
}

// SetProb overrides an edge probability (used when re-estimating edges
// after truth inference).
func (pg *ProbGraph) SetProb(from, to pair.Pair, p float64) {
	i := pg.g.IndexOf(from)
	j := pg.g.IndexOf(to)
	if i < 0 || j < 0 || i == j {
		return
	}
	if p <= 0 {
		delete(pg.out[i], j)
		delete(pg.in[j], i)
		return
	}
	if p > 1 {
		p = 1
	}
	pg.out[i][j] = p
	pg.in[j][i] = p
}

// NumEdges returns the number of positive-probability directed edges.
func (pg *ProbGraph) NumEdges() int {
	n := 0
	for _, m := range pg.out {
		n += len(m)
	}
	return n
}

// Length returns −log Pr[m_to | m_from], the shortest-path edge length of
// §VI-B, or +Inf when the edge is absent.
func (pg *ProbGraph) Length(from, to pair.Pair) float64 {
	p := pg.Prob(from, to)
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log(p)
}
