package propagation

import (
	"math"
	"slices"

	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/kb"
	"repro/internal/pair"
)

// ProbGraph is the probabilistic ER graph: the ER graph with each directed
// edge (v, v′) annotated with the conditional probability Pr[m_v′ | m_v]
// obtained from neighbor propagation. When several labels connect the same
// ordered vertex pair, the most informative (maximum) probability is kept.
//
// Storage is compressed sparse row, built once by BuildProb: row i's edges
// occupy colIdx/prob/length[rowStart[i]:rowStart[i+1]], ascending in
// colIdx, with length[e] = −log prob[e] precomputed so the Dijkstra hot
// loop never calls math.Log. The in-CSR (inRowStart/inSrc/inPos) mirrors
// the topology for reverse traversal; inPos names the out-CSR slot of each
// in-edge, so the prob/length arrays stay the single source of truth.
// Edge deletions zero the slot in place (prob 0, length +Inf — the
// ζ-bound prunes them with the comparison it already performs); edges
// added after the build that have no slot go to a sparse overlay, which
// Fold merges back into a compacted CSR on re-estimation rebuilds.
type ProbGraph struct {
	g *ergraph.Graph

	rowStart []int32
	colIdx   []int32
	prob     []float64
	length   []float64 // −log prob, +Inf for removed slots

	// in-CSR mirror: vertex j's in-edges are inSrc/inPos[inRowStart[j]:
	// inRowStart[j+1]]; inSrc is the source vertex, inPos the out-CSR slot.
	inRowStart []int32
	inSrc      []int32
	inPos      []int32

	// Live (positive-probability) degree per vertex, overlay included;
	// maintained by setProbAt/detachAt so DetachVertex can skip vertices
	// that are already bare without scanning their rows.
	outDeg []int32
	inDeg  []int32

	// Overlay for edges added after the CSR was built (SetProb on a missing
	// slot). nil until first needed, so the hot loop pays one pointer test.
	ovOut   []map[int32]float64
	ovIn    []map[int32]struct{}
	ovCount int
}

// Params configures probabilistic graph construction.
type Params struct {
	// Priors maps candidate pairs to prior match probabilities Pr[m_p];
	// missing pairs default to DefaultPrior.
	Priors map[pair.Pair]float64
	// DefaultPrior is used for pairs absent from Priors (0.5 if zero).
	DefaultPrior float64
	// Consistency maps each edge label to its fitted (ε1, ε2); missing
	// labels fall back to ε = 0.5 on both sides.
	Consistency map[ergraph.RelPair]consistency.Estimate
	// MaxExactCandidates bounds the exact marginalization instance size
	// (number of candidate pairs in one neighborhood); larger instances use
	// the local-exclusion approximation. Default 48.
	MaxExactCandidates int
}

func (p *Params) fill() {
	if p.DefaultPrior == 0 {
		p.DefaultPrior = 0.5
	}
	if p.MaxExactCandidates == 0 {
		p.MaxExactCandidates = 48
	}
}

// BuildProb computes conditional probabilities for every edge of g.
// Rows accumulate through an epoch-stamped dense scratch (value + stamp
// per vertex), so the max-merge across labels costs no map operations and
// candidate indexes come straight from the graph's dense to-index arrays.
func BuildProb(g *ergraph.Graph, k1, k2 *kb.KB, params Params) *ProbGraph {
	params.fill()
	n := g.NumVertices()
	pg := &ProbGraph{g: g, rowStart: make([]int32, n+1)}
	rowVal := make([]float64, n)
	rowStamp := make([]uint32, n)
	var epoch uint32
	var js []int32
	nbb := newNBBuilder()
	verts := g.Vertices()
	for i := 0; i < n; i++ {
		epoch++
		js = js[:0]
		// Labels process in the canonical (R1, R2, Inverse) order; the
		// per-row result is a max-merge, so the order only fixes tie-free
		// determinism, not the values.
		for _, grp := range g.OutGroupsAt(i) {
			nb := nbb.build(k1, k2, verts[i], grp, params)
			var post []float64
			if len(nb.Cands) > params.MaxExactCandidates {
				// Force the approximation path by inflating dimensions.
				post = approxPosteriors(nb.Cands, candWeights(nb))
			} else {
				post = nb.Posteriors()
			}
			for ci, c := range nb.Cands {
				j := c.Idx
				if j < 0 || int(j) == i || post[ci] <= 0 {
					continue
				}
				if rowStamp[j] != epoch {
					rowStamp[j] = epoch
					rowVal[j] = post[ci]
					js = append(js, j)
				} else if post[ci] > rowVal[j] {
					rowVal[j] = post[ci]
				}
			}
		}
		slices.Sort(js)
		for _, j := range js {
			pg.colIdx = append(pg.colIdx, j)
			pg.prob = append(pg.prob, rowVal[j])
		}
		pg.rowStart[i+1] = int32(len(pg.colIdx))
	}
	pg.finish()
	return pg
}

// finish derives every secondary array (edge lengths, the in-CSR mirror,
// live degrees) from rowStart/colIdx/prob and resets the overlay. It is
// shared by BuildProb, Fold and the test constructors.
func (pg *ProbGraph) finish() {
	n := pg.g.NumVertices()
	m := len(pg.colIdx)
	pg.length = make([]float64, m)
	pg.outDeg = make([]int32, n)
	pg.inDeg = make([]int32, n)
	cnt := make([]int32, n+1)
	for e := 0; e < m; e++ {
		if pg.prob[e] > 0 {
			pg.length[e] = -math.Log(pg.prob[e])
		} else {
			pg.length[e] = math.Inf(1)
		}
		cnt[pg.colIdx[e]+1]++
	}
	pg.inRowStart = make([]int32, n+1)
	for j := 0; j < n; j++ {
		pg.inRowStart[j+1] = pg.inRowStart[j] + cnt[j+1]
	}
	pg.inSrc = make([]int32, m)
	pg.inPos = make([]int32, m)
	fill := append([]int32(nil), pg.inRowStart[:n]...)
	for i := 0; i < n; i++ {
		for e := pg.rowStart[i]; e < pg.rowStart[i+1]; e++ {
			j := pg.colIdx[e]
			k := fill[j]
			fill[j]++
			pg.inSrc[k] = int32(i)
			pg.inPos[k] = e
			if pg.prob[e] > 0 {
				pg.outDeg[i]++
				pg.inDeg[j]++
			}
		}
	}
	pg.ovOut, pg.ovIn, pg.ovCount = nil, nil, 0
}

func candWeights(nb *Neighborhood) []float64 {
	w := make([]float64, len(nb.Cands))
	for i, c := range nb.Cands {
		prior := clampProb(c.Prior)
		e1 := clampProb(nb.Eps1)
		e2 := clampProb(nb.Eps2)
		w[i] = prior / (1 - prior) * e1 / (1 - e1) * e2 / (1 - e2)
	}
	return w
}

// nbBuilder assembles propagation instances, reusing its maps and
// candidate buffer across every (vertex, label) of one BuildProb call —
// each neighborhood is consumed (posteriors recorded) before the next
// build overwrites it.
type nbBuilder struct {
	rowIdx map[kb.EntityID]int
	colIdx map[kb.EntityID]int
	seen   map[int32]struct{}
	nb     Neighborhood
}

func newNBBuilder() *nbBuilder {
	return &nbBuilder{
		rowIdx: map[kb.EntityID]int{},
		colIdx: map[kb.EntityID]int{},
		seen:   map[int32]struct{}{},
	}
}

// build assembles the propagation instance for vertex v and one edge
// label group: distinct successor entities on each side index the
// rows/columns, and each successor pair that is a graph vertex becomes a
// candidate with its prior. Candidates carry the dense vertex index from
// the group's To slice, so recording needs no pair lookups.
func (b *nbBuilder) build(k1, k2 *kb.KB, v pair.Pair, grp ergraph.LabelGroup, params Params) *Neighborhood {
	clear(b.rowIdx)
	clear(b.colIdx)
	clear(b.seen)
	rowIdx, colIdx := b.rowIdx, b.colIdx
	nb := &b.nb
	nb.Cands = nb.Cands[:0]
	label := grp.Label
	if label.Inverse {
		nb.N1Size = len(k1.In(v.U1, label.R1))
		nb.N2Size = len(k2.In(v.U2, label.R2))
	} else {
		nb.N1Size = len(k1.Out(v.U1, label.R1))
		nb.N2Size = len(k2.Out(v.U2, label.R2))
	}
	est, ok := params.Consistency[label]
	if !ok {
		est = consistency.Estimate{Eps1: 0.5, Eps2: 0.5}
	}
	nb.Eps1, nb.Eps2 = est.Eps1, est.Eps2
	for k, e := range grp.Edges {
		j := grp.To[k]
		if _, dup := b.seen[j]; dup {
			continue
		}
		b.seen[j] = struct{}{}
		r, ok := rowIdx[e.To.U1]
		if !ok {
			r = len(rowIdx)
			rowIdx[e.To.U1] = r
		}
		c, ok := colIdx[e.To.U2]
		if !ok {
			c = len(colIdx)
			colIdx[e.To.U2] = c
		}
		prior, ok := params.Priors[e.To]
		if !ok {
			prior = params.DefaultPrior
		}
		nb.Cands = append(nb.Cands, CandidatePair{Row: r, Col: c, Pair: e.To, Prior: prior, Idx: j})
	}
	return nb
}

// Graph returns the underlying ER graph.
func (pg *ProbGraph) Graph() *ergraph.Graph { return pg.g }

// slot binary-searches row i for column j, returning the out-CSR position
// or -1 when the row never had the edge.
//
//remp:hotpath
func (pg *ProbGraph) slot(i, j int) int32 {
	lo, hi := pg.rowStart[i], pg.rowStart[i+1]
	for lo < hi {
		mid := lo + (hi-lo)/2 // overflow-safe for edge counts near int32 max
		if pg.colIdx[mid] < int32(j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < pg.rowStart[i+1] && pg.colIdx[lo] == int32(j) {
		return lo
	}
	return -1
}

// probAt returns Pr[m_j | m_i] by dense index, or 0 when the edge is
// absent or was removed.
//
//remp:hotpath
func (pg *ProbGraph) probAt(i, j int) float64 {
	if e := pg.slot(i, j); e >= 0 {
		return pg.prob[e]
	}
	if pg.ovOut != nil {
		return pg.ovOut[i][int32(j)]
	}
	return 0
}

// setProbAt writes Pr[m_j | m_i] by dense index: in place when the CSR has
// the slot, through the overlay otherwise. p ≤ 0 removes the edge, p > 1
// clamps to 1. Degree counters track live edges on both endpoints.
func (pg *ProbGraph) setProbAt(i, j int, p float64) {
	if p > 1 {
		p = 1
	}
	if e := pg.slot(i, j); e >= 0 {
		old := pg.prob[e]
		if p <= 0 {
			if old > 0 {
				pg.prob[e] = 0
				pg.length[e] = math.Inf(1)
				pg.outDeg[i]--
				pg.inDeg[j]--
			}
			return
		}
		if old <= 0 {
			pg.outDeg[i]++
			pg.inDeg[j]++
		}
		pg.prob[e] = p
		pg.length[e] = -math.Log(p)
		return
	}
	if p <= 0 {
		if pg.ovOut == nil {
			return
		}
		if _, ok := pg.ovOut[i][int32(j)]; ok {
			delete(pg.ovOut[i], int32(j))
			delete(pg.ovIn[j], int32(i))
			pg.ovCount--
			pg.outDeg[i]--
			pg.inDeg[j]--
		}
		return
	}
	if pg.ovOut == nil {
		n := pg.g.NumVertices()
		pg.ovOut = make([]map[int32]float64, n)
		pg.ovIn = make([]map[int32]struct{}, n)
	}
	if pg.ovOut[i] == nil {
		pg.ovOut[i] = make(map[int32]float64, 2)
	}
	if _, ok := pg.ovOut[i][int32(j)]; !ok {
		pg.ovCount++
		pg.outDeg[i]++
		pg.inDeg[j]++
		if pg.ovIn[j] == nil {
			pg.ovIn[j] = make(map[int32]struct{}, 2)
		}
		pg.ovIn[j][int32(i)] = struct{}{}
	}
	pg.ovOut[i][int32(j)] = p
}

// detachAt removes every live edge incident to vertex i — CSR slots are
// zeroed in place through both mirrors, overlay edges are deleted.
//
//remp:hotpath
func (pg *ProbGraph) detachAt(i int) {
	for e := pg.rowStart[i]; e < pg.rowStart[i+1]; e++ {
		if pg.prob[e] > 0 {
			pg.prob[e] = 0
			pg.length[e] = math.Inf(1)
			pg.outDeg[i]--
			pg.inDeg[pg.colIdx[e]]--
		}
	}
	for k := pg.inRowStart[i]; k < pg.inRowStart[i+1]; k++ {
		e := pg.inPos[k]
		if pg.prob[e] > 0 {
			pg.prob[e] = 0
			pg.length[e] = math.Inf(1)
			pg.outDeg[pg.inSrc[k]]--
			pg.inDeg[i]--
		}
	}
	if pg.ovOut == nil {
		return
	}
	for j := range pg.ovOut[i] {
		delete(pg.ovIn[j], int32(i))
		pg.ovCount--
		pg.outDeg[i]--
		pg.inDeg[j]--
	}
	clear(pg.ovOut[i])
	for s := range pg.ovIn[i] {
		delete(pg.ovOut[s], int32(i))
		pg.ovCount--
		pg.outDeg[s]--
		pg.inDeg[i]--
	}
	clear(pg.ovIn[i])
}

// degreeAt returns the live out/in degree of vertex i (overlay included).
func (pg *ProbGraph) degreeAt(i int) (out, in int32) {
	return pg.outDeg[i], pg.inDeg[i]
}

// Fold merges the overlay back into a compacted CSR: removed slots are
// dropped, overlay edges gain real slots, and the secondary arrays are
// rebuilt. Re-estimation rebuilds call it so the steady-state hot path
// always runs on a pure CSR with an empty overlay.
func (pg *ProbGraph) Fold() {
	if pg.ovCount == 0 {
		pg.ovOut, pg.ovIn = nil, nil
		return
	}
	n := pg.g.NumVertices()
	newRowStart := make([]int32, n+1)
	newColIdx := make([]int32, 0, len(pg.colIdx)+pg.ovCount)
	newProb := make([]float64, 0, len(pg.colIdx)+pg.ovCount)
	type entry struct {
		j int32
		p float64
	}
	var row []entry
	for i := 0; i < n; i++ {
		row = row[:0]
		for e := pg.rowStart[i]; e < pg.rowStart[i+1]; e++ {
			if pg.prob[e] > 0 {
				row = append(row, entry{pg.colIdx[e], pg.prob[e]})
			}
		}
		if pg.ovOut != nil {
			for j, p := range pg.ovOut[i] {
				row = append(row, entry{j, p})
			}
		}
		// CSR and overlay are disjoint by the setProbAt invariant, so a
		// plain sort (no dedupe) restores the ascending-column layout.
		slices.SortFunc(row, func(a, b entry) int { return int(a.j) - int(b.j) })
		for _, en := range row {
			newColIdx = append(newColIdx, en.j)
			newProb = append(newProb, en.p)
		}
		newRowStart[i+1] = int32(len(newColIdx))
	}
	pg.rowStart, pg.colIdx, pg.prob = newRowStart, newColIdx, newProb
	pg.finish()
}

// Prob returns Pr[m_to | m_from], or 0 when no edge exists.
func (pg *ProbGraph) Prob(from, to pair.Pair) float64 {
	i := pg.g.IndexOf(from)
	j := pg.g.IndexOf(to)
	if i < 0 || j < 0 {
		return 0
	}
	return pg.probAt(i, j)
}

// SetProb overrides an edge probability (used when re-estimating edges
// after truth inference).
func (pg *ProbGraph) SetProb(from, to pair.Pair, p float64) {
	i := pg.g.IndexOf(from)
	j := pg.g.IndexOf(to)
	if i < 0 || j < 0 || i == j {
		return
	}
	pg.setProbAt(i, j, p)
}

// NumEdges returns the number of positive-probability directed edges.
func (pg *ProbGraph) NumEdges() int {
	n := 0
	for _, p := range pg.prob {
		if p > 0 {
			n++
		}
	}
	return n + pg.ovCount
}

// Length returns −log Pr[m_to | m_from], the shortest-path edge length of
// §VI-B, or +Inf when the edge is absent.
func (pg *ProbGraph) Length(from, to pair.Pair) float64 {
	p := pg.Prob(from, to)
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log(p)
}
