package propagation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/kb"
	"repro/internal/pair"
)

func TestPosteriorsSingleCandidate(t *testing.T) {
	nb := &Neighborhood{
		N1Size: 1, N2Size: 1,
		Cands: []CandidatePair{{Row: 0, Col: 0, Pair: pair.Pair{U1: 1, U2: 1}, Prior: 0.5}},
		Eps1:  0.9, Eps2: 0.9,
	}
	post := nb.Posteriors()
	// w = 1 · 9 · 9 = 81; Pr = 81/82.
	want := 81.0 / 82.0
	if math.Abs(post[0]-want) > 1e-9 {
		t.Errorf("posterior = %v, want %v", post[0], want)
	}
}

// TestPosteriorsFigure1 reproduces the paper's worked example (§V-B): Tim
// directed Cradle and Player in both KBs; candidates are (Cradle,Cradle),
// (Player,Player) and (Cradle,Player); ε1 = ε2 = 0.9, priors 0.5. The
// correct pairs should come out ≈ 0.98 and the wrong one ≈ 0.01.
func TestPosteriorsFigure1(t *testing.T) {
	nb := &Neighborhood{
		N1Size: 2, N2Size: 2,
		Cands: []CandidatePair{
			{Row: 0, Col: 0, Pair: pair.Pair{U1: 10, U2: 10}, Prior: 0.5}, // CC
			{Row: 1, Col: 1, Pair: pair.Pair{U1: 11, U2: 11}, Prior: 0.5}, // PP
			{Row: 0, Col: 1, Pair: pair.Pair{U1: 10, U2: 11}, Prior: 0.5}, // CP
		},
		Eps1: 0.9, Eps2: 0.9,
	}
	post := nb.Posteriors()
	// Exact: Z = 1 + 3·81 + 81² = 6805; Pr[CC] = (81+6561)/6805.
	wantCC := 6642.0 / 6805.0
	wantCP := 81.0 / 6805.0
	if math.Abs(post[0]-wantCC) > 1e-9 {
		t.Errorf("Pr[CC] = %v, want %v", post[0], wantCC)
	}
	if math.Abs(post[1]-wantCC) > 1e-9 {
		t.Errorf("Pr[PP] = %v, want %v", post[1], wantCC)
	}
	if math.Abs(post[2]-wantCP) > 1e-9 {
		t.Errorf("Pr[CP] = %v, want %v", post[2], wantCP)
	}
	if post[0] < 0.95 || post[2] > 0.03 {
		t.Errorf("shape wrong: CC=%v CP=%v", post[0], post[2])
	}
}

// TestPosteriorsMatchBruteForce checks the bitmask DP against explicit
// enumeration of all injective match sets on random small instances.
func TestPosteriorsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(3)
		var cands []CandidatePair
		id := 0
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Intn(3) == 0 {
					continue
				}
				cands = append(cands, CandidatePair{
					Row: r, Col: c,
					Pair:  pair.Pair{U1: kb.EntityID(id), U2: kb.EntityID(id)},
					Prior: 0.1 + 0.8*rng.Float64(),
				})
				id++
			}
		}
		if len(cands) == 0 {
			continue
		}
		nb := &Neighborhood{
			N1Size: rows, N2Size: cols, Cands: cands,
			Eps1: 0.2 + 0.7*rng.Float64(), Eps2: 0.2 + 0.7*rng.Float64(),
		}
		got := nb.Posteriors()
		want := bruteForcePosteriors(nb)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("iter %d cand %d: DP %v, brute force %v (nb=%+v)", iter, i, got[i], want[i], nb)
			}
		}
	}
}

// bruteForcePosteriors enumerates all subsets of candidates, keeps the
// injective ones, and computes exact marginals from Eq. (6)–(9) directly
// (including the constant factors, which must cancel).
func bruteForcePosteriors(nb *Neighborhood) []float64 {
	n := len(nb.Cands)
	total := 0.0
	marg := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		if !injective(nb.Cands, mask) {
			continue
		}
		w := weightOf(nb, mask)
		total += w
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				marg[i] += w
			}
		}
	}
	for i := range marg {
		marg[i] /= total
	}
	return marg
}

func injective(cands []CandidatePair, mask int) bool {
	rows := map[int]bool{}
	cols := map[int]bool{}
	for i, c := range cands {
		if mask&(1<<i) == 0 {
			continue
		}
		if rows[c.Row] || cols[c.Col] {
			return false
		}
		rows[c.Row] = true
		cols[c.Col] = true
	}
	return true
}

// weightOf computes f(M)·g(M|N1)·g(M|N2) verbatim from the paper.
func weightOf(nb *Neighborhood, mask int) float64 {
	e1 := clampProb(nb.Eps1)
	e2 := clampProb(nb.Eps2)
	f := 1.0
	size := 0
	for i, c := range nb.Cands {
		p := clampProb(c.Prior)
		if mask&(1<<i) != 0 {
			f *= p
			size++
		} else {
			f *= 1 - p
		}
	}
	g1 := math.Pow(e1, float64(size)) * math.Pow(1-e1, float64(nb.N1Size-size))
	g2 := math.Pow(e2, float64(size)) * math.Pow(1-e2, float64(nb.N2Size-size))
	return f * g1 * g2
}

func TestApproxPosteriorsReasonable(t *testing.T) {
	// On a star (one row, many cols) the approximation is exact.
	var cands []CandidatePair
	for c := 0; c < 5; c++ {
		cands = append(cands, CandidatePair{Row: 0, Col: c,
			Pair: pair.Pair{U1: 0, U2: kb.EntityID(c)}, Prior: 0.5})
	}
	nb := &Neighborhood{N1Size: 1, N2Size: 5, Cands: cands, Eps1: 0.8, Eps2: 0.8}
	exact := nb.Posteriors()
	approx := approxPosteriors(cands, candWeights(nb))
	for i := range exact {
		if math.Abs(exact[i]-approx[i]) > 1e-9 {
			t.Errorf("star graph: exact %v != approx %v", exact[i], approx[i])
		}
	}
}

func TestHighPriorBeatsCompetitors(t *testing.T) {
	// Two rows compete for one column; the higher-prior pair should get
	// the (much) higher posterior.
	cands := []CandidatePair{
		{Row: 0, Col: 0, Pair: pair.Pair{U1: 0, U2: 0}, Prior: 0.9},
		{Row: 1, Col: 0, Pair: pair.Pair{U1: 1, U2: 0}, Prior: 0.2},
	}
	nb := &Neighborhood{N1Size: 2, N2Size: 1, Cands: cands, Eps1: 0.9, Eps2: 0.9}
	post := nb.Posteriors()
	if post[0] <= post[1] {
		t.Errorf("high-prior pair lost: %v vs %v", post[0], post[1])
	}
	if post[0]+post[1] > 1+1e-9 {
		t.Errorf("column used twice: %v + %v > 1", post[0], post[1])
	}
}

// --- Probabilistic graph + Algorithm 2 ---

// chainGraph builds a KB pair with a linear chain of entities:
// a0 -r-> a1 -r-> a2 ... so the ER graph on diagonal pairs is a path.
func chainGraph(n int, extraWrong bool) (*ergraph.Graph, *kb.KB, *kb.KB, []pair.Pair) {
	k1 := kb.New("k1")
	k2 := kb.New("k2")
	r1 := k1.AddRel("next")
	r2 := k2.AddRel("next")
	var vs []pair.Pair
	for i := 0; i < n; i++ {
		u1 := k1.AddEntity(string(rune('a' + i)))
		u2 := k2.AddEntity(string(rune('a' + i)))
		vs = append(vs, pair.Pair{U1: u1, U2: u2})
	}
	for i := 0; i+1 < n; i++ {
		k1.AddRelTriple(vs[i].U1, r1, vs[i+1].U1)
		k2.AddRelTriple(vs[i].U2, r2, vs[i+1].U2)
	}
	verts := append([]pair.Pair(nil), vs...)
	if extraWrong {
		// A cross pair (a1, b2) competing with the chain.
		verts = append(verts, pair.Pair{U1: vs[1].U1, U2: vs[2].U2})
	}
	return ergraph.Build(k1, k2, verts), k1, k2, vs
}

func strongParams(g *ergraph.Graph) Params {
	cons := map[ergraph.RelPair]consistency.Estimate{}
	for _, l := range g.Labels() {
		cons[l] = consistency.Estimate{Eps1: 0.95, Eps2: 0.95}
	}
	return Params{Consistency: cons, DefaultPrior: 0.5}
}

func TestBuildProbChain(t *testing.T) {
	g, k1, k2, vs := chainGraph(4, false)
	pg := BuildProb(g, k1, k2, strongParams(g))
	// Functional chain: each hop should be highly probable.
	for i := 0; i+1 < len(vs); i++ {
		p := pg.Prob(vs[i], vs[i+1])
		if p < 0.9 {
			t.Errorf("hop %d→%d probability = %v, want ≥ 0.9", i, i+1, p)
		}
	}
	// Backward propagation flows through the materialized inverse
	// relationship and is equally strong on a functional chain.
	if p := pg.Prob(vs[1], vs[0]); p < 0.9 {
		t.Errorf("inverse edge probability = %v, want ≥ 0.9", p)
	}
}

func TestInferAllDistantPropagation(t *testing.T) {
	g, k1, k2, vs := chainGraph(5, false)
	pg := BuildProb(g, k1, k2, strongParams(g))
	// With τ = 0.8 and per-hop ≈ 0.97+, two hops stay above the bound.
	inf := pg.InferAll(0.8)
	set := pair.NewSet(inf.Set(vs[0])...)
	if !set.Has(vs[1]) {
		t.Fatalf("direct neighbor not inferred (set=%v)", inf.Set(vs[0]))
	}
	if !set.Has(vs[2]) {
		t.Errorf("two-hop pair not inferred; per-hop prob %v", pg.Prob(vs[0], vs[1]))
	}
	// Path probability must multiply along the chain (Markov bound).
	p1 := inf.Prob(vs[0], vs[1])
	p2 := inf.Prob(vs[0], vs[2])
	if p2 > p1+1e-9 {
		t.Errorf("two-hop probability %v exceeds one-hop %v", p2, p1)
	}
	if inf.Prob(vs[0], vs[0]) != 1 {
		t.Errorf("self probability != 1")
	}
}

func TestInferAllMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		// Random sparse probabilistic graph.
		n := 8 + rng.Intn(8)
		k1 := kb.New("k1")
		k2 := kb.New("k2")
		var verts []pair.Pair
		for i := 0; i < n; i++ {
			verts = append(verts, pair.Pair{U1: k1.AddEntity(string(rune('a' + i))), U2: k2.AddEntity(string(rune('a' + i)))})
		}
		g := ergraph.Build(k1, k2, verts)
		adj := make([]map[int]float64, n)
		for i := range adj {
			adj[i] = map[int]float64{}
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.3 {
					adj[i][j] = 0.85 + 0.15*rng.Float64()
				}
			}
		}
		pg := probGraphFromAdj(g, adj)
		tau := 0.75
		inf := pg.InferAllFW(tau)
		infD := pg.InferAll(tau)
		for q := 0; q < n; q++ {
			want := pg.InferFrom(verts[q], tau)
			if len(infD.Ball(q)) != len(want) {
				t.Fatalf("iter %d src %d: Dijkstra-all found %d, single-source %d",
					iter, q, len(infD.Ball(q)), len(want))
			}
			got := inf.Ball(q)
			if len(got) != len(want) {
				t.Fatalf("iter %d src %d: FW found %d, Dijkstra %d", iter, q, len(got), len(want))
			}
			for k, w := range want {
				if got[k].Idx != w.Idx || math.Abs(got[k].Dist-w.Dist) > 1e-9 {
					t.Fatalf("iter %d src %d entry %d: FW %+v, Dijkstra %+v", iter, q, k, got[k], w)
				}
			}
		}
	}
}

func TestSetProbUpdates(t *testing.T) {
	g, k1, k2, vs := chainGraph(3, false)
	pg := BuildProb(g, k1, k2, strongParams(g))
	pg.SetProb(vs[0], vs[1], 0.5)
	if p := pg.Prob(vs[0], vs[1]); p != 0.5 {
		t.Errorf("SetProb not applied: %v", p)
	}
	pg.SetProb(vs[0], vs[1], 0)
	if p := pg.Prob(vs[0], vs[1]); p != 0 {
		t.Errorf("edge removal failed: %v", p)
	}
	if !math.IsInf(pg.Length(vs[0], vs[1]), 1) {
		t.Error("Length of removed edge should be +Inf")
	}
}

func TestWrongPairGetsLowProbability(t *testing.T) {
	g, k1, k2, vs := chainGraph(4, true)
	pg := BuildProb(g, k1, k2, strongParams(g))
	wrong := pair.Pair{U1: vs[1].U1, U2: vs[2].U2}
	right := vs[1]
	// From vertex 0, the correct successor (a1,b1) must beat (a1,b2).
	pRight := pg.Prob(vs[0], right)
	pWrong := pg.Prob(vs[0], wrong)
	if pWrong >= pRight {
		t.Errorf("wrong pair %v ≥ right pair %v", pWrong, pRight)
	}
}
