package propagation

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"repro/internal/ergraph"
	"repro/internal/kb"
	"repro/internal/pair"
)

// randomAdj draws a random high-probability adjacency over n vertices,
// the same construction used by TestInferAllMatchesDijkstra.
func randomAdj(rng *rand.Rand, n int, density float64) []map[int]float64 {
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = map[int]float64{}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				adj[i][j] = 0.8 + 0.2*rng.Float64()
			}
		}
	}
	return adj
}

// probGraphFromAdj builds a CSR probabilistic graph over g from explicit
// adjacency maps by writing every edge through the SetProb overlay and
// folding, so the test constructor exercises the same overlay + Fold path
// re-estimation uses.
func probGraphFromAdj(g *ergraph.Graph, adj []map[int]float64) *ProbGraph {
	pg := &ProbGraph{g: g, rowStart: make([]int32, g.NumVertices()+1)}
	pg.finish()
	for i, m := range adj {
		for j, p := range m {
			pg.setProbAt(i, j, p)
		}
	}
	pg.Fold()
	return pg
}

// randomPG builds a probabilistic graph over n isolated vertex pairs with
// random high-probability directed edges.
func randomPG(rng *rand.Rand, n int, density float64) (*ProbGraph, []pair.Pair) {
	k1 := kb.New("k1")
	k2 := kb.New("k2")
	verts := make([]pair.Pair, n)
	for i := 0; i < n; i++ {
		verts[i] = pair.Pair{
			U1: k1.AddEntity(fmt.Sprintf("a%d", i)),
			U2: k2.AddEntity(fmt.Sprintf("b%d", i)),
		}
	}
	g := ergraph.Build(k1, k2, verts)
	return probGraphFromAdj(g, randomAdj(rng, n, density)), verts
}

// assertMatchesOracle compares the engine's balls entry-by-entry against a
// fresh paper-faithful Floyd–Warshall run on the current graph state.
func assertMatchesOracle(t *testing.T, e *Engine, ctx string) {
	t.Helper()
	want := e.Graph().InferAllFW(e.Tau())
	n := e.Graph().g.NumVertices()
	if len(e.dist) != n || len(e.rev) != n {
		t.Fatalf("%s: engine sized %d/%d, graph has %d vertices", ctx, len(e.dist), len(e.rev), n)
	}
	for i := 0; i < n; i++ {
		compareBalls(t, ctx, "dist", i, e.dist[i], want.dist[i])
		compareRevRows(t, ctx, i, e.rev[i], want.rev[i])
	}
}

func compareBalls(t *testing.T, ctx, kind string, i int, got, want Ball) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s[%d] has %d entries, oracle %d (got=%v want=%v)", ctx, kind, i, len(got), len(want), got, want)
	}
	for k, w := range want {
		if got[k].Idx != w.Idx || math.Abs(got[k].Dist-w.Dist) > 1e-9 {
			t.Fatalf("%s: %s[%d][%d] = %+v, oracle %+v", ctx, kind, i, k, got[k], w)
		}
	}
}

// compareRevRows compares reverse rows as source sets: the engine keeps
// its rows unordered, the oracle's are ascending.
func compareRevRows(t *testing.T, ctx string, i int, got, want []int32) {
	t.Helper()
	g := append([]int32(nil), got...)
	slices.Sort(g)
	if !slices.Equal(g, want) {
		t.Fatalf("%s: rev[%d] = %v, oracle %v", ctx, i, g, want)
	}
}

func TestNewEngineMatchesInferAll(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		n := 10 + rng.Intn(90) // crosses the parallel fan-out cutoff
		pg, _ := randomPG(rng, n, 0.1)
		tau := 0.7
		e := NewEngine(pg, tau)
		if got := e.Recomputes(); got != int64(n) {
			t.Fatalf("initial build ran %d Dijkstras, want %d", got, n)
		}
		assertMatchesOracle(t, e, fmt.Sprintf("iter %d initial", iter))
		inf := pg.InferAll(tau)
		for i := 0; i < n; i++ {
			compareBalls(t, "vs InferAll", "dist", i, e.dist[i], inf.dist[i])
		}
	}
}

// TestEngineRandomizedInvalidation drives the engine through arbitrary
// sequences of detaches, edge removals, weakenings, strengthenings and
// re-estimation resets, checking after every Sync that the maps are
// identical to a from-scratch oracle run. This is the equivalence theorem
// the incremental step relies on; run it with -race to also exercise the
// parallel recompute.
func TestEngineRandomizedInvalidation(t *testing.T) {
	// Force the worker pool on even on single-CPU machines so -race
	// exercises the parallel recompute path.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 12; iter++ {
		n := 64 + rng.Intn(40) // above the fan-out cutoff so Sync parallelizes
		pg, verts := randomPG(rng, n, 0.08)
		tau := 0.65 + 0.25*rng.Float64()
		e := NewEngine(pg, tau)
		for step := 0; step < 10; step++ {
			for ops := 1 + rng.Intn(4); ops > 0; ops-- {
				i := rng.Intn(n)
				j := rng.Intn(n)
				switch rng.Intn(6) {
				case 0, 1:
					e.DetachVertex(verts[i])
				case 2:
					e.SetProb(verts[i], verts[j], 0) // remove one edge
				case 3:
					old := e.Graph().probAt(i, j)
					e.SetProb(verts[i], verts[j], old*0.5) // weaken
				case 4:
					e.SetProb(verts[i], verts[j], 0.8+0.2*rng.Float64()) // add/strengthen → full rebuild
				case 5:
					fresh, fverts := randomPG(rng, n, 0.08)
					verts = fverts
					e.Reset(fresh) // re-estimation swaps the whole graph
				}
			}
			e.Sync()
			assertMatchesOracle(t, e, fmt.Sprintf("iter %d step %d", iter, step))
		}
	}
}

// clusteredPG builds nc disjoint functional chains of length cs — the
// shape of real ER graphs, where connected components are entity clusters
// far smaller than the whole graph — so a ζ-ball is one cluster.
func clusteredPG(nc, cs int) (*ProbGraph, []pair.Pair) {
	k1 := kb.New("k1")
	k2 := kb.New("k2")
	r1 := k1.AddRel("next")
	r2 := k2.AddRel("next")
	verts := make([]pair.Pair, 0, nc*cs)
	for c := 0; c < nc; c++ {
		var prev pair.Pair
		for i := 0; i < cs; i++ {
			v := pair.Pair{
				U1: k1.AddEntity(fmt.Sprintf("a%d_%d", c, i)),
				U2: k2.AddEntity(fmt.Sprintf("b%d_%d", c, i)),
			}
			if i > 0 {
				k1.AddRelTriple(prev.U1, r1, v.U1)
				k2.AddRelTriple(prev.U2, r2, v.U2)
			}
			verts = append(verts, v)
			prev = v
		}
	}
	g := ergraph.Build(k1, k2, verts)
	return BuildProb(g, k1, k2, strongParams(g)), verts
}

// TestEngineRecomputesOnlyBall pins down the invalidation granularity: a
// detach must recompute exactly the sources whose ζ-balls contained the
// vertex, plus the vertex itself, and nothing on a second detach of the
// same vertex.
func TestEngineRecomputesOnlyBall(t *testing.T) {
	pg, vs := clusteredPG(6, 8) // ball = one 8-chain ≪ n/2, no bulk fallback
	tau := 0.8
	e := NewEngine(pg, tau)
	n := pg.Graph().NumVertices()
	if e.Recomputes() != int64(n) {
		t.Fatalf("initial build: %d recomputes, want %d", e.Recomputes(), n)
	}

	mid := vs[4]
	ball := e.BallSize(mid)
	if ball == 0 {
		t.Fatalf("mid-chain vertex unexpectedly unreachable")
	}
	e.DetachVertex(mid)
	if got, want := e.PendingSources(), ball+1; got != want {
		t.Fatalf("pending sources = %d, want ball+self = %d", got, want)
	}
	e.Sync()
	if got, want := e.Recomputes(), int64(n+ball+1); got != want {
		t.Fatalf("after detach: %d recomputes, want %d", got, want)
	}
	assertMatchesOracle(t, e, "after detach")

	// Re-detaching a detached vertex is a no-op.
	e.DetachVertex(mid)
	if e.PendingSources() != 0 {
		t.Fatalf("re-detach dirtied %d sources", e.PendingSources())
	}
	e.Sync()
	if got, want := e.Recomputes(), int64(n+ball+1); got != want {
		t.Fatalf("re-detach triggered recomputes: %d, want %d", got, want)
	}

	// A strengthened edge forces a full rebuild.
	e.SetProb(vs[0], vs[7], 0.99)
	if got := e.PendingSources(); got != n {
		t.Fatalf("strengthen should schedule full rebuild (%d), got %d", n, got)
	}
	e.Sync()
	assertMatchesOracle(t, e, "after strengthen")
}

func TestEngineResetResizes(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pg1, _ := randomPG(rng, 20, 0.15)
	e := NewEngine(pg1, 0.8)
	pg2, _ := randomPG(rng, 35, 0.1) // different vertex count
	e.Reset(pg2)
	e.Sync()
	assertMatchesOracle(t, e, "after reset")
}

func TestEngineSnapshotIsDeepCopy(t *testing.T) {
	g, k1, k2, vs := chainGraph(5, false)
	pg := BuildProb(g, k1, k2, strongParams(g))
	e := NewEngine(pg, 0.8)
	snap := e.Inferred()
	before := len(snap.Ball(0))
	e.DetachVertex(vs[1])
	e.Sync()
	if len(snap.Ball(0)) != before {
		t.Fatal("snapshot changed when the engine was mutated")
	}
	if snap.Zeta() != e.Zeta() {
		t.Fatal("snapshot zeta mismatch")
	}
}

func TestZetaOfRejectsInvalidTau(t *testing.T) {
	for _, tau := range []float64{0, -0.3, 1.0001, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("zetaOf(%v) did not panic", tau)
				}
			}()
			zetaOf(tau)
		}()
	}
	// Valid boundary values must not panic.
	if z := zetaOf(1); z < 0 || z > 1e-9 {
		t.Errorf("zetaOf(1) = %v, want ≈ 0", z)
	}
	if z := zetaOf(0.9); math.Abs(z+math.Log(0.9)) > 1e-9 {
		t.Errorf("zetaOf(0.9) = %v", z)
	}
}
