package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Prepare turns an opaque session spec (as shipped by the
	// coordinator's prepare RPC) into the prepared pipeline the shard
	// states are built from. The worker caches the result per spec hash,
	// so one expensive Prepare backs every shard of a session — and every
	// session with the same spec.
	Prepare func(spec []byte) (*core.Prepared, error)
	// Logf, when non-nil, receives diagnostic log lines.
	Logf func(format string, args ...any)
	// Faults injects failures for chaos drills; CrashAfterRPCs is the
	// worker-side fault (the worker tears itself down after handling N
	// non-ping requests, simulating a SIGKILL).
	Faults *Faults
}

// shardKey addresses one shard of one runner (a runner is one Loop's
// lifetime, named by the coordinator).
type shardKey struct {
	runner string
	shard  int
}

// workerShard is one assigned shard's engine state plus the replication
// watermark. The mutex serializes command application with reads; the
// coordinator already serializes per-shard traffic, but duplicated
// frames and re-prepares may race the tail of a previous request.
type workerShard struct {
	mu         sync.Mutex
	st         *core.ShardState
	applied    int
	released   bool
	recomputes int64
}

// prepEntry caches one spec's Prepared, including a failed build: every
// shard of a broken spec fails fast instead of re-running Prepare.
type prepEntry struct {
	once sync.Once
	p    *core.Prepared
	err  error
}

// Worker hosts assigned shards' engine states and serves the cluster RPC
// protocol on a listener. One goroutine per connection handles requests
// sequentially; distinct shards are safe to drive from distinct
// connections concurrently.
type Worker struct {
	cfg WorkerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	prepMu sync.Mutex
	preps  map[string]*prepEntry

	shardMu sync.Mutex
	shards  map[shardKey]*workerShard
}

// NewWorker builds a Worker.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{
		cfg:    cfg,
		conns:  map[net.Conn]struct{}{},
		preps:  map[string]*prepEntry{},
		shards: map[shardKey]*workerShard{},
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until the worker is closed. It returns
// nil after Close (or a crash fault); any other accept error is returned.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return nil
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

// Close tears the worker down: the listener and every connection are
// closed and all shard state is dropped, exactly what a SIGKILL does
// minus process exit. Safe to call more than once.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	ln := w.ln
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	w.shardMu.Lock()
	w.shards = map[shardKey]*workerShard{}
	w.shardMu.Unlock()
	return nil
}

func (w *Worker) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()
	for {
		env, err := ReadFrame(conn)
		if err != nil {
			return // EOF, torn connection, or garbage: the client retries
		}
		if env.Kind != FrameRequest {
			continue
		}
		if env.Method != MethodPing && w.cfg.Faults.crashDue() {
			w.logf("cluster worker: crash fault tripped, tearing down")
			w.Close()
			return
		}
		body, errKind, err := w.handle(env.Method, env.Body)
		res := Envelope{V: ProtocolVersion, ID: env.ID, Kind: FrameResponse}
		if err != nil {
			res.Err, res.ErrKind = err.Error(), errKind
		} else {
			res.Body = body
		}
		if err := WriteFrame(conn, res); err != nil {
			return
		}
	}
}

// handle dispatches one request. A panic in a handler (a malformed
// request reaching engine code) is converted to an error response so one
// bad frame cannot take the worker down.
func (w *Worker) handle(method string, body json.RawMessage) (res json.RawMessage, errKind string, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, errKind, err = nil, "", fmt.Errorf("cluster worker: %s panicked: %v", method, r)
		}
	}()
	switch method {
	case MethodPing:
		return json.RawMessage(`{}`), "", nil
	case MethodPrepare:
		var req prepareReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, "", fmt.Errorf("cluster worker: bad prepare body: %w", err)
		}
		return w.handlePrepare(req)
	case MethodApply, MethodGather, MethodRank, MethodBall, MethodRelease:
		var req shardReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, "", fmt.Errorf("cluster worker: bad %s body: %w", method, err)
		}
		return w.handleShard(method, req)
	case MethodEnd:
		var req endReq
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, "", fmt.Errorf("cluster worker: bad end body: %w", err)
		}
		w.shardMu.Lock()
		for k := range w.shards {
			if k.runner == req.Runner {
				delete(w.shards, k)
			}
		}
		w.shardMu.Unlock()
		return json.RawMessage(`{}`), "", nil
	default:
		return nil, "", fmt.Errorf("cluster worker: unknown method %q", method)
	}
}

// prepared returns the cached pipeline for a spec, building it once.
func (w *Worker) prepared(hash string, spec []byte) (*core.Prepared, error) {
	w.prepMu.Lock()
	e, ok := w.preps[hash]
	if !ok {
		e = &prepEntry{}
		w.preps[hash] = e
	}
	w.prepMu.Unlock()
	e.once.Do(func() {
		if sum := sha256.Sum256(spec); hex.EncodeToString(sum[:]) != hash {
			e.err = fmt.Errorf("cluster worker: spec hash mismatch")
			return
		}
		if w.cfg.Prepare == nil {
			e.err = fmt.Errorf("cluster worker: no Prepare hook configured")
			return
		}
		e.p, e.err = w.cfg.Prepare(spec)
	})
	return e.p, e.err
}

func (w *Worker) handlePrepare(req prepareReq) (json.RawMessage, string, error) {
	p, err := w.prepared(req.SpecHash, req.Spec)
	if err != nil {
		return nil, "", err
	}
	if req.Shard < 0 || req.Shard >= p.NumShards() {
		return nil, "", fmt.Errorf("cluster worker: shard %d out of range (%d shards)", req.Shard, p.NumShards())
	}
	ws := &workerShard{st: p.NewShardState(req.Shard)}
	w.shardMu.Lock()
	// A re-prepare (the coordinator replaying a lost shard, or retrying a
	// timed-out prepare) replaces any previous state wholesale: the
	// replayed log rebuilds it from sequence 1.
	w.shards[shardKey{req.Runner, req.Shard}] = ws
	w.shardMu.Unlock()
	w.logf("cluster worker: prepared runner %s shard %d", req.Runner, req.Shard)
	return mustMarshal(shardRes{Applied: 0}), "", nil
}

func (w *Worker) handleShard(method string, req shardReq) (json.RawMessage, string, error) {
	w.shardMu.Lock()
	ws, ok := w.shards[shardKey{req.Runner, req.Shard}]
	w.shardMu.Unlock()
	if !ok {
		return nil, ErrKindState, fmt.Errorf("cluster worker: no state for runner %s shard %d", req.Runner, req.Shard)
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if err := ws.apply(req.Cmds); err != nil {
		return nil, "", err
	}
	res := shardRes{Applied: ws.applied}
	switch method {
	case MethodApply:
	case MethodGather:
		res.Cands, res.AnyProp = ws.st.Gather()
	case MethodRank:
		res.Picks = ws.st.Rank(req.Mu)
	case MethodBall:
		res.Ball = ws.st.Ball(req.Pair)
	case MethodRelease:
		if !ws.released {
			ws.recomputes = ws.st.Release()
			ws.released = true
		}
		res.Recomputes = ws.recomputes
	}
	return mustMarshal(res), "", nil
}

// apply executes the piggybacked command tail, deduplicating by the
// watermark: a command at or below applied was already executed (the
// frame was duplicated or replayed) and is skipped; a gap means the
// coordinator and worker disagree about history and is an error.
func (ws *workerShard) apply(cmds []Cmd) error {
	for _, c := range cmds {
		if c.Seq <= ws.applied {
			continue
		}
		if c.Seq != ws.applied+1 {
			return fmt.Errorf("cluster worker: command gap: have %d, got seq %d", ws.applied, c.Seq)
		}
		switch c.Op {
		case OpResolve:
			ws.st.Resolve(c.Pair, c.Detach)
		case OpDamp:
			ws.st.Damp(c.Pair, c.Prior)
		case OpSync:
			ws.st.Sync()
		case OpInvalidate:
			ws.st.Invalidate()
		case OpRebuild:
			ws.st.Rebuild(decodeEstimates(c.Est))
		default:
			return fmt.Errorf("cluster worker: unknown op %q at seq %d", c.Op, c.Seq)
		}
		ws.applied = c.Seq
	}
	return nil
}

// mustMarshal encodes a response DTO; the DTOs marshal by construction.
func mustMarshal(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// SpecHash computes the cache key the coordinator stamps on prepare
// requests for a spec.
func SpecHash(spec []byte) string {
	sum := sha256.Sum256(spec)
	return hex.EncodeToString(sum[:])
}
