package cluster

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Workers are the worker addresses (host:port). At least one is
	// required; shards are spread across the live ones.
	Workers []string
	// HeartbeatInterval is the ping cadence per worker. Default 1s.
	HeartbeatInterval time.Duration
	// LivenessTimeout marks a worker down after this long without a
	// successful pong. Default 5s.
	LivenessTimeout time.Duration
	// RPCTimeout bounds one RPC attempt (dial + write + read). Default 10s.
	RPCTimeout time.Duration
	// OpTimeout bounds one logical shard operation across all its retries
	// and failovers; exhausting it fails the session's loop. Default 2m.
	OpTimeout time.Duration
	// BackoffBase and BackoffMax bound the retry backoff schedule.
	// Defaults 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Faults injects failures into outgoing request frames for chaos
	// drills. Heartbeat pings bypass injection.
	Faults *Faults
	// Metrics receives liveness, retry and reassignment counts.
	Metrics *Metrics
	// Logf, when non-nil, receives diagnostic log lines.
	Logf func(format string, args ...any)
}

func (c *CoordinatorConfig) fill() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.LivenessTimeout <= 0 {
		c.LivenessTimeout = 5 * time.Second
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 2 * time.Minute
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
}

// Coordinator owns a pool of workers and builds remote ShardRunners over
// them. It tracks worker liveness with heartbeats, retries RPCs with
// bounded jittered backoff, and re-prepares lost shards on survivors —
// the failover machinery every runner it vends shares.
type Coordinator struct {
	cfg     CoordinatorConfig
	workers []*workerClient

	nextID    atomic.Uint64
	runnerSeq atomic.Uint64
	seedSeq   atomic.Int64
	baseSeed  int64
	nonce     string

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewCoordinator connects a coordinator to its worker pool and starts the
// heartbeat loops. Workers need not be reachable yet: a worker that never
// answers is marked down after LivenessTimeout and picked back up by the
// heartbeat when it appears.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses configured")
	}
	cfg.fill()
	var raw [16]byte
	if _, err := cryptorand.Read(raw[:]); err != nil {
		return nil, fmt.Errorf("cluster: seeding coordinator: %w", err)
	}
	co := &Coordinator{
		cfg:      cfg,
		nonce:    hex.EncodeToString(raw[:8]),
		baseSeed: int64(binary.BigEndian.Uint64(raw[8:])),
		closed:   make(chan struct{}),
	}
	for _, addr := range cfg.Workers {
		co.workers = append(co.workers, &workerClient{co: co, addr: addr})
	}
	co.recountLive()
	for _, wc := range co.workers {
		co.wg.Add(1)
		go co.heartbeat(wc)
	}
	return co, nil
}

// Close stops the heartbeats and closes every pooled connection. Runners
// vended by the coordinator must be closed first.
func (co *Coordinator) Close() {
	co.closeOnce.Do(func() { close(co.closed) })
	co.wg.Wait()
	for _, wc := range co.workers {
		wc.closePool()
	}
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// WorkerStatus is one worker's liveness snapshot for health reporting.
type WorkerStatus struct {
	Addr string `json:"addr"`
	Live bool   `json:"live"`
}

// Status snapshots the pool's liveness for /healthz.
func (co *Coordinator) Status() []WorkerStatus {
	out := make([]WorkerStatus, len(co.workers))
	for i, wc := range co.workers {
		out[i] = WorkerStatus{Addr: wc.addr, Live: !wc.isDown()}
	}
	return out
}

// LiveWorkers returns the number of workers currently considered live.
func (co *Coordinator) LiveWorkers() int {
	n := 0
	for _, wc := range co.workers {
		if !wc.isDown() {
			n++
		}
	}
	return n
}

// recountLive refreshes the liveness gauge.
func (co *Coordinator) recountLive() {
	co.cfg.Metrics.workersLive().Set(int64(co.LiveWorkers()))
}

// heartbeat pings one worker until the coordinator closes, marking it
// down after LivenessTimeout without a pong and back up on the first
// pong. Pings bypass fault injection: chaos must exercise retries and
// failover, not fake a dead worker.
func (co *Coordinator) heartbeat(wc *workerClient) {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HeartbeatInterval)
	defer t.Stop()
	lastPong := time.Now()
	for {
		select {
		case <-co.closed:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), co.cfg.HeartbeatInterval)
		_, _, err := wc.call(ctx, MethodPing, struct{}{}, false)
		cancel()
		if err == nil {
			lastPong = time.Now()
			if wc.isDown() {
				co.logf("cluster: worker %s is back", wc.addr)
				wc.markUp()
			}
			continue
		}
		if !wc.isDown() && time.Since(lastPong) > co.cfg.LivenessTimeout {
			co.logf("cluster: worker %s missed heartbeats for %v, marking down", wc.addr, co.cfg.LivenessTimeout)
			wc.markDown()
		}
	}
}

// callError classifies an RPC failure for the retry loop.
type callError struct {
	// transport marks dial/write/read failures: retryable, possibly on
	// another worker. Application errors have transport false.
	transport bool
	// kind is the application error kind (ErrKindState for repairable
	// lost-state errors).
	kind string
	err  error
}

func (e *callError) Error() string { return e.err.Error() }
func (e *callError) Unwrap() error { return e.err }

// workerClient is the coordinator's RPC client for one worker: a small
// idle-connection pool, a strike counter and the down flag.
type workerClient struct {
	co   *Coordinator
	addr string

	mu      sync.Mutex
	idle    []net.Conn
	down    bool
	strikes int
}

const (
	maxIdleConns  = 4
	strikeLimit   = 3
	maxReplayCmds = 512
)

func (wc *workerClient) isDown() bool {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.down
}

func (wc *workerClient) markDown() {
	wc.mu.Lock()
	was := wc.down
	wc.down = true
	idle := wc.idle
	wc.idle = nil
	wc.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
	if !was {
		wc.co.cfg.Metrics.workerDowns().Inc()
		wc.co.recountLive()
	}
}

func (wc *workerClient) markUp() {
	wc.mu.Lock()
	was := wc.down
	wc.down = false
	wc.strikes = 0
	wc.mu.Unlock()
	if was {
		wc.co.recountLive()
	}
}

// strike records a transport failure; strikeLimit consecutive failures
// mark the worker down without waiting for the liveness timeout.
func (wc *workerClient) strike() {
	wc.mu.Lock()
	wc.strikes++
	hit := wc.strikes >= strikeLimit && !wc.down
	wc.mu.Unlock()
	if hit {
		wc.co.logf("cluster: worker %s struck out, marking down", wc.addr)
		wc.markDown()
	}
}

func (wc *workerClient) closePool() {
	wc.mu.Lock()
	idle := wc.idle
	wc.idle = nil
	wc.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// conn pops an idle connection or dials a fresh one.
func (wc *workerClient) conn(ctx context.Context) (net.Conn, error) {
	wc.mu.Lock()
	if n := len(wc.idle); n > 0 {
		c := wc.idle[n-1]
		wc.idle = wc.idle[:n-1]
		wc.mu.Unlock()
		return c, nil
	}
	wc.mu.Unlock()
	d := net.Dialer{Timeout: wc.co.cfg.RPCTimeout}
	return d.DialContext(ctx, "tcp", wc.addr)
}

// release returns a healthy connection to the pool.
func (wc *workerClient) release(c net.Conn) {
	wc.mu.Lock()
	if !wc.down && len(wc.idle) < maxIdleConns {
		wc.idle = append(wc.idle, c)
		wc.mu.Unlock()
		return
	}
	wc.mu.Unlock()
	c.Close()
}

// call performs one RPC attempt: dial or reuse a connection, write the
// request frame (through fault injection when injectFaults), and read
// responses until the matching ID arrives — duplicated frames produce
// extra responses, which are skipped by their stale IDs. Transport
// failures close the connection and count a strike; any response, even an
// application error, proves the worker healthy.
func (wc *workerClient) call(ctx context.Context, method string, reqBody any, injectFaults bool) (json.RawMessage, string, error) {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return nil, "", &callError{err: fmt.Errorf("cluster: encoding %s request: %w", method, err)}
	}
	conn, err := wc.conn(ctx)
	if err != nil {
		wc.strike()
		return nil, "", &callError{transport: true, err: fmt.Errorf("cluster: dialing %s: %w", wc.addr, err)}
	}
	id := wc.co.nextID.Add(1)
	env := Envelope{V: ProtocolVersion, ID: id, Kind: FrameRequest, Method: method, Body: body}

	deadline := time.Now().Add(wc.co.cfg.RPCTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)

	fail := func(err error) (json.RawMessage, string, error) {
		conn.Close()
		wc.strike()
		return nil, "", &callError{transport: true, err: err}
	}

	var faults *Faults
	if injectFaults {
		faults = wc.co.cfg.Faults
	}
	if d := faults.delay(); d > 0 {
		time.Sleep(d)
	}
	if faults.drop() {
		// The frame "never arrives": skip the write and let the read below
		// time out, exercising the timeout-and-retry path end to end.
	} else {
		if err := WriteFrame(conn, env); err != nil {
			return fail(fmt.Errorf("cluster: writing %s to %s: %w", method, wc.addr, err))
		}
		if faults.duplicate() {
			if err := WriteFrame(conn, env); err != nil {
				return fail(fmt.Errorf("cluster: writing duplicate %s to %s: %w", method, wc.addr, err))
			}
		}
	}
	for {
		res, err := ReadFrame(conn)
		if err != nil {
			return fail(fmt.Errorf("cluster: reading %s response from %s: %w", method, wc.addr, err))
		}
		if res.Kind != FrameResponse {
			return fail(fmt.Errorf("cluster: %s sent a non-response frame", wc.addr))
		}
		if res.ID < id {
			continue // response to an earlier duplicated frame on this connection
		}
		if res.ID != id {
			return fail(fmt.Errorf("cluster: %s answered id %d, want %d", wc.addr, res.ID, id))
		}
		wc.markUp()
		wc.release(conn)
		if res.Err != "" {
			return nil, res.ErrKind, &callError{kind: res.ErrKind, err: fmt.Errorf("cluster: %s: %s", wc.addr, res.Err)}
		}
		return res.Body, "", nil
	}
}
