package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Faults injects deterministic failures into the RPC layer for chaos
// drills and tests. Coordinator-side faults (drop, delay, duplicate)
// perturb outgoing request frames; CrashAfterRPCs is worker-side and
// simulates a SIGKILL by tearing the listener and every connection down
// after N handled requests. Heartbeat pings bypass injection — chaos
// must exercise retry and failover, not fake a dead worker.
//
// All methods are nil-receiver-safe; a nil *Faults injects nothing.
type Faults struct {
	// DropEveryN drops every Nth outgoing request frame (the call times
	// out and retries). 0 disables.
	DropEveryN int
	// DelayEveryN sleeps Delay before every Nth outgoing request frame.
	DelayEveryN int
	// Delay is the injected latency for DelayEveryN.
	Delay time.Duration
	// DuplicateEveryN writes every Nth request frame twice, exercising
	// the worker's idempotent command application and the client's
	// stale-response skipping. 0 disables.
	DuplicateEveryN int
	// CrashAfterRPCs makes a worker kill itself after handling N
	// requests. 0 disables.
	CrashAfterRPCs int64

	drops, delays, dups, rpcs atomic.Int64
}

// drop reports whether this request frame should be dropped.
func (f *Faults) drop() bool {
	if f == nil || f.DropEveryN <= 0 {
		return false
	}
	return f.drops.Add(1)%int64(f.DropEveryN) == 0
}

// delay returns the latency to inject before this request frame.
func (f *Faults) delay() time.Duration {
	if f == nil || f.DelayEveryN <= 0 || f.Delay <= 0 {
		return 0
	}
	if f.delays.Add(1)%int64(f.DelayEveryN) == 0 {
		return f.Delay
	}
	return 0
}

// duplicate reports whether this request frame should be written twice.
func (f *Faults) duplicate() bool {
	if f == nil || f.DuplicateEveryN <= 0 {
		return false
	}
	return f.dups.Add(1)%int64(f.DuplicateEveryN) == 0
}

// crashDue counts one handled RPC and reports whether the worker should
// now crash.
func (f *Faults) crashDue() bool {
	if f == nil || f.CrashAfterRPCs <= 0 {
		return false
	}
	return f.rpcs.Add(1) == f.CrashAfterRPCs
}

// ParseFaults parses the -chaos flag syntax: comma-separated
// key=value terms among drop=N, dup=N, delay=N:DUR and kill=N, e.g.
// "drop=7,dup=5,delay=3:20ms". An empty string returns nil.
func ParseFaults(s string) (*Faults, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	f := &Faults{}
	for _, term := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: chaos term %q is not key=value", term)
		}
		switch key {
		case "drop":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("cluster: chaos drop=%q wants a positive integer", val)
			}
			f.DropEveryN = n
		case "dup":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("cluster: chaos dup=%q wants a positive integer", val)
			}
			f.DuplicateEveryN = n
		case "delay":
			nStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("cluster: chaos delay=%q wants N:DURATION", val)
			}
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("cluster: chaos delay=%q wants a positive integer N", val)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("cluster: chaos delay=%q wants a positive duration", val)
			}
			f.DelayEveryN, f.Delay = n, d
		case "kill":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("cluster: chaos kill=%q wants a positive integer", val)
			}
			f.CrashAfterRPCs = n
		default:
			return nil, fmt.Errorf("cluster: unknown chaos key %q (want drop, dup, delay or kill)", key)
		}
	}
	return f, nil
}
