package cluster

import (
	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/selection"
)

// RPC method names.
const (
	// MethodPrepare builds a shard's engine state on the worker.
	MethodPrepare = "prepare"
	// MethodApply appends commands to a shard's log without reading back.
	MethodApply = "apply"
	// MethodGather syncs the shard engine and returns its candidates.
	MethodGather = "gather"
	// MethodRank returns the shard's µ-batch picks.
	MethodRank = "rank"
	// MethodBall returns a confirmed match's last-sync propagation ball.
	MethodBall = "ball"
	// MethodRelease frees a settled shard's engine, returning recomputes.
	MethodRelease = "release"
	// MethodEnd drops every shard of a runner.
	MethodEnd = "end"
	// MethodPing is the heartbeat no-op.
	MethodPing = "ping"
)

// Command opcodes. A shard's mutating operations are logged as Cmds in
// coordinator sequence order; replaying the log against a freshly
// prepared ShardState reproduces the engine bit-identically.
const (
	// OpResolve resolves a vertex (ShardState.Resolve), optionally
	// detaching it from the propagation fabric.
	OpResolve = "resolve"
	// OpDamp overlays a hard question's damped prior (ShardState.Damp).
	OpDamp = "damp"
	// OpSync recomputes dirty balls (ShardState.Sync). Logged at every
	// gather position so a replay reproduces the last-sync snapshot that
	// Ball serves.
	OpSync = "sync"
	// OpInvalidate marks every ball dirty (ShardState.Invalidate).
	OpInvalidate = "invalidate"
	// OpRebuild rebuilds edge probabilities from re-fitted consistency
	// estimates (ShardState.Rebuild).
	OpRebuild = "rebuild"
)

// EstDTO is the wire form of one label's consistency estimate.
type EstDTO struct {
	R1      kb.RelID `json:"r1"`
	R2      kb.RelID `json:"r2"`
	Inverse bool     `json:"inv,omitempty"`
	Eps1    float64  `json:"eps1"`
	Eps2    float64  `json:"eps2"`
}

// encodeEstimates flattens the labels' estimates for the wire. Only the
// shard's own labels travel: BuildProb consults nothing else, and missing
// labels would fall back to the uniform prior rather than silently
// diverge — restricting the map is an optimization, not a risk.
func encodeEstimates(labels []ergraph.RelPair, est map[ergraph.RelPair]consistency.Estimate) []EstDTO {
	out := make([]EstDTO, 0, len(labels))
	for _, l := range labels {
		e, ok := est[l]
		if !ok {
			continue
		}
		out = append(out, EstDTO{R1: l.R1, R2: l.R2, Inverse: l.Inverse, Eps1: e.Eps1, Eps2: e.Eps2})
	}
	return out
}

// decodeEstimates rebuilds the estimate map a Rebuild consumes.
func decodeEstimates(dtos []EstDTO) map[ergraph.RelPair]consistency.Estimate {
	est := make(map[ergraph.RelPair]consistency.Estimate, len(dtos))
	for _, d := range dtos {
		est[ergraph.RelPair{R1: d.R1, R2: d.R2, Inverse: d.Inverse}] = consistency.Estimate{Eps1: d.Eps1, Eps2: d.Eps2}
	}
	return est
}

// Cmd is one sequence-numbered entry of a shard's command log. Seq is
// assigned by the coordinator, contiguous from 1; a worker applies a
// command exactly once by skipping Seq at or below its applied watermark
// and rejecting gaps, so duplicated or replayed frames are harmless.
type Cmd struct {
	Seq    int       `json:"seq"`
	Op     string    `json:"op"`
	Pair   pair.Pair `json:"pair,omitempty"`
	Detach bool      `json:"detach,omitempty"`
	Prior  float64   `json:"prior,omitempty"`
	Est    []EstDTO  `json:"est,omitempty"`
}

// prepareReq asks a worker to build the engine state for one shard.
// Spec carries the opaque session specification the worker's Prepare
// hook turns into a core.Prepared; SpecHash keys the worker's cache so a
// spec is decoded and prepared once per worker, however many shards land
// on it.
type prepareReq struct {
	Runner   string `json:"runner"`
	Shard    int    `json:"shard"`
	SpecHash string `json:"spec_hash"`
	Spec     []byte `json:"spec"`
}

// shardReq addresses one shard and piggybacks the commands logged since
// the last acknowledged flush. Workers apply the commands (deduplicating
// by watermark) before serving the read.
type shardReq struct {
	Runner string `json:"runner"`
	Shard  int    `json:"shard"`
	Cmds   []Cmd  `json:"cmds,omitempty"`
	// Mu is the batch size for MethodRank.
	Mu int `json:"mu,omitempty"`
	// Pair is the confirmed match for MethodBall.
	Pair pair.Pair `json:"pair,omitempty"`
}

// shardRes is the shared response shape of the shard RPCs. Applied
// acknowledges the worker's command watermark after this request.
type shardRes struct {
	Applied int                   `json:"applied"`
	Cands   []selection.Candidate `json:"cands,omitempty"`
	AnyProp bool                  `json:"any_prop,omitempty"`
	Picks   []selection.Pick      `json:"picks,omitempty"`
	Ball    []pair.Pair           `json:"ball,omitempty"`
	// Recomputes is MethodRelease's Dijkstra-run count.
	Recomputes int64 `json:"recomputes,omitempty"`
}

// endReq drops every shard state of a finished runner.
type endReq struct {
	Runner string `json:"runner"`
}
