package cluster

import (
	"context"
	"math/rand"
	"time"
)

// backoff produces bounded exponential delays with equal jitter: attempt
// n waits in [m/2, m) for m = min(Max, Base·2ⁿ). The jitter source is a
// caller-owned seeded rand.Rand (never the global source — remp-lint's
// determinism analyzer exempts this package, but retry timing still
// should not contend on a process-wide lock).
type backoff struct {
	base    time.Duration
	max     time.Duration
	rng     *rand.Rand
	attempt int
}

func newBackoff(base, max time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay for the current attempt and advances the
// counter. Delays stay within [m/2, m) and never exceed max.
func (b *backoff) Next() time.Duration {
	m := b.max
	if shifted := b.base << uint(b.attempt); b.attempt < 32 && shifted < b.max {
		m = shifted
	}
	if b.attempt < 1<<20 {
		b.attempt++
	}
	half := m / 2
	return half + time.Duration(b.rng.Int63n(int64(half)+1))
}

// Sleep waits out the next delay or returns the context's error early.
func (b *backoff) Sleep(ctx context.Context) error {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Reset restarts the schedule after a success.
func (b *backoff) Reset() { b.attempt = 0 }
