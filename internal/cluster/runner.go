package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/ergraph"
	"repro/internal/pair"
	"repro/internal/selection"
)

// Runner returns a core.RunnerFactory that places a loop's shard engines
// on the coordinator's workers. The spec is the opaque session
// specification each worker's Prepare hook rebuilds the pipeline from —
// it must describe the same pipeline as the *core.Prepared the factory is
// invoked with, or workers will compute against a different graph.
func (co *Coordinator) Runner(spec []byte) core.RunnerFactory {
	hash := SpecHash(spec)
	return func(p *core.Prepared) (core.ShardRunner, error) {
		r := &remoteRunner{
			co:   co,
			p:    p,
			id:   fmt.Sprintf("%s-%d", co.nonce, co.runnerSeq.Add(1)),
			spec: spec,
			hash: hash,
		}
		n := p.NumShards()
		r.shards = make([]*remoteShard, n)
		for s := range r.shards {
			r.shards[s] = &remoteShard{worker: s % len(co.workers)}
		}
		// Assign every shard eagerly so prepare latency overlaps across
		// workers and a dead-on-arrival cluster fails the loop at birth
		// instead of at the first gather.
		errs := make([]error, n)
		var wg sync.WaitGroup
		for s := 0; s < n; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				ctx, cancel := r.opContext()
				defer cancel()
				_, errs[s] = r.ensure(ctx, s, r.backoff())
			}(s)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return nil, fmt.Errorf("cluster: assigning shards: %w", err)
		}
		co.logf("cluster: runner %s assigned %d shards across %d workers", r.id, n, co.LiveWorkers())
		return r, nil
	}
}

// remoteShard is the coordinator-side replica of one shard: the full
// sequence-numbered command log (the failover source of truth), the flush
// watermark acknowledged by the current worker, and the assignment.
type remoteShard struct {
	mu      sync.Mutex
	log     []Cmd
	flushed int
	worker  int
	// prepared marks the current assignment valid; a state-loss error
	// clears it. assigned stays true once the shard has ever had an owner,
	// so a later prepare is counted as a reassignment either way.
	prepared bool
	assigned bool
	released bool
}

// remoteRunner is the cluster implementation of core.ShardRunner. Writes
// append to the per-shard command log and ship lazily, piggybacked on the
// next read RPC; reads retry with jittered backoff under the operation
// deadline, failing over to a surviving worker — re-prepare plus full log
// replay — when the owner is lost.
type remoteRunner struct {
	co   *Coordinator
	p    *core.Prepared
	id   string
	spec []byte
	hash string

	shards []*remoteShard
}

func (r *remoteRunner) opContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), r.co.cfg.OpTimeout)
}

func (r *remoteRunner) backoff() *backoff {
	return newBackoff(r.co.cfg.BackoffBase, r.co.cfg.BackoffMax, r.co.baseSeed+r.co.seedSeq.Add(1))
}

// append logs one command. Writes never fail: the log is durable in the
// coordinator (itself recoverable from the session WAL), and shipping is
// deferred to the next read RPC on the shard.
func (r *remoteRunner) append(s int, c Cmd) {
	sh := r.shards[s]
	sh.mu.Lock()
	c.Seq = len(sh.log) + 1
	sh.log = append(sh.log, c)
	sh.mu.Unlock()
}

func (r *remoteRunner) Resolve(s int, q pair.Pair, detach bool) error {
	r.append(s, Cmd{Op: OpResolve, Pair: q, Detach: detach})
	return nil
}

func (r *remoteRunner) Damp(s int, q pair.Pair, prior float64) error {
	r.append(s, Cmd{Op: OpDamp, Pair: q, Prior: prior})
	return nil
}

func (r *remoteRunner) Rebuild(s int, est map[ergraph.RelPair]consistency.Estimate) error {
	r.append(s, Cmd{Op: OpRebuild, Est: encodeEstimates(r.p.ShardLabels(s), est)})
	return nil
}

func (r *remoteRunner) Invalidate(s int) error {
	r.append(s, Cmd{Op: OpInvalidate})
	return nil
}

func (r *remoteRunner) Gather(s int) ([]selection.Candidate, bool, error) {
	// The sync marker makes the gather's engine sync part of the log:
	// replaying a lost shard re-executes every sync at its original
	// position, so the last-sync snapshot Ball serves — and the candidates
	// a replayed Rank re-derives — reproduce bit-identically.
	r.append(s, Cmd{Op: OpSync})
	res, err := r.do(s, MethodGather, shardReq{})
	if err != nil {
		return nil, false, err
	}
	return res.Cands, res.AnyProp, nil
}

func (r *remoteRunner) Rank(s, mu int) ([]selection.Pick, error) {
	res, err := r.do(s, MethodRank, shardReq{Mu: mu})
	if err != nil {
		return nil, err
	}
	if res.Picks == nil {
		res.Picks = []selection.Pick{}
	}
	return res.Picks, nil
}

func (r *remoteRunner) Ball(s int, q pair.Pair) ([]pair.Pair, error) {
	res, err := r.do(s, MethodBall, shardReq{Pair: q})
	if err != nil {
		return nil, err
	}
	return res.Ball, nil
}

// Release drops a settled shard's engine. It is a single best-effort
// attempt: recomputes are diagnostics, the loop never addresses a settled
// shard again, and burning the failover machinery on a freed engine would
// re-prepare state only to discard it.
func (r *remoteRunner) Release(s int) (int64, error) {
	sh := r.shards[s]
	sh.released = true
	ctx, cancel := context.WithTimeout(context.Background(), r.co.cfg.RPCTimeout)
	defer cancel()
	if !sh.prepared || r.co.workers[sh.worker].isDown() {
		return 0, nil
	}
	sh.mu.Lock()
	req := shardReq{Runner: r.id, Shard: s, Cmds: sh.log[sh.flushed:]}
	sh.mu.Unlock()
	body, _, err := r.co.workers[sh.worker].call(ctx, MethodRelease, req, true)
	if err != nil {
		return 0, nil
	}
	var res shardRes
	if json.Unmarshal(body, &res) != nil {
		return 0, nil
	}
	sh.mu.Lock()
	sh.flushed = len(sh.log)
	sh.mu.Unlock()
	return res.Recomputes, nil
}

// Close releases the remaining shards and tells every live worker to drop
// the runner's state. Always succeeds: close-time recomputes are
// diagnostics only.
func (r *remoteRunner) Close() (int64, error) {
	var n int64
	for s, sh := range r.shards {
		if sh.released {
			continue
		}
		rec, _ := r.Release(s)
		n += rec
	}
	for _, wc := range r.co.workers {
		if wc.isDown() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.co.cfg.RPCTimeout)
		wc.call(ctx, MethodEnd, endReq{Runner: r.id}, true)
		cancel()
	}
	return n, nil
}

// do performs one read RPC on a shard, shipping the pending command tail,
// retrying with backoff under the operation deadline and failing over
// when the owner is lost. A non-state application error is permanent: the
// worker is healthy and deterministic, so a retry would only repeat it.
func (r *remoteRunner) do(s int, method string, req shardReq) (shardRes, error) {
	sh := r.shards[s]
	ctx, cancel := r.opContext()
	defer cancel()
	bo := r.backoff()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			r.co.cfg.Metrics.rpcRetries().Inc()
			if err := bo.Sleep(ctx); err != nil {
				return shardRes{}, fmt.Errorf("cluster: shard %d %s exhausted its deadline: %w (last error: %v)", s, method, err, lastErr)
			}
		}
		wi, err := r.ensure(ctx, s, bo)
		if err != nil {
			if ctx.Err() != nil {
				return shardRes{}, fmt.Errorf("cluster: shard %d %s exhausted its deadline: %w", s, method, err)
			}
			lastErr = err
			continue
		}
		sh.mu.Lock()
		flushedAtSend := sh.flushed
		req.Runner, req.Shard = r.id, s
		req.Cmds = sh.log[flushedAtSend:]
		sent := len(sh.log)
		sh.mu.Unlock()
		body, kind, err := r.co.workers[wi].call(ctx, method, req, true)
		if err != nil {
			lastErr = err
			if kind == ErrKindState {
				// The worker restarted and lost the shard: re-prepare + replay.
				sh.prepared = false
				continue
			}
			var ce *callError
			if errors.As(err, &ce) && ce.transport {
				continue
			}
			return shardRes{}, err
		}
		var res shardRes
		if err := json.Unmarshal(body, &res); err != nil {
			lastErr = fmt.Errorf("cluster: decoding %s response: %w", method, err)
			continue
		}
		sh.mu.Lock()
		if sh.flushed < sent {
			sh.flushed = sent
		}
		sh.mu.Unlock()
		bo.Reset()
		return res, nil
	}
}

// ensure returns a live worker holding the shard's state, preparing and
// replaying the command log if the shard is unassigned or its owner died.
// Candidate workers are probed round-robin from the current assignment;
// with none live it errors and the caller backs off (the heartbeat may
// revive one).
func (r *remoteRunner) ensure(ctx context.Context, s int, bo *backoff) (int, error) {
	sh := r.shards[s]
	if sh.prepared && !r.co.workers[sh.worker].isDown() {
		return sh.worker, nil
	}
	n := len(r.co.workers)
	var lastErr error
	for off := 0; off < n; off++ {
		wi := (sh.worker + off) % n
		wc := r.co.workers[wi]
		if wc.isDown() {
			continue
		}
		if err := r.prepareOn(ctx, wc, s); err != nil {
			lastErr = err
			continue
		}
		if sh.assigned {
			// The shard had an owner before: this prepare is a failover.
			r.co.cfg.Metrics.reassignments().Inc()
			r.co.logf("cluster: runner %s shard %d reassigned %s -> %s",
				r.id, s, r.co.workers[sh.worker].addr, wc.addr)
		}
		sh.worker = wi
		sh.prepared = true
		sh.assigned = true
		return wi, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no live workers (%d configured)", n)
	}
	return 0, lastErr
}

// prepareOn builds the shard's state on a worker and replays the full
// command log in bounded chunks. The worker rebuilds from sequence 1;
// every logged sync lands at its original position, so the rebuilt engine
// is bit-identical to the lost one.
func (r *remoteRunner) prepareOn(ctx context.Context, wc *workerClient, s int) error {
	sh := r.shards[s]
	preq := prepareReq{Runner: r.id, Shard: s, SpecHash: r.hash, Spec: r.spec}
	if _, _, err := wc.call(ctx, MethodPrepare, preq, true); err != nil {
		return err
	}
	sh.mu.Lock()
	log := sh.log
	sh.mu.Unlock()
	for lo := 0; lo < len(log); lo += maxReplayCmds {
		hi := min(lo+maxReplayCmds, len(log))
		req := shardReq{Runner: r.id, Shard: s, Cmds: log[lo:hi]}
		if _, _, err := wc.call(ctx, MethodApply, req, true); err != nil {
			return err
		}
	}
	sh.mu.Lock()
	sh.flushed = len(log)
	sh.mu.Unlock()
	return nil
}
