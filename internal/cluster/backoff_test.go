package cluster

import (
	"context"
	"testing"
	"time"
)

// TestBackoffJitterBounds pins the equal-jitter envelope: attempt n draws
// from [m/2, m] for m = min(max, base·2ⁿ), so retries never synchronize
// and never exceed the cap.
func TestBackoffJitterBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 160*time.Millisecond
	for seed := int64(1); seed <= 5; seed++ {
		b := newBackoff(base, max, seed)
		for attempt := 0; attempt < 12; attempt++ {
			m := max
			if shifted := base << uint(attempt); shifted < max {
				m = shifted
			}
			d := b.Next()
			if d < m/2 || d > m {
				t.Fatalf("seed %d attempt %d: delay %v outside [%v, %v]", seed, attempt, d, m/2, m)
			}
		}
	}
}

// TestBackoffCap pins that deep attempts saturate at max (no overflow of
// the shift either).
func TestBackoffCap(t *testing.T) {
	b := newBackoff(time.Millisecond, 50*time.Millisecond, 1)
	for i := 0; i < 100; i++ {
		if d := b.Next(); d > 50*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds cap", i, d)
		}
	}
}

// TestBackoffReset pins that Reset restarts the schedule at the base.
func TestBackoffReset(t *testing.T) {
	b := newBackoff(10*time.Millisecond, time.Second, 2)
	for i := 0; i < 6; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d > 10*time.Millisecond {
		t.Fatalf("first delay after Reset = %v, want ≤ base", d)
	}
}

// TestBackoffDefaults pins the zero-value guards.
func TestBackoffDefaults(t *testing.T) {
	b := newBackoff(0, 0, 3)
	if b.base <= 0 || b.max < b.base {
		t.Fatalf("defaults not applied: base %v max %v", b.base, b.max)
	}
}

// TestBackoffSleepCancellation pins that a canceled context interrupts
// the wait immediately with the context's error.
func TestBackoffSleepCancellation(t *testing.T) {
	b := newBackoff(time.Hour, time.Hour, 4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Sleep(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not observe cancellation")
	}
}

// TestBackoffSleepElapses pins that an uncanceled Sleep returns nil after
// roughly the scheduled delay.
func TestBackoffSleepElapses(t *testing.T) {
	b := newBackoff(time.Millisecond, 2*time.Millisecond, 5)
	if err := b.Sleep(context.Background()); err != nil {
		t.Fatal(err)
	}
}
