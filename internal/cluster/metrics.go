package cluster

import "repro/internal/obs"

// Metrics are the cluster's observability hooks, wired to the server's
// registry by cmd/remp-server. Every field is optional: obs counters and
// gauges are nil-receiver-safe, so an unwired Metrics (or a nil *Metrics)
// records nothing.
type Metrics struct {
	// WorkersLive tracks the number of workers currently considered live.
	WorkersLive *obs.Gauge
	// WorkerDowns counts transitions of a worker from live to down.
	WorkerDowns *obs.Counter
	// RPCRetries counts RPC attempts retried after a transport failure.
	RPCRetries *obs.Counter
	// Reassignments counts shards re-prepared on a different worker after
	// their owner was lost.
	Reassignments *obs.Counter
}

func (m *Metrics) workersLive() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.WorkersLive
}

func (m *Metrics) workerDowns() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.WorkerDowns
}

func (m *Metrics) rpcRetries() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.RPCRetries
}

func (m *Metrics) reassignments() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Reassignments
}
