package cluster

import (
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/datasets"
	"repro/internal/obs"
	"repro/internal/pair"
)

// testSpec is the session spec the test workers rebuild pipelines from:
// a named synthetic dataset plus the config knobs the tests vary. Both
// sides of every equivalence test — the coordinator's Prepared and each
// worker's — are built from the same spec, exactly as the server wiring
// does it.
type testSpec struct {
	Dataset string `json:"dataset"`
	Seed    int64  `json:"seed"`
	Shards  int    `json:"shards"`
	Mu      int    `json:"mu"`
	Hybrid  bool   `json:"hybrid,omitempty"`
	Budget  int    `json:"budget,omitempty"`
}

func (s testSpec) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Shards = s.Shards
	cfg.Mu = s.Mu
	cfg.Hybrid = s.Hybrid
	cfg.Budget = s.Budget
	return cfg
}

func prepareFromSpec(raw []byte) (*core.Prepared, error) {
	var s testSpec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, err
	}
	ds, err := datasets.ByName(s.Dataset, s.Seed)
	if err != nil {
		return nil, err
	}
	return core.Prepare(ds.K1, ds.K2, s.config()), nil
}

// startWorker serves a Worker on a loopback listener.
func startWorker(t *testing.T, faults *Faults) (string, *Worker) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(WorkerConfig{Prepare: prepareFromSpec, Faults: faults, Logf: t.Logf})
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })
	return ln.Addr().String(), w
}

// testCoordinator builds a coordinator with test-speed timeouts.
func testCoordinator(t *testing.T, addrs []string, faults *Faults, m *Metrics) *Coordinator {
	t.Helper()
	co, err := NewCoordinator(CoordinatorConfig{
		Workers:           addrs,
		HeartbeatInterval: 50 * time.Millisecond,
		LivenessTimeout:   300 * time.Millisecond,
		RPCTimeout:        500 * time.Millisecond,
		OpTimeout:         30 * time.Second,
		BackoffBase:       2 * time.Millisecond,
		BackoffMax:        40 * time.Millisecond,
		Faults:            faults,
		Metrics:           m,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

func testMetrics() *Metrics {
	return &Metrics{
		WorkersLive:   &obs.Gauge{},
		WorkerDowns:   &obs.Counter{},
		RPCRetries:    &obs.Counter{},
		Reassignments: &obs.Counter{},
	}
}

// assertResultsIdentical is the byte-identity oracle check: every result
// set, the question count and the loop count must match exactly.
func assertResultsIdentical(t *testing.T, want, got *core.Result) {
	t.Helper()
	sets := []struct {
		name      string
		want, got pair.Set
	}{
		{"Matches", want.Matches, got.Matches},
		{"Confirmed", want.Confirmed, got.Confirmed},
		{"Propagated", want.Propagated, got.Propagated},
		{"IsolatedPredicted", want.IsolatedPredicted, got.IsolatedPredicted},
		{"NonMatches", want.NonMatches, got.NonMatches},
	}
	for _, s := range sets {
		if s.want.Len() != s.got.Len() {
			t.Fatalf("%s: %d pairs, want %d", s.name, s.got.Len(), s.want.Len())
		}
		for _, p := range s.want.Sorted() {
			if !s.got.Has(p) {
				t.Fatalf("%s: missing %v", s.name, p)
			}
		}
	}
	if want.Questions != got.Questions {
		t.Fatalf("Questions = %d, want %d", got.Questions, want.Questions)
	}
	if want.Loops != got.Loops {
		t.Fatalf("Loops = %d, want %d", got.Loops, want.Loops)
	}
}

// runLocal is the oracle: the same spec resolved by the in-process runner.
func runLocal(t *testing.T, spec testSpec, asker core.Asker) *core.Result {
	t.Helper()
	ds, err := datasets.ByName(spec.Dataset, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return core.Prepare(ds.K1, ds.K2, spec.config()).Run(asker)
}

// runRemote resolves the spec with the shard engines on the coordinator's
// workers.
func runRemote(t *testing.T, co *Coordinator, spec testSpec, asker core.Asker, progress func(questions int)) *core.Result {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := datasets.ByName(spec.Dataset, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.config()
	cfg.Runner = co.Runner(raw)
	if progress != nil {
		cfg.Progress = func(questions int, _ pair.Set) { progress(questions) }
	}
	p := core.Prepare(ds.K1, ds.K2, cfg)
	if p.NumShards() < 2 {
		t.Fatalf("fixture produced %d shards, want ≥ 2", p.NumShards())
	}
	return p.Run(asker)
}

func oracleFor(t *testing.T, spec testSpec) *core.OracleAsker {
	t.Helper()
	ds, err := datasets.ByName(spec.Dataset, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewOracleAsker(ds.Gold.IsMatch)
}

// TestRemoteRunnerMatchesLocal is the cluster's oracle-equivalence
// guarantee on a healthy cluster: a run whose shard engines live on two
// worker processes resolves byte-identically to the synchronous
// in-process run, across config variants that exercise every RPC (rank,
// gather, ball, rebuild via re-estimation, damp via the hybrid path).
func TestRemoteRunnerMatchesLocal(t *testing.T) {
	cases := []struct {
		name string
		spec testSpec
	}{
		{"default", testSpec{Dataset: "books", Seed: 7, Shards: 4, Mu: 4}},
		{"hybrid", testSpec{Dataset: "books", Seed: 8, Shards: 3, Mu: 5, Hybrid: true}},
		{"budgeted", testSpec{Dataset: "books", Seed: 9, Shards: 4, Mu: 3, Budget: 25}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a1, _ := startWorker(t, nil)
			a2, _ := startWorker(t, nil)
			co := testCoordinator(t, []string{a1, a2}, nil, testMetrics())
			ref := runLocal(t, tc.spec, oracleFor(t, tc.spec))
			got := runRemote(t, co, tc.spec, oracleFor(t, tc.spec), nil)
			assertResultsIdentical(t, ref, got)
		})
	}
}

// TestRemoteRunnerMatchesLocalNoisyCrowd repeats the equivalence check
// with a fallible simulated crowd, so hard-question damping and non-match
// detaches travel the wire too.
func TestRemoteRunnerMatchesLocalNoisyCrowd(t *testing.T) {
	spec := testSpec{Dataset: "books", Seed: 11, Shards: 4, Mu: 4}
	crowdFor := func() *crowd.Platform {
		ds, err := datasets.ByName(spec.Dataset, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		return crowd.NewPlatform(ds.Gold.IsMatch, crowd.Config{
			NumWorkers: 20, WorkersPerQuestion: 5, ErrorRate: 0.1, Seed: 3,
		})
	}
	a1, _ := startWorker(t, nil)
	a2, _ := startWorker(t, nil)
	co := testCoordinator(t, []string{a1, a2}, nil, testMetrics())
	ref := runLocal(t, spec, crowdFor())
	got := runRemote(t, co, spec, crowdFor(), nil)
	assertResultsIdentical(t, ref, got)
}

// TestClusterFailoverWorkerDeath kills one of three in-process workers
// mid-run: the coordinator must mark it down, re-prepare its shards on
// the survivors from the command log, and finish byte-identical to the
// local oracle, with reassignments and a down transition recorded.
func TestClusterFailoverWorkerDeath(t *testing.T) {
	spec := testSpec{Dataset: "books", Seed: 12, Shards: 6, Mu: 3}
	a1, w1 := startWorker(t, nil)
	a2, _ := startWorker(t, nil)
	a3, _ := startWorker(t, nil)
	m := testMetrics()
	co := testCoordinator(t, []string{a1, a2, a3}, nil, m)

	ref := runLocal(t, spec, oracleFor(t, spec))
	var killed atomic.Bool
	got := runRemote(t, co, spec, oracleFor(t, spec), func(questions int) {
		if questions >= ref.Questions/4 && killed.CompareAndSwap(false, true) {
			t.Logf("killing worker %s after %d questions", a1, questions)
			w1.Close()
		}
	})
	if !killed.Load() {
		t.Fatal("kill threshold never reached")
	}
	assertResultsIdentical(t, ref, got)
	if m.Reassignments.Value() == 0 {
		t.Error("no shard reassignments recorded after worker death")
	}
	if m.WorkerDowns.Value() == 0 {
		t.Error("no worker-down transition recorded")
	}
}

// TestClusterCrashFault exercises the worker-side kill-after-N-RPCs chaos
// fault: the worker tears itself down mid-run exactly as a SIGKILL would,
// and the survivor absorbs its shards with no effect on the result.
func TestClusterCrashFault(t *testing.T) {
	spec := testSpec{Dataset: "books", Seed: 13, Shards: 4, Mu: 4}
	a1, _ := startWorker(t, &Faults{CrashAfterRPCs: 25})
	a2, _ := startWorker(t, nil)
	m := testMetrics()
	co := testCoordinator(t, []string{a1, a2}, nil, m)
	ref := runLocal(t, spec, oracleFor(t, spec))
	got := runRemote(t, co, spec, oracleFor(t, spec), nil)
	assertResultsIdentical(t, ref, got)
	if m.Reassignments.Value() == 0 {
		t.Error("no shard reassignments recorded after crash fault")
	}
}

// TestClusterSurvivesChaos runs under coordinator-side frame chaos —
// duplicated and dropped frames plus injected latency — and must still be
// oracle-identical: duplicates are absorbed by the idempotent command
// watermark and stale-response skipping, drops by timeout and retry.
func TestClusterSurvivesChaos(t *testing.T) {
	cases := []struct {
		name    string
		faults  *Faults
		retries bool
	}{
		{"duplicates", &Faults{DuplicateEveryN: 2}, false},
		{"drops", &Faults{DropEveryN: 6}, true},
		{"delays", &Faults{DelayEveryN: 3, Delay: 10 * time.Millisecond}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec{Dataset: "books", Seed: 14, Shards: 4, Mu: 4}
			a1, _ := startWorker(t, nil)
			a2, _ := startWorker(t, nil)
			m := testMetrics()
			co := testCoordinator(t, []string{a1, a2}, tc.faults, m)
			ref := runLocal(t, spec, oracleFor(t, spec))
			got := runRemote(t, co, spec, oracleFor(t, spec), nil)
			assertResultsIdentical(t, ref, got)
			if tc.retries && m.RPCRetries.Value() == 0 {
				t.Error("dropped frames produced no recorded retries")
			}
		})
	}
}

// TestWorkerDuplicateCommandDelivery pins answer-delivery idempotency at
// the worker boundary: the same command tail delivered twice (a duplicated
// or replayed frame) is applied once, and a gap is rejected.
func TestWorkerDuplicateCommandDelivery(t *testing.T) {
	spec := testSpec{Dataset: "books", Seed: 15, Shards: 2, Mu: 4}
	raw, _ := json.Marshal(spec)
	w := NewWorker(WorkerConfig{Prepare: prepareFromSpec})
	if _, _, err := w.handlePrepare(prepareReq{Runner: "r", Shard: 0, SpecHash: SpecHash(raw), Spec: raw}); err != nil {
		t.Fatal(err)
	}
	gatherOnce := func() shardRes {
		body, kind, err := w.handleShard(MethodGather, shardReq{Runner: "r", Shard: 0, Cmds: []Cmd{{Seq: 1, Op: OpSync}}})
		if err != nil {
			t.Fatalf("gather (kind %q): %v", kind, err)
		}
		var res shardRes
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := gatherOnce()
	if first.Applied != 1 {
		t.Fatalf("applied = %d, want 1", first.Applied)
	}
	// Redelivering the identical frame must dedup, not double-apply.
	second := gatherOnce()
	if second.Applied != 1 {
		t.Fatalf("applied after duplicate = %d, want 1", second.Applied)
	}
	if len(first.Cands) != len(second.Cands) {
		t.Fatalf("duplicate delivery changed candidates: %d vs %d", len(first.Cands), len(second.Cands))
	}
	// A sequence gap means divergent history and must be rejected.
	if _, _, err := w.handleShard(MethodApply, shardReq{Runner: "r", Shard: 0, Cmds: []Cmd{{Seq: 5, Op: OpSync}}}); err == nil {
		t.Fatal("command gap accepted")
	}
	// An unknown shard is a state error the coordinator repairs by
	// re-preparing.
	if _, kind, err := w.handleShard(MethodGather, shardReq{Runner: "r", Shard: 1}); err == nil || kind != ErrKindState {
		t.Fatalf("missing shard: kind %q, err %v; want state error", kind, err)
	}
}

// TestCoordinatorStatus pins the liveness snapshot /healthz reports.
func TestCoordinatorStatus(t *testing.T) {
	a1, w1 := startWorker(t, nil)
	a2, _ := startWorker(t, nil)
	m := testMetrics()
	co := testCoordinator(t, []string{a1, a2}, nil, m)
	waitFor(t, time.Second, func() bool { return co.LiveWorkers() == 2 })
	w1.Close()
	waitFor(t, 5*time.Second, func() bool { return co.LiveWorkers() == 1 })
	var downAddr string
	for _, st := range co.Status() {
		if !st.Live {
			downAddr = st.Addr
		}
	}
	if downAddr != a1 {
		t.Fatalf("down worker = %q, want %q", downAddr, a1)
	}
	if m.WorkersLive.Value() != 1 {
		t.Fatalf("workers-live gauge = %d, want 1", m.WorkersLive.Value())
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestParseFaults pins the -chaos flag grammar.
func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("drop=7,dup=5,delay=3:20ms,kill=100")
	if err != nil {
		t.Fatal(err)
	}
	want := &Faults{DropEveryN: 7, DuplicateEveryN: 5, DelayEveryN: 3, Delay: 20 * time.Millisecond, CrashAfterRPCs: 100}
	if f.DropEveryN != want.DropEveryN || f.DuplicateEveryN != want.DuplicateEveryN ||
		f.DelayEveryN != want.DelayEveryN || f.Delay != want.Delay || f.CrashAfterRPCs != want.CrashAfterRPCs {
		t.Fatalf("ParseFaults: drop=%d dup=%d delay=%d:%v kill=%d, want drop=%d dup=%d delay=%d:%v kill=%d",
			f.DropEveryN, f.DuplicateEveryN, f.DelayEveryN, f.Delay, f.CrashAfterRPCs,
			want.DropEveryN, want.DuplicateEveryN, want.DelayEveryN, want.Delay, want.CrashAfterRPCs)
	}
	if f, err := ParseFaults(""); err != nil || f != nil {
		t.Fatalf("empty chaos spec: %v, %v", f, err)
	}
	for _, bad := range []string{"drop", "drop=0", "drop=x", "dup=-1", "delay=3", "delay=0:10ms", "delay=3:bogus", "kill=0", "explode=1"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}

// TestFaultsNilSafe pins that a nil *Faults injects nothing.
func TestFaultsNilSafe(t *testing.T) {
	var f *Faults
	if f.drop() || f.duplicate() || f.crashDue() || f.delay() != 0 {
		t.Fatal("nil Faults injected a fault")
	}
}
