// Package cluster moves the per-shard propagation engines of a session
// out of the coordinator process: a Coordinator implements core's
// ShardRunner by assigning shards to worker processes over a stdlib-only,
// length-prefixed JSON-RPC protocol, and a Worker hosts the assigned
// shards' engine states (core.ShardState — the same code the in-process
// runner executes, so local and remote runs are byte-identical by
// construction).
//
// Robustness is the package's reason to exist. Every shard's mutating
// operations are sequence-numbered into a per-shard command log; workers
// deduplicate on the applied watermark, so any frame may be duplicated or
// replayed. RPCs carry per-request IDs, deadlines and bounded
// exponential backoff with jitter; worker liveness is tracked by
// heartbeats. When a worker dies mid-run the coordinator re-prepares the
// lost shards on surviving workers and replays their command logs —
// themselves derived from the session's WAL-durable answers — so a
// SIGKILLed worker costs latency, never correctness.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Protocol constants. Frames are a 4-byte big-endian length prefix
// followed by one JSON-encoded Envelope.
const (
	// ProtocolVersion is the wire version stamped into every envelope;
	// a mismatch is a decode error, so mixed deployments fail loudly.
	ProtocolVersion = 1
	// MaxFrameBytes bounds a frame body. Larger announcements are decode
	// errors, so a corrupt length prefix cannot trigger an unbounded
	// allocation.
	MaxFrameBytes = 32 << 20
)

// Envelope kinds.
const (
	// FrameRequest marks a request envelope.
	FrameRequest = "req"
	// FrameResponse marks a response envelope.
	FrameResponse = "res"
)

// Envelope is the versioned frame body shared by requests and responses.
// Requests carry Method and Body; responses echo the request ID and carry
// either Body or Err (with ErrKind classifying recoverable state loss).
type Envelope struct {
	V      int             `json:"v"`
	ID     uint64          `json:"id"`
	Kind   string          `json:"kind"`
	Method string          `json:"method,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Err    string          `json:"err,omitempty"`
	// ErrKind classifies errors the caller can repair: ErrKindState means
	// the worker does not hold the addressed state (it restarted or never
	// saw the shard) and a prepare + log replay will fix it.
	ErrKind string `json:"err_kind,omitempty"`
}

// ErrKindState marks a lost-state error: re-prepare and replay to repair.
const ErrKindState = "state"

// WriteFrame encodes env as one length-prefixed frame. The header and
// body are written in a single Write so a frame is never interleaved by
// an unsynchronized writer.
func WriteFrame(w io.Writer, env Envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("cluster: encoding frame: %w", err)
	}
	if len(body) > MaxFrameBytes {
		return fmt.Errorf("cluster: frame body %d bytes exceeds limit %d", len(body), MaxFrameBytes)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	_, err = w.Write(buf)
	return err
}

// ReadFrame decodes one frame. Malformed input — truncated prefix or
// body, oversized or empty announcements, invalid JSON, a version or kind
// mismatch — returns an error and never panics; the fuzz harness holds it
// to that.
func ReadFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Envelope{}, fmt.Errorf("cluster: empty frame")
	}
	if n > MaxFrameBytes {
		return Envelope{}, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Envelope{}, fmt.Errorf("cluster: truncated frame: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return Envelope{}, fmt.Errorf("cluster: decoding frame: %w", err)
	}
	if env.V != ProtocolVersion {
		return Envelope{}, fmt.Errorf("cluster: protocol version %d, want %d", env.V, ProtocolVersion)
	}
	if env.Kind != FrameRequest && env.Kind != FrameResponse {
		return Envelope{}, fmt.Errorf("cluster: unknown frame kind %q", env.Kind)
	}
	return env, nil
}
