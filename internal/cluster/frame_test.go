package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
)

// frameBytes encodes one envelope as its wire frame.
func frameBytes(t testing.TB, env Envelope) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFrameRoundTrip pins the codec: a written frame reads back
// field-identical, and consecutive frames on one stream stay framed.
func TestFrameRoundTrip(t *testing.T) {
	envs := []Envelope{
		{V: ProtocolVersion, ID: 1, Kind: FrameRequest, Method: MethodPing, Body: json.RawMessage(`{}`)},
		{V: ProtocolVersion, ID: 2, Kind: FrameResponse, Body: json.RawMessage(`{"applied":3}`)},
		{V: ProtocolVersion, ID: 3, Kind: FrameResponse, Err: "boom", ErrKind: ErrKindState},
	}
	var buf bytes.Buffer
	for _, env := range envs {
		if err := WriteFrame(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range envs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.V != want.V || got.ID != want.ID || got.Kind != want.Kind ||
			got.Method != want.Method || got.Err != want.Err || got.ErrKind != want.ErrKind ||
			string(got.Body) != string(want.Body) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestReadFrameRejectsMalformed pins the decoder's failure modes: every
// malformed input errors — never panics, never allocates unboundedly.
func TestReadFrameRejectsMalformed(t *testing.T) {
	valid := frameBytes(t, Envelope{V: ProtocolVersion, ID: 9, Kind: FrameRequest, Method: MethodPing})
	oversized := make([]byte, 4)
	binary.BigEndian.PutUint32(oversized, MaxFrameBytes+1)
	badVersion := frameBytes(t, Envelope{V: ProtocolVersion + 9, ID: 1, Kind: FrameRequest})
	badKind := frameBytes(t, Envelope{V: ProtocolVersion, ID: 1, Kind: "oops"})
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty input", nil},
		{"truncated prefix", valid[:2]},
		{"zero length", []byte{0, 0, 0, 0}},
		{"oversized announcement", oversized},
		{"truncated body", valid[:len(valid)-3]},
		{"invalid json", append([]byte{0, 0, 0, 3}, '{', 'x', '}')},
		{"version mismatch", badVersion},
		{"unknown kind", badKind},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadFrame(bytes.NewReader(tc.in)); err == nil {
				t.Fatal("malformed frame accepted")
			}
		})
	}
}

// TestWriteFrameRejectsOversized pins the writer-side bound.
func TestWriteFrameRejectsOversized(t *testing.T) {
	big := Envelope{V: ProtocolVersion, ID: 1, Kind: FrameRequest, Body: json.RawMessage(`"` + strings.Repeat("a", MaxFrameBytes) + `"`)}
	if err := WriteFrame(&bytes.Buffer{}, big); err == nil {
		t.Fatal("oversized frame written")
	}
}

// FuzzReadFrame holds the decoder to its no-panic contract on arbitrary
// bytes. The corpus seeds are real captured frames — requests and
// responses the protocol actually exchanges — so mutation explores the
// neighborhood of valid traffic, not just noise.
func FuzzReadFrame(f *testing.F) {
	realFrames := []Envelope{
		{V: ProtocolVersion, ID: 1, Kind: FrameRequest, Method: MethodPing, Body: json.RawMessage(`{}`)},
		{V: ProtocolVersion, ID: 2, Kind: FrameRequest, Method: MethodPrepare,
			Body: json.RawMessage(`{"runner":"ab12-1","shard":0,"spec_hash":"deadbeef","spec":"eyJkYXRhc2V0IjoiYm9va3MifQ=="}`)},
		{V: ProtocolVersion, ID: 3, Kind: FrameRequest, Method: MethodGather,
			Body: json.RawMessage(`{"runner":"ab12-1","shard":2,"cmds":[{"seq":1,"op":"resolve","pair":{"U1":4,"U2":9},"detach":true},{"seq":2,"op":"sync"}]}`)},
		{V: ProtocolVersion, ID: 4, Kind: FrameResponse,
			Body: json.RawMessage(`{"applied":2,"cands":[{"Pair":{"U1":4,"U2":9},"Prob":0.75,"Inferred":[0,3]}],"any_prop":true}`)},
		{V: ProtocolVersion, ID: 5, Kind: FrameResponse, Err: "no state for runner ab12-1 shard 3", ErrKind: ErrKindState},
	}
	for _, env := range realFrames {
		f.Add(frameBytes(f, env))
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame the decoder accepts must satisfy the envelope invariants
		// and survive re-encoding.
		if env.V != ProtocolVersion {
			t.Fatalf("accepted version %d", env.V)
		}
		if env.Kind != FrameRequest && env.Kind != FrameResponse {
			t.Fatalf("accepted kind %q", env.Kind)
		}
		if err := WriteFrame(&bytes.Buffer{}, env); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
	})
}
