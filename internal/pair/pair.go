// Package pair defines entity pairs across two KBs, match sets, gold
// standards and the evaluation metrics used throughout the paper:
// precision / recall / F1 (§III-A), reduction ratio and pair completeness
// (§VIII-B, Table V).
package pair

import (
	"fmt"
	"sort"

	"repro/internal/kb"
)

// Pair is an entity pair (u1 ∈ K1, u2 ∈ K2), the vertex type of the ER
// graph and the unit of questions and matches.
type Pair struct {
	U1 kb.EntityID
	U2 kb.EntityID
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.U1, p.U2) }

// Less orders pairs lexicographically; used to make iteration orders
// deterministic.
func (p Pair) Less(q Pair) bool {
	if p.U1 != q.U1 {
		return p.U1 < q.U1
	}
	return p.U2 < q.U2
}

// Set is a set of entity pairs.
type Set map[Pair]struct{}

// NewSet returns a Set containing the given pairs.
func NewSet(pairs ...Pair) Set {
	s := make(Set, len(pairs))
	for _, p := range pairs {
		s[p] = struct{}{}
	}
	return s
}

// Add inserts p.
func (s Set) Add(p Pair) { s[p] = struct{}{} }

// Has reports membership.
func (s Set) Has(p Pair) bool {
	_, ok := s[p]
	return ok
}

// Remove deletes p.
func (s Set) Remove(p Pair) { delete(s, p) }

// Len returns the cardinality.
func (s Set) Len() int { return len(s) }

// Sorted returns the pairs in deterministic lexicographic order.
func (s Set) Sorted() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for p := range s {
		out[p] = struct{}{}
	}
	return out
}

// Gold is a reference alignment (gold standard): the set of true matches
// between two KBs.
type Gold struct {
	matches Set
}

// NewGold builds a gold standard from true matches.
func NewGold(matches []Pair) *Gold {
	return &Gold{matches: NewSet(matches...)}
}

// IsMatch reports whether p is a true match.
func (g *Gold) IsMatch(p Pair) bool { return g.matches.Has(p) }

// Size returns the number of true matches.
func (g *Gold) Size() int { return g.matches.Len() }

// Matches returns the true matches in deterministic order.
func (g *Gold) Matches() []Pair { return g.matches.Sorted() }

// Set returns the underlying match set (read-only by convention).
func (g *Gold) Set() Set { return g.matches }

// PRF holds precision, recall and F1-score.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	FN        int
}

// String implements fmt.Stringer.
func (m PRF) String() string {
	return fmt.Sprintf("P=%.1f%% R=%.1f%% F1=%.1f%%", 100*m.Precision, 100*m.Recall, 100*m.F1)
}

// Evaluate compares predicted matches against the gold standard.
func Evaluate(predicted Set, gold *Gold) PRF {
	tp := 0
	for p := range predicted {
		if gold.IsMatch(p) {
			tp++
		}
	}
	fp := predicted.Len() - tp
	fn := gold.Size() - tp
	return FromCounts(tp, fp, fn)
}

// FromCounts builds PRF from raw counts.
func FromCounts(tp, fp, fn int) PRF {
	var precision, recall, f1 float64
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return PRF{Precision: precision, Recall: recall, F1: f1, TP: tp, FP: fp, FN: fn}
}

// ReductionRatio is the proportion of candidates pruned: 1 − |after|/|before|
// (Table V's RR column).
func ReductionRatio(before, after int) float64 {
	if before == 0 {
		return 0
	}
	return 1 - float64(after)/float64(before)
}

// PairCompleteness is the proportion of true matches preserved in a
// candidate set (Table V's PC column).
func PairCompleteness(candidates Set, gold *Gold) float64 {
	if gold.Size() == 0 {
		return 0
	}
	kept := 0
	for _, m := range gold.Matches() {
		if candidates.Has(m) {
			kept++
		}
	}
	return float64(kept) / float64(gold.Size())
}
