package pair

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPairOrderingAndString(t *testing.T) {
	a := Pair{1, 2}
	b := Pair{1, 3}
	c := Pair{2, 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("Less ordering wrong")
	}
	if a.String() != "(1,2)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(Pair{1, 1}, Pair{2, 2})
	if s.Len() != 2 || !s.Has(Pair{1, 1}) {
		t.Fatal("NewSet wrong")
	}
	s.Add(Pair{3, 3})
	s.Add(Pair{3, 3})
	if s.Len() != 3 {
		t.Errorf("Len = %d after duplicate add", s.Len())
	}
	s.Remove(Pair{1, 1})
	if s.Has(Pair{1, 1}) {
		t.Error("Remove failed")
	}
	clone := s.Clone()
	clone.Add(Pair{9, 9})
	if s.Has(Pair{9, 9}) {
		t.Error("Clone aliases original")
	}
}

func TestSortedDeterministic(t *testing.T) {
	s := NewSet(Pair{2, 1}, Pair{1, 2}, Pair{1, 1})
	got := s.Sorted()
	want := []Pair{{1, 1}, {1, 2}, {2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
}

func TestEvaluate(t *testing.T) {
	gold := NewGold([]Pair{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	pred := NewSet(Pair{1, 1}, Pair{2, 2}, Pair{5, 5})
	m := Evaluate(pred, gold)
	if m.TP != 2 || m.FP != 1 || m.FN != 2 {
		t.Fatalf("counts: %+v", m)
	}
	if math.Abs(m.Precision-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %v", m.Precision)
	}
	if math.Abs(m.Recall-0.5) > 1e-12 {
		t.Errorf("recall = %v", m.Recall)
	}
	wantF1 := 2 * (2.0 / 3.0) * 0.5 / (2.0/3.0 + 0.5)
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", m.F1, wantF1)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	gold := NewGold(nil)
	m := Evaluate(NewSet(), gold)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("empty/empty: %+v", m)
	}
	m = Evaluate(NewSet(Pair{1, 1}), gold)
	if m.Precision != 0 {
		t.Errorf("all-FP precision = %v", m.Precision)
	}
}

func TestReductionRatio(t *testing.T) {
	if got := ReductionRatio(100, 30); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("RR = %v, want 0.7", got)
	}
	if got := ReductionRatio(0, 0); got != 0 {
		t.Errorf("RR(0,0) = %v", got)
	}
	if got := ReductionRatio(10, 10); got != 0 {
		t.Errorf("RR(10,10) = %v", got)
	}
}

func TestPairCompleteness(t *testing.T) {
	gold := NewGold([]Pair{{1, 1}, {2, 2}})
	cands := NewSet(Pair{1, 1}, Pair{9, 9})
	if got := PairCompleteness(cands, gold); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PC = %v, want 0.5", got)
	}
	if got := PairCompleteness(cands, NewGold(nil)); got != 0 {
		t.Errorf("PC on empty gold = %v", got)
	}
}

// Property: F1 is the harmonic mean and lies between precision and recall.
func TestPRFProperties(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		m := FromCounts(int(tp), int(fp), int(fn))
		if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 {
			return false
		}
		lo, hi := m.Precision, m.Recall
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.F1 >= lo-1e-9 && m.F1 <= hi+1e-9 || m.F1 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
