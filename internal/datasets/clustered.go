package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/kb"
	"repro/internal/pair"
)

// Clustered builds the clustered synthetic graph the sharding benchmarks
// run on: `clusters` independent relational clusters whose sizes sweep
// from large to small, so the candidate-pair graph decomposes into many
// connected components of diverse weight — the shape partition-wise
// collective ER exploits. Each cluster c is a star: one hub entity pair
// (exact labels on both sides, so hubs seed the initial match set Min)
// relationally linked to its member pairs through a relation family
// shared by every `familyStride`-th cluster. Distinct families give
// shards disjoint consistency parameters, which is what lets the sharded
// loop skip re-estimation rebuilds for shards whose labels did not
// change. About two thirds of the member labels are perturbed on the K2
// side — the initial match set stays small and the crowd has real
// questions to answer — and every cluster carries one isolated pair for
// the §VII-B classifier.
func Clustered(clusters, meanSize int, seed int64) *Dataset {
	if clusters <= 0 {
		clusters = 16
	}
	if meanSize <= 0 {
		meanSize = 12
	}
	rng := rand.New(rand.NewSource(seed))
	k1 := kb.New("clustered-1")
	k2 := kb.New("clustered-2")
	name1, name2 := k1.AddAttr("name"), k2.AddAttr("label")

	const families = 8
	rel1 := make([]kb.RelID, families)
	rel2 := make([]kb.RelID, families)
	for f := 0; f < families; f++ {
		rel1[f] = k1.AddRel(fmt.Sprintf("links%d", f))
		rel2[f] = k2.AddRel(fmt.Sprintf("connected%d", f))
	}

	var gold []pair.Pair
	addPair := func(base string, perturb bool) (kb.EntityID, kb.EntityID) {
		u1 := k1.AddEntity("a:" + base)
		u2 := k2.AddEntity("b:" + base)
		l2 := base
		// Two thirds of the member labels are perturbed: the initial match
		// set stays small (hubs plus a third of the members), so the
		// consistency estimates genuinely move as the crowd confirms
		// matches and re-estimation does real per-loop work.
		if perturb && rng.Intn(3) != 0 {
			l2 = base + " jr"
		}
		k1.SetLabel(u1, base)
		k2.SetLabel(u2, l2)
		k1.AddAttrTriple(u1, name1, base)
		k2.AddAttrTriple(u2, name2, l2)
		gold = append(gold, pair.Pair{U1: u1, U2: u2})
		return u1, u2
	}

	for c := 0; c < clusters; c++ {
		// Sizes sweep 2× down to ½× the mean, largest first: benefit-greedy
		// selection then works through clusters in roughly shard order, the
		// locality the weight-balanced contiguous shard fill preserves.
		size := meanSize/2 + (2*meanSize-meanSize/2)*(clusters-c)/clusters
		if size < 2 {
			size = 2
		}
		// Families are contiguous bands of clusters, mirroring how schema
		// families cluster in real KBs (type-segregated subgraphs): the
		// weight-balanced contiguous shard fill then aligns shards with
		// families, so a batch resolving one band leaves the other bands'
		// consistency estimates — and their shards — untouched.
		fam := c * families / clusters
		h1, h2 := addPair(fmt.Sprintf("hub%d", c), false)
		for m := 0; m < size; m++ {
			m1, m2 := addPair(fmt.Sprintf("node%dx%d", c, m), true)
			k1.AddRelTriple(h1, rel1[fam], m1)
			// Real KBs carry dangling relations: ~15% of the K2 edges are
			// missing, so relationship consistency is genuinely partial and
			// its estimates keep moving as confirmations accumulate —
			// re-estimation does real rebuild work every loop.
			if rng.Intn(7) == 0 {
				continue
			}
			k2.AddRelTriple(h2, rel2[fam], m2)
			if m > 0 && m%3 == 0 {
				// Chain every third member to its predecessor so clusters
				// are not pure stars and propagation has depth to cover.
				p1 := k1.Entity(fmt.Sprintf("a:node%dx%d", c, m-1))
				p2 := k2.Entity(fmt.Sprintf("b:node%dx%d", c, m-1))
				k1.AddRelTriple(m1, rel1[fam], p1)
				k2.AddRelTriple(m2, rel2[fam], p2)
			}
		}
		addPair(fmt.Sprintf("lone%d", c), false)
	}
	return &Dataset{
		Name: fmt.Sprintf("clustered-%dx%d", clusters, meanSize),
		K1:   k1,
		K2:   k2,
		Gold: pair.NewGold(gold),
	}
}
