package datasets

import "repro/internal/kb"

// IMDBYAGO synthesizes the IMDB–YAGO profile: a movie KB (K1) against a
// general-purpose KB (K2) with a larger, mostly disjoint schema. Four
// attribute pairs genuinely correspond (the Table IV gold standard for
// I-Y); relationship vocabularies differ (actedIn/starring etc.); and
// roughly 28% of the true matches are isolated in the ER graph
// (Table VIII), exercising the random-forest fallback.
func IMDBYAGO(seed int64) *Dataset {
	b := newBuilder("imdb", "yago", seed)
	k1, k2 := b.k1, b.k2

	// K1 (IMDB) attributes.
	title1 := k1.AddAttr("title")
	year1 := k1.AddAttr("year")
	birth1 := k1.AddAttr("birth_date")
	dur1 := k1.AddAttr("duration")
	genre1 := k1.AddAttr("genre")
	lang1 := k1.AddAttr("language")
	for _, extra := range []string{"rating", "votes", "color", "aspect_ratio",
		"certificate", "sound_mix", "production_co", "budget"} {
		k1.AddAttr(extra)
	}
	// K2 (YAGO) attributes: the four gold correspondences plus many
	// YAGO-only ones.
	label2 := k2.AddAttr("rdfs_label")
	created2 := k2.AddAttr("was_created_on")
	born2 := k2.AddAttr("was_born_on")
	duration2 := k2.AddAttr("has_duration")
	for _, extra := range []string{"has_gloss", "has_wikipedia_url",
		"has_gender", "has_population", "has_motto", "has_height",
		"has_weight", "has_budget_y", "has_pages", "has_isbn", "has_latitude",
		"has_longitude", "has_area", "has_gdp", "has_inflation",
		"has_poverty", "has_unemployment", "has_revenue", "has_expenses",
		"has_currency", "has_tld", "has_calling_code", "has_capital",
		"has_official_language", "has_number_of_people", "graduated_from",
		"has_air_date", "has_imdb_y", "has_music_composer", "has_website",
		"has_family_name", "has_given_name"} {
		k2.AddAttr(extra)
	}

	attrGold := []AttrRef{
		{A1: "title", A2: "rdfs_label"},
		{A1: "year", A2: "was_created_on"},
		{A1: "birth_date", A2: "was_born_on"},
		{A1: "duration", A2: "has_duration"},
	}

	// Relationships.
	acted1 := k1.AddRel("acted_in")
	directed1 := k1.AddRel("directed")
	k1.AddRel("produced")
	k1.AddRel("wrote_for")
	acted2 := k2.AddRel("acted_in_y")
	directed2 := k2.AddRel("directed_y")
	born2r := k2.AddRel("was_born_in")
	k2.AddRel("is_located_in")
	k2.AddRel("is_married_to")

	type ent struct{ u1, u2 kb.EntityID }

	// Cities exist only in YAGO (so born_in edges never propagate
	// cross-KB, adding realistic one-sided structure).
	var cities []kb.EntityID
	for i := 0; i < 20; i++ {
		cities = append(cities, b.addOnly2(fid("city", i), b.pick(cityNames), "city"))
	}

	po := pairOpts{perturb: 0.3}

	// 110 matched directors.
	var directors []ent
	for i := 0; i < 110; i++ {
		label := b.uniquePersonName()
		u1, u2 := b.addPair(fid("dir", i), label, pairOpts{typ: "person", perturb: po.perturb})
		b.attrBoth(u1, u2, birth1, born2, b.date(1920, 1980), 0.75, 0.1)
		k2.AddAttrTriple(u2, label2, label)
		k1.AddAttrTriple(u1, title1, label)
		if b.rng.Float64() < 0.6 {
			k2.AddRelTriple(u2, born2r, cities[b.rng.Intn(len(cities))])
		}
		directors = append(directors, ent{u1, u2})
	}

	// 160 matched movies.
	var movies []ent
	for i := 0; i < 160; i++ {
		label := b.uniquePhrase(titleWords, 2+b.rng.Intn(2))
		u1, u2 := b.addPair(fid("mov", i), label, pairOpts{typ: "movie", perturb: po.perturb})
		yr := b.year(1950, 2015)
		b.attrBoth(u1, u2, title1, label2, label, 0.95, 0.1)
		b.attrBoth(u1, u2, year1, created2, yr, 0.85, 0.05)
		b.attrBoth(u1, u2, dur1, duration2, b.year(80, 200), 0.6, 0.1)
		k1.AddAttrTriple(u1, genre1, b.pick(genreNames))
		k1.AddAttrTriple(u1, lang1, b.pick(languageNames))
		m := ent{u1, u2}
		// ~72% of movies get cross-KB relationship structure; the rest
		// stay isolated (feeding Table VIII's 28.1%).
		if b.rng.Float64() < 0.72 {
			d := directors[b.rng.Intn(len(directors))]
			k1.AddRelTriple(m.u1, directed1, d.u1)
			k2.AddRelTriple(m.u2, directed2, d.u2)
		}
		movies = append(movies, m)
	}

	// 230 matched actors; ~70% get acted_in structure, 30% isolated.
	for i := 0; i < 230; i++ {
		label := b.uniquePersonName()
		u1, u2 := b.addPair(fid("act", i), label, pairOpts{typ: "person", perturb: po.perturb})
		b.attrBoth(u1, u2, birth1, born2, b.date(1930, 1995), 0.75, 0.1)
		k1.AddAttrTriple(u1, title1, label)
		k2.AddAttrTriple(u2, label2, label)
		if b.rng.Float64() < 0.7 {
			n := 1 + b.rng.Intn(3)
			for j := 0; j < n; j++ {
				m := movies[b.rng.Intn(len(movies))]
				k1.AddRelTriple(u1, acted1, m.u1)
				k2.AddRelTriple(u2, acted2, m.u2)
			}
		}
		if b.rng.Float64() < 0.5 {
			k2.AddRelTriple(u2, born2r, cities[b.rng.Intn(len(cities))])
		}
	}

	// IMDB-only movies (the 15.1M side is much larger than the overlap).
	for i := 0; i < 350; i++ {
		u := b.addOnly1(fid("imov", i), b.uniquePhrase(titleWords, 2+b.rng.Intn(2)), "movie")
		k1.AddAttrTriple(u, title1, k1.Label(u))
		k1.AddAttrTriple(u, year1, b.year(1930, 2015))
		if b.rng.Float64() < 0.6 {
			k1.AddRelTriple(u, directed1, directors[b.rng.Intn(len(directors))].u1)
		}
	}
	// YAGO-only entities.
	for i := 0; i < 150; i++ {
		u := b.addOnly2(fid("yent", i), b.uniquePersonName(), "person")
		k2.AddAttrTriple(u, label2, k2.Label(u))
		if b.rng.Float64() < 0.4 {
			k2.AddRelTriple(u, born2r, cities[b.rng.Intn(len(cities))])
		}
	}
	// Title homonyms: remakes and same-name movies are common on IMDB, so
	// a slice of matched movies gets an IMDB-only twin with the identical
	// title but an earlier year and another director. These distractors
	// are what make I-Y the hardest dataset for similarity-only methods.
	for i := 0; i < len(movies); i += 6 {
		u := b.addOnly1(fid("twin", i), k1.Label(movies[i].u1), "movie")
		k1.AddAttrTriple(u, title1, k1.Label(u))
		k1.AddAttrTriple(u, year1, b.year(1930, 1949))
		k1.AddRelTriple(u, directed1, directors[b.rng.Intn(len(directors))].u1)
	}

	return b.finish("I-Y", attrGold)
}
