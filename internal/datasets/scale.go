package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/kb"
	"repro/internal/pair"
)

// Scale generates a matching-structure stress dataset with n entities per
// KB, built so candidate generation stays near-linear in n: every entity
// label is three tokens — one serial token unique to its gold pair plus
// two drawn from a pool of ~n/50 filler words — so posting lists stay a
// few hundred entries long and a non-matching pair shares at most one
// token (Jaccard 1/5, under the 0.3 blocking threshold) except for rare
// filler collisions. It is the workload behind the 1M-entity Prepare
// benchmark; generation is allocation-lean and runs in seconds at n=1e6.
//
// Structure per gold pair: identical labels with probability 0.35 (these
// form Min), a perturbed two-of-three label otherwise (Jaccard 0.5, a
// candidate but not initial); ~30% of entities carry one or two
// attribute values; a sparse chain relation links consecutive entities.
// An extra n/10 entities per side match nothing.
func Scale(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	k1 := kb.New("scale1")
	k2 := kb.New("scale2")

	poolSize := n / 50
	if poolSize < 10 {
		poolSize = 10
	}
	pool := make([]string, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("w%d", i)
	}

	aName1 := k1.AddAttr("title")
	aYear1 := k1.AddAttr("year")
	aName2 := k2.AddAttr("label")
	aYear2 := k2.AddAttr("published")
	rel1 := k1.AddRel("next")
	rel2 := k2.AddRel("follows")

	gold := make([]pair.Pair, 0, n)
	for i := 0; i < n; i++ {
		serial := fmt.Sprintf("s%d", i)
		fa, fb := pool[rng.Intn(poolSize)], pool[rng.Intn(poolSize)]
		label := serial + " " + fa + " " + fb
		u1 := k1.AddEntity(fmt.Sprintf("scale1:e%d", i))
		u2 := k2.AddEntity(fmt.Sprintf("scale2:e%d", i))
		k1.SetLabel(u1, label)
		if rng.Float64() < 0.35 {
			k2.SetLabel(u2, label) // exact match → initial match set
		} else {
			// Two of three tokens survive: Jaccard 2/4 = 0.5, a candidate
			// above the 0.3 threshold but not an initial match.
			k2.SetLabel(u2, serial+" "+fa+" "+pool[rng.Intn(poolSize)])
		}
		gold = append(gold, pair.Pair{U1: u1, U2: u2})

		if rng.Float64() < 0.3 {
			val := fa + " " + fb + " story"
			k1.AddAttrTriple(u1, aName1, val)
			k2.AddAttrTriple(u2, aName2, val)
			if rng.Float64() < 0.5 {
				year := fmt.Sprintf("%d", 1900+rng.Intn(120))
				k1.AddAttrTriple(u1, aYear1, year)
				k2.AddAttrTriple(u2, aYear2, year)
			}
		}
		if i > 0 && rng.Float64() < 0.2 {
			k1.AddRelTriple(kb.EntityID(i-1), rel1, u1)
			k2.AddRelTriple(kb.EntityID(i-1), rel2, u2)
		}
	}

	// Unmatched tail: serial tokens no counterpart shares.
	extra := n / 10
	for i := 0; i < extra; i++ {
		u1 := k1.AddEntity(fmt.Sprintf("scale1:x%d", i))
		k1.SetLabel(u1, fmt.Sprintf("x1t%d %s %s", i, pool[rng.Intn(poolSize)], pool[rng.Intn(poolSize)]))
		u2 := k2.AddEntity(fmt.Sprintf("scale2:x%d", i))
		k2.SetLabel(u2, fmt.Sprintf("x2t%d %s %s", i, pool[rng.Intn(poolSize)], pool[rng.Intn(poolSize)]))
	}

	return &Dataset{
		Name: fmt.Sprintf("scale-%d", n),
		K1:   k1,
		K2:   k2,
		Gold: pair.NewGold(gold),
	}
}
