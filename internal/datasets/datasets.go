// Package datasets generates seeded synthetic stand-ins for the four
// benchmark datasets of the paper's evaluation (Table II): IIMB, DBLP–ACM
// (D-A), IMDB–YAGO (I-Y) and DBpedia–YAGO (D-Y). The real dumps are up to
// 15.1M entities; these generators reproduce each dataset's *structural
// profile* at laptop scale — schema heterogeneity, relationship density,
// label noise, unlabeled entities, isolated-pair fractions — so the
// relative behavior of all methods is preserved (see DESIGN.md §4).
package datasets

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/kb"
	"repro/internal/pair"
)

// AttrRef is a reference attribute match (by name), the gold standard of
// the attribute-matching experiment (Table IV).
type AttrRef struct {
	A1, A2 string
}

// Dataset bundles two KBs with their gold standard.
type Dataset struct {
	Name string
	K1   *kb.KB
	K2   *kb.KB
	Gold *pair.Gold
	// AttrGold lists the reference attribute matches (only populated for
	// I-Y and D-Y, as in the paper).
	AttrGold []AttrRef
}

// Names lists the fixed generator names accepted by ByName, in paper
// order plus the small "books" load-test dataset. ByName additionally
// accepts the parameterized "scale-<n>" form (e.g. "scale-1000000") for
// the Scale stress generator; it is not listed here because every listed
// name must build as-is.
func Names() []string { return []string{"iimb", "d-a", "i-y", "d-y", "books"} }

// ByName builds the named dataset with the given seed.
func ByName(name string, seed int64) (*Dataset, error) {
	switch name {
	case "books":
		return Books(seed), nil
	case "iimb", "IIMB":
		return IIMB(seed), nil
	case "d-a", "D-A", "dblp-acm":
		return DBLPACM(seed), nil
	case "i-y", "I-Y", "imdb-yago":
		return IMDBYAGO(seed), nil
	case "d-y", "D-Y", "dbpedia-yago":
		return DBpediaYAGO(seed), nil
	}
	if n, ok := strings.CutPrefix(name, "scale-"); ok {
		sz, err := strconv.Atoi(n)
		if err != nil || sz <= 0 {
			return nil, fmt.Errorf("datasets: bad scale size in %q (want scale-<n>, n > 0)", name)
		}
		return Scale(seed, sz), nil
	}
	return nil, fmt.Errorf("datasets: unknown dataset %q", name)
}

// All builds the four datasets in paper order.
func All(seed int64) []*Dataset {
	return []*Dataset{IIMB(seed), DBLPACM(seed), IMDBYAGO(seed), DBpediaYAGO(seed)}
}
