package datasets

import "repro/internal/kb"

// IIMB synthesizes the OAEI IIMB profile: a small benchmark of 365
// matched entity pairs with identical schemas on both sides (12
// attributes, 15 relationships), light value perturbation, and a
// movie-flavored type system (films, actors, directors, locations). Almost
// nothing is isolated (0.3% in Table VIII).
func IIMB(seed int64) *Dataset {
	b := newBuilder("iimb1", "iimb2", seed)
	k1, k2 := b.k1, b.k2

	// Identical attribute and relationship vocabularies on both sides.
	attrs := []string{
		"name", "birth_date", "gender", "budget", "duration", "release_year",
		"language", "country", "founded", "population", "genre", "article",
	}
	a1 := map[string]kb.AttrID{}
	a2 := map[string]kb.AttrID{}
	for _, a := range attrs {
		a1[a] = k1.AddAttr(a)
		a2[a] = k2.AddAttr(a)
	}
	rels := []string{
		"acted_in", "directed_by", "born_in", "located_in", "sequel_of",
		"married_to", "works_for", "created_by", "filmed_in", "set_in",
		"award_from", "produced_by", "written_by", "lives_in", "part_of",
	}
	r1 := map[string]kb.RelID{}
	r2 := map[string]kb.RelID{}
	for _, r := range rels {
		r1[r] = k1.AddRel(r)
		r2[r] = k2.AddRel(r)
	}

	type ent struct{ u1, u2 kb.EntityID }
	relBoth := func(s ent, rel string, o ent, pKeep2 float64) {
		k1.AddRelTriple(s.u1, r1[rel], o.u1)
		if b.rng.Float64() < pKeep2 {
			k2.AddRelTriple(s.u2, r2[rel], o.u2)
		}
	}

	// 25 locations.
	var locations []ent
	for i := 0; i < 25; i++ {
		label := b.unique(func() string {
			return b.pick(cityNames) + " " + []string{"city", "county", "falls", "heights"}[b.rng.Intn(4)]
		})
		u1, u2 := b.addPair(fid("loc", i), label, pairOpts{typ: "location", perturb: 0.15})
		b.attrBoth(u1, u2, a1["name"], a2["name"], label, 0.95, 0.1)
		b.attrBoth(u1, u2, a1["population"], a2["population"], b.year(10000, 900000), 0.7, 0.2)
		b.attrBoth(u1, u2, a1["country"], a2["country"], b.pick(languageNames), 0.7, 0.1)
		locations = append(locations, ent{u1, u2})
	}

	// 60 directors.
	var directors []ent
	for i := 0; i < 60; i++ {
		label := b.uniquePersonName()
		u1, u2 := b.addPair(fid("dir", i), label, pairOpts{typ: "person", perturb: 0.25})
		b.attrBoth(u1, u2, a1["name"], a2["name"], label, 0.95, 0.1)
		b.attrBoth(u1, u2, a1["birth_date"], a2["birth_date"], b.date(1920, 1980), 0.8, 0.1)
		b.attrBoth(u1, u2, a1["gender"], a2["gender"], []string{"male", "female"}[b.rng.Intn(2)], 0.9, 0)
		d := ent{u1, u2}
		relBoth(d, "born_in", locations[b.rng.Intn(len(locations))], 1)
		directors = append(directors, d)
	}

	// 120 films, each directed by a director, set in a location.
	var films []ent
	for i := 0; i < 120; i++ {
		label := "the " + b.uniquePhrase(titleWords, 2)
		u1, u2 := b.addPair(fid("film", i), label, pairOpts{typ: "film", perturb: 0.25})
		b.attrBoth(u1, u2, a1["name"], a2["name"], label, 0.95, 0.1)
		b.attrBoth(u1, u2, a1["release_year"], a2["release_year"], b.year(1950, 2015), 0.85, 0.05)
		b.attrBoth(u1, u2, a1["duration"], a2["duration"], b.year(80, 200), 0.7, 0.1)
		b.attrBoth(u1, u2, a1["genre"], a2["genre"], b.pick(genreNames), 0.8, 0)
		b.attrBoth(u1, u2, a1["language"], a2["language"], b.pick(languageNames), 0.7, 0)
		f := ent{u1, u2}
		relBoth(f, "directed_by", directors[b.rng.Intn(len(directors))], 1)
		relBoth(f, "set_in", locations[b.rng.Intn(len(locations))], 0.9)
		films = append(films, f)
	}

	// 158 actors acting in 1–3 films; one isolated pair (~0.3%).
	for i := 0; i < 158; i++ {
		label := b.uniquePersonName()
		u1, u2 := b.addPair(fid("act", i), label, pairOpts{typ: "person", perturb: 0.25})
		b.attrBoth(u1, u2, a1["name"], a2["name"], label, 0.95, 0.1)
		b.attrBoth(u1, u2, a1["birth_date"], a2["birth_date"], b.date(1930, 1995), 0.8, 0.1)
		if i == 0 {
			continue // the isolated pair
		}
		a := ent{u1, u2}
		n := 1 + b.rng.Intn(3)
		for j := 0; j < n; j++ {
			relBoth(a, "acted_in", films[b.rng.Intn(len(films))], 1)
		}
		if b.rng.Float64() < 0.3 {
			relBoth(a, "lives_in", locations[b.rng.Intn(len(locations))], 1)
		}
	}

	// Film sequels connect films to films.
	for i := 1; i < len(films); i += 7 {
		relBoth(films[i], "sequel_of", films[i-1], 1)
	}

	return b.finish("IIMB", nil)
}
