package datasets

import "repro/internal/kb"

// DBpediaYAGO synthesizes the DBpedia–YAGO profile, the hardest dataset in
// the evaluation: highly heterogeneous schemas (684 vs 36 attributes in
// the original; here 40 vs 12 with 19 gold correspondences per Table IV),
// missing labels on ~8.4% of matched entities (depressing candidate pair
// completeness to ≈88%, Table V), weak literal overlap on several
// attribute pairs, and ~60% isolated matches (Table VIII) so the
// random-forest fallback carries much of the recall.
func DBpediaYAGO(seed int64) *Dataset {
	b := newBuilder("dbp", "yago", seed)
	k1, k2 := b.k1, b.k2

	// 19 corresponding attribute pairs across several entity types.
	corr := []struct{ n1, n2 string }{
		{"dbp_name", "y_label"},
		{"dbp_birth_date", "y_born_on"},
		{"dbp_death_date", "y_died_on"},
		{"dbp_founded", "y_created_on"},
		{"dbp_population", "y_population"},
		{"dbp_area", "y_area"},
		{"dbp_height", "y_height"},
		{"dbp_budget", "y_budget"},
		{"dbp_duration", "y_duration"},
		{"dbp_release", "y_released_on"},
		{"dbp_pages", "y_pages"},
		{"dbp_isbn", "y_isbn"},
		{"dbp_latitude", "y_latitude"},
		{"dbp_longitude", "y_longitude"},
		{"dbp_motto", "y_motto"},
		{"dbp_gender", "y_gender"},
		{"dbp_revenue", "y_revenue"},
		{"dbp_icd10", "y_icd10"},
		{"dbp_website", "y_website"},
	}
	a1 := map[string]kb.AttrID{}
	a2 := map[string]kb.AttrID{}
	var attrGold []AttrRef
	for _, c := range corr {
		a1[c.n1] = k1.AddAttr(c.n1)
		a2[c.n2] = k2.AddAttr(c.n2)
		attrGold = append(attrGold, AttrRef{A1: c.n1, A2: c.n2})
	}
	// DBpedia-only attribute noise (the 684-attribute long tail).
	for i := 0; i < 21; i++ {
		k1.AddAttr(fid("dbp_rare", i))
	}

	// Relationships.
	rels := []struct{ n1, n2 string }{
		{"dbp_birth_place", "y_was_born_in"},
		{"dbp_director", "y_directed"},
		{"dbp_starring", "y_acted_in"},
		{"dbp_located_in", "y_located_in"},
		{"dbp_employer", "y_works_at"},
	}
	r1 := map[string]kb.RelID{}
	r2 := map[string]kb.RelID{}
	for _, r := range rels {
		r1[r.n1] = k1.AddRel(r.n1)
		r2[r.n2] = k2.AddRel(r.n2)
	}
	for i := 0; i < 8; i++ {
		k1.AddRel(fid("dbp_rel", i)) // DBpedia-only relations
	}

	type ent struct{ u1, u2 kb.EntityID }
	po := pairOpts{perturb: 0.3, dropLabel2: 0.084}

	name := func(u1, u2 kb.EntityID, label string) {
		b.attrBoth(u1, u2, a1["dbp_name"], a2["y_label"], label, 0.9, 0.15)
	}

	// 60 matched cities — the connected backbone.
	var cities []ent
	for i := 0; i < 60; i++ {
		label := b.unique(func() string { return b.pick(cityNames) + " " + b.pick(orgWords) })
		u1, u2 := b.addPair(fid("city", i), label, pairOpts{typ: "city", perturb: 0.2, dropLabel2: po.dropLabel2})
		name(u1, u2, label)
		b.attrBoth(u1, u2, a1["dbp_population"], a2["y_population"], b.year(5000, 2000000), 0.6, 0.15)
		b.attrBoth(u1, u2, a1["dbp_latitude"], a2["y_latitude"], b.year(10, 80), 0.5, 0.1)
		b.attrBoth(u1, u2, a1["dbp_longitude"], a2["y_longitude"], b.year(10, 170), 0.5, 0.1)
		cities = append(cities, ent{u1, u2})
	}

	// 190 matched people: ~50% with cross-KB structure (birth place /
	// employer), the rest isolated.
	var people []ent
	for i := 0; i < 190; i++ {
		label := b.uniquePersonName()
		u1, u2 := b.addPair(fid("per", i), label, pairOpts{typ: "person", perturb: po.perturb, dropLabel2: po.dropLabel2})
		name(u1, u2, label)
		b.attrBoth(u1, u2, a1["dbp_birth_date"], a2["y_born_on"], b.date(1900, 1995), 0.7, 0.1)
		b.attrBoth(u1, u2, a1["dbp_gender"], a2["y_gender"], []string{"male", "female"}[b.rng.Intn(2)], 0.6, 0)
		if b.rng.Float64() < 0.5 {
			c := cities[b.rng.Intn(len(cities))]
			k1.AddRelTriple(u1, r1["dbp_birth_place"], c.u1)
			k2.AddRelTriple(u2, r2["y_was_born_in"], c.u2)
		}
		people = append(people, ent{u1, u2})
	}

	// 140 matched movies: ~35% connected via director/starring.
	for i := 0; i < 140; i++ {
		label := b.uniquePhrase(titleWords, 2+b.rng.Intn(2))
		u1, u2 := b.addPair(fid("mov", i), label, pairOpts{typ: "movie", perturb: po.perturb, dropLabel2: po.dropLabel2})
		name(u1, u2, label)
		b.attrBoth(u1, u2, a1["dbp_release"], a2["y_released_on"], b.year(1950, 2015), 0.7, 0.1)
		b.attrBoth(u1, u2, a1["dbp_duration"], a2["y_duration"], b.year(80, 200), 0.5, 0.1)
		if b.rng.Float64() < 0.35 {
			p := people[b.rng.Intn(len(people))]
			k1.AddRelTriple(u1, r1["dbp_director"], p.u1)
			k2.AddRelTriple(u2, r2["y_directed"], p.u2)
			q := people[b.rng.Intn(len(people))]
			k1.AddRelTriple(u1, r1["dbp_starring"], q.u1)
			k2.AddRelTriple(u2, r2["y_acted_in"], q.u2)
		}
	}

	// 110 matched organizations: ~30% located in cities cross-KB.
	for i := 0; i < 110; i++ {
		label := b.unique(func() string {
			return b.pick(orgWords) + " " + b.pick(orgWords) + " " + []string{"institute", "corporation", "university", "society"}[b.rng.Intn(4)]
		})
		u1, u2 := b.addPair(fid("org", i), label, pairOpts{typ: "organization", perturb: po.perturb, dropLabel2: po.dropLabel2})
		name(u1, u2, label)
		b.attrBoth(u1, u2, a1["dbp_founded"], a2["y_created_on"], b.year(1800, 2000), 0.6, 0.1)
		b.attrBoth(u1, u2, a1["dbp_revenue"], a2["y_revenue"], b.year(1000, 900000), 0.4, 0.2)
		if b.rng.Float64() < 0.3 {
			c := cities[b.rng.Intn(len(cities))]
			k1.AddRelTriple(u1, r1["dbp_located_in"], c.u1)
			k2.AddRelTriple(u2, r2["y_located_in"], c.u2)
		}
	}

	// 100 matched diseases: fully isolated; the icd10 values disagree in
	// format (the paper's G44.847 vs G-50.0 example), so this attribute
	// match is hard to find.
	for i := 0; i < 100; i++ {
		label := b.unique(func() string { return b.pick(diseaseWords) + " " + b.pick(diseaseWords) })
		u1, u2 := b.addPair(fid("dis", i), label, pairOpts{typ: "disease", perturb: 0.25, dropLabel2: po.dropLabel2})
		name(u1, u2, label)
		code := "g" + b.year(10, 99)
		k1.AddAttrTriple(u1, a1["dbp_icd10"], code+"."+b.year(100, 999))
		k2.AddAttrTriple(u2, a2["y_icd10"], "g-"+b.year(10, 99)+".0")
	}

	// DBpedia-only and YAGO-only surplus entities.
	for i := 0; i < 250; i++ {
		u := b.addOnly1(fid("dent", i), b.uniquePersonName(), "person")
		k1.AddAttrTriple(u, a1["dbp_name"], k1.Label(u))
		if b.rng.Float64() < 0.4 {
			k1.AddRelTriple(u, r1["dbp_birth_place"], cities[b.rng.Intn(len(cities))].u1)
		}
	}
	for i := 0; i < 220; i++ {
		u := b.addOnly2(fid("yent", i), b.uniquePhrase(titleWords, 2), "movie")
		k2.AddAttrTriple(u, a2["y_label"], k2.Label(u))
	}

	return b.finish("D-Y", attrGold)
}
