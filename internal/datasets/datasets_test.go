package datasets

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

func TestAllDatasetsGenerate(t *testing.T) {
	for _, ds := range All(1) {
		if ds.K1.NumEntities() == 0 || ds.K2.NumEntities() == 0 {
			t.Errorf("%s: empty KB", ds.Name)
		}
		if ds.Gold.Size() == 0 {
			t.Errorf("%s: empty gold standard", ds.Name)
		}
		// Every gold match must reference valid entities.
		for _, m := range ds.Gold.Matches() {
			if int(m.U1) >= ds.K1.NumEntities() || int(m.U2) >= ds.K2.NumEntities() {
				t.Fatalf("%s: gold match %v out of range", ds.Name, m)
			}
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a := IIMB(7)
	b := IIMB(7)
	if a.K1.NumEntities() != b.K1.NumEntities() ||
		a.K1.NumAttrTriples() != b.K1.NumAttrTriples() ||
		a.K2.NumRelTriples() != b.K2.NumRelTriples() ||
		a.Gold.Size() != b.Gold.Size() {
		t.Error("same seed produced different IIMB datasets")
	}
	c := IIMB(8)
	if a.K2.NumAttrTriples() == c.K2.NumAttrTriples() && a.K2.NumRelTriples() == c.K2.NumRelTriples() {
		t.Error("different seeds produced identical perturbations (suspicious)")
	}
}

func TestIIMBProfile(t *testing.T) {
	ds := IIMB(1)
	if got := ds.Gold.Size(); got != 363 {
		// 25 + 60 + 120 + 158 = 363 matched pairs (the original has 365).
		t.Errorf("IIMB gold size = %d, want 363", got)
	}
	if ds.K1.NumAttrs() != 12 || ds.K2.NumAttrs() != 12 {
		t.Errorf("IIMB attrs = %d/%d, want 12/12", ds.K1.NumAttrs(), ds.K2.NumAttrs())
	}
	if ds.K1.NumRels() != 15 || ds.K2.NumRels() != 15 {
		t.Errorf("IIMB rels = %d/%d, want 15/15", ds.K1.NumRels(), ds.K2.NumRels())
	}
	assertIsolatedFraction(t, ds, 0.0, 0.05)
}

func TestDBLPACMProfile(t *testing.T) {
	ds := DBLPACM(1)
	if ds.K1.NumAttrs() != 3 || ds.K2.NumAttrs() != 3 {
		t.Errorf("D-A attrs = %d/%d, want 3/3", ds.K1.NumAttrs(), ds.K2.NumAttrs())
	}
	if ds.K1.NumRels() != 1 || ds.K2.NumRels() != 1 {
		t.Errorf("D-A rels = %d/%d, want 1/1", ds.K1.NumRels(), ds.K2.NumRels())
	}
	// K2 is several times larger than K1.
	if ds.K2.NumEntities() < 2*ds.K1.NumEntities() {
		t.Errorf("ACM side should dwarf DBLP side: %d vs %d",
			ds.K2.NumEntities(), ds.K1.NumEntities())
	}
	assertIsolatedFraction(t, ds, 0.0, 0.35)
}

func TestIMDBYAGOProfile(t *testing.T) {
	ds := IMDBYAGO(1)
	if len(ds.AttrGold) != 4 {
		t.Errorf("I-Y attribute gold = %d, want 4", len(ds.AttrGold))
	}
	// YAGO side has far more attributes than correspond.
	if ds.K2.NumAttrs() <= ds.K1.NumAttrs() {
		t.Errorf("YAGO attrs (%d) should exceed IMDB attrs (%d)",
			ds.K2.NumAttrs(), ds.K1.NumAttrs())
	}
	assertIsolatedFraction(t, ds, 0.12, 0.45)
}

func TestDBpediaYAGOProfile(t *testing.T) {
	ds := DBpediaYAGO(1)
	if len(ds.AttrGold) != 19 {
		t.Errorf("D-Y attribute gold = %d, want 19", len(ds.AttrGold))
	}
	if ds.K1.NumAttrs() != 40 {
		t.Errorf("D-Y K1 attrs = %d, want 40", ds.K1.NumAttrs())
	}
	// Missing labels: some matched K2 entities must be unlabeled.
	unlabeled := 0
	for _, m := range ds.Gold.Matches() {
		if ds.K2.Label(m.U2) == "" {
			unlabeled++
		}
	}
	frac := float64(unlabeled) / float64(ds.Gold.Size())
	if frac < 0.03 || frac > 0.16 {
		t.Errorf("unlabeled matched fraction = %v, want ≈ 0.084", frac)
	}
	assertIsolatedFraction(t, ds, 0.45, 0.8)
}

// assertIsolatedFraction checks the share of gold matches with no
// cross-KB relationship structure on at least one side.
func assertIsolatedFraction(t *testing.T, ds *Dataset, lo, hi float64) {
	t.Helper()
	isolated := 0
	for _, m := range ds.Gold.Matches() {
		if !ds.K1.HasRelTriples(m.U1) || !ds.K2.HasRelTriples(m.U2) {
			isolated++
		}
	}
	frac := float64(isolated) / float64(ds.Gold.Size())
	if frac < lo || frac > hi {
		t.Errorf("%s: isolated fraction = %v, want in [%v, %v]", ds.Name, frac, lo, hi)
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		ds, err := ByName(n, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if ds == nil || ds.Gold.Size() == 0 {
			t.Errorf("ByName(%q) returned empty dataset", n)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestGoldIsOneToOne(t *testing.T) {
	// The generators build 1:1 gold standards (required by the pipeline's
	// competitor resolution).
	for _, ds := range All(3) {
		seen1 := map[kb.EntityID]bool{}
		seen2 := map[kb.EntityID]bool{}
		for _, m := range ds.Gold.Matches() {
			if seen1[m.U1] || seen2[m.U2] {
				t.Fatalf("%s: gold is not 1:1 at %v", ds.Name, m)
			}
			seen1[m.U1] = true
			seen2[m.U2] = true
		}
	}
}

func TestPerturbationKeepsMostLabelsBlockable(t *testing.T) {
	// The blocking threshold is 0.3; most perturbed labels must stay
	// findable or the dataset would be impossible for every method.
	ds := IIMB(2)
	var matches []pair.Pair
	for _, m := range ds.Gold.Matches() {
		matches = append(matches, m)
	}
	blockable := 0
	for _, m := range matches {
		if ds.K1.Label(m.U1) != "" && ds.K2.Label(m.U2) != "" {
			blockable++
		}
	}
	if float64(blockable)/float64(len(matches)) < 0.95 {
		t.Errorf("too many unlabeled IIMB matches")
	}
}
