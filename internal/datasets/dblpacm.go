package datasets

import "repro/internal/kb"

// DBLPACM synthesizes the DBLP–ACM profile: publications and authors with
// exactly three attributes (title, year, venue) and a single authorship
// relationship, K2 several times larger than K1 (the paper's 2.61K vs
// 64.3K, here ~350 vs ~1400). The ER graph decomposes into many small
// star-shaped components (one per publication), which is why Remp's
// advantage over POWER is smallest here (Table III) and almost nothing is
// isolated (0.4%).
func DBLPACM(seed int64) *Dataset {
	b := newBuilder("dblp", "acm", seed)
	k1, k2 := b.k1, b.k2

	title1, title2 := k1.AddAttr("title"), k2.AddAttr("title")
	year1, year2 := k1.AddAttr("year"), k2.AddAttr("year")
	venue1, venue2 := k1.AddAttr("venue"), k2.AddAttr("venue")
	wrote1, wrote2 := k1.AddRel("written_by"), k2.AddRel("written_by")

	// A pool of authors; a fraction appears in both KBs.
	type author struct {
		u1, u2 kb.EntityID
		shared bool
	}
	var authors []author
	for i := 0; i < 260; i++ {
		label := b.uniquePersonName()
		if b.rng.Float64() < 0.75 {
			// Shared author; ACM often abbreviates first names.
			u1, u2 := b.addPair(fid("auth", i), label, pairOpts{typ: "author", perturb: 0.5})
			authors = append(authors, author{u1: u1, u2: u2, shared: true})
		} else {
			u1 := b.addOnly1(fid("auth", i), label, "author")
			authors = append(authors, author{u1: u1, shared: false})
		}
	}

	// 110 shared publications (DBLP ⊂ ACM here), written by 1–4 authors.
	// Authorship is assigned so every author appears on at least one
	// publication — on the real D-A authors are split out of publication
	// author fields, so none is isolated (0.4% in Table VIII).
	type pub struct{ u1, u2 kb.EntityID }
	var pubs []pub
	for i := 0; i < 110; i++ {
		label := b.uniquePhrase(topicWords, 4+b.rng.Intn(4))
		u1, u2 := b.addPair(fid("pub", i), label, pairOpts{typ: "publication", perturb: 0.35})
		year := b.year(1995, 2015)
		venue := b.pick(venueNames)
		b.attrBoth(u1, u2, title1, title2, label, 0.98, 0.3)
		b.attrBoth(u1, u2, year1, year2, year, 0.92, 0.05)
		b.attrBoth(u1, u2, venue1, venue2, venue, 0.85, 0.1)
		pubs = append(pubs, pub{u1, u2})
	}
	writtenBy := func(p pub, a author) {
		k1.AddRelTriple(p.u1, wrote1, a.u1)
		if a.shared {
			k2.AddRelTriple(p.u2, wrote2, a.u2)
		}
	}
	// Round-robin guarantees coverage; extra co-authors are random.
	for i, a := range authors {
		writtenBy(pubs[i%len(pubs)], a)
	}
	for _, p := range pubs {
		extra := b.rng.Intn(3)
		for j := 0; j < extra; j++ {
			writtenBy(p, authors[b.rng.Intn(len(authors))])
		}
	}

	// ACM-only publications with ACM-only authors (the K2 surplus).
	var acmAuthors []kb.EntityID
	for i := 0; i < 500; i++ {
		u := b.addOnly2(fid("acmauth", i), b.uniquePersonName(), "author")
		acmAuthors = append(acmAuthors, u)
	}
	for i := 0; i < 450; i++ {
		u := b.addOnly2(fid("acmpub", i), b.uniquePhrase(topicWords, 4+b.rng.Intn(4)), "publication")
		k2.AddAttrTriple(u, title2, k2.Label(u))
		k2.AddAttrTriple(u, year2, b.year(1990, 2015))
		k2.AddAttrTriple(u, venue2, b.pick(venueNames))
		n := 1 + b.rng.Intn(4)
		for j := 0; j < n; j++ {
			k2.AddRelTriple(u, wrote2, acmAuthors[b.rng.Intn(len(acmAuthors))])
		}
	}

	return b.finish("D-A", nil)
}
