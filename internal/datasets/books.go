package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/kb"
	"repro/internal/pair"
)

// Books generates the small library–catalog dataset: authors linked to
// their books in two vocabularies, plus an unlinked editor per cluster
// so the isolated-pair machinery has work. At ~60 entities per side it
// resolves in a handful of human–machine loops, which makes it the
// dataset of choice for the load-generation harness and smoke tests —
// many concurrent sessions stay cheap while every pipeline stage still
// runs.
func Books(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	k1 := kb.New("library")
	k2 := kb.New("catalog")
	name1, name2 := k1.AddAttr("name"), k2.AddAttr("label")
	wrote1, wrote2 := k1.AddRel("wrote"), k2.AddRel("authorOf")

	var gold []pair.Pair
	add := func(base string, perturb bool) (kb.EntityID, kb.EntityID) {
		u1 := k1.AddEntity("lib:" + base)
		u2 := k2.AddEntity("cat:" + base)
		l2 := base
		if perturb && rng.Intn(3) == 0 {
			l2 = base + " (reissue)"
		}
		k1.SetLabel(u1, base)
		k2.SetLabel(u2, l2)
		k1.AddAttrTriple(u1, name1, base)
		k2.AddAttrTriple(u2, name2, l2)
		gold = append(gold, pair.Pair{U1: u1, U2: u2})
		return u1, u2
	}
	const clusters = 15
	for i := 0; i < clusters; i++ {
		a1, a2 := add(fmt.Sprintf("author %d", i), false)
		for b := 0; b < 2; b++ {
			b1, b2 := add(fmt.Sprintf("book %d.%d", i, b), true)
			k1.AddRelTriple(a1, wrote1, b1)
			k2.AddRelTriple(a2, wrote2, b2)
		}
		add(fmt.Sprintf("editor %d", i), false)
	}
	return &Dataset{Name: "books", K1: k1, K2: k2, Gold: pair.NewGold(gold)}
}
