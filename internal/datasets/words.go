package datasets

// Deterministic word pools used to synthesize labels. Kept intentionally
// small and distinctive so that token-based blocking behaves like it does
// on the real datasets: same-object labels overlap heavily, different
// objects overlap rarely but not never.

var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "chris",
	"nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
	"mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
	"emily", "andrew", "donna", "joshua", "michelle",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
	"wright", "scott", "torres", "nguyen", "hill", "flores",
}

var titleWords = []string{
	"shadow", "river", "night", "crimson", "garden", "winter", "echo",
	"silent", "golden", "storm", "broken", "hidden", "burning", "frozen",
	"distant", "forgotten", "endless", "savage", "gentle", "iron",
	"velvet", "hollow", "scarlet", "amber", "obsidian", "radiant",
	"wandering", "fallen", "rising", "last", "first", "lost", "final",
	"secret", "stolen", "sacred", "wild", "quiet", "bright", "dark",
}

var cityNames = []string{
	"springfield", "riverton", "lakewood", "fairview", "georgetown",
	"salem", "madison", "clinton", "arlington", "ashland", "dover",
	"hudson", "kingston", "milton", "newport", "oxford", "burlington",
	"bristol", "clayton", "dayton", "easton", "franklin", "greenville",
	"hamilton", "jackson", "lebanon", "manchester", "marion", "milford",
	"monroe",
}

var venueNames = []string{
	"sigmod", "vldb", "icde", "kdd", "cikm", "edbt", "icdm", "wsdm",
	"sigir", "www",
}

var topicWords = []string{
	"query", "optimization", "distributed", "database", "systems",
	"learning", "graph", "entity", "resolution", "index", "transaction",
	"stream", "parallel", "adaptive", "scalable", "efficient", "approximate",
	"incremental", "semantic", "knowledge", "crowdsourcing", "probabilistic",
	"join", "aggregation", "partitioning", "caching", "recovery", "storage",
	"mining", "retrieval",
}

var genreNames = []string{
	"drama", "comedy", "thriller", "romance", "action", "horror",
	"documentary", "western", "musical", "mystery",
}

var languageNames = []string{
	"english", "french", "german", "spanish", "italian", "japanese",
	"mandarin", "hindi", "portuguese", "russian",
}

var orgWords = []string{
	"national", "institute", "united", "global", "central", "pacific",
	"atlantic", "northern", "southern", "eastern", "western", "royal",
	"federal", "metropolitan", "continental",
}

var diseaseWords = []string{
	"chronic", "acute", "primary", "secondary", "idiopathic", "familial",
	"juvenile", "systemic", "focal", "diffuse", "neuralgia", "sclerosis",
	"fibrosis", "dystrophy", "syndrome",
}
