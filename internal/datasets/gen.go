package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/kb"
	"repro/internal/pair"
)

// builder accumulates a two-KB dataset with gold bookkeeping and shared
// perturbation machinery.
type builder struct {
	rng  *rand.Rand
	k1   *kb.KB
	k2   *kb.KB
	gold []pair.Pair
	used map[string]bool
}

func newBuilder(name1, name2 string, seed int64) *builder {
	return &builder{
		rng:  rand.New(rand.NewSource(seed)),
		k1:   kb.New(name1),
		k2:   kb.New(name2),
		used: map[string]bool{},
	}
}

// unique retries gen until it produces a label not yet used (labels in
// real KBs are near-unique); after a few collisions it appends a
// distinguishing numeric token, as real data does ("john smith ii").
func (b *builder) unique(gen func() string) string {
	for try := 0; try < 6; try++ {
		l := gen()
		if !b.used[l] {
			b.used[l] = true
			return l
		}
	}
	for i := 2; ; i++ {
		l := fmt.Sprintf("%s %d", gen(), i)
		if !b.used[l] {
			b.used[l] = true
			return l
		}
	}
}

// uniquePersonName returns an unused "first last" (or "first middle last")
// name.
func (b *builder) uniquePersonName() string {
	return b.unique(func() string {
		if b.rng.Intn(2) == 0 {
			return b.pick(firstNames) + " " + b.pick(lastNames) + " " + b.pick(lastNames)
		}
		return b.personName()
	})
}

// uniquePhrase returns an unused phrase of n words from pool.
func (b *builder) uniquePhrase(pool []string, n int) string {
	return b.unique(func() string { return b.phrase(pool, n) })
}

// pairOpts controls how a matched entity pair is materialized.
type pairOpts struct {
	typ string
	// perturb probabilistically distorts the K2 label (token swap/append,
	// abbreviation) while staying above the blocking threshold most of the
	// time.
	perturb float64
	// dropLabel2 removes the K2 label entirely with this probability (the
	// unlabeled entities of D-Y).
	dropLabel2 float64
}

// addPair creates a matched entity pair with the given label and options,
// records the gold match, and returns both IDs.
func (b *builder) addPair(name, label string, o pairOpts) (kb.EntityID, kb.EntityID) {
	u1 := b.k1.AddEntity(b.k1.Name() + ":" + name)
	u2 := b.k2.AddEntity(b.k2.Name() + ":" + name)
	b.k1.SetLabel(u1, label)
	l2 := label
	if o.perturb > 0 && b.rng.Float64() < o.perturb {
		l2 = b.perturbLabel(label)
	}
	if o.dropLabel2 > 0 && b.rng.Float64() < o.dropLabel2 {
		l2 = ""
	}
	b.k2.SetLabel(u2, l2)
	if o.typ != "" {
		b.k1.SetType(u1, o.typ)
		b.k2.SetType(u2, o.typ)
	}
	b.gold = append(b.gold, pair.Pair{U1: u1, U2: u2})
	return u1, u2
}

// addOnly1 creates a K1-only entity (no counterpart).
func (b *builder) addOnly1(name, label, typ string) kb.EntityID {
	u := b.k1.AddEntity(b.k1.Name() + ":" + name)
	b.k1.SetLabel(u, label)
	b.k1.SetType(u, typ)
	return u
}

// addOnly2 creates a K2-only entity.
func (b *builder) addOnly2(name, label, typ string) kb.EntityID {
	u := b.k2.AddEntity(b.k2.Name() + ":" + name)
	b.k2.SetLabel(u, label)
	b.k2.SetType(u, typ)
	return u
}

// perturbLabel applies one of several realistic distortions: dropping a
// token, appending a disambiguator, abbreviating the first token, or a
// one-character typo.
func (b *builder) perturbLabel(label string) string {
	toks := strings.Fields(label)
	if len(toks) == 0 {
		return label
	}
	switch b.rng.Intn(4) {
	case 0: // drop one token (if that leaves something)
		if len(toks) > 2 {
			i := b.rng.Intn(len(toks))
			toks = append(toks[:i], toks[i+1:]...)
		}
	case 1: // append a disambiguator
		toks = append(toks, []string{"jr", "ii", "the"}[b.rng.Intn(3)])
	case 2: // abbreviate the first token ("john" → "j")
		if len(toks[0]) > 2 {
			toks[0] = toks[0][:1]
		}
	case 3: // one-character typo in the longest token
		li := 0
		for i, t := range toks {
			if len(t) > len(toks[li]) {
				li = i
			}
		}
		t := []byte(toks[li])
		if len(t) > 3 {
			t[1+b.rng.Intn(len(t)-2)] = byte('a' + b.rng.Intn(26))
			toks[li] = string(t)
		}
	}
	return strings.Join(toks, " ")
}

// pick returns a random element of pool.
func (b *builder) pick(pool []string) string { return pool[b.rng.Intn(len(pool))] }

// personName composes "first last" names; the pools give ~1600 distinct
// combinations.
func (b *builder) personName() string {
	return b.pick(firstNames) + " " + b.pick(lastNames)
}

// phrase joins n distinct words from pool.
func (b *builder) phrase(pool []string, n int) string {
	seen := map[string]bool{}
	var toks []string
	for len(toks) < n {
		w := b.pick(pool)
		if !seen[w] {
			seen[w] = true
			toks = append(toks, w)
		}
	}
	return strings.Join(toks, " ")
}

// year returns a year string in [lo, hi].
func (b *builder) year(lo, hi int) string {
	return fmt.Sprintf("%d", lo+b.rng.Intn(hi-lo+1))
}

// date returns a YYYY-MM-DD string.
func (b *builder) date(loYear, hiYear int) string {
	return fmt.Sprintf("%d-%02d-%02d",
		loYear+b.rng.Intn(hiYear-loYear+1), 1+b.rng.Intn(12), 1+b.rng.Intn(28))
}

// attrBoth writes the same value to both sides of a matched pair, with
// probability pKeep2 of K2 keeping it (attribute sparsity) and pNoise2 of
// K2 receiving a perturbed value instead.
func (b *builder) attrBoth(u1, u2 kb.EntityID, a1 kb.AttrID, a2 kb.AttrID, val string, pKeep2, pNoise2 float64) {
	b.k1.AddAttrTriple(u1, a1, val)
	if b.rng.Float64() >= pKeep2 {
		return
	}
	v2 := val
	if b.rng.Float64() < pNoise2 {
		v2 = b.perturbLabel(val)
	}
	b.k2.AddAttrTriple(u2, a2, v2)
}

// fid formats a deterministic entity identifier.
func fid(prefix string, i int) string { return fmt.Sprintf("%s%04d", prefix, i) }

// finish assembles the Dataset.
func (b *builder) finish(name string, attrGold []AttrRef) *Dataset {
	return &Dataset{
		Name:     name,
		K1:       b.k1,
		K2:       b.k2,
		Gold:     pair.NewGold(b.gold),
		AttrGold: attrGold,
	}
}
