package datasets

import (
	"os"
	"testing"
	"time"

	"repro/internal/blocking"
)

// TestScaleShape pins the structural contract Scale documents: label
// shapes that keep posting lists short, the exact-label fraction that
// seeds the initial match set, and the unmatched tail.
func TestScaleShape(t *testing.T) {
	const n = 4_000
	ds := Scale(3, n)
	if got, want := ds.K1.NumEntities(), n+n/10; got != want {
		t.Fatalf("K1 entities = %d, want %d", got, want)
	}
	if got, want := ds.K2.NumEntities(), n+n/10; got != want {
		t.Fatalf("K2 entities = %d, want %d", got, want)
	}
	if got := ds.Gold.Size(); got != n {
		t.Fatalf("gold matches = %d, want %d", got, n)
	}

	res := blocking.Generate(ds.K1, ds.K2, blocking.Options{Threshold: 0.3})
	// Every gold pair shares its serial token plus at least one filler
	// (Jaccard ≥ 0.5), so candidates must cover gold completely.
	inCand := make(map[[2]uint32]bool, len(res.Candidates))
	for _, c := range res.Candidates {
		inCand[[2]uint32{uint32(c.Pair.U1), uint32(c.Pair.U2)}] = true
	}
	for _, g := range ds.Gold.Matches() {
		if !inCand[[2]uint32{uint32(g.U1), uint32(g.U2)}] {
			t.Fatalf("gold pair %v not in candidate set", g)
		}
	}
	// The exact-label fraction (0.35) must land in the initial match set;
	// allow generous sampling slack around the expectation.
	frac := float64(len(res.Initial)) / float64(n)
	if frac < 0.25 || frac > 0.45 {
		t.Fatalf("initial-match fraction = %.3f, want ≈ 0.35", frac)
	}
	// Candidate volume stays near-linear: the non-match structure admits
	// only rare filler collisions above the threshold.
	if len(res.Candidates) > 3*n {
		t.Fatalf("candidate set blew up: %d candidates for %d entities/KB", len(res.Candidates), n)
	}
}

// TestScaleMillionSmoke is the CI bench job's fast stand-in for the full
// 1M-entity Prepare benchmark recorded in BENCH_remp.json: generate the
// million-entity KBs and run indexed blocking over them once, bounding
// generator and index regressions without the multi-minute similarity
// stages. Gated behind REMP_SCALE_SMOKE so routine test runs skip it.
func TestScaleMillionSmoke(t *testing.T) {
	if os.Getenv("REMP_SCALE_SMOKE") == "" {
		t.Skip("set REMP_SCALE_SMOKE=1 to run the 1M-entity smoke")
	}
	const n = 1_000_000
	t0 := time.Now()
	ds := Scale(1, n)
	genDur := time.Since(t0)

	t0 = time.Now()
	res := blocking.Generate(ds.K1, ds.K2, blocking.Options{Threshold: 0.3})
	blockDur := time.Since(t0)
	t.Logf("generate %v, indexed blocking %v, %d candidates, %d initial",
		genDur, blockDur, len(res.Candidates), len(res.Initial))

	if len(res.Candidates) < n {
		t.Fatalf("candidates = %d, want ≥ %d (every gold pair is a candidate)", len(res.Candidates), n)
	}
	if len(res.Candidates) > 3*n {
		t.Fatalf("candidate set blew up: %d", len(res.Candidates))
	}
	if frac := float64(len(res.Initial)) / float64(n); frac < 0.25 || frac > 0.45 {
		t.Fatalf("initial-match fraction = %.3f, want ≈ 0.35", frac)
	}
}
