package obs

import (
	"math"
	"slices"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver-safe and allocation-free, so hot-path code increments
// unconditionally whether or not instrumentation is wired.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns an unregistered counter (registry constructors are
// the usual path; standalone counters serve tests and core hooks).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Nil-receiver-safe.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// atomicFloat accumulates float64 values via CAS on the bit pattern, so
// Histogram sums stay allocation- and lock-free.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at
// construction. Bucket i holds observations v with v <= bounds[i]
// (Prometheus `le` semantics); one implicit +Inf bucket catches the
// rest. Observe is allocation-free: a binary search over the pre-sorted
// bounds, one atomic bucket increment, one CAS-summed float add and one
// count increment. Nil-receiver-safe.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf excluded
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	count  atomic.Int64
}

// NewHistogram returns an unregistered histogram over the given upper
// bounds, which are sorted and deduplicated. Empty bounds give a
// +Inf-only histogram (count and sum remain useful).
func NewHistogram(bounds []float64) *Histogram {
	b := slices.Clone(bounds)
	slices.Sort(b)
	b = slices.Compact(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// SearchFloat64s finds the first bound >= v — exactly the smallest
	// bucket whose `le` admits v; off the end means +Inf.
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveNS records a duration given in nanoseconds, in seconds (the
// Prometheus base unit for time).
func (h *Histogram) ObserveNS(ns int64) {
	if h == nil {
		return
	}
	h.Observe(float64(ns) / 1e9)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// Buckets returns the bucket upper bounds and the cumulative counts up
// to and including each bound, plus the total (the +Inf count) last.
// The returned slices are fresh copies.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = slices.Clone(h.bounds)
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// DefBuckets are latency buckets in seconds spanning 25µs to 10s —
// wide enough for both a WAL fsync and a full sharded loop turn.
var DefBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — the standard exponential latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
