package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry owns a set of named metric families and renders them in the
// Prometheus text exposition format (WritePrometheus) or as a JSON-able
// snapshot (Snapshot). Registration happens at startup — constructors
// panic on duplicate or malformed names, like expvar — and the returned
// Counter/Gauge/Histogram pointers are then mutated lock-free from any
// goroutine. Families render in registration order; labeled children in
// label order.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

type familyKind string

const (
	kindCounter   familyKind = "counter"
	kindGauge     familyKind = "gauge"
	kindHistogram familyKind = "histogram"
)

// series is one child of a family: an optional label pair plus exactly
// one backing instrument.
type series struct {
	label string // rendered `name="value"`, or "" for the bare series
	c     *Counter
	g     *Gauge
	fn    func() float64 // callback gauges/counters
	h     *Histogram
}

type family struct {
	name, help string
	kind       familyKind
	label      string // label name for vec families, "" otherwise

	// vecFn, when set, makes the family fully dynamic: its children are
	// the callback's map entries, materialized afresh at every scrape.
	vecFn func() map[string]float64

	mu      sync.Mutex
	series  []*series
	byLabel map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register installs a new family, panicking on duplicates or names that
// are not legal Prometheus metric names.
func (r *Registry) register(name, help string, kind familyKind, label string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, kind: kind, label: label, byLabel: make(map[string]*series)}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (f *family) child(labelValue string, make func() *series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[labelValue]; ok {
		return s
	}
	s := make()
	if labelValue != "" {
		s.label = f.label + `="` + escapeLabel(labelValue) + `"`
	}
	f.series = append(f.series, s)
	f.byLabel[labelValue] = s
	return s
}

// Counter registers and returns a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "")
	return f.child("", func() *series { return &series{c: NewCounter()} }).c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for counts owned elsewhere (manager cache stats, expvar).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, "")
	f.child("", func() *series { return &series{fn: fn} })
}

// Gauge registers and returns a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "")
	return f.child("", func() *series { return &series{g: NewGauge()} }).g
}

// GaugeFunc registers a gauge computed from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, "")
	f.child("", func() *series { return &series{fn: fn} })
}

// Histogram registers and returns a histogram over the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.register(name, help, kindHistogram, "")
	return f.child("", func() *series { return &series{h: NewHistogram(bounds)} }).h
}

// CounterVecFunc registers a labeled counter family whose children are
// read from fn at scrape time: fn returns the current value per label
// value, for counts owned elsewhere (per-namespace manager stats).
// Children appear and vanish with the map's keys — rendered in sorted
// key order — and the HELP/TYPE header is emitted even when fn returns
// no children, so the family is always visible in the exposition.
func (r *Registry) CounterVecFunc(name, help, label string, fn func() map[string]float64) {
	if !validMetricName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	f := r.register(name, help, kindCounter, label)
	f.vecFn = fn
}

// CounterVec is a counter family keyed by one label. With resolves (or
// creates) a child; resolve children once at startup and keep the
// pointers — With locks and may allocate.
type CounterVec struct {
	f *family
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if !validMetricName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	return &CounterVec{f: r.register(name, help, kindCounter, label)}
}

// With returns the child counter for the label value.
func (v *CounterVec) With(value string) *Counter {
	return v.f.child(value, func() *series { return &series{c: NewCounter()} }).c
}

// HistogramVec is a histogram family keyed by one label; see CounterVec
// for the resolution contract.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers a labeled histogram family (nil bounds selects
// DefBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if !validMetricName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, label), bounds: bounds}
}

// With returns the child histogram for the label value.
func (v *HistogramVec) With(value string) *Histogram {
	return v.f.child(value, func() *series { return &series{h: NewHistogram(v.bounds)} }).h
}

// Names returns the registered family names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.fams))
	for i, f := range r.fams {
		out[i] = f.name
	}
	return out
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE pair per
// family, histogram children as cumulative `_bucket{le=...}` series
// plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.vecFn != nil {
		vals := f.vecFn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeSample(b, f.name, f.label+`="`+escapeLabel(k)+`"`, vals[k])
		}
		return
	}
	f.mu.Lock()
	children := make([]*series, len(f.series))
	copy(children, f.series)
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool { return children[i].label < children[j].label })
	for _, s := range children {
		switch {
		case s.h != nil:
			s.writeHistogram(b, f.name)
		case s.c != nil:
			writeSample(b, f.name, s.label, float64(s.c.Value()))
		case s.g != nil:
			writeSample(b, f.name, s.label, float64(s.g.Value()))
		case s.fn != nil:
			writeSample(b, f.name, s.label, s.fn())
		}
	}
}

func (s *series) writeHistogram(b *strings.Builder, name string) {
	bounds, cum := s.h.Buckets()
	for i, bound := range bounds {
		le := `le="` + formatFloat(bound) + `"`
		if s.label != "" {
			le = s.label + "," + le
		}
		writeSample(b, name+"_bucket", le, float64(cum[i]))
	}
	inf := `le="+Inf"`
	if s.label != "" {
		inf = s.label + "," + inf
	}
	writeSample(b, name+"_bucket", inf, float64(cum[len(cum)-1]))
	writeSample(b, name+"_sum", s.label, s.h.Sum())
	writeSample(b, name+"_count", s.label, float64(s.h.Count()))
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// Snapshot returns the registry's current values as a JSON-able map:
// scalar families map name to value (or to a {labelValue: value} map
// when labeled), histograms to {count, sum, buckets} with cumulative
// bucket counts keyed by formatted upper bound.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	out := make(map[string]any, len(fams))
	for _, f := range fams {
		out[f.name] = f.snapshot()
	}
	return out
}

func (f *family) snapshot() any {
	if f.vecFn != nil {
		vals := f.vecFn()
		byLabel := make(map[string]any, len(vals))
		for k, v := range vals {
			byLabel[k] = v
		}
		return byLabel
	}
	f.mu.Lock()
	children := make([]*series, len(f.series))
	copy(children, f.series)
	f.mu.Unlock()
	value := func(s *series) any {
		switch {
		case s.h != nil:
			bounds, cum := s.h.Buckets()
			buckets := make(map[string]int64, len(cum))
			for i, bound := range bounds {
				buckets[formatFloat(bound)] = cum[i]
			}
			buckets["+Inf"] = cum[len(cum)-1]
			return map[string]any{"count": s.h.Count(), "sum": s.h.Sum(), "buckets": buckets}
		case s.c != nil:
			return s.c.Value()
		case s.g != nil:
			return s.g.Value()
		case s.fn != nil:
			return s.fn()
		}
		return nil
	}
	if f.label == "" {
		if len(children) == 0 {
			return nil
		}
		return value(children[0])
	}
	byLabel := make(map[string]any, len(children))
	f.mu.Lock()
	for lv, s := range f.byLabel {
		byLabel[lv] = value(s)
	}
	f.mu.Unlock()
	return byLabel
}
