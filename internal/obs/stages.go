package obs

import "sync/atomic"

// Stage names one phase of the human–machine loop for per-stage timing.
type Stage int

// Loop stages, in pipeline order.
const (
	// StagePrepare is ER graph construction + propagation modeling
	// (core.Prepare), paid once per session.
	StagePrepare Stage = iota
	// StageBlock is Prepare's candidate-generation sub-stage: token
	// interning, inverted-index build and the Jaccard scan (§IV-B).
	StageBlock
	// StageSimilarity is Prepare's similarity sub-stage: attribute
	// matching over the initial matches, similarity-vector assembly and
	// partial-order pruning (§IV-C/D). Block and similarity spans nest
	// inside the enclosing prepare span.
	StageSimilarity
	// StageInfer is the loop top's propagation work: engine Sync
	// (incremental recompute or rebuild) plus candidate gathering.
	StageInfer
	// StageSelect is multiple-questions selection: benefit scoring,
	// ranked merge across shards and batch padding.
	StageSelect
	// StageApply is answer application: truth inference, match
	// confirmation, competitor detachment, prior damping.
	StageApply
	// StageReestimate is the batch tail's model refresh: hybrid monotone
	// inference plus consistency/probability re-estimation.
	StageReestimate

	numStages
)

// String returns the stage's metric label.
func (s Stage) String() string {
	switch s {
	case StagePrepare:
		return "prepare"
	case StageBlock:
		return "block"
	case StageSimilarity:
		return "similarity"
	case StageInfer:
		return "infer"
	case StageSelect:
		return "select"
	case StageApply:
		return "apply"
	case StageReestimate:
		return "reestimate"
	}
	return "unknown"
}

// Stages lists every loop stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// LoopTrace accumulates per-stage wall time through an injected Clock,
// so the deterministic loop code never reads the wall clock itself. It
// keeps atomic nanosecond totals and counts per stage (the shards
// experiment reads them via Totals) and optionally mirrors every span
// into an attached Histogram per stage (the server's
// remp_loop_stage_seconds series). All methods are nil-receiver-safe;
// a nil trace (or nil clock) makes Start/End free no-ops.
type LoopTrace struct {
	clock  Clock
	totals [numStages]atomic.Int64
	counts [numStages]atomic.Int64
	hists  [numStages]*Histogram
}

// NewLoopTrace returns a trace reading spans from clock.
func NewLoopTrace(clock Clock) *LoopTrace {
	return &LoopTrace{clock: clock}
}

// Attach mirrors stage spans into h (call before tracing starts).
func (t *LoopTrace) Attach(s Stage, h *Histogram) {
	if t == nil || s < 0 || s >= numStages {
		return
	}
	t.hists[s] = h
}

// Start returns the clock's current reading (0 on a nil trace).
func (t *LoopTrace) Start() int64 {
	if t == nil || t.clock == nil {
		return 0
	}
	return t.clock()
}

// End records one span for the stage, begun at a Start reading.
func (t *LoopTrace) End(s Stage, start int64) {
	if t == nil || t.clock == nil || s < 0 || s >= numStages {
		return
	}
	d := t.clock() - start
	if d < 0 {
		d = 0
	}
	t.totals[s].Add(d)
	t.counts[s].Add(1)
	t.hists[s].ObserveNS(d)
}

// TotalNS returns the accumulated nanoseconds of one stage.
func (t *LoopTrace) TotalNS(s Stage) int64 {
	if t == nil || s < 0 || s >= numStages {
		return 0
	}
	return t.totals[s].Load()
}

// Totals returns accumulated nanoseconds keyed by stage label, omitting
// stages that never ran.
func (t *LoopTrace) Totals() map[string]int64 {
	if t == nil {
		return nil
	}
	out := make(map[string]int64, numStages)
	for s := Stage(0); s < numStages; s++ {
		if n := t.counts[s].Load(); n > 0 {
			out[s.String()] = t.totals[s].Load()
		}
	}
	return out
}
