// Package obs is the repo's zero-dependency observability layer:
// allocation-free metrics (atomic counters, gauges, fixed-bucket
// histograms), a Prometheus-text-format/JSON registry, an injectable
// monotonic clock, and per-stage loop tracing. It is stdlib-only in the
// spirit of internal/lint/analysis — external modules are unavailable
// offline — and it is a strict dependency leaf: obs imports nothing
// from this module, so every package (including the deterministic
// pipeline packages) can carry its hooks.
//
// Two hard constraints shape the design, both enforced by remp-lint:
//
// Determinism. The pipeline packages (core, propagation, selection,
// partition, session) must stay byte-deterministic, so they never read
// the wall clock. All timing flows through an injected Clock: the
// non-deterministic boundary (internal/server, cmd, experiments)
// constructs one via WallClock and threads it in through LoopTrace /
// Pipeline; a deterministic package only ever calls the opaque
// function it was handed. time.Now lives in this package alone among
// the instrumented ones, and obs itself is outside the deterministic
// set.
//
// Hot paths. Functions annotated //remp:hotpath must stay
// allocation-free with instrumentation enabled. Every mutation on a
// Counter, Gauge or Histogram is a fixed number of atomic operations —
// no maps, no interface boxing, no append. Histogram.Observe does a
// branch-free binary search over pre-sorted bounds and a CAS loop on
// the float-bit sum; label lookups (CounterVec.With etc.) allocate and
// lock, so instrumented call sites resolve their children once at
// registration time and keep the pointers. All metric methods are
// nil-receiver-safe, so uninstrumented runs (tests, the synchronous
// Resolve path) pay a nil check and nothing else.
package obs
