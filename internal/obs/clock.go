package obs

import "time"

// Clock returns elapsed monotonic nanoseconds from an arbitrary fixed
// origin. It is the only timing primitive the deterministic pipeline
// packages are allowed to touch: they receive one pre-constructed (or
// nil, disabling timing) and never call time.Now themselves, so the
// remp-lint determinism analyzer keeps holding without suppressions.
type Clock func() int64

// WallClock returns a Clock over the process monotonic clock. Only
// non-deterministic packages (server, cmd, experiments) construct one.
func WallClock() Clock {
	start := time.Now()
	return func() int64 { return int64(time.Since(start)) }
}
