package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the `le` semantics at exact bucket
// bounds: an observation equal to a bound lands in that bound's bucket
// (le is inclusive), one epsilon above lands in the next, and anything
// beyond the last bound lands in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.0000001, 100} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if want := []float64{1, 2, 4}; len(bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	// cumulative: le=1 → {0.5, 1}; le=2 → +{1.0000001, 2}; le=4 → +{4};
	// +Inf → everything.
	want := []int64{2, 4, 5, 7}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d (cum %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.0000001+2+4+4.0000001+100; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

// TestHistogramUnsortedBoundsAndNS checks constructor normalization and
// the nanosecond helper.
func TestHistogramUnsortedBoundsAndNS(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.001, 0.01}) // unsorted + duplicate
	h.ObserveNS(1_000_000)                          // 1ms = 0.001s, on the first bound
	bounds, cum := h.Buckets()
	if len(bounds) != 2 || bounds[0] != 0.001 || bounds[1] != 0.01 {
		t.Fatalf("bounds = %v, want [0.001 0.01]", bounds)
	}
	if cum[0] != 1 || cum[2] != 1 {
		t.Errorf("cumulative = %v, want the 1ms span in the 0.001 bucket", cum)
	}
}

// TestNilSafety: every mutator must be a no-op on nil receivers so
// uninstrumented pipelines need no branches at call sites.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	var g *Gauge
	g.Set(3)
	g.Dec()
	var h *Histogram
	h.Observe(1)
	h.ObserveNS(1)
	var tr *LoopTrace
	tr.End(StageInfer, tr.Start())
	var p *Pipeline
	p.StageEnd(StageApply, p.StageStart())
	p.AddBatch()
	p.AddQuestion()
	p.EngineCounters().Recomputes.Inc()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.TotalNS(StageInfer) != 0 {
		t.Fatal("nil receivers must read as zero")
	}
}

// TestObserveAllocationFree verifies the hot-path contract: counter
// increments and histogram observations allocate nothing.
func TestObserveAllocationFree(t *testing.T) {
	c := NewCounter()
	h := NewHistogram(DefBuckets)
	tr := NewLoopTrace(WallClock())
	tr.Attach(StageInfer, h)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(0.003)
		tr.End(StageInfer, tr.Start())
	}); n != 0 {
		t.Fatalf("observe path allocates %v times per run, want 0", n)
	}
}

// promLine matches one exposition sample or comment line.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9eE.+-]+(e[+-]?[0-9]+)?)$`)

// TestWritePrometheusFormat renders one of each family kind and checks
// every line against the exposition grammar plus the histogram
// invariants (cumulative buckets, +Inf equals _count).
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ops_total", "operations").Add(3)
	r.Gauge("test_depth", "queue depth").Set(-2)
	r.GaugeFunc("test_uptime_seconds", "uptime", func() float64 { return 1.5 })
	cv := r.CounterVec("test_requests_total", "requests by route", "route")
	cv.With("create").Add(2)
	cv.With(`we"ird\`).Inc()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE test_ops_total counter\ntest_ops_total 3\n",
		"test_depth -2\n",
		"test_uptime_seconds 1.5\n",
		`test_requests_total{route="create"} 2`,
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition output missing %q:\n%s", want, text)
		}
	}
}

// TestRegistrationPanics pins the fail-fast contract.
func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	for name, f := range map[string]func(){
		"duplicate":    func() { r.Counter("dup_total", "") },
		"bad name":     func() { r.Counter("1leading_digit", "") },
		"empty name":   func() { r.Counter("", "") },
		"bad label":    func() { r.CounterVec("v_total", "", "bad-label") },
		"kind overlap": func() { r.Histogram("dup_total", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestSnapshotJSON checks the JSON view round-trips through encoding/json
// and carries cumulative buckets.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_ops_total", "").Add(7)
	h := r.Histogram("snap_lat_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	cv := r.CounterVec("snap_routed_total", "", "route")
	cv.With("a").Inc()
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back["snap_ops_total"].(float64) != 7 {
		t.Errorf("snap_ops_total = %v", back["snap_ops_total"])
	}
	hist := back["snap_lat_seconds"].(map[string]any)
	if hist["count"].(float64) != 2 {
		t.Errorf("histogram count = %v", hist["count"])
	}
	buckets := hist["buckets"].(map[string]any)
	if buckets["1"].(float64) != 1 || buckets["+Inf"].(float64) != 2 {
		t.Errorf("buckets = %v", buckets)
	}
	routed := back["snap_routed_total"].(map[string]any)
	if routed["a"].(float64) != 1 {
		t.Errorf("routed = %v", routed)
	}
}

// TestConcurrentObserve hammers one histogram and counter from many
// goroutines (run under -race in CI) and checks totals add up.
func TestConcurrentObserve(t *testing.T) {
	c := NewCounter()
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per || h.Sum() != 0.25*workers*per {
		t.Errorf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestLoopTraceTotals checks stage accounting through an injected fake
// clock — the exact shape the deterministic packages use.
func TestLoopTraceTotals(t *testing.T) {
	now := int64(0)
	tr := NewLoopTrace(func() int64 { return now })
	start := tr.Start()
	now = 250
	tr.End(StageInfer, start)
	start = tr.Start()
	now = 400
	tr.End(StageSelect, start)
	totals := tr.Totals()
	if totals["infer"] != 250 || totals["select"] != 150 {
		t.Errorf("totals = %v", totals)
	}
	if _, ok := totals["apply"]; ok {
		t.Error("apply never ran; Totals must omit it")
	}
	if tr.TotalNS(StageInfer) != 250 {
		t.Errorf("TotalNS(infer) = %d", tr.TotalNS(StageInfer))
	}
}
