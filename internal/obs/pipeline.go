package obs

// EngineCounters are the propagation engine's incremental-maintenance
// counters. The struct is carried by value with nil-safe *Counter
// fields, so an unwired engine (tests, the synchronous Resolve path)
// pays a nil check per event and nothing else — the counters are plain
// atomic increments, safe inside the allocation-free hot-path contract.
type EngineCounters struct {
	// Recomputes counts single-source Dijkstra runs (incremental and
	// rebuild alike, including the initial build).
	Recomputes *Counter
	// Invalidations counts ball-invalidation events: a DetachVertex or
	// weakened edge marking a source set dirty.
	Invalidations *Counter
	// Rebuilds counts whole-graph rebuilds (each folds the pending edge
	// overlay into the CSR — re-estimation resets and bulk fallbacks).
	Rebuilds *Counter
}

// Pipeline bundles every instrumentation hook threaded through the
// resolution pipeline: the per-stage LoopTrace plus the engine and loop
// counters. core.Config carries one (nil disables instrumentation
// entirely); the remp.Manager threads the same Pipeline into every
// session it prepares, so one server-wide set of series aggregates all
// sessions. All methods are nil-receiver-safe.
type Pipeline struct {
	// Trace times the loop stages; nil disables timing.
	Trace *LoopTrace
	// Engine counts propagation-engine events across all shards.
	Engine EngineCounters
	// Batches counts published question batches (loop turns).
	Batches *Counter
	// Questions counts answered questions applied to loops.
	Questions *Counter
}

// StageStart begins a stage span (0 on a nil pipeline or trace).
func (p *Pipeline) StageStart() int64 {
	if p == nil {
		return 0
	}
	return p.Trace.Start()
}

// StageEnd ends a stage span begun at a StageStart reading.
func (p *Pipeline) StageEnd(s Stage, start int64) {
	if p == nil {
		return
	}
	p.Trace.End(s, start)
}

// EngineCounters returns the engine counter set (zero value when nil).
func (p *Pipeline) EngineCounters() EngineCounters {
	if p == nil {
		return EngineCounters{}
	}
	return p.Engine
}

// AddBatch counts one published batch.
func (p *Pipeline) AddBatch() {
	if p == nil {
		return
	}
	p.Batches.Inc()
}

// AddQuestion counts one applied answer.
func (p *Pipeline) AddQuestion() {
	if p == nil {
		return
	}
	p.Questions.Inc()
}
