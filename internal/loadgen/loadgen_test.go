package loadgen

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/session"
)

// TestLoadgenOracleEquivalence drives concurrent sessions against an
// in-process server (no restarts) and requires every session's result
// to byte-match the synchronous oracle, across noisy-crowd configs.
func TestLoadgenOracleEquivalence(t *testing.T) {
	cases := []struct {
		name        string
		sessions    int
		workerError float64
		reorder     float64
	}{
		{"clean-crowd", 4, 0, 0},
		{"noisy-reordered", 6, 0.08, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := server.New(nil)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			report, err := Run(Config{
				BaseURL:     ts.URL,
				Sessions:    tc.sessions,
				Dataset:     "books",
				DatasetSeed: 7,
				Options:     server.OptionsDTO{Mu: 5, Seed: 7},
				WorkerError: tc.workerError,
				Reorder:     tc.reorder,
				Seed:        7,
				Deadline:    2 * time.Minute,
			})
			if err != nil {
				t.Fatal(err)
			}
			if report.Completed != tc.sessions {
				t.Fatalf("%d/%d sessions completed: %+v", report.Completed, tc.sessions, report.Outcomes)
			}
			if !report.ResultsMatch {
				t.Fatalf("results diverged from the oracle: %+v", report.Outcomes)
			}
			if report.Oracle.Matches == 0 {
				t.Fatal("oracle resolved nothing; the equivalence is vacuous")
			}
			if report.Answers == 0 {
				t.Fatal("no answers were posted")
			}
			// Every session creates, polls, answers and fetches a result,
			// so all four operations must carry latency percentiles.
			for _, op := range []string{"create", "batch", "answers", "result"} {
				ls, ok := report.Latency[op]
				if !ok || ls.Count == 0 {
					t.Errorf("no latency samples for %q: %+v", op, report.Latency)
				} else if ls.P50Ms <= 0 || ls.P99Ms < ls.P50Ms || ls.MaxMs < ls.P99Ms {
					t.Errorf("inconsistent %q percentiles: %+v", op, ls)
				}
			}
		})
	}
}

// TestHelperProcessServer is not a test: it is the remp-server process
// the kill/restart drill below spawns and SIGKILLs. It serves with a
// disk store until killed.
func TestHelperProcessServer(t *testing.T) {
	if os.Getenv("REMP_LOADGEN_HELPER") != "1" {
		t.Skip("helper process for TestLoadgenSurvivesServerKill")
	}
	store, err := session.NewDiskStore(os.Getenv("REMP_LOADGEN_DIR"))
	if err != nil {
		fmt.Println("helper:", err)
		os.Exit(2)
	}
	srv, _, err := server.NewServer(server.Config{Store: store})
	if err != nil {
		fmt.Println("helper recovery:", err)
	}
	if err := http.ListenAndServe(os.Getenv("REMP_LOADGEN_ADDR"), srv.Handler()); err != nil {
		fmt.Println("helper:", err)
		os.Exit(2)
	}
}

// startHelperServer spawns the helper remp-server process and waits for
// it to serve /healthz.
func startHelperServer(t *testing.T, addr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperProcessServer$", "-test.v")
	cmd.Env = append(os.Environ(),
		"REMP_LOADGEN_HELPER=1",
		"REMP_LOADGEN_ADDR="+addr,
		"REMP_LOADGEN_DIR="+dir,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("helper server at %s never became healthy: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestLoadgenSurvivesServerKill is the acceptance drill: concurrent
// sessions against a disk-store server that is SIGKILLed mid-run and
// restarted over the same data directory. Every session must complete
// with a result byte-identical to the synchronous oracle.
func TestLoadgenSurvivesServerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	sessions := 50
	if os.Getenv("CI") != "" {
		// Fifty race-instrumented pipelines are heavy for shared runners;
		// the drill is identical at smaller fan-out.
		sessions = 16
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	dir := filepath.Join(t.TempDir(), "store")

	srv := startHelperServer(t, addr, dir)
	killed := make(chan struct{})
	var killOnce atomic.Bool

	report := make(chan *Report, 1)
	errc := make(chan error, 1)
	go func() {
		rep, err := Run(Config{
			BaseURL:     "http://" + addr,
			Sessions:    sessions,
			Dataset:     "books",
			DatasetSeed: 3,
			Options:     server.OptionsDTO{Mu: 5, Seed: 3},
			WorkerError: 0.05,
			Reorder:     0.7,
			Seed:        3,
			MinLatency:  5 * time.Millisecond,
			MaxLatency:  25 * time.Millisecond,
			// The outage budget must cover the SIGKILL + restart below.
			RetryTimeout: time.Minute,
			Deadline:     5 * time.Minute,
			Progress: func(answers int64) {
				// Hard-kill the server once the run is demonstrably mid-flight.
				// The shared answer cache caps distinct crowd answers at the
				// oracle's question count (~20 on books), so trigger early.
				if answers >= 6 && killOnce.CompareAndSwap(false, true) {
					close(killed)
				}
			},
		})
		report <- rep
		errc <- err
	}()

	select {
	case <-killed:
	case <-time.After(3 * time.Minute):
		srv.Process.Kill()
		t.Fatal("load run never reached the kill threshold")
	}
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv.Wait() //nolint:errcheck // the helper was killed; its exit status is the signal
	t.Log("server killed mid-run; restarting over the same data dir")
	srv2 := startHelperServer(t, addr, dir)
	defer func() {
		srv2.Process.Kill()
		srv2.Wait() //nolint:errcheck
	}()

	rep := <-report
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if rep.Completed != sessions {
		t.Fatalf("%d/%d sessions completed after the kill: %+v", rep.Completed, sessions, rep.Outcomes)
	}
	if !rep.ResultsMatch {
		t.Fatalf("a session diverged from the synchronous oracle after recovery: %+v", rep.Outcomes)
	}
	if rep.Retries == 0 {
		t.Fatal("no transport retries recorded; the kill landed after the run finished and proved nothing")
	}
	t.Logf("completed %d sessions through a SIGKILL: %d answers, %d rejected duplicates, %d retries",
		rep.Completed, rep.Answers, rep.Rejected, rep.Retries)
}
