package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// readyLine is the prefix of the readiness line remp-worker prints to
// stdout; the remainder of the line is the bound address.
const readyLine = "remp-worker: listening on "

// ClusterConfig parameterizes a multi-process cluster drill: RunCluster
// spawns worker processes, stands up an in-process clustered server over
// them, runs the ordinary load run against it (same oracle, same
// byte-equality bar), and — optionally — SIGKILLs a worker mid-run to
// prove failover preserves the results.
type ClusterConfig struct {
	// Workers is the number of worker processes to spawn (default 3).
	Workers int
	// WorkerCmd builds the command for worker i. The process must print
	// remp-worker's readiness line ("remp-worker: listening on <addr>")
	// to stdout; RunCluster owns the command's stdout pipe, everything
	// else (stderr, env) is the builder's.
	WorkerCmd func(i int) *exec.Cmd
	// KillAfterAnswers, when > 0, SIGKILLs worker 0 once the run has
	// accepted that many answers — the crash-failover drill.
	KillAfterAnswers int64
	// Faults injects coordinator-side frame faults (the -chaos drill).
	Faults *cluster.Faults
	// Tuning overrides the coordinator's timing knobs; zero fields keep
	// defaults. Drills that kill workers want a short liveness timeout.
	Tuning cluster.CoordinatorConfig
}

// ClusterReport is the load-run report plus the failover telemetry
// scraped from the clustered server's /metrics exposition.
type ClusterReport struct {
	Report
	// WorkerAddrs are the spawned workers' bound addresses, in spawn order.
	WorkerAddrs []string `json:"worker_addrs"`
	// KilledWorker reports whether the drill SIGKILLed worker 0.
	KilledWorker bool `json:"killed_worker"`
	// Reassignments, WorkerDowns and RPCRetries are the final values of
	// the corresponding remp_cluster_* counter families.
	Reassignments float64 `json:"reassignments"`
	WorkerDowns   float64 `json:"worker_downs"`
	RPCRetries    float64 `json:"rpc_retries"`
	// DeduceHits sums remp_deduce_hits_total over all namespaces: crowd
	// questions the server answered by deduction instead of a worker.
	DeduceHits float64 `json:"deduce_hits,omitempty"`
}

// workerProc is one spawned worker process.
type workerProc struct {
	cmd  *exec.Cmd
	addr string
}

// startWorkerProc spawns one worker and waits for its readiness line.
func startWorkerProc(cc ClusterConfig, i int) (*workerProc, error) {
	cmd := cc.WorkerCmd(i)
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("loadgen: starting worker %d: %w", i, err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, readyLine) {
				addrc <- strings.TrimSpace(strings.TrimPrefix(line, readyLine))
				break
			}
		}
		close(addrc)
		// Drain the rest so the worker never blocks on a full pipe.
		io.Copy(io.Discard, out)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok || addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("loadgen: worker %d exited before its readiness line", i)
		}
		return &workerProc{cmd: cmd, addr: addr}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("loadgen: worker %d never printed its readiness line", i)
	}
}

// kill SIGKILLs the worker process and reaps it.
func (w *workerProc) kill() {
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	w.cmd.Wait()
}

// scrapeMetric extracts one un-labeled sample value from a Prometheus
// text exposition; missing families read as 0.
func scrapeMetric(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return v
			}
		}
	}
	return 0
}

// scrapeMetricSum sums every sample of a labeled family; missing
// families read as 0.
func scrapeMetricSum(text, name string) float64 {
	var sum float64
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+"{")
		if !ok {
			continue
		}
		if _, val, ok := strings.Cut(rest, "} "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil {
				sum += v
			}
		}
	}
	return sum
}

// RunCluster executes one load run against a freshly spawned
// multi-process cluster. The server runs in process (so the race
// detector sees the coordinator) while the shard engines live in the
// spawned worker processes; the acceptance bar is the same byte-identity
// against the synchronous oracle that Run enforces, now across process
// boundaries and — with KillAfterAnswers — across a worker crash.
func RunCluster(cfg Config, cc ClusterConfig) (*ClusterReport, error) {
	if cc.Workers <= 0 {
		cc.Workers = 3
	}
	if cc.WorkerCmd == nil {
		return nil, fmt.Errorf("loadgen: ClusterConfig.WorkerCmd is required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	workers := make([]*workerProc, 0, cc.Workers)
	defer func() {
		for _, w := range workers {
			w.kill()
		}
	}()
	addrs := make([]string, 0, cc.Workers)
	for i := 0; i < cc.Workers; i++ {
		w, err := startWorkerProc(cc, i)
		if err != nil {
			return nil, err
		}
		workers = append(workers, w)
		addrs = append(addrs, w.addr)
		cfg.Logf("cluster: worker %d up at %s", i, w.addr)
	}

	srv, _, err := server.NewServer(server.Config{
		Logf:          nil,
		Workers:       addrs,
		ClusterFaults: cc.Faults,
		ClusterTuning: cc.Tuning,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: clustered server: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	cfg.BaseURL = "http://" + ln.Addr().String()

	// Arm the mid-run kill on the answer-progress hook: the first
	// accepted answer at or past the threshold SIGKILLs worker 0, and the
	// run must still converge to the oracle on the survivors.
	killed := false
	if cc.KillAfterAnswers > 0 {
		prev := cfg.Progress
		killCh := make(chan struct{}, 1)
		cfg.Progress = func(answers int64) {
			if answers >= cc.KillAfterAnswers {
				select {
				case killCh <- struct{}{}:
					cfg.Logf("cluster: SIGKILLing worker 0 (%s) at %d answers", addrs[0], answers)
					workers[0].kill()
					killed = true
				default:
				}
			}
			if prev != nil {
				prev(answers)
			}
		}
	}

	report, err := Run(cfg)
	if err != nil {
		return nil, err
	}

	// Scrape the failover counters before tearing the server down.
	out := &ClusterReport{Report: *report, WorkerAddrs: addrs, KilledWorker: killed}
	if resp, merr := http.Get(cfg.BaseURL + "/metrics"); merr == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(body)
		out.Reassignments = scrapeMetric(text, "remp_cluster_shard_reassignments_total")
		out.WorkerDowns = scrapeMetric(text, "remp_cluster_worker_downs_total")
		out.RPCRetries = scrapeMetric(text, "remp_cluster_rpc_retries_total")
		out.DeduceHits = scrapeMetricSum(text, "remp_deduce_hits_total")
	} else {
		cfg.Logf("cluster: metrics scrape failed: %v", merr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if serr := srv.Shutdown(ctx); serr != nil {
		cfg.Logf("cluster: server shutdown: %v", serr)
	}
	return out, nil
}
