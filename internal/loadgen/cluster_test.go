package loadgen

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// TestHelperProcessWorker is not a test: it is the remp-worker process
// the cluster drills below spawn (and SIGKILL). It mirrors
// cmd/remp-worker — listen, print the readiness line, serve shards off
// server.PrepareSpec — inside the test binary so the drills need no
// pre-built artifacts.
func TestHelperProcessWorker(t *testing.T) {
	if os.Getenv("REMP_CLUSTER_WORKER") != "1" {
		t.Skip("helper process for the cluster drills")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("worker helper:", err)
		os.Exit(2)
	}
	fmt.Printf("remp-worker: listening on %s\n", ln.Addr())
	w := cluster.NewWorker(cluster.WorkerConfig{Prepare: server.PrepareSpec})
	if err := w.Serve(ln); err != nil {
		fmt.Println("worker helper:", err)
		os.Exit(2)
	}
}

// helperWorkerCmd builds the spawn command for one in-test worker.
func helperWorkerCmd(i int) *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperProcessWorker$", "-test.v")
	cmd.Env = append(os.Environ(), "REMP_CLUSTER_WORKER=1")
	cmd.Stderr = os.Stderr
	return cmd
}

// clusterTuning is the drill-speed coordinator timing: failover within a
// few hundred milliseconds instead of the production-default seconds.
var clusterTuning = cluster.CoordinatorConfig{
	HeartbeatInterval: 50 * time.Millisecond,
	LivenessTimeout:   400 * time.Millisecond,
	RPCTimeout:        10 * time.Second,
	OpTimeout:         2 * time.Minute,
	BackoffBase:       5 * time.Millisecond,
	BackoffMax:        100 * time.Millisecond,
}

// TestClusterSurvivesWorkerKill is the cluster acceptance drill: a
// 3-worker cluster drives concurrent sessions whose shard engines live
// in separate worker processes; one worker is SIGKILLed mid-run; every
// session must still finish byte-identical to the synchronous in-process
// oracle, with the failover visible in the reassignment metrics. The
// drill runs with answer deduction on, so crash failover is exercised
// together with the deduction tier: the oracle is a Deduce-on
// synchronous run and byte-identity covers Result.Deduced too.
func TestClusterSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real worker processes")
	}
	rep, err := RunCluster(
		Config{
			Sessions:    3,
			Dataset:     "books",
			DatasetSeed: 3,
			Options:     server.OptionsDTO{Mu: 5, Seed: 3, Shards: 6, Deduce: true},
			WorkerError: 0.05,
			Reorder:     0.5,
			Seed:        3,
			Deadline:    4 * time.Minute,
			Logf:        t.Logf,
		},
		ClusterConfig{
			Workers:   3,
			WorkerCmd: helperWorkerCmd,
			// The shared answer cache caps distinct answers near the
			// oracle's question count (~20 on books), so kill early to land
			// mid-run.
			KillAfterAnswers: 5,
			Tuning:           clusterTuning,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Sessions {
		t.Fatalf("%d/%d sessions completed: %+v", rep.Completed, rep.Sessions, rep.Outcomes)
	}
	if !rep.ResultsMatch {
		t.Fatalf("a session diverged from the synchronous oracle after the worker kill: %+v", rep.Outcomes)
	}
	if !rep.KilledWorker {
		t.Fatal("the drill never reached the kill threshold; failover was not exercised")
	}
	if rep.Reassignments == 0 {
		t.Fatal("no shard reassignments recorded; the killed worker owned nothing mid-run")
	}
	if rep.WorkerDowns == 0 {
		t.Fatal("the killed worker was never marked down")
	}
	if rep.Oracle.Deduced == 0 {
		t.Fatal("the Deduce-on oracle deduced nothing; the drill no longer exercises deduction")
	}
	t.Logf("survived the kill: %d answers, %d deduced by the oracle, %v reassignments, %v worker downs, %v rpc retries",
		rep.Answers, rep.Oracle.Deduced, rep.Reassignments, rep.WorkerDowns, rep.RPCRetries)
}

// TestClusterChaosDrill runs the cluster under frame-level fault
// injection — dropped and duplicated requests — with no worker kill:
// retries and dedup alone must keep every session oracle-identical.
func TestClusterChaosDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	tuning := clusterTuning
	// Dropped frames are only discovered by the RPC timeout; keep it
	// short so the drill doesn't crawl.
	tuning.RPCTimeout = 2 * time.Second
	rep, err := RunCluster(
		Config{
			Sessions:    2,
			Dataset:     "books",
			DatasetSeed: 5,
			Options:     server.OptionsDTO{Mu: 5, Seed: 5, Shards: 4},
			Seed:        5,
			Deadline:    4 * time.Minute,
			Logf:        t.Logf,
		},
		ClusterConfig{
			Workers:   2,
			WorkerCmd: helperWorkerCmd,
			Faults:    &cluster.Faults{DropEveryN: 10, DuplicateEveryN: 3},
			Tuning:    tuning,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Sessions || !rep.ResultsMatch {
		t.Fatalf("chaos run diverged: completed %d/%d, match=%v: %+v",
			rep.Completed, rep.Sessions, rep.ResultsMatch, rep.Outcomes)
	}
	if rep.RPCRetries == 0 {
		t.Fatal("no RPC retries recorded; the drop fault never fired")
	}
}
