// Package loadgen is the deterministic load-generation harness for the
// remp-server session API: N concurrent closed-loop clients, each
// driving one resolution session end to end — create, poll the question
// batch, answer with configurable latency, reordering and worker error,
// repeat until done — and each verifying that the session's final
// Result is byte-identical to the synchronous remp.Resolve oracle
// computed in process.
//
// Determinism is the load the harness is built around: worker labels
// are a pure function of the entity pair (a seeded hash picks which
// workers err), so every session over the same dataset receives the
// same labels per pair no matter which session asked first, which
// answers were served from the shared cross-session cache, or how a
// server restart interleaved with delivery. That is what makes the
// oracle comparison exact under full concurrency — and what makes the
// harness a crash-recovery test: transport failures are retried until
// RetryTimeout, so a server that is killed and restarted mid-run (with
// a disk store) must still bring every session to the oracle result.
package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crowd"
	"repro/internal/datasets"
	"repro/internal/pair"
	"repro/internal/server"
	"repro/internal/session"
	"repro/remp"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Sessions is the number of concurrent sessions to drive.
	Sessions int
	// Dataset is a built-in dataset name (datasets.ByName); DatasetSeed
	// seeds its generator. All sessions share the dataset (and therefore
	// the server's cross-session answer cache).
	Dataset     string
	DatasetSeed int64
	// Options configures every session's pipeline.
	Options server.OptionsDTO
	// Workers is how many simulated workers label each question
	// (default 3); WorkerQuality is the λ each label reports (default
	// 0.95); WorkerError is the probability a worker's label is flipped,
	// decided deterministically per (pair, worker).
	Workers       int
	WorkerQuality float64
	WorkerError   float64
	// Seed drives the per-session latency and reordering schedules.
	Seed int64
	// MinLatency/MaxLatency bound the simulated crowd think time per
	// answer; Reorder is the probability a batch is answered in a random
	// order rather than selection order.
	MinLatency, MaxLatency time.Duration
	Reorder                float64
	// PollInterval is how long a session waits before re-polling an
	// empty batch (every open question in flight elsewhere). Default
	// 20ms.
	PollInterval time.Duration
	// RetryTimeout is the continuous-transport-failure budget: how long
	// a client keeps retrying an unreachable server (spanning a kill +
	// restart) before giving up. Default 30s.
	RetryTimeout time.Duration
	// Deadline bounds the whole run (0 = none).
	Deadline time.Duration
	// Progress, when set, is called after every accepted post with the
	// cumulative answer count (used by tests to trigger a mid-run kill).
	Progress func(answers int64)
	// Logf receives progress lines; nil disables logging.
	Logf func(format string, args ...any)
}

// SessionOutcome is the per-session verdict.
type SessionOutcome struct {
	ID        string `json:"id"`
	Questions int    `json:"questions"`
	Loops     int    `json:"loops"`
	// Match is true when the session's final result is byte-identical
	// to the synchronous oracle's.
	Match bool   `json:"match"`
	Error string `json:"error,omitempty"`
}

// LatencyStats summarizes the client-observed latency of one API
// operation across the whole run: create, batch, answers, result.
// Samples are wall time around the retrying call, so a killed-and-
// restarted server shows up as a fat tail here, not as missing data.
type LatencyStats struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Oracle summarizes the synchronous remp.Resolve reference run.
type Oracle struct {
	Matches   int `json:"matches"`
	Questions int `json:"questions"`
	Deduced   int `json:"deduced,omitempty"`
	Loops     int `json:"loops"`
}

// Report is the run summary, written as JSON by cmd/remp-loadgen and
// folded into BENCH_remp.json by cmd/benchreport.
type Report struct {
	Dataset         string  `json:"dataset"`
	Sessions        int     `json:"sessions"`
	Completed       int     `json:"completed"`
	ResultsMatch    bool    `json:"results_match"`
	Answers         int64   `json:"answers"`
	Rejected        int64   `json:"rejected"`
	Retries         int64   `json:"retries"`
	DurationSeconds float64 `json:"duration_seconds"`
	AnswersPerSec   float64 `json:"answers_per_second"`
	Oracle          Oracle  `json:"oracle"`
	// Latency holds client-side percentiles per operation, keyed by
	// "create" / "batch" / "answers" / "result".
	Latency  map[string]LatencyStats `json:"latency,omitempty"`
	Outcomes []SessionOutcome        `json:"outcomes"`
}

// runner is the shared state of one load run.
type runner struct {
	cfg      Config
	ds       *datasets.Dataset
	oracle   []byte // canonical JSON of the reference result
	oraclePR Oracle
	deadline time.Time
	answers  atomic.Int64
	rejected atomic.Int64
	retries  atomic.Int64

	latMu sync.Mutex
	lat   map[string][]float64 // op → latency samples, milliseconds
}

// observe records one successful operation's client-observed latency.
func (r *runner) observe(op string, d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	r.latMu.Lock()
	r.lat[op] = append(r.lat[op], ms)
	r.latMu.Unlock()
}

// timed wraps retry with a latency sample per successful call.
func timed[T any](r *runner, op string, f func() (T, error)) (T, error) {
	t0 := time.Now()
	v, err := retry(r, f)
	if err == nil {
		r.observe(op, time.Since(t0))
	}
	return v, err
}

// percentile returns the p-quantile (0 < p <= 1) of ascending samples
// by the nearest-rank method — p99 of 100 samples is the 99th.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// latencyStats folds the collected samples into per-op percentiles.
func (r *runner) latencyStats() map[string]LatencyStats {
	r.latMu.Lock()
	defer r.latMu.Unlock()
	if len(r.lat) == 0 {
		return nil
	}
	out := make(map[string]LatencyStats, len(r.lat))
	for op, samples := range r.lat {
		sort.Float64s(samples)
		out[op] = LatencyStats{
			Count: len(samples),
			P50Ms: percentile(samples, 0.50),
			P95Ms: percentile(samples, 0.95),
			P99Ms: percentile(samples, 0.99),
			MaxMs: samples[len(samples)-1],
		}
	}
	return out
}

// Run executes one load run. It returns an error only when the harness
// itself cannot run (unknown dataset, oracle failure); per-session
// failures are reported in the Report.
func Run(cfg Config) (*Report, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.WorkerQuality <= 0 || cfg.WorkerQuality > 1 {
		cfg.WorkerQuality = 0.95
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ds, err := datasets.ByName(cfg.Dataset, cfg.DatasetSeed)
	if err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, ds: ds, lat: make(map[string][]float64)}
	if cfg.Deadline > 0 {
		r.deadline = time.Now().Add(cfg.Deadline)
	}

	// The synchronous oracle: remp.Resolve over the same dataset and
	// options, answered by the same deterministic label function every
	// session uses. Byte-equality against its canonical result is the
	// acceptance bar for every session.
	res, err := remp.Resolve(
		remp.Dataset{K1: ds.K1, K2: ds.K2},
		&oracleAsker{r: r},
		cfg.Options.ToOptions(),
	)
	if err != nil {
		return nil, fmt.Errorf("loadgen: synchronous oracle failed: %w", err)
	}
	r.oracle = canonicalResult(ds, res)
	r.oraclePR = Oracle{Matches: len(res.Matches), Questions: res.Questions, Deduced: res.Deduced, Loops: res.Loops}
	cfg.Logf("oracle: %d matches, %d questions (%d deduced), %d loops", len(res.Matches), res.Questions, res.Deduced, res.Loops)

	start := time.Now()
	outcomes := make([]SessionOutcome, cfg.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = r.drive(i)
		}(i)
	}
	wg.Wait()
	dur := time.Since(start)

	report := &Report{
		Dataset:         cfg.Dataset,
		Sessions:        cfg.Sessions,
		ResultsMatch:    true,
		Answers:         r.answers.Load(),
		Rejected:        r.rejected.Load(),
		Retries:         r.retries.Load(),
		DurationSeconds: dur.Seconds(),
		Oracle:          r.oraclePR,
		Latency:         r.latencyStats(),
		Outcomes:        outcomes,
	}
	if dur > 0 {
		report.AnswersPerSec = float64(report.Answers) / dur.Seconds()
	}
	for _, o := range outcomes {
		if o.Error == "" {
			report.Completed++
		}
		if !o.Match {
			report.ResultsMatch = false
		}
	}
	return report, nil
}

// labels computes the deterministic worker labels for one pair: a
// seeded FNV hash per (pair, worker) decides which workers err, so the
// labels depend on nothing but the question.
func (r *runner) labels(q pair.Pair) []remp.Label {
	out := make([]remp.Label, r.cfg.Workers)
	truth := r.ds.Gold.IsMatch(q)
	for w := range out {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%d|%d|%d", r.cfg.Seed, q.U1, q.U2, w)
		u := float64(h.Sum64()%1e9) / 1e9
		ans := truth
		if u < r.cfg.WorkerError {
			ans = !truth
		}
		out[w] = remp.Label{WorkerID: w, Quality: r.cfg.WorkerQuality, IsMatch: ans}
	}
	return out
}

// oracleAsker adapts the deterministic label function to the blocking
// Asker interface remp.Resolve drives.
type oracleAsker struct {
	r *runner
	n int
}

func (a *oracleAsker) Ask(q pair.Pair) []crowd.Label {
	a.n++
	return session.ToCrowd(a.r.labels(q))
}

func (a *oracleAsker) NumQuestions() int { return a.n }

// canonicalResult renders a resolution result in the exact shape the
// server's /result endpoint serves, marshaled to JSON for byte
// comparison.
func canonicalResult(ds *datasets.Dataset, res *remp.Result) []byte {
	dto := server.ResultDTO{
		Done:              true,
		Questions:         res.Questions,
		Deduced:           res.Deduced,
		Loops:             res.Loops,
		Matches:           make([][2]string, 0, len(res.Matches)),
		Confirmed:         len(res.Confirmed),
		Propagated:        len(res.Propagated),
		IsolatedPredicted: len(res.IsolatedPredicted),
		NonMatches:        len(res.NonMatches),
	}
	for _, m := range pair.Set(res.Matches).Sorted() {
		dto.Matches = append(dto.Matches, [2]string{ds.K1.EntityName(m.U1), ds.K2.EntityName(m.U2)})
	}
	prf := remp.Evaluate(res.Matches, ds.Gold)
	dto.PRF = &server.PRFDTO{Precision: prf.Precision, Recall: prf.Recall, F1: prf.F1}
	data, err := json.Marshal(dto)
	if err != nil {
		panic(err) // the DTO is plain data; marshaling cannot fail
	}
	return data
}

// canonicalDTO re-marshals a fetched result for comparison against the
// oracle bytes.
func canonicalDTO(dto *server.ResultDTO) []byte {
	if dto.Matches == nil {
		dto.Matches = [][2]string{}
	}
	data, err := json.Marshal(dto)
	if err != nil {
		panic(err)
	}
	return data
}

// drive runs one closed-loop session to completion.
func (r *runner) drive(i int) SessionOutcome {
	cfg := r.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + 1000003*int64(i+1)))
	client := server.NewClient(cfg.BaseURL)
	client.HTTP = &http.Client{Timeout: 2 * time.Minute}

	var out SessionOutcome
	// The client ref makes the create idempotent: a retried create whose
	// first attempt was acknowledged server-side but lost to a crash
	// returns the same session instead of spawning an orphan.
	info, err := timed(r, "create", func() (*server.SessionInfo, error) {
		return client.CreateSession(server.CreateRequest{
			Dataset:   cfg.Dataset,
			Seed:      cfg.DatasetSeed,
			ClientRef: fmt.Sprintf("loadgen-%d-%03d", cfg.Seed, i),
			Options:   cfg.Options,
		})
	})
	if err != nil {
		out.Error = fmt.Sprintf("create: %v", err)
		return out
	}
	out.ID = info.ID

	for info.State != string(remp.SessionDone) {
		if r.expired() {
			out.Error = "deadline exceeded"
			return out
		}
		if len(info.Batch) == 0 {
			// Every open question is reserved by a sibling session; poll
			// until their answers land in the shared cache.
			time.Sleep(cfg.PollInterval)
			info, err = timed(r, "batch", func() (*server.SessionInfo, error) { return client.Batch(out.ID) })
			if err != nil {
				out.Error = fmt.Sprintf("batch: %v", err)
				return out
			}
			continue
		}
		batch := info.Batch
		if rng.Float64() < cfg.Reorder {
			rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
		}
		for _, q := range batch {
			r.think(rng)
			p, perr := session.ParseQuestionID(q.ID)
			if perr != nil {
				out.Error = fmt.Sprintf("question %q: %v", q.ID, perr)
				return out
			}
			answer := server.AnswerDTO{ID: q.ID, Labels: r.labels(p)}
			resp, err := timed(r, "answers", func() (*server.AnswersResponse, error) {
				return client.PostAnswers(out.ID, []server.AnswerDTO{answer})
			})
			if err != nil {
				out.Error = fmt.Sprintf("answers: %v", err)
				return out
			}
			// Rejections are expected after a retried post whose first
			// attempt was applied before the crash: duplicates are safe.
			r.answers.Add(int64(resp.Accepted))
			r.rejected.Add(int64(len(resp.Rejected)))
			if cfg.Progress != nil && resp.Accepted > 0 {
				cfg.Progress(r.answers.Load())
			}
			info = &resp.SessionInfo
			if info.State == string(remp.SessionDone) {
				break
			}
		}
	}

	res, err := timed(r, "result", func() (*server.ResultDTO, error) { return client.Result(out.ID) })
	if err != nil {
		out.Error = fmt.Sprintf("result: %v", err)
		return out
	}
	out.Questions, out.Loops = res.Questions, res.Loops
	got := canonicalDTO(res)
	out.Match = string(got) == string(r.oracle)
	if !out.Match {
		r.cfg.Logf("session %s diverged from oracle:\n  got  %s\n  want %s", out.ID, got, r.oracle)
	}
	return out
}

// think sleeps the configured per-answer latency.
func (r *runner) think(rng *rand.Rand) {
	if r.cfg.MaxLatency <= 0 {
		return
	}
	d := r.cfg.MinLatency
	if span := r.cfg.MaxLatency - r.cfg.MinLatency; span > 0 {
		d += time.Duration(rng.Int63n(int64(span)))
	}
	time.Sleep(d)
}

func (r *runner) expired() bool {
	return !r.deadline.IsZero() && time.Now().After(r.deadline)
}

// retry runs op, retrying transport-level failures — the server being
// killed, restarted, or not yet listening — until RetryTimeout of
// continuous failure. API-level errors (HTTP status) are returned
// immediately.
func retry[T any](r *runner, op func() (T, error)) (T, error) {
	var zero T
	var lastErr error
	downSince := time.Time{}
	for {
		v, err := op()
		if err == nil {
			return v, nil
		}
		if !isTransient(err) {
			return zero, err
		}
		r.retries.Add(1)
		if downSince.IsZero() {
			downSince = time.Now()
			r.cfg.Logf("server unreachable (%v), retrying", err)
		}
		if time.Since(downSince) > r.cfg.RetryTimeout {
			return zero, fmt.Errorf("server unreachable for %s: %w", r.cfg.RetryTimeout, lastErr)
		}
		if r.expired() {
			return zero, errors.New("deadline exceeded while retrying")
		}
		lastErr = err
		time.Sleep(200 * time.Millisecond)
	}
}

// isTransient classifies errors worth retrying: anything that says the
// connection (not the request) failed, including a 503 from a draining
// server.
func isTransient(err error) bool {
	var urlErr *url.Error
	if errors.As(err, &urlErr) {
		return true
	}
	var netErr net.Error
	if errors.As(err, &netErr) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	// The typed client surfaces HTTP status in the error text; a 503 is
	// the draining server telling us to come back.
	return err != nil && (strings.Contains(err.Error(), "HTTP 503") || strings.Contains(err.Error(), "server is draining"))
}
