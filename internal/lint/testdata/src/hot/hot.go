// Package hot exercises the hotpath analyzer: //remp:hotpath functions
// must not allocate per call.
package hot

import "fmt"

func sink(x any) { _ = x }

//remp:hotpath
func MakesMap(n int) int {
	m := make(map[int]int, n) // want `make\(map\[int\]int\) allocates`
	return len(m)
}

// ReturnsFresh hands the allocation straight back: the caller's
// deliberate purchase, exempt.
//
//remp:hotpath
func ReturnsFresh(n int) []int {
	return make([]int, n)
}

// ReturnsViaLocal builds its result in a returned local: also exempt.
//
//remp:hotpath
func ReturnsViaLocal(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// GrowsPooled reallocates only under a len() guard: pool growth,
// amortized zero, exempt.
//
//remp:hotpath
func GrowsPooled(buf []float64, n int) []float64 {
	if len(buf) < n {
		buf = make([]float64, n)
	}
	return buf
}

//remp:hotpath
func AppendsFresh(xs []int) int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to out, a fresh per-call slice`
	}
	return len(out)
}

// AppendsPooled appends to a caller-owned buffer: the backing array
// amortizes, exempt.
//
//remp:hotpath
func AppendsPooled(buf []int, xs []int) []int {
	for _, x := range xs {
		buf = append(buf, x)
	}
	return buf
}

//remp:hotpath
func Captures(xs []int) func() int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return func() int { // want `closure capturing total allocates per call`
		return total
	}
}

//remp:hotpath
func Boxes(v int64) {
	sink(v) // want `int64 boxed into any`
}

// PassesPointer hands over a pointer-shaped value: fits the interface
// word, no allocation, exempt.
//
//remp:hotpath
func PassesPointer(p *int) {
	sink(p)
}

//remp:hotpath
func Escapes(n int) *[4]int {
	p := &[4]int{n, 0, 0, 0} // want `&composite literal escapes to the heap`
	sink(p)
	return nil
}

// localAlloc allocates; annotated callers are flagged at the call site.
func localAlloc(n int) int {
	m := make([]int, n)
	return len(m)
}

//remp:hotpath
func CallsLocalAlloc(n int) int {
	return localAlloc(n) // want `calls localAlloc, which allocates`
}

//remp:hotpath
func Formats(n int) string {
	return fmt.Sprintf("%d", n) // want `call to fmt\.Sprintf allocates` `int boxed into any`
}
