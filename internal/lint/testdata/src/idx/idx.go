// Package idx exercises the indextypes analyzer: int32 CSR indices must
// not widen into int map keys or re-box into map[int]float64.
package idx

func Widen(m map[int]struct{}, q int32) bool {
	_, ok := m[int(q)] // want `int32 CSR index widened to an int map key`
	return ok
}

// NarrowKey keeps the map keyed by the index type. Passes.
func NarrowKey(m map[int32]float64, q int32) float64 {
	return m[q]
}

// WideValue indexes with a value that was already an int (no widening
// conversion). Passes.
func WideValue(m map[int]int, q int) int {
	return m[q]
}

func Accumulates(n int) int {
	acc := map[int]float64{} // want `map\[int\]float64 over dense CSR indices`
	acc[0] = 1
	return len(acc)
}

// NarrowAccumulates keys the accumulator by the narrow type: the
// sparse-overlay idiom. Passes.
func NarrowAccumulates(n int) int {
	acc := map[int32]float64{}
	acc[0] = 1
	return len(acc)
}

// DenseAccumulates is the preferred shape. Passes.
func DenseAccumulates(n int) float64 {
	acc := make([]float64, n)
	for i := range acc {
		acc[i] = 1
	}
	return acc[0]
}
