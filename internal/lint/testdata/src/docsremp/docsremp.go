// Package remp exercises Rule B of the docs analyzer: every exported
// symbol of the public package must carry a doc comment.
package remp

// Resolver is documented and passes.
type Resolver struct{ n int }

type Options struct{} // want `exported type Options of package remp has no doc comment`

// Run is documented and passes.
func Run() {}

func Stop() {} // want `exported function Stop of package remp has no doc comment`

// Count is documented and passes.
func (r *Resolver) Count() int { return r.n }

func (r *Resolver) Reset() { r.n = 0 } // want `exported method Reset of package remp has no doc comment`

// internalState is unexported: neither it nor its methods are public API.
type internalState struct{}

func (internalState) Tick() {}

// Grouped declarations are covered by a doc comment on the group, the
// way godoc renders them.
const (
	ModeSync  = 1
	ModeAsync = 2
)

var Default = &Resolver{} // want `exported Default of package remp has no doc comment`

// limit is unexported and needs nothing.
var limit = 10
