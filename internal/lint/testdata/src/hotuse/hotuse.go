// Package hotuse exercises cross-package hotpath facts: annotated
// functions here call into package hotdep, whose allocation summaries
// were exported when hotdep was analyzed.
package hotuse

import "hotdep"

//remp:hotpath
func CallsAlloc(n int) int {
	return hotdep.Alloc(n) // want `calls Alloc, which allocates`
}

// CallsFresh returns the callee's fresh result directly: the chain is
// the caller's deliberate purchase, exempt.
//
//remp:hotpath
func CallsFresh(n int) []int {
	return hotdep.Fresh(n)
}

//remp:hotpath
func UsesFresh(n int) int {
	return len(hotdep.Fresh(n)) // want `calls Fresh, which returns a fresh allocation`
}

// CallsClean calls an allocation-free dependency: passes.
//
//remp:hotpath
func CallsClean(x int) int {
	return hotdep.Clean(x)
}
