// Package det exercises the determinism analyzer: map-iteration order
// and wall-clock/random sources must not reach outputs.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func Clock() int64 {
	return time.Now().Unix() // want `time\.Now in a deterministic package`
}

func GlobalRand() int {
	return rand.Intn(10) // want `globally seeded random source`
}

// SeededOK draws from an explicitly seeded generator: deterministic.
func SeededOK(r *rand.Rand) int {
	return r.Intn(10)
}

// Seeding constructs a generator; the constructor itself is exempt.
func Seeding(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func SumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation in map-iteration order`
	}
	return total
}

// SumInts accumulates integers: order-independent, passes.
func SumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to keys in map-iteration order with no later sort`
	}
	return keys
}

// SortedKeys is the blessed collect-then-sort pattern.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func PrintsInOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written while ranging over a map`
	}
}

func ReturnsArbitrary(m map[string]int) string {
	for k := range m {
		return k // want `returns a value derived from map-iteration variables`
	}
	return ""
}

// PerIterationSlice builds and consumes a slice inside each iteration:
// no cross-iteration order escapes.
func PerIterationSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		row := make([]int, 0, len(vs))
		row = append(row, vs...)
		n += len(row)
	}
	return n
}
