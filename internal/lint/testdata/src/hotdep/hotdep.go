// Package hotdep provides callees for the cross-package hotpath test:
// allocation summaries must travel to dependent packages as facts.
package hotdep

// Alloc allocates a map per call.
func Alloc(n int) int {
	m := make(map[int]int, n)
	return len(m)
}

// Fresh returns a new slice (returnsAlloc, no internal site).
func Fresh(n int) []int { return make([]int, n) }

// Clean is allocation-free.
func Clean(x int) int { return x + 1 }
