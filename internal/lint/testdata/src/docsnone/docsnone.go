package docsnone // want `package docsnone has no package doc comment`

// Helper is documented, but Rule B does not apply outside package remp —
// only the missing package comment above is a finding.
func Helper() int { return 1 }

func Undocumented() int { return 2 }
