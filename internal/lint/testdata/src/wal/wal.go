// Package wal exercises the waldurability analyzer: the fsync-then-
// rename-then-dir-sync protocol and the no-file-I/O-under-mutex rule.
package wal

import (
	"os"
	"path/filepath"
	"sync"
)

func RenameNoSync(tmp, dst string) error {
	return os.Rename(tmp, dst) // want `os\.Rename without a preceding File\.Sync` `os\.Rename not followed by a directory sync`
}

// RenameSafe performs the full protocol: fsync the source, rename, then
// sync the parent directory through a helper. Passes.
func RenameSafe(tmp, dst string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return err
	}
	return syncParent(dst)
}

func RenameNoDirSync(tmp, dst string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, dst) // want `os\.Rename not followed by a directory sync`
}

// syncParent fsyncs the directory containing path (the dir-sync idiom
// the analyzer recognizes and propagates as a fact).
func syncParent(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type store struct {
	mu sync.Mutex
	f  *os.File
}

func (s *store) BadAppend(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(b); err != nil { // want `File\.Write while s\.mu is held`
		return err
	}
	return s.f.Sync() // want `File\.Sync while s\.mu is held`
}

// GoodAppend grabs the handle under the lock and does the I/O outside:
// the DiskStore pattern. Passes.
func (s *store) GoodAppend(b []byte) error {
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// CloseUnderLock closes a displaced handle inside the critical section,
// which the writer-map swap requires. Passes.
func (s *store) CloseUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

func (s *store) flush() error { return s.f.Sync() }

// BadIndirect reaches the disk through a module callee while locked:
// the fileIO fact flags the call site.
func (s *store) BadIndirect() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush() // want `flush, which does File\.Sync while s\.mu is held`
}
