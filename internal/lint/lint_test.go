package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/linttest"
)

func fixtures(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.Determinism, "det")
}

func TestHotpath(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.Hotpath, "hot")
}

// TestHotpathCrossPackage checks that allocation summaries reach
// dependent packages as facts: hotuse's annotated functions are flagged
// for allocations that happen inside hotdep.
func TestHotpathCrossPackage(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.Hotpath, "hotdep", "hotuse")
}

func TestWALDurability(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.WALDurability, "wal")
}

func TestIndexTypes(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.IndexTypes, "idx")
}

func TestDocs(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.Docs, "docsnone", "docsremp")
}

// TestSuiteCleanOnRepo is the smoke test backing the CI gate: the full
// suite over the real module must come out clean. There is no
// suppression mechanism, so any finding here is a regression (or an
// analyzer bug) to fix before merging.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := linttest.Findings(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("remp-lint finding on clean tree: %s", f)
	}
}
