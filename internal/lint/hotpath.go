package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Hotpath turns the benchmark gate's allocs_per_op=0 requirement into a
// compile-time check. A function whose doc comment carries the
// //remp:hotpath directive must not allocate per call, and neither may
// the in-module functions it (transitively) calls — callee summaries
// travel as analyzer facts, so a hot caller is diagnosed at its call
// site when a callee in another package starts allocating.
//
// Flagged constructs: make/new, map and non-empty slice literals,
// &composite{} (escaping composite), append whose base slice is a fresh
// per-call local, closures that capture variables, conversions of
// non-pointer-shaped values into interfaces (boxing — including implicit
// boxing at call arguments, the old map[int]float64 regression shape),
// calls into fmt/errors and other known-allocating stdlib helpers, and
// calls to module functions whose own bodies allocate.
//
// Two idioms are recognized as amortized-zero and exempted, because the
// flattened hot paths themselves rely on them:
//   - grow paths: an allocation inside an if-statement whose condition
//     mentions len() or cap() (pooled scratch growth);
//   - the function's own result: an allocation that is returned (directly
//     or through a local that every return hands back) is the caller's
//     deliberate purchase, not hidden garbage. It still taints callers:
//     a hot function calling an allocation-returning function is flagged
//     unless it, too, returns that value.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbids allocating constructs in //remp:hotpath functions and their in-module callees",
	Run:  runHotpath,
}

// allocSite is one per-call allocation inside a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocInfo is the per-function summary exported as a fact.
type allocInfo struct {
	sites        []allocSite
	returnsAlloc bool
}

// allocStdlib lists standard-library calls that always allocate; hot
// paths must not construct errors or formatted strings.
var allocStdlib = map[string]map[string]bool{
	"fmt":     nil, // every fmt function allocates
	"errors":  {"New": true, "Join": true},
	"strconv": {"Itoa": true, "Quote": true, "FormatInt": true, "FormatFloat": true, "AppendQuote": false},
	"strings": {"Join": true, "Split": true, "Fields": true, "Repeat": true, "ToLower": true, "ToUpper": true},
}

func runHotpath(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	funcBodies(pass, func(fd *ast.FuncDecl) {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			decls[fn] = fd
		}
	})
	memo := map[*types.Func]*allocInfo{}
	inProgress := map[*types.Func]bool{}
	var compute func(fn *types.Func) *allocInfo
	compute = func(fn *types.Func) *allocInfo {
		if info, ok := memo[fn]; ok {
			return info
		}
		if inProgress[fn] {
			return &allocInfo{} // recursion: break the cycle optimistically
		}
		fd, ok := decls[fn]
		if !ok {
			// Not in this package: an imported fact, or unknown (stdlib).
			if f, ok := pass.ObjectFact(fn); ok {
				return f.(*allocInfo)
			}
			return &allocInfo{}
		}
		inProgress[fn] = true
		info := collectAllocs(pass, fd, compute)
		delete(inProgress, fn)
		memo[fn] = info
		return info
	}
	for fn := range decls {
		info := compute(fn)
		if len(info.sites) > 0 || info.returnsAlloc {
			pass.ExportObjectFact(fn, info)
		}
	}
	for fn, fd := range decls {
		if !hasDirective(fd.Doc, "remp:hotpath") {
			continue
		}
		for _, site := range compute(fn).sites {
			pass.Reportf(site.pos, "%s in //remp:hotpath function %s", site.what, fn.Name())
		}
	}
	return nil
}

// hotWalker carries the per-function state of collectAllocs.
type hotWalker struct {
	pass     *analysis.Pass
	fd       *ast.FuncDecl
	lookup   func(*types.Func) *allocInfo
	returned map[types.Object]bool // locals handed back by a return
	fresh    map[types.Object]bool // nil/empty slice locals (per-call append base)
	stack    []ast.Node
	info     allocInfo
}

// collectAllocs computes the allocation summary of one function.
func collectAllocs(pass *analysis.Pass, fd *ast.FuncDecl, lookup func(*types.Func) *allocInfo) *allocInfo {
	w := &hotWalker{pass: pass, fd: fd, lookup: lookup,
		returned: map[types.Object]bool{}, fresh: map[types.Object]bool{}}
	w.findReturnedAndFresh()
	w.walk(fd.Body)
	return &w.info
}

// findReturnedAndFresh records which locals are returned and which slice
// locals start life empty (so appends to them allocate every call).
func (w *hotWalker) findReturnedAndFresh() {
	if w.fd.Type.Results != nil {
		for _, field := range w.fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := w.pass.TypesInfo.ObjectOf(name); obj != nil {
					w.returned[obj] = true
				}
			}
		}
	}
	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := w.pass.TypesInfo.ObjectOf(id); obj != nil {
						w.returned[obj] = true
					}
				}
			}
		case *ast.DeclStmt:
			// var v []T — appending to v allocates per call.
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					obj := w.pass.TypesInfo.ObjectOf(name)
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						w.fresh[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			// v := []T{} (empty literal) — same per-call append base.
			if n.Tok != token.DEFINE {
				return true
			}
			for i, rhs := range n.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.CompositeLit)
				if !ok || len(lit.Elts) > 0 || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					obj := w.pass.TypesInfo.ObjectOf(id)
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						w.fresh[obj] = true
					}
				}
			}
		}
		return true
	})
}

// walk traverses the body keeping an ancestor stack for the grow-path
// and returned-value exemptions.
func (w *hotWalker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return false
		}
		w.stack = append(w.stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			if cap := w.capturedVar(n); cap != "" {
				w.site(n.Pos(), fmt.Sprintf("closure capturing %s allocates per call", cap))
			}
			return false // closure bodies run elsewhere; the literal is the cost here
		case *ast.CallExpr:
			w.checkCall(n)
		case *ast.CompositeLit:
			w.checkCompositeLit(n)
		case *ast.AssignStmt:
			w.checkBoxingAssign(n)
		case *ast.ReturnStmt:
			w.checkBoxingReturn(n)
		}
		return true
	})
}

// site records an allocation unless an exemption applies to the node on
// top of the stack.
func (w *hotWalker) site(pos token.Pos, what string) {
	if w.growGuarded() {
		return
	}
	w.info.sites = append(w.info.sites, allocSite{pos: pos, what: what})
}

// growGuarded reports whether the current node sits under an if whose
// condition mentions len or cap — the pooled-scratch growth idiom.
func (w *hotWalker) growGuarded() bool {
	for _, anc := range w.stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if isBuiltin(w.pass, call, "len") || isBuiltin(w.pass, call, "cap") {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

// resultReturned reports whether the expression on top of the stack is
// returned, directly or via a returned local. When true the allocation
// is the function's product, recorded as returnsAlloc instead of a site.
func (w *hotWalker) resultReturned() bool {
	i := len(w.stack) - 1
	for i > 0 {
		if _, ok := w.stack[i-1].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i == 0 {
		return false
	}
	switch parent := w.stack[i-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.UnaryExpr:
		// &T{...}: look one more level up for the same contexts.
		if parent.Op == token.AND && i >= 2 {
			switch grand := w.stack[i-2].(type) {
			case *ast.ReturnStmt:
				return true
			case *ast.AssignStmt:
				return w.assignsToReturned(grand, parent)
			}
		}
	case *ast.AssignStmt:
		return w.assignsToReturned(parent, w.stack[i])
	}
	return false
}

// assignsToReturned reports whether as assigns rhs to a returned local.
func (w *hotWalker) assignsToReturned(as *ast.AssignStmt, rhs ast.Node) bool {
	for i, r := range as.Rhs {
		if ast.Unparen(r) != rhs && r != rhs {
			continue
		}
		if i >= len(as.Lhs) {
			return false
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			return false
		}
		obj := w.pass.TypesInfo.ObjectOf(id)
		return obj != nil && w.returned[obj]
	}
	return false
}

// allocSiteOrResult records pos as a site unless the value is the
// function's returned result.
func (w *hotWalker) allocSiteOrResult(pos token.Pos, what string) {
	if w.resultReturned() {
		w.info.returnsAlloc = true
		return
	}
	w.site(pos, what)
}

func (w *hotWalker) checkCall(call *ast.CallExpr) {
	// Type conversions: flag boxing into an interface.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) {
			w.checkBoxedExpr(call.Args[0], tv.Type)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := w.pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				w.allocSiteOrResult(call.Pos(), fmt.Sprintf("make(%s) allocates", exprTypeName(w.pass, call)))
			case "new":
				w.allocSiteOrResult(call.Pos(), "new(...) allocates")
			case "append":
				w.checkAppend(call)
			}
			return
		}
	}
	fn := calleeFunc(w.pass, call)
	if fn != nil && fn.Pkg() != nil {
		if names, ok := allocStdlib[fn.Pkg().Path()]; ok && (names == nil || names[fn.Name()]) {
			w.site(call.Pos(), fmt.Sprintf("call to %s.%s allocates", fn.Pkg().Name(), fn.Name()))
		} else if info := w.lookup(fn); info != nil {
			if len(info.sites) > 0 {
				first := w.pass.Fset.Position(info.sites[0].pos)
				w.site(call.Pos(), fmt.Sprintf("calls %s, which allocates (%s at %s)", fn.Name(), info.sites[0].what, first))
			} else if info.returnsAlloc {
				w.allocSiteOrResult(call.Pos(), fmt.Sprintf("calls %s, which returns a fresh allocation", fn.Name()))
			}
		}
	}
	w.checkBoxedArgs(call)
}

// checkAppend flags appends whose base slice is a fresh per-call local.
func (w *hotWalker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pass.TypesInfo.ObjectOf(base)
	if obj == nil || !w.fresh[obj] || w.returned[obj] {
		return
	}
	w.site(call.Pos(), fmt.Sprintf("append to %s, a fresh per-call slice (allocates; reuse a pooled or field-backed buffer)", base.Name))
}

func (w *hotWalker) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := w.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		w.allocSiteOrResult(lit.Pos(), "map literal allocates")
	case *types.Slice:
		if len(lit.Elts) > 0 {
			w.allocSiteOrResult(lit.Pos(), "slice literal allocates")
		}
	case *types.Struct, *types.Array:
		// A value literal is free; &T{...} escapes to the heap.
		if i := len(w.stack) - 1; i > 0 {
			if u, ok := w.stack[i-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
				w.allocSiteOrResult(lit.Pos(), "&composite literal escapes to the heap")
			}
		}
	}
}

// checkBoxedArgs flags arguments implicitly converted to interface
// parameters (boxing).
func (w *hotWalker) checkBoxedArgs(call *ast.CallExpr) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			w.checkBoxedExpr(arg, pt)
		}
	}
}

// checkBoxedExpr flags expr if converting it to iface allocates.
func (w *hotWalker) checkBoxedExpr(expr ast.Expr, iface types.Type) {
	tv, ok := w.pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Value != nil {
		return // nil and constants box statically
	}
	if pointerShaped(tv.Type) || types.IsInterface(tv.Type) {
		return
	}
	w.site(expr.Pos(), fmt.Sprintf("%s boxed into %s (allocates)", tv.Type, iface))
}

// pointerShaped reports whether values of t fit an interface data word
// without allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return underlyingBasic(t) == types.UnsafePointer
	}
	return false
}

// checkBoxingAssign flags concrete values assigned to interface-typed
// destinations.
func (w *hotWalker) checkBoxingAssign(as *ast.AssignStmt) {
	n := len(as.Rhs)
	if n != len(as.Lhs) {
		return
	}
	for i, rhs := range as.Rhs {
		ltv, ok := w.pass.TypesInfo.Types[as.Lhs[i]]
		if !ok || !types.IsInterface(ltv.Type) {
			continue
		}
		w.checkBoxedExpr(rhs, ltv.Type)
	}
}

// checkBoxingReturn flags concrete values returned as interface results.
func (w *hotWalker) checkBoxingReturn(ret *ast.ReturnStmt) {
	if w.fd.Type.Results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, field := range w.fd.Type.Results.List {
		tv, ok := w.pass.TypesInfo.Types[field.Type]
		if !ok {
			return
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, tv.Type)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // single call expanding to multiple results
	}
	for i, res := range ret.Results {
		if types.IsInterface(resultTypes[i]) {
			w.checkBoxedExpr(res, resultTypes[i])
		}
	}
}

// capturedVar returns the name of a variable the literal captures from
// its enclosing function, or "".
func (w *hotWalker) capturedVar(lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || name != "" {
			return name == ""
		}
		obj, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal (parameters and receiver included).
		if obj.Pos() >= w.fd.Pos() && obj.Pos() < w.fd.End() && !insideNode(obj.Pos(), lit) {
			name = obj.Name()
		}
		return name == ""
	})
	return name
}

// exprTypeName names the made type for diagnostics.
func exprTypeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return "?"
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return exprString(call.Args[0])
}
