package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// deterministicPkgs are the packages whose outputs must be byte-identical
// across runs, shard layouts, async schedules and crash/recover cycles.
// Everything on the Resolve path that feeds a Result, a snapshot or a WAL
// record lives here.
var deterministicPkgs = []string{
	"repro/internal/core",
	"repro/internal/propagation",
	"repro/internal/selection",
	"repro/internal/partition",
	"repro/internal/session",
	"repro/internal/deduce",
}

func inDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Determinism enforces the repo's order-independence guarantee at the
// construct level: in deterministic packages, values produced by ranging
// over a map must not become ordered or rounding-sensitive outputs, and
// wall-clock or globally-seeded randomness is forbidden.
//
// Flagged inside `for ... range m` where m is a map:
//   - appending to a slice declared outside the loop, unless the slice is
//     passed to a sort or slices ordering call later in the same function
//     (collect-then-sort is the blessed pattern);
//   - floating-point compound assignment (+=, -=, *=, /=): float
//     reduction order follows map iteration order, so the rounding — and
//     therefore the bytes — of the result would too;
//   - writing output (fmt printing, json.Encoder.Encode) per iteration;
//   - returning a value that mentions the iteration variables.
//
// Flagged anywhere in a deterministic package: time.Now/Since/Until and
// the globally-seeded top-level math/rand functions. Explicitly seeded
// generators (rand.New(rand.NewSource(seed))) remain available to the
// simulation packages (crowd, loadgen), which are out of scope.
var Determinism = &analysis.Analyzer{
	Name:  "determinism",
	Doc:   "flags map-iteration-order and wall-clock/random dependence in deterministic packages",
	Match: inDeterministicPkg,
	Run:   runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	if !pass.Reportable {
		return nil // exports no facts; nothing to do on out-of-scope packages
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkClockAndRand(pass, call)
			}
			return true
		})
	}
	funcBodies(pass, func(fd *ast.FuncDecl) {
		checkMapRanges(pass, fd)
	})
	return nil
}

// checkClockAndRand flags nondeterministic sources.
func checkClockAndRand(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on an explicitly seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in a deterministic package: results must not depend on the wall clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return // constructing an explicitly seeded generator is deterministic
		}
		pass.Reportf(call.Pos(), "%s.%s uses the globally seeded random source in a deterministic package; thread an explicitly seeded *rand.Rand instead", fn.Pkg().Path(), fn.Name())
	}
}

// checkMapRanges audits every range-over-map loop in one function.
func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fd, rng)
		return true
	})
}

func checkMapRangeBody(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	loopVars := rangeVarObjs(pass, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fd, rng, n)
		case *ast.CallExpr:
			if writesOutput(pass, n) {
				pass.Reportf(n.Pos(), "output written while ranging over a map: iteration order is random, so the emitted order is too; collect into a slice and sort first")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsAny(pass, res, loopVars) {
					pass.Reportf(n.Pos(), "returns a value derived from map-iteration variables: an arbitrary element wins; iterate sorted keys instead")
					break
				}
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if tv, ok := pass.TypesInfo.Types[lhs]; ok {
				switch underlyingBasic(tv.Type) {
				case types.Float32, types.Float64, types.Complex64, types.Complex128:
					pass.Reportf(as.Pos(), "floating-point accumulation in map-iteration order: rounding depends on the order %s is visited; accumulate over sorted keys", exprString(rng.X))
				}
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call, "append") || i >= len(as.Lhs) {
				continue
			}
			target, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(target)
			if obj == nil || insideNode(obj.Pos(), rng.Body) {
				continue // per-iteration slice: order never leaves the iteration
			}
			if sortedAfter(pass, fd, rng, obj) {
				continue
			}
			pass.Reportf(as.Pos(), "appends to %s in map-iteration order with no later sort: the slice's order is random; sort it before it escapes", target.Name)
		}
	}
}

// rangeVarObjs returns the objects bound by the range statement.
func rangeVarObjs(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func mentionsAny(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// writesOutput reports whether call emits formatted output or JSON.
func writesOutput(pass *analysis.Pass, call *ast.CallExpr) bool {
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch {
		case strings.HasPrefix(fn.Name(), "Print"),
			strings.HasPrefix(fn.Name(), "Fprint"):
			return true
		}
	}
	return isMethodCall(pass, call, "encoding/json", "Encoder", "Encode")
}

// sortedAfter reports whether obj is passed to a sort/slices ordering
// call after the loop ends, within the same function.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || sorted {
			return !sorted
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// insideNode reports whether pos lies within n's extent.
func insideNode(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos < n.End()
}
