package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// csrPkgs are the packages built around int32 CSR indices. The flattened
// graph representation keys everything by dense int32 vertex and edge
// ids; hashing those ids into word-sized map keys doubles the key
// memory and reintroduces the map lookups the CSR refactor removed.
var csrPkgs = []string{
	"repro/internal/core",
	"repro/internal/propagation",
	"repro/internal/partition",
	"repro/internal/selection",
}

func inCSRPkg(path string) bool {
	for _, p := range csrPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// IndexTypes polices the boundary between the CSR's narrow indices and
// Go's word-sized int:
//
//   - Rule A: indexing a map whose key type is plain int with a widened
//     narrow integer (m[int(x)] where x is an int32 CSR index). The
//     widening is a smell that a dense structure was replaced by a
//     hash map keyed by vertex id; key the map by the narrow type or —
//     better — index a slice.
//
//   - Rule B: declaring map[int]float64. Dense float accumulators keyed
//     by vertex/cluster id were the repeated regression shape before the
//     CSR refactor; a []float64 indexed by the id is smaller, faster and
//     iterates deterministically. Maps keyed by a narrow integer
//     (map[int32]float64 — the oracle's sparse distance overlays) or by
//     a defined type are deliberate choices and pass.
var IndexTypes = &analysis.Analyzer{
	Name:  "indextypes",
	Doc:   "flags int32 CSR indices widened into int map keys and map[int]float64 accumulators",
	Match: inCSRPkg,
	Run:   runIndexTypes,
}

// narrowInt reports whether t is a ≤32-bit integer (named or not).
func narrowInt(t types.Type) bool {
	switch underlyingBasic(t) {
	case types.Int8, types.Int16, types.Int32,
		types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

func runIndexTypes(pass *analysis.Pass) error {
	if !pass.Reportable {
		return nil // exports no facts
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				checkWidenedKey(pass, n)
			case *ast.MapType:
				checkIntFloatMap(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkWidenedKey implements Rule A.
func checkWidenedKey(pass *analysis.Pass, idx *ast.IndexExpr) {
	tv, ok := pass.TypesInfo.Types[idx.X]
	if !ok {
		return
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok || !isUnnamedBasic(m.Key(), types.Int) {
		return
	}
	conv, ok := ast.Unparen(idx.Index).(*ast.CallExpr)
	if !ok || len(conv.Args) != 1 {
		return
	}
	ctv, ok := pass.TypesInfo.Types[conv.Fun]
	if !ok || !ctv.IsType() || !isUnnamedBasic(ctv.Type, types.Int) {
		return
	}
	atv, ok := pass.TypesInfo.Types[conv.Args[0]]
	if !ok || atv.Value != nil || !narrowInt(atv.Type) {
		return
	}
	pass.Reportf(idx.Index.Pos(), "%s CSR index widened to an int map key: key the map by %s or index a dense slice instead", atv.Type, atv.Type)
}

// checkIntFloatMap implements Rule B.
func checkIntFloatMap(pass *analysis.Pass, mt *ast.MapType) {
	ktv, ok := pass.TypesInfo.Types[mt.Key]
	if !ok || !ktv.IsType() || !isUnnamedBasic(ktv.Type, types.Int) {
		return
	}
	vtv, ok := pass.TypesInfo.Types[mt.Value]
	if !ok || !vtv.IsType() || !isUnnamedBasic(vtv.Type, types.Float64) {
		return
	}
	pass.Reportf(mt.Pos(), "map[int]float64 over dense CSR indices: use a []float64 indexed by the id (smaller, faster, deterministic iteration) or key by the narrow index type")
}
