// Package linttest runs one analyzer over source fixtures and compares
// its diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A want comment expects one diagnostic on its own line whose message
// matches the (backquoted or quoted) regular expression; several
// expectations on one line are written as `// want "re1" "re2"`. Every
// reported diagnostic must be wanted and every want must be matched, so
// fixtures pin both the positive and the negative behavior of an
// analyzer.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// wantRe extracts the quoted expectations from a want comment.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// expectation is one want entry: a file line and a message pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture packages under srcRoot (each path names a
// directory srcRoot/<path> forming one package) and runs a against all
// of them, reporting on every named package. Findings and want comments
// must agree exactly.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadFixtures(srcRoot, paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	named := map[string]bool{}
	for _, p := range paths {
		named[p] = true
	}
	// The fixture run substitutes its own Match: fixture import paths are
	// not module paths, so the analyzer's real Match would skip them.
	// Match semantics themselves (facts from non-reportable packages) are
	// still exercised: dependency fixtures outside `paths` run fact-only.
	fixture := *a
	fixture.Match = func(path string) bool { return named[path] }
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{&fixture})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		if !named[pkg.PkgPath] {
			continue
		}
		for _, file := range pkg.Syntax {
			wants = append(wants, collectWants(t, file)...)
		}
	}

	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collectWants parses the want comments of one fixture file.
func collectWants(t *testing.T, file *ast.File) []*expectation {
	t.Helper()
	fset := analysis.Fset()
	var wants []*expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			matches := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
			if len(matches) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
			}
			for _, m := range matches {
				raw := m[1]
				if m[2] != "" {
					raw = m[2]
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants
}

// matchWant marks and returns whether some unmatched want covers f.
func matchWant(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Findings runs a over already-loaded packages and returns the findings
// as strings, for tests that assert on exact output (the smoke test).
func Findings(pkgs []*analysis.Package, analyzers []*analysis.Analyzer) ([]string, error) {
	fs, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprint(f)
	}
	return out, nil
}
