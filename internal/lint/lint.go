// Package lint holds remp-lint, the repo's own static-analysis suite.
// Each analyzer mechanizes an invariant the test suite can only probe
// statistically:
//
//   - determinism: resolution results must be byte-identical across
//     runs, shard layouts, async schedules and crash/recover cycles, so
//     map-iteration order and wall-clock/random sources must not reach
//     outputs in the deterministic packages.
//   - hotpath: functions annotated //remp:hotpath (the propagation and
//     selection inner loops gated at allocs_per_op=0 by the benchmark
//     trajectory) must not allocate per call, nor call module functions
//     that do.
//   - waldurability: every os.Rename follows the fsync-then-rename-
//     then-dir-sync protocol, and no file I/O runs while a store mutex
//     is held.
//   - indextypes: int32 CSR indices stay narrow — no widening into int
//     map keys, no map[int]float64 accumulators over dense ids.
//   - docs: every package carries a package doc comment, and every
//     exported symbol of the public remp package is documented — the
//     documentation floor ARCHITECTURE.md builds on.
//
// Run the suite with:
//
//	go run ./cmd/remp-lint ./...
//
// The //remp:hotpath contract: put the directive in the doc comment of
// a function whose steady-state cost must be allocation-free. The
// analyzer checks the function and every in-module function it
// statically calls (summaries propagate as facts, so cross-package
// callees are covered). Two idioms are exempt: allocations guarded by a
// len()/cap() condition (pool growth, amortized zero) and allocations
// the function returns (the caller's deliberate purchase).
//
// There is deliberately no suppression mechanism — no //nolint for
// these analyzers. A finding is either a real regression or an analyzer
// bug; fix whichever is broken.
package lint

import "repro/internal/lint/analysis"

// Analyzers returns the full remp-lint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		Hotpath,
		WALDurability,
		IndexTypes,
		Docs,
	}
}
