package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// WALDurability mechanizes the two rules the crash-recovery tests only
// probe statistically:
//
//  1. Atomic-rename protocol. Every os.Rename must sit inside the
//     tmp-write → fsync → rename → directory-fsync sequence: a
//     (*os.File).Sync call must precede the rename in the same function,
//     and after it the function must either sync a directory handle
//     directly (os.Open + Sync) or call a helper that does — helpers are
//     recognized by a fact exported from their defining package, so
//     DiskStore.syncDir satisfies the rule across files.
//
//  2. No file I/O under a store mutex. Acknowledged-answer latency is
//     bounded by one fsync, not by every other session's fsyncs queueing
//     behind a global lock. Within a region where a sync.Mutex or
//     sync.RWMutex is held (Lock/RLock without an intervening Unlock —
//     a deferred Unlock holds to function end), calls that write or
//     fsync files are flagged: (*os.File).Write/WriteString/Sync/
//     Truncate, the os package's mutating functions, and module
//     functions whose bodies (transitively) do such I/O. Closing a file
//     under the lock is allowed — the writer-map swap has to close the
//     handle it replaces.
//
// Calls through interfaces are exempt by construction (no static
// callee): the session persister journals through the Store interface
// while holding the session mutex, and that is the design — per-ID
// serialization — not a violation.
var WALDurability = &analysis.Analyzer{
	Name: "waldurability",
	Doc:  "enforces fsync-before-rename + dir-sync-after and forbids file I/O under store mutexes",
	// The linter's own loader holds a mutex across package loading by
	// design; it stores nothing durable and is out of scope.
	Match: func(path string) bool {
		return !strings.HasPrefix(path, "repro/internal/lint") &&
			!strings.HasPrefix(path, "repro/cmd/remp-lint")
	},
	Run: runWALDurability,
}

// dirSyncerFact marks a function that syncs a directory handle.
type dirSyncerFact struct{}

// fileIOFact marks a function whose body (transitively) writes or
// fsyncs files; pos locates the first such operation for diagnostics.
type fileIOFact struct {
	pos  token.Pos
	what string
}

// osFileMethodsIO are *os.File methods that touch the disk. Close is
// deliberately absent: swapping a WAL writer under the store mutex
// closes the displaced handle, and that is fine.
var osFileMethodsIO = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
	"Sync": true, "Truncate": true, "ReadAt": true, "Read": true,
}

// osPkgFuncsIO are package os functions that touch the filesystem.
var osPkgFuncsIO = map[string]bool{
	"Rename": true, "OpenFile": true, "Open": true, "Create": true,
	"CreateTemp": true, "WriteFile": true, "ReadFile": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	"ReadDir": true, "Truncate": true,
}

func runWALDurability(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	funcBodies(pass, func(fd *ast.FuncDecl) {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			decls[fn] = fd
		}
	})

	// Pass 1: facts. Which functions sync directories; which do file I/O.
	memo := map[*types.Func]*fileIOFact{}
	inProgress := map[*types.Func]bool{}
	var ioOf func(fn *types.Func) *fileIOFact
	ioOf = func(fn *types.Func) *fileIOFact {
		if f, ok := memo[fn]; ok {
			return f
		}
		if inProgress[fn] {
			return nil
		}
		fd, ok := decls[fn]
		if !ok {
			if f, ok := pass.ObjectFact(fn); ok {
				if io, ok := f.(*fileIOFact); ok {
					return io
				}
			}
			return nil
		}
		inProgress[fn] = true
		fact := firstFileIO(pass, fd, ioOf)
		delete(inProgress, fn)
		memo[fn] = fact
		return fact
	}
	for fn, fd := range decls {
		if syncsDir(pass, fd) {
			pass.ExportObjectFact(fn, &dirSyncerFact{})
		}
		if fact := ioOf(fn); fact != nil {
			if _, exists := pass.ObjectFact(fn); !exists {
				pass.ExportObjectFact(fn, fact)
			}
		}
	}

	// Pass 2: diagnostics.
	for _, fd := range decls {
		checkRenames(pass, fd)
		checkMutexIO(pass, fd, ioOf)
	}
	return nil
}

// isOsFileMethod reports whether call invokes the named method(s) on an
// *os.File receiver, returning the method name.
func osFileMethod(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "os" || named.Obj().Name() != "File" {
		return ""
	}
	return fn.Name()
}

// syncsDir reports whether fd both opens a path with os.Open and fsyncs
// an *os.File — the directory-sync idiom.
func syncsDir(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	opens, syncs := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgCall(pass, call, "os", "Open") {
			opens = true
		}
		if osFileMethod(pass, call) == "Sync" {
			syncs = true
		}
		return !(opens && syncs)
	})
	return opens && syncs
}

// isDirSyncCall reports whether call invokes a function carrying the
// dirSyncerFact (same package or imported).
func isDirSyncCall(pass *analysis.Pass, call *ast.CallExpr, local map[*types.Func]*ast.FuncDecl) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if f, ok := pass.ObjectFact(fn); ok {
		if _, ok := f.(*dirSyncerFact); ok {
			return true
		}
	}
	if fd, ok := local[fn]; ok {
		return syncsDir(pass, fd)
	}
	return false
}

// checkRenames enforces the fsync-before / dir-sync-after protocol
// around every os.Rename in fd.
func checkRenames(pass *analysis.Pass, fd *ast.FuncDecl) {
	local := map[*types.Func]*ast.FuncDecl{}
	funcBodies(pass, func(d *ast.FuncDecl) {
		if fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
			local[fn] = d
		}
	})
	var renames []*ast.CallExpr
	var fileSyncs, dirSyncs []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPkgCall(pass, call, "os", "Rename"):
			renames = append(renames, call)
		case osFileMethod(pass, call) == "Sync":
			fileSyncs = append(fileSyncs, call.Pos())
			dirSyncs = append(dirSyncs, call.Pos()) // an inline Open+Sync after the rename
		case isDirSyncCall(pass, call, local):
			dirSyncs = append(dirSyncs, call.Pos())
		}
		return true
	})
	for _, rn := range renames {
		if !anyBefore(fileSyncs, rn.Pos()) {
			pass.Reportf(rn.Pos(), "os.Rename without a preceding File.Sync: the data may not be on disk when the name flips; fsync the source file first")
		}
		if !anyAfter(dirSyncs, rn.End()) {
			pass.Reportf(rn.Pos(), "os.Rename not followed by a directory sync: the rename itself is not durable until the parent directory is fsync'd")
		}
	}
}

func anyBefore(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q < p {
			return true
		}
	}
	return false
}

func anyAfter(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q > p {
			return true
		}
	}
	return false
}

// firstFileIO finds the first disk-touching operation in fd, following
// static module calls.
func firstFileIO(pass *analysis.Pass, fd *ast.FuncDecl, ioOf func(*types.Func) *fileIOFact) *fileIOFact {
	var fact *fileIOFact
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fact != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m := osFileMethod(pass, call); m != "" && osFileMethodsIO[m] {
			fact = &fileIOFact{pos: call.Pos(), what: "File." + m}
			return false
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
			if fn.Pkg().Path() == "os" && osPkgFuncsIO[fn.Name()] {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					fact = &fileIOFact{pos: call.Pos(), what: "os." + fn.Name()}
					return false
				}
			}
			if inner := ioOf(fn); inner != nil {
				fact = &fileIOFact{pos: call.Pos(), what: fn.Name() + " (" + inner.what + ")"}
				return false
			}
		}
		return true
	})
	return fact
}

// lockEvent is one mutex operation or I/O call, ordered by position.
type lockEvent struct {
	pos   token.Pos
	kind  int // 0 lock, 1 unlock, 2 io
	mutex string
	what  string
}

// mutexRecv returns the diagnostic name of call's receiver when call is
// a method on sync.Mutex or sync.RWMutex, else "".
func mutexRecv(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return ""
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return exprString(sel.X)
	}
	return ""
}

// checkMutexIO flags disk I/O performed while a mutex is held, using a
// linear position-order scan of fd's body. The scan is an approximation
// — early-return Unlocks appear textually before later code, and a
// deferred Unlock correctly holds to the end — which matches how the
// store code is written and errs on neither side for straight-line
// lock regions.
func checkMutexIO(pass *analysis.Pass, fd *ast.FuncDecl, ioOf func(*types.Func) *fileIOFact) {
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs on another goroutine or at defer time
		case *ast.DeferStmt:
			return false // a deferred Unlock is not a release here
		case *ast.CallExpr:
			if name := mutexRecv(pass, n); name != "" {
				fn := calleeFunc(pass, n)
				if fn == nil {
					return true
				}
				switch fn.Name() {
				case "Lock", "RLock":
					events = append(events, lockEvent{pos: n.Pos(), kind: 0, mutex: name})
				case "Unlock", "RUnlock":
					events = append(events, lockEvent{pos: n.Pos(), kind: 1, mutex: name})
				}
				return true
			}
			if m := osFileMethod(pass, n); m != "" && osFileMethodsIO[m] {
				events = append(events, lockEvent{pos: n.Pos(), kind: 2, what: "File." + m})
				return true
			}
			if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil {
				if fn.Pkg().Path() == "os" && osPkgFuncsIO[fn.Name()] {
					events = append(events, lockEvent{pos: n.Pos(), kind: 2, what: "os." + fn.Name()})
				} else if inner := ioOf(fn); inner != nil {
					events = append(events, lockEvent{pos: n.Pos(), kind: 2, what: fn.Name() + ", which does " + inner.what})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[string]int{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.mutex]++
		case 1:
			if held[ev.mutex] > 0 {
				held[ev.mutex]--
			}
		case 2:
			var heldNames []string
			for mutex, depth := range held {
				if depth > 0 {
					heldNames = append(heldNames, mutex)
				}
			}
			if len(heldNames) > 0 {
				sort.Strings(heldNames)
				pass.Reportf(ev.pos, "%s while %s is held: file I/O under a store mutex serializes every session behind one lock; move the I/O outside the critical section", ev.what, strings.Join(heldNames, ", "))
			}
		}
	}
}
