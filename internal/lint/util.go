package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// funcBodies visits every function declaration with a body in the pass.
func funcBodies(pass *analysis.Pass, fn func(*ast.FuncDecl)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// calleeFunc resolves the static callee of a call: a package-level
// function or a method named through a concrete selector. Calls through
// interfaces, function values and builtins return nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isPkgCall reports whether call statically invokes a package-level
// function of pkgPath named one of names.
func isPkgCall(pass *analysis.Pass, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isMethodCall reports whether call statically invokes a method named
// name whose receiver's (pointer-stripped) type is recvPkg.recvType.
func isMethodCall(pass *analysis.Pass, call *ast.CallExpr, recvPkg, recvType, name string) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == recvPkg && named.Obj().Name() == recvType
}

// exprString renders a (selector/identifier) expression compactly, for
// naming mutexes and variables in diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expr"
	}
}

// hasDirective reports whether the doc comment carries the given
// //remp: directive (e.g. "remp:hotpath").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// underlyingBasic returns the basic kind of t's underlying type, or
// types.Invalid when t is not basic.
func underlyingBasic(t types.Type) types.BasicKind {
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Kind()
	}
	return types.Invalid
}

// isUnnamedBasic reports whether t is the predeclared basic type of the
// given kind (not a defined type over it — defined index types are a
// deliberate choice the analyzers respect).
func isUnnamedBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == kind
}
