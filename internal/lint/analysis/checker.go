package analysis

import (
	"go/types"
	"sort"
)

// Run executes each analyzer over pkgs (which must be in dependency
// order, as Load and LoadFixtures return them) and returns every finding
// sorted by file position. An analyzer runs on every package so its
// facts propagate bottom-up, but findings are kept only for packages the
// analyzer's Match accepts.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		facts := make(map[types.Object]any)
		for _, pkg := range pkgs {
			pkg := pkg
			pass := &Pass{
				Analyzer:   a,
				Fset:       loadFset,
				Files:      pkg.Syntax,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				Reportable: a.Match == nil || a.Match(pkg.PkgPath),
				facts:      facts,
				report: func(d Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      loadFset.Position(d.Pos),
						Message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
