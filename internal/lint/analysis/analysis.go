// Package analysis is a self-contained, stdlib-only re-implementation of
// the subset of golang.org/x/tools/go/analysis that remp-lint needs: an
// Analyzer runs once per package over parsed, fully type-checked syntax
// and reports position-accurate diagnostics; object facts computed for a
// dependency are visible when its dependents are analyzed.
//
// The repo deliberately carries no third-party modules, so the canonical
// x/tools framework is unavailable; this package keeps its shape (an
// Analyzer value with a Run func over a Pass) so the analyzers could be
// ported to the real driver mechanically if a dependency is ever
// admitted. The one intentional divergence: the whole module is loaded
// and checked in one process in dependency order, so facts are plain
// in-memory values keyed by types.Object rather than serialized across
// driver invocations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description shown by remp-lint -help.
	Doc string
	// Match restricts which packages the analyzer reports on; nil means
	// every package. Analyzers still run (and may export facts) on
	// non-matching packages — Run sees Pass.Reportable false there.
	Match func(pkgPath string) bool
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Reportable is false when the package is loaded only so facts can
	// propagate (a dependency outside Analyzer.Match): Report calls are
	// then dropped.
	Reportable bool

	report func(Diagnostic)
	facts  map[types.Object]any
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic (dropped when the package is fact-only).
func (p *Pass) Report(d Diagnostic) {
	if p.Reportable {
		p.report(d)
	}
}

// Reportf formats and emits a diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact associates a fact with obj for this analyzer. Facts
// survive into the passes of every package analyzed later in dependency
// order, which is how per-function summaries cross package boundaries.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if obj == nil {
		return
	}
	p.facts[obj] = fact
}

// ObjectFact returns the fact previously exported for obj by this
// analyzer, if any.
func (p *Pass) ObjectFact(obj types.Object) (any, bool) {
	f, ok := p.facts[obj]
	return f, ok
}

// Finding is a resolved diagnostic: the analyzer that produced it and the
// file position it anchors to.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}
