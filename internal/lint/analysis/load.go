package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Module reports whether the package belongs to the tree under
	// analysis (the repo module or a test fixture) rather than the
	// standard library.
	Module bool
}

// The loader keeps one process-global type-checking universe: a single
// FileSet and one *types.Package per import path. Sharing it across
// Load calls means the standard library is type-checked at most once per
// process (each analyzer test reuses it) and facts keyed by
// types.Object stay coherent within a run.
var (
	loadMu   sync.Mutex
	loadFset = token.NewFileSet()
	loadPkgs = map[string]*types.Package{"unsafe": types.Unsafe}
	// loadedModule caches non-standard packages with their syntax so
	// repeated Load/LoadFixtures calls in one process reuse them.
	loadedModule = map[string]*Package{}
)

// Fset returns the FileSet all loaded packages share.
func Fset() *token.FileSet { return loadFset }

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -json` for patterns in dir and returns the
// packages in dependency order (dependencies before dependents).
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-deps", "-json=Dir,ImportPath,Name,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO_ENABLED=0 resolves every standard-library package to its pure-Go
	// variant, so the whole dependency closure type-checks from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPkg
	for dec.More() {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// importerFor resolves imports against the global universe, retrying
// under the standard library's vendor prefix (go list reports net's
// golang.org/x/net/... dependencies as vendor/golang.org/x/net/...).
type universeImporter struct{}

func (universeImporter) Import(path string) (*types.Package, error) {
	if p, ok := loadPkgs[path]; ok {
		return p, nil
	}
	if p, ok := loadPkgs["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %s not yet type-checked", path)
}

// typeCheck parses and checks one package's files, registering the
// result in the universe. Module packages keep full bodies and syntax;
// standard-library packages are checked API-only (IgnoreFuncBodies) —
// their function bodies are never analyzed, only their types imported.
func typeCheck(importPath string, dir string, files []string, module bool) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(loadFset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer:         universeImporter{},
		IgnoreFuncBodies: !module,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(importPath, loadFset, syntax, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, firstErr)
	}
	loadPkgs[importPath] = tpkg
	lp := &Package{PkgPath: importPath, Syntax: syntax, Types: tpkg, TypesInfo: info, Module: module}
	if module {
		loadedModule[importPath] = lp
	}
	return lp, nil
}

// ensureListed type-checks every not-yet-loaded package in pkgs (given in
// dependency order), returning the newly loaded non-standard packages in
// order. Standard packages are registered in the universe only.
func ensureListed(pkgs []*listedPkg) ([]*Package, error) {
	var out []*Package
	for _, p := range pkgs {
		if _, ok := loadPkgs[p.ImportPath]; ok {
			if lp := loadedModule[p.ImportPath]; lp != nil {
				out = append(out, lp)
			}
			continue
		}
		lp, err := typeCheck(p.ImportPath, p.Dir, p.GoFiles, !p.Standard)
		if err != nil {
			return nil, err
		}
		if !p.Standard {
			out = append(out, lp)
		}
	}
	return out, nil
}

// Load lists patterns from dir (a module directory) and returns the
// matched packages plus their in-module dependencies, fully
// type-checked, in dependency order. Test files are not loaded: the
// invariants remp-lint enforces are about shipped code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return ensureListed(listed)
}

// LoadFixtures loads fixture packages for analyzer tests. Each path
// names a directory under srcRoot (srcRoot/<path>/*.go) forming one
// package whose import path is <path>. Imports resolve first against
// sibling fixture directories under srcRoot, then against the standard
// library. Returned packages are in dependency order, fixtures' deps
// included.
func LoadFixtures(srcRoot string, paths ...string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	var out []*Package
	seen := map[string]bool{}
	var load func(path string, stack []string) error
	load = func(path string, stack []string) error {
		if seen[path] {
			return nil
		}
		for _, s := range stack {
			if s == path {
				return fmt.Errorf("fixture import cycle: %v", append(stack, path))
			}
		}
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fixture package %s: %v", path, err)
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, e.Name())
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			return fmt.Errorf("fixture package %s: no Go files in %s", path, dir)
		}
		// Resolve imports before type-checking the fixture itself.
		var std []string
		for _, name := range files {
			f, err := parser.ParseFile(loadFset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if _, ok := loadPkgs[ipath]; ok {
					continue
				}
				if st, err := os.Stat(filepath.Join(srcRoot, filepath.FromSlash(ipath))); err == nil && st.IsDir() {
					if err := load(ipath, append(stack, path)); err != nil {
						return err
					}
				} else {
					std = append(std, ipath)
				}
			}
		}
		if len(std) > 0 {
			listed, err := goList(srcRoot, std)
			if err != nil {
				return err
			}
			if _, err := ensureListed(listed); err != nil {
				return err
			}
		}
		lp := loadedModule[path]
		if lp == nil {
			if lp, err = typeCheck(path, dir, files, true); err != nil {
				return err
			}
		}
		seen[path] = true
		out = append(out, lp)
		return nil
	}
	for _, p := range paths {
		if err := load(p, nil); err != nil {
			return nil, err
		}
	}
	return out, nil
}
