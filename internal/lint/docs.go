package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// Docs enforces the repository's documentation floor:
//
//   - Rule A: every package in the module carries a package doc comment
//     (on any one of its non-test files, per godoc convention). Seven
//     PRs of subsystems make the package comment the only place a
//     reader can get oriented without opening the code.
//
//   - Rule B: every exported symbol of the public remp package — the
//     one importers see — is documented: types, functions, methods on
//     exported types, and const/var declarations (a doc comment on the
//     enclosing grouped declaration covers its specs, as godoc renders
//     it).
//
// Internal packages only need the package comment; their exported
// symbols are module-private API and the existing review bar covers
// them. Test files never count: the analyzer sees the same GoFiles the
// go tool ships to importers.
var Docs = &analysis.Analyzer{
	Name: "docs",
	Doc:  "requires package doc comments module-wide and complete godoc on the public remp package",
	Run:  runDocs,
}

func runDocs(pass *analysis.Pass) error {
	if !pass.Reportable {
		return nil // exports no facts
	}
	hasDoc := false
	for _, file := range pass.Files {
		if file.Doc != nil && len(file.Doc.List) > 0 {
			hasDoc = true
			break
		}
	}
	if !hasDoc && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no package doc comment", pass.Pkg.Name())
	}
	// Rule B keys on the package name, not the import path, so the
	// fixture package (package remp under a fixture path) exercises it.
	if pass.Pkg.Name() != "remp" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			checkDeclDocs(pass, decl)
		}
	}
	return nil
}

// checkDeclDocs implements Rule B for one top-level declaration.
func checkDeclDocs(pass *analysis.Pass, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return
		}
		if d.Doc == nil || len(d.Doc.List) == 0 {
			pass.Reportf(d.Name.Pos(), "exported %s %s of package remp has no doc comment", funcKind(d), d.Name.Name)
		}
	case *ast.GenDecl:
		groupDoc := d.Doc != nil && len(d.Doc.List) > 0
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && (s.Doc == nil || len(s.Doc.List) == 0) {
					pass.Reportf(s.Name.Pos(), "exported type %s of package remp has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				if groupDoc || (s.Doc != nil && len(s.Doc.List) > 0) {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						pass.Reportf(name.Pos(), "exported %s of package remp has no doc comment", name.Name)
						break // one finding per spec line is enough
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether d is a plain function or a method on
// an exported type; methods on unexported types are not public API.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
