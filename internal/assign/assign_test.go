package assign

import (
	"math"
	"math/rand"
	"testing"
)

func TestHungarianSimple(t *testing.T) {
	// Clear diagonal optimum.
	w := [][]float64{
		{0.9, 0.1, 0.1},
		{0.1, 0.8, 0.1},
		{0.1, 0.1, 0.7},
	}
	got := Hungarian(w)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Hungarian = %v, want %v", got, want)
		}
	}
	if s := AssignmentWeight(w, got); math.Abs(s-2.4) > 1e-9 {
		t.Errorf("weight = %v, want 2.4", s)
	}
}

func TestHungarianAntiDiagonal(t *testing.T) {
	// Greedy row-max picks (0,0)=0.9 then blocks the better total. Optimal
	// is anti-diagonal: 0.8 + 0.85 = 1.65 > 0.9 + 0.1.
	w := [][]float64{
		{0.9, 0.8},
		{0.85, 0.1},
	}
	got := Hungarian(w)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Hungarian = %v, want [1 0]", got)
	}
}

func TestHungarianRectangular(t *testing.T) {
	// 2 rows, 3 columns: one column stays unused.
	w := [][]float64{
		{0.5, 0.9, 0.2},
		{0.6, 0.8, 0.1},
	}
	got := Hungarian(w)
	// Optimal: row0→col1 (0.9), row1→col0 (0.6) = 1.5.
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Hungarian = %v, want [1 0]", got)
	}

	// 3 rows, 2 columns: one row unmatched.
	w2 := [][]float64{
		{0.9, 0.1},
		{0.8, 0.7},
		{0.2, 0.6},
	}
	got2 := Hungarian(w2)
	unmatched := 0
	for _, j := range got2 {
		if j == -1 {
			unmatched++
		}
	}
	if unmatched != 1 {
		t.Fatalf("want exactly one unmatched row, got %v", got2)
	}
	if s := AssignmentWeight(w2, got2); math.Abs(s-1.6) > 1e-9 { // 0.9 + 0.7
		t.Errorf("weight = %v, want 1.6 (assignment %v)", s, got2)
	}
}

func TestHungarianZeroWeightUnassigned(t *testing.T) {
	w := [][]float64{
		{0, 0},
		{0, 0.5},
	}
	got := Hungarian(w)
	if got[0] != -1 {
		t.Errorf("zero-weight row should stay unassigned, got %v", got)
	}
	if got[1] != 1 {
		t.Errorf("row 1 should match col 1, got %v", got)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := Hungarian(nil); got != nil {
		t.Errorf("Hungarian(nil) = %v", got)
	}
}

// Property: Hungarian matches brute force on random small matrices.
func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, m)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(20)) / 10 // 0.0 .. 1.9
			}
		}
		got := Hungarian(w)
		gotW := AssignmentWeight(w, got)
		bestW := bruteForceAssignment(w)
		if math.Abs(gotW-bestW) > 1e-9 {
			t.Fatalf("iter %d: Hungarian weight %v, brute force %v, matrix %v", iter, gotW, bestW, w)
		}
		// 1:1 constraint: no column used twice.
		seen := map[int]bool{}
		for _, j := range got {
			if j == -1 {
				continue
			}
			if seen[j] {
				t.Fatalf("column %d assigned twice: %v", j, got)
			}
			seen[j] = true
		}
	}
}

func bruteForceAssignment(w [][]float64) float64 {
	n, m := len(w), len(w[0])
	best := 0.0
	var rec func(i int, used uint, sum float64)
	rec = func(i int, used uint, sum float64) {
		if sum > best {
			best = sum
		}
		if i == n {
			return
		}
		rec(i+1, used, sum) // leave row i unmatched
		for j := 0; j < m; j++ {
			if used&(1<<j) == 0 {
				rec(i+1, used|1<<j, sum+w[i][j])
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func TestHopcroftKarpSimple(t *testing.T) {
	// Perfect matching exists.
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	size, matchL := HopcroftKarp(3, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d, want 3 (match %v)", size, matchL)
	}
	seen := map[int]bool{}
	for i, v := range matchL {
		if v == -1 {
			t.Fatalf("left %d unmatched", i)
		}
		if seen[v] {
			t.Fatalf("right %d matched twice", v)
		}
		seen[v] = true
	}
}

func TestHopcroftKarpBottleneck(t *testing.T) {
	// All left vertices compete for right vertex 0.
	adj := [][]int{{0}, {0}, {0}}
	size, _ := HopcroftKarp(3, 1, adj)
	if size != 1 {
		t.Errorf("size = %d, want 1", size)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	size, matchL := HopcroftKarp(0, 0, nil)
	if size != 0 || len(matchL) != 0 {
		t.Errorf("empty graph: size=%d matchL=%v", size, matchL)
	}
	size, _ = HopcroftKarp(2, 2, [][]int{nil, nil})
	if size != 0 {
		t.Errorf("edgeless graph: size=%d", size)
	}
}

// Property: Hopcroft–Karp matches brute-force maximum matching on random
// small graphs.
func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		nl := 1 + rng.Intn(5)
		nr := 1 + rng.Intn(5)
		adj := make([][]int, nl)
		for i := range adj {
			for j := 0; j < nr; j++ {
				if rng.Intn(2) == 0 {
					adj[i] = append(adj[i], j)
				}
			}
		}
		size, _ := HopcroftKarp(nl, nr, adj)
		want := bruteForceMatching(nl, nr, adj)
		if size != want {
			t.Fatalf("iter %d: HK=%d brute=%d adj=%v", iter, size, want, adj)
		}
	}
}

func bruteForceMatching(nl, nr int, adj [][]int) int {
	best := 0
	var rec func(i int, used uint, count int)
	rec = func(i int, used uint, count int) {
		if count > best {
			best = count
		}
		if i == nl {
			return
		}
		rec(i+1, used, count)
		for _, j := range adj[i] {
			if used&(1<<j) == 0 {
				rec(i+1, used|1<<j, count+1)
			}
		}
	}
	rec(0, 0, 0)
	return best
}
