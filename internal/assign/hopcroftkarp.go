package assign

// HopcroftKarp computes a maximum-cardinality matching in a bipartite graph
// with nLeft left vertices and nRight right vertices; adj[i] lists the right
// neighbors of left vertex i. It returns the matching size and matchL where
// matchL[i] is the right vertex matched to left vertex i (or -1).
//
// By König's theorem the minimum vertex cover of a bipartite graph equals
// the maximum matching, which internal/eval uses to compute the minimal
// number of labels any monotone classifier must get wrong (Tao, PODS'18).
func HopcroftKarp(nLeft, nRight int, adj [][]int) (int, []int) {
	const inf = int(^uint(0) >> 1)
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	size := 0
	for bfs() {
		for u := 0; u < nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return size, matchL
}
