// Package assign provides combinatorial assignment algorithms used by the
// Remp pipeline: the Hungarian algorithm (Kuhn–Munkres) for maximum-weight
// 1:1 bipartite assignment (§IV-C attribute matching) and Hopcroft–Karp
// maximum-cardinality bipartite matching (used via König's theorem to
// compute the optimal-monotone-classifier error rate of Table V).
package assign

import "math"

// Hungarian solves the maximum-weight assignment problem on an n×m weight
// matrix (rows: side 1, columns: side 2). It returns rowMatch where
// rowMatch[i] is the column assigned to row i, or -1 if row i is left
// unassigned. Negative weights are treated as "better left unassigned":
// the algorithm pads the matrix to square with zero-weight dummy columns
// and never assigns a pair whose weight is below zero.
//
// Complexity O(max(n,m)^3), matching the paper's stated bound for 1:1
// attribute matching.
func Hungarian(weights [][]float64) []int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	m := len(weights[0])
	size := n
	if m > size {
		size = m
	}
	// Convert to a min-cost square matrix: cost = maxW − w, dummies cost
	// maxW (equivalent to weight 0).
	maxW := 0.0
	for i := range weights {
		for j := range weights[i] {
			if weights[i][j] > maxW {
				maxW = weights[i][j]
			}
		}
	}
	cost := make([][]float64, size)
	for i := range cost {
		cost[i] = make([]float64, size)
		for j := 0; j < size; j++ {
			w := 0.0
			if i < n && j < m {
				w = weights[i][j]
				if w < 0 {
					w = 0
				}
			}
			cost[i][j] = maxW - w
		}
	}

	// Jonker-style O(n^3) shortest augmenting path implementation of the
	// Hungarian algorithm with potentials (1-indexed internal arrays).
	u := make([]float64, size+1)
	v := make([]float64, size+1)
	p := make([]int, size+1) // p[j] = row matched to column j
	way := make([]int, size+1)
	for i := 1; i <= size; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, size+1)
		used := make([]bool, size+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= size; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= size; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowMatch := make([]int, n)
	for i := range rowMatch {
		rowMatch[i] = -1
	}
	for j := 1; j <= size; j++ {
		i := p[j] - 1
		if i < 0 || i >= n || j-1 >= m {
			continue
		}
		// Leave non-positive-weight assignments (dummies or sub-zero
		// originals) unmatched.
		if weights[i][j-1] > 0 {
			rowMatch[i] = j - 1
		}
	}
	return rowMatch
}

// AssignmentWeight sums the weights of an assignment returned by Hungarian.
func AssignmentWeight(weights [][]float64, rowMatch []int) float64 {
	total := 0.0
	for i, j := range rowMatch {
		if j >= 0 {
			total += weights[i][j]
		}
	}
	return total
}
