package session

import (
	"sync"
	"sync/atomic"

	"repro/internal/crowd"
	"repro/internal/pair"
)

// Cache shares crowd answers across the sessions of one namespace so a
// pair is answered by workers at most once, no matter how many concurrent
// sessions ask about it. An entry is either answered — the labels are
// served to every session that opens the pair — or reserved: some session
// has published the pair in a NextBatch and its answer is still pending,
// so sibling sessions withhold the pair from their own batches instead of
// re-posting it.
//
// Reservations are keyed by session ID and released when the answer
// arrives, when the owning session finishes, or when the Manager removes
// the owner — so an abandoned session cannot starve its siblings forever.
type Cache struct {
	mu           sync.Mutex
	answers      map[pair.Pair][]crowd.Label
	reserved     map[pair.Pair]string // pending pair → owning session ID
	hits         atomic.Int64
	misses       atomic.Int64
	reservations atomic.Int64
}

// NewCache returns an empty answer cache.
func NewCache() *Cache {
	return &Cache{
		answers:  make(map[pair.Pair][]crowd.Label),
		reserved: make(map[pair.Pair]string),
	}
}

// answer returns the cached labels for q, counting a hit.
func (c *Cache) answer(q pair.Pair) ([]crowd.Label, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	labels, ok := c.answers[q]
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return labels, ok
}

// put stores the answer for q (first answer wins, so every session sees
// the same labels) and clears any reservation.
func (c *Cache) put(q pair.Pair, labels []crowd.Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.answers[q]; !dup {
		c.answers[q] = labels
	}
	delete(c.reserved, q)
}

// reserve claims q for owner. It reports whether owner holds the claim and
// should publish the question; false means the pair is already answered
// (the caller picks it up on its next drain) or in flight in a sibling.
func (c *Cache) reserve(q pair.Pair, owner string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, answered := c.answers[q]; answered {
		return false
	}
	if held, ok := c.reserved[q]; ok {
		return held == owner
	}
	c.reserved[q] = owner
	c.reservations.Add(1)
	return true
}

// releaseOwned drops every reservation held by owner.
func (c *Cache) releaseOwned(owner string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for q, held := range c.reserved {
		if held == owner {
			delete(c.reserved, q)
		}
	}
}

// Len returns the number of answered pairs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.answers)
}

// Hits returns how many times a cached answer was served to a session.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns how many answer lookups found nothing cached.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Reservations returns how many question reservations were granted to
// sessions over the cache's lifetime (released reservations included).
func (c *Cache) Reservations() int64 { return c.reservations.Load() }
