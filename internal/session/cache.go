package session

import (
	"sync"
	"sync/atomic"

	"repro/internal/crowd"
	"repro/internal/deduce"
	"repro/internal/pair"
)

// Cache shares crowd answers across the sessions of one namespace so a
// pair is answered by workers at most once, no matter how many concurrent
// sessions ask about it. An entry is either answered — the labels are
// served to every session that opens the pair — or reserved: some session
// has published the pair in a NextBatch and its answer is still pending,
// so sibling sessions withhold the pair from their own batches instead of
// re-posting it.
//
// Reservations are keyed by session ID and released when the answer
// arrives, when the owning session finishes, or when the Manager removes
// the owner — so an abandoned session cannot starve its siblings forever.
//
// Keys are in the namespace's canonical KB orientation: the first session
// to attach registers its (KB1, KB2) names via orient, and a session
// prepared over the same dataset with the KBs swapped flips its pairs on
// every cache operation. The cache also maintains the namespace deduction
// store: every definitive answer is recorded as a transitive-closure fact,
// and Deduce-enabled sessions consult it (through deduce) before posting a
// question whose verdict the namespace's answers already imply.
type Cache struct {
	mu           sync.Mutex
	answers      map[pair.Pair][]crowd.Label
	reserved     map[pair.Pair]string // pending pair → owning session ID
	k1, k2       string               // canonical KB orientation ("" until a session attaches)
	oriented     bool
	ded          *deduce.Store
	hits         atomic.Int64
	misses       atomic.Int64
	reservations atomic.Int64
}

// NewCache returns an empty answer cache.
func NewCache() *Cache {
	return &Cache{
		answers:  make(map[pair.Pair][]crowd.Label),
		reserved: make(map[pair.Pair]string),
		ded:      deduce.New(deduce.OneToOne),
	}
}

// orient registers a session's KB orientation and reports whether the
// session must flip its pairs to match the cache's canonical orientation
// (its KB names are the reverse of the first-registered session's). A
// pipeline over different KBs than the namespace's shares keys blindly,
// as before — namespaces are a dataset convention the caller owns.
func (c *Cache) orient(k1, k2 string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.oriented {
		c.k1, c.k2, c.oriented = k1, k2, true
		return false
	}
	return k1 != k2 && k1 == c.k2 && k2 == c.k1
}

// answer returns the cached labels for q, counting a hit.
func (c *Cache) answer(q pair.Pair) ([]crowd.Label, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	labels, ok := c.answers[q]
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return labels, ok
}

// put stores the answer for q (first answer wins, so every session sees
// the same labels) and clears any reservation. Definitive answers are
// also recorded into the namespace deduction store: the verdict a
// prior-free truth inference assigns the labels becomes a
// transitive-closure fact siblings can deduce from. Synthesized deduced
// answers are not re-recorded (the fact that produced them is already in
// the store), and a contradictory fact from an inconsistent crowd is
// dropped — the store keeps the first fact, deterministically.
func (c *Cache) put(q pair.Pair, labels []crowd.Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.answers[q]; !dup {
		c.answers[q] = labels
		if v := answerVerdict(labels); v != deduce.Unknown {
			_ = c.ded.Record(q, v)
		}
	}
	delete(c.reserved, q)
}

// answerVerdict maps an answer's labels to the deduction fact they
// support: the verdict of truth inference from an uninformative prior.
// Unresolved label sets, empty answers and synthesized deduced answers
// record nothing.
func answerVerdict(labels []crowd.Label) deduce.Verdict {
	if len(labels) == 0 || labels[0].Worker.ID == DeducedWorkerID {
		return deduce.Unknown
	}
	switch crowd.Infer(0.5, labels, crowd.DefaultThresholds()).Verdict {
	case crowd.IsMatch:
		return deduce.Match
	case crowd.IsNonMatch:
		return deduce.NonMatch
	}
	return deduce.Unknown
}

// deduce returns the verdict the namespace's recorded answers imply for
// q, or deduce.Unknown. A hit counts into the deduction store's stats.
func (c *Cache) deduce(q pair.Pair) deduce.Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, _ := c.ded.Lookup(q)
	return v
}

// DeduceStats returns the namespace deduction-store counters.
func (c *Cache) DeduceStats() deduce.Stats { return c.ded.Stats() }

// reserve claims q for owner. It reports whether owner holds the claim and
// should publish the question; false means the pair is already answered
// (the caller picks it up on its next drain) or in flight in a sibling.
func (c *Cache) reserve(q pair.Pair, owner string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, answered := c.answers[q]; answered {
		return false
	}
	if held, ok := c.reserved[q]; ok {
		return held == owner
	}
	c.reserved[q] = owner
	c.reservations.Add(1)
	return true
}

// releaseOwned drops every reservation held by owner.
func (c *Cache) releaseOwned(owner string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for q, held := range c.reserved {
		if held == owner {
			delete(c.reserved, q)
		}
	}
}

// Len returns the number of answered pairs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.answers)
}

// Hits returns how many times a cached answer was served to a session.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns how many answer lookups found nothing cached.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Reservations returns how many question reservations were granted to
// sessions over the cache's lifetime (released reservations included).
func (c *Cache) Reservations() int64 { return c.reservations.Load() }
