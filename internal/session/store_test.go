package session

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestStoreContract pins the Store semantics both backends share.
func TestStoreContract(t *testing.T) {
	backends := []struct {
		name string
		open func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMemStore() }},
		{"disk", func(t *testing.T) Store {
			st, err := NewDiskStore(filepath.Join(t.TempDir(), "data"))
			if err != nil {
				t.Fatal(err)
			}
			return st
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			st := b.open(t)
			defer st.Close()

			if _, err := st.Get("nope"); !errors.Is(err, ErrStoreNotFound) {
				t.Fatalf("Get on empty store: %v, want ErrStoreNotFound", err)
			}
			if err := st.Create("s1", []byte("meta-1"), []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := st.Create("s1", nil, nil); !errors.Is(err, ErrStoreExists) {
				t.Fatalf("duplicate Create: %v, want ErrStoreExists", err)
			}
			recs := []AnswerRec{
				{U1: 1, U2: 2, Labels: []Label{{WorkerID: 0, Quality: 0.9, IsMatch: true}}},
				{U1: 3, U2: 4, Labels: []Label{{WorkerID: 1, Quality: 0.8, IsMatch: false}}},
				{U1: 5, U2: 6, Labels: nil},
			}
			for i, rec := range recs {
				if err := st.AppendAnswer("s1", i, rec); err != nil {
					t.Fatal(err)
				}
			}
			got, err := st.Get("s1")
			if err != nil {
				t.Fatal(err)
			}
			if string(got.Meta) != "meta-1" || string(got.Snapshot) != `{"v":1}` {
				t.Fatalf("Get returned meta %q snapshot %q", got.Meta, got.Snapshot)
			}
			if len(got.WAL) != len(recs) {
				t.Fatalf("WAL holds %d records, want %d", len(got.WAL), len(recs))
			}
			for i, w := range got.WAL {
				if w.Seq != i || w.Answer.U1 != recs[i].U1 || w.Answer.U2 != recs[i].U2 || len(w.Answer.Labels) != len(recs[i].Labels) {
					t.Fatalf("WAL[%d] = %+v, want seq %d answer %+v", i, w, i, recs[i])
				}
			}

			// Rotation replaces the snapshot and truncates the WAL.
			if err := st.PutSnapshot("s1", []byte(`{"v":2}`)); err != nil {
				t.Fatal(err)
			}
			got, err = st.Get("s1")
			if err != nil {
				t.Fatal(err)
			}
			if string(got.Snapshot) != `{"v":2}` || len(got.WAL) != 0 {
				t.Fatalf("after rotation: snapshot %q, %d WAL records", got.Snapshot, len(got.WAL))
			}
			// Appends continue after rotation with their running sequence.
			if err := st.AppendAnswer("s1", 3, recs[0]); err != nil {
				t.Fatal(err)
			}
			got, _ = st.Get("s1")
			if len(got.WAL) != 1 || got.WAL[0].Seq != 3 {
				t.Fatalf("post-rotation WAL = %+v", got.WAL)
			}

			ids, err := st.List()
			if err != nil || len(ids) != 1 || ids[0] != "s1" {
				t.Fatalf("List = %v, %v", ids, err)
			}
			if err := st.Delete("s1"); err != nil {
				t.Fatal(err)
			}
			if ids, _ := st.List(); len(ids) != 0 {
				t.Fatalf("List after Delete = %v", ids)
			}
			if err := st.Delete("s1"); err != nil {
				t.Fatalf("Delete of unknown id should be a no-op, got %v", err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := st.List(); !errors.Is(err, ErrStoreClosed) {
				t.Fatalf("List after Close: %v, want ErrStoreClosed", err)
			}
		})
	}
}

// TestDiskStoreUnsafeIDs proves hostile session IDs cannot escape the
// data directory and still round-trip through List.
func TestDiskStoreUnsafeIDs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ids := []string{"s1", "../../evil", "a/b", "@hex-looking", "job 42", "s1.bak"}
	for _, id := range ids {
		if err := st.Create(id, nil, []byte("{}")); err != nil {
			t.Fatalf("Create(%q): %v", id, err)
		}
	}
	got, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("List = %v, want %d ids", got, len(ids))
	}
	for _, id := range ids {
		if _, err := st.Get(id); err != nil {
			t.Errorf("Get(%q): %v", id, err)
		}
	}
	// Nothing may exist outside the store root.
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "evil")); !os.IsNotExist(err) {
		t.Fatal("a session ID escaped the data directory")
	}
}

// TestDiskStoreTornFinalLine proves a torn trailing WAL line (a kill
// mid-write, before the fsync and the ack) is dropped, while a
// malformed line before valid ones is reported as corruption.
func TestDiskStoreTornFinalLine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Create("s1", nil, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendAnswer("s1", 0, AnswerRec{U1: 1, U2: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	wal := filepath.Join(dir, "sessions", "s1", walName(1))
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":1,"answer":{"u1":3,`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec, err := st2.Get("s1")
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if len(rec.WAL) != 1 || rec.WAL[0].Seq != 0 {
		t.Fatalf("recovered WAL = %+v, want the one intact record", rec.WAL)
	}

	// A malformed line with valid records after it is corruption.
	data, _ := os.ReadFile(wal)
	if err := os.WriteFile(wal, append([]byte("garbage\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Get("s1"); err == nil {
		t.Fatal("mid-file corruption went undetected")
	}
}

// TestManagerDiskRoundTrip is the happy-path durability test: sessions
// journaled to a disk store, the process "restarts" (new store + new
// manager), recovery rebuilds them mid-run and they finish with results
// byte-identical to the synchronous run.
func TestManagerDiskRoundTrip(t *testing.T) {
	k1, k2, gold := bookWorld(6, 31)
	want := core.Prepare(k1, k2, testConfig(nil)).Run(core.NewOracleAsker(gold.IsMatch))
	dir := filepath.Join(t.TempDir(), "data")

	prep := func(id string, meta []byte) (*core.Prepared, string, error) {
		if string(meta) != "spec-blob" {
			t.Fatalf("recovery got meta %q", meta)
		}
		return core.Prepare(k1, k2, testConfig(nil)), "books", nil
	}

	// First incarnation: two sessions, a few answers each (rotateEvery 3
	// exercises snapshot rotation mid-run), then an unflushed "crash"
	// (the store is simply abandoned, like a killed process).
	st, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManagerStore(st, 3)
	var firstIDs []string
	for i := 0; i < 2; i++ {
		s, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", []byte("spec-blob"))
		if err != nil {
			t.Fatal(err)
		}
		firstIDs = append(firstIDs, s.ID())
		for _, q := range s.NextBatch() {
			if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.PersistErr(); err != nil {
			t.Fatal(err)
		}
	}

	// Second incarnation.
	st2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManagerStore(st2, 3)
	recovered, err := mgr2.Recover(prep)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %v, want both of %v", recovered, firstIDs)
	}
	for _, id := range recovered {
		s, ok := mgr2.Get(id)
		if !ok {
			t.Fatalf("recovered session %s not registered", id)
		}
		for !s.Done() {
			batch := s.NextBatch()
			if len(batch) == 0 {
				// Open questions in flight in the sibling; it is driven to
				// completion below, but here both sessions share every answer
				// through the cache, so an empty batch means the sibling's
				// answers will drain in.
				if s.Done() {
					break
				}
				continue
			}
			for _, q := range batch {
				if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
					t.Fatal(err)
				}
			}
		}
		assertResultsIdentical(t, want, s.Result())
	}
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third incarnation: both sessions are done; recovery must restore
	// them as done from their flushed snapshots alone.
	st3, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr3 := NewManagerStore(st3, 3)
	recovered, err = mgr3.Recover(prep)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %v after flush", recovered)
	}
	for _, id := range recovered {
		s, _ := mgr3.Get(id)
		if !s.Done() {
			t.Fatalf("session %s recovered un-done after a clean shutdown", id)
		}
		assertResultsIdentical(t, want, s.Result())
	}
	if err := mgr3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestManagerCreateSkipsDormantStoreIDs is the regression test for a
// store that still holds sessions the manager never recovered (failed
// recovery, or OpenManager with recovery skipped): Create must step
// over their IDs instead of failing with ErrStoreExists.
func TestManagerCreateSkipsDormantStoreIDs(t *testing.T) {
	k1, k2, _ := bookWorld(4, 71)
	st := NewMemStore()
	for _, id := range []string{"s1", "s2"} {
		if err := st.Create(id, nil, []byte(`{"dormant":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	mgr := NewManagerStore(st, 0)
	s, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", nil)
	if err != nil {
		t.Fatalf("Create over dormant store records: %v", err)
	}
	if s.ID() == "s1" || s.ID() == "s2" {
		t.Fatalf("Create reused dormant ID %q", s.ID())
	}
	if _, err := st.Get(s.ID()); err != nil {
		t.Fatalf("created session not persisted: %v", err)
	}
	if rec, err := st.Get("s1"); err != nil || string(rec.Snapshot) != `{"dormant":true}` {
		t.Fatalf("dormant record disturbed: %v %q", err, rec.Snapshot)
	}
}
