package session

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/kb"
	"repro/internal/pair"
)

// bookWorld builds a small two-KB fixture: authors linked to their books,
// with one isolated pair per cluster so every pipeline stage has work.
func bookWorld(n int, seed int64) (*kb.KB, *kb.KB, *pair.Gold) {
	rng := rand.New(rand.NewSource(seed))
	k1 := kb.New("left")
	k2 := kb.New("right")
	name1, name2 := k1.AddAttr("name"), k2.AddAttr("label")
	wrote1, wrote2 := k1.AddRel("wrote"), k2.AddRel("authorOf")

	var gold []pair.Pair
	add := func(base string, perturb bool) (kb.EntityID, kb.EntityID) {
		u1 := k1.AddEntity("l:" + base)
		u2 := k2.AddEntity("r:" + base)
		l2 := base
		if perturb && rng.Intn(3) == 0 {
			l2 = base + " II"
		}
		k1.SetLabel(u1, base)
		k2.SetLabel(u2, l2)
		k1.AddAttrTriple(u1, name1, base)
		k2.AddAttrTriple(u2, name2, l2)
		gold = append(gold, pair.Pair{U1: u1, U2: u2})
		return u1, u2
	}
	for i := 0; i < n; i++ {
		a1, a2 := add(fmt.Sprintf("author %d", i), false)
		for b := 0; b < 2; b++ {
			b1, b2 := add(fmt.Sprintf("book %d %d", i, b), true)
			k1.AddRelTriple(a1, wrote1, b1)
			k2.AddRelTriple(a2, wrote2, b2)
		}
		add(fmt.Sprintf("editor %d", i), false)
	}
	return k1, k2, pair.NewGold(gold)
}

// oracleLabels reproduces core.OracleAsker's labels exactly, so a session
// answered with them must match a synchronous oracle run byte for byte.
func oracleLabels(gold *pair.Gold, q pair.Pair) []crowd.Label {
	return []crowd.Label{{Worker: crowd.Worker{ID: 0, Quality: 0.999}, IsMatch: gold.IsMatch(q)}}
}

func testConfig(mod func(*core.Config)) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mu = 4
	if mod != nil {
		mod(&cfg)
	}
	return cfg
}

func assertResultsIdentical(t *testing.T, want, got *core.Result) {
	t.Helper()
	for _, s := range []struct {
		name string
		x, y pair.Set
	}{
		{"Matches", want.Matches, got.Matches},
		{"Confirmed", want.Confirmed, got.Confirmed},
		{"Propagated", want.Propagated, got.Propagated},
		{"IsolatedPredicted", want.IsolatedPredicted, got.IsolatedPredicted},
		{"NonMatches", want.NonMatches, got.NonMatches},
	} {
		if s.x.Len() != s.y.Len() {
			t.Fatalf("%s size differs: want %d, got %d", s.name, s.x.Len(), s.y.Len())
		}
		for _, p := range s.x.Sorted() {
			if !s.y.Has(p) {
				t.Fatalf("%s: %v present in one result only", s.name, p)
			}
		}
	}
	if want.Questions != got.Questions {
		t.Fatalf("Questions differ: want %d, got %d", want.Questions, got.Questions)
	}
	if want.Deduced != got.Deduced {
		t.Fatalf("Deduced differ: want %d, got %d", want.Deduced, got.Deduced)
	}
	if want.Loops != got.Loops {
		t.Fatalf("Loops differ: want %d, got %d", want.Loops, got.Loops)
	}
}

// driveShuffled answers every published batch with oracle labels delivered
// in a shuffled order, exercising the out-of-order buffering path.
func driveShuffled(t *testing.T, s *Session, gold *pair.Gold, rng *rand.Rand) {
	t.Helper()
	for !s.Done() {
		batch := s.NextBatch()
		if len(batch) == 0 {
			t.Fatalf("session %s awaiting answers but published an empty batch", s.ID())
		}
		rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
		for _, q := range batch {
			if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
				t.Fatalf("Deliver(%s): %v", q.ID, err)
			}
		}
	}
}

// TestSessionMatchesSynchronousRun is the acceptance equivalence test: a
// session fed answers out of order must produce a byte-identical Result to
// the synchronous Run, across configuration variants.
func TestSessionMatchesSynchronousRun(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"default", nil},
		{"budgeted", func(c *core.Config) { c.Budget = 9; c.Mu = 3 }},
		{"max-loops", func(c *core.Config) { c.MaxLoops = 2 }},
		{"hybrid", func(c *core.Config) { c.Hybrid = true }},
		{"no-reestimate", func(c *core.Config) { c.Reestimate = false }},
		{"exhaust", func(c *core.Config) { c.ExhaustBudget = true; c.Budget = 15 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k1, k2, gold := bookWorld(6, 21)

			sync := core.Prepare(k1, k2, testConfig(tc.mod)).Run(core.NewOracleAsker(gold.IsMatch))

			s := New("s1", core.Prepare(k1, k2, testConfig(tc.mod)), nil)
			driveShuffled(t, s, gold, rand.New(rand.NewSource(7)))
			assertResultsIdentical(t, sync, s.Result())
			if sync.Matches.Len() == 0 {
				t.Fatal("fixture resolved nothing; the equivalence is vacuous")
			}
		})
	}
}

// TestSessionRejectsBadDeliveries pins the Deliver error contract.
func TestSessionRejectsBadDeliveries(t *testing.T) {
	k1, k2, gold := bookWorld(4, 22)
	s := New("s1", core.Prepare(k1, k2, testConfig(nil)), nil)

	batch := s.NextBatch()
	if len(batch) == 0 {
		t.Fatal("no opening batch")
	}
	if err := s.Deliver("not-an-id", FromCrowd(oracleLabels(gold, batch[0].Pair))); err == nil {
		t.Error("malformed question id accepted")
	}
	if err := s.Deliver("999999-999999", FromCrowd(oracleLabels(gold, batch[0].Pair))); err == nil {
		t.Error("answer for a question outside the open batch accepted")
	}
	if err := s.Deliver(batch[0].ID, nil); err == nil {
		t.Error("answer without labels accepted")
	}
	last := batch[len(batch)-1]
	if err := s.Deliver(last.ID, FromCrowd(oracleLabels(gold, last.Pair))); err != nil {
		t.Fatalf("out-of-order delivery rejected: %v", err)
	}
	if err := s.Deliver(last.ID, FromCrowd(oracleLabels(gold, last.Pair))); err == nil {
		t.Error("duplicate answer accepted")
	}
}

// TestSnapshotRestoreMidRun snapshots a session halfway (with an answer
// buffered out of order), restores it onto a fresh pipeline, finishes both
// and requires byte-identical results — the process-restart scenario.
func TestSnapshotRestoreMidRun(t *testing.T) {
	k1, k2, gold := bookWorld(6, 23)
	want := core.Prepare(k1, k2, testConfig(nil)).Run(core.NewOracleAsker(gold.IsMatch))

	s := New("job-42", core.Prepare(k1, k2, testConfig(nil)), nil)
	// Answer the first batch fully, then the second batch's last question
	// only, so the snapshot carries both applied and pending answers.
	first := s.NextBatch()
	for _, q := range first {
		if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
			t.Fatal(err)
		}
	}
	second := s.NextBatch()
	if len(second) > 1 {
		last := second[len(second)-1]
		if err := s.Deliver(last.ID, FromCrowd(oracleLabels(gold, last.Pair))); err != nil {
			t.Fatal(err)
		}
	}

	data, err := EncodeSnapshot(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) > 1 && len(snap.Pending) == 0 {
		t.Fatal("snapshot lost the buffered out-of-order answer")
	}

	restored, err := Restore(core.Prepare(k1, k2, testConfig(nil)), nil, snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.ID() != "job-42" {
		t.Errorf("restored id %q", restored.ID())
	}
	gotQ, _ := restored.Progress()
	wantQ, _ := s.Progress()
	if gotQ != wantQ {
		t.Fatalf("restored session at %d questions, want %d", gotQ, wantQ)
	}
	driveShuffled(t, restored, gold, rand.New(rand.NewSource(9)))
	assertResultsIdentical(t, want, restored.Result())
}

// TestRestoreRejectsForeignSnapshot proves divergence detection: a
// snapshot replayed against a different dataset must fail, not silently
// produce garbage.
func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	k1, k2, gold := bookWorld(5, 24)
	s := New("s1", core.Prepare(k1, k2, testConfig(nil)), nil)
	driveShuffled(t, s, gold, rand.New(rand.NewSource(3)))
	snap := s.Snapshot()
	if len(snap.Applied) == 0 {
		t.Fatal("no applied answers to replay")
	}

	o1, o2, _ := bookWorld(3, 99)
	if _, err := Restore(core.Prepare(o1, o2, testConfig(nil)), nil, snap); err == nil {
		t.Fatal("snapshot replayed cleanly against a foreign dataset")
	}
}

// countingOracle hands out oracle answers while counting how many times
// each pair is asked externally — the crowd-side cost.
type countingOracle struct {
	mu    sync.Mutex
	gold  *pair.Gold
	asked map[pair.Pair]int
}

func (o *countingOracle) answer(q pair.Pair) []crowd.Label {
	o.mu.Lock()
	o.asked[q]++
	o.mu.Unlock()
	return oracleLabels(o.gold, q)
}

// TestManagerConcurrentSessionsShareAnswers is the acceptance concurrency
// test: ≥4 sessions over the same dataset run in parallel under -race, the
// shared cache must keep every pair's external answer count at exactly 1,
// and every session must still match the synchronous result exactly.
func TestManagerConcurrentSessionsShareAnswers(t *testing.T) {
	const nSessions = 4
	k1, k2, gold := bookWorld(6, 25)
	want := core.Prepare(k1, k2, testConfig(nil)).Run(core.NewOracleAsker(gold.IsMatch))

	mgr := NewManager()
	oracle := &countingOracle{gold: gold, asked: map[pair.Pair]int{}}
	sessions := make([]*Session, nSessions)
	for i := range sessions {
		var err error
		sessions[i], err = mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := len(mgr.IDs()); got != nSessions {
		t.Fatalf("manager tracks %d sessions, want %d", got, nSessions)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for !s.Done() {
				batch := s.NextBatch()
				if len(batch) == 0 {
					// Every open question is in flight in a sibling
					// session; yield and poll again.
					runtime.Gosched()
					continue
				}
				for _, q := range batch {
					if err := s.Deliver(q.ID, FromCrowd(oracle.answer(q.Pair))); err != nil {
						errs <- fmt.Errorf("session %s: %w", s.ID(), err)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for q, n := range oracle.asked {
		if n != 1 {
			t.Errorf("pair %v answered externally %d times; the cache failed to suppress the duplicate", q, n)
		}
	}
	if len(oracle.asked) != want.Questions {
		t.Errorf("external answers for %d distinct pairs, want %d (one synchronous run's worth)",
			len(oracle.asked), want.Questions)
	}
	hits := mgr.Cache("books").Hits()
	if wantHits := int64((nSessions - 1) * want.Questions); hits != wantHits {
		t.Errorf("cache served %d answers, want %d (%d sibling sessions × %d questions)",
			hits, wantHits, nSessions-1, want.Questions)
	}
	for _, s := range sessions {
		assertResultsIdentical(t, want, s.Result())
	}
}

// TestManagerCreateSkipsRestoredIDs is the ID-collision regression test:
// restoring a snapshot whose ID lands in the counter's path must not be
// clobbered by a later Create.
func TestManagerCreateSkipsRestoredIDs(t *testing.T) {
	k1, k2, _ := bookWorld(4, 27)
	mgr := NewManager()

	donor := New("s2", core.Prepare(k1, k2, testConfig(nil)), nil)
	restored, err := mgr.Restore(core.Prepare(k1, k2, testConfig(nil)), "books", nil, donor.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	a, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == "s2" || b.ID() == "s2" {
		t.Fatalf("Create reused the restored ID: %q, %q", a.ID(), b.ID())
	}
	got, ok := mgr.Get("s2")
	if !ok || got != restored {
		t.Fatal("restored session was clobbered")
	}
	if ids := mgr.IDs(); len(ids) != 3 {
		t.Fatalf("manager tracks %v, want 3 sessions", ids)
	}
}

// TestManagerRemoveReleasesReservations proves an abandoned session cannot
// starve a sibling: its reserved questions become postable again.
func TestManagerRemoveReleasesReservations(t *testing.T) {
	k1, k2, _ := bookWorld(5, 26)
	mgr := NewManager()
	a, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", nil)
	if err != nil {
		t.Fatal(err)
	}

	batchA := a.NextBatch()
	if len(batchA) == 0 {
		t.Fatal("session a has no batch")
	}
	// Identically prepared sessions open the same batch, so b now sees all
	// of its opening questions reserved by a.
	if got := b.NextBatch(); len(got) != 0 {
		t.Fatalf("session b was handed %d questions a already has in flight", len(got))
	}
	if _, err := mgr.Remove(a.ID()); err != nil {
		t.Fatal(err)
	}
	if got := b.NextBatch(); len(got) != len(batchA) {
		t.Fatalf("after removing a, session b got %d questions, want %d", len(got), len(batchA))
	}
}
