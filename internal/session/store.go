package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Store is the durable face of a session: an event-sourced snapshot plus
// an append-only write-ahead log of the answers delivered since that
// snapshot was taken. The Manager journals every applied answer through
// AppendAnswer and periodically rotates the snapshot with PutSnapshot,
// which also lets the store discard the WAL prefix the snapshot now
// covers. Recovery reads the record back with Get and replays
// snapshot + WAL through the session replay/divergence machinery.
//
// The store treats meta and snapshot as opaque bytes: meta is whatever
// the owner needs to re-prepare the session's pipeline (the server
// persists its CreateRequest JSON there), snapshot is the session
// package's own JSON form (EncodeSnapshot). WAL records carry a
// per-session delivery sequence number so recovery can skip records
// that a crash left behind after they were already folded into a
// snapshot.
//
// Implementations must be safe for concurrent use across sessions;
// calls for one session ID are serialized by the owning session's lock.
type Store interface {
	// Create registers a new session with its pipeline meta and initial
	// snapshot. It fails with ErrStoreExists when the ID is taken.
	Create(id string, meta, snapshot []byte) error
	// AppendAnswer durably appends one delivered answer. seq is the
	// 0-based position of the answer in the session's delivery order.
	AppendAnswer(id string, seq int, rec AnswerRec) error
	// PutSnapshot atomically replaces the session's snapshot. The WAL
	// records folded into the snapshot may be discarded afterwards.
	PutSnapshot(id string, snapshot []byte) error
	// Get returns the stored record of a session (ErrStoreNotFound when
	// the ID is unknown).
	Get(id string) (*Record, error)
	// List returns the stored session IDs in deterministic order.
	List() ([]string, error)
	// Delete forgets a session. Deleting an unknown ID is a no-op.
	Delete(id string) error
	// Close releases the store's resources. Using the store afterwards
	// is an error.
	Close() error
}

// Record is the stored state of one session.
type Record struct {
	// Meta is the opaque pipeline spec persisted at Create.
	Meta []byte
	// Snapshot is the session snapshot persisted last (EncodeSnapshot).
	Snapshot []byte
	// WAL holds the answers appended since, in append order.
	WAL []WALRec
}

// WALRec is one appended answer with its delivery sequence number.
type WALRec struct {
	Seq    int       `json:"seq"`
	Answer AnswerRec `json:"answer"`
}

// Store errors.
var (
	// ErrStoreExists is returned by Create for an ID already stored.
	ErrStoreExists = errors.New("session: store already holds id")
	// ErrStoreNotFound is returned for operations on unknown IDs.
	ErrStoreNotFound = errors.New("session: store has no record of id")
	// ErrStoreClosed is returned for operations on a closed store.
	ErrStoreClosed = errors.New("session: store is closed")
)

// MemStore is the in-memory Store: the durable interface over a plain
// map. It gives no crash safety — it exists so the persistence path has
// a single shape regardless of backend, and so tests can exercise the
// journal/rotate/recover cycle without touching disk.
type MemStore struct {
	mu     sync.Mutex
	recs   map[string]*Record
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: make(map[string]*Record)}
}

// Create implements Store.
func (m *MemStore) Create(id string, meta, snapshot []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	if _, ok := m.recs[id]; ok {
		return fmt.Errorf("%w: %q", ErrStoreExists, id)
	}
	m.recs[id] = &Record{
		Meta:     append([]byte(nil), meta...),
		Snapshot: append([]byte(nil), snapshot...),
	}
	return nil
}

// AppendAnswer implements Store.
func (m *MemStore) AppendAnswer(id string, seq int, rec AnswerRec) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	r, ok := m.recs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrStoreNotFound, id)
	}
	labels := append([]Label(nil), rec.Labels...)
	r.WAL = append(r.WAL, WALRec{Seq: seq, Answer: AnswerRec{U1: rec.U1, U2: rec.U2, Labels: labels}})
	return nil
}

// PutSnapshot implements Store.
func (m *MemStore) PutSnapshot(id string, snapshot []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	r, ok := m.recs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrStoreNotFound, id)
	}
	r.Snapshot = append([]byte(nil), snapshot...)
	r.WAL = nil
	return nil
}

// Get implements Store.
func (m *MemStore) Get(id string) (*Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrStoreClosed
	}
	r, ok := m.recs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrStoreNotFound, id)
	}
	out := &Record{
		Meta:     append([]byte(nil), r.Meta...),
		Snapshot: append([]byte(nil), r.Snapshot...),
		WAL:      append([]WALRec(nil), r.WAL...),
	}
	return out, nil
}

// List implements Store.
func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrStoreClosed
	}
	out := make([]string, 0, len(m.recs))
	for id := range m.recs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (m *MemStore) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	delete(m.recs, id)
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
