package session

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/pair"
)

// SnapshotVersion is the current snapshot wire format.
const SnapshotVersion = 1

// Snapshot is a session's durable state: an event log rather than a state
// dump. Because the loop applies answers in a deterministic order fixed by
// question selection, replaying Applied through a freshly prepared
// pipeline reconstructs the exact machine state — engine balls, damped
// priors, resolved sets and all — without serializing any of it. Pending
// holds answers that had arrived out of order and were still buffered.
// The snapshot does not carry the dataset or the options; the caller must
// re-prepare the same pipeline (same KBs, same configuration) for Restore.
// Shards and ShardSizes fingerprint the pipeline's shard assignment so a
// replay against a differently partitioned pipeline is rejected up front
// instead of diverging mid-replay.
type Snapshot struct {
	Version int         `json:"version"`
	ID      string      `json:"id"`
	Done    bool        `json:"done"`
	Applied []AnswerRec `json:"applied"`
	Pending []AnswerRec `json:"pending,omitempty"`
	// Shards is the shard count of the pipeline the session ran over
	// (1 = unsharded; 0 in snapshots written before sharding existed,
	// which skips the check on restore).
	Shards int `json:"shards,omitempty"`
	// ShardSizes is the per-shard vertex count, recorded when Shards > 1.
	ShardSizes []int `json:"shard_sizes,omitempty"`
}

// AnswerRec is one recorded answer in wire form.
type AnswerRec struct {
	U1     kb.EntityID `json:"u1"`
	U2     kb.EntityID `json:"u2"`
	Labels []Label     `json:"labels"`
}

func toRecs(answers []core.Answer) []AnswerRec {
	out := make([]AnswerRec, len(answers))
	for i, a := range answers {
		out[i] = AnswerRec{U1: a.Pair.U1, U2: a.Pair.U2, Labels: FromCrowd(a.Labels)}
	}
	return out
}

// Snapshot captures the session's current state. The session keeps
// running; snapshots are cheap (one record per answered question).
func (s *Session) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked is Snapshot for callers already holding s.mu (the
// persister's rotation runs inside the journal hook).
func (s *Session) snapshotLocked() *Snapshot {
	snap := &Snapshot{
		Version: SnapshotVersion,
		ID:      s.id,
		Done:    s.loop.Done(),
		Applied: toRecs(s.loop.History()),
		Pending: toRecs(s.loop.Buffered()),
		Shards:  s.loop.NumShards(),
	}
	if snap.Shards > 1 {
		snap.ShardSizes = s.loop.ShardSizes()
	}
	return snap
}

// MarshalJSON-friendly helpers for callers that move snapshots as bytes.

// EncodeSnapshot serializes a snapshot to JSON.
func EncodeSnapshot(snap *Snapshot) ([]byte, error) { return json.Marshal(snap) }

// DecodeSnapshot parses a JSON snapshot and checks its version.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("session: malformed snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("session: unsupported snapshot version %d (want %d)", snap.Version, SnapshotVersion)
	}
	return &snap, nil
}

// Restore rebuilds a session from its snapshot by replaying the answer log
// through a freshly prepared pipeline. The Prepared must be built from the
// same dataset and configuration the session was created with; a replayed
// answer that does not belong to the open batch it lands in proves the
// pipeline diverged and fails the restore. Replayed answers repopulate the
// shared cache (when present), so restoring after a process restart also
// restores cross-session suppression.
func Restore(p *core.Prepared, cache *Cache, snap *Snapshot) (*Session, error) {
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("session: unsupported snapshot version %d (want %d)", snap.Version, SnapshotVersion)
	}
	if snap.ID == "" {
		return nil, fmt.Errorf("session: snapshot has no session id")
	}
	if snap.Shards > 0 && p.NumShards() != snap.Shards {
		return nil, fmt.Errorf("session: snapshot was taken over %d shards but the re-prepared pipeline has %d (same dataset, options and shard count are required)",
			snap.Shards, p.NumShards())
	}
	if len(snap.ShardSizes) > 0 {
		sizes := p.ShardSizes()
		for i, want := range snap.ShardSizes {
			if i >= len(sizes) || sizes[i] != want {
				return nil, fmt.Errorf("session: snapshot shard assignment diverged: shard %d holds %v vertices, snapshot recorded %v",
					i, sizes, snap.ShardSizes)
			}
		}
	}
	s := &Session{id: snap.ID, loop: p.NewLoop(), cache: cache, k1: p.K1.Name(), k2: p.K2.Name()}
	if cache != nil {
		s.flip = cache.orient(s.k1, s.k2)
	}
	for i, rec := range append(append([]AnswerRec{}, snap.Applied...), snap.Pending...) {
		q := pair.Pair{U1: rec.U1, U2: rec.U2}
		labels := ToCrowd(rec.Labels)
		if err := s.loop.Deliver(q, labels); err != nil {
			return nil, fmt.Errorf("session: snapshot replay diverged at answer %d: %w", i, err)
		}
		if cache != nil {
			cache.put(s.canon(q), labels)
		}
	}
	if snap.Done && !s.loop.Done() {
		return nil, fmt.Errorf("session: snapshot replay diverged: snapshot is done but the replayed loop is still %s", s.loop.State())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainCache()
	return s, nil
}
