package session

import (
	"fmt"
	"sync/atomic"

	"repro/internal/crowd"
	"repro/internal/pair"
)

// DefaultRotateEvery is how many journaled answers a session accumulates
// in its WAL before the persister folds them into a fresh snapshot.
const DefaultRotateEvery = 32

// persister journals one session's applied answers into a Store and
// periodically rotates its snapshot. All fields except fails are
// guarded by the owning session's mutex: journal and rotate only run
// with s.mu held.
type persister struct {
	store       Store
	id          string
	rotateEvery int
	seq         int   // next delivery sequence number to append
	dead        bool  // appends stopped after a failure (fail-stop)
	err         error // sticky first failure
	fails       *atomic.Int64
}

// fail records a persistence failure: the first one sticks, every one
// counts.
func (p *persister) fail(err error) {
	if p.err == nil {
		p.err = err
	}
	if p.fails != nil {
		p.fails.Add(1)
	}
}

// journal appends one accepted answer. On an append failure the
// persister goes fail-stop: the durable state stays a consistent prefix
// of the delivery sequence and later answers are not journaled (a WAL
// with a gap would not replay). Rotation failures are not fatal — the
// old snapshot plus the intact WAL still recover — so journaling
// continues past them. Callers hold the session mutex.
func (p *persister) journal(s *Session, q pair.Pair, labels []crowd.Label) {
	if p.dead {
		return
	}
	rec := AnswerRec{U1: q.U1, U2: q.U2, Labels: FromCrowd(labels)}
	if err := p.store.AppendAnswer(p.id, p.seq, rec); err != nil {
		p.dead = true
		p.fail(fmt.Errorf("session %s: journaling answer %d: %w", p.id, p.seq, err))
		return
	}
	p.seq++
	if p.seq%p.rotateEvery == 0 || s.loop.Done() {
		if err := p.rotate(s); err != nil {
			p.fail(err)
		}
	}
}

// rotate folds the session's current state into a fresh snapshot,
// letting the store discard the WAL it covers. Callers hold the session
// mutex.
func (p *persister) rotate(s *Session) error {
	if p.dead {
		return p.err
	}
	data, err := EncodeSnapshot(s.snapshotLocked())
	if err != nil {
		return fmt.Errorf("session %s: encoding snapshot: %w", p.id, err)
	}
	if err := p.store.PutSnapshot(p.id, data); err != nil {
		return fmt.Errorf("session %s: rotating snapshot: %w", p.id, err)
	}
	return nil
}
