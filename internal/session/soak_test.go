package session

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pair"
)

// TestManagerSoakAnswerOnce is the concurrency soak: waves of sessions
// across two namespaces over the same dataset, each driven by its own
// goroutine with shuffled out-of-order delivery, one session per
// namespace abandoned mid-run. The invariant under test — the answer
// cache / reservation contract — is that no pair is ever answered by
// the external crowd twice within a namespace, while the namespaces
// stay fully isolated from each other (the same pair is asked once in
// each). Sized down under -short; run with -race.
func TestManagerSoakAnswerOnce(t *testing.T) {
	waves, perWave := 3, 6
	if testing.Short() {
		waves, perWave = 1, 4
	}
	namespaces := []string{"alpha", "beta"}

	k1, k2, gold := bookWorld(6, 61)
	want := core.Prepare(k1, k2, testConfig(nil)).Run(core.NewOracleAsker(gold.IsMatch))
	mgr := NewManager()

	oracles := map[string]*countingOracle{}
	for _, ns := range namespaces {
		oracles[ns] = &countingOracle{gold: gold, asked: map[pair.Pair]int{}}
	}

	drive := func(s *Session, ns string, seed int64, abandonAfter int) error {
		rng := rand.New(rand.NewSource(seed))
		answered := 0
		for !s.Done() {
			batch := s.NextBatch()
			if len(batch) == 0 {
				// Every open question is in flight in a sibling; yield.
				runtime.Gosched()
				continue
			}
			rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
			for _, q := range batch {
				if abandonAfter > 0 && answered >= abandonAfter {
					// Walk away mid-batch: Remove must release this
					// session's reservations so siblings can finish.
					_, err := mgr.Remove(s.ID())
					return err
				}
				if err := s.Deliver(q.ID, FromCrowd(oracles[ns].answer(q.Pair))); err != nil {
					return fmt.Errorf("session %s: %w", s.ID(), err)
				}
				answered++
			}
		}
		return nil
	}

	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		errs := make(chan error, len(namespaces)*(perWave+1))
		type job struct {
			s       *Session
			ns      string
			abandon int
		}
		var jobs []job
		for _, ns := range namespaces {
			for i := 0; i < perWave; i++ {
				s, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), ns, nil)
				if err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs, job{s: s, ns: ns})
			}
			// One doomed session per namespace per wave, abandoned after
			// a couple of answers while holding live reservations.
			s, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), ns, nil)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{s: s, ns: ns, abandon: 2})
		}
		for ji, j := range jobs {
			wg.Add(1)
			go func(j job, seed int64) {
				defer wg.Done()
				if err := drive(j.s, j.ns, seed, j.abandon); err != nil {
					errs <- err
				}
			}(j, int64(wave*100+ji))
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if j.abandon > 0 {
				continue
			}
			if !j.s.Done() {
				t.Fatalf("wave %d: session %s not done", wave, j.s.ID())
			}
			assertResultsIdentical(t, want, j.s.Result())
		}
	}

	for _, ns := range namespaces {
		o := oracles[ns]
		o.mu.Lock()
		for q, n := range o.asked {
			if n != 1 {
				t.Errorf("namespace %s: pair %v answered externally %d times; the reservation invariant broke", ns, q, n)
			}
		}
		asked := len(o.asked)
		o.mu.Unlock()
		if asked != want.Questions {
			t.Errorf("namespace %s: %d distinct pairs asked, want %d (one synchronous run's worth)", ns, asked, want.Questions)
		}
	}
}
