package session

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestShardedSessionMatchesUnsharded drives a sharded session with oracle
// labels delivered out of order and checks the result against a
// monolithic synchronous run — the session-level face of the sharding
// equivalence guarantee.
func TestShardedSessionMatchesUnsharded(t *testing.T) {
	k1, k2, gold := bookWorld(8, 51)

	cfgMono := testConfig(func(c *core.Config) { c.Shards = 1 })
	ref := core.Prepare(k1, k2, cfgMono).Run(core.NewOracleAsker(gold.IsMatch))

	cfgShard := testConfig(func(c *core.Config) { c.Shards = 4 })
	p := core.Prepare(k1, k2, cfgShard)
	if p.NumShards() < 2 {
		t.Fatalf("fixture produced %d shards, want ≥ 2", p.NumShards())
	}
	s := New("sharded", p, nil)
	for !s.Done() {
		batch := s.NextBatch()
		if len(batch) == 0 {
			t.Fatal("session stalled")
		}
		// Deliver in reverse order to exercise the buffering path on the
		// sharded machine.
		for i := len(batch) - 1; i >= 0; i-- {
			if err := s.Deliver(batch[i].ID, FromCrowd(oracleLabels(gold, batch[i].Pair))); err != nil {
				t.Fatal(err)
			}
			if s.Done() {
				break
			}
		}
	}
	assertResultsIdentical(t, ref, s.Result())
	if got := s.Shards(); got != p.NumShards() {
		t.Errorf("Shards() = %d, want %d", got, p.NumShards())
	}
}

// TestSnapshotRecordsShardAssignment pins the snapshot fingerprint: the
// shard count and sizes are recorded, restore succeeds against an
// identically sharded pipeline, and a different shard count is rejected
// up front with a descriptive error.
func TestSnapshotRecordsShardAssignment(t *testing.T) {
	k1, k2, gold := bookWorld(6, 52)
	cfg := testConfig(func(c *core.Config) { c.Shards = 3 })
	p := core.Prepare(k1, k2, cfg)
	if p.NumShards() < 2 {
		t.Fatalf("fixture produced %d shards", p.NumShards())
	}
	s := New("snap", p, nil)
	// Answer one batch so the snapshot carries history.
	batch := s.NextBatch()
	if len(batch) == 0 {
		t.Fatal("no questions published")
	}
	for _, q := range batch {
		if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
			t.Fatal(err)
		}
		if s.Done() {
			break
		}
	}
	snap := s.Snapshot()
	if snap.Shards != p.NumShards() {
		t.Errorf("snapshot.Shards = %d, want %d", snap.Shards, p.NumShards())
	}
	if len(snap.ShardSizes) != p.NumShards() {
		t.Errorf("snapshot.ShardSizes = %v, want %d entries", snap.ShardSizes, p.NumShards())
	}

	// Same shard count: restore replays cleanly.
	p2 := core.Prepare(k1, k2, cfg)
	restored, err := Restore(p2, nil, snap)
	if err != nil {
		t.Fatalf("restore against identical pipeline: %v", err)
	}
	q1, l1 := s.Progress()
	q2, l2 := restored.Progress()
	if q1 != q2 || l1 != l2 {
		t.Errorf("restored progress %d/%d, want %d/%d", q2, l2, q1, l1)
	}

	// Different shard count: rejected before any replay.
	cfgMono := testConfig(func(c *core.Config) { c.Shards = 1 })
	p3 := core.Prepare(k1, k2, cfgMono)
	if _, err := Restore(p3, nil, snap); err == nil {
		t.Fatal("restore accepted a snapshot from a differently sharded pipeline")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Errorf("divergence error does not mention shards: %v", err)
	}

	// Legacy snapshots (no shard fingerprint) still restore.
	legacy := *snap
	legacy.Shards = 0
	legacy.ShardSizes = nil
	if _, err := Restore(core.Prepare(k1, k2, cfg), nil, &legacy); err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
}
