// Package session turns the core human–machine loop into resumable,
// concurrent resolution sessions — the asynchronous shape the paper's
// crowdsourcing setting actually has (§VII): a batch of µ questions is
// posted to a crowd platform and the answers trickle back out of order,
// possibly across process restarts.
//
// A Session wraps one core.Loop with locking, stable question IDs and an
// event-sourced JSON snapshot: the applied answers are recorded in
// application order, so Restore replays them through a freshly prepared
// pipeline and reaches a byte-identical state. A Manager runs many
// sessions concurrently and shares answers across sessions through a
// per-namespace Cache with reservations, so a pair answered (or merely in
// flight) in one session is never re-posted by another.
package session

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/deduce"
	"repro/internal/kb"
	"repro/internal/pair"
)

// State names the externally visible states of a Session; they mirror
// core.LoopState.
type State = core.LoopState

// Session states.
const (
	// StateAwaiting means a question batch is published and at least one
	// answer is outstanding (possibly reserved by a sibling session).
	StateAwaiting = core.LoopAwaiting
	// StateDone means the result is final.
	StateDone = core.LoopDone
)

// ErrNoLabels rejects an answer delivered without any worker label.
var ErrNoLabels = errors.New("session: answer carries no labels")

// Question is one published crowd question: a stable ID plus the entity
// pair it asks about.
type Question struct {
	// ID is the stable wire identifier, "u1-u2".
	ID string
	// Pair is the entity pair the question asks about.
	Pair pair.Pair
}

// QuestionID formats the stable wire identifier of a pair.
func QuestionID(q pair.Pair) string {
	return strconv.Itoa(int(q.U1)) + "-" + strconv.Itoa(int(q.U2))
}

// ParseQuestionID inverts QuestionID.
func ParseQuestionID(id string) (pair.Pair, error) {
	u1s, u2s, ok := strings.Cut(id, "-")
	if !ok {
		return pair.Pair{}, fmt.Errorf("session: malformed question id %q (want \"u1-u2\")", id)
	}
	u1, err1 := strconv.Atoi(u1s)
	u2, err2 := strconv.Atoi(u2s)
	if err1 != nil || err2 != nil || u1 < 0 || u2 < 0 {
		return pair.Pair{}, fmt.Errorf("session: malformed question id %q (want \"u1-u2\")", id)
	}
	return pair.Pair{U1: kb.EntityID(u1), U2: kb.EntityID(u2)}, nil
}

// DeducedWorkerID is the reserved worker ID of answers synthesized by
// the namespace deduction tier rather than labeled by a crowd worker.
// Real workers use non-negative IDs by convention.
const DeducedWorkerID = -1

// SourceDeduced marks a wire label synthesized by answer deduction.
const SourceDeduced = "deduced"

// deducedQuality is the quality of a synthesized label: high enough
// that one label resolves any clamped prior past either inference
// threshold, so a deduced verdict is always accepted by the loop.
const deducedQuality = 0.999

// Label is one worker's answer in wire form; it is the JSON face of
// crowd.Label.
type Label struct {
	// WorkerID identifies the worker (opaque to the pipeline). The
	// reserved DeducedWorkerID marks deduction-synthesized answers.
	WorkerID int `json:"worker"`
	// Quality is the worker's answer quality λ ∈ (0,1], the weight truth
	// inference gives the label (Eq. 17).
	Quality float64 `json:"quality"`
	// IsMatch is the worker's verdict.
	IsMatch bool `json:"match"`
	// Source is "deduced" for labels synthesized by the namespace
	// deduction tier, empty for crowd labels. It is derived from
	// WorkerID, so it survives wire and snapshot round-trips without
	// widening the pipeline's label type.
	Source string `json:"source,omitempty"`
}

// ToCrowd converts wire labels to the pipeline's label type.
func ToCrowd(labels []Label) []crowd.Label {
	out := make([]crowd.Label, len(labels))
	for i, l := range labels {
		out[i] = crowd.Label{Worker: crowd.Worker{ID: l.WorkerID, Quality: l.Quality}, IsMatch: l.IsMatch}
	}
	return out
}

// FromCrowd converts pipeline labels to wire form, restoring the
// "deduced" source marker on synthesized labels.
func FromCrowd(labels []crowd.Label) []Label {
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{WorkerID: l.Worker.ID, Quality: l.Worker.Quality, IsMatch: l.IsMatch}
		if l.Worker.ID == DeducedWorkerID {
			out[i].Source = SourceDeduced
		}
	}
	return out
}

// deducedLabels synthesizes the answer for a deduced verdict: one label
// from the reserved deduction worker, strong enough to resolve the pair
// the way the namespace's recorded answers imply.
func deducedLabels(v deduce.Verdict) []crowd.Label {
	return []crowd.Label{{
		Worker:  crowd.Worker{ID: DeducedWorkerID, Quality: deducedQuality},
		IsMatch: v == deduce.Match,
	}}
}

// Session is one resumable resolution job: a core.Loop behind a mutex,
// with cache-mediated answer sharing and an event log for snapshots. All
// methods are safe for concurrent use.
type Session struct {
	mu      sync.Mutex
	id      string
	loop    *core.Loop
	cache   *Cache     // nil when the session does not share answers
	persist *persister // nil when the session is not journaled to a Store
	k1, k2  string     // KB names of the session's pipeline orientation
	flip    bool       // pipeline orientation is the reverse of the cache's
}

// New starts a session over a freshly prepared pipeline. The Prepared must
// be exclusive to this session (the loop mutates its probabilistic graph).
// cache may be nil; when set, the session first drains any answers the
// cache already holds for its opening batch.
func New(id string, p *core.Prepared, cache *Cache) *Session {
	s := &Session{id: id, loop: p.NewLoop(), cache: cache, k1: p.K1.Name(), k2: p.K2.Name()}
	if cache != nil {
		s.flip = cache.orient(s.k1, s.k2)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainCache()
	return s
}

// canon maps a pipeline pair to the cache's canonical KB orientation: a
// session whose pipeline was prepared with the namespace's KBs swapped
// flips each pair, so an answer recorded by one orientation is found by
// the other. canon is its own inverse, so it also maps cached pairs back
// into the session's pipeline orientation.
func (s *Session) canon(q pair.Pair) pair.Pair {
	if !s.flip {
		return q
	}
	return pair.Pair{U1: q.U2, U2: q.U1}
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// State returns the session's current state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loop.State()
}

// Done reports whether the result is final.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loop.Done()
}

// Progress returns the questions asked and loops executed so far.
func (s *Session) Progress() (questions, loops int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.loop.Result()
	return res.Questions, res.Loops
}

// Deduced returns how many selected questions were answered by
// transitive-closure deduction instead of the crowd so far (always 0
// unless the pipeline was prepared with Config.Deduce).
func (s *Session) Deduced() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loop.Result().Deduced
}

// Shards returns the shard count of the session's pipeline (1 when the
// pipeline is monolithic).
func (s *Session) Shards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loop.NumShards()
}

// NextBatch publishes the questions the crowd should answer now: the open
// batch minus answers already known to the shared cache (delivered
// immediately) and minus questions a sibling session already has in
// flight. An empty batch with State still StateAwaiting means every open
// question is reserved elsewhere — poll again once siblings deliver.
func (s *Session) NextBatch() []Question {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainCache()
	if s.loop.Done() {
		return nil
	}
	var out []Question
	for _, q := range s.loop.Batch() {
		if s.loop.Deduces(q) {
			// The loop's own recorded answers already imply q's verdict;
			// the drain will skip it once the apply cursor reaches it, so
			// posting it would buy a crowd answer that gets discarded.
			continue
		}
		if s.cache != nil && !s.cache.reserve(s.canon(q), s.id) {
			continue // answered or posted by a sibling; drained next round
		}
		out = append(out, Question{ID: QuestionID(q), Pair: q})
	}
	return out
}

// Deliver accepts the labels for one open question, identified by its wire
// ID, in any order. The answer is shared through the cache (when present)
// so sibling sessions never re-post the pair. A wire answer must carry at
// least one label; use DeliverPair to feed an empty (all workers timed
// out) answer in process.
func (s *Session) Deliver(id string, labels []Label) error {
	q, err := ParseQuestionID(id)
	if err != nil {
		return err
	}
	if len(labels) == 0 {
		return fmt.Errorf("%w: %v", ErrNoLabels, q)
	}
	return s.DeliverPair(q, ToCrowd(labels))
}

// DeliverPair is Deliver for callers that already hold the pair and
// pipeline labels (the in-process Asker adapter). An empty label slice is
// allowed and leaves the question's posterior at its prior — exactly how
// the synchronous loop treats an Asker that returns no labels.
func (s *Session) DeliverPair(q pair.Pair, labels []crowd.Label) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.loop.Deliver(q, labels); err != nil {
		if s.loop.WasDeduced(q) {
			// A late crowd answer for a question deduction already
			// skipped: the pair is resolved, so the answer is swallowed
			// rather than rejected. It is not journaled (it is not part
			// of the loop's replayable history), but it is shared through
			// the cache so siblings still benefit from the crowd's work.
			if s.cache != nil {
				s.cache.put(s.canon(q), labels)
				s.drainCache()
			}
			return nil
		}
		return err
	}
	s.journalLocked(q, labels)
	if s.cache != nil {
		s.cache.put(s.canon(q), labels)
	}
	s.drainCache()
	return nil
}

// journalLocked appends one accepted answer to the session's durable
// journal. Persistence is fail-stop, not fail-loud: a journal error
// freezes the durable state at the last consistent prefix (recorded as
// the sticky PersistErr) while the in-memory session keeps running, so
// a broken disk degrades durability rather than corrupting it or
// rejecting answers the loop already applied. Callers hold s.mu.
func (s *Session) journalLocked(q pair.Pair, labels []crowd.Label) {
	if s.persist != nil {
		s.persist.journal(s, q, labels)
	}
}

// PersistErr returns the sticky journal error, if persistence has
// failed; the session's durable state is frozen at the answer before
// the first failure.
func (s *Session) PersistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist == nil {
		return nil
	}
	return s.persist.err
}

// Flush rotates the session's durable snapshot to its current state so
// recovery needs no WAL replay — the graceful-shutdown path.
func (s *Session) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist == nil {
		return nil
	}
	return s.persist.rotate(s)
}

// attachPersist starts journaling the session to pers, whose sequence
// counter picks up after the answers already delivered (all covered by
// the snapshot persisted alongside this attach).
func (s *Session) attachPersist(pers *persister) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pers.seq = len(s.loop.History()) + len(s.loop.Buffered())
	s.persist = pers
}

// deleteFromStore removes the session's durable record under the
// session lock — the Store contract serializes per-ID calls through
// this lock, so no in-flight journal append can race the delete — and
// detaches the persister on success so no later delivery journals into
// the void (which would trip the persist-failure health signal).
func (s *Session) deleteFromStore(store Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := store.Delete(s.id); err != nil {
		return err
	}
	s.persist = nil
	return nil
}

// Result returns a detached copy of the current result; final once Done.
func (s *Session) Result() *core.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.loop.Result()
	return &core.Result{
		Matches:           res.Matches.Clone(),
		Confirmed:         res.Confirmed.Clone(),
		Propagated:        res.Propagated.Clone(),
		IsolatedPredicted: res.IsolatedPredicted.Clone(),
		NonMatches:        res.NonMatches.Clone(),
		Questions:         res.Questions,
		Deduced:           res.Deduced,
		Loops:             res.Loops,
	}
}

// joinCache attaches a session recovered without a cache to its
// namespace cache: its own answers are shared out, and answers siblings
// contributed while it was down are drained in. Recovery keeps the
// cache detached until the WAL replay is complete — otherwise answers
// recovered from sibling sessions would advance the loop past its own
// durable state and the WAL suffix would no longer apply.
func (s *Session) joinCache(c *Cache) {
	s.flip = c.orient(s.k1, s.k2)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
	for _, a := range s.loop.History() {
		c.put(s.canon(a.Pair), a.Labels)
	}
	for _, a := range s.loop.Buffered() {
		c.put(s.canon(a.Pair), a.Labels)
	}
	s.drainCache()
}

// drainCache delivers every cached answer for the open batch, repeating as
// deliveries advance the loop into new batches, and releases this
// session's reservations once the loop finishes. For a Deduce-enabled
// session, the namespace deduction tier sits behind the answer cache:
// a question no sibling has answered directly, but whose verdict the
// namespace's recorded answers imply transitively, is answered with a
// synthesized label through the same delivery path — journaled, shared
// and replayed exactly like a crowd answer. Questions the loop's own
// facts already imply are left alone (the drain skips them without any
// answer, exactly as the synchronous driver would). Callers hold s.mu.
func (s *Session) drainCache() {
	if s.cache == nil {
		return
	}
outer:
	for !s.loop.Done() {
		for _, q := range s.loop.Batch() {
			if s.loop.Deduces(q) {
				continue // the loop will skip q by itself
			}
			labels, ok := s.cache.answer(s.canon(q))
			if !ok && s.loop.DeduceEnabled() {
				if v := s.cache.deduce(s.canon(q)); v != deduce.Unknown {
					labels, ok = deducedLabels(v), true
					// Share the synthesized answer like a crowd answer, so
					// siblings drain it instead of re-deducing or re-posting.
					s.cache.put(s.canon(q), labels)
				}
			}
			if ok {
				if err := s.loop.Deliver(q, labels); err != nil {
					panic(err) // q came from Batch; delivery cannot fail
				}
				s.journalLocked(q, labels)
				continue outer // the batch may have changed entirely
			}
		}
		return
	}
	s.cache.releaseOwned(s.id)
}
