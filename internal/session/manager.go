package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// ErrSessionExists is returned by Manager.Restore when the snapshot's ID
// is already registered.
var ErrSessionExists = errors.New("session: id already exists")

// Manager owns a set of concurrent sessions and the per-namespace answer
// caches they share. Sessions created in the same namespace — the same
// dataset, by convention — exchange answers through one Cache; distinct
// namespaces are fully isolated (entity IDs are only meaningful within one
// dataset). The Manager also owns one core.Scheduler: every session's
// sharded pipeline draws its shard workers from this shared pool, so any
// number of concurrent sessions fan out at most GOMAXPROCS shard tasks
// machine-wide. All methods are safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	caches   map[string]*Cache
	nextID   int
	sched    *core.Scheduler
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		sessions: make(map[string]*Session),
		caches:   make(map[string]*Cache),
		sched:    core.NewScheduler(0),
	}
}

// Scheduler returns the manager's shared shard-work scheduler. Callers
// preparing pipelines for managed sessions should place it in
// core.Config.Sched so shard fan-out is bounded across all sessions.
func (m *Manager) Scheduler() *core.Scheduler { return m.sched }

// Cache returns the namespace's shared answer cache, creating it on first
// use.
func (m *Manager) Cache(namespace string) *Cache {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheLocked(namespace)
}

func (m *Manager) cacheLocked(namespace string) *Cache {
	c, ok := m.caches[namespace]
	if !ok {
		c = NewCache()
		m.caches[namespace] = c
	}
	return c
}

// Create starts a new session in the namespace and registers it under a
// fresh ID. The Prepared must be exclusive to the session.
func (m *Manager) Create(p *core.Prepared, namespace string) *Session {
	m.mu.Lock()
	// Skip counter values colliding with restored-session IDs, and claim
	// the slot before releasing the lock so a concurrent Restore cannot
	// race onto the same ID.
	var id string
	for {
		m.nextID++
		id = fmt.Sprintf("s%d", m.nextID)
		if _, taken := m.sessions[id]; !taken {
			break
		}
	}
	m.sessions[id] = nil
	cache := m.cacheLocked(namespace)
	m.mu.Unlock()
	// New drains the cache outside the manager lock: it can run long and
	// only touches the session's own state plus the cache's own mutex.
	s := New(id, p, cache)
	m.mu.Lock()
	m.sessions[id] = s
	m.mu.Unlock()
	return s
}

// Restore rebuilds a snapshotted session in the namespace and registers it
// under its snapshot ID. It fails when the ID is already live.
func (m *Manager) Restore(p *core.Prepared, namespace string, snap *Snapshot) (*Session, error) {
	m.mu.Lock()
	if _, exists := m.sessions[snap.ID]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, snap.ID)
	}
	cache := m.cacheLocked(namespace)
	m.mu.Unlock()
	s, err := Restore(p, cache, snap)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.sessions[snap.ID]; exists {
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, snap.ID)
	}
	m.sessions[snap.ID] = s
	return s, nil
}

// Get returns the session registered under id. A slot claimed by an
// in-flight Create (nil placeholder) is not yet visible.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if s == nil {
		return nil, false
	}
	return s, ok
}

// Remove forgets the session and releases any question reservations it
// still holds, so sibling sessions can re-post its in-flight pairs.
func (m *Manager) Remove(id string) {
	m.mu.Lock()
	s := m.sessions[id]
	if s == nil {
		// Unknown ID or a Create still in flight; leave claimed slots be.
		m.mu.Unlock()
		return
	}
	delete(m.sessions, id)
	m.mu.Unlock()
	if s.cache != nil {
		s.cache.releaseOwned(s.ID())
	}
}

// IDs returns the live session IDs in deterministic order.
func (m *Manager) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sessions))
	for id, s := range m.sessions {
		if s != nil {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
