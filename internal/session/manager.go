package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/deduce"
	"repro/internal/pair"
)

// ErrSessionExists is returned by Manager.Restore when the snapshot's ID
// is already registered.
var ErrSessionExists = errors.New("session: id already exists")

// ErrPersist marks errors from the durable layer (the session Store):
// the session state is fine, the storage is not. Servers should map it
// to a 5xx, not a client error.
var ErrPersist = errors.New("session: persistence failure")

// Manager owns a set of concurrent sessions and the per-namespace answer
// caches they share. Sessions created in the same namespace — the same
// dataset, by convention — exchange answers through one Cache; distinct
// namespaces are fully isolated (entity IDs are only meaningful within one
// dataset). The Manager also owns one core.Scheduler: every session's
// sharded pipeline draws its shard workers from this shared pool, so any
// number of concurrent sessions fan out at most GOMAXPROCS shard tasks
// machine-wide.
//
// Every managed session is journaled into the Manager's Store: the
// session's pipeline meta and an initial snapshot at creation, then one
// WAL append per applied answer, with the snapshot rotated every
// rotateEvery answers. Recover rebuilds the sessions a previous process
// left in the store. The default store is the in-memory MemStore (the
// same code path, no durability); give NewManagerStore a DiskStore for
// crash-safe sessions. All methods are safe for concurrent use.
type Manager struct {
	mu           sync.Mutex
	sessions     map[string]*Session
	caches       map[string]*Cache
	nextID       int
	sched        *core.Scheduler
	store        Store
	rotateEvery  int
	persistFails atomic.Int64
	walReplayed  atomic.Int64
}

// NewManager returns an empty manager journaling into an in-memory
// store.
func NewManager() *Manager { return NewManagerStore(NewMemStore(), 0) }

// NewManagerStore returns an empty manager journaling every session
// into store, rotating each session's snapshot every rotateEvery
// answers (0 selects DefaultRotateEvery). The manager takes ownership
// of the store; Close closes it.
func NewManagerStore(store Store, rotateEvery int) *Manager {
	if rotateEvery <= 0 {
		rotateEvery = DefaultRotateEvery
	}
	return &Manager{
		sessions:    make(map[string]*Session),
		caches:      make(map[string]*Cache),
		sched:       core.NewScheduler(0),
		store:       store,
		rotateEvery: rotateEvery,
	}
}

// Scheduler returns the manager's shared shard-work scheduler. Callers
// preparing pipelines for managed sessions should place it in
// core.Config.Sched so shard fan-out is bounded across all sessions.
func (m *Manager) Scheduler() *core.Scheduler { return m.sched }

// Store returns the manager's session store.
func (m *Manager) Store() Store { return m.store }

// PersistFailures returns how many journal or rotation operations have
// failed across all sessions; non-zero means at least one session's
// durable state is stale (see Session.PersistErr).
func (m *Manager) PersistFailures() int64 { return m.persistFails.Load() }

// WALReplayed returns how many WAL records Recover has delivered on top
// of session snapshots since the manager was built — the durable-suffix
// work a restart actually paid for.
func (m *Manager) WALReplayed() int64 { return m.walReplayed.Load() }

// CacheStats sums hits, misses and granted reservations across every
// namespace answer cache the manager owns.
func (m *Manager) CacheStats() (hits, misses, reservations int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.caches {
		hits += c.Hits()
		misses += c.Misses()
		reservations += c.Reservations()
	}
	return hits, misses, reservations
}

// DeduceStats returns each namespace's deduction-store counters: answers
// served by transitive closure (hits), cluster merges (unions) and
// contradictory facts dropped (conflicts). Namespaces whose sessions
// never enabled deduction still appear — their stores record answers as
// facts regardless, so the counters show cluster growth with zero hits.
func (m *Manager) DeduceStats() map[string]deduce.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]deduce.Stats, len(m.caches))
	for ns, c := range m.caches {
		out[ns] = c.DeduceStats()
	}
	return out
}

// Cache returns the namespace's shared answer cache, creating it on first
// use.
func (m *Manager) Cache(namespace string) *Cache {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheLocked(namespace)
}

func (m *Manager) cacheLocked(namespace string) *Cache {
	c, ok := m.caches[namespace]
	if !ok {
		c = NewCache()
		m.caches[namespace] = c
	}
	return c
}

// Create starts a new session in the namespace and registers it under a
// fresh ID. The Prepared must be exclusive to the session. meta is the
// opaque pipeline spec stored alongside the session — whatever the
// caller needs to re-prepare the same pipeline when recovering the
// session from the store (may be nil when recovery is not needed).
func (m *Manager) Create(p *core.Prepared, namespace string, meta []byte) (*Session, error) {
	id := m.claimID()
	cache := m.Cache(namespace)
	// New drains the cache outside the manager lock: it can run long and
	// only touches the session's own state plus the cache's own mutex.
	s := New(id, p, cache)
	for {
		err := m.persistNew(s, meta, false)
		if err == nil {
			break
		}
		m.mu.Lock()
		delete(m.sessions, s.id)
		m.mu.Unlock()
		if !errors.Is(err, ErrStoreExists) {
			cache.releaseOwned(s.id)
			return nil, err
		}
		// A dormant store record (unrecovered or skipped at startup)
		// squats on this counter value; rebind the session to the next
		// free ID and try again. Rebinding is safe here: the session is
		// not yet registered, journaled, or holding reservations.
		s.id = m.claimID()
	}
	m.mu.Lock()
	m.sessions[s.id] = s
	m.mu.Unlock()
	return s, nil
}

// claimID allocates the next free session ID and claims its slot (nil
// placeholder) under the manager lock, so a concurrent Create or
// Restore cannot race onto the same ID.
func (m *Manager) claimID() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		m.nextID++
		id := fmt.Sprintf("s%d", m.nextID)
		if _, taken := m.sessions[id]; !taken {
			m.sessions[id] = nil
			return id
		}
	}
}

// persistNew writes the session's initial record (meta + a snapshot of
// its current state, which covers any answers a cache drain already
// applied) and attaches the journaling persister. replace clears a
// stale store record under the same ID first.
func (m *Manager) persistNew(s *Session, meta []byte, replace bool) error {
	data, err := EncodeSnapshot(s.Snapshot())
	if err != nil {
		return fmt.Errorf("session: encoding initial snapshot: %w", err)
	}
	err = m.store.Create(s.ID(), meta, data)
	if replace && errors.Is(err, ErrStoreExists) {
		// The caller is explicitly restoring this ID from a snapshot it
		// holds; an unrecovered store record under the same ID is stale.
		if err = m.store.Delete(s.ID()); err == nil {
			err = m.store.Create(s.ID(), meta, data)
		}
	}
	if err != nil {
		return fmt.Errorf("%w: storing %q: %w", ErrPersist, s.ID(), err)
	}
	s.attachPersist(&persister{
		store:       m.store,
		id:          s.ID(),
		rotateEvery: m.rotateEvery,
		fails:       &m.persistFails,
	})
	return nil
}

// Restore rebuilds a snapshotted session in the namespace and registers it
// under its snapshot ID, persisting it like a created session. It fails
// when the ID is already live.
func (m *Manager) Restore(p *core.Prepared, namespace string, meta []byte, snap *Snapshot) (*Session, error) {
	// Claim the ID (nil placeholder) up front, exactly like Create: a
	// concurrent Restore of the same snapshot must lose here, before
	// persistNew's replace path could delete the winner's live record.
	m.mu.Lock()
	if _, exists := m.sessions[snap.ID]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, snap.ID)
	}
	m.sessions[snap.ID] = nil
	cache := m.cacheLocked(namespace)
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		delete(m.sessions, snap.ID)
		m.mu.Unlock()
	}
	s, err := Restore(p, cache, snap)
	if err != nil {
		release()
		return nil, err
	}
	if err := m.persistNew(s, meta, true); err != nil {
		release()
		cache.releaseOwned(s.ID())
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessions[snap.ID] = s
	return s, nil
}

// Recover rebuilds every session the store holds — the process-restart
// path. prepare maps a stored session's meta blob back to a freshly
// prepared pipeline and its cache namespace. Each recovered session is
// replayed through the snapshot/divergence machinery, the WAL appended
// since its last snapshot is delivered on top (records the snapshot
// already covers are skipped by sequence number), and the recovered
// state is immediately rotated into a fresh snapshot. Sessions that
// fail to recover are skipped and reported in the joined error; the
// rest recover normally. Returns the recovered IDs in sorted order.
func (m *Manager) Recover(prepare func(id string, meta []byte) (*core.Prepared, string, error)) ([]string, error) {
	ids, err := m.store.List()
	if err != nil {
		return nil, fmt.Errorf("session: listing store: %w", err)
	}
	var recovered []string
	var errs []error
	for _, id := range ids {
		if err := m.recoverOne(id, prepare); err != nil {
			errs = append(errs, fmt.Errorf("session %q: %w", id, err))
			continue
		}
		recovered = append(recovered, id)
	}
	sort.Strings(recovered)
	return recovered, errors.Join(errs...)
}

// recoverOne rebuilds one stored session and registers it.
func (m *Manager) recoverOne(id string, prepare func(id string, meta []byte) (*core.Prepared, string, error)) error {
	m.mu.Lock()
	_, live := m.sessions[id]
	m.mu.Unlock()
	if live {
		return ErrSessionExists
	}
	rec, err := m.store.Get(id)
	if err != nil {
		return err
	}
	snap, err := DecodeSnapshot(rec.Snapshot)
	if err != nil {
		return err
	}
	if snap.ID != id {
		return fmt.Errorf("stored snapshot carries id %q", snap.ID)
	}
	p, namespace, err := prepare(id, rec.Meta)
	if err != nil {
		return err
	}
	// Replay cache-free: a sibling's recovered answers must not advance
	// this loop past its own durable state before the WAL suffix lands.
	s, err := Restore(p, nil, snap)
	if err != nil {
		return err
	}
	// Deliver the WAL suffix the snapshot does not cover. The snapshot
	// holds exactly the first len(Applied)+len(Pending) deliveries, so
	// any WAL record below that sequence is already replayed.
	next := len(snap.Applied) + len(snap.Pending)
	for _, w := range rec.WAL {
		if w.Seq < next {
			continue
		}
		if w.Seq != next {
			return fmt.Errorf("WAL gap: expected seq %d, found %d", next, w.Seq)
		}
		q := pair.Pair{U1: w.Answer.U1, U2: w.Answer.U2}
		if err := s.DeliverPair(q, ToCrowd(w.Answer.Labels)); err != nil {
			return fmt.Errorf("WAL replay diverged at seq %d: %w", w.Seq, err)
		}
		m.walReplayed.Add(1)
		next++
	}
	// Only now join the namespace cache: share this session's answers
	// out and drain in what siblings resolved while it was down.
	s.joinCache(m.Cache(namespace))
	// Fold the recovered state into a fresh snapshot before journaling
	// resumes, so the WAL restarts empty.
	data, err := EncodeSnapshot(s.Snapshot())
	if err != nil {
		return err
	}
	if err := m.store.PutSnapshot(id, data); err != nil {
		return err
	}
	s.attachPersist(&persister{store: m.store, id: id, rotateEvery: m.rotateEvery, fails: &m.persistFails})
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.sessions[id]; exists {
		return ErrSessionExists
	}
	m.sessions[id] = s
	return nil
}

// Get returns the session registered under id. A slot claimed by an
// in-flight Create (nil placeholder) is not yet visible.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if s == nil {
		return nil, false
	}
	return s, ok
}

// Remove forgets the session, deletes its durable record and releases
// any question reservations it still holds, so sibling sessions can
// re-post its in-flight pairs. It reports whether anything was removed.
// The store delete comes first: if it fails the session stays
// registered and the Remove can be retried — unregistering first would
// strand an API-unreachable durable record that resurrects the session
// on the next restart. An ID that is not live but still has a store
// record (a session whose recovery failed, or one left dormant by a
// recovery-less OpenManager) is purged from the store, so broken
// records remain deletable through the API.
func (m *Manager) Remove(id string) (bool, error) {
	m.mu.Lock()
	s, tracked := m.sessions[id]
	m.mu.Unlock()
	if tracked && s == nil {
		// A Create or Restore still in flight; leave claimed slots be.
		return false, nil
	}
	if s == nil {
		// Not live: purge a dormant store record, if any.
		if _, err := m.store.Get(id); err != nil {
			if errors.Is(err, ErrStoreNotFound) {
				return false, nil
			}
			// The record exists but is unreadable (e.g. corrupt WAL) —
			// exactly the thing an operator wants to delete; fall through.
		}
		if err := m.store.Delete(id); err != nil {
			return false, fmt.Errorf("%w: deleting %q from store: %w", ErrPersist, id, err)
		}
		return true, nil
	}
	if err := s.deleteFromStore(m.store); err != nil {
		return false, fmt.Errorf("%w: deleting %q from store: %w", ErrPersist, id, err)
	}
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
	if s.cache != nil {
		s.cache.releaseOwned(s.ID())
	}
	return true, nil
}

// IDs returns the live session IDs in deterministic order.
func (m *Manager) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sessions))
	for id, s := range m.sessions {
		if s != nil {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// FlushAll rotates every live session's durable snapshot to its current
// state — the graceful-shutdown path: after a flush, recovery replays
// snapshots only, no WAL.
func (m *Manager) FlushAll() error {
	var errs []error
	for _, id := range m.IDs() {
		if s, ok := m.Get(id); ok {
			if err := s.Flush(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// Close flushes every session and closes the store.
func (m *Manager) Close() error {
	flushErr := m.FlushAll()
	return errors.Join(flushErr, m.store.Close())
}
