package session

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// crashScript drives one deterministic persisted-session workload
// against a DiskStore whose failpoint hook is under test control:
// create a managed session, answer every published question in
// selection order with oracle labels, with a small rotateEvery so the
// workload crosses several snapshot rotations. Journal failures are
// fail-stop by design, so the script always runs to the in-memory end;
// what the crash varies is how much of it reached disk.
func crashScript(t *testing.T, st *DiskStore) {
	t.Helper()
	k1, k2, gold := bookWorld(5, 41)
	mgr := NewManagerStore(st, 4)
	s, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", []byte("crash-meta"))
	if err != nil {
		// The crash landed inside Create itself; nothing was registered.
		return
	}
	for !s.Done() {
		batch := s.NextBatch()
		if len(batch) == 0 {
			t.Fatal("standalone session stalled")
		}
		for _, q := range batch {
			if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// countCrashOps runs the script with a counting hook and returns how
// many write boundaries it crosses.
func countCrashOps(t *testing.T) int {
	t.Helper()
	st, err := NewDiskStore(filepath.Join(t.TempDir(), "count"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n := 0
	st.failpoint = func(string) error { n++; return nil }
	crashScript(t, st)
	if n == 0 {
		t.Fatal("the workload crossed no write boundaries; the matrix is vacuous")
	}
	return n
}

// TestDiskStoreCrashMatrix kills the store at every WAL / snapshot
// write boundary of the workload — the first failing op and everything
// after it fail, as they would when the process dies there — then
// reopens the directory, recovers, and requires the recovered session
// to replay cleanly and finish with the same Result as the synchronous
// oracle run. WAL-append boundaries are additionally killed with a
// torn half-written line.
func TestDiskStoreCrashMatrix(t *testing.T) {
	k1, k2, gold := bookWorld(5, 41)
	want := core.Prepare(k1, k2, testConfig(nil)).Run(core.NewOracleAsker(gold.IsMatch))
	total := countCrashOps(t)
	t.Logf("workload crosses %d write boundaries", total)

	for k := 0; k < total; k++ {
		t.Run(fmt.Sprintf("kill-at-op-%02d", k), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "data")
			st, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			var killedOp string
			st.failpoint = func(op string) error {
				n++
				if n <= k {
					return nil
				}
				if killedOp == "" {
					killedOp = op
					if op == "append.write" {
						return errTornWrite
					}
				}
				return fmt.Errorf("crashed at boundary %d (%s)", k, op)
			}
			crashScript(t, st)
			st.Close()

			// Reopen the directory as a fresh process would.
			st2, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			mgr := NewManagerStore(st2, 4)
			recovered, err := mgr.Recover(func(id string, meta []byte) (*core.Prepared, string, error) {
				if string(meta) != "crash-meta" {
					return nil, "", fmt.Errorf("recovered meta %q", meta)
				}
				return core.Prepare(k1, k2, testConfig(nil)), "books", nil
			})
			if err != nil {
				t.Fatalf("recovery after a crash at op %d (%s) failed: %v", k, killedOp, err)
			}
			if len(recovered) == 0 {
				// The crash predates the acknowledged Create: losing the
				// session entirely is correct, it was never durable.
				return
			}
			s, ok := mgr.Get(recovered[0])
			if !ok {
				t.Fatal("recovered session not registered")
			}
			for !s.Done() {
				batch := s.NextBatch()
				if len(batch) == 0 {
					t.Fatal("recovered session stalled")
				}
				for _, q := range batch {
					if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
						t.Fatalf("finishing after a crash at op %d (%s): %v", k, killedOp, err)
					}
				}
			}
			assertResultsIdentical(t, want, s.Result())
			if err := mgr.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
