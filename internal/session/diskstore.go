package session

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// DiskStore is the crash-safe Store: one directory per session holding
// the pipeline meta, the current snapshot and a set of fsync'd WAL
// segments.
//
// Layout under the root directory:
//
//	sessions/<id>/meta           opaque pipeline spec, written once
//	sessions/<id>/snapshot.json  current snapshot (atomic rotation)
//	sessions/<id>/wal-NNNNNNNN.log  append-only answer log segments
//
// Every answer append is one JSON line written and fsync'd before the
// delivery is acknowledged, so an acknowledged answer survives a hard
// process kill. Snapshot rotation writes the new snapshot to a
// temporary file, fsyncs it, renames it over snapshot.json, fsyncs the
// directory, then starts a fresh WAL segment and deletes the older
// segments. A crash between any two of those steps leaves either the
// old snapshot with a complete WAL or the new snapshot with a stale WAL
// whose records are all covered by the snapshot — recovery skips them
// by sequence number. A torn final WAL line (the kill landed mid-write,
// before the fsync, so the answer was never acknowledged) is dropped;
// a malformed line anywhere earlier is reported as corruption.
//
// Session IDs that are not filesystem-safe are hex-encoded with an "@"
// prefix, so arbitrary snapshot IDs cannot escape the root directory.
//
// The store's own mutex guards only the writer map and the closed flag:
// file writes and fsyncs run outside it. Per-ID call serialization is
// the caller's contract (the owning session's lock), so sessions fsync
// their WALs in parallel instead of queueing every answer in the
// process behind one global lock.
type DiskStore struct {
	root string

	mu     sync.Mutex
	wals   map[string]*walWriter
	closed bool

	// fsyncClock/fsyncHist, when wired via InstrumentFsync, time the WAL
	// fsync syscall in AppendAnswer — the latency every acknowledged
	// answer pays for durability. The store never reads the wall clock
	// itself; the clock is injected by the owner (the server).
	fsyncClock obs.Clock
	fsyncHist  *obs.Histogram

	// failpoint, when set (tests only), runs before every physical write
	// boundary; a returned error aborts the operation as a crash would.
	// errTornWrite on "append.write" writes half the record first,
	// simulating a torn line.
	failpoint func(op string) error
}

// walWriter is the open current WAL segment of one session.
type walWriter struct {
	f   *os.File
	seg int
}

// errTornWrite makes the append failpoint write half a record before
// failing, so recovery sees a torn final line.
var errTornWrite = errors.New("session: failpoint torn write")

// NewDiskStore opens (creating if needed) a disk store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, errors.New("session: disk store needs a data directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, fmt.Errorf("session: disk store: %w", err)
	}
	return &DiskStore{root: dir, wals: make(map[string]*walWriter)}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.root }

// InstrumentFsync wires a latency histogram over the WAL fsync in
// AppendAnswer, timed with the injected monotonic clock. Call it before
// the store serves traffic; a nil clock disables the instrumentation.
func (d *DiskStore) InstrumentFsync(clock obs.Clock, h *obs.Histogram) {
	d.fsyncClock = clock
	d.fsyncHist = h
}

// fail invokes the failpoint hook for one write boundary.
func (d *DiskStore) fail(op string) error {
	if d.failpoint == nil {
		return nil
	}
	return d.failpoint(op)
}

// encodeID maps a session ID to a safe directory name, reversibly.
func encodeID(id string) string {
	safe := id != "" && id[0] != '@' && id != "." && id != ".."
	for i := 0; safe && i < len(id); i++ {
		c := id[i]
		safe = c == '-' || c == '_' || c == '.' ||
			('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
	}
	if safe {
		return id
	}
	return "@" + hex.EncodeToString([]byte(id))
}

// decodeID inverts encodeID.
func decodeID(name string) (string, error) {
	if !strings.HasPrefix(name, "@") {
		return name, nil
	}
	raw, err := hex.DecodeString(name[1:])
	if err != nil {
		return "", fmt.Errorf("session: undecodable session directory %q", name)
	}
	return string(raw), nil
}

func (d *DiskStore) sessionDir(id string) string {
	return filepath.Join(d.root, "sessions", encodeID(id))
}

func walName(seg int) string { return fmt.Sprintf("wal-%08d.log", seg) }

// parseWalName extracts the segment number, or -1 for other files.
func parseWalName(name string) int {
	var seg int
	if n, err := fmt.Sscanf(name, "wal-%08d.log", &seg); n == 1 && err == nil && strings.HasSuffix(name, ".log") {
		return seg
	}
	return -1
}

// syncDir fsyncs a directory so renames and file creations inside it are
// durable.
func (d *DiskStore) syncDir(dir string) error {
	if err := d.fail("dir.sync"); err != nil {
		return err
	}
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// writeFileAtomic writes data to path via tmp + fsync + rename + dir
// fsync. op prefixes the failpoint boundaries.
func (d *DiskStore) writeFileAtomic(op, path string, data []byte) error {
	if err := d.fail(op + ".write"); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := d.fail(op + ".sync"); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.fail(op + ".rename"); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return d.syncDir(filepath.Dir(path))
}

// checkOpen fails fast once the store is closed. An operation that
// races a concurrent Close past this check fails on its closed file
// handles instead — never silently, never corrupting.
func (d *DiskStore) checkOpen() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrStoreClosed
	}
	return nil
}

// Create implements Store.
func (d *DiskStore) Create(id string, meta, snapshot []byte) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	dir := d.sessionDir(id)
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err == nil {
		return fmt.Errorf("%w: %q", ErrStoreExists, id)
	}
	if err := d.fail("create.mkdir"); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := d.writeFileAtomic("create.meta", filepath.Join(dir, "meta"), meta); err != nil {
		return err
	}
	// The snapshot is written last: a directory without snapshot.json is
	// an aborted Create and is skipped by List.
	if err := d.writeFileAtomic("create.snapshot", filepath.Join(dir, "snapshot.json"), snapshot); err != nil {
		return err
	}
	return d.openSegment(id, 1)
}

// openSegment creates WAL segment seg and registers it as the session's
// current writer, replacing (and closing) any previous one. The file
// work runs unlocked; only the map swap takes the store mutex.
func (d *DiskStore) openSegment(id string, seg int) error {
	if err := d.fail("wal.create"); err != nil {
		return err
	}
	dir := d.sessionDir(id)
	f, err := os.OpenFile(filepath.Join(dir, walName(seg)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := d.syncDir(dir); err != nil {
		f.Close()
		return err
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		f.Close()
		return ErrStoreClosed
	}
	if w := d.wals[id]; w != nil {
		w.f.Close()
	}
	d.wals[id] = &walWriter{f: f, seg: seg}
	d.mu.Unlock()
	return nil
}

// wal returns the session's current WAL writer, reopening the highest
// existing segment after a restart.
func (d *DiskStore) wal(id string) (*walWriter, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrStoreClosed
	}
	if w := d.wals[id]; w != nil {
		d.mu.Unlock()
		return w, nil
	}
	d.mu.Unlock()
	segs, err := d.segments(id)
	if err != nil {
		return nil, err
	}
	seg := 1
	if len(segs) > 0 {
		seg = segs[len(segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(d.sessionDir(id), walName(seg)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &walWriter{f: f, seg: seg}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		f.Close()
		return nil, ErrStoreClosed
	}
	if cur := d.wals[id]; cur != nil {
		// Raced another open for the same ID (callers serialize per ID,
		// so this is belt-and-braces): keep the registered writer.
		f.Close()
		return cur, nil
	}
	d.wals[id] = w
	return w, nil
}

// segments lists the session's WAL segment numbers in ascending order.
func (d *DiskStore) segments(id string) ([]int, error) {
	entries, err := os.ReadDir(d.sessionDir(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrStoreNotFound, id)
		}
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		if seg := parseWalName(e.Name()); seg > 0 {
			segs = append(segs, seg)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// AppendAnswer implements Store. The record is written as one JSON line
// and fsync'd before returning. No store-wide lock is held across the
// write: concurrent sessions append in parallel.
func (d *DiskStore) AppendAnswer(id string, seq int, rec AnswerRec) error {
	w, err := d.wal(id)
	if err != nil {
		return err
	}
	line, err := json.Marshal(WALRec{Seq: seq, Answer: rec})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if err := d.fail("append.write"); err != nil {
		if errors.Is(err, errTornWrite) {
			w.f.Write(line[:len(line)/2]) //nolint:errcheck // simulating a torn write
		}
		return err
	}
	if _, err := w.f.Write(line); err != nil {
		return err
	}
	if err := d.fail("append.sync"); err != nil {
		return err
	}
	if d.fsyncClock == nil {
		return w.f.Sync()
	}
	t0 := d.fsyncClock()
	err = w.f.Sync()
	d.fsyncHist.ObserveNS(d.fsyncClock() - t0)
	return err
}

// PutSnapshot implements Store: atomic snapshot rotation followed by a
// fresh WAL segment; older segments are deleted last, so a crash at any
// boundary leaves a recoverable (snapshot, WAL) pair.
func (d *DiskStore) PutSnapshot(id string, snapshot []byte) error {
	if err := d.checkOpen(); err != nil {
		return err
	}
	dir := d.sessionDir(id)
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		return fmt.Errorf("%w: %q", ErrStoreNotFound, id)
	}
	if err := d.writeFileAtomic("rotate.snapshot", filepath.Join(dir, "snapshot.json"), snapshot); err != nil {
		return err
	}
	w, err := d.wal(id)
	if err != nil {
		return err
	}
	prev := w.seg
	if err := d.openSegment(id, prev+1); err != nil {
		return err
	}
	if err := d.fail("rotate.wal.delete"); err != nil {
		return err
	}
	segs, err := d.segments(id)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg <= prev {
			if err := os.Remove(filepath.Join(dir, walName(seg))); err != nil {
				return err
			}
		}
	}
	return d.syncDir(dir)
}

// Get implements Store, reading the record back from disk.
func (d *DiskStore) Get(id string) (*Record, error) {
	if err := d.checkOpen(); err != nil {
		return nil, err
	}
	dir := d.sessionDir(id)
	snapshot, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrStoreNotFound, id)
		}
		return nil, err
	}
	meta, err := os.ReadFile(filepath.Join(dir, "meta"))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	rec := &Record{Meta: meta, Snapshot: snapshot}
	segs, err := d.segments(id)
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		recs, err := readWalSegment(filepath.Join(dir, walName(seg)), i == len(segs)-1)
		if err != nil {
			return nil, fmt.Errorf("session: %q %s: %w", id, walName(seg), err)
		}
		rec.WAL = append(rec.WAL, recs...)
	}
	return rec, nil
}

// readWalSegment parses one WAL segment. A torn final line is dropped
// only in the last segment (the only one that can have been mid-append
// at the kill); anything else malformed is corruption.
func readWalSegment(path string, last bool) ([]WALRec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []WALRec
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		var rec WALRec
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if last && i == len(lines)-1 {
				return out, nil // torn final line: the append was never acknowledged
			}
			return nil, fmt.Errorf("corrupt WAL line %d: %w", i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// List implements Store. Directories without a snapshot (aborted
// Creates) are skipped.
func (d *DiskStore) List() ([]string, error) {
	if err := d.checkOpen(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(d.root, "sessions"))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(d.root, "sessions", e.Name(), "snapshot.json")); err != nil {
			continue
		}
		id, err := decodeID(e.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (d *DiskStore) Delete(id string) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrStoreClosed
	}
	if w := d.wals[id]; w != nil {
		w.f.Close()
		delete(d.wals, id)
	}
	d.mu.Unlock()
	if err := os.RemoveAll(d.sessionDir(id)); err != nil {
		return err
	}
	return d.syncDir(filepath.Join(d.root, "sessions"))
}

// Close implements Store, closing every open WAL segment.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var firstErr error
	for id, w := range d.wals {
		if err := w.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(d.wals, id)
	}
	return firstErr
}
