package session

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/pair"
)

// FuzzRestoreSession fuzzes the durable inputs a restore consumes: the
// snapshot JSON and an answer log (the WAL's record array). Whatever
// the bytes, Restore must never panic; and any snapshot it accepts must
// round-trip — the restored session's re-snapshot is canonical, so
// restoring *that* must succeed and re-snapshot to identical bytes.
// The corpus is seeded with real snapshots of the example fixture (the
// quickstart/asynccrowd books world) taken mid-run with a buffered
// out-of-order answer, at completion, and fresh.
func FuzzRestoreSession(f *testing.F) {
	k1, k2, gold := bookWorld(3, 51)
	prep := func() *core.Prepared { return core.Prepare(k1, k2, testConfig(nil)) }

	// Real mid-run snapshot: first batch applied, plus the last question
	// of the second batch delivered out of order (pending).
	s := New("seed-mid", prep(), nil)
	for _, q := range s.NextBatch() {
		if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
			f.Fatal(err)
		}
	}
	second := s.NextBatch()
	if len(second) > 1 {
		last := second[len(second)-1]
		if err := s.Deliver(last.ID, FromCrowd(oracleLabels(gold, last.Pair))); err != nil {
			f.Fatal(err)
		}
	}
	snapMid, err := EncodeSnapshot(s.Snapshot())
	if err != nil {
		f.Fatal(err)
	}
	// The answers still to come, as a WAL-shaped log.
	var rest []AnswerRec
	for _, q := range second {
		rest = append(rest, AnswerRec{U1: q.Pair.U1, U2: q.Pair.U2, Labels: FromCrowd(oracleLabels(gold, q.Pair))})
	}
	walSeed, err := json.Marshal(rest)
	if err != nil {
		f.Fatal(err)
	}

	// Real completed snapshot.
	done := New("seed-done", prep(), nil)
	for !done.Done() {
		for _, q := range done.NextBatch() {
			if err := done.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
				f.Fatal(err)
			}
		}
	}
	snapDone, err := EncodeSnapshot(done.Snapshot())
	if err != nil {
		f.Fatal(err)
	}

	// Real fresh snapshot.
	snapFresh, err := EncodeSnapshot(New("seed-fresh", prep(), nil).Snapshot())
	if err != nil {
		f.Fatal(err)
	}

	f.Add(snapMid, walSeed)
	f.Add(snapDone, []byte(`[]`))
	f.Add(snapFresh, walSeed)
	f.Add([]byte(`{"version":1,"id":"x","applied":[{"u1":0,"u2":0,"labels":null}]}`), []byte(`null`))
	f.Add([]byte(`{"version":1,"id":"s","shards":7,"shard_sizes":[1,2]}`), []byte(`[{"u1":-1,"u2":99,"labels":[{"worker":0,"quality":9,"match":true}]}]`))

	f.Fuzz(func(t *testing.T, snapJSON, walJSON []byte) {
		snap, err := DecodeSnapshot(snapJSON)
		if err != nil {
			return // malformed bytes must error, never panic
		}
		restored, err := Restore(prep(), nil, snap)
		if err != nil {
			return // divergent snapshots must be rejected, never panic
		}

		// Accepted input: the re-snapshot is the canonical form and must
		// be a fixed point of restore ∘ snapshot.
		canon, err := EncodeSnapshot(restored.Snapshot())
		if err != nil {
			t.Fatalf("re-snapshot of an accepted snapshot failed to encode: %v", err)
		}
		snap2, err := DecodeSnapshot(canon)
		if err != nil {
			t.Fatalf("canonical snapshot does not decode: %v", err)
		}
		again, err := Restore(prep(), nil, snap2)
		if err != nil {
			t.Fatalf("canonical snapshot does not restore: %v", err)
		}
		canon2, err := EncodeSnapshot(again.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("round-trip diverged:\n first %s\nsecond %s", canon, canon2)
		}

		// Feed the fuzzed answer log on top; deliveries may be rejected
		// but must never panic, and the session must stay snapshotable.
		var recs []AnswerRec
		if json.Unmarshal(walJSON, &recs) != nil {
			return
		}
		for _, rec := range recs {
			q := pair.Pair{U1: kb.EntityID(rec.U1), U2: kb.EntityID(rec.U2)}
			_ = restored.DeliverPair(q, ToCrowd(rec.Labels))
		}
		if _, err := EncodeSnapshot(restored.Snapshot()); err != nil {
			t.Fatalf("snapshot after answer-log replay failed: %v", err)
		}
	})
}
