package session

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/deduce"
	"repro/internal/kb"
	"repro/internal/pair"
)

// offsetWorld is bookWorld with the right KB's entity IDs shifted by a
// pad of unconnected entities, so a pair and its orientation-swapped
// twin are numerically distinct — the fixture that makes the swapped-
// orientation cache bug observable (with aligned IDs, (a,b) and (b,a)
// collide by accident).
func offsetWorld(n int, seed int64) (*kb.KB, *kb.KB, *pair.Gold) {
	rng := rand.New(rand.NewSource(seed))
	k1 := kb.New("left")
	k2 := kb.New("right")
	for i := 0; i < 5; i++ {
		k2.AddEntity(fmt.Sprintf("pad %d", i))
	}
	name1, name2 := k1.AddAttr("name"), k2.AddAttr("label")
	wrote1, wrote2 := k1.AddRel("wrote"), k2.AddRel("authorOf")

	var gold []pair.Pair
	add := func(base string, perturb bool) (kb.EntityID, kb.EntityID) {
		u1 := k1.AddEntity("l:" + base)
		u2 := k2.AddEntity("r:" + base)
		l2 := base
		if perturb && rng.Intn(3) == 0 {
			l2 = base + " II"
		}
		k1.SetLabel(u1, base)
		k2.SetLabel(u2, l2)
		k1.AddAttrTriple(u1, name1, base)
		k2.AddAttrTriple(u2, name2, l2)
		gold = append(gold, pair.Pair{U1: u1, U2: u2})
		return u1, u2
	}
	for i := 0; i < n; i++ {
		a1, a2 := add(fmt.Sprintf("author %d", i), false)
		for b := 0; b < 2; b++ {
			b1, b2 := add(fmt.Sprintf("book %d %d", i, b), true)
			k1.AddRelTriple(a1, wrote1, b1)
			k2.AddRelTriple(a2, wrote2, b2)
		}
		add(fmt.Sprintf("editor %d", i), false)
	}
	return k1, k2, pair.NewGold(gold)
}

// drive answers every published batch in order with oracle labels and
// returns how many answers the session needed from the "crowd" (answers
// drained from the cache or deduced are not counted).
func drive(t *testing.T, s *Session, isMatch func(pair.Pair) bool) int {
	t.Helper()
	delivered := 0
	for !s.Done() {
		batch := s.NextBatch()
		if len(batch) == 0 {
			if s.Done() {
				break
			}
			t.Fatalf("session %s awaiting answers but published an empty batch", s.ID())
		}
		for _, q := range batch {
			labels := []Label{{WorkerID: 0, Quality: 0.999, IsMatch: isMatch(q.Pair)}}
			if err := s.Deliver(q.ID, labels); err != nil {
				t.Fatalf("Deliver(%s): %v", q.ID, err)
			}
			delivered++
		}
	}
	return delivered
}

// TestSwappedOrientationHitsCache is the regression test for the
// orientation dedupe gap: a session whose pipeline was prepared with the
// namespace's KBs swapped must still find the answers its siblings
// recorded — pair (a,b) answered in one orientation must be a cache (and
// deduction) hit for (b,a) in the other. Before orientation
// canonicalization, the reversed session missed every shared answer and
// re-posted the whole workload.
func TestSwappedOrientationHitsCache(t *testing.T) {
	k1, k2, gold := offsetWorld(5, 11)
	mirror := func(q pair.Pair) bool { return gold.IsMatch(pair.Pair{U1: q.U2, U2: q.U1}) }

	mgr := NewManager()
	a, err := mgr.Create(core.Prepare(k1, k2, testConfig(nil)), "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, a, gold.IsMatch)

	// Control: the reversed pipeline alone in a fresh namespace.
	control, err := NewManager().Create(core.Prepare(k2, k1, testConfig(nil)), "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	controlCost := drive(t, control, mirror)

	cache := mgr.Cache("books")
	hitsBefore := cache.Hits()
	b, err := mgr.Create(core.Prepare(k2, k1, testConfig(nil)), "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	cost := drive(t, b, mirror)

	if cache.Hits() == hitsBefore {
		t.Fatalf("reversed-orientation session drained no shared answers (hits still %d)", hitsBefore)
	}
	if cost >= controlCost {
		t.Fatalf("reversed-orientation session cost %d answers, control needed %d — sharing saved nothing", cost, controlCost)
	}
	// Cached answers carry the exact labels the oracle would give, so the
	// shared run must still be byte-identical to the standalone one.
	assertResultsIdentical(t, control.Result(), b.Result())
}

// TestDeduceSessionMatchesSyncOracle is the metamorphic acceptance test
// for session-level deduction: a Deduce-on session fed its answers out
// of order — including answers for questions deduction has already
// skipped, which must be swallowed, not rejected — reaches a result
// byte-identical to the synchronous Deduce-on oracle run, at 1 and 4
// shards, with and without a namespace cache.
func TestDeduceSessionMatchesSyncOracle(t *testing.T) {
	k1, k2, gold := bookWorld(6, 23)
	for _, shards := range []int{1, 4} {
		mod := func(c *core.Config) { c.Deduce = true; c.Shards = shards }
		want := core.Prepare(k1, k2, testConfig(mod)).Run(core.NewOracleAsker(gold.IsMatch))
		if want.Deduced == 0 {
			t.Fatalf("fixture too easy: the %d-shard oracle run deduced nothing", shards)
		}

		t.Run(fmt.Sprintf("shards=%d/no-cache", shards), func(t *testing.T) {
			s := New("s1", core.Prepare(k1, k2, testConfig(mod)), nil)
			driveShuffled(t, s, gold, rand.New(rand.NewSource(int64(shards))))
			assertResultsIdentical(t, want, s.Result())
		})
		t.Run(fmt.Sprintf("shards=%d/cached", shards), func(t *testing.T) {
			mgr := NewManager()
			s, err := mgr.Create(core.Prepare(k1, k2, testConfig(mod)), "books", nil)
			if err != nil {
				t.Fatal(err)
			}
			driveShuffled(t, s, gold, rand.New(rand.NewSource(int64(shards)+100)))
			assertResultsIdentical(t, want, s.Result())
		})
	}
}

// TestDeduceSnapshotRestore proves deductions are replayable, never
// persisted: a Deduce-on session snapshotted mid-run restores through
// answer replay alone (the deduction skips recur identically, because
// each is a pure function of the applied-answer prefix) and finishes
// byte-identical to the synchronous oracle.
func TestDeduceSnapshotRestore(t *testing.T) {
	k1, k2, gold := bookWorld(10, 41)
	mod := func(c *core.Config) { c.Deduce = true }
	want := core.Prepare(k1, k2, testConfig(mod)).Run(core.NewOracleAsker(gold.IsMatch))

	s := New("job-7", core.Prepare(k1, k2, testConfig(mod)), nil)
	for i := 0; i < 2 && !s.Done(); i++ {
		for _, q := range s.NextBatch() {
			if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Done() {
		t.Fatal("fixture finished before the snapshot point")
	}
	snap, err := DecodeSnapshot(mustEncode(t, s.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(core.Prepare(k1, k2, testConfig(mod)), nil, snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	drive(t, restored, gold.IsMatch)
	assertResultsIdentical(t, want, restored.Result())
}

func mustEncode(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	data, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDeduceWALRecovery crashes a Deduce-on journaled session mid-run
// and recovers it from snapshot + WAL suffix in a second manager: the
// replay re-deduces every skip from the recorded answers and the
// finished result is byte-identical to the synchronous oracle.
func TestDeduceWALRecovery(t *testing.T) {
	k1, k2, gold := bookWorld(10, 53)
	mod := func(c *core.Config) { c.Deduce = true }
	want := core.Prepare(k1, k2, testConfig(mod)).Run(core.NewOracleAsker(gold.IsMatch))

	st := NewMemStore()
	mgr := NewManagerStore(st, 3) // rotate every 3 answers: a WAL suffix survives
	s, err := mgr.Create(core.Prepare(k1, k2, testConfig(mod)), "books", []byte("spec"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2 && !s.Done(); i++ {
		for _, q := range s.NextBatch() {
			if err := s.Deliver(q.ID, FromCrowd(oracleLabels(gold, q.Pair))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.PersistErr(); err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("fixture finished before the crash point")
	}

	// "Crash": abandon the first manager, recover from its store.
	mgr2 := NewManagerStore(st, 3)
	recovered, err := mgr2.Recover(func(id string, meta []byte) (*core.Prepared, string, error) {
		return core.Prepare(k1, k2, testConfig(mod)), "books", nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %v, want one session", recovered)
	}
	r, ok := mgr2.Get(recovered[0])
	if !ok {
		t.Fatal("recovered session not registered")
	}
	drive(t, r, gold.IsMatch)
	assertResultsIdentical(t, want, r.Result())
}

// TestCacheDeduceTier exercises the namespace deduction store directly:
// recorded answers become transitive-closure facts, and a pair no
// session answered is served by deduction under the 1:1 constraint.
func TestCacheDeduceTier(t *testing.T) {
	c := NewCache()
	p := func(a, b int) pair.Pair { return pair.Pair{U1: kb.EntityID(a), U2: kb.EntityID(b)} }
	lab := func(match bool) []crowd.Label {
		return []crowd.Label{{Worker: crowd.Worker{ID: 0, Quality: 0.999}, IsMatch: match}}
	}
	c.put(p(1, 2), lab(true))
	if v := c.deduce(p(1, 2)); v != deduce.Match {
		t.Fatalf("recorded match not deducible: %v", v)
	}
	// The 1:1 constraint: entity 1 is matched to 2, so (1,3) is a
	// deduced non-match even though nobody answered it.
	if v := c.deduce(p(1, 3)); v != deduce.NonMatch {
		t.Fatalf("matched-elsewhere pair = %v, want NonMatch", v)
	}
	if v := c.deduce(p(4, 5)); v != deduce.Unknown {
		t.Fatalf("unrelated pair = %v, want Unknown", v)
	}
	// Indefinite and synthesized answers record no facts.
	c.put(p(8, 9), nil)
	before := c.DeduceStats().Unions
	c.put(p(6, 7), deducedLabels(deduce.Match))
	if c.DeduceStats().Unions != before {
		t.Fatal("synthesized answer was re-recorded as a fact")
	}
	if v := c.deduce(p(6, 7)); v != deduce.Unknown {
		t.Fatalf("synthesized answer leaked into the store: %v", v)
	}
	if stats := c.DeduceStats(); stats.Hits == 0 || stats.Unions == 0 {
		t.Fatalf("stats not counting: %+v", stats)
	}
}

// TestCrossSessionDeduction makes the namespace tier fire for real. A
// sibling's recorded match (primed into the namespace cache, as another
// session's DeliverPair would) implies — by the 1:1 constraint — a
// non-match for every competitor of the matched entity. A Deduce-on
// session that opens such a competitor, without ever having seen the
// implying answer, must have the verdict synthesized by the deduction
// tier instead of posting the question; the synthesized answer carries
// the oracle's strength and direction, so the result stays byte-identical
// to the standalone synchronous run.
func TestCrossSessionDeduction(t *testing.T) {
	k1, k2, gold := bookWorld(6, 67)
	mod := func(c *core.Config) { c.Deduce = true }
	want := core.Prepare(k1, k2, testConfig(mod)).Run(core.NewOracleAsker(gold.IsMatch))

	// Find a non-gold pair q in the opening batch whose gold match
	// (q.U1's true partner — bookWorld aligns IDs, so it is (U1, U1)) is
	// not itself in the batch: the loop cannot resolve q internally, so
	// only the namespace tier can close it.
	probe := New("probe", core.Prepare(k1, k2, testConfig(mod)), nil)
	batch := probe.NextBatch()
	inBatch := func(p pair.Pair) bool {
		for _, b := range batch {
			if b.Pair == p {
				return true
			}
		}
		return false
	}
	var target, implied pair.Pair
	for _, q := range batch {
		g := pair.Pair{U1: q.Pair.U1, U2: kb.EntityID(q.Pair.U1)}
		if !gold.IsMatch(q.Pair) && gold.IsMatch(g) && !inBatch(g) {
			target, implied = q.Pair, g
			break
		}
	}
	if target == (pair.Pair{}) {
		t.Fatal("fixture has no competitor question whose gold match is outside the opening batch")
	}

	mgr := NewManager()
	cache := mgr.Cache("books")
	cache.put(implied, oracleLabels(gold, implied)) // the sibling's answer

	s, err := mgr.Create(core.Prepare(k1, k2, testConfig(mod)), "books", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range s.NextBatch() {
		if q.Pair == target {
			t.Fatalf("%v was published although the namespace's answers imply its verdict", target)
		}
	}
	if hits := mgr.DeduceStats()["books"].Hits; hits == 0 {
		t.Fatal("namespace deduction tier never fired")
	}
	drive(t, s, gold.IsMatch)
	assertResultsIdentical(t, want, s.Result())
}
