// Package ergraph implements the ER graph of Definition 2: a directed,
// edge-labeled multigraph whose vertices are candidate entity pairs and
// whose edges connect (u1,u2) → (u1′,u2′) with label (r1,r2) exactly when
// (u1,r1,u1′) ∈ T1 and (u2,r2,u2′) ∈ T2. The package also exposes the
// connected components and the isolated pairs that the graph cannot reach
// (§VII-B).
package ergraph

import (
	"sort"

	"repro/internal/kb"
	"repro/internal/pair"
)

// RelPair is an edge label: a relationship from each KB. Inverse marks
// edges that traverse the relationships backwards (from object pair to
// subject pair): the paper's §V-B example propagates from (Tim, Tim) to
// the movies Tim directed through the *inverse* of directedBy, so the ER
// graph materializes both directions with distinct labels (each direction
// has its own consistency parameters).
type RelPair struct {
	R1      kb.RelID
	R2      kb.RelID
	Inverse bool
}

// Less is the canonical label order: (R1, R2), forward before inverse. It
// is the single comparator shared by Labels, OutGroupsAt and the edge sort,
// so every consumer processes labels differing only in direction in the
// same, specified order.
func (l RelPair) Less(m RelPair) bool {
	if l.R1 != m.R1 {
		return l.R1 < m.R1
	}
	if l.R2 != m.R2 {
		return l.R2 < m.R2
	}
	return !l.Inverse && m.Inverse
}

// Edge is a labeled directed edge between two vertices (entity pairs).
type Edge struct {
	From  pair.Pair
	To    pair.Pair
	Label RelPair
}

// Graph is an ER graph over a fixed vertex set.
type Graph struct {
	vertices []pair.Pair
	index    map[pair.Pair]int
	// out[i] lists edges leaving vertex i; in[i] lists edges entering it.
	out [][]Edge
	in  [][]Edge
	// outIdx[i][k] is the dense vertex index of out[i][k].To, and
	// inIdx[i][k] that of in[i][k].From. They let edge consumers (BuildProb,
	// Subgraph, the partitioner) walk the topology as flat integer arrays
	// instead of hashing pair.Pair per edge.
	outIdx [][]int32
	inIdx  [][]int32
}

// Build constructs the ER graph on the given vertex set (the retained
// match set Mrd). For every vertex (u1,u2) and every relationship pair
// (r1,r2) with u1 having r1-successors and u2 having r2-successors, an
// edge is added to each successor pair that is also a vertex.
func Build(k1, k2 *kb.KB, vertices []pair.Pair) *Graph {
	g := &Graph{
		vertices: append([]pair.Pair(nil), vertices...),
		index:    make(map[pair.Pair]int, len(vertices)),
		out:      make([][]Edge, len(vertices)),
		in:       make([][]Edge, len(vertices)),
	}
	for i, v := range g.vertices {
		g.index[v] = i
	}
	for i, v := range g.vertices {
		for _, r1 := range k1.OutRels(v.U1) {
			n1 := k1.Out(v.U1, r1)
			for _, r2 := range k2.OutRels(v.U2) {
				n2 := k2.Out(v.U2, r2)
				g.addEdges(i, v, n1, n2, RelPair{R1: r1, R2: r2})
			}
		}
		for _, r1 := range k1.InRels(v.U1) {
			n1 := k1.In(v.U1, r1)
			for _, r2 := range k2.InRels(v.U2) {
				n2 := k2.In(v.U2, r2)
				g.addEdges(i, v, n1, n2, RelPair{R1: r1, R2: r2, Inverse: true})
			}
		}
	}
	for i := range g.out {
		sortEdges(g.out[i])
		sortEdges(g.in[i])
	}
	g.buildDenseIndexes()
	return g
}

// buildDenseIndexes fills outIdx/inIdx from the (sorted) edge lists. It is
// the only per-edge pair hashing the graph ever pays; everything downstream
// reads the dense arrays.
func (g *Graph) buildDenseIndexes() {
	g.outIdx = make([][]int32, len(g.out))
	g.inIdx = make([][]int32, len(g.in))
	for i, es := range g.out {
		if len(es) == 0 {
			continue
		}
		idx := make([]int32, len(es))
		for k, e := range es {
			idx[k] = int32(g.index[e.To])
		}
		g.outIdx[i] = idx
	}
	for i, es := range g.in {
		if len(es) == 0 {
			continue
		}
		idx := make([]int32, len(es))
		for k, e := range es {
			idx[k] = int32(g.index[e.From])
		}
		g.inIdx[i] = idx
	}
}

// addEdges links vertex i to every successor pair (w1, w2) ∈ n1×n2 that is
// itself a vertex, under the given label.
func (g *Graph) addEdges(i int, v pair.Pair, n1, n2 []kb.EntityID, label RelPair) {
	for _, w1 := range n1 {
		for _, w2 := range n2 {
			to := pair.Pair{U1: w1, U2: w2}
			j, ok := g.index[to]
			if !ok || j == i {
				continue
			}
			e := Edge{From: v, To: to, Label: label}
			g.out[i] = append(g.out[i], e)
			g.in[j] = append(g.in[j], e)
		}
	}
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(a, b int) bool {
		if es[a].To != es[b].To {
			return es[a].To.Less(es[b].To)
		}
		if es[a].From != es[b].From {
			return es[a].From.Less(es[b].From)
		}
		return es[a].Label.Less(es[b].Label)
	})
}

// Subgraph returns the induced subgraph on the given vertices (a subset
// of g's vertex set, in any order): edges with either endpoint outside the
// subset are dropped, and surviving edge slices keep the parent's sorted
// order. Extracting a connected component this way is loss-free — every
// incident edge survives — so a per-shard pipeline built on a component
// subgraph sees exactly the evidence the monolithic graph would.
func (g *Graph) Subgraph(vertices []pair.Pair) *Graph {
	sub := &Graph{
		vertices: append([]pair.Pair(nil), vertices...),
		index:    make(map[pair.Pair]int, len(vertices)),
		out:      make([][]Edge, len(vertices)),
		in:       make([][]Edge, len(vertices)),
		outIdx:   make([][]int32, len(vertices)),
		inIdx:    make([][]int32, len(vertices)),
	}
	for i, v := range sub.vertices {
		sub.index[v] = i
	}
	// remap[gi] is the subgraph index of parent vertex gi, or -1 when it was
	// dropped. One hash per subgraph vertex; edge filtering below is pure
	// array arithmetic over the parent's dense indexes.
	remap := make([]int32, len(g.vertices))
	for gi := range remap {
		remap[gi] = -1
	}
	for i, v := range sub.vertices {
		if gi, ok := g.index[v]; ok {
			remap[gi] = int32(i)
		}
	}
	for i, v := range sub.vertices {
		gi, ok := g.index[v]
		if !ok {
			continue
		}
		for k, e := range g.out[gi] {
			if nj := remap[g.outIdx[gi][k]]; nj >= 0 {
				sub.out[i] = append(sub.out[i], e)
				sub.outIdx[i] = append(sub.outIdx[i], nj)
			}
		}
		for k, e := range g.in[gi] {
			if nj := remap[g.inIdx[gi][k]]; nj >= 0 {
				sub.in[i] = append(sub.in[i], e)
				sub.inIdx[i] = append(sub.inIdx[i], nj)
			}
		}
	}
	return sub
}

// Vertices returns the vertex list (do not modify).
func (g *Graph) Vertices() []pair.Pair { return g.vertices }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the total directed edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Contains reports whether p is a vertex.
func (g *Graph) Contains(p pair.Pair) bool {
	_, ok := g.index[p]
	return ok
}

// IndexOf returns the dense index of vertex p, or -1.
func (g *Graph) IndexOf(p pair.Pair) int {
	if i, ok := g.index[p]; ok {
		return i
	}
	return -1
}

// Out returns the edges leaving p (do not modify).
func (g *Graph) Out(p pair.Pair) []Edge {
	if i, ok := g.index[p]; ok {
		return g.out[i]
	}
	return nil
}

// In returns the edges entering p (do not modify).
func (g *Graph) In(p pair.Pair) []Edge {
	if i, ok := g.index[p]; ok {
		return g.in[i]
	}
	return nil
}

// OutAt returns the edges leaving the vertex with dense index i (do not
// modify).
func (g *Graph) OutAt(i int) []Edge { return g.out[i] }

// InAt returns the edges entering the vertex with dense index i (do not
// modify).
func (g *Graph) InAt(i int) []Edge { return g.in[i] }

// OutIndexesAt returns the dense to-indexes of OutAt(i), parallel slice
// (do not modify).
func (g *Graph) OutIndexesAt(i int) []int32 { return g.outIdx[i] }

// InIndexesAt returns the dense from-indexes of InAt(i), parallel slice
// (do not modify).
func (g *Graph) InIndexesAt(i int) []int32 { return g.inIdx[i] }

// OutByLabel groups the out-neighborhood of p by edge label. The map's
// value slices preserve edge order.
func (g *Graph) OutByLabel(p pair.Pair) map[RelPair][]Edge {
	out := g.Out(p)
	if len(out) == 0 {
		return nil
	}
	m := make(map[RelPair][]Edge)
	for _, e := range out {
		m[e.Label] = append(m[e.Label], e)
	}
	return m
}

// LabelGroup is the out-edges of one vertex under one label, with the
// dense to-index of each edge in the parallel To slice.
type LabelGroup struct {
	Label RelPair
	Edges []Edge
	To    []int32
}

// OutGroupsAt groups vertex i's out edges by label, groups sorted by
// RelPair.Less — (R1, R2, Inverse), so labels differing only in direction
// process in a specified order. Per-group edge order preserves the stored
// edge order (ascending To), exactly the sequences OutByLabel yields.
func (g *Graph) OutGroupsAt(i int) []LabelGroup {
	es := g.out[i]
	if len(es) == 0 {
		return nil
	}
	idx := g.outIdx[i]
	pos := make(map[RelPair]int, 4)
	var groups []LabelGroup
	for k, e := range es {
		gi, ok := pos[e.Label]
		if !ok {
			gi = len(groups)
			pos[e.Label] = gi
			groups = append(groups, LabelGroup{Label: e.Label})
		}
		groups[gi].Edges = append(groups[gi].Edges, e)
		groups[gi].To = append(groups[gi].To, idx[k])
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].Label.Less(groups[b].Label) })
	return groups
}

// Isolated returns the vertices with no incident edges: the isolated
// entity pairs that propagation can never reach (§VII-B).
func (g *Graph) Isolated() []pair.Pair {
	var out []pair.Pair
	for i, v := range g.vertices {
		if len(g.out[i]) == 0 && len(g.in[i]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Components returns the weakly connected components as slices of vertex
// pairs, each sorted, largest first (ties broken by first vertex).
func (g *Graph) Components() [][]pair.Pair {
	n := len(g.vertices)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for i := 0; i < n; i++ {
		if comp[i] != -1 {
			continue
		}
		stack = append(stack[:0], i)
		comp[i] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, j := range g.outIdx[v] {
				if comp[j] == -1 {
					comp[j] = next
					stack = append(stack, int(j))
				}
			}
			for _, j := range g.inIdx[v] {
				if comp[j] == -1 {
					comp[j] = next
					stack = append(stack, int(j))
				}
			}
		}
		next++
	}
	groups := make([][]pair.Pair, next)
	for i, c := range comp {
		groups[c] = append(groups[c], g.vertices[i])
	}
	for _, grp := range groups {
		sort.Slice(grp, func(a, b int) bool { return grp[a].Less(grp[b]) })
	}
	sort.Slice(groups, func(a, b int) bool {
		if len(groups[a]) != len(groups[b]) {
			return len(groups[a]) > len(groups[b])
		}
		return groups[a][0].Less(groups[b][0])
	})
	return groups
}

// Labels returns the distinct edge labels present in the graph, sorted.
func (g *Graph) Labels() []RelPair {
	seen := make(map[RelPair]struct{})
	for _, es := range g.out {
		for _, e := range es {
			seen[e.Label] = struct{}{}
		}
	}
	out := make([]RelPair, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
