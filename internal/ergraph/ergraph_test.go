package ergraph

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

// figure1KBs reproduces the paper's Figure 1 fragment: Tim directs two
// movies in each KB, Joan/John act in them, Joan was born in NYC.
func figure1KBs() (*kb.KB, *kb.KB, map[string]pair.Pair) {
	k1 := kb.New("yago")
	k2 := kb.New("dbpedia")
	e := func(k *kb.KB, n string) kb.EntityID { return k.AddEntity(n) }

	yTim, dTim := e(k1, "y:Tim"), e(k2, "d:Tim")
	yJoan, dJoan := e(k1, "y:Joan"), e(k2, "d:Joan")
	yJohn, dJohn := e(k1, "y:John"), e(k2, "d:John")
	yCradle, dCradle := e(k1, "y:Cradle"), e(k2, "d:Cradle")
	yPlayer, dPlayer := e(k1, "y:Player"), e(k2, "d:Player")
	yNYC, dNYC := e(k1, "y:NYC"), e(k2, "d:NYC")

	dir1, dir2 := k1.AddRel("directedBy"), k2.AddRel("directedBy")
	act1, act2 := k1.AddRel("actedIn"), k2.AddRel("actedIn")
	born1, born2 := k1.AddRel("wasBornIn"), k2.AddRel("birthPlace")

	k1.AddRelTriple(yCradle, dir1, yTim)
	k1.AddRelTriple(yPlayer, dir1, yTim)
	k2.AddRelTriple(dCradle, dir2, dTim)
	k2.AddRelTriple(dPlayer, dir2, dTim)
	k1.AddRelTriple(yJoan, act1, yCradle)
	k1.AddRelTriple(yJohn, act1, yPlayer)
	k2.AddRelTriple(dJoan, act2, dCradle)
	k2.AddRelTriple(dJohn, act2, dPlayer)
	k1.AddRelTriple(yJoan, born1, yNYC)
	k2.AddRelTriple(dJoan, born2, dNYC)

	ps := map[string]pair.Pair{
		"tim":    {U1: yTim, U2: dTim},
		"joan":   {U1: yJoan, U2: dJoan},
		"john":   {U1: yJohn, U2: dJohn},
		"cradle": {U1: yCradle, U2: dCradle},
		"player": {U1: yPlayer, U2: dPlayer},
		"cp":     {U1: yCradle, U2: dPlayer},
		"nyc":    {U1: yNYC, U2: dNYC},
	}
	return k1, k2, ps
}

func buildFig1() (*Graph, map[string]pair.Pair) {
	k1, k2, ps := figure1KBs()
	vertices := []pair.Pair{ps["tim"], ps["joan"], ps["john"], ps["cradle"], ps["player"], ps["cp"], ps["nyc"]}
	return Build(k1, k2, vertices), ps
}

func TestBuildEdges(t *testing.T) {
	g, ps := buildFig1()
	if g.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	// joan --(wasBornIn,birthPlace)--> nyc
	out := g.Out(ps["joan"])
	foundNYC := false
	for _, e := range out {
		if e.To == ps["nyc"] {
			foundNYC = true
		}
	}
	if !foundNYC {
		t.Error("joan → nyc edge missing")
	}
	// cradle --(directedBy,directedBy)--> tim, and (cradle,player) → tim too.
	if len(g.Out(ps["cradle"])) == 0 || len(g.Out(ps["cp"])) == 0 {
		t.Error("directedBy edges missing")
	}
	// in-edges of tim come from cradle, player, cp (+ cross pairs absent
	// because (y:Player,d:Cradle) is not a vertex).
	if got := len(g.In(ps["tim"])); got != 3 {
		t.Errorf("in-degree of tim = %d, want 3", got)
	}
}

func TestEdgeSymmetryOfIndexes(t *testing.T) {
	g, _ := buildFig1()
	// Every out edge appears as an in edge of its target.
	for _, v := range g.Vertices() {
		for _, e := range g.Out(v) {
			found := false
			for _, e2 := range g.In(e.To) {
				if e2 == e {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %v missing from in-index", e)
			}
		}
	}
}

func TestOutByLabel(t *testing.T) {
	g, ps := buildFig1()
	byLabel := g.OutByLabel(ps["joan"])
	if len(byLabel) != 2 {
		t.Fatalf("joan should have 2 distinct labels, got %d", len(byLabel))
	}
	total := 0
	for _, es := range byLabel {
		total += len(es)
	}
	if total != len(g.Out(ps["joan"])) {
		t.Error("OutByLabel lost edges")
	}
}

// TestDenseIndexesMirrorEdges pins the outIdx/inIdx arrays to the edge
// lists: every dense index must name exactly the edge's endpoint, in the
// parent graph and in an induced subgraph.
func TestDenseIndexesMirrorEdges(t *testing.T) {
	g, ps := buildFig1()
	check := func(g *Graph, ctx string) {
		t.Helper()
		for i := range g.Vertices() {
			out, outIdx := g.OutAt(i), g.OutIndexesAt(i)
			if len(out) != len(outIdx) {
				t.Fatalf("%s: vertex %d out %d edges, %d indexes", ctx, i, len(out), len(outIdx))
			}
			for k, e := range out {
				if got := g.IndexOf(e.To); got != int(outIdx[k]) {
					t.Fatalf("%s: outIdx[%d][%d] = %d, IndexOf(To) = %d", ctx, i, k, outIdx[k], got)
				}
			}
			in, inIdx := g.InAt(i), g.InIndexesAt(i)
			if len(in) != len(inIdx) {
				t.Fatalf("%s: vertex %d in %d edges, %d indexes", ctx, i, len(in), len(inIdx))
			}
			for k, e := range in {
				if got := g.IndexOf(e.From); got != int(inIdx[k]) {
					t.Fatalf("%s: inIdx[%d][%d] = %d, IndexOf(From) = %d", ctx, i, k, inIdx[k], got)
				}
			}
		}
	}
	check(g, "parent")
	sub := g.Subgraph([]pair.Pair{ps["tim"], ps["cradle"], ps["player"], ps["cp"]})
	check(sub, "subgraph")
	// The subgraph keeps every edge among the kept vertices.
	if sub.NumEdges() == 0 {
		t.Fatal("subgraph dropped all edges")
	}
}

// TestOutGroupsAtInverseTieBreak is the regression test for the label
// ordering bug: two labels differing only in direction must group in the
// specified forward-before-inverse order (BuildProb used to sort labels on
// (R1, R2) alone, leaving the tie to sort.Slice's unstable whim).
func TestOutGroupsAtInverseTieBreak(t *testing.T) {
	k1 := kb.New("k1")
	k2 := kb.New("k2")
	r1 := k1.AddRel("linked")
	r2 := k2.AddRel("linked")
	a1, b1 := k1.AddEntity("a1"), k1.AddEntity("b1")
	a2, b2 := k2.AddEntity("a2"), k2.AddEntity("b2")
	// The relation runs both ways between a and b in both KBs, so vertex
	// (a1,a2) carries a forward AND an inverse edge under the same (r1,r2).
	k1.AddRelTriple(a1, r1, b1)
	k1.AddRelTriple(b1, r1, a1)
	k2.AddRelTriple(a2, r2, b2)
	k2.AddRelTriple(b2, r2, a2)
	va := pair.Pair{U1: a1, U2: a2}
	vb := pair.Pair{U1: b1, U2: b2}
	g := Build(k1, k2, []pair.Pair{va, vb})
	groups := g.OutGroupsAt(g.IndexOf(va))
	if len(groups) != 2 {
		t.Fatalf("got %d label groups, want 2 (forward + inverse): %+v", len(groups), groups)
	}
	if groups[0].Label.Inverse || !groups[1].Label.Inverse {
		t.Fatalf("labels out of order: %+v then %+v, want forward before inverse", groups[0].Label, groups[1].Label)
	}
	for gi, grp := range groups {
		if len(grp.Edges) != len(grp.To) {
			t.Fatalf("group %d: %d edges, %d to-indexes", gi, len(grp.Edges), len(grp.To))
		}
		for k, e := range grp.Edges {
			if g.IndexOf(e.To) != int(grp.To[k]) {
				t.Fatalf("group %d edge %d: To index %d, IndexOf %d", gi, k, grp.To[k], g.IndexOf(e.To))
			}
		}
	}
	if !(RelPair{R1: r1, R2: r2}).Less(RelPair{R1: r1, R2: r2, Inverse: true}) {
		t.Error("RelPair.Less must order forward before inverse")
	}
}

func TestIsolated(t *testing.T) {
	k1, k2, ps := figure1KBs()
	lonely1 := k1.AddEntity("y:Lonely")
	lonely2 := k2.AddEntity("d:Lonely")
	iso := pair.Pair{U1: lonely1, U2: lonely2}
	g := Build(k1, k2, []pair.Pair{ps["joan"], ps["nyc"], iso})
	got := g.Isolated()
	if len(got) != 1 || got[0] != iso {
		t.Errorf("Isolated = %v, want [%v]", got, iso)
	}
}

func TestComponents(t *testing.T) {
	k1, k2, ps := figure1KBs()
	lonely1 := k1.AddEntity("y:Lonely")
	lonely2 := k2.AddEntity("d:Lonely")
	iso := pair.Pair{U1: lonely1, U2: lonely2}
	vertices := []pair.Pair{ps["tim"], ps["joan"], ps["john"], ps["cradle"], ps["player"], ps["cp"], ps["nyc"], iso}
	g := Build(k1, k2, vertices)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2 (sizes: %v)", len(comps), sizes(comps))
	}
	if len(comps[0]) != 7 || len(comps[1]) != 1 {
		t.Errorf("component sizes = %v, want [7 1]", sizes(comps))
	}
	if comps[1][0] != iso {
		t.Errorf("singleton component = %v, want %v", comps[1][0], iso)
	}
}

func sizes(comps [][]pair.Pair) []int {
	out := make([]int, len(comps))
	for i, c := range comps {
		out[i] = len(c)
	}
	return out
}

func TestLabels(t *testing.T) {
	g, _ := buildFig1()
	labels := g.Labels()
	// Three relationship pairs, each materialized forward and inverse.
	if len(labels) != 6 {
		t.Errorf("Labels = %v, want 6 (3 pairs × 2 directions)", labels)
	}
	forward, inverse := 0, 0
	for _, l := range labels {
		if l.Inverse {
			inverse++
		} else {
			forward++
		}
	}
	if forward != 3 || inverse != 3 {
		t.Errorf("forward=%d inverse=%d, want 3/3", forward, inverse)
	}
}

func TestInverseEdgesExist(t *testing.T) {
	g, ps := buildFig1()
	// (Tim,Tim) must reach the movie pairs through the inverse of
	// directedBy — the paper's §V-B propagation example.
	found := false
	for _, e := range g.Out(ps["tim"]) {
		if e.To == ps["cradle"] && e.Label.Inverse {
			found = true
		}
	}
	if !found {
		t.Errorf("no inverse edge tim → cradle: %v", g.Out(ps["tim"]))
	}
}

func TestContainsAndIndexOf(t *testing.T) {
	g, ps := buildFig1()
	if !g.Contains(ps["tim"]) {
		t.Error("Contains(tim) = false")
	}
	if g.Contains(pair.Pair{U1: 99, U2: 99}) {
		t.Error("Contains(fake) = true")
	}
	if g.IndexOf(ps["tim"]) < 0 {
		t.Error("IndexOf(tim) < 0")
	}
	if g.IndexOf(pair.Pair{U1: 99, U2: 99}) != -1 {
		t.Error("IndexOf(fake) != -1")
	}
}

func TestEmptyGraph(t *testing.T) {
	k1, k2, _ := figure1KBs()
	g := Build(k1, k2, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("empty vertex set should give empty graph")
	}
	if comps := g.Components(); len(comps) != 0 {
		t.Errorf("Components = %v", comps)
	}
}
