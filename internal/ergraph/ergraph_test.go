package ergraph

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

// figure1KBs reproduces the paper's Figure 1 fragment: Tim directs two
// movies in each KB, Joan/John act in them, Joan was born in NYC.
func figure1KBs() (*kb.KB, *kb.KB, map[string]pair.Pair) {
	k1 := kb.New("yago")
	k2 := kb.New("dbpedia")
	e := func(k *kb.KB, n string) kb.EntityID { return k.AddEntity(n) }

	yTim, dTim := e(k1, "y:Tim"), e(k2, "d:Tim")
	yJoan, dJoan := e(k1, "y:Joan"), e(k2, "d:Joan")
	yJohn, dJohn := e(k1, "y:John"), e(k2, "d:John")
	yCradle, dCradle := e(k1, "y:Cradle"), e(k2, "d:Cradle")
	yPlayer, dPlayer := e(k1, "y:Player"), e(k2, "d:Player")
	yNYC, dNYC := e(k1, "y:NYC"), e(k2, "d:NYC")

	dir1, dir2 := k1.AddRel("directedBy"), k2.AddRel("directedBy")
	act1, act2 := k1.AddRel("actedIn"), k2.AddRel("actedIn")
	born1, born2 := k1.AddRel("wasBornIn"), k2.AddRel("birthPlace")

	k1.AddRelTriple(yCradle, dir1, yTim)
	k1.AddRelTriple(yPlayer, dir1, yTim)
	k2.AddRelTriple(dCradle, dir2, dTim)
	k2.AddRelTriple(dPlayer, dir2, dTim)
	k1.AddRelTriple(yJoan, act1, yCradle)
	k1.AddRelTriple(yJohn, act1, yPlayer)
	k2.AddRelTriple(dJoan, act2, dCradle)
	k2.AddRelTriple(dJohn, act2, dPlayer)
	k1.AddRelTriple(yJoan, born1, yNYC)
	k2.AddRelTriple(dJoan, born2, dNYC)

	ps := map[string]pair.Pair{
		"tim":    {U1: yTim, U2: dTim},
		"joan":   {U1: yJoan, U2: dJoan},
		"john":   {U1: yJohn, U2: dJohn},
		"cradle": {U1: yCradle, U2: dCradle},
		"player": {U1: yPlayer, U2: dPlayer},
		"cp":     {U1: yCradle, U2: dPlayer},
		"nyc":    {U1: yNYC, U2: dNYC},
	}
	return k1, k2, ps
}

func buildFig1() (*Graph, map[string]pair.Pair) {
	k1, k2, ps := figure1KBs()
	vertices := []pair.Pair{ps["tim"], ps["joan"], ps["john"], ps["cradle"], ps["player"], ps["cp"], ps["nyc"]}
	return Build(k1, k2, vertices), ps
}

func TestBuildEdges(t *testing.T) {
	g, ps := buildFig1()
	if g.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	// joan --(wasBornIn,birthPlace)--> nyc
	out := g.Out(ps["joan"])
	foundNYC := false
	for _, e := range out {
		if e.To == ps["nyc"] {
			foundNYC = true
		}
	}
	if !foundNYC {
		t.Error("joan → nyc edge missing")
	}
	// cradle --(directedBy,directedBy)--> tim, and (cradle,player) → tim too.
	if len(g.Out(ps["cradle"])) == 0 || len(g.Out(ps["cp"])) == 0 {
		t.Error("directedBy edges missing")
	}
	// in-edges of tim come from cradle, player, cp (+ cross pairs absent
	// because (y:Player,d:Cradle) is not a vertex).
	if got := len(g.In(ps["tim"])); got != 3 {
		t.Errorf("in-degree of tim = %d, want 3", got)
	}
}

func TestEdgeSymmetryOfIndexes(t *testing.T) {
	g, _ := buildFig1()
	// Every out edge appears as an in edge of its target.
	for _, v := range g.Vertices() {
		for _, e := range g.Out(v) {
			found := false
			for _, e2 := range g.In(e.To) {
				if e2 == e {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %v missing from in-index", e)
			}
		}
	}
}

func TestOutByLabel(t *testing.T) {
	g, ps := buildFig1()
	byLabel := g.OutByLabel(ps["joan"])
	if len(byLabel) != 2 {
		t.Fatalf("joan should have 2 distinct labels, got %d", len(byLabel))
	}
	total := 0
	for _, es := range byLabel {
		total += len(es)
	}
	if total != len(g.Out(ps["joan"])) {
		t.Error("OutByLabel lost edges")
	}
}

func TestIsolated(t *testing.T) {
	k1, k2, ps := figure1KBs()
	lonely1 := k1.AddEntity("y:Lonely")
	lonely2 := k2.AddEntity("d:Lonely")
	iso := pair.Pair{U1: lonely1, U2: lonely2}
	g := Build(k1, k2, []pair.Pair{ps["joan"], ps["nyc"], iso})
	got := g.Isolated()
	if len(got) != 1 || got[0] != iso {
		t.Errorf("Isolated = %v, want [%v]", got, iso)
	}
}

func TestComponents(t *testing.T) {
	k1, k2, ps := figure1KBs()
	lonely1 := k1.AddEntity("y:Lonely")
	lonely2 := k2.AddEntity("d:Lonely")
	iso := pair.Pair{U1: lonely1, U2: lonely2}
	vertices := []pair.Pair{ps["tim"], ps["joan"], ps["john"], ps["cradle"], ps["player"], ps["cp"], ps["nyc"], iso}
	g := Build(k1, k2, vertices)
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2 (sizes: %v)", len(comps), sizes(comps))
	}
	if len(comps[0]) != 7 || len(comps[1]) != 1 {
		t.Errorf("component sizes = %v, want [7 1]", sizes(comps))
	}
	if comps[1][0] != iso {
		t.Errorf("singleton component = %v, want %v", comps[1][0], iso)
	}
}

func sizes(comps [][]pair.Pair) []int {
	out := make([]int, len(comps))
	for i, c := range comps {
		out[i] = len(c)
	}
	return out
}

func TestLabels(t *testing.T) {
	g, _ := buildFig1()
	labels := g.Labels()
	// Three relationship pairs, each materialized forward and inverse.
	if len(labels) != 6 {
		t.Errorf("Labels = %v, want 6 (3 pairs × 2 directions)", labels)
	}
	forward, inverse := 0, 0
	for _, l := range labels {
		if l.Inverse {
			inverse++
		} else {
			forward++
		}
	}
	if forward != 3 || inverse != 3 {
		t.Errorf("forward=%d inverse=%d, want 3/3", forward, inverse)
	}
}

func TestInverseEdgesExist(t *testing.T) {
	g, ps := buildFig1()
	// (Tim,Tim) must reach the movie pairs through the inverse of
	// directedBy — the paper's §V-B propagation example.
	found := false
	for _, e := range g.Out(ps["tim"]) {
		if e.To == ps["cradle"] && e.Label.Inverse {
			found = true
		}
	}
	if !found {
		t.Errorf("no inverse edge tim → cradle: %v", g.Out(ps["tim"]))
	}
}

func TestContainsAndIndexOf(t *testing.T) {
	g, ps := buildFig1()
	if !g.Contains(ps["tim"]) {
		t.Error("Contains(tim) = false")
	}
	if g.Contains(pair.Pair{U1: 99, U2: 99}) {
		t.Error("Contains(fake) = true")
	}
	if g.IndexOf(ps["tim"]) < 0 {
		t.Error("IndexOf(tim) < 0")
	}
	if g.IndexOf(pair.Pair{U1: 99, U2: 99}) != -1 {
		t.Error("IndexOf(fake) != -1")
	}
}

func TestEmptyGraph(t *testing.T) {
	k1, k2, _ := figure1KBs()
	g := Build(k1, k2, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("empty vertex set should give empty graph")
	}
	if comps := g.Components(); len(comps) != 0 {
		t.Errorf("Components = %v", comps)
	}
}
