// Package server exposes resolution sessions over HTTP/JSON: the
// asynchronous face of the Remp pipeline. A crowd frontend creates a
// session, polls its question batches, posts worker answers as they
// arrive — in any order — and fetches the final result (with
// precision/recall/F1 when a gold standard is known). Snapshots move
// sessions across process restarts.
//
// Endpoints (all JSON):
//
//	POST   /v1/sessions            create a session (built-in dataset or inline TSV KBs)
//	GET    /v1/sessions            list live session IDs
//	GET    /v1/sessions/{id}       session status
//	GET    /v1/sessions/{id}/batch open questions awaiting answers
//	POST   /v1/sessions/{id}/answers deliver worker labels
//	GET    /v1/sessions/{id}/result  current (or final) result, with PRF
//	GET    /v1/sessions/{id}/snapshot durable session state
//	POST   /v1/sessions/restore    recreate a session from a snapshot
//	DELETE /v1/sessions/{id}       forget a session, releasing its questions
//
// Sessions created from the same dataset share a answer cache, so two
// concurrent jobs over one dataset never post the same pair twice.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"

	"repro/internal/datasets"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/session"
	"repro/remp"
)

// OptionsDTO is the JSON form of remp.Options.
type OptionsDTO struct {
	K                         int     `json:"k,omitempty"`
	Tau                       float64 `json:"tau,omitempty"`
	Mu                        int     `json:"mu,omitempty"`
	LabelSimThreshold         float64 `json:"label_sim_threshold,omitempty"`
	Budget                    int     `json:"budget,omitempty"`
	MaxLoops                  int     `json:"max_loops,omitempty"`
	Strategy                  string  `json:"strategy,omitempty"`
	DisableIsolatedClassifier bool    `json:"disable_isolated_classifier,omitempty"`
	Seed                      int64   `json:"seed,omitempty"`
	// Shards shards the session's pipeline (0 = auto, 1 = monolithic; see
	// remp.Options.Shards). A server-wide default applies when omitted.
	Shards int `json:"shards,omitempty"`
}

func (o OptionsDTO) toOptions() remp.Options {
	return remp.Options{
		K: o.K, Tau: o.Tau, Mu: o.Mu, LabelSimThreshold: o.LabelSimThreshold,
		Budget: o.Budget, MaxLoops: o.MaxLoops, Strategy: o.Strategy,
		DisableIsolatedClassifier: o.DisableIsolatedClassifier, Seed: o.Seed,
		Shards: o.Shards,
	}
}

// CreateRequest describes the dataset and options of a new session:
// either a built-in dataset by name, or a pair of inline TSV KBs (the
// cmd/datagen format) with an optional gold standard for evaluation.
type CreateRequest struct {
	Dataset string      `json:"dataset,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	KB1TSV  string      `json:"kb1_tsv,omitempty"`
	KB2TSV  string      `json:"kb2_tsv,omitempty"`
	Gold    [][2]string `json:"gold,omitempty"`
	Options OptionsDTO  `json:"options"`
}

// QuestionDTO is one published question, with entity names for display.
type QuestionDTO struct {
	ID    string `json:"id"`
	Left  string `json:"left"`
	Right string `json:"right"`
}

// AnswerDTO is the crowd's labels for one question.
type AnswerDTO struct {
	ID     string       `json:"id"`
	Labels []remp.Label `json:"labels"`
}

// AnswersRequest is the body of POST /v1/sessions/{id}/answers.
type AnswersRequest struct {
	Answers []AnswerDTO `json:"answers"`
}

// RejectedAnswerDTO reports one answer the session could not apply.
type RejectedAnswerDTO struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

// AnswersResponse is the body of POST /v1/sessions/{id}/answers: the
// refreshed session status plus a per-answer outcome. Answers are applied
// independently, so retrying a request whose answers were already
// delivered is safe — the duplicates come back in Rejected while the
// session state is untouched.
type AnswersResponse struct {
	SessionInfo
	Accepted int                 `json:"accepted"`
	Rejected []RejectedAnswerDTO `json:"rejected,omitempty"`
}

// SessionInfo is the session status envelope most endpoints return.
type SessionInfo struct {
	ID        string        `json:"id"`
	State     string        `json:"state"`
	Questions int           `json:"questions"`
	Loops     int           `json:"loops"`
	Shards    int           `json:"shards,omitempty"`
	Batch     []QuestionDTO `json:"batch,omitempty"`
}

// PRFDTO is precision / recall / F1 against the session's gold standard.
type PRFDTO struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// ResultDTO is the body of GET /v1/sessions/{id}/result.
type ResultDTO struct {
	Done              bool        `json:"done"`
	Questions         int         `json:"questions"`
	Loops             int         `json:"loops"`
	Matches           [][2]string `json:"matches"`
	Confirmed         int         `json:"confirmed"`
	Propagated        int         `json:"propagated"`
	IsolatedPredicted int         `json:"isolated_predicted"`
	NonMatches        int         `json:"non_matches"`
	PRF               *PRFDTO     `json:"prf,omitempty"`
}

// SnapshotDTO bundles a session snapshot with the create spec needed to
// re-prepare its pipeline on restore.
type SnapshotDTO struct {
	Create  CreateRequest   `json:"create"`
	Session json.RawMessage `json:"session"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// sessionMeta is the server-side state alongside each remp.Session.
type sessionMeta struct {
	spec      CreateRequest
	namespace string
	k1, k2    *kb.KB
	gold      *remp.Gold
}

// Server serves resolution sessions over HTTP.
type Server struct {
	mgr           *remp.Manager
	mu            sync.Mutex
	meta          map[string]*sessionMeta
	logf          func(format string, args ...any)
	defaultShards int
}

// New returns a server with an empty session manager. logf receives one
// line per request outcome; nil disables logging.
func New(logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{mgr: remp.NewManager(), meta: make(map[string]*sessionMeta), logf: logf}
}

// SetDefaultShards sets the shard count applied to sessions whose create
// request does not specify one (the cmd/remp-server -shards flag). 0
// keeps automatic sharding.
func (s *Server) SetDefaultShards(n int) { s.defaultShards = n }

// applyDefaults folds server-wide defaults into a request's options.
func (s *Server) applyDefaults(o OptionsDTO) OptionsDTO {
	if o.Shards == 0 && s.defaultShards != 0 {
		o.Shards = s.defaultShards
	}
	return o
}

// Handler returns the HTTP handler for all /v1 endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("POST /v1/sessions/restore", s.handleRestore)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/sessions/{id}/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/sessions/{id}/answers", s.handleAnswers)
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSnapshot)
	return mux
}

// ListenAndServe runs the server on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	log.Printf("remp-server listening on %s", addr)
	return srv.ListenAndServe()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// loadSpec materializes the dataset of a create spec: KBs, optional gold,
// and the cache namespace shared by sessions over the same data.
func loadSpec(req CreateRequest) (ds remp.Dataset, gold *remp.Gold, namespace string, err error) {
	switch {
	case req.Dataset != "":
		d, derr := datasets.ByName(req.Dataset, req.Seed)
		if derr != nil {
			return remp.Dataset{}, nil, "", fmt.Errorf("unknown dataset %q (built-ins: %s)", req.Dataset, strings.Join(datasets.Names(), ", "))
		}
		return remp.Dataset{K1: d.K1, K2: d.K2}, d.Gold, fmt.Sprintf("builtin:%s:%d", req.Dataset, req.Seed), nil
	case req.KB1TSV != "" && req.KB2TSV != "":
		k1, kerr := kb.ReadTSV(strings.NewReader(req.KB1TSV))
		if kerr != nil {
			return remp.Dataset{}, nil, "", fmt.Errorf("kb1_tsv: %v", kerr)
		}
		k2, kerr := kb.ReadTSV(strings.NewReader(req.KB2TSV))
		if kerr != nil {
			return remp.Dataset{}, nil, "", fmt.Errorf("kb2_tsv: %v", kerr)
		}
		var goldStd *remp.Gold
		if len(req.Gold) > 0 {
			matches := make([]remp.Pair, 0, len(req.Gold))
			for i, g := range req.Gold {
				u1, u2 := k1.Entity(g[0]), k2.Entity(g[1])
				if u1 == kb.NoEntity || u2 == kb.NoEntity {
					return remp.Dataset{}, nil, "", fmt.Errorf("gold[%d]: unknown entity in %q / %q", i, g[0], g[1])
				}
				matches = append(matches, remp.Pair{U1: u1, U2: u2})
			}
			goldStd = remp.NewGold(matches)
		}
		h := sha256.New()
		h.Write([]byte(req.KB1TSV))
		h.Write([]byte{0})
		h.Write([]byte(req.KB2TSV))
		return remp.Dataset{K1: k1, K2: k2}, goldStd, "inline:" + hex.EncodeToString(h.Sum(nil)[:12]), nil
	default:
		return remp.Dataset{}, nil, "", errors.New("either dataset or both kb1_tsv and kb2_tsv are required")
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	ds, gold, namespace, err := loadSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess, err := s.mgr.NewSession(ds, s.applyDefaults(req.Options).toOptions(), namespace)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	s.meta[sess.ID()] = &sessionMeta{spec: req, namespace: namespace, k1: ds.K1, k2: ds.K2, gold: gold}
	s.mu.Unlock()
	s.logf("created session %s (namespace %s)", sess.ID(), namespace)
	writeJSON(w, http.StatusCreated, s.info(sess, true))
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var dto SnapshotDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		writeError(w, http.StatusBadRequest, "malformed snapshot: %v", err)
		return
	}
	ds, gold, namespace, err := loadSpec(dto.Create)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess, err := s.mgr.RestoreSession(ds, s.applyDefaults(dto.Create.Options).toOptions(), namespace, dto.Session)
	if err != nil {
		// Only an ID collision is a genuine conflict; malformed or
		// diverging snapshots are client errors.
		status := http.StatusBadRequest
		if errors.Is(err, session.ErrSessionExists) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	s.mu.Lock()
	s.meta[sess.ID()] = &sessionMeta{spec: dto.Create, namespace: namespace, k1: ds.K1, k2: ds.K2, gold: gold}
	s.mu.Unlock()
	s.logf("restored session %s (namespace %s)", sess.ID(), namespace)
	writeJSON(w, http.StatusCreated, s.info(sess, true))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": s.mgr.SessionIDs()})
}

// lookup resolves the {id} path segment to a session and its metadata.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*remp.Session, *sessionMeta, bool) {
	id := r.PathValue("id")
	sess, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return nil, nil, false
	}
	s.mu.Lock()
	meta := s.meta[id]
	s.mu.Unlock()
	if meta == nil {
		// The session raced a DELETE between the two lookups.
		writeError(w, http.StatusNotFound, "no session %q", id)
		return nil, nil, false
	}
	return sess, meta, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.info(sess, false))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.info(sess, true))
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req AnswersRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if len(req.Answers) == 0 {
		writeError(w, http.StatusBadRequest, "no answers in request")
		return
	}
	// Answers are applied independently so a retried or partially
	// duplicate request cannot fail answers that still fit: each
	// rejection (duplicate, no longer open, malformed, labelless) is
	// reported per answer instead of aborting the batch.
	resp := AnswersResponse{}
	for _, a := range req.Answers {
		if err := sess.Deliver(a.ID, a.Labels); err != nil {
			resp.Rejected = append(resp.Rejected, RejectedAnswerDTO{ID: a.ID, Error: err.Error()})
			continue
		}
		resp.Accepted++
	}
	s.logf("session %s: %d answers accepted, %d rejected", sess.ID(), resp.Accepted, len(resp.Rejected))
	resp.SessionInfo = s.info(sess, true)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess, meta, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res := sess.Result()
	dto := ResultDTO{
		Done:              sess.Done(),
		Questions:         res.Questions,
		Loops:             res.Loops,
		Matches:           make([][2]string, 0, len(res.Matches)),
		Confirmed:         len(res.Confirmed),
		Propagated:        len(res.Propagated),
		IsolatedPredicted: len(res.IsolatedPredicted),
		NonMatches:        len(res.NonMatches),
	}
	for _, m := range pair.Set(res.Matches).Sorted() {
		dto.Matches = append(dto.Matches, [2]string{meta.k1.EntityName(m.U1), meta.k2.EntityName(m.U2)})
	}
	if meta.gold != nil {
		prf := remp.Evaluate(res.Matches, meta.gold)
		dto.PRF = &PRFDTO{Precision: prf.Precision, Recall: prf.Recall, F1: prf.F1}
	}
	writeJSON(w, http.StatusOK, dto)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, meta, ok := s.lookup(w, r)
	if !ok {
		return
	}
	data, err := sess.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotDTO{Create: meta.spec, Session: data})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mgr.Remove(sess.ID())
	s.mu.Lock()
	delete(s.meta, sess.ID())
	s.mu.Unlock()
	s.logf("deleted session %s", sess.ID())
	w.WriteHeader(http.StatusNoContent)
}

// info builds the status envelope, optionally materializing the open
// batch (which may auto-answer questions from the shared cache).
func (s *Server) info(sess *remp.Session, withBatch bool) SessionInfo {
	var batch []QuestionDTO
	if withBatch {
		s.mu.Lock()
		meta := s.meta[sess.ID()]
		s.mu.Unlock()
		for _, q := range sess.NextBatch() {
			dto := QuestionDTO{ID: q.ID}
			if meta != nil {
				dto.Left = meta.k1.EntityName(q.Pair.U1)
				dto.Right = meta.k2.EntityName(q.Pair.U2)
			}
			batch = append(batch, dto)
		}
	}
	questions, loops := sess.Progress()
	return SessionInfo{
		ID:        sess.ID(),
		State:     string(sess.State()),
		Questions: questions,
		Loops:     loops,
		Shards:    sess.Shards(),
		Batch:     batch,
	}
}
