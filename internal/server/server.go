// Package server exposes resolution sessions over HTTP/JSON: the
// asynchronous face of the Remp pipeline. A crowd frontend creates a
// session, polls its question batches, posts worker answers as they
// arrive — in any order — and fetches the final result (with
// precision/recall/F1 when a gold standard is known). Snapshots move
// sessions across process restarts.
//
// Endpoints (all JSON):
//
//	POST   /v1/sessions            create a session (built-in dataset or inline TSV KBs)
//	GET    /v1/sessions            list live session IDs
//	GET    /v1/sessions/{id}       session status
//	GET    /v1/sessions/{id}/batch open questions awaiting answers
//	POST   /v1/sessions/{id}/answers deliver worker labels
//	GET    /v1/sessions/{id}/result  current (or final) result, with PRF
//	GET    /v1/sessions/{id}/snapshot durable session state
//	POST   /v1/sessions/restore    recreate a session from a snapshot
//	DELETE /v1/sessions/{id}       forget a session, releasing its questions
//	GET    /healthz                liveness: always 200 with uptime/session/store detail
//	GET    /readyz                 readiness: 503 once the server begins draining
//	GET    /metrics                Prometheus text exposition (?format=json for a JSON snapshot)
//	GET    /debug/vars             expvar counters (remp_server map)
//
// Sessions created from the same dataset share a answer cache, so two
// concurrent jobs over one dataset never post the same pair twice.
//
// A server opened over a disk store (Config.Store) journals every
// session: each accepted answer is fsync'd to a WAL before the HTTP
// response, and a server restarted over the same store recovers every
// session under its original ID. Shutdown drains in-flight requests —
// later requests are refused with 503 — and flushes all sessions so
// recovery replays snapshots only.
//
// A server configured with Config.Workers runs in cluster mode: every
// session's shard engines are placed on remp-worker processes through an
// internal/cluster coordinator, with heartbeat liveness and crash
// failover. The persisted create spec doubles as the worker-side
// pipeline spec (PrepareSpec), so clustered sessions — including ones
// recovered from the store — resolve byte-identically to local ones.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/session"
	"repro/remp"
)

// stats is the process-wide expvar counter map, exported as
// "remp_server" under GET /debug/vars. Counters are cumulative across
// all Server instances in the process.
var stats = expvar.NewMap("remp_server")

// OptionsDTO is the JSON form of remp.Options.
type OptionsDTO struct {
	K                         int     `json:"k,omitempty"`
	Tau                       float64 `json:"tau,omitempty"`
	Mu                        int     `json:"mu,omitempty"`
	LabelSimThreshold         float64 `json:"label_sim_threshold,omitempty"`
	Budget                    int     `json:"budget,omitempty"`
	MaxLoops                  int     `json:"max_loops,omitempty"`
	Strategy                  string  `json:"strategy,omitempty"`
	DisableIsolatedClassifier bool    `json:"disable_isolated_classifier,omitempty"`
	Seed                      int64   `json:"seed,omitempty"`
	// Shards shards the session's pipeline (0 = auto, 1 = monolithic; see
	// remp.Options.Shards). A server-wide default applies when omitted.
	Shards int `json:"shards,omitempty"`
	// Deduce enables transitive-closure answer deduction (see
	// remp.Options.Deduce): questions whose verdicts recorded answers
	// already imply are answered for free instead of being published.
	Deduce bool `json:"deduce,omitempty"`
}

// ToOptions maps the DTO onto remp.Options.
func (o OptionsDTO) ToOptions() remp.Options {
	return remp.Options{
		K: o.K, Tau: o.Tau, Mu: o.Mu, LabelSimThreshold: o.LabelSimThreshold,
		Budget: o.Budget, MaxLoops: o.MaxLoops, Strategy: o.Strategy,
		DisableIsolatedClassifier: o.DisableIsolatedClassifier, Seed: o.Seed,
		Shards: o.Shards, Deduce: o.Deduce,
	}
}

// CreateRequest describes the dataset and options of a new session:
// either a built-in dataset by name, or a pair of inline TSV KBs (the
// cmd/datagen format) with an optional gold standard for evaluation.
// ClientRef, when set, makes creation idempotent: a retried create with
// the same ref returns the already-created session instead of a new one
// — essential for clients that must retry a create whose response was
// lost to a crash (the load generator). Refs survive restarts (they are
// part of the persisted spec) but are best-effort under concurrent
// same-ref creates, which clients are expected not to issue.
type CreateRequest struct {
	Dataset   string      `json:"dataset,omitempty"`
	Seed      int64       `json:"seed,omitempty"`
	KB1TSV    string      `json:"kb1_tsv,omitempty"`
	KB2TSV    string      `json:"kb2_tsv,omitempty"`
	Gold      [][2]string `json:"gold,omitempty"`
	ClientRef string      `json:"client_ref,omitempty"`
	Options   OptionsDTO  `json:"options"`
}

// QuestionDTO is one published question, with entity names for display.
type QuestionDTO struct {
	ID    string `json:"id"`
	Left  string `json:"left"`
	Right string `json:"right"`
}

// AnswerDTO is the crowd's labels for one question.
type AnswerDTO struct {
	ID     string       `json:"id"`
	Labels []remp.Label `json:"labels"`
}

// AnswersRequest is the body of POST /v1/sessions/{id}/answers.
type AnswersRequest struct {
	Answers []AnswerDTO `json:"answers"`
}

// RejectedAnswerDTO reports one answer the session could not apply.
type RejectedAnswerDTO struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

// AnswersResponse is the body of POST /v1/sessions/{id}/answers: the
// refreshed session status plus a per-answer outcome. Answers are applied
// independently, so retrying a request whose answers were already
// delivered is safe — the duplicates come back in Rejected while the
// session state is untouched.
type AnswersResponse struct {
	SessionInfo
	Accepted int                 `json:"accepted"`
	Rejected []RejectedAnswerDTO `json:"rejected,omitempty"`
}

// SessionInfo is the session status envelope most endpoints return.
type SessionInfo struct {
	ID        string        `json:"id"`
	State     string        `json:"state"`
	Questions int           `json:"questions"`
	Deduced   int           `json:"deduced,omitempty"`
	Loops     int           `json:"loops"`
	Shards    int           `json:"shards,omitempty"`
	Batch     []QuestionDTO `json:"batch,omitempty"`
}

// PRFDTO is precision / recall / F1 against the session's gold standard.
type PRFDTO struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// ResultDTO is the body of GET /v1/sessions/{id}/result.
type ResultDTO struct {
	Done              bool        `json:"done"`
	Questions         int         `json:"questions"`
	Deduced           int         `json:"deduced,omitempty"`
	Loops             int         `json:"loops"`
	Matches           [][2]string `json:"matches"`
	Confirmed         int         `json:"confirmed"`
	Propagated        int         `json:"propagated"`
	IsolatedPredicted int         `json:"isolated_predicted"`
	NonMatches        int         `json:"non_matches"`
	PRF               *PRFDTO     `json:"prf,omitempty"`
}

// SnapshotDTO bundles a session snapshot with the create spec needed to
// re-prepare its pipeline on restore.
type SnapshotDTO struct {
	Create  CreateRequest   `json:"create"`
	Session json.RawMessage `json:"session"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// sessionMeta is the server-side state alongside each remp.Session.
type sessionMeta struct {
	spec      CreateRequest
	namespace string
	k1, k2    *kb.KB
	gold      *remp.Gold
}

// Server serves resolution sessions over HTTP.
type Server struct {
	mgr           *remp.Manager
	mu            sync.Mutex
	meta          map[string]*sessionMeta
	refs          map[string]string // CreateRequest.ClientRef → session ID
	logf          func(format string, args ...any)
	log           *slog.Logger
	metrics       *serverMetrics
	reqID         atomic.Int64
	defaultShards int
	storeKind     string
	cluster       *cluster.Coordinator // nil when not clustered
	draining      atomic.Bool
	// drainMu is the in-flight barrier: every gated request holds a read
	// lock for its whole lifetime; Shutdown takes the write lock once
	// draining is set, which blocks until the in-flight requests finish.
	// (A WaitGroup is off the table: Add racing Wait at counter zero is
	// documented misuse and panics.)
	drainMu sync.RWMutex
}

// Config configures a Server.
type Config struct {
	// Logf receives one line per request outcome; nil disables logging.
	// Ignored when Logger is set.
	Logf func(format string, args ...any)
	// Logger is the structured logger for request and session events;
	// when nil, one is derived from Logf (or logging is disabled).
	Logger *slog.Logger
	// Store is the session store the server journals into and recovers
	// from; nil selects the in-memory store (no durability).
	Store session.Store
	// DefaultShards is the shard count applied to sessions whose create
	// request does not specify one (0 keeps automatic sharding).
	DefaultShards int
	// Workers, when non-empty, puts the server in cluster mode: shard
	// engines run on the remp-worker processes at these addresses instead
	// of in this process.
	Workers []string
	// ClusterFaults injects failures into the coordinator's outgoing
	// request frames — the -chaos drill. Nil means no injection.
	ClusterFaults *cluster.Faults
	// ClusterTuning overrides the coordinator's timing knobs (heartbeat
	// cadence, liveness and RPC timeouts, retry backoff). Its Workers,
	// Faults, Metrics and Logf fields are ignored — the server wires
	// those itself. Zero fields keep the coordinator defaults.
	ClusterTuning cluster.CoordinatorConfig
}

// New returns a server over an in-memory store. logf receives one line
// per request outcome; nil disables logging.
func New(logf func(format string, args ...any)) *Server {
	srv, _, err := NewServer(Config{Logf: logf})
	if err != nil {
		panic(err) // unreachable: an empty in-memory store cannot fail recovery
	}
	return srv
}

// NewServer opens a server over cfg.Store and recovers every session a
// previous process left in it, returning the recovered session IDs. A
// session that fails to recover is skipped and reported in the error
// while the server comes up with the rest.
func NewServer(cfg Config) (*Server, []string, error) {
	logger := cfg.Logger
	if logger == nil {
		if cfg.Logf != nil {
			logger = slog.New(&logfHandler{logf: cfg.Logf})
		} else {
			logger = slog.New(discardHandler{})
		}
	}
	store := cfg.Store
	kind := "disk"
	if store == nil {
		store = session.NewMemStore()
	}
	if _, ok := store.(*session.MemStore); ok {
		kind = "mem"
	}
	metrics := newServerMetrics()
	// The disk store's WAL fsync is timed inside AppendAnswer (the store
	// never reads the wall clock itself — the monotonic clock is injected
	// here); the decorator below times the full append and rotation paths.
	if ds, ok := store.(*session.DiskStore); ok {
		ds.InstrumentFsync(metrics.clock, metrics.storeFsync)
	}
	store = &timedStore{Store: store, clock: metrics.clock, append: metrics.storeAppend, snapshot: metrics.storeSnapshot}
	// The coordinator must exist before recovery below: recovered
	// sessions' pipelines place their shards on workers too.
	var co *cluster.Coordinator
	if len(cfg.Workers) > 0 {
		cc := cfg.ClusterTuning
		cc.Workers = cfg.Workers
		cc.Faults = cfg.ClusterFaults
		cc.Metrics = metrics.cluster
		cc.Logf = func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
		var cerr error
		if co, cerr = cluster.NewCoordinator(cc); cerr != nil {
			return nil, nil, cerr
		}
	}
	s := &Server{
		meta:          make(map[string]*sessionMeta),
		refs:          make(map[string]string),
		log:           logger,
		metrics:       metrics,
		defaultShards: cfg.DefaultShards,
		storeKind:     kind,
		cluster:       co,
	}
	s.logf = func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	// Recovery re-prepares each stored session's pipeline from the
	// CreateRequest persisted as its meta blob; the specs seen along the
	// way rebuild the server-side metadata map.
	recoveredMeta := make(map[string]*sessionMeta)
	mgr, recovered, err := remp.OpenManagerObs(store, func(id string, meta []byte) (remp.Dataset, remp.Options, string, error) {
		var req CreateRequest
		if jerr := json.Unmarshal(meta, &req); jerr != nil {
			return remp.Dataset{}, remp.Options{}, "", fmt.Errorf("stored spec: %w", jerr)
		}
		ds, gold, namespace, lerr := loadSpec(req)
		if lerr != nil {
			return remp.Dataset{}, remp.Options{}, "", lerr
		}
		recoveredMeta[id] = &sessionMeta{spec: req, namespace: namespace, k1: ds.K1, k2: ds.K2, gold: gold}
		opts := req.Options.ToOptions()
		opts.Runner = s.runnerFor(meta)
		return ds, opts, namespace, nil
	}, metrics.pipe)
	s.mgr = mgr
	metrics.bindManager(s)
	for _, id := range recovered {
		if m := recoveredMeta[id]; m != nil {
			s.meta[id] = m
			if m.spec.ClientRef != "" {
				s.refs[m.spec.ClientRef] = id
			}
		}
		stats.Add("sessions_recovered", 1)
		metrics.sessionsRecovered.Inc()
	}
	if len(recovered) > 0 {
		logger.Info("recovered sessions from store",
			"store", kind, "count", len(recovered), "wal_replayed", mgr.WALReplayed(),
			"ids", strings.Join(recovered, ","))
	}
	if err != nil {
		logger.Warn("recovery errors", "err", err)
	}
	return s, recovered, err
}

// WALReplayed returns how many WAL records startup recovery replayed on
// top of session snapshots.
func (s *Server) WALReplayed() int64 { return s.mgr.WALReplayed() }

// Clustered reports whether the server places shard engines on workers.
func (s *Server) Clustered() bool { return s.cluster != nil }

// runnerFor returns the shard-runner factory for a session whose
// persisted spec is meta: the coordinator's remote runner in cluster
// mode, nil (in-process shards) otherwise. The spec bytes handed to the
// coordinator are exactly what PrepareSpec rebuilds worker-side, so the
// two ends of every shard RPC agree on the pipeline.
func (s *Server) runnerFor(meta []byte) core.RunnerFactory {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.Runner(meta)
}

// PrepareSpec rebuilds the core pipeline a persisted create spec
// describes. It is the Prepare hook remp-worker serves shards from: the
// coordinator ships each session's stored CreateRequest bytes verbatim,
// and because the spec was marshaled after server defaults were baked
// in, loadSpec + ToOptions here reproduce the coordinator's pipeline
// deterministically.
func PrepareSpec(spec []byte) (*core.Prepared, error) {
	var req CreateRequest
	if err := json.Unmarshal(spec, &req); err != nil {
		return nil, fmt.Errorf("cluster spec: %w", err)
	}
	ds, _, _, err := loadSpec(req)
	if err != nil {
		return nil, fmt.Errorf("cluster spec: %w", err)
	}
	return remp.PreparePipeline(ds, req.Options.ToOptions())
}

// SetDefaultShards sets the shard count applied to sessions whose create
// request does not specify one (the cmd/remp-server -shards flag). 0
// keeps automatic sharding.
func (s *Server) SetDefaultShards(n int) { s.defaultShards = n }

// Shutdown drains the server: in-flight requests finish (bounded by
// ctx), later requests are refused with 503, every session's durable
// snapshot is flushed to its current state and the store is closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		// The write lock is a pure barrier: it is granted only once every
		// request that entered before the drain flag flipped has finished.
		s.drainMu.Lock()
		s.drainMu.Unlock() //nolint:staticcheck // empty critical section is the point
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.log.Warn("shutdown: giving up on in-flight requests", "err", ctx.Err())
	}
	err := s.mgr.Close()
	if s.cluster != nil {
		// After mgr.Close every session's runner is closed, so the
		// coordinator only has heartbeats and idle connections left.
		s.cluster.Close()
	}
	s.log.Info("shutdown: store flushed and closed")
	return err
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// applyDefaults folds server-wide defaults into a request's options.
func (s *Server) applyDefaults(o OptionsDTO) OptionsDTO {
	if o.Shards == 0 && s.defaultShards != 0 {
		o.Shards = s.defaultShards
	}
	return o
}

// Handler returns the HTTP handler for all endpoints. /v1 routes are
// gated on the drain flag: once Shutdown begins they answer 503 with a
// Retry-After header while requests already in flight run to
// completion.
func (s *Server) Handler() http.Handler {
	// route resolves each route's metric children here, once; the per-
	// request path then only pays atomic increments and one log line.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.route("create", s.handleCreate))
	mux.HandleFunc("GET /v1/sessions", s.route("list", s.handleList))
	mux.HandleFunc("POST /v1/sessions/restore", s.route("restore", s.handleRestore))
	mux.HandleFunc("GET /v1/sessions/{id}", s.route("status", s.handleStatus))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.route("delete", s.handleDelete))
	mux.HandleFunc("GET /v1/sessions/{id}/batch", s.route("batch", s.handleBatch))
	mux.HandleFunc("POST /v1/sessions/{id}/answers", s.route("answers", s.handleAnswers))
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.route("result", s.handleResult))
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.route("snapshot", s.handleSnapshot))

	root := http.NewServeMux()
	root.Handle("/v1/", s.gate(mux))
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.Handle("GET /debug/vars", expvar.Handler())
	return root
}

// gate refuses gated requests once the server is draining and tracks
// in-flight ones so Shutdown can wait for them.
func (s *Server) gate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Fast path first, without touching the mutex: once draining is
		// set, Shutdown's pending write lock would make RLock block new
		// requests behind the slowest in-flight one instead of refusing
		// them promptly.
		if s.draining.Load() {
			refuseDraining(w)
			return
		}
		// Register (read lock), then re-check: a request that slipped
		// past a concurrent Shutdown either sees the flag here and is
		// refused, or finishes before the barrier falls and the store
		// closes.
		s.drainMu.RLock()
		defer s.drainMu.RUnlock()
		if s.draining.Load() {
			refuseDraining(w)
			return
		}
		stats.Add("requests", 1)
		h.ServeHTTP(w, r)
	})
}

func refuseDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "server is draining")
}

// handleHealthz reports liveness: always 200 while the process serves,
// with structured detail — uptime, live session count, drain state,
// store backend, persistence failures and recovery replay depth. A
// draining server is still alive; readiness is /readyz's job.
// persist_failures counts store operations that have failed since
// startup — non-zero means some session's durable state is stale.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	body := map[string]any{
		"status":           status,
		"uptime_seconds":   float64(s.metrics.clock()) / 1e9,
		"store":            s.storeKind,
		"sessions_active":  len(s.mgr.SessionIDs()),
		"draining":         s.draining.Load(),
		"persist_failures": s.mgr.PersistFailures(),
		"wal_replayed":     s.mgr.WALReplayed(),
	}
	if s.cluster != nil {
		body["cluster"] = map[string]any{
			"workers":      s.cluster.Status(),
			"workers_live": s.cluster.LiveWorkers(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz reports readiness: 200 while accepting new work, 503 once
// Shutdown has begun draining (load balancers should stop routing here).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// ListenAndServe runs the server on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	log.Printf("remp-server listening on %s", addr)
	return srv.ListenAndServe()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// loadSpec materializes the dataset of a create spec: KBs, optional gold,
// and the cache namespace shared by sessions over the same data.
func loadSpec(req CreateRequest) (ds remp.Dataset, gold *remp.Gold, namespace string, err error) {
	switch {
	case req.Dataset != "":
		d, derr := datasets.ByName(req.Dataset, req.Seed)
		if derr != nil {
			return remp.Dataset{}, nil, "", fmt.Errorf("unknown dataset %q (built-ins: %s)", req.Dataset, strings.Join(datasets.Names(), ", "))
		}
		return remp.Dataset{K1: d.K1, K2: d.K2}, d.Gold, fmt.Sprintf("builtin:%s:%d", req.Dataset, req.Seed), nil
	case req.KB1TSV != "" && req.KB2TSV != "":
		k1, kerr := kb.ReadTSV(strings.NewReader(req.KB1TSV))
		if kerr != nil {
			return remp.Dataset{}, nil, "", fmt.Errorf("kb1_tsv: %v", kerr)
		}
		k2, kerr := kb.ReadTSV(strings.NewReader(req.KB2TSV))
		if kerr != nil {
			return remp.Dataset{}, nil, "", fmt.Errorf("kb2_tsv: %v", kerr)
		}
		var goldStd *remp.Gold
		if len(req.Gold) > 0 {
			matches := make([]remp.Pair, 0, len(req.Gold))
			for i, g := range req.Gold {
				u1, u2 := k1.Entity(g[0]), k2.Entity(g[1])
				if u1 == kb.NoEntity || u2 == kb.NoEntity {
					return remp.Dataset{}, nil, "", fmt.Errorf("gold[%d]: unknown entity in %q / %q", i, g[0], g[1])
				}
				matches = append(matches, remp.Pair{U1: u1, U2: u2})
			}
			goldStd = remp.NewGold(matches)
		}
		h := sha256.New()
		h.Write([]byte(req.KB1TSV))
		h.Write([]byte{0})
		h.Write([]byte(req.KB2TSV))
		return remp.Dataset{K1: k1, K2: k2}, goldStd, "inline:" + hex.EncodeToString(h.Sum(nil)[:12]), nil
	default:
		return remp.Dataset{}, nil, "", errors.New("either dataset or both kb1_tsv and kb2_tsv are required")
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	// An idempotent retry: hand back the session the ref already created.
	if req.ClientRef != "" {
		s.mu.Lock()
		id, ok := s.refs[req.ClientRef]
		s.mu.Unlock()
		if ok {
			if sess, live := s.mgr.Get(id); live {
				s.logf("create with known client_ref %q: returning session %s", req.ClientRef, id)
				writeJSON(w, http.StatusOK, s.info(sess, true))
				return
			}
		}
	}
	ds, gold, namespace, err := loadSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Bake the server-side defaults into the stored spec so a restart
	// with different flags recovers the session under the options it
	// actually ran with.
	req.Options = s.applyDefaults(req.Options)
	meta, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := req.Options.ToOptions()
	opts.Runner = s.runnerFor(meta)
	sess, err := s.mgr.NewSession(ds, opts, namespace, meta)
	if err != nil {
		// A persistence failure is the server's fault (full disk, bad
		// data dir), not the client's.
		status := http.StatusBadRequest
		if errors.Is(err, session.ErrPersist) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	s.mu.Lock()
	s.meta[sess.ID()] = &sessionMeta{spec: req, namespace: namespace, k1: ds.K1, k2: ds.K2, gold: gold}
	if req.ClientRef != "" {
		s.refs[req.ClientRef] = sess.ID()
	}
	s.mu.Unlock()
	stats.Add("sessions_created", 1)
	s.metrics.sessionsCreated.Inc()
	s.log.Info("session created", "session", sess.ID(), "namespace", namespace)
	writeJSON(w, http.StatusCreated, s.info(sess, true))
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var dto SnapshotDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		writeError(w, http.StatusBadRequest, "malformed snapshot: %v", err)
		return
	}
	ds, gold, namespace, err := loadSpec(dto.Create)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dto.Create.Options = s.applyDefaults(dto.Create.Options)
	meta, err := json.Marshal(dto.Create)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := dto.Create.Options.ToOptions()
	opts.Runner = s.runnerFor(meta)
	sess, err := s.mgr.RestoreSession(ds, opts, namespace, dto.Session, meta)
	if err != nil {
		// An ID collision is a genuine conflict and a persistence
		// failure is the server's fault; malformed or diverging
		// snapshots are client errors.
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, session.ErrSessionExists):
			status = http.StatusConflict
		case errors.Is(err, session.ErrPersist):
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	s.mu.Lock()
	s.meta[sess.ID()] = &sessionMeta{spec: dto.Create, namespace: namespace, k1: ds.K1, k2: ds.K2, gold: gold}
	if dto.Create.ClientRef != "" {
		s.refs[dto.Create.ClientRef] = sess.ID()
	}
	s.mu.Unlock()
	stats.Add("sessions_restored", 1)
	s.metrics.sessionsRestored.Inc()
	s.log.Info("session restored", "session", sess.ID(), "namespace", namespace)
	writeJSON(w, http.StatusCreated, s.info(sess, true))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": s.mgr.SessionIDs()})
}

// lookup resolves the {id} path segment to a session and its metadata.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*remp.Session, *sessionMeta, bool) {
	id := r.PathValue("id")
	sess, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return nil, nil, false
	}
	s.mu.Lock()
	meta := s.meta[id]
	s.mu.Unlock()
	if meta == nil {
		// The session raced a DELETE between the two lookups.
		writeError(w, http.StatusNotFound, "no session %q", id)
		return nil, nil, false
	}
	return sess, meta, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.info(sess, false))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.info(sess, true))
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	sess, _, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req AnswersRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if len(req.Answers) == 0 {
		writeError(w, http.StatusBadRequest, "no answers in request")
		return
	}
	// Answers are applied independently so a retried or partially
	// duplicate request cannot fail answers that still fit: each
	// rejection (duplicate, no longer open, malformed, labelless) is
	// reported per answer instead of aborting the batch.
	resp := AnswersResponse{}
	for _, a := range req.Answers {
		if err := sess.Deliver(a.ID, a.Labels); err != nil {
			resp.Rejected = append(resp.Rejected, RejectedAnswerDTO{ID: a.ID, Error: err.Error()})
			continue
		}
		resp.Accepted++
	}
	stats.Add("answers_accepted", int64(resp.Accepted))
	stats.Add("answers_rejected", int64(len(resp.Rejected)))
	s.metrics.answersAccepted.Add(int64(resp.Accepted))
	s.metrics.answersRejected.Add(int64(len(resp.Rejected)))
	s.log.Info("answers delivered", "session", sess.ID(), "accepted", resp.Accepted, "rejected", len(resp.Rejected))
	resp.SessionInfo = s.info(sess, true)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess, meta, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res := sess.Result()
	dto := ResultDTO{
		Done:              sess.Done(),
		Questions:         res.Questions,
		Deduced:           res.Deduced,
		Loops:             res.Loops,
		Matches:           make([][2]string, 0, len(res.Matches)),
		Confirmed:         len(res.Confirmed),
		Propagated:        len(res.Propagated),
		IsolatedPredicted: len(res.IsolatedPredicted),
		NonMatches:        len(res.NonMatches),
	}
	for _, m := range pair.Set(res.Matches).Sorted() {
		dto.Matches = append(dto.Matches, [2]string{meta.k1.EntityName(m.U1), meta.k2.EntityName(m.U2)})
	}
	if meta.gold != nil {
		prf := remp.Evaluate(res.Matches, meta.gold)
		dto.PRF = &PRFDTO{Precision: prf.Precision, Recall: prf.Recall, F1: prf.F1}
	}
	writeJSON(w, http.StatusOK, dto)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, meta, ok := s.lookup(w, r)
	if !ok {
		return
	}
	data, err := sess.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotDTO{Create: meta.spec, Session: data})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	// No liveness lookup first: Remove also purges dormant store records
	// (sessions whose recovery failed), which have no live session.
	id := r.PathValue("id")
	removed, err := s.mgr.Remove(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !removed {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	s.mu.Lock()
	delete(s.meta, id)
	for ref, sid := range s.refs {
		if sid == id {
			delete(s.refs, ref)
		}
	}
	s.mu.Unlock()
	stats.Add("sessions_deleted", 1)
	s.metrics.sessionsDeleted.Inc()
	s.log.Info("session deleted", "session", id)
	w.WriteHeader(http.StatusNoContent)
}

// info builds the status envelope, optionally materializing the open
// batch (which may auto-answer questions from the shared cache).
func (s *Server) info(sess *remp.Session, withBatch bool) SessionInfo {
	var batch []QuestionDTO
	if withBatch {
		s.mu.Lock()
		meta := s.meta[sess.ID()]
		s.mu.Unlock()
		for _, q := range sess.NextBatch() {
			dto := QuestionDTO{ID: q.ID}
			if meta != nil {
				dto.Left = meta.k1.EntityName(q.Pair.U1)
				dto.Right = meta.k2.EntityName(q.Pair.U2)
			}
			batch = append(batch, dto)
		}
	}
	questions, loops := sess.Progress()
	return SessionInfo{
		ID:        sess.ID(),
		State:     string(sess.State()),
		Questions: questions,
		Deduced:   sess.Deduced(),
		Loops:     loops,
		Shards:    sess.Shards(),
		Batch:     batch,
	}
}
