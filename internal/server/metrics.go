package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/remp"
)

// serverMetrics bundles every metric family one Server exports under
// /metrics. All families are registered up front in newServerMetrics —
// except the manager-backed callbacks, bound in bindManager once the
// session manager exists — so the registry's panic-on-duplicate check
// runs at startup and the hot handlers only touch pre-resolved children.
//
// The families registered here must cover internal/obs/catalog.txt: the
// CI loadgen smoke scrapes a live server and fails on any catalog name
// missing from the exposition.
type serverMetrics struct {
	reg   *obs.Registry
	clock obs.Clock
	// pipe carries the loop-stage trace and engine/loop counters into
	// every pipeline the manager prepares (including recovered ones).
	pipe *obs.Pipeline

	httpInFlight *obs.Gauge
	httpRequests *obs.CounterVec
	httpLatency  *obs.HistogramVec

	sessionsCreated   *obs.Counter
	sessionsRestored  *obs.Counter
	sessionsRecovered *obs.Counter
	sessionsDeleted   *obs.Counter
	answersAccepted   *obs.Counter
	answersRejected   *obs.Counter

	storeAppend   *obs.Histogram
	storeSnapshot *obs.Histogram
	storeFsync    *obs.Histogram

	// cluster carries the coordinator's liveness/retry/failover counters.
	// Registered unconditionally — the catalog contract doesn't know
	// whether a given server runs clustered — so a non-clustered server
	// exports them at zero.
	cluster *cluster.Metrics
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	clock := obs.WallClock()
	m := &serverMetrics{reg: reg, clock: clock}

	reg.GaugeFunc("remp_uptime_seconds", "Seconds since the server came up.", func() float64 {
		return float64(clock()) / 1e9
	})
	m.httpRequests = reg.CounterVec("remp_http_requests_total", "HTTP requests served, by route.", "route")
	m.httpInFlight = reg.Gauge("remp_http_in_flight", "HTTP requests currently being served.")
	m.httpLatency = reg.HistogramVec("remp_http_request_seconds", "HTTP request latency, by route.", "route", nil)

	m.sessionsCreated = reg.Counter("remp_sessions_created_total", "Sessions created via POST /v1/sessions.")
	m.sessionsRestored = reg.Counter("remp_sessions_restored_total", "Sessions restored from client-held snapshots.")
	m.sessionsRecovered = reg.Counter("remp_sessions_recovered_total", "Sessions recovered from the store at startup.")
	m.sessionsDeleted = reg.Counter("remp_sessions_deleted_total", "Sessions deleted via DELETE /v1/sessions/{id}.")
	m.answersAccepted = reg.Counter("remp_answers_accepted_total", "Worker answers accepted and applied.")
	m.answersRejected = reg.Counter("remp_answers_rejected_total", "Worker answers rejected (duplicate, closed, malformed).")

	m.storeAppend = reg.Histogram("remp_store_append_seconds", "Session store WAL append latency (marshal + write + fsync).", nil)
	m.storeSnapshot = reg.Histogram("remp_store_snapshot_seconds", "Session store snapshot rotation latency.", nil)
	m.storeFsync = reg.Histogram("remp_store_fsync_seconds", "WAL fsync syscall latency inside AppendAnswer (disk store only).", nil)

	m.cluster = &cluster.Metrics{
		WorkersLive:   reg.Gauge("remp_cluster_workers_live", "Cluster workers currently passing heartbeats (0 when not clustered)."),
		WorkerDowns:   reg.Counter("remp_cluster_worker_downs_total", "Workers marked down after missed heartbeats or repeated transport failures."),
		RPCRetries:    reg.Counter("remp_cluster_rpc_retries_total", "Shard RPC attempts retried after a transport failure or lost worker state."),
		Reassignments: reg.Counter("remp_cluster_shard_reassignments_total", "Shards re-prepared on a surviving worker after their owner was lost."),
	}

	// The loop trace mirrors every stage span into one labeled histogram
	// child; the deterministic pipeline only sees the injected clock.
	trace := obs.NewLoopTrace(clock)
	stageHist := reg.HistogramVec("remp_loop_stage_seconds", "Human-machine loop time per pipeline stage.", "stage", nil)
	for _, st := range obs.Stages() {
		trace.Attach(st, stageHist.With(st.String()))
	}
	m.pipe = &obs.Pipeline{
		Trace:     trace,
		Batches:   reg.Counter("remp_loop_batches_total", "Question batches published across all sessions."),
		Questions: reg.Counter("remp_loop_questions_total", "Questions answered and applied across all sessions."),
		Engine: obs.EngineCounters{
			Recomputes:    reg.Counter("remp_engine_recomputes_total", "Single-source Dijkstra runs across all propagation engines."),
			Invalidations: reg.Counter("remp_engine_invalidations_total", "Ball invalidations recorded by the propagation engines."),
			Rebuilds:      reg.Counter("remp_engine_rebuilds_total", "Whole-graph ball rebuilds across all propagation engines."),
		},
	}
	return m
}

// bindManager registers the scrape-time callbacks that read counters the
// session layer owns. It runs after the Server's manager exists; the
// callbacks fire only when /metrics is scraped, never during recovery.
func (m *serverMetrics) bindManager(s *Server) {
	m.reg.GaugeFunc("remp_sessions_active", "Live sessions registered with the manager.", func() float64 {
		return float64(len(s.mgr.SessionIDs()))
	})
	m.reg.CounterFunc("remp_cache_hits_total", "Answer-cache lookups served from a sibling session's answer.", func() float64 {
		h, _, _ := s.mgr.CacheStats()
		return float64(h)
	})
	m.reg.CounterFunc("remp_cache_misses_total", "Answer-cache lookups that found nothing cached.", func() float64 {
		_, mi, _ := s.mgr.CacheStats()
		return float64(mi)
	})
	m.reg.CounterFunc("remp_cache_reservations_total", "Question reservations granted to sessions.", func() float64 {
		_, _, r := s.mgr.CacheStats()
		return float64(r)
	})
	m.reg.CounterFunc("remp_persist_failures_total", "Store operations that failed; non-zero means stale durable state.", func() float64 {
		return float64(s.mgr.PersistFailures())
	})
	m.reg.CounterFunc("remp_wal_replayed_total", "WAL records replayed on top of snapshots during recovery.", func() float64 {
		return float64(s.mgr.WALReplayed())
	})
	deduceVec := func(pick func(remp.DeduceStats) uint64) func() map[string]float64 {
		return func() map[string]float64 {
			out := make(map[string]float64)
			for ns, st := range s.mgr.DeduceStatsByNamespace() {
				out[ns] = float64(pick(st))
			}
			return out
		}
	}
	m.reg.CounterVecFunc("remp_deduce_hits_total",
		"Crowd questions answered by transitive-closure deduction instead of workers, by namespace.",
		"namespace", deduceVec(func(st remp.DeduceStats) uint64 { return st.Hits }))
	m.reg.CounterVecFunc("remp_deduce_clusters_total",
		"Cluster merges among a namespace's recorded match facts, by namespace.",
		"namespace", deduceVec(func(st remp.DeduceStats) uint64 { return st.Clusters }))
	m.reg.CounterVecFunc("remp_deduce_conflicts_total",
		"Contradictory facts rejected by the deduction store, by namespace.",
		"namespace", deduceVec(func(st remp.DeduceStats) uint64 { return st.Conflicts }))
}

// timedStore decorates a session.Store with latency histograms over the
// two durable write paths the serving path pays for: the per-answer WAL
// append and the snapshot rotation. The timing lives here rather than in
// internal/session because the session packages are deterministic and
// never read the wall clock themselves.
type timedStore struct {
	session.Store
	clock    obs.Clock
	append   *obs.Histogram
	snapshot *obs.Histogram
}

func (t *timedStore) AppendAnswer(id string, seq int, rec session.AnswerRec) error {
	t0 := t.clock()
	err := t.Store.AppendAnswer(id, seq, rec)
	t.append.ObserveNS(t.clock() - t0)
	return err
}

func (t *timedStore) PutSnapshot(id string, snapshot []byte) error {
	t0 := t.clock()
	err := t.Store.PutSnapshot(id, snapshot)
	t.snapshot.ObserveNS(t.clock() - t0)
	return err
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// route wraps one /v1 handler with its pre-resolved per-route metrics
// and a structured request log line carrying a stable request ID.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.metrics.httpRequests.With(name)
	lat := s.metrics.httpLatency.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		rid := fmt.Sprintf("r%d", s.reqID.Add(1))
		s.metrics.httpInFlight.Inc()
		t0 := s.metrics.clock()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		d := s.metrics.clock() - t0
		s.metrics.httpInFlight.Dec()
		reqs.Inc()
		lat.ObserveNS(d)
		s.log.Info("request",
			"req", rid, "method", r.Method, "route", name, "path", r.URL.Path,
			"status", sw.status, "dur_ms", float64(d)/1e6)
	}
}

// handleMetrics serves the registry: Prometheus text by default, the
// JSON snapshot with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.metrics.reg.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

// logfHandler adapts a printf-style sink to slog so Config.Logf callers
// keep their one-line-per-event contract under the structured logger.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return &logfHandler{logf: h.logf, attrs: merged}
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// discardHandler drops every record (slog.DiscardHandler needs go1.24).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
