package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a minimal typed client for the remp-server HTTP API, used by
// examples/asynccrowd and the server tests.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (when
// non-nil). Non-2xx responses are returned as errors carrying the
// server's error envelope.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateSession creates a session and returns its status with the opening
// question batch.
func (c *Client) CreateSession(req CreateRequest) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(http.MethodPost, "/v1/sessions", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Sessions lists the live session IDs.
func (c *Client) Sessions() ([]string, error) {
	var out struct {
		Sessions []string `json:"sessions"`
	}
	if err := c.do(http.MethodGet, "/v1/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out.Sessions, nil
}

// Batch fetches the open questions of a session.
func (c *Client) Batch(id string) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(http.MethodGet, "/v1/sessions/"+id+"/batch", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// PostAnswers delivers worker labels and returns the refreshed status
// (including the next batch, when one opened) with per-answer outcomes;
// answers the session could not apply are listed in Rejected rather than
// failing the request, so retries are safe.
func (c *Client) PostAnswers(id string, answers []AnswerDTO) (*AnswersResponse, error) {
	var resp AnswersResponse
	if err := c.do(http.MethodPost, "/v1/sessions/"+id+"/answers", AnswersRequest{Answers: answers}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Result fetches the session's current (or final) result.
func (c *Client) Result(id string) (*ResultDTO, error) {
	var res ResultDTO
	if err := c.do(http.MethodGet, "/v1/sessions/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Snapshot fetches the session's durable state.
func (c *Client) Snapshot(id string) (*SnapshotDTO, error) {
	var snap SnapshotDTO
	if err := c.do(http.MethodGet, "/v1/sessions/"+id+"/snapshot", nil, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Restore recreates a session from a snapshot.
func (c *Client) Restore(snap *SnapshotDTO) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(http.MethodPost, "/v1/sessions/restore", snap, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Delete forgets a session.
func (c *Client) Delete(id string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}
