package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/session"
	"repro/remp"
)

// fixture builds a books dataset, its TSV wire form and a name-keyed gold
// standard — everything a client needs to create an equivalent session
// over HTTP. WriteTSV preserves entity-ID order, so server-side pairs are
// comparable with locally computed ones.
func fixture(t *testing.T, n int) (remp.Dataset, *remp.Gold, CreateRequest) {
	t.Helper()
	k1 := kb.New("library")
	k2 := kb.New("catalog")
	name1, name2 := k1.AddAttr("name"), k2.AddAttr("label")
	wrote1, wrote2 := k1.AddRel("wrote"), k2.AddRel("authorOf")

	var gold []remp.Pair
	var goldNames [][2]string
	add := func(base string) (kb.EntityID, kb.EntityID) {
		u1 := k1.AddEntity("l:" + base)
		u2 := k2.AddEntity("r:" + base)
		k1.SetLabel(u1, base)
		k2.SetLabel(u2, base)
		k1.AddAttrTriple(u1, name1, base)
		k2.AddAttrTriple(u2, name2, base)
		gold = append(gold, remp.Pair{U1: u1, U2: u2})
		goldNames = append(goldNames, [2]string{"l:" + base, "r:" + base})
		return u1, u2
	}
	for i := 0; i < n; i++ {
		a1, a2 := add(fmt.Sprintf("author %d", i))
		for b := 0; b < 2; b++ {
			b1, b2 := add(fmt.Sprintf("book %d %d", i, b))
			k1.AddRelTriple(a1, wrote1, b1)
			k2.AddRelTriple(a2, wrote2, b2)
		}
		add(fmt.Sprintf("editor %d", i))
	}

	var tsv1, tsv2 strings.Builder
	if err := k1.WriteTSV(&tsv1); err != nil {
		t.Fatal(err)
	}
	if err := k2.WriteTSV(&tsv2); err != nil {
		t.Fatal(err)
	}
	req := CreateRequest{
		KB1TSV:  tsv1.String(),
		KB2TSV:  tsv2.String(),
		Gold:    goldNames,
		Options: OptionsDTO{Mu: 3},
	}
	return remp.Dataset{K1: k1, K2: k2}, remp.NewGold(gold), req
}

// oracleAnswer builds the wire answer NewOracleCrowd would give.
func oracleAnswer(t *testing.T, gold *remp.Gold, id string) AnswerDTO {
	t.Helper()
	q, err := session.ParseQuestionID(id)
	if err != nil {
		t.Fatalf("server issued unparsable question id %q: %v", id, err)
	}
	return AnswerDTO{ID: id, Labels: []remp.Label{{WorkerID: 0, Quality: 0.999, IsMatch: gold.IsMatch(q)}}}
}

func newTestServer(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(New(nil).Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), ts
}

// driveReversed answers every batch in reverse order until the session is
// done, posting each answer in its own request.
func driveReversed(t *testing.T, c *Client, gold *remp.Gold, info *SessionInfo) *SessionInfo {
	t.Helper()
	for info.State != string(remp.SessionDone) {
		if len(info.Batch) == 0 {
			t.Fatalf("session %s awaiting answers with an empty batch", info.ID)
		}
		for i := len(info.Batch) - 1; i >= 0; i-- {
			next, err := c.PostAnswers(info.ID, []AnswerDTO{oracleAnswer(t, gold, info.Batch[i].ID)})
			if err != nil {
				t.Fatalf("PostAnswers: %v", err)
			}
			if len(next.Rejected) != 0 {
				t.Fatalf("fresh answer rejected: %+v", next.Rejected)
			}
			info = &next.SessionInfo
		}
	}
	return info
}

// TestHTTPSessionMatchesResolve is the acceptance test at the HTTP layer:
// a session created over the wire and fed answers in reverse order must
// reproduce remp.Resolve's result exactly — match set, question count and
// loop count.
func TestHTTPSessionMatchesResolve(t *testing.T) {
	ds, gold, req := fixture(t, 5)
	want, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), req.Options.ToOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantNames := map[[2]string]bool{}
	for m := range want.Matches {
		wantNames[[2]string{ds.K1.EntityName(m.U1), ds.K2.EntityName(m.U2)}] = true
	}

	c, _ := newTestServer(t)
	info, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	info = driveReversed(t, c, gold, info)

	res, err := c.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("result endpoint reports an unfinished session after the loop stopped")
	}
	if res.Questions != want.Questions || res.Loops != want.Loops {
		t.Fatalf("questions/loops %d/%d over HTTP, want %d/%d", res.Questions, res.Loops, want.Questions, want.Loops)
	}
	if len(res.Matches) != len(wantNames) {
		t.Fatalf("%d matches over HTTP, want %d", len(res.Matches), len(wantNames))
	}
	for _, m := range res.Matches {
		if !wantNames[m] {
			t.Fatalf("HTTP-only match %v", m)
		}
	}
	if res.Confirmed != len(want.Confirmed) || res.Propagated != len(want.Propagated) ||
		res.IsolatedPredicted != len(want.IsolatedPredicted) || res.NonMatches != len(want.NonMatches) {
		t.Fatalf("result breakdown differs: got %d/%d/%d/%d, want %d/%d/%d/%d",
			res.Confirmed, res.Propagated, res.IsolatedPredicted, res.NonMatches,
			len(want.Confirmed), len(want.Propagated), len(want.IsolatedPredicted), len(want.NonMatches))
	}
	if res.PRF == nil {
		t.Fatal("no PRF despite a gold standard in the create request")
	}
	if res.PRF.F1 <= 0 {
		t.Fatalf("F1 = %v", res.PRF.F1)
	}
}

// TestHTTPSnapshotRestore snapshots a half-finished session, deletes it,
// restores it from the snapshot and finishes it — the process-restart
// story over the wire.
func TestHTTPSnapshotRestore(t *testing.T) {
	ds, gold, req := fixture(t, 5)
	want, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), req.Options.ToOptions())
	if err != nil {
		t.Fatal(err)
	}

	c, _ := newTestServer(t)
	info, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	// Answer exactly one batch, then snapshot and drop the live session.
	var answers []AnswerDTO
	for _, q := range info.Batch {
		answers = append(answers, oracleAnswer(t, gold, q.ID))
	}
	posted, err := c.PostAnswers(info.ID, answers)
	if err != nil {
		t.Fatal(err)
	}
	if posted.Accepted != len(answers) || len(posted.Rejected) != 0 {
		t.Fatalf("posted %d answers, accepted %d (rejected %+v)", len(answers), posted.Accepted, posted.Rejected)
	}
	info = &posted.SessionInfo
	snap, err := c.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
	if ids, _ := c.Sessions(); len(ids) != 0 {
		t.Fatalf("sessions survive deletion: %v", ids)
	}

	restored, err := c.Restore(snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.ID != info.ID {
		t.Errorf("restored under id %q, want %q", restored.ID, info.ID)
	}
	if restored.Questions != info.Questions || restored.Loops != info.Loops {
		t.Fatalf("restored progress %d/%d, want %d/%d",
			restored.Questions, restored.Loops, info.Questions, info.Loops)
	}
	final := driveReversed(t, c, gold, restored)
	res, err := c.Result(final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions != want.Questions || res.Loops != want.Loops || len(res.Matches) != len(want.Matches) {
		t.Fatalf("restored run diverged: %d questions / %d loops / %d matches, want %d/%d/%d",
			res.Questions, res.Loops, len(res.Matches), want.Questions, want.Loops, len(want.Matches))
	}
}

// TestHTTPSharedCacheAcrossSessions creates two sessions over the same
// inline dataset: the second must never be handed a question the first
// already has in flight, and once the first finishes, the second resolves
// entirely from the shared answer cache — zero crowd answers posted.
func TestHTTPSharedCacheAcrossSessions(t *testing.T) {
	_, gold, req := fixture(t, 5)
	c, _ := newTestServer(t)

	a, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Batch) != 0 {
		t.Fatalf("session %s was handed %d questions already in flight in %s", b.ID, len(b.Batch), a.ID)
	}

	a = driveReversed(t, c, gold, a)

	// b drains the cache batch by batch; no answer is ever posted to it.
	for i := 0; i < 1000; i++ {
		info, err := c.Batch(b.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == string(remp.SessionDone) {
			b = info
			break
		}
		if len(info.Batch) != 0 {
			t.Fatalf("session %s re-published %d questions that %s already answered", b.ID, len(info.Batch), a.ID)
		}
	}
	if b.State != string(remp.SessionDone) {
		t.Fatalf("session %s did not finish from the shared cache", b.ID)
	}
	if b.Questions != a.Questions {
		t.Fatalf("cache-fed session answered %d questions, sibling %d", b.Questions, a.Questions)
	}
	resA, err := c.Result(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := c.Result(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Matches) != len(resB.Matches) {
		t.Fatalf("cache-fed session found %d matches, sibling %d", len(resB.Matches), len(resA.Matches))
	}
}

// TestHTTPErrors pins the error contract: unknown sessions are 404,
// malformed creates 400, duplicate answers 409.
func TestHTTPErrors(t *testing.T) {
	_, gold, req := fixture(t, 4)
	c, _ := newTestServer(t)

	if _, err := c.Batch("nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown session: %v", err)
	}
	if _, err := c.CreateSession(CreateRequest{}); err == nil {
		t.Error("empty create accepted")
	}
	if _, err := c.CreateSession(CreateRequest{Dataset: "bogus"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	bad := req
	bad.Options.Mu = -3
	if _, err := c.CreateSession(bad); err == nil || !strings.Contains(err.Error(), "Mu") {
		t.Errorf("negative Mu accepted or error unhelpful: %v", err)
	}

	info, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	ans := oracleAnswer(t, gold, info.Batch[0].ID)
	first, err := c.PostAnswers(info.ID, []AnswerDTO{ans})
	if err != nil {
		t.Fatal(err)
	}
	if first.Accepted != 1 {
		t.Fatalf("first answer accepted %d times", first.Accepted)
	}
	// Retrying the identical request must not fail it — the duplicate is
	// reported per answer and the session state is untouched.
	retry, err := c.PostAnswers(info.ID, []AnswerDTO{ans})
	if err != nil {
		t.Fatalf("retried answer failed the request: %v", err)
	}
	if retry.Accepted != 0 || len(retry.Rejected) != 1 || retry.Rejected[0].ID != ans.ID {
		t.Errorf("retry outcome: accepted %d, rejected %+v", retry.Accepted, retry.Rejected)
	}
	if retry.Questions != first.Questions {
		t.Errorf("retry changed question count: %d != %d", retry.Questions, first.Questions)
	}
	bad2, err := c.PostAnswers(info.ID, []AnswerDTO{{ID: "zzz", Labels: ans.Labels}, {ID: info.Batch[0].ID}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bad2.Rejected) != 2 {
		t.Errorf("malformed id and labelless answer not both rejected: %+v", bad2.Rejected)
	}
	if _, err := c.PostAnswers(info.ID, nil); err == nil {
		t.Error("empty answers request accepted")
	}

	// Restore status codes: a malformed snapshot is the client's fault
	// (400); restoring over a live session ID is a conflict (409).
	if _, err := c.Restore(&SnapshotDTO{Create: req, Session: []byte(`{"version":99}`)}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("malformed snapshot restore: %v", err)
	}
	snap, err := c.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restore(snap); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("restore over a live session: %v", err)
	}
}

// TestQuestionIDRoundTrip pins the wire format of question IDs.
func TestQuestionIDRoundTrip(t *testing.T) {
	q := pair.Pair{U1: 12, U2: 345}
	id := session.QuestionID(q)
	if id != "12-345" {
		t.Fatalf("QuestionID = %q", id)
	}
	back, err := session.ParseQuestionID(id)
	if err != nil || back != q {
		t.Fatalf("ParseQuestionID(%q) = %v, %v", id, back, err)
	}
}

// TestServerDrainThenRefuse pins the graceful-shutdown semantics: a
// request in flight when Shutdown begins completes, requests arriving
// afterwards are refused with 503, /healthz flips to draining, and the
// flushed store recovers every session in a successor server.
func TestServerDrainThenRefuse(t *testing.T) {
	dir := t.TempDir()
	store, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, recovered, err := NewServer(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh store recovered %v", recovered)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	_, gold, req := fixture(t, 4)
	info, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Batch) == 0 {
		t.Fatal("no opening batch")
	}

	// Healthy before the drain.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Store    string `json:"store"`
		Sessions int    `json:"sessions_active"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Store != "disk" || health.Sessions != 1 || health.Draining {
		t.Fatalf("healthz before drain: HTTP %d %+v", resp.StatusCode, health)
	}
	if resp, err = http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: HTTP %d, want 200", resp.StatusCode)
	}

	// A request that enters before Shutdown must complete: block one in
	// the answers handler by starting it just before draining, using a
	// slow body so ServeHTTP is already past the gate when drain flips.
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		_, err := c.PostAnswers(info.ID, []AnswerDTO{oracleAnswer(t, gold, info.Batch[0].ID)})
		finished <- err
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-finished; err != nil && !strings.Contains(err.Error(), "503") {
		// The in-flight answer either completed or was refused cleanly at
		// the gate, depending on who won the race; both are drain-correct.
		t.Fatalf("in-flight request failed hard: %v", err)
	}

	// After the drain every /v1 request is refused with 503...
	if _, err := c.Batch(info.ID); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("gated endpoint after drain: %v, want 503", err)
	}
	if _, err := c.CreateSession(req); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("create after drain: %v, want 503", err)
	}
	// ...liveness stays 200 but reports draining, and readiness flips to
	// 503 so load balancers stop routing here.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "draining" || !health.Draining {
		t.Fatalf("healthz after drain: HTTP %d %+v, want 200 draining", resp.StatusCode, health)
	}
	if resp, err = http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: HTTP %d, want 503", resp.StatusCode)
	}

	// The flushed store brings the session back in a successor process.
	store2, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, recovered, err := NewServer(Config{Store: store2})
	if err != nil {
		t.Fatalf("successor recovery: %v", err)
	}
	if len(recovered) != 1 || recovered[0] != info.ID {
		t.Fatalf("successor recovered %v, want [%s]", recovered, info.ID)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	c2 := NewClient(ts2.URL)
	got, err := c2.Batch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	final := driveReversed(t, c2, gold, got)
	res, err := c2.Result(final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || len(res.Matches) == 0 {
		t.Fatalf("recovered session finished with %+v", res)
	}
}

// TestServerRecoversAcrossRestart proves the disk-store server resumes
// sessions mid-run with results identical to an uninterrupted HTTP run,
// including a session created from inline TSV KBs (whose spec must
// round-trip through the stored meta blob).
func TestServerRecoversAcrossRestart(t *testing.T) {
	ds, gold, req := fixture(t, 5)
	want, err := remp.Resolve(ds, remp.NewOracleCrowd(gold.IsMatch), req.Options.ToOptions())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := NewServer(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := NewClient(ts.URL)
	info, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	// Answer only the opening batch, then abandon the process without
	// any flush: the WAL alone must carry these answers.
	for _, q := range info.Batch {
		if _, err := c.PostAnswers(info.ID, []AnswerDTO{oracleAnswer(t, gold, q.ID)}); err != nil {
			t.Fatal(err)
		}
	}
	ts.Close()

	store2, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, recovered, err := NewServer(Config{Store: store2})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if len(recovered) != 1 || recovered[0] != info.ID {
		t.Fatalf("recovered %v, want [%s]", recovered, info.ID)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	c2 := NewClient(ts2.URL)

	got, err := c2.Batch(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	final := driveReversed(t, c2, gold, got)
	res, err := c2.Result(final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions != want.Questions || res.Loops != want.Loops || len(res.Matches) != len(want.Matches) {
		t.Fatalf("recovered run diverged: got %d matches / %d questions / %d loops, want %d / %d / %d",
			len(res.Matches), res.Questions, res.Loops, len(want.Matches), want.Questions, want.Loops)
	}
}

// TestCreateIdempotentByClientRef pins the create-retry contract: the
// same client_ref returns the same session (even across a restart),
// and deleting the session frees the ref.
func TestCreateIdempotentByClientRef(t *testing.T) {
	dir := t.TempDir()
	store, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := NewServer(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := NewClient(ts.URL)

	_, _, req := fixture(t, 4)
	req.ClientRef = "job-7"
	first, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	retried, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	if retried.ID != first.ID {
		t.Fatalf("retried create spawned %s, want the original %s", retried.ID, first.ID)
	}
	if ids, _ := c.Sessions(); len(ids) != 1 {
		t.Fatalf("retry left %v sessions, want 1", ids)
	}
	ts.Close()

	// The ref survives a restart (it lives in the persisted spec).
	store2, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2, _, err := NewServer(Config{Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	c2 := NewClient(ts2.URL)
	recoveredRetry, err := c2.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	if recoveredRetry.ID != first.ID {
		t.Fatalf("post-restart retry spawned %s, want %s", recoveredRetry.ID, first.ID)
	}
	// Delete, then re-create under the same ref: a genuinely new live
	// session must come back (a stale ref can never serve a dead one —
	// handleCreate checks liveness), and exactly one session exists.
	if err := c2.Delete(first.ID); err != nil {
		t.Fatal(err)
	}
	fresh, err := c2.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, live := srv2.mgr.Get(fresh.ID); !live {
		t.Fatalf("create after delete returned non-live session %s", fresh.ID)
	}
	if ids, _ := c2.Sessions(); len(ids) != 1 {
		t.Fatalf("after delete + re-create: %v sessions, want exactly 1", ids)
	}
}

// TestDeletePurgesDormantStoreRecord proves DELETE reaches sessions
// that exist only in the store — e.g. ones skipped at recovery — so a
// broken record cannot haunt every restart forever.
func TestDeletePurgesDormantStoreRecord(t *testing.T) {
	dir := t.TempDir()
	store, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A record with an unparsable spec: recovery will skip it.
	if err := store.Create("zombie", []byte("not json"), []byte(`{"version":1,"id":"zombie"}`)); err != nil {
		t.Fatal(err)
	}
	srv, recovered, err := NewServer(Config{Store: store})
	if err == nil {
		t.Fatal("recovery of an unparsable spec reported no error")
	}
	if len(recovered) != 0 {
		t.Fatalf("recovered %v", recovered)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	if err := c.Delete("zombie"); err != nil {
		t.Fatalf("deleting the dormant record: %v", err)
	}
	if err := c.Delete("zombie"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("second delete: %v, want 404", err)
	}
	if ids, _ := store.List(); len(ids) != 0 {
		t.Fatalf("store still holds %v", ids)
	}
}
