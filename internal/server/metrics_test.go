package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/session"
	"repro/remp"
)

// catalogNames loads internal/obs/catalog.txt — the committed contract
// of metric families a live server must export (CI scrapes a real
// server against the same file): one family name per line, # comments
// and blanks skipped.
func catalogNames(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile("../obs/catalog.txt")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, line)
	}
	if len(names) == 0 {
		t.Fatal("catalog is empty")
	}
	return names
}

// metricsFixture stands up a server over a disk store, so every durable
// write path (WAL append, fsync, rotation) produces telemetry too.
func metricsFixture(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	store, err := session.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := NewServer(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, NewClient(ts.URL)
}

// expositionLine matches one sample or comment line of the Prometheus
// text format (0.0.4).
var expositionLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9eE.+-]+(e[+-]?[0-9]+)?)$`)

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sampleValue extracts the value of the sample line that starts with
// name (including any label set, e.g. `foo_total{route="answers"}`).
func sampleValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if n, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); n == 1 && err == nil {
			return v
		}
	}
	t.Fatalf("no sample %q in exposition", name)
	return 0
}

// runSession drives one session to completion through the HTTP API.
func runSession(t *testing.T, c *Client, gold *remp.Gold, req CreateRequest) {
	t.Helper()
	info, err := c.CreateSession(req)
	if err != nil {
		t.Fatal(err)
	}
	for hops := 0; info.State != string(remp.SessionDone) && hops < 200; hops++ {
		if len(info.Batch) == 0 {
			t.Fatalf("awaiting session with no batch: %+v", info)
		}
		answers := make([]AnswerDTO, 0, len(info.Batch))
		for _, q := range info.Batch {
			answers = append(answers, oracleAnswer(t, gold, q.ID))
		}
		resp, err := c.PostAnswers(info.ID, answers)
		if err != nil {
			t.Fatal(err)
		}
		info = &resp.SessionInfo
	}
}

// TestMetricsExposition drives one session end to end and checks the
// scrape is grammatically valid, covers the committed catalog, and
// carries the loop-stage, persistence-latency and cache-counter series
// the observability layer promises.
func TestMetricsExposition(t *testing.T) {
	_, ts, c := metricsFixture(t)
	_, gold, req := fixture(t, 4)
	runSession(t, c, gold, req)

	text := scrape(t, ts)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, name := range catalogNames(t) {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("catalog family %q missing from exposition", name)
		}
	}
	// The run above answered questions through a disk-backed session, so
	// the loop stages, the WAL append path and the cache all saw traffic.
	for name, min := range map[string]float64{
		"remp_loop_batches_total":         1,
		"remp_loop_questions_total":       1,
		"remp_engine_recomputes_total":    1,
		"remp_store_append_seconds_count": 1,
		"remp_store_fsync_seconds_count":  1,
		"remp_cache_misses_total":         1,
		"remp_sessions_created_total":     1,
	} {
		if v := sampleValue(t, text, name); v < min {
			t.Errorf("%s = %v, want >= %v", name, v, min)
		}
	}
	for _, stage := range []string{"prepare", "infer", "select", "apply"} {
		if v := sampleValue(t, text, fmt.Sprintf(`remp_loop_stage_seconds_count{stage=%q}`, stage)); v < 1 {
			t.Errorf("loop stage %q never recorded a span", stage)
		}
	}
	if !strings.Contains(text, `remp_http_requests_total{route="answers"}`) {
		t.Error("no per-route request counter in exposition")
	}

	// The JSON snapshot view round-trips.
	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["remp_loop_batches_total"]; !ok {
		t.Error("JSON snapshot missing remp_loop_batches_total")
	}
}

// TestMetricsCounterMonotonicUnderLoad scrapes while concurrent sessions
// answer questions and checks request counters never move backwards —
// the -race target for the whole metrics path.
func TestMetricsCounterMonotonicUnderLoad(t *testing.T) {
	_, ts, c := metricsFixture(t)
	_, gold, req := fixture(t, 4)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := req
			r.ClientRef = fmt.Sprintf("load-%d", w)
			info, err := c.CreateSession(r)
			if err != nil {
				t.Error(err)
				return
			}
			for hops := 0; info.State != string(remp.SessionDone) && hops < 100; hops++ {
				if len(info.Batch) == 0 {
					// Siblings hold the open questions in flight; poll.
					if info, err = c.Batch(info.ID); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				resp, err := c.PostAnswers(info.ID, []AnswerDTO{oracleAnswer(t, gold, info.Batch[0].ID)})
				if err != nil {
					t.Error(err)
					return
				}
				info = &resp.SessionInfo
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	last := float64(0)
	for sampling := true; sampling; {
		select {
		case <-done:
			sampling = false
		default:
		}
		text := scrape(t, ts)
		v := sampleValue(t, text, `remp_http_requests_total{route="answers"}`)
		if v < last {
			t.Fatalf("remp_http_requests_total{answers} went backwards: %v -> %v", last, v)
		}
		last = v
	}
}
