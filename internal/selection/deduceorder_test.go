package selection

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

func TestOrderByClosureGain(t *testing.T) {
	p := func(a, b int) pair.Pair { return pair.Pair{U1: kb.EntityID(a), U2: kb.EntityID(b)} }
	cands := []Candidate{
		{Pair: p(0, 0), Prob: 0.9, Inferred: []int{0}},       // closes nothing
		{Pair: p(1, 1), Prob: 0.9, Inferred: []int{1, 2, 3}}, // ball covers 2 and 3
		{Pair: p(2, 2), Prob: 0.9, Inferred: []int{2}},
		{Pair: p(3, 3), Prob: 0.9, Inferred: []int{3}},
		{Pair: p(4, 4), Prob: 0.9, Inferred: []int{4}},
		{Pair: p(4, 5), Prob: 0.9, Inferred: []int{5}}, // shares U1=4: competitor pair
	}
	chosen := []int{0, 1, 2, 3, 4, 5}
	got := OrderByClosureGain(cands, chosen)

	if got[0] != 1 {
		t.Fatalf("expected the ball question (index 1) first, got %v", got)
	}
	// The competitor pair (4,4)/(4,5) each close one mate, so one of
	// them (4, first in incoming order) is scheduled second; after that
	// every remaining question closes nothing and the tie keeps the
	// incoming order.
	want := []int{1, 4, 0, 2, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule %v, want %v", got, want)
		}
	}
	if len(got) != len(chosen) {
		t.Fatalf("length changed: %v", got)
	}
	seen := map[int]bool{}
	for _, c := range got {
		seen[c] = true
	}
	if len(seen) != len(chosen) {
		t.Fatalf("not a permutation: %v", got)
	}

	// Deterministic: same inputs, same schedule.
	again := OrderByClosureGain(cands, append([]int(nil), chosen...))
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("schedule not deterministic: %v vs %v", got, again)
		}
	}

	// Short batches come back untouched.
	one := []int{2}
	if out := OrderByClosureGain(cands, one); len(out) != 1 || out[0] != 2 {
		t.Fatalf("singleton batch changed: %v", out)
	}
}
