package selection

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

func mk(i int, prob float64, inferred ...int) Candidate {
	return Candidate{
		Pair:     pair.Pair{U1: kb.EntityID(i), U2: kb.EntityID(i)},
		Prob:     prob,
		Inferred: inferred,
	}
}

func TestGreedyPicksLargestBenefit(t *testing.T) {
	cands := []Candidate{
		mk(0, 0.9, 0, 1, 2, 3), // high prob, wide inference
		mk(1, 0.9, 1),          // high prob, narrow
		mk(2, 0.1, 0, 1, 2, 3), // low prob, wide
	}
	got := Greedy{}.Select(cands, 1)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("Select = %v, want [0]", got)
	}
}

func TestGreedyCoversDisjointRegions(t *testing.T) {
	// Two overlapping wide questions vs one covering a disjoint region:
	// after picking q0, q2's disjoint coverage beats q1's redundant one.
	cands := []Candidate{
		mk(0, 0.9, 0, 1, 2),
		mk(1, 0.9, 0, 1, 2),
		mk(2, 0.9, 3, 4),
	}
	got := Greedy{}.Select(cands, 2)
	if len(got) != 2 {
		t.Fatalf("Select = %v", got)
	}
	ok := (got[0] == 0 || got[0] == 1) && got[1] == 2
	if !ok {
		t.Errorf("greedy chose redundant questions: %v", got)
	}
}

func TestGreedyStopsOnZeroGain(t *testing.T) {
	cands := []Candidate{
		mk(0, 0, 0, 1), // zero probability ⇒ zero gain
	}
	if got := (Greedy{}).Select(cands, 3); len(got) != 0 {
		t.Errorf("Select = %v, want empty", got)
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	var cands []Candidate
	for i := 0; i < 10; i++ {
		cands = append(cands, mk(i, 0.5, i))
	}
	if got := (Greedy{}).Select(cands, 3); len(got) != 3 {
		t.Errorf("budget violated: %v", got)
	}
}

func TestBenefitFormula(t *testing.T) {
	// Single question: benefit = Σ_{p∈inferred} Pr[m_q].
	cands := []Candidate{mk(0, 0.6, 0, 1, 2)}
	if got := Benefit(cands, []int{0}); math.Abs(got-1.8) > 1e-12 {
		t.Errorf("Benefit = %v, want 1.8", got)
	}
	// Two questions inferring the same pair p: bp = 1-(1-p1)(1-p2).
	cands = []Candidate{mk(0, 0.6, 7), mk(1, 0.5, 7)}
	want := 1 - (1-0.6)*(1-0.5)
	if got := Benefit(cands, []int{0, 1}); math.Abs(got-want) > 1e-12 {
		t.Errorf("Benefit = %v, want %v", got, want)
	}
}

// Property: benefit is monotone and submodular on random instances
// (Theorem 2).
func TestBenefitMonotoneSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		n := 3 + rng.Intn(5)
		var cands []Candidate
		for i := 0; i < n; i++ {
			var inf []int
			for p := 0; p < 6; p++ {
				if rng.Intn(2) == 0 {
					inf = append(inf, p)
				}
			}
			cands = append(cands, mk(i, rng.Float64(), inf...))
		}
		// Random Q ⊂ Q′ and q ∉ Q′.
		var q1, q2 []int
		for i := 0; i < n-1; i++ {
			if rng.Intn(2) == 0 {
				q1 = append(q1, i)
			}
			if rng.Intn(2) == 0 {
				q2 = append(q2, i)
			}
		}
		union := mergeSets(q1, q2)
		q := n - 1
		bQ1 := Benefit(cands, q1)
		bU := Benefit(cands, union)
		if bU < bQ1-1e-9 {
			t.Fatalf("monotonicity violated: B(Q∪Q')=%v < B(Q)=%v", bU, bQ1)
		}
		// Submodularity: gain at smaller set ≥ gain at larger set.
		gainSmall := Benefit(cands, append(append([]int{}, q1...), q)) - bQ1
		gainBig := Benefit(cands, append(append([]int{}, union...), q)) - bU
		if gainSmall < gainBig-1e-9 {
			t.Fatalf("submodularity violated: %v < %v", gainSmall, gainBig)
		}
	}
}

// Property: lazy greedy equals plain greedy, and on small instances is
// within (1−1/e) of the brute-force optimum.
func TestGreedyApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 60; iter++ {
		n := 4 + rng.Intn(4)
		mu := 1 + rng.Intn(3)
		var cands []Candidate
		for i := 0; i < n; i++ {
			var inf []int
			inf = append(inf, i)
			for p := 0; p < 5; p++ {
				if rng.Intn(3) == 0 {
					inf = append(inf, 10+p)
				}
			}
			cands = append(cands, mk(i, 0.1+0.9*rng.Float64(), inf...))
		}
		chosen := Greedy{}.Select(cands, mu)
		gb := Benefit(cands, chosen)
		best := bruteForceBest(cands, mu)
		if gb < (1-1/math.E)*best-1e-9 {
			t.Fatalf("iter %d: greedy %v below guarantee of optimum %v", iter, gb, best)
		}
	}
}

func bruteForceBest(cands []Candidate, mu int) float64 {
	n := len(cands)
	best := 0.0
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if b := Benefit(cands, chosen); b > best {
			best = b
		}
		if len(chosen) == mu {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	return best
}

func mergeSets(a, b []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range append(append([]int{}, a...), b...) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func TestMaxInfStrategy(t *testing.T) {
	cands := []Candidate{
		mk(0, 0.9, 0),
		mk(1, 0.1, 0, 1, 2, 3, 4),
		mk(2, 0.5, 0, 1),
	}
	got := MaxInf{}.Select(cands, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("MaxInf = %v, want [1 2]", got)
	}
}

func TestMaxPrStrategy(t *testing.T) {
	cands := []Candidate{
		mk(0, 0.9, 0),
		mk(1, 0.1, 0, 1, 2, 3, 4),
		mk(2, 0.5, 0, 1),
	}
	got := MaxPr{}.Select(cands, 2)
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("MaxPr = %v, want [0 2]", got)
	}
}

func TestStrategiesEmptyInput(t *testing.T) {
	for _, s := range []Strategy{Greedy{}, MaxInf{}, MaxPr{}} {
		if got := s.Select(nil, 5); len(got) != 0 {
			t.Errorf("%T on empty input: %v", s, got)
		}
		if got := s.Select([]Candidate{mk(0, 0.5, 0)}, 0); len(got) != 0 {
			t.Errorf("%T with µ=0: %v", s, got)
		}
	}
}
