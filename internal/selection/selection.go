// Package selection implements multiple questions selection (§VI): the
// benefit of a question set Q is the expected number of matches inferable
// from its labels (Eq. 15–16), a monotone submodular function; the
// NP-hard budgeted maximization is solved greedily with lazy evaluation
// (Algorithm 3), giving the classic (1−1/e) guarantee. MaxInf and MaxPr,
// the two heuristics Remp is compared against in Figure 5, are provided as
// alternative Strategy implementations.
package selection

import (
	"container/heap"
	"sort"

	"repro/internal/pair"
)

// Candidate describes one candidate question: its pair, its current match
// probability Pr[m_q], and inferred(q) — the vertex indexes it would
// resolve if labeled as a match (including itself).
type Candidate struct {
	Pair     pair.Pair
	Prob     float64
	Inferred []int
}

// Strategy selects up to mu questions from candidates.
type Strategy interface {
	// Select returns the chosen candidate indexes, highest priority first.
	Select(cands []Candidate, mu int) []int
}

// Pick is one ranked selection: a candidate index plus the score the
// strategy committed it at — the marginal benefit for Greedy, the sort key
// for the heuristics. Within one SelectRanked call scores are
// non-increasing (benefit is submodular; the heuristics sort), which is
// what lets a scheduler merge independent shards' sequences by score.
type Pick struct {
	Index int
	Score float64
}

// Ranked is implemented by strategies whose selection over a disjoint
// union of candidate sets equals the score-ordered merge of the per-set
// selections. All built-in strategies qualify: their scores depend only on
// a candidate and the previously chosen candidates whose Inferred sets
// overlap it, and inferred sets never cross shards. The sharded loop uses
// this to select per shard concurrently and draw the global µ-batch across
// shards by expected benefit.
type Ranked interface {
	Strategy
	// SelectRanked is Select, annotated with commit scores.
	SelectRanked(cands []Candidate, mu int) []Pick
}

// Greedy is Algorithm 3: lazy greedy maximization of benefit(Q).
type Greedy struct{}

// benefitState tracks bp(Q) = Pr[p ∈ inferred(H) | Q] per vertex (Eq. 15)
// so that a marginal gain evaluation is O(|inferred(q)|).
type benefitState struct {
	bp map[int]float64
}

func (s *benefitState) gain(c Candidate) float64 {
	g := 0.0
	for _, p := range c.Inferred {
		g += c.Prob * (1 - s.bp[p])
	}
	return g
}

func (s *benefitState) add(c Candidate) {
	for _, p := range c.Inferred {
		// bp(Q ∪ {q}) = bp(Q) + Pr[m_q](1 − bp(Q)).
		s.bp[p] += c.Prob * (1 - s.bp[p])
	}
}

// Select implements Strategy.
func (g Greedy) Select(cands []Candidate, mu int) []int {
	picks := g.SelectRanked(cands, mu)
	out := make([]int, len(picks))
	for i, p := range picks {
		out[i] = p.Index
	}
	return out
}

// SelectRanked implements Ranked: the lazy greedy of Select, returning the
// marginal benefit each question was committed at.
func (Greedy) SelectRanked(cands []Candidate, mu int) []Pick {
	if mu <= 0 || len(cands) == 0 {
		return nil
	}
	state := &benefitState{bp: make(map[int]float64)}
	// Priority queue of (index, cached gain); lazy evaluation re-checks the
	// top element against the current state before committing.
	pq := make(gainHeap, 0, len(cands))
	for i, c := range cands {
		pq = append(pq, gainItem{idx: i, gain: state.gain(c)})
	}
	heap.Init(&pq)

	var out []Pick
	for len(out) < mu && pq.Len() > 0 {
		item := heap.Pop(&pq).(gainItem)
		// Recompute the gain under the current Q (it can only shrink —
		// submodularity).
		fresh := state.gain(cands[item.idx])
		if fresh <= 0 {
			// This candidate is fully covered; drop it and keep scanning —
			// other candidates may still carry positive gain.
			continue
		}
		if pq.Len() > 0 && fresh < pq[0].gain {
			item.gain = fresh
			heap.Push(&pq, item)
			continue
		}
		state.add(cands[item.idx])
		out = append(out, Pick{Index: item.idx, Score: fresh})
	}
	return out
}

// Benefit evaluates benefit(Q) for an explicit question set (Eq. 16).
// chosen indexes into cands.
func Benefit(cands []Candidate, chosen []int) float64 {
	state := &benefitState{bp: make(map[int]float64)}
	for _, i := range chosen {
		state.add(cands[i])
	}
	total := 0.0
	for _, b := range state.bp {
		total += b
	}
	return total
}

// MaxInf picks the questions with the largest inferred sets, ignoring
// match probability (Figure 5 baseline).
type MaxInf struct{}

// Select implements Strategy.
func (MaxInf) Select(cands []Candidate, mu int) []int {
	return topBy(cands, mu, func(c Candidate) float64 { return float64(len(c.Inferred)) })
}

// SelectRanked implements Ranked with the inferred-set size as the score.
func (m MaxInf) SelectRanked(cands []Candidate, mu int) []Pick {
	return ranked(cands, m.Select(cands, mu), func(c Candidate) float64 { return float64(len(c.Inferred)) })
}

// MaxPr picks the questions with the highest match probability, ignoring
// inference power (Figure 5 baseline).
type MaxPr struct{}

// Select implements Strategy.
func (MaxPr) Select(cands []Candidate, mu int) []int {
	return topBy(cands, mu, func(c Candidate) float64 { return c.Prob })
}

// SelectRanked implements Ranked with the match probability as the score.
func (m MaxPr) SelectRanked(cands []Candidate, mu int) []Pick {
	return ranked(cands, m.Select(cands, mu), func(c Candidate) float64 { return c.Prob })
}

// ranked annotates a Select result with its sort scores.
func ranked(cands []Candidate, idxs []int, score func(Candidate) float64) []Pick {
	out := make([]Pick, len(idxs))
	for i, idx := range idxs {
		out[i] = Pick{Index: idx, Score: score(cands[idx])}
	}
	return out
}

func topBy(cands []Candidate, mu int, score func(Candidate) float64) []int {
	if mu <= 0 || len(cands) == 0 {
		return nil
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := score(cands[idx[a]]), score(cands[idx[b]])
		if sa != sb {
			return sa > sb
		}
		return cands[idx[a]].Pair.Less(cands[idx[b]].Pair)
	})
	if mu > len(idx) {
		mu = len(idx)
	}
	return idx[:mu]
}

type gainItem struct {
	idx  int
	gain float64
}

type gainHeap []gainItem

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].idx < h[j].idx
}
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
